/**
 * @file
 * Decode-attention workload (section 5.4). A batch of single-token decode
 * requests with per-request KV-cache lengths is spread over parallel
 * attention regions using one of three strategies:
 *
 *  - StaticCoarse: fixed blocks of requests per region;
 *  - StaticInterleaved: round-robin;
 *  - Dynamic: availability-driven dispatch (Figure 16) built from
 *    Partition + EagerMerge(completions) + Dispatcher + Reassemble.
 *
 * Each region streams the request's KV tiles from off-chip and runs an
 * online-softmax Accum, so service time is proportional to KV length —
 * the load-imbalance behaviour Figures 14/15/21 measure.
 */
#pragma once

#include <optional>
#include <vector>

#include "ops/graph.hh"
#include "workloads/model_config.hh"

namespace step {

enum class ParStrategy { StaticCoarse, StaticInterleaved, Dynamic };

struct AttnParams
{
    ModelConfig cfg;
    int64_t batch = 64;
    ParStrategy strategy = ParStrategy::Dynamic;
    int64_t regions = 4;
    /** KV-cache tokens per streamed tile. */
    int64_t kvTileRows = 32;
    /** Attention compute bandwidth per region (FLOPs/cycle). */
    int64_t computeBw = 1024;
    /** Requests per region under StaticCoarse. */
    int64_t coarseBlock = 16;
    /** Optional explicit per-request region assignment (overrides the
     *  static strategies; used for micro-batch studies). */
    std::optional<std::vector<uint32_t>> staticAssign;
    bool functional = false;
    uint64_t seed = 42;
};

struct AttnBuild
{
    /** Reassembled outputs: rank-3 [B, 1, 1] stream of [1, d] rows. */
    StreamPort out;
};

class SourceOp;
class RandomOffChipLoadOp;

/**
 * Typed handles to the operators of a built attention layer that carry
 * per-iteration state. Populated by buildAttentionLayer when requested;
 * rearmAttentionLayer() patches them for the next iteration's KV
 * lengths and policy bandwidth without reconstructing the graph.
 * Pointers are owned by the graph and die with it (or with its next
 * recycle), so handles must be refreshed on every full rebuild.
 */
struct AttnRearmHandles
{
    SourceOp* req = nullptr;  ///< standalone (q, meta) request stream
    SourceOp* meta = nullptr; ///< meta stream zipped with ext_q rows
    SourceOp* selA = nullptr; ///< static partition selector
    SourceOp* selB = nullptr; ///< static gather selector
    std::vector<RandomOffChipLoadOp*> kLoads; ///< per-region K loads
    std::vector<RandomOffChipLoadOp*> vLoads; ///< per-region V loads
    /** (op, divisor): rearmed bandwidth = p.computeBw / divisor. */
    std::vector<std::pair<OpBase*, int64_t>> bwOps;
};

/**
 * Build the attention layer. @p kv_lens gives each request's KV length
 * in tokens. Functional mode takes per-request q vectors and K/V
 * matrices (row-major, kv_lens[i] x d where d = numKvHeads*headDim).
 */
AttnBuild buildAttentionLayer(
    Graph& g, const AttnParams& p, const std::vector<int64_t>& kv_lens,
    const std::vector<std::vector<float>>* qs = nullptr,
    const std::vector<std::vector<float>>* ks = nullptr,
    const std::vector<std::vector<float>>* vs = nullptr,
    const StreamPort* ext_q = nullptr,
    AttnRearmHandles* rearm = nullptr);

/**
 * Re-arm a built attention layer for new per-request KV lengths and the
 * current policy bandwidth (timing mode only). Requires the owning
 * graph to have been rearm()-ed first; produces metrics bit-identical
 * to a full rebuild with the same parameters.
 */
void rearmAttentionLayer(const AttnRearmHandles& h, const AttnParams& p,
                         const std::vector<int64_t>& kv_lens);

/** Dense softmax-attention reference for functional checking. */
std::vector<std::vector<float>>
referenceAttention(const AttnParams& p, const std::vector<int64_t>& kv_lens,
                   const std::vector<std::vector<float>>& qs,
                   const std::vector<std::vector<float>>& ks,
                   const std::vector<std::vector<float>>& vs);

/** Static region assignment used by the given strategy. */
std::vector<uint32_t> staticAssignment(const AttnParams& p);

} // namespace step
