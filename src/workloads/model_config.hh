/**
 * @file
 * Model configurations for the evaluation workloads (section 5.1): the
 * MoE/attention geometry of Qwen3-30B-A3B and Mixtral-8x7B, plus scaled
 * variants for functional tests.
 */
#pragma once

#include <cstdint>
#include <string>

namespace step {

struct ModelConfig
{
    std::string name;
    int64_t hidden = 0;           ///< model hidden size H
    int64_t moeIntermediate = 0;  ///< per-expert FFN intermediate I
    int64_t numExperts = 0;
    int64_t topK = 0;
    int64_t numLayers = 0;
    int64_t headDim = 0;
    int64_t numQHeads = 0;
    int64_t numKvHeads = 0;
    /**
     * Compute bandwidth provisioned per matmul Map (FLOPs/cycle). The
     * programmer-specified bandwidth determines how many compute units
     * map to each STeP node (section 4.5); it is sized so the MoE layer
     * sits at the memory-bound knee of the roofline, matching the
     * paper's memory-bound evaluation regime.
     */
    int64_t moeMatmulBw = 1024;

    /** KV bytes per token (K and V, BF16). */
    int64_t
    kvBytesPerToken() const
    {
        return 2 * numKvHeads * headDim * 2;
    }
};

/** Qwen3-30B-A3B: 128 experts, top-8, H=2048, I_moe=768, 48 layers. */
inline ModelConfig
qwen3_30b_a3b()
{
    ModelConfig c;
    c.name = "Qwen3-30B-A3B";
    c.hidden = 2048;
    c.moeIntermediate = 768;
    c.numExperts = 128;
    c.topK = 8;
    c.numLayers = 48;
    c.headDim = 128;
    c.numQHeads = 32;
    c.numKvHeads = 4;
    c.moeMatmulBw = 1024; // Listing 1's configuration
    return c;
}

/** Mixtral-8x7B: 8 experts, top-2, H=4096, I=14336, 32 layers. */
inline ModelConfig
mixtral8x7b()
{
    ModelConfig c;
    c.name = "Mixtral8x7B";
    c.hidden = 4096;
    c.moeIntermediate = 14336;
    c.numExperts = 8;
    c.topK = 2;
    c.numLayers = 32;
    c.headDim = 128;
    c.numQHeads = 32;
    c.numKvHeads = 8;
    // Mixtral experts are ~18x larger than Qwen's; provision the matmul
    // units accordingly (kept memory-bound, as in the paper).
    c.moeMatmulBw = 8192;
    return c;
}

/**
 * Mid-size configuration for the serving runtime: the same MoE/GQA shape
 * family as the evaluation models, scaled so one batching iteration
 * (one decoder-layer pass over the dynamic batch) simulates in
 * milliseconds. Serving experiments run thousands of iterations, so the
 * per-iteration graph must stay small; per-layer cycles are scaled by
 * `numLayers` in the engine instead of simulating every layer.
 */
inline ModelConfig
servingSimConfig()
{
    ModelConfig c;
    c.name = "serving-sim";
    c.hidden = 256;
    c.moeIntermediate = 128;
    c.numExperts = 16;
    c.topK = 2;
    c.numLayers = 24;
    c.headDim = 64;
    c.numQHeads = 4;
    c.numKvHeads = 1;
    c.moeMatmulBw = 256;
    return c;
}

/** Tiny functional-test configuration (payload-carrying tiles). */
inline ModelConfig
tinyConfig()
{
    ModelConfig c;
    c.name = "tiny";
    c.hidden = 8;
    c.moeIntermediate = 8;
    c.numExperts = 4;
    c.topK = 2;
    c.numLayers = 2;
    c.headDim = 8;
    c.numQHeads = 2;
    c.numKvHeads = 1;
    return c;
}

} // namespace step
