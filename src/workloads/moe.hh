/**
 * @file
 * MoE layer graph builder (section 3.3 generalized to the evaluation's
 * SwiGLU experts, section 5.1). Supports:
 *
 *  - static tiling (Reshape+pad, the Revet-expressible baseline) and
 *    dynamic tiling (Promote + dynamically-growing Accum, section 5.2);
 *  - one dedicated subgraph per expert, or configuration
 *    time-multiplexing with EagerMerge + RandomOffChipLoad over expert
 *    regions (Figure 11, section 5.3);
 *  - timing mode (shape-only tiles at full model dimensions) and
 *    functional mode (payload tiles checked against referenceMoe()).
 */
#pragma once

#include <optional>
#include <vector>

#include "ops/graph.hh"
#include "trace/trace.hh"
#include "workloads/model_config.hh"

namespace step {

enum class Tiling { Static, Dynamic };

struct MoeParams
{
    ModelConfig cfg;
    int64_t batch = 64;
    Tiling tiling = Tiling::Static;
    /** Static tile size along the batch dimension of each expert. */
    int64_t tileRows = 32;
    /** Weight column-tile width (reduction dim is never tiled, §3.3). */
    int64_t weightTileCols = 64;
    /** Compute bandwidth per matmul Map (Listing 1 uses 1024). */
    int64_t computeBwPerMatmul = 1024;
    /**
     * Number of time-multiplexed regions; 0 = one dedicated subgraph per
     * expert (no time-multiplexing).
     */
    int64_t parallelRegions = 0;
    /**
     * Region compute oversubscription: a region serving E experts is
     * provisioned min(E, ceil(beta*sqrt(E))) x the per-expert matmul
     * bandwidth — enough to keep a time-multiplexed region at the
     * memory-bound knee (reproduces the paper's 54-62% compute savings
     * at comparable cycles).
     */
    double regionBwBeta = 1.0;
    /** Build payload-carrying tiles for functional checking. */
    bool functional = false;
    uint64_t seed = 42;
};

struct MoeBuild
{
    /** Final combined output: [B] stream of [1,H] tiles. */
    StreamPort out;
};

class SourceOp;

/**
 * Typed handles to the operators of a built MoE layer that carry
 * per-iteration state (router selector streams, input activations,
 * policy-assigned matmul bandwidths). Populated by buildMoeLayer when
 * requested; rearmMoeLayer() patches them for the next iteration's
 * expert trace. Pointers die with the graph build.
 */
struct MoeRearmHandles
{
    SourceOp* in = nullptr;   ///< standalone input stream (no ext_in)
    SourceOp* selA = nullptr; ///< router partition selector
    SourceOp* selB = nullptr; ///< router gather selector
    /** (op, divisor): rearmed bandwidth = moeRegionBw(p) / divisor. */
    std::vector<std::pair<OpBase*, int64_t>> regionBwOps;
    /** (op, divisor): rearmed bw = p.computeBwPerMatmul / divisor. */
    std::vector<std::pair<OpBase*, int64_t>> baseBwOps;
};

/**
 * Compute bandwidth provisioned to one expert region (the
 * oversubscription rule of MoeParams::regionBwBeta). Shared by the
 * builder and the rearm path so both assign identical bandwidths.
 */
int64_t moeRegionBw(const MoeParams& p);

/**
 * Build the MoE layer into @p g. @p token_rows supplies functional input
 * activations (batch x H); null in timing mode.
 */
MoeBuild buildMoeLayer(Graph& g, const MoeParams& p,
                       const ExpertTrace& trace,
                       const std::vector<std::vector<float>>* token_rows
                           = nullptr,
                       const StreamPort* ext_in = nullptr,
                       MoeRearmHandles* rearm = nullptr);

/**
 * Re-arm a built MoE layer for a new expert-routing trace and the
 * current policy bandwidth (timing mode only). The trace's batch size
 * and the layer geometry must match the build; metrics are
 * bit-identical to a full rebuild with the same parameters.
 */
void rearmMoeLayer(const MoeRearmHandles& h, const MoeParams& p,
                   const ExpertTrace& trace);

/** Dense reference: same weights/combine rule as the STeP graph. */
std::vector<std::vector<float>>
referenceMoe(const MoeParams& p, const ExpertTrace& trace,
             const std::vector<std::vector<float>>& tokens);

/** Deterministic weight matrix used by both builder and reference. */
std::vector<float> moeWeightMatrix(uint64_t seed, int64_t expert,
                                   int matrix, int64_t rows, int64_t cols);

/**
 * [B, 1] row-activation stream tokens ([1,hidden] rows; payload-
 * carrying only when @p rows is non-null). Shared by the MoE input,
 * the decoder layer input, and their rearm paths, so the stream
 * structure can never drift between builders.
 */
std::vector<Token> rowStreamTokens(
    int64_t batch, int64_t hidden,
    const std::vector<std::vector<float>>* rows = nullptr);

/** FLOPs of the un-padded MoE computation (3 matmuls per assignment). */
int64_t moeUsefulFlops(const MoeParams& p, const ExpertTrace& trace);

/** Total weight traffic a static tiling of @p tile incurs, in bytes. */
int64_t moeStaticWeightTraffic(const MoeParams& p, const ExpertTrace& trace,
                               int64_t tile);

} // namespace step
