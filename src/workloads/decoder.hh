/**
 * @file
 * Fused Transformer decoder layer and end-to-end model runner
 * (section 5.5). Each layer is one STeP graph: QKV projection ->
 * attention (parallelized over regions) -> output projection -> MoE ->
 * off-chip store. The full model executes the layer graph repeatedly
 * with per-layer expert-routing traces, exactly the paper's "executed
 * repeatedly with layer-specific weights".
 */
#pragma once

#include "ops/graph.hh"
#include "workloads/attention.hh"
#include "workloads/moe.hh"

namespace step {

struct DecoderParams
{
    ModelConfig cfg;
    int64_t batch = 64;

    Tiling moeTiling = Tiling::Static;
    int64_t moeTile = 32;
    /** 0 = dedicated region per expert. */
    int64_t moeRegions = 0;

    ParStrategy attnStrategy = ParStrategy::StaticInterleaved;
    int64_t attnRegions = 4;
    int64_t kvTileRows = 32;

    int64_t denseTile = 32;
    int64_t weightTileCols = 64;
    int64_t computeBwPerMatmul = 1024;
    uint64_t seed = 42;
};

/** Aggregate result of an end-to-end (multi-layer) run. */
struct EndToEndResult
{
    dam::Cycle cycles = 0;          ///< summed over layers
    int64_t onChipPeakBytes = 0;    ///< max over layers (same hardware)
    int64_t allocatedComputeBw = 0; ///< max over layers
    int64_t offChipBytes = 0;       ///< summed
    int64_t totalFlops = 0;         ///< summed
};

/**
 * Dense projection block over a row stream: [B,1] of [1,in_cols] ->
 * [B,1] of [1,out_cols]. Used for QKV and attention-output projections.
 */
StreamPort buildDenseProj(Graph& g, const std::string& name,
                          StreamPort in_rows, int64_t in_cols,
                          int64_t out_cols, int64_t tile_rows,
                          int64_t weight_tile_cols, int64_t compute_bw,
                          uint64_t weight_base_addr);

/**
 * Build one decoder layer into @p g; returns the layer-output stream
 * ([B] of [1,H] rows) already routed into a LinearOffChipStore, so the
 * run's makespan covers "first off-chip read to last off-chip write".
 */
void buildDecoderLayer(Graph& g, const DecoderParams& p,
                       const ExpertTrace& trace,
                       const std::vector<int64_t>& kv_lens);

/**
 * One serving iteration: a single decoder-layer pass over the *current*
 * dynamic batch composition. The serving runtime calls this once per
 * continuous-batching iteration with the batch's per-request context
 * lengths and a per-iteration expert-routing trace, instead of building
 * one whole-run graph up front — that is what lets request-level
 * dynamism (variable KV lengths, variable batch size, variable expert
 * load) reach the hardware model.
 */
struct IterationSpec
{
    /** Per-request KV context length for this iteration's batch. */
    std::vector<int64_t> kvLens;
    /** Expert routing for this iteration's tokens (size == batch). */
    ExpertTrace trace;
};

/**
 * Build and simulate one decoder-layer iteration. When @p sched is
 * non-null the externally owned scheduler is reused (reset + run), so a
 * long-lived engine pays no scheduler setup per iteration. When
 * @p reuse is non-null it must be an arena-backed Graph owned by the
 * caller: the previous build is recycled in place and the new iteration
 * graph reuses its operator storage, pooled channels, and interned
 * names (see Graph::recycle) — the zero-rebuild path the serving engine
 * runs on.
 */
SimResult runDecoderIteration(const DecoderParams& p,
                              const IterationSpec& spec,
                              dam::Scheduler* sched = nullptr,
                              Graph* reuse = nullptr);

/** Run @p layers decoder layers (fresh graph each) and aggregate. */
EndToEndResult runEndToEnd(const DecoderParams& p, int64_t layers,
                           uint64_t trace_seed);

} // namespace step
