/**
 * @file
 * Fused Transformer decoder layer and end-to-end model runner
 * (section 5.5). Each layer is one STeP graph: QKV projection ->
 * attention (parallelized over regions) -> output projection -> MoE ->
 * off-chip store. The full model executes the layer graph repeatedly
 * with per-layer expert-routing traces, exactly the paper's "executed
 * repeatedly with layer-specific weights".
 */
#pragma once

#include "ops/graph.hh"
#include "workloads/attention.hh"
#include "workloads/moe.hh"

namespace step {

struct DecoderParams
{
    ModelConfig cfg;
    int64_t batch = 64;

    Tiling moeTiling = Tiling::Static;
    int64_t moeTile = 32;
    /** 0 = dedicated region per expert. */
    int64_t moeRegions = 0;

    ParStrategy attnStrategy = ParStrategy::StaticInterleaved;
    int64_t attnRegions = 4;
    int64_t kvTileRows = 32;

    int64_t denseTile = 32;
    int64_t weightTileCols = 64;
    int64_t computeBwPerMatmul = 1024;
    uint64_t seed = 42;
};

/** Aggregate result of an end-to-end (multi-layer) run. */
struct EndToEndResult
{
    dam::Cycle cycles = 0;          ///< summed over layers
    int64_t onChipPeakBytes = 0;    ///< max over layers (same hardware)
    int64_t allocatedComputeBw = 0; ///< max over layers
    int64_t offChipBytes = 0;       ///< summed
    int64_t totalFlops = 0;         ///< summed
};

/**
 * Dense projection block over a row stream: [B,1] of [1,in_cols] ->
 * [B,1] of [1,out_cols]. Used for QKV and attention-output projections.
 * When @p bw_ops is non-null, the operators billed against
 * @p compute_bw are recorded as (op, divisor) pairs for the rearm path.
 */
StreamPort buildDenseProj(Graph& g, const std::string& name,
                          StreamPort in_rows, int64_t in_cols,
                          int64_t out_cols, int64_t tile_rows,
                          int64_t weight_tile_cols, int64_t compute_bw,
                          uint64_t weight_base_addr,
                          std::vector<std::pair<OpBase*, int64_t>>* bw_ops
                              = nullptr);

/**
 * Structural fingerprint of a decoder-layer graph: everything that
 * determines the operator set and channel geometry. KV lengths, expert
 * traces, and policy-assigned bandwidths are deliberately absent — they
 * are per-iteration state the rearm path patches in place. When the key
 * changes (batch size, layer config, parallelization split) the graph
 * must be recycled and rebuilt.
 */
struct DecoderStructKey
{
    int64_t batch = 0;
    // ModelConfig geometry
    int64_t hidden = 0;
    int64_t moeIntermediate = 0;
    int64_t numExperts = 0;
    int64_t topK = 0;
    int64_t headDim = 0;
    int64_t numQHeads = 0;
    int64_t numKvHeads = 0;
    // Parallelization / tiling
    Tiling moeTiling = Tiling::Static;
    int64_t moeTile = 0;
    int64_t moeRegions = 0;
    ParStrategy attnStrategy = ParStrategy::StaticInterleaved;
    int64_t attnRegions = 0;
    int64_t kvTileRows = 0;
    int64_t denseTile = 0;
    int64_t weightTileCols = 0;
    uint64_t seed = 0;

    bool operator==(const DecoderStructKey&) const = default;
};

DecoderStructKey decoderStructKey(const DecoderParams& p, int64_t batch);

/**
 * The SimConfig a serving iteration at @p batch runs under (channel
 * capacity scales with the batch). Exported so benches and tests build
 * exactly the graph the engine runs; rearm asserts the channel
 * geometry it implies is unchanged.
 */
SimConfig iterationSimConfig(int64_t batch);

/**
 * Typed handles to the per-iteration operators of a built decoder-layer
 * graph plus the structural key they were built under. Owned by the
 * graph's driver (e.g. the serving engine) and refreshed by
 * buildDecoderLayer on every full rebuild; runDecoderIteration uses
 * them to take the structure-preserving rearm fast path whenever the
 * key still matches.
 */
struct DecoderRearmHandles
{
    bool valid = false;
    DecoderStructKey key;
    SourceOp* layerIn = nullptr;
    /** (op, divisor): rearmed bw = p.computeBwPerMatmul / divisor. */
    std::vector<std::pair<OpBase*, int64_t>> denseBwOps;
    AttnRearmHandles attn;
    MoeRearmHandles moe;
    // Path counters (observability for benches and tests).
    uint64_t rearms = 0;
    uint64_t rebuilds = 0;
};

/**
 * Build one decoder layer into @p g; returns the layer-output stream
 * ([B] of [1,H] rows) already routed into a LinearOffChipStore, so the
 * run's makespan covers "first off-chip read to last off-chip write".
 * When @p rearm is non-null its handles are reset and repopulated for
 * the new build (key/valid/counters are managed by the caller).
 */
void buildDecoderLayer(Graph& g, const DecoderParams& p,
                       const ExpertTrace& trace,
                       const std::vector<int64_t>& kv_lens,
                       DecoderRearmHandles* rearm = nullptr);


/**
 * One serving iteration: a single decoder-layer pass over the *current*
 * dynamic batch composition. The serving runtime calls this once per
 * continuous-batching iteration with the batch's per-request context
 * lengths and a per-iteration expert-routing trace, instead of building
 * one whole-run graph up front — that is what lets request-level
 * dynamism (variable KV lengths, variable batch size, variable expert
 * load) reach the hardware model.
 */
struct IterationSpec
{
    /** Per-request KV context length for this iteration's batch. */
    std::vector<int64_t> kvLens;
    /** Expert routing for this iteration's tokens (size == batch). */
    ExpertTrace trace;
};

/**
 * Structure-preserving re-arm of a previously built decoder-layer
 * graph: Graph::rearm plus per-operator patches for the iteration's KV
 * lengths, expert trace, and bandwidths. Valid only while
 * decoderStructKey(p, B) matches the build; metrics are bit-identical
 * to a cold build with the same (p, spec). Exposed separately from
 * runDecoderIteration so benches can time the rearm cost alone.
 */
void rearmDecoderLayer(Graph& g, const DecoderRearmHandles& h,
                       const DecoderParams& p, const IterationSpec& spec);

/**
 * Build and simulate one decoder-layer iteration. When @p sched is
 * non-null the externally owned scheduler is reused (reset + run), so a
 * long-lived engine pays no scheduler setup per iteration. When
 * @p reuse is non-null it must be an arena-backed Graph owned by the
 * caller: the previous build is recycled in place and the new iteration
 * graph reuses its operator storage, pooled channels, and interned
 * names (see Graph::recycle). When @p rearm is also non-null and the
 * structural key matches the previous build, even the rebuild is
 * skipped: the recycled graph is patched in place (rearmDecoderLayer)
 * — the fast path the serving engine runs on. On a key change the
 * handles are refreshed by a full recycle+rebuild.
 *
 * When @p vopts is non-null every fresh build — the cold path and the
 * rearm structural-key fallback, but not the structure-preserving rearm
 * itself — is statically verified (Graph::verify) before it runs; an
 * error-severity finding raises FatalError with the rendered report.
 * Verification is read-only, so a clean verified run is byte-identical
 * to an unverified one.
 */
SimResult runDecoderIteration(const DecoderParams& p,
                              const IterationSpec& spec,
                              dam::Scheduler* sched = nullptr,
                              Graph* reuse = nullptr,
                              DecoderRearmHandles* rearm = nullptr,
                              const verify::VerifyOptions* vopts = nullptr);

/** Run @p layers decoder layers (fresh graph each) and aggregate. */
EndToEndResult runEndToEnd(const DecoderParams& p, int64_t layers,
                           uint64_t trace_seed);

} // namespace step
