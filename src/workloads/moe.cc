#include "workloads/moe.hh"

#include <cmath>

#include "ops/higher_order.hh"
#include "ops/offchip.hh"
#include "ops/route.hh"
#include "ops/shape_ops.hh"
#include "ops/source_sink.hh"
#include "support/error.hh"

namespace step {

namespace {

/** Weight-matrix kinds. */
constexpr int kW1 = 0; // gate [H, I]
constexpr int kW3 = 1; // up   [H, I]
constexpr int kW2 = 2; // down [I, H]

/**
 * Produces one column-tile weight stream aligned with a trigger stream
 * of the packed-input shape; index is the matrix kind.
 */
using WeightLoader = std::function<StreamPort(
    const std::string& name, StreamPort trigger, int matrix)>;

struct PipelineCtx
{
    Graph& g;
    const MoeParams& p;
    int64_t matmulBw;
    /** When set, ops billed against the region bandwidth are recorded
     *  as (op, divisor) pairs for the rearm path. */
    std::vector<std::pair<OpBase*, int64_t>>* bwOps = nullptr;

    void
    record(OpBase& op, int64_t divisor)
    {
        if (bwOps)
            bwOps->emplace_back(&op, divisor);
    }
};

/** rows(name): suffix helper. */
std::string
nm(const std::string& base, const std::string& suffix)
{
    return base + "." + suffix;
}

/**
 * One matmul path: packed [.., rp] tiles [T?, K] x column-tiled weight
 * [K, N] -> [.., rp] tiles [T?, N]. The weight stream comes from the
 * loader (rank rp+1, already flattened to [.., nCols]).
 */
StreamPort
matmulPath(PipelineCtx& ctx, const std::string& name, StreamPort packed,
           StreamPort weights, int64_t n_cols, int64_t out_cols)
{
    auto& rep = ctx.g.add<RepeatOp>(nm(name, "rep"), packed, n_cols);
    auto& mm = ctx.g.add<MapOp>(
        nm(name, "mm"), std::vector<StreamPort>{rep.out(), weights},
        fns::matmul(), ctx.matmulBw,
        DataType::tile(packed.dtype.tileRows(),
                       Dim::fixed(ctx.p.weightTileCols)));
    mm.setMatmulMemSpec(1);
    ctx.record(mm, 1);
    auto& packcol = ctx.g.add<AccumOp>(
        nm(name, "packcol"), mm.out(), 1, fns::retileColInit(0),
        fns::retileColUpdate(), ctx.matmulBw / 4,
        DataType::tile(packed.dtype.tileRows(), Dim::fixed(out_cols)));
    ctx.record(packcol, 4);
    return packcol.out();
}

/**
 * Full SwiGLU expert pipeline over a flat row stream (rank r, [.., D] of
 * [1,H] rows): pack -> (W1, W3) matmuls -> swiglu -> W2 matmul ->
 * unpack+filter -> flat row stream of [1,H] outputs (rank r).
 */
StreamPort
expertPipeline(PipelineCtx& ctx, const std::string& name, StreamPort rows,
               const WeightLoader& loader)
{
    Graph& g = ctx.g;
    const MoeParams& p = ctx.p;
    const int64_t H = p.cfg.hidden;
    const int64_t I = p.cfg.moeIntermediate;
    const int64_t Tc = p.weightTileCols;
    const int64_t n_cols_up = I / Tc;
    const int64_t n_cols_down = H / Tc;
    const size_t r = rows.rank();

    // ---- pack rows into tiles --------------------------------------
    StreamPort packed;
    StreamPort pad; // only for static tiling
    if (p.tiling == Tiling::Static) {
        Value zero_row = p.functional
            ? Value(Tile::zeros(1, H))
            : Value(Tile(1, H));
        auto& rs = g.add<ReshapeOp>(nm(name, "reshape"), rows, 0,
                                    p.tileRows,
                                    std::optional<Value>(zero_row));
        auto& pk = g.add<AccumOp>(
            nm(name, "packrow"), rs.out(), 1, fns::retileRowInit(H),
            fns::retileRowUpdate(), ctx.matmulBw / 4,
            DataType::tile(p.tileRows, H));
        ctx.record(pk, 4);
        packed = pk.out();
        pad = rs.padOut();
    } else {
        StreamPort grouped = rows;
        if (r == 1) {
            auto& pr = g.add<PromoteOp>(nm(name, "promote"), rows);
            grouped = pr.out();
        }
        auto& pk = g.add<AccumOp>(
            nm(name, "packrow"), grouped, 1, fns::retileRowInit(H),
            fns::retileRowUpdate(), ctx.matmulBw / 4,
            DataType::tile(Dim::ragged(), Dim::fixed(H)));
        ctx.record(pk, 4);
        packed = pk.out();
    }

    // ---- gate / up projections + swiglu ----------------------------
    auto& pbc = g.add<BroadcastOp>(nm(name, "packed_bc"), packed, 4);
    StreamPort w1 = loader(nm(name, "w1"), pbc.out(2), kW1);
    StreamPort w3 = loader(nm(name, "w3"), pbc.out(3), kW3);
    StreamPort gate = matmulPath(ctx, nm(name, "gate"), pbc.out(0), w1,
                                 n_cols_up, I);
    StreamPort up = matmulPath(ctx, nm(name, "up"), pbc.out(1), w3,
                               n_cols_up, I);
    auto& act = g.add<MapOp>(
        nm(name, "swiglu"), std::vector<StreamPort>{gate, up},
        fns::swigluFn(), 256,
        DataType::tile(packed.dtype.tileRows(), Dim::fixed(I)));

    // ---- down projection -------------------------------------------
    auto& abc = g.add<BroadcastOp>(nm(name, "act_bc"), act.out(), 2);
    StreamPort w2 = loader(nm(name, "w2"), abc.out(1), kW2);
    StreamPort down = matmulPath(ctx, nm(name, "down"), abc.out(0), w2,
                                 n_cols_down, H);

    // ---- unpack back to rows ---------------------------------------
    auto& fm = g.add<FlatMapOp>(nm(name, "unpack"), down,
                                fns::retileStreamify(1),
                                StreamShape({Dim::ragged()}),
                                DataType::tile(1, H));
    StreamPort out_rows = fm.out();
    if (p.tiling == Tiling::Static) {
        auto& fi = g.add<FilterOp>(nm(name, "dropPad"), out_rows, pad);
        out_rows = fi.out();
    }
    if (out_rows.rank() > r) {
        auto& fl = g.add<FlattenOp>(nm(name, "flatrows"), out_rows, 0,
                                    out_rows.rank() - r);
        out_rows = fl.out();
    }
    return out_rows;
}

/** Bump allocator for distinct off-chip address ranges. */
struct AddrSpace
{
    uint64_t cursor = 0;

    uint64_t
    take(int64_t bytes)
    {
        uint64_t base = cursor;
        cursor += static_cast<uint64_t>(bytes);
        // Keep ranges channel-aligned.
        cursor = (cursor + 4095u) & ~uint64_t{4095};
        return base;
    }
};

struct MatrixGeom
{
    int64_t rows;   // K
    int64_t cols;   // N
};

MatrixGeom
matrixGeom(const MoeParams& p, int matrix)
{
    if (matrix == kW2)
        return {p.cfg.moeIntermediate, p.cfg.hidden};
    return {p.cfg.hidden, p.cfg.moeIntermediate};
}

/** Router selector stream tokens ([B] multi-hot; build and rearm must
 *  agree exactly). */
std::vector<Token>
moeSelTokens(const ExpertTrace& trace)
{
    std::vector<Token> toks;
    toks.reserve(trace.perToken.size() + 1);
    for (const auto& picks : trace.perToken)
        toks.push_back(Token::data(Selector(picks)));
    toks.push_back(Token::done());
    return toks;
}

} // namespace

std::vector<Token>
rowStreamTokens(int64_t batch, int64_t hidden,
                const std::vector<std::vector<float>>* rows)
{
    std::vector<Token> toks;
    StopCoalescer coal;
    for (int64_t t = 0; t < batch; ++t) {
        Tile row = rows
            ? Tile::withData(1, hidden, (*rows)[static_cast<size_t>(t)])
            : Tile(1, hidden);
        for (auto& tk : coal.onData(Value(std::move(row))))
            toks.push_back(tk);
        for (auto& tk : coal.onStop(1))
            toks.push_back(tk);
    }
    for (auto& tk : coal.onDone())
        toks.push_back(tk);
    return toks;
}

int64_t
moeRegionBw(const MoeParams& p)
{
    const int64_t E = p.cfg.numExperts;
    const int64_t regions = p.parallelRegions > 0 ? p.parallelRegions : E;
    STEP_ASSERT(regions > 0 && E % regions == 0,
                "experts must divide evenly into " << regions
                << " regions");
    const int64_t experts_per_region = E / regions;
    if (experts_per_region <= 1)
        return p.computeBwPerMatmul;
    auto factor = static_cast<int64_t>(std::ceil(
        p.regionBwBeta *
        std::sqrt(static_cast<double>(experts_per_region))));
    return p.computeBwPerMatmul * std::min(experts_per_region, factor);
}

std::vector<float>
moeWeightMatrix(uint64_t seed, int64_t expert, int matrix, int64_t rows,
                int64_t cols)
{
    Rng rng(seed * 7919 + static_cast<uint64_t>(expert) * 31 +
            static_cast<uint64_t>(matrix) + 1);
    std::vector<float> w(static_cast<size_t>(rows * cols));
    for (auto& x : w)
        x = static_cast<float>(rng.uniform() * 0.2 - 0.1);
    return w;
}

MoeBuild
buildMoeLayer(Graph& g, const MoeParams& p, const ExpertTrace& trace,
              const std::vector<std::vector<float>>* token_rows,
              const StreamPort* ext_in, MoeRearmHandles* rearm)
{
    const int64_t H = p.cfg.hidden;
    const int64_t I = p.cfg.moeIntermediate;
    const int64_t E = p.cfg.numExperts;
    const int64_t Tc = p.weightTileCols;
    const auto B = static_cast<int64_t>(trace.perToken.size());
    STEP_ASSERT(I % Tc == 0 && H % Tc == 0,
                "weight tile cols must divide I and H");
    STEP_ASSERT(!p.functional || token_rows,
                "functional mode needs input activations");

    // ---- input token stream [B, 1] of [1,H] rows --------------------
    StreamPort in_port;
    if (ext_in) {
        in_port = *ext_in;
    } else {
        auto& in_src = g.add<SourceOp>(
            "moe.in", rowStreamTokens(B, H, token_rows),
            StreamShape({Dim::fixed(B), Dim::fixed(1)}),
            DataType::tile(1, H));
        if (rearm)
            rearm->in = &in_src;
        in_port = in_src.out();
    }

    // ---- router selector streams ------------------------------------
    auto& selA = g.add<SourceOp>("moe.selA", moeSelTokens(trace),
                                 StreamShape({Dim::fixed(B)}),
                                 DataType::selector(E));
    auto& selB = g.add<SourceOp>("moe.selB", moeSelTokens(trace),
                                 StreamShape({Dim::fixed(B)}),
                                 DataType::selector(E));
    if (rearm) {
        rearm->selA = &selA;
        rearm->selB = &selB;
    }

    auto& part = g.add<PartitionOp>("moe.part", in_port, selA.out(),
                                    1, static_cast<size_t>(E));

    // ---- off-chip weights -------------------------------------------
    AddrSpace addr;
    auto make_tensor = [&](int64_t experts_spanned, int64_t e0,
                           int matrix) {
        MatrixGeom geo = matrixGeom(p, matrix);
        int64_t rows = geo.rows * experts_spanned;
        uint64_t base = addr.take(rows * geo.cols * 2);
        if (!p.functional) {
            return OffChipTensor::shapeOnly(base, rows, geo.cols,
                                            geo.rows, Tc);
        }
        std::vector<float> data;
        data.reserve(static_cast<size_t>(rows * geo.cols));
        for (int64_t e = e0; e < e0 + experts_spanned; ++e) {
            auto w = moeWeightMatrix(p.seed, e, matrix, geo.rows,
                                     geo.cols);
            data.insert(data.end(), w.begin(), w.end());
        }
        return OffChipTensor::fromData(base, rows, geo.cols, geo.rows, Tc,
                                       std::move(data));
    };

    const int64_t regions = p.parallelRegions > 0 ? p.parallelRegions : E;
    const int64_t experts_per_region = E / regions;
    STEP_ASSERT(E % regions == 0, "experts must divide evenly into "
                << regions << " regions");
    const bool timemux = experts_per_region > 1;
    const int64_t region_bw = moeRegionBw(p);

    std::vector<StreamPort> expert_rows(static_cast<size_t>(E));

    if (!timemux) {
        // One dedicated subgraph per expert (Figure 7).
        for (int64_t e = 0; e < E; ++e) {
            std::string name = "moe.e" + std::to_string(e);
            OffChipTensor w1t = make_tensor(1, e, kW1);
            OffChipTensor w3t = make_tensor(1, e, kW3);
            OffChipTensor w2t = make_tensor(1, e, kW2);
            PipelineCtx ctx{g, p, region_bw,
                            rearm ? &rearm->regionBwOps : nullptr};
            WeightLoader loader =
                [&, w1t, w3t, w2t](const std::string& lname,
                                   StreamPort trigger,
                                   int matrix) -> StreamPort {
                const OffChipTensor& t = matrix == kW1 ? w1t
                                       : matrix == kW3 ? w3t : w2t;
                MatrixGeom geo = matrixGeom(p, matrix);
                auto& ld = g.add<LinearOffChipLoadOp>(
                    nm(lname, "load"), trigger, t,
                    std::array<int64_t, 2>{geo.cols / Tc, 1},
                    std::array<int64_t, 2>{1, geo.cols / Tc});
                auto& fl = g.add<FlattenOp>(nm(lname, "flat"), ld.out(),
                                            0, 1);
                return fl.out();
            };
            auto& rows_flat = g.add<FlattenOp>(nm(name, "rows"),
                                               part.out(
                                                   static_cast<size_t>(e)),
                                               0, 1);
            StreamPort out_rows = expertPipeline(ctx, name,
                                                 rows_flat.out(), loader);
            auto& chunked = g.add<RepeatOp>(nm(name, "chunk"), out_rows,
                                            1);
            expert_rows[static_cast<size_t>(e)] = chunked.out();
        }
    } else {
        // Configuration time-multiplexing (Figure 11): each expert keeps
        // its own cheap pack stage (Partition -> Accum, as in the
        // figure); the packed tiles of all member experts eagerly merge
        // into one shared compute region, whose weights are fetched
        // data-dependently per tile via RandomOffChipLoad.
        OffChipTensor w1all = make_tensor(E, 0, kW1);
        OffChipTensor w3all = make_tensor(E, 0, kW3);
        OffChipTensor w2all = make_tensor(E, 0, kW2);
        for (int64_t rgn = 0; rgn < regions; ++rgn) {
            std::string name = "moe.r" + std::to_string(rgn);
            int64_t e0 = rgn * experts_per_region;
            PipelineCtx ctx{g, p, region_bw,
                            rearm ? &rearm->regionBwOps : nullptr};

            // Per-expert packing into tiles.
            std::vector<StreamPort> packed_streams;
            std::vector<StreamPort> pad_streams(
                static_cast<size_t>(experts_per_region));
            for (int64_t k = 0; k < experts_per_region; ++k) {
                std::string en = nm(name, "e" + std::to_string(k));
                auto& rows = g.add<FlattenOp>(
                    nm(en, "rows"), part.out(static_cast<size_t>(e0 + k)),
                    0, 1);
                if (p.tiling == Tiling::Static) {
                    Value zero_row = p.functional
                        ? Value(Tile::zeros(1, H))
                        : Value(Tile(1, H));
                    auto& rs = g.add<ReshapeOp>(
                        nm(en, "reshape"), rows.out(), 0, p.tileRows,
                        std::optional<Value>(zero_row));
                    auto& pk = g.add<AccumOp>(
                        nm(en, "packrow"), rs.out(), 1,
                        fns::retileRowInit(H), fns::retileRowUpdate(),
                        p.computeBwPerMatmul / 4,
                        DataType::tile(p.tileRows, H));
                    if (rearm)
                        rearm->baseBwOps.emplace_back(&pk, 4);
                    packed_streams.push_back(pk.out());
                    pad_streams[static_cast<size_t>(k)] = rs.padOut();
                } else {
                    auto& pr = g.add<PromoteOp>(nm(en, "promote"),
                                                rows.out());
                    auto& pk = g.add<AccumOp>(
                        nm(en, "packrow"), pr.out(), 1,
                        fns::retileRowInit(H), fns::retileRowUpdate(),
                        p.computeBwPerMatmul / 4,
                        DataType::tile(Dim::ragged(), Dim::fixed(H)));
                    if (rearm)
                        rearm->baseBwOps.emplace_back(&pk, 4);
                    packed_streams.push_back(pk.out());
                }
            }

            // Merge packed tiles by availability; the selector stream
            // carries each tile's origin expert.
            auto& em = g.add<EagerMergeOp>(nm(name, "merge"),
                                           packed_streams, 0);
            auto& selbc = g.add<BroadcastOp>(nm(name, "selbc"),
                                             em.selOut(), 2);
            MapFn to_global = [e0](const std::vector<Value>& a,
                                   int64_t&) -> Value {
                return Selector::oneHot(
                    a[0].selector().indices[0] +
                    static_cast<uint32_t>(e0));
            };
            auto& gids = g.add<MapOp>(
                nm(name, "gid"), std::vector<StreamPort>{selbc.out(0)},
                to_global, 0, DataType::selector(E));
            auto& gidbc = g.add<BroadcastOp>(nm(name, "gidbc"),
                                             gids.out(), 3);

            // Shared expert subgraph over the merged tile stream.
            auto& pbc = g.add<BroadcastOp>(nm(name, "pbc"), em.out(), 2);
            auto random_loader = [&](const std::string& lname,
                                     StreamPort ids,
                                     int matrix) -> StreamPort {
                const OffChipTensor& t = matrix == kW1 ? w1all
                                       : matrix == kW3 ? w3all : w2all;
                MatrixGeom geo = matrixGeom(p, matrix);
                auto& ld = g.add<RandomOffChipLoadOp>(
                    nm(lname, "load"), ids, t, geo.rows * geo.cols * 2,
                    std::array<int64_t, 2>{1, geo.cols / Tc}, true);
                auto& fl = g.add<FlattenOp>(nm(lname, "flat"), ld.out(),
                                            0, 1);
                return fl.out();
            };
            StreamPort w1s = random_loader(nm(name, "w1"), gidbc.out(0),
                                           kW1);
            StreamPort w3s = random_loader(nm(name, "w3"), gidbc.out(1),
                                           kW3);
            StreamPort gate = matmulPath(ctx, nm(name, "gate"),
                                         pbc.out(0), w1s, I / Tc, I);
            StreamPort up = matmulPath(ctx, nm(name, "up"), pbc.out(1),
                                       w3s, I / Tc, I);
            auto& act = g.add<MapOp>(
                nm(name, "swiglu"), std::vector<StreamPort>{gate, up},
                fns::swigluFn(), 256,
                DataType::tile(p.tiling == Tiling::Static
                                   ? Dim::fixed(p.tileRows)
                                   : Dim::ragged(),
                               Dim::fixed(I)));
            StreamPort w2s = random_loader(nm(name, "w2"), gidbc.out(2),
                                           kW2);
            StreamPort down = matmulPath(ctx, nm(name, "down"),
                                         act.out(), w2s, H / Tc, H);
            auto& fm = g.add<FlatMapOp>(nm(name, "unpack"), down,
                                        fns::retileStreamify(1),
                                        StreamShape({Dim::ragged()}),
                                        DataType::tile(1, H));

            // Route rows back per expert, then drop that expert's pads.
            auto& opart = g.add<PartitionOp>(
                nm(name, "opart"), fm.out(), selbc.out(1), 1,
                static_cast<size_t>(experts_per_region));
            for (int64_t k = 0; k < experts_per_region; ++k) {
                std::string en = nm(name, "oe" + std::to_string(k));
                auto& fl = g.add<FlattenOp>(
                    nm(en, "flat"), opart.out(static_cast<size_t>(k)), 0,
                    1);
                StreamPort out_rows = fl.out();
                if (p.tiling == Tiling::Static) {
                    auto& pfl = g.add<FlattenOp>(
                        nm(en, "padflat"),
                        pad_streams[static_cast<size_t>(k)], 0, 1);
                    auto& fi = g.add<FilterOp>(nm(en, "dropPad"),
                                               out_rows, pfl.out());
                    out_rows = fi.out();
                }
                auto& chunked = g.add<RepeatOp>(nm(en, "chunk"),
                                                out_rows, 1);
                expert_rows[static_cast<size_t>(e0 + k)] = chunked.out();
            }
        }
    }

    // ---- gather + combine -------------------------------------------
    auto& re = g.add<ReassembleOp>("moe.gather", expert_rows, selB.out(),
                                   1);
    auto& comb = g.add<AccumOp>(
        "moe.combine", re.out(), 2, fns::zeroInit(1, H), fns::addUpdate(),
        256, DataType::tile(1, H));
    return MoeBuild{comb.out()};
}

void
rearmMoeLayer(const MoeRearmHandles& h, const MoeParams& p,
              const ExpertTrace& trace)
{
    STEP_ASSERT(!p.functional,
                "rearm supports timing mode only (functional payloads "
                "require a rebuild)");
    RearmSpec s;
    if (h.selA) {
        std::vector<Token> toks = moeSelTokens(trace);
        s.tokens = &toks;
        h.selA->rearm(s);
    }
    if (h.selB) {
        std::vector<Token> toks = moeSelTokens(trace);
        s.tokens = &toks;
        h.selB->rearm(s);
    }
    if (h.in) {
        std::vector<Token> toks = rowStreamTokens(
            static_cast<int64_t>(trace.perToken.size()), p.cfg.hidden);
        s.tokens = &toks;
        h.in->rearm(s);
    }

    const int64_t region_bw = moeRegionBw(p);
    for (const auto& [op, div] : h.regionBwOps) {
        RearmSpec bs;
        bs.computeBw = region_bw / div;
        op->rearm(bs);
    }
    for (const auto& [op, div] : h.baseBwOps) {
        RearmSpec bs;
        bs.computeBw = p.computeBwPerMatmul / div;
        op->rearm(bs);
    }
}

std::vector<std::vector<float>>
referenceMoe(const MoeParams& p, const ExpertTrace& trace,
             const std::vector<std::vector<float>>& tokens)
{
    const int64_t H = p.cfg.hidden;
    const int64_t I = p.cfg.moeIntermediate;
    std::vector<std::vector<float>> out(
        tokens.size(), std::vector<float>(static_cast<size_t>(H), 0.0f));
    for (size_t t = 0; t < tokens.size(); ++t) {
        Tile x = Tile::withData(1, H, tokens[t]);
        for (uint32_t e : trace.perToken[t]) {
            Tile w1 = Tile::withData(H, I,
                moeWeightMatrix(p.seed, e, kW1, H, I));
            Tile w3 = Tile::withData(H, I,
                moeWeightMatrix(p.seed, e, kW3, H, I));
            Tile w2 = Tile::withData(I, H,
                moeWeightMatrix(p.seed, e, kW2, I, H));
            Tile act = elemMul(silu(matmul(x, w1)), matmul(x, w3));
            Tile y = matmul(act, w2);
            for (int64_t d = 0; d < H; ++d)
                out[t][static_cast<size_t>(d)] += y.at(0, d);
        }
    }
    return out;
}

int64_t
moeUsefulFlops(const MoeParams& p, const ExpertTrace& trace)
{
    int64_t assignments = 0;
    for (const auto& tok : trace.perToken)
        assignments += static_cast<int64_t>(tok.size());
    int64_t per_row = 2 * p.cfg.hidden * p.cfg.moeIntermediate * 2 +
                      2 * p.cfg.moeIntermediate * p.cfg.hidden;
    return assignments * per_row;
}

int64_t
moeStaticWeightTraffic(const MoeParams& p, const ExpertTrace& trace,
                       int64_t tile)
{
    int64_t weight_bytes = 3 * p.cfg.hidden * p.cfg.moeIntermediate * 2;
    int64_t traffic = 0;
    for (int64_t c : trace.binCounts())
        traffic += ((c + tile - 1) / tile) * weight_bytes;
    return traffic;
}

} // namespace step
