#include "workloads/attention.hh"

#include <cmath>

#include "ops/higher_order.hh"
#include "ops/offchip.hh"
#include "ops/route.hh"
#include "ops/shape_ops.hh"
#include "ops/source_sink.hh"
#include "support/error.hh"

namespace step {

namespace {

std::string
nm(const std::string& base, const std::string& suffix)
{
    return base + "." + suffix;
}

/** Per-request base tile offsets into the packed KV layout. */
std::vector<int64_t>
kvBaseTiles(const std::vector<int64_t>& kv_lens, int64_t Tk,
            int64_t* tot_tiles)
{
    std::vector<int64_t> base_tile(kv_lens.size());
    int64_t tot = 0;
    for (size_t r = 0; r < kv_lens.size(); ++r) {
        base_tile[r] = tot;
        tot += (kv_lens[r] + Tk - 1) / Tk;
    }
    *tot_tiles = tot;
    return base_tile;
}

Tile
metaTile(const std::vector<int64_t>& kv_lens,
         const std::vector<int64_t>& base_tile, int64_t Tk, int64_t r)
{
    int64_t n_tiles = (kv_lens[static_cast<size_t>(r)] + Tk - 1) / Tk;
    return Tile::withData(
        1, 2,
        {static_cast<float>(n_tiles),
         static_cast<float>(base_tile[static_cast<size_t>(r)])});
}

/** Meta stream tokens for the ext_q request path ([B] of [1,2]). */
std::vector<Token>
attnMetaTokens(const std::vector<int64_t>& kv_lens,
               const std::vector<int64_t>& base_tile, int64_t Tk)
{
    std::vector<Token> toks;
    StopCoalescer coal;
    for (size_t r = 0; r < kv_lens.size(); ++r) {
        for (auto& tk : coal.onData(Value(metaTile(
                 kv_lens, base_tile, Tk, static_cast<int64_t>(r)))))
            toks.push_back(tk);
    }
    for (auto& tk : coal.onDone())
        toks.push_back(tk);
    return toks;
}

/** Static-assignment selector tokens ([B] one-hot). */
std::vector<Token>
assignSelTokens(const std::vector<uint32_t>& assign)
{
    std::vector<Token> toks;
    toks.reserve(assign.size() + 1);
    for (uint32_t a : assign)
        toks.push_back(Token::data(Selector::oneHot(a)));
    toks.push_back(Token::done());
    return toks;
}

/** Shape-only K/V tensor pair for the current KV layout. */
void
kvShapeTensors(int64_t tot_tiles, int64_t Tk, int64_t d, OffChipTensor* kt,
               OffChipTensor* vt)
{
    *kt = OffChipTensor::shapeOnly(0, tot_tiles * Tk, d, Tk, d);
    uint64_t kbytes = static_cast<uint64_t>(tot_tiles * Tk * d * 2);
    *vt = OffChipTensor::shapeOnly((kbytes + 4095u) & ~uint64_t{4095},
                                   tot_tiles * Tk, d, Tk, d);
}

/** Standalone (q, meta) request stream ([B,1] of tuples; q rows are
 *  shape-only when @p qs is null). */
std::vector<Token>
attnReqTokens(const std::vector<int64_t>& kv_lens,
              const std::vector<int64_t>& base_tile, int64_t Tk, int64_t d,
              const std::vector<std::vector<float>>* qs)
{
    std::vector<Token> toks;
    StopCoalescer coal;
    for (size_t r = 0; r < kv_lens.size(); ++r) {
        Tile q = qs ? Tile::withData(1, d, (*qs)[r]) : Tile(1, d);
        for (auto& tk : coal.onData(Value::tuple(
                 {std::move(q), metaTile(kv_lens, base_tile, Tk,
                                         static_cast<int64_t>(r))})))
            toks.push_back(tk);
        for (auto& tk : coal.onStop(1))
            toks.push_back(tk);
    }
    for (auto& tk : coal.onDone())
        toks.push_back(tk);
    return toks;
}

} // namespace

std::vector<uint32_t>
staticAssignment(const AttnParams& p)
{
    if (p.staticAssign)
        return *p.staticAssign;
    std::vector<uint32_t> assign;
    for (int64_t t = 0; t < p.batch; ++t) {
        if (p.strategy == ParStrategy::StaticCoarse) {
            assign.push_back(static_cast<uint32_t>(
                std::min(t / p.coarseBlock, p.regions - 1)));
        } else {
            assign.push_back(static_cast<uint32_t>(t % p.regions));
        }
    }
    return assign;
}

AttnBuild
buildAttentionLayer(Graph& g, const AttnParams& p,
                    const std::vector<int64_t>& kv_lens,
                    const std::vector<std::vector<float>>* qs,
                    const std::vector<std::vector<float>>* ks,
                    const std::vector<std::vector<float>>* vs,
                    const StreamPort* ext_q, AttnRearmHandles* rearm)
{
    const auto B = static_cast<int64_t>(kv_lens.size());
    const int64_t d = p.cfg.numKvHeads * p.cfg.headDim;
    const int64_t Tk = p.kvTileRows;
    const auto P = static_cast<size_t>(p.regions);
    STEP_ASSERT(!p.functional || (qs && ks && vs),
                "functional mode needs q/k/v payloads");

    // ---- KV tensors laid out per request ----------------------------
    int64_t tot_tiles = 0;
    std::vector<int64_t> base_tile = kvBaseTiles(kv_lens, Tk, &tot_tiles);
    if (p.functional) {
        for (int64_t len : kv_lens) {
            STEP_ASSERT(len % Tk == 0,
                        "functional mode needs KV lengths divisible by "
                        "the KV tile");
        }
    }
    // Same layout on both paths: the rearm path re-derives these via
    // the same helper, so build and rearm can never drift.
    OffChipTensor kt;
    OffChipTensor vt;
    kvShapeTensors(tot_tiles, Tk, d, &kt, &vt);
    if (p.functional) {
        auto fill = [&](OffChipTensor& t,
                        const std::vector<std::vector<float>>* rows) {
            std::vector<float> payload(
                static_cast<size_t>(tot_tiles * Tk * d), 0.0f);
            for (int64_t r = 0; r < B; ++r) {
                const auto& mat = (*rows)[static_cast<size_t>(r)];
                int64_t off = base_tile[static_cast<size_t>(r)] * Tk * d;
                std::copy(mat.begin(), mat.end(),
                          payload.begin() + static_cast<long>(off));
            }
            t = OffChipTensor::fromData(t.baseAddr, tot_tiles * Tk, d, Tk,
                                        d, std::move(payload));
        };
        fill(kt, ks);
        fill(vt, vs);
    }

    // ---- request stream [B,1] of (q, meta) tuples --------------------
    DataType req_dt = DataType::tuple(
        {DataType::tile(1, d), DataType::tile(1, 2)});
    StreamPort req_port;
    if (ext_q) {
        // q rows arrive from the previous block; zip with a meta stream
        // to form the (q, meta) request tuples.
        auto& meta_src = g.add<SourceOp>(
            "attn.meta", attnMetaTokens(kv_lens, base_tile, Tk),
            StreamShape({Dim::fixed(B)}), DataType::tile(1, 2));
        if (rearm)
            rearm->meta = &meta_src;
        auto& qflat = g.add<FlattenOp>("attn.qflat", *ext_q, 0, 1);
        auto& z = g.add<ZipOp>(
            "attn.reqzip",
            std::vector<StreamPort>{qflat.out(), meta_src.out()});
        auto& rp = g.add<RepeatOp>("attn.reqchunk", z.out(), 1);
        req_port = rp.out();
    } else {
        auto& req_src = g.add<SourceOp>(
            "attn.req",
            attnReqTokens(kv_lens, base_tile, Tk, d,
                          p.functional ? qs : nullptr),
            StreamShape({Dim::fixed(B), Dim::fixed(1)}), req_dt);
        if (rearm)
            rearm->req = &req_src;
        req_port = req_src.out();
    }

    // ---- selector streams per strategy --------------------------------
    StreamPort part_sel;
    StreamPort gather_sel;

    const bool dynamic = p.strategy == ParStrategy::Dynamic &&
                         !p.staticAssign;
    if (!dynamic) {
        auto assign = staticAssignment(p);
        auto mk_sel = [&](const std::string& name) -> SourceOp& {
            return g.add<SourceOp>(name, assignSelTokens(assign),
                                   StreamShape({Dim::fixed(B)}),
                                   DataType::selector(p.regions));
        };
        SourceOp& sa = mk_sel("attn.selA");
        SourceOp& sb = mk_sel("attn.selB");
        if (rearm) {
            rearm->selA = &sa;
            rearm->selB = &sb;
        }
        part_sel = sa.out();
        gather_sel = sb.out();
    }

    // For the dynamic strategy the partition selector comes from the
    // dispatcher, which consumes region completions (Figure 16). The
    // regions don't exist yet, so the completion channels are created
    // up front and each region later relays its finish signals into
    // them (RelayOp).
    std::vector<dam::Channel*> completion_chans;
    if (dynamic) {
        std::vector<StreamPort> comp_ports;
        for (size_t r = 0; r < P; ++r) {
            auto& ch = g.makeChannel(
                "attn.comp" + std::to_string(r),
                static_cast<size_t>(B) + 16);
            completion_chans.push_back(&ch);
            comp_ports.push_back(StreamPort{
                &ch, StreamShape({Dim::ragged()}), DataType::tile(1, d)});
        }
        auto& em = g.add<EagerMergeOp>("attn.compMerge", comp_ports, 0);
        g.add<SinkOp>("attn.compSink", em.out());
        auto& disp = g.add<DispatcherOp>("attn.disp", em.selOut(), P,
                                         static_cast<uint64_t>(B));
        auto& selbc = g.add<BroadcastOp>("attn.selbc", disp.out(), 2);
        part_sel = selbc.out(0);
        gather_sel = selbc.out(1);
    }

    auto& part = g.add<PartitionOp>("attn.part", req_port, part_sel,
                                    1, P);

    // ---- per-region attention pipeline -------------------------------
    std::vector<StreamPort> region_outs;
    for (size_t r = 0; r < P; ++r) {
        std::string name = "attn.r" + std::to_string(r);
        auto& flat = g.add<FlattenOp>(nm(name, "flat"), part.out(r), 0, 1);
        auto& bc = g.add<BroadcastOp>(nm(name, "bc"), flat.out(), 2);

        // meta -> KV tile address stream.
        FlatMapFn addr_fn = [](const Value& v, std::vector<Token>& out,
                               int64_t&) {
            const auto& tup = v.tupleElems();
            const Tile& meta = tup[1].tile();
            auto n = static_cast<int64_t>(meta.at(0, 0));
            auto base = static_cast<int64_t>(meta.at(0, 1));
            for (int64_t i = 0; i < n; ++i) {
                out.push_back(Token::data(Tile::withData(
                    1, 1, {static_cast<float>(base + i)}, 1)));
            }
        };
        auto& addrs = g.add<FlatMapOp>(nm(name, "addr"), bc.out(0),
                                       addr_fn,
                                       StreamShape({Dim::ragged()}),
                                       DataType::tile(1, 1, 1));
        auto& abc = g.add<BroadcastOp>(nm(name, "abc"), addrs.out(), 3);
        auto& kload = g.add<RandomOffChipLoadOp>(nm(name, "k"), abc.out(0),
                                                 kt, kt.tileBytes());
        auto& vload = g.add<RandomOffChipLoadOp>(nm(name, "v"), abc.out(1),
                                                 vt, vt.tileBytes());
        if (rearm) {
            rearm->kLoads.push_back(&kload);
            rearm->vLoads.push_back(&vload);
        }

        // q stream, expanded over the request's KV tiles.
        MapFn get_q = [](const std::vector<Value>& a, int64_t&) -> Value {
            return a[0].tupleElems()[0];
        };
        auto& q = g.add<MapOp>(nm(name, "q"),
                               std::vector<StreamPort>{bc.out(1)}, get_q,
                               0, DataType::tile(1, d));
        auto& qr = g.add<RepeatOp>(nm(name, "qrep"), q.out(), 1);
        auto& qe = g.add<ExpandOp>(nm(name, "qexp"), qr.out(), abc.out(2),
                                   1);
        auto& zip = g.add<ZipOp>(
            nm(name, "zip"),
            std::vector<StreamPort>{qe.out(), kload.out(), vload.out()});
        int64_t gqa = std::max<int64_t>(
            1, p.cfg.numQHeads / std::max<int64_t>(1, p.cfg.numKvHeads));
        auto& att = g.add<AccumOp>(
            nm(name, "attn"), zip.out(), 1, fns::attnInit(d),
            fns::attnUpdate(gqa), p.computeBw,
            DataType::tuple({DataType::tile(1, 1), DataType::tile(1, 1),
                             DataType::tile(1, d)}));
        if (rearm)
            rearm->bwOps.emplace_back(&att, 1);
        auto& fin = g.add<MapOp>(nm(name, "fin"),
                                 std::vector<StreamPort>{att.out()},
                                 fns::attnFinish(), 256,
                                 DataType::tile(1, d));
        StreamPort out_rows = fin.out();
        if (dynamic) {
            auto& fbc = g.add<BroadcastOp>(nm(name, "fbc"), out_rows, 2);
            // Completion signal into the pre-created channel feeding the
            // dispatcher's EagerMerge.
            g.add<RelayOp>(nm(name, "comp"), fbc.out(1),
                           completion_chans[r]);
            out_rows = fbc.out(0);
        }
        auto& chunk = g.add<RepeatOp>(nm(name, "chunk"), out_rows, 1);
        region_outs.push_back(chunk.out());
    }

    auto& re = g.add<ReassembleOp>("attn.gather", region_outs, gather_sel,
                                   1);
    return AttnBuild{re.out()};
}

void
rearmAttentionLayer(const AttnRearmHandles& h, const AttnParams& p,
                    const std::vector<int64_t>& kv_lens)
{
    STEP_ASSERT(!p.functional,
                "rearm supports timing mode only (functional payloads "
                "require a rebuild)");
    const int64_t d = p.cfg.numKvHeads * p.cfg.headDim;
    const int64_t Tk = p.kvTileRows;

    int64_t tot_tiles = 0;
    std::vector<int64_t> base_tile = kvBaseTiles(kv_lens, Tk, &tot_tiles);
    OffChipTensor kt;
    OffChipTensor vt;
    kvShapeTensors(tot_tiles, Tk, d, &kt, &vt);
    {
        RearmSpec s;
        s.tensor = &kt;
        for (RandomOffChipLoadOp* op : h.kLoads)
            op->rearm(s);
        s.tensor = &vt;
        for (RandomOffChipLoadOp* op : h.vLoads)
            op->rearm(s);
    }

    if (h.meta) {
        std::vector<Token> toks = attnMetaTokens(kv_lens, base_tile, Tk);
        RearmSpec s;
        s.tokens = &toks;
        h.meta->rearm(s);
    }
    if (h.req) {
        std::vector<Token> toks =
            attnReqTokens(kv_lens, base_tile, Tk, d, nullptr);
        RearmSpec s;
        s.tokens = &toks;
        h.req->rearm(s);
    }
    if (h.selA || h.selB) {
        auto assign = staticAssignment(p);
        RearmSpec s;
        std::vector<Token> ta = assignSelTokens(assign);
        std::vector<Token> tb = assignSelTokens(assign);
        if (h.selA) {
            s.tokens = &ta;
            h.selA->rearm(s);
        }
        if (h.selB) {
            s.tokens = &tb;
            h.selB->rearm(s);
        }
    }
    for (const auto& [op, div] : h.bwOps) {
        RearmSpec s;
        s.computeBw = p.computeBw / div;
        op->rearm(s);
    }
}

std::vector<std::vector<float>>
referenceAttention(const AttnParams& p,
                   const std::vector<int64_t>& kv_lens,
                   const std::vector<std::vector<float>>& qs,
                   const std::vector<std::vector<float>>& ks,
                   const std::vector<std::vector<float>>& vs)
{
    const int64_t d = p.cfg.numKvHeads * p.cfg.headDim;
    std::vector<std::vector<float>> out;
    for (size_t r = 0; r < kv_lens.size(); ++r) {
        int64_t L = kv_lens[r];
        const auto& q = qs[r];
        std::vector<float> scores(static_cast<size_t>(L));
        float m = -1e30f;
        float scale = 1.0f / std::sqrt(static_cast<float>(d));
        for (int64_t t = 0; t < L; ++t) {
            float s = 0.0f;
            for (int64_t j = 0; j < d; ++j)
                s += q[static_cast<size_t>(j)] *
                     ks[r][static_cast<size_t>(t * d + j)];
            s *= scale;
            scores[static_cast<size_t>(t)] = s;
            m = std::max(m, s);
        }
        float l = 0.0f;
        for (auto& s : scores) {
            s = std::exp(s - m);
            l += s;
        }
        std::vector<float> o(static_cast<size_t>(d), 0.0f);
        for (int64_t t = 0; t < L; ++t)
            for (int64_t j = 0; j < d; ++j)
                o[static_cast<size_t>(j)] +=
                    scores[static_cast<size_t>(t)] *
                    vs[r][static_cast<size_t>(t * d + j)];
        for (auto& x : o)
            x /= l;
        out.push_back(std::move(o));
    }
    return out;
}

} // namespace step
