#include "workloads/decoder.hh"

#include "ops/higher_order.hh"
#include "ops/offchip.hh"
#include "ops/shape_ops.hh"
#include "ops/source_sink.hh"
#include "support/error.hh"
#include "trace/trace.hh"
#include "verify/verifier.hh"

namespace step {

namespace {

std::string
nm(const std::string& base, const std::string& suffix)
{
    return base + "." + suffix;
}

/** Attention sub-layer parameters derived from the decoder's (build and
 *  rearm must agree exactly). */
AttnParams
attnParamsFor(const DecoderParams& p, int64_t batch)
{
    AttnParams ap;
    ap.cfg = p.cfg;
    ap.batch = batch;
    ap.strategy = p.attnStrategy;
    ap.regions = p.attnRegions;
    ap.kvTileRows = p.kvTileRows;
    ap.computeBw = p.computeBwPerMatmul;
    ap.coarseBlock = std::max<int64_t>(1, batch / p.attnRegions);
    ap.seed = p.seed;
    return ap;
}

/** MoE sub-layer parameters derived from the decoder's. */
MoeParams
moeParamsFor(const DecoderParams& p, int64_t batch)
{
    MoeParams mp;
    mp.cfg = p.cfg;
    mp.batch = batch;
    mp.tiling = p.moeTiling;
    mp.tileRows = p.moeTile;
    mp.weightTileCols = p.weightTileCols;
    mp.computeBwPerMatmul = p.cfg.moeMatmulBw;
    mp.parallelRegions = p.moeRegions;
    mp.seed = p.seed;
    return mp;
}

} // namespace

SimConfig
iterationSimConfig(int64_t batch)
{
    SimConfig sc;
    sc.channelCapacity = static_cast<size_t>(batch) + 32;
    return sc;
}

DecoderStructKey
decoderStructKey(const DecoderParams& p, int64_t batch)
{
    DecoderStructKey k;
    k.batch = batch;
    k.hidden = p.cfg.hidden;
    k.moeIntermediate = p.cfg.moeIntermediate;
    k.numExperts = p.cfg.numExperts;
    k.topK = p.cfg.topK;
    k.headDim = p.cfg.headDim;
    k.numQHeads = p.cfg.numQHeads;
    k.numKvHeads = p.cfg.numKvHeads;
    k.moeTiling = p.moeTiling;
    k.moeTile = p.moeTile;
    k.moeRegions = p.moeRegions;
    k.attnStrategy = p.attnStrategy;
    k.attnRegions = p.attnRegions;
    k.kvTileRows = p.kvTileRows;
    k.denseTile = p.denseTile;
    k.weightTileCols = p.weightTileCols;
    k.seed = p.seed;
    return k;
}

StreamPort
buildDenseProj(Graph& g, const std::string& name, StreamPort in_rows,
               int64_t in_cols, int64_t out_cols, int64_t tile_rows,
               int64_t weight_tile_cols, int64_t compute_bw,
               uint64_t weight_base_addr,
               std::vector<std::pair<OpBase*, int64_t>>* bw_ops)
{
    const int64_t Tc = weight_tile_cols;
    STEP_ASSERT(out_cols % Tc == 0, "dense out_cols must divide by tile");
    const int64_t n_cols = out_cols / Tc;

    auto& flat = g.add<FlattenOp>(nm(name, "flat"), in_rows, 0, 1);
    auto& rs = g.add<ReshapeOp>(nm(name, "reshape"), flat.out(), 0,
                                tile_rows,
                                std::optional<Value>(Tile(1, in_cols)));
    auto& pk = g.add<AccumOp>(nm(name, "pack"), rs.out(), 1,
                              fns::retileRowInit(in_cols),
                              fns::retileRowUpdate(), compute_bw / 4,
                              DataType::tile(tile_rows, in_cols));
    if (bw_ops)
        bw_ops->emplace_back(&pk, 4);
    auto& pbc = g.add<BroadcastOp>(nm(name, "pbc"), pk.out(), 2);

    OffChipTensor wt = OffChipTensor::shapeOnly(weight_base_addr, in_cols,
                                                out_cols, in_cols, Tc);
    auto& ld = g.add<LinearOffChipLoadOp>(
        nm(name, "wload"), pbc.out(1), wt, std::array<int64_t, 2>{n_cols,
                                                                  1},
        std::array<int64_t, 2>{1, n_cols});
    auto& wfl = g.add<FlattenOp>(nm(name, "wflat"), ld.out(), 0, 1);
    auto& rep = g.add<RepeatOp>(nm(name, "rep"), pbc.out(0), n_cols);
    auto& mm = g.add<MapOp>(
        nm(name, "mm"), std::vector<StreamPort>{rep.out(), wfl.out()},
        fns::matmul(), compute_bw, DataType::tile(tile_rows, Tc));
    mm.setMatmulMemSpec(1);
    if (bw_ops)
        bw_ops->emplace_back(&mm, 1);
    auto& pc = g.add<AccumOp>(nm(name, "packcol"), mm.out(), 1,
                              fns::retileColInit(0), fns::retileColUpdate(),
                              compute_bw / 4,
                              DataType::tile(tile_rows, out_cols));
    if (bw_ops)
        bw_ops->emplace_back(&pc, 4);
    auto& fm = g.add<FlatMapOp>(nm(name, "unpack"), pc.out(),
                                fns::retileStreamify(1),
                                StreamShape({Dim::ragged()}),
                                DataType::tile(1, out_cols));
    auto& fi = g.add<FilterOp>(nm(name, "dropPad"), fm.out(), rs.padOut());
    auto& fl2 = g.add<FlattenOp>(nm(name, "rows"), fi.out(), 0, 1);
    auto& ch = g.add<RepeatOp>(nm(name, "chunk"), fl2.out(), 1);
    return ch.out();
}

void
buildDecoderLayer(Graph& g, const DecoderParams& p,
                  const ExpertTrace& trace,
                  const std::vector<int64_t>& kv_lens,
                  DecoderRearmHandles* rearm)
{
    const int64_t H = p.cfg.hidden;
    const int64_t d = p.cfg.numKvHeads * p.cfg.headDim;
    const int64_t qkv_cols =
        p.cfg.numQHeads * p.cfg.headDim + 2 * d;
    const auto B = static_cast<int64_t>(kv_lens.size());
    STEP_ASSERT(static_cast<int64_t>(trace.perToken.size()) == B,
                "trace/kv batch mismatch");
    if (rearm) {
        // Drop handles from any previous build; the caller manages the
        // key, validity, and path counters around this call.
        rearm->layerIn = nullptr;
        rearm->denseBwOps.clear();
        rearm->attn = AttnRearmHandles{};
        rearm->moe = MoeRearmHandles{};
    }

    // Layer input activations.
    auto& in_src = g.add<SourceOp>(
        "layer.in", rowStreamTokens(B, H),
        StreamShape({Dim::fixed(B), Dim::fixed(1)}), DataType::tile(1, H));
    if (rearm)
        rearm->layerIn = &in_src;

    // Weight address space above the MoE/KV regions.
    const uint64_t wbase = uint64_t{1} << 40;

    // ---- QKV projection ---------------------------------------------
    StreamPort qkv = buildDenseProj(g, "qkv", in_src.out(), H, qkv_cols,
                                    p.denseTile, p.weightTileCols,
                                    p.computeBwPerMatmul, wbase,
                                    rearm ? &rearm->denseBwOps : nullptr);
    // Slice out the q head group (timing: emits a [1,d] row per token).
    MapFn slice_q = [d](const std::vector<Value>& a, int64_t&) -> Value {
        (void)a;
        return Tile(1, d);
    };
    auto& qflat = g.add<FlattenOp>("qkv.sliceflat", qkv, 0, 1);
    auto& qrows = g.add<MapOp>("qkv.sliceq",
                               std::vector<StreamPort>{qflat.out()},
                               slice_q, 0, DataType::tile(1, d));
    auto& qchunk = g.add<RepeatOp>("qkv.qchunk", qrows.out(), 1);

    // ---- attention -----------------------------------------------------
    AttnParams ap = attnParamsFor(p, B);
    StreamPort qport = qchunk.out();
    AttnBuild ab = buildAttentionLayer(g, ap, kv_lens, nullptr, nullptr,
                                       nullptr, &qport,
                                       rearm ? &rearm->attn : nullptr);
    // [B, 1, 1] -> [B, 1] rows of [1,d].
    auto& aflat = g.add<FlattenOp>("attn.outflat", ab.out, 0, 1);

    // ---- output projection back to H ---------------------------------
    StreamPort oproj = buildDenseProj(
        g, "oproj", aflat.out(), d, H, p.denseTile, p.weightTileCols,
        p.computeBwPerMatmul, wbase + (uint64_t{1} << 36),
        rearm ? &rearm->denseBwOps : nullptr);

    // ---- MoE FFN -------------------------------------------------------
    MoeParams mp = moeParamsFor(p, B);
    MoeBuild mb = buildMoeLayer(g, mp, trace, nullptr, &oproj,
                                rearm ? &rearm->moe : nullptr);

    // ---- store the layer output ----------------------------------------
    g.add<LinearOffChipStoreOp>("layer.store", mb.out,
                                uint64_t{1} << 44);
}

void
rearmDecoderLayer(Graph& g, const DecoderRearmHandles& h,
                  const DecoderParams& p, const IterationSpec& spec)
{
    const auto B = static_cast<int64_t>(spec.kvLens.size());
    STEP_ASSERT(h.valid && h.key == decoderStructKey(p, B),
                "rearmDecoderLayer structural key mismatch: recycle and "
                "rebuild instead");
    STEP_ASSERT(static_cast<int64_t>(spec.trace.perToken.size()) == B,
                "trace/kv batch mismatch");
    g.rearm(iterationSimConfig(B));

    std::vector<Token> in_toks = rowStreamTokens(B, p.cfg.hidden);
    RearmSpec s;
    s.tokens = &in_toks;
    h.layerIn->rearm(s);

    for (const auto& [op, div] : h.denseBwOps) {
        RearmSpec bs;
        bs.computeBw = p.computeBwPerMatmul / div;
        op->rearm(bs);
    }
    rearmAttentionLayer(h.attn, attnParamsFor(p, B), spec.kvLens);
    rearmMoeLayer(h.moe, moeParamsFor(p, B), spec.trace);
}

namespace {

/** Verify a freshly built iteration graph; fatal on error findings. */
void
verifyIterationGraph(const Graph& g, const verify::VerifyOptions& opts)
{
    verify::VerifyReport report = g.verify(opts);
    if (report.errors() > 0)
        stepFatal("decoder iteration graph failed static verification:\n"
                  << report.toText());
}

} // namespace

SimResult
runDecoderIteration(const DecoderParams& p, const IterationSpec& spec,
                    dam::Scheduler* sched, Graph* reuse,
                    DecoderRearmHandles* rearm,
                    const verify::VerifyOptions* vopts)
{
    const auto B = static_cast<int64_t>(spec.kvLens.size());
    STEP_ASSERT(B > 0, "decoder iteration over an empty batch");
    SimConfig sc = iterationSimConfig(B);
    if (reuse) {
        if (rearm) {
            DecoderStructKey key = decoderStructKey(p, B);
            if (rearm->valid && rearm->key == key) {
                // Fast path: patch the recycled graph in place instead
                // of re-running ~190 operator constructors. The
                // structure is the verified one, so no re-verification.
                ++rearm->rearms;
                rearmDecoderLayer(*reuse, *rearm, p, spec);
            } else {
                // Structural change (batch size, layer config, policy
                // split): fall back to a full recycle + rebuild and
                // refresh the handles.
                ++rearm->rebuilds;
                reuse->recycle(sc);
                buildDecoderLayer(*reuse, p, spec.trace, spec.kvLens,
                                  rearm);
                rearm->key = key;
                rearm->valid = true;
                if (vopts)
                    verifyIterationGraph(*reuse, *vopts);
            }
        } else {
            reuse->recycle(sc);
            buildDecoderLayer(*reuse, p, spec.trace, spec.kvLens);
            if (vopts)
                verifyIterationGraph(*reuse, *vopts);
        }
        if (sched)
            return reuse->run(*sched);
        return reuse->run();
    }
    Graph g(sc);
    buildDecoderLayer(g, p, spec.trace, spec.kvLens);
    if (vopts)
        verifyIterationGraph(g, *vopts);
    if (sched)
        return g.run(*sched);
    return g.run();
}

EndToEndResult
runEndToEnd(const DecoderParams& p, int64_t layers, uint64_t trace_seed)
{
    EndToEndResult agg;
    dam::Scheduler sched;
    for (int64_t l = 0; l < layers; ++l) {
        Rng rng(trace_seed * 1000003 + static_cast<uint64_t>(l));
        IterationSpec spec;
        spec.trace = generateExpertTrace(rng, p.batch, p.cfg.numExperts,
                                         p.cfg.topK);
        spec.kvLens = sampleKvBatch(trace_seed + static_cast<uint64_t>(l),
                                    p.batch, KvVarClass::Med);
        SimResult r = runDecoderIteration(p, spec, &sched);

        agg.cycles += r.cycles;
        agg.offChipBytes += r.offChipBytes;
        agg.totalFlops += r.totalFlops;
        agg.onChipPeakBytes = std::max(agg.onChipPeakBytes,
                                       r.onChipPeakBytes);
        agg.allocatedComputeBw = std::max(agg.allocatedComputeBw,
                                          r.allocatedComputeBw);
    }
    return agg;
}

} // namespace step
