/**
 * @file
 * Pareto analysis for two-objective (cycles, on-chip memory) design
 * spaces, including the Pareto Improvement Distance of section 5.2 /
 * appendix B.4 (equation 2).
 */
#pragma once

#include <string>
#include <vector>

namespace step {

struct DesignPoint
{
    double cycles = 0.0;
    double mem = 0.0;
    std::string label;
};

/** Pareto-optimal (minimizing) subset, dominated points removed. */
std::vector<DesignPoint> paretoFrontier(std::vector<DesignPoint> pts);

/**
 * PID(p) = min over frontier q of max(cycles(q)/cycles(p),
 * mem(q)/mem(p)). > 1 means p lies strictly beyond the baseline
 * frontier (equation 2).
 */
double paretoImprovementDistance(const DesignPoint& p,
                                 const std::vector<DesignPoint>& baseline);

} // namespace step
