/**
 * @file
 * Roofline helpers: effective-bandwidth computation used to regenerate
 * Figure 1 (the SDA-vs-GPU motivation) from the paper's published
 * fractions-of-peak, and attainable-bandwidth reasoning used in the
 * memory-bound analyses.
 */
#pragma once

#include <string>
#include <vector>

namespace step {

/** One platform/workload bar of Figure 1. */
struct RooflineBar
{
    std::string platform;
    std::string workload;
    double peakHbmTBs = 0.0;     ///< peak HBM bandwidth (TB/s)
    double fracOfPeak = 0.0;     ///< achieved fraction of peak
    double
    effectiveTBs() const
    {
        return peakHbmTBs * fracOfPeak;
    }
};

/**
 * Published Figure-1 data points: 8xH100 vs SN40L-8 / SN40L-16 on
 * Llama-3.1 8B and 70B token generation (sequence length 4K); GPUs
 * achieve under half of peak, the SDA a much larger fraction [5, 19].
 */
inline std::vector<RooflineBar>
figure1Bars()
{
    return {
        {"8xH100", "Llama3.1-8B b=1", 26.8, 0.21},
        {"SN40L-8", "Llama3.1-8B b=1", 12.8, 0.72},
        {"SN40L-16", "Llama3.1-8B b=1", 25.6, 0.75},
        {"8xH100", "Llama3.1-8B b=8", 26.8, 0.34},
        {"SN40L-8", "Llama3.1-8B b=8", 12.8, 0.78},
        {"SN40L-16", "Llama3.1-8B b=8", 25.6, 0.80},
        {"8xH100", "Llama3.1-70B b=1", 26.8, 0.30},
        {"SN40L-8", "Llama3.1-70B b=1", 12.8, 0.80},
        {"SN40L-16", "Llama3.1-70B b=1", 25.6, 0.84},
        {"8xH100", "Llama3.1-70B b=8", 26.8, 0.42},
        {"SN40L-8", "Llama3.1-70B b=8", 12.8, 0.85},
        {"SN40L-16", "Llama3.1-70B b=8", 25.6, 0.88},
    };
}

/** Roofline attainable throughput (FLOP/s-like units). */
inline double
rooflineAttainable(double peak_compute, double peak_bw,
                   double op_intensity)
{
    double mem_bound = peak_bw * op_intensity;
    return mem_bound < peak_compute ? mem_bound : peak_compute;
}

} // namespace step
