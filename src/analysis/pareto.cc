#include "analysis/pareto.hh"

#include <algorithm>

#include "support/error.hh"

namespace step {

std::vector<DesignPoint>
paretoFrontier(std::vector<DesignPoint> pts)
{
    std::vector<DesignPoint> out;
    for (const auto& p : pts) {
        bool dominated = false;
        for (const auto& q : pts) {
            bool q_no_worse = q.cycles <= p.cycles && q.mem <= p.mem;
            bool q_better = q.cycles < p.cycles || q.mem < p.mem;
            if (q_no_worse && q_better) {
                dominated = true;
                break;
            }
        }
        if (!dominated)
            out.push_back(p);
    }
    std::sort(out.begin(), out.end(),
              [](const DesignPoint& a, const DesignPoint& b) {
                  return a.mem < b.mem;
              });
    return out;
}

double
paretoImprovementDistance(const DesignPoint& p,
                          const std::vector<DesignPoint>& baseline)
{
    STEP_ASSERT(p.cycles > 0 && p.mem > 0, "PID needs positive objectives");
    auto frontier = paretoFrontier(baseline);
    STEP_ASSERT(!frontier.empty(), "PID needs a baseline frontier");
    double best = 0.0;
    bool first = true;
    for (const auto& q : frontier) {
        double d = std::max(q.cycles / p.cycles, q.mem / p.mem);
        if (first || d < best) {
            best = d;
            first = false;
        }
    }
    return best;
}

} // namespace step
