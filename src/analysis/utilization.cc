#include "analysis/utilization.hh"

#include <algorithm>

#include "support/error.hh"

namespace step {

dam::Cycle
UtilizationTimeline::span() const
{
    dam::Cycle end = 0;
    for (const auto& s : samples_)
        end = std::max(end, s.start + s.length);
    return end;
}

int64_t
UtilizationTimeline::totalUsefulFlops() const
{
    int64_t total = 0;
    for (const auto& s : samples_)
        total += s.usefulFlops;
    return total;
}

double
UtilizationTimeline::computeUtilization(int64_t total_bw) const
{
    dam::Cycle t = span();
    if (!t || total_bw <= 0)
        return 0.0;
    return static_cast<double>(totalUsefulFlops()) /
           (static_cast<double>(t) * static_cast<double>(total_bw));
}

double
UtilizationTimeline::meanDecodeBatch() const
{
    double num = 0.0, den = 0.0;
    for (const auto& s : samples_) {
        num += static_cast<double>(s.decodeBatch) *
               static_cast<double>(s.length);
        den += static_cast<double>(s.length);
    }
    return den > 0.0 ? num / den : 0.0;
}

double
UtilizationTimeline::meanPrefillShare() const
{
    double num = 0.0, den = 0.0;
    for (const auto& s : samples_) {
        int64_t bw = s.prefillBw + s.decodeBw;
        if (bw <= 0)
            continue;
        num += static_cast<double>(s.prefillBw) /
               static_cast<double>(bw) * static_cast<double>(s.length);
        den += static_cast<double>(s.length);
    }
    return den > 0.0 ? num / den : 0.0;
}

Table
UtilizationTimeline::bucketReport(int64_t total_bw, int buckets) const
{
    STEP_ASSERT(buckets > 0, "bucketed report needs buckets");
    Table t({"t (kcycle)", "util %", "decode batch", "prefill share %",
             "prefill tok"});
    dam::Cycle end = span();
    if (!end)
        return t;
    dam::Cycle width = (end + static_cast<dam::Cycle>(buckets) - 1) /
                       static_cast<dam::Cycle>(buckets);

    struct Acc
    {
        double flops = 0, batch = 0, share = 0, len = 0;
        int64_t prefillTok = 0;
    };
    std::vector<Acc> acc(static_cast<size_t>(buckets));
    for (const auto& s : samples_) {
        // Attribute the iteration to the bucket containing its start;
        // iterations are short relative to buckets, so overlap splitting
        // would change nothing visible.
        auto b = std::min<size_t>(static_cast<size_t>(s.start / width),
                                  static_cast<size_t>(buckets) - 1);
        acc[b].flops += static_cast<double>(s.usefulFlops);
        acc[b].batch += static_cast<double>(s.decodeBatch) *
                        static_cast<double>(s.length);
        int64_t bw = s.prefillBw + s.decodeBw;
        if (bw > 0)
            acc[b].share += static_cast<double>(s.prefillBw) /
                            static_cast<double>(bw) *
                            static_cast<double>(s.length);
        acc[b].len += static_cast<double>(s.length);
        acc[b].prefillTok += s.prefillTokens;
    }
    for (int b = 0; b < buckets; ++b) {
        const Acc& a = acc[static_cast<size_t>(b)];
        double cap = static_cast<double>(width) *
                     static_cast<double>(total_bw);
        t.row()
            .cellF(static_cast<double>(static_cast<dam::Cycle>(b) * width) /
                       1000.0, 0)
            .cellF(cap > 0.0 ? 100.0 * a.flops / cap : 0.0, 1)
            .cellF(a.len > 0.0 ? a.batch / a.len : 0.0, 1)
            .cellF(a.len > 0.0 ? 100.0 * a.share / a.len : 0.0, 1)
            .cell(a.prefillTok);
    }
    return t;
}

} // namespace step
