/**
 * @file
 * Executable encoding of Table 1 (abstraction landscape) and Table 2
 * (optimization -> enabling STeP features). Each abstraction is a set of
 * capability flags; each optimization declares the capabilities it
 * requires; expressibility is computed, not asserted, so the tables stay
 * consistent with the claims they encode.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace step {

enum class Capability : uint32_t {
    DataFlow = 1u << 0,
    ExplicitDataRate = 1u << 1,
    ExplicitMemHierarchy = 1u << 2,
    DynamicRouting = 1u << 3,        ///< full routing & merging
    LimitedDynamicRouting = 1u << 4, ///< scalar-only / domain-limited
    DynamicOnChipTiling = 1u << 5,
    LimitedDynamicTiling = 1u << 6,
    DynamicTileShape = 1u << 7,
    DynamicAccum = 1u << 8,          ///< Accum over dynamic tiles
};

struct AbstractionProfile
{
    std::string name;
    uint32_t caps = 0;

    bool
    has(Capability c) const
    {
        return (caps & static_cast<uint32_t>(c)) != 0;
    }
};

struct OptimizationSpec
{
    std::string name;
    /** All of these are required (Table 2). */
    std::vector<Capability> requires_;
};

/** The Table-1 rows: Spatial, Revet, StreamIt, SAM, Ripple, STeP. */
std::vector<AbstractionProfile> landscapeProfiles();

/** The Table-2 rows: dynamic tiling, config time-mux, dynamic par. */
std::vector<OptimizationSpec> optimizationSpecs();

/** Can @p profile express @p opt? (conjunction of required caps). */
bool canExpress(const AbstractionProfile& profile,
                const OptimizationSpec& opt);

} // namespace step
