/**
 * @file
 * Utilization timeline for the serving runtime: per-iteration samples of
 * the bandwidth split, batch composition, and useful work, aggregated
 * into whole-run compute utilization and a time-bucketed report (the
 * serving-level counterpart of the Figure 12 utilization traces).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "dam/task.hh"
#include "support/table.hh"

namespace step {

/** One batching iteration as seen by the utilization accounting. */
struct IterationSample
{
    dam::Cycle start = 0;
    dam::Cycle length = 0;
    int64_t prefillBw = 0;      ///< FLOPs/cycle given to prefill
    int64_t decodeBw = 0;       ///< FLOPs/cycle given to decode
    int64_t usefulFlops = 0;    ///< prefill + decode FLOPs this iteration
    int64_t decodeBatch = 0;    ///< decode requests in the batch
    int64_t prefillTokens = 0;  ///< prompt tokens prefilled this iteration
};

class UtilizationTimeline
{
  public:
    void record(const IterationSample& s) { samples_.push_back(s); }

    /**
     * Append another timeline's samples (cluster aggregation: replica
     * timelines overlap in simulated time; every accessor below is
     * order-insensitive, so a plain append keeps merging deterministic
     * in call order). Utilization of the merged timeline should be
     * queried with the *summed* bandwidth of the merged engines.
     */
    void merge(const UtilizationTimeline& other)
    {
        samples_.insert(samples_.end(), other.samples_.begin(),
                        other.samples_.end());
    }

    /** End of the last iteration (== serving makespan). */
    dam::Cycle span() const;

    int64_t totalUsefulFlops() const;

    /** Useful FLOPs over total provisioned FLOP capacity. */
    double computeUtilization(int64_t total_bw) const;

    /** Iteration-length-weighted mean decode batch size. */
    double meanDecodeBatch() const;

    /** Iteration-length-weighted mean fraction of bw given to prefill. */
    double meanPrefillShare() const;

    /**
     * Bucketed timeline: utilization, mean decode batch, and prefill
     * share per time bucket — shows bursts pulling bandwidth around.
     */
    Table bucketReport(int64_t total_bw, int buckets = 12) const;

    size_t iterations() const { return samples_.size(); }

  private:
    std::vector<IterationSample> samples_;
};

} // namespace step
