#include "analysis/landscape.hh"

namespace step {

namespace {

uint32_t
mask(std::initializer_list<Capability> cs)
{
    uint32_t m = 0;
    for (Capability c : cs)
        m |= static_cast<uint32_t>(c);
    return m;
}

} // namespace

std::vector<AbstractionProfile>
landscapeProfiles()
{
    using C = Capability;
    return {
        {"Spatial", mask({C::ExplicitMemHierarchy})},
        {"Revet", mask({C::ExplicitMemHierarchy,
                        C::LimitedDynamicRouting})},
        {"StreamIt", mask({C::DataFlow, C::ExplicitDataRate})},
        {"SAM", mask({C::DataFlow, C::LimitedDynamicRouting,
                      C::LimitedDynamicTiling})},
        {"Ripple", mask({C::DataFlow, C::DynamicRouting})},
        {"STeP", mask({C::DataFlow, C::ExplicitDataRate,
                       C::ExplicitMemHierarchy, C::DynamicRouting,
                       C::DynamicOnChipTiling, C::DynamicTileShape,
                       C::DynamicAccum})},
    };
}

std::vector<OptimizationSpec>
optimizationSpecs()
{
    using C = Capability;
    return {
        {"Dynamic Tiling",
         {C::DynamicTileShape, C::ExplicitMemHierarchy, C::DynamicAccum}},
        {"Configuration Time-multiplexing",
         {C::ExplicitMemHierarchy, C::DynamicRouting}},
        {"Dynamic Parallelization", {C::DynamicRouting}},
    };
}

bool
canExpress(const AbstractionProfile& profile, const OptimizationSpec& opt)
{
    for (Capability c : opt.requires_)
        if (!profile.has(c))
            return false;
    return true;
}

} // namespace step
