/**
 * @file
 * Small-buffer vector for build-path metadata (stream shapes, dim
 * lists). Graph construction copies StreamPorts — and with them their
 * shapes — hundreds of times per serving iteration; keeping up to N
 * elements inline removes the per-copy heap allocation that a
 * std::vector would pay. Inline storage is uninitialized: only live
 * elements are ever constructed, so an empty or short SmallVec of
 * heavyweight elements costs nothing.
 */
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "support/error.hh"

namespace step {

template <typename T, size_t N>
class SmallVec
{
  public:
    SmallVec() = default;

    SmallVec(std::initializer_list<T> xs)
    {
        for (const T& x : xs)
            push_back(x);
    }

    template <typename It>
    SmallVec(It first, It last)
    {
        for (; first != last; ++first)
            push_back(*first);
    }

    SmallVec(const SmallVec& o)
    {
        for (const T& x : o)
            push_back(x);
    }

    SmallVec(SmallVec&& o) noexcept
    {
        adoptFrom(std::move(o));
    }

    SmallVec&
    operator=(const SmallVec& o)
    {
        if (this != &o) {
            clear();
            for (const T& x : o)
                push_back(x);
        }
        return *this;
    }

    SmallVec&
    operator=(SmallVec&& o) noexcept
    {
        if (this != &o) {
            clear();
            adoptFrom(std::move(o));
        }
        return *this;
    }

    ~SmallVec() { clear(); }

    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    const T* begin() const { return data(); }
    const T* end() const { return data() + size_; }
    T* begin() { return data(); }
    T* end() { return data() + size_; }

    const T&
    operator[](size_t i) const
    {
        STEP_ASSERT(i < size_, "SmallVec index " << i << " out of "
                    << size_);
        return data()[i];
    }
    T&
    operator[](size_t i)
    {
        STEP_ASSERT(i < size_, "SmallVec index " << i << " out of "
                    << size_);
        return data()[i];
    }

    const T& front() const { return (*this)[0]; }
    const T& back() const { return (*this)[size_ - 1]; }
    T& front() { return (*this)[0]; }
    T& back() { return (*this)[size_ - 1]; }

    void
    push_back(T v)
    {
        if (size_ < N) {
            new (inlineSlot(size_)) T(std::move(v));
            ++size_;
            return;
        }
        if (size_ == N) {
            // Spill: move the inline elements out, then destroy them.
            spill_.reserve(2 * N);
            for (size_t i = 0; i < N; ++i) {
                spill_.push_back(std::move(*inlineSlot(i)));
                inlineSlot(i)->~T();
            }
        }
        spill_.push_back(std::move(v));
        ++size_;
    }

    /** Append a [first, last) range. */
    template <typename It>
    void
    append(It first, It last)
    {
        for (; first != last; ++first)
            push_back(*first);
    }

    /** Insert @p v before position @p pos (0 <= pos <= size). */
    void
    insert(size_t pos, T v)
    {
        STEP_ASSERT(pos <= size_, "SmallVec insert at " << pos
                    << " out of " << size_);
        push_back(std::move(v));
        T* d = data();
        for (size_t i = size_ - 1; i > pos; --i)
            std::swap(d[i], d[i - 1]);
    }

    void
    clear()
    {
        if (size_ <= N) {
            for (size_t i = 0; i < size_; ++i)
                inlineSlot(i)->~T();
        } else {
            spill_.clear();
        }
        size_ = 0;
    }

    bool
    operator==(const SmallVec& o) const
    {
        if (size_ != o.size_)
            return false;
        const T* a = data();
        const T* b = o.data();
        for (size_t i = 0; i < size_; ++i)
            if (!(a[i] == b[i]))
                return false;
        return true;
    }

  private:
    void
    adoptFrom(SmallVec&& o) noexcept
    {
        size_ = o.size_;
        if (size_ <= N) {
            for (size_t i = 0; i < size_; ++i) {
                new (inlineSlot(i)) T(std::move(*o.inlineSlot(i)));
                o.inlineSlot(i)->~T();
            }
        } else {
            spill_ = std::move(o.spill_);
        }
        o.size_ = 0;
    }

    T*
    inlineSlot(size_t i)
    {
        return std::launder(reinterpret_cast<T*>(storage_) + i);
    }
    const T*
    inlineSlot(size_t i) const
    {
        return std::launder(reinterpret_cast<const T*>(storage_) + i);
    }

    const T*
    data() const
    {
        return size_ <= N ? inlineSlot(0) : spill_.data();
    }
    T* data() { return size_ <= N ? inlineSlot(0) : spill_.data(); }

    alignas(T) std::byte storage_[N * sizeof(T)];
    size_t size_ = 0;
    std::vector<T> spill_;
};

} // namespace step
