/**
 * @file
 * Small statistics helpers shared by the benches and tests: means,
 * standard deviation, geometric mean, and Pearson correlation (used to
 * report the Figure-8 validation number).
 */
#pragma once

#include <cstddef>
#include <vector>

namespace step {

double mean(const std::vector<double>& xs);
/** Sample standard deviation (Bessel's n-1 correction); 0 for n < 2. */
double stddev(const std::vector<double>& xs);
double geomean(const std::vector<double>& xs);

/** Pearson correlation coefficient; returns 0 for degenerate inputs. */
double pearson(const std::vector<double>& xs, const std::vector<double>& ys);

/**
 * Nearest-rank percentile: the smallest x such that at least p percent of
 * the samples are <= x. p in [0, 100]; returns 0 for empty input. Used by
 * the serving-latency reporting (p50/p99 TTFT and TPOT).
 */
double percentile(std::vector<double> xs, double p);

/**
 * Same, over an already-sorted sample vector — for callers reading
 * several ranks from one (large) vector without re-sorting per rank.
 */
double percentileSorted(const std::vector<double>& xs, double p);

/**
 * All requested ranks from ONE sorted copy of @p xs — result[i] ==
 * percentile(xs, ps[i]) exactly, without the per-quantile re-sort that
 * repeated percentile() calls pay. Use this whenever more than one
 * quantile of the same samples is reported.
 */
std::vector<double> percentiles(std::vector<double> xs,
                                const std::vector<double>& ps);

} // namespace step
