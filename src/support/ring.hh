/**
 * @file
 * Fixed-capacity-friendly ring buffer used for channel entry/credit
 * storage. Unlike std::deque it never allocates per push in steady
 * state: storage is a single power-of-two array that is reused in place,
 * growing (amortized, doubling) only when the occupancy high-water mark
 * rises. Channels reserve their full FIFO depth up front, so simulation
 * push/pop is allocation-free.
 *
 * Elements must be default-constructible; pop_front() does not destroy
 * the slot (callers move the payload out), so slots are recycled by
 * assignment.
 */
#pragma once

#include <cstddef>
#include <memory>
#include <utility>

#include "support/error.hh"

namespace step {

template <typename T>
class Ring
{
  public:
    Ring() = default;

    bool empty() const { return size_ == 0; }
    size_t size() const { return size_; }
    size_t capacity() const { return cap_; }

    T&
    front()
    {
        STEP_ASSERT(size_ > 0, "front() on empty ring");
        return buf_[head_];
    }

    const T&
    front() const
    {
        STEP_ASSERT(size_ > 0, "front() on empty ring");
        return buf_[head_];
    }

    T&
    back()
    {
        STEP_ASSERT(size_ > 0, "back() on empty ring");
        return buf_[(head_ + size_ - 1) & mask_];
    }

    const T&
    back() const
    {
        STEP_ASSERT(size_ > 0, "back() on empty ring");
        return buf_[(head_ + size_ - 1) & mask_];
    }

    /** i-th element from the front (0 = front). */
    const T&
    at(size_t i) const
    {
        STEP_ASSERT(i < size_, "ring index " << i << " out of " << size_);
        return buf_[(head_ + i) & mask_];
    }

    void
    push_back(T v)
    {
        if (size_ == cap_)
            grow(cap_ ? cap_ * 2 : 8);
        buf_[(head_ + size_) & mask_] = std::move(v);
        ++size_;
    }

    /**
     * Append a (recycled) default-or-stale slot and return it for the
     * caller to fill in place — one move fewer than push_back on the
     * channel hot path.
     */
    T&
    push_slot()
    {
        if (size_ == cap_)
            grow(cap_ ? cap_ * 2 : 8);
        return buf_[(head_ + size_++) & mask_];
    }

    void
    pop_front()
    {
        STEP_ASSERT(size_ > 0, "pop_front() on empty ring");
        head_ = (head_ + 1) & mask_;
        --size_;
    }

    /** Drop all elements; keeps the storage. */
    void
    clear()
    {
        head_ = 0;
        size_ = 0;
    }

    /** Ensure capacity for at least @p n elements without reallocation. */
    void
    reserve(size_t n)
    {
        if (n > cap_)
            grow(n);
    }

  private:
    void
    grow(size_t min_cap)
    {
        size_t cap = cap_ ? cap_ : 8;
        while (cap < min_cap)
            cap *= 2;
        auto next = std::make_unique<T[]>(cap);
        for (size_t i = 0; i < size_; ++i)
            next[i] = std::move(buf_[(head_ + i) & mask_]);
        buf_ = std::move(next);
        cap_ = cap;
        mask_ = cap - 1;
        head_ = 0;
    }

    std::unique_ptr<T[]> buf_;
    size_t cap_ = 0;
    size_t mask_ = 0;
    size_t head_ = 0;
    size_t size_ = 0;
};

} // namespace step
