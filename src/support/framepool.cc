#include "support/framepool.hh"

#include <new>

namespace step {

namespace {

/**
 * Block layout: [16-byte header | payload]. The header keeps the bucket
 * index (or the bypass marker) and doubles as the freelist link while
 * the block is parked. 16 bytes preserves malloc-grade alignment for
 * the payload.
 */
struct Header
{
    union {
        uint64_t bucket;
        Header* next;
    };
    uint64_t pad_; ///< payload stays 16-byte aligned
};
static_assert(sizeof(Header) == 16);
static_assert(alignof(Header) <= 16);

constexpr std::size_t kMinBlock = 64;
constexpr uint64_t kBypass = ~uint64_t{0};

// Bucket i holds blocks of kMinBlock << i total bytes (header included).
constexpr int kBuckets = 11; // 64 B .. 64 KiB
static_assert((kMinBlock << (kBuckets - 1)) == FramePool::kMaxPooledBytes);

struct PoolState
{
    Header* freelist[kBuckets] = {};
    uint64_t cached[kBuckets] = {};
    FramePool::Stats stats;

    ~PoolState()
    {
        // Worker threads (ServingCluster replicas) die with frames still
        // parked; return them to the heap so thread churn never leaks.
        for (int b = 0; b < kBuckets; ++b) {
            while (Header* h = freelist[b]) {
                freelist[b] = h->next;
                ::operator delete(h);
            }
            cached[b] = 0;
        }
    }
};

PoolState&
state()
{
    // One freelist per thread: each scheduler thread allocates and frees
    // its own coroutine frames (shared-nothing replicas), so per-thread
    // freelists need no locks and keep blocks warm in the owning core's
    // cache. A frame freed from a different thread than the one that
    // allocated it simply parks in the freeing thread's freelist — the
    // block came from the global heap, so migrating it is safe, merely
    // suboptimal.
    static thread_local PoolState s;
    return s;
}

int
bucketFor(std::size_t total)
{
    int b = 0;
    std::size_t cap = kMinBlock;
    while (cap < total) {
        cap <<= 1;
        ++b;
    }
    return b;
}

} // namespace

void*
FramePool::allocate(std::size_t n)
{
    PoolState& s = state();
    const std::size_t total = n + sizeof(Header);
    if (total > kMaxPooledBytes) {
        ++s.stats.bypasses;
        auto* h = static_cast<Header*>(::operator new(total));
        h->bucket = kBypass;
        return h + 1;
    }
    const int b = bucketFor(total);
    if (Header* h = s.freelist[b]) {
        s.freelist[b] = h->next;
        --s.cached[b];
        ++s.stats.hits;
        h->bucket = static_cast<uint64_t>(b);
        return h + 1;
    }
    ++s.stats.misses;
    auto* h = static_cast<Header*>(::operator new(kMinBlock << b));
    h->bucket = static_cast<uint64_t>(b);
    return h + 1;
}

void
FramePool::deallocate(void* p) noexcept
{
    if (!p)
        return;
    PoolState& s = state();
    Header* h = static_cast<Header*>(p) - 1;
    if (h->bucket == kBypass) {
        ::operator delete(h);
        return;
    }
    const auto b = static_cast<int>(h->bucket);
    h->next = s.freelist[b];
    s.freelist[b] = h;
    ++s.cached[b];
}

FramePool::Stats
FramePool::stats()
{
    PoolState& s = state();
    Stats out = s.stats;
    out.cached = 0;
    for (uint64_t c : s.cached)
        out.cached += c;
    return out;
}

void
FramePool::trim()
{
    PoolState& s = state();
    for (int b = 0; b < kBuckets; ++b) {
        while (Header* h = s.freelist[b]) {
            s.freelist[b] = h->next;
            ::operator delete(h);
        }
        s.cached[b] = 0;
    }
}

} // namespace step
