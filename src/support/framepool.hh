/**
 * @file
 * Size-bucketed freelist for coroutine frames. Every operator body is a
 * C++20 coroutine whose frame is heap-allocated by default; a serving
 * iteration creates ~190 frames and destroys them at the next rearm or
 * recycle, so frames of identical sizes churn through the allocator
 * once per batching iteration. The pool intercepts the task promise's
 * operator new/delete and recycles blocks through power-of-two buckets:
 * the steady state never touches the heap and frames of the same
 * operator land on the same warm block, improving locality.
 *
 * The pool is per-thread: every freelist lives in thread-local state, so
 * N shared-nothing scheduler threads (ServingCluster replicas) each get
 * their own pool with no locks and no false sharing. Frames are normally
 * allocated and freed on the same thread; a cross-thread free is safe
 * (the block migrates to the freeing thread's freelist) but forfeits
 * locality. Freed blocks are cached until trim() or thread exit, which
 * releases the departing thread's cache back to the heap; a 16-byte
 * header records the owning bucket so deallocation does not depend on
 * the (unsized) delete form the compiler picks for frame teardown.
 */
#pragma once

#include <cstddef>
#include <cstdint>

namespace step {

class FramePool
{
  public:
    /** Blocks above this size bypass the pool entirely. */
    static constexpr std::size_t kMaxPooledBytes = std::size_t{64} << 10;

    static void* allocate(std::size_t n);
    static void deallocate(void* p) noexcept;

    struct Stats
    {
        uint64_t hits = 0;     ///< allocations served from a freelist
        uint64_t misses = 0;   ///< allocations that touched the heap
        uint64_t bypasses = 0; ///< oversized allocations (never pooled)
        uint64_t cached = 0;   ///< blocks currently parked in freelists
    };

    /** Counters for the *calling thread's* pool only. */
    static Stats stats();

    /** Release the calling thread's cached blocks back to the heap. */
    static void trim();
};

} // namespace step
