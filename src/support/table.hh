/**
 * @file
 * Aligned-column table printer used by every bench binary so that the
 * regenerated rows of each paper figure/table are easy to read and to diff,
 * plus a CSV emitter for machine consumption.
 */
#pragma once

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace step {

/** Collects rows of strings and prints them with aligned columns. */
class Table
{
  public:
    explicit Table(std::vector<std::string> header)
        : header_(std::move(header))
    {}

    /** Begin a new row. */
    Table& row() { rows_.emplace_back(); return *this; }

    /** Append a cell to the current row. */
    template <typename T>
    Table&
    cell(const T& v)
    {
        std::ostringstream os;
        os << v;
        rows_.back().push_back(os.str());
        return *this;
    }

    /** Append a floating cell with fixed precision. */
    Table&
    cellF(double v, int prec = 3)
    {
        std::ostringstream os;
        os << std::fixed << std::setprecision(prec) << v;
        rows_.back().push_back(os.str());
        return *this;
    }

    /** Print aligned columns to @p os. */
    void print(std::ostream& os = std::cout) const;

    /** Print as CSV to @p os. */
    void printCsv(std::ostream& os) const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

inline void
Table::print(std::ostream& os) const
{
    std::vector<size_t> width(header_.size(), 0);
    for (size_t c = 0; c < header_.size(); ++c)
        width[c] = header_[c].size();
    for (const auto& r : rows_)
        for (size_t c = 0; c < r.size() && c < width.size(); ++c)
            width[c] = std::max(width[c], r[c].size());

    auto emit = [&](const std::vector<std::string>& r) {
        for (size_t c = 0; c < r.size(); ++c)
            os << std::left << std::setw(static_cast<int>(width[c]) + 2)
               << r[c];
        os << "\n";
    };
    emit(header_);
    for (size_t c = 0; c < header_.size(); ++c)
        os << std::string(width[c], '-') << "  ";
    os << "\n";
    for (const auto& r : rows_)
        emit(r);
}

inline void
Table::printCsv(std::ostream& os) const
{
    auto emit = [&](const std::vector<std::string>& r) {
        for (size_t c = 0; c < r.size(); ++c)
            os << (c ? "," : "") << r[c];
        os << "\n";
    };
    emit(header_);
    for (const auto& r : rows_)
        emit(r);
}

} // namespace step
