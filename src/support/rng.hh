/**
 * @file
 * Deterministic random number generation and the distributions used by the
 * synthetic trace substrate. All experiments must be reproducible from a
 * seed. Rng instances never touch shared state; the one process-wide
 * value is the explicit base seed below (default 42), which benches set
 * once at startup from --seed/STEP_SEED and every component then derives
 * its per-stream seeds from.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace step {

/**
 * SplitMix64 generator. Tiny, fast, and has well-understood statistical
 * behaviour; good enough for workload synthesis (not cryptography).
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed) : state_(seed ? seed : 0x9e3779b97f4a7c15ULL)
    {}

    /** Next raw 64-bit draw. */
    uint64_t
    next()
    {
        uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform double in [0, 1). */
    double uniform() { return (next() >> 11) * 0x1.0p-53; }

    /**
     * Uniform integer in [0, n), bias-free via rejection sampling (the
     * naive `next() % n` overweights small residues when n does not
     * divide 2^64). n must be > 0.
     */
    uint64_t uniformInt(uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    uniformRange(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(uniformInt(
            static_cast<uint64_t>(hi - lo + 1)));
    }

    /** Standard normal via Box-Muller. */
    double gaussian();

    /** Log-normal with the given *underlying* normal mu/sigma. */
    double logNormal(double mu, double sigma);

    /** Gamma(shape, 1) via Marsaglia-Tsang; shape > 0. */
    double gamma(double shape);

    /**
     * A point on the probability simplex drawn from Dirichlet(alpha).
     * Smaller alpha -> more skewed expert popularity.
     */
    std::vector<double> dirichlet(const std::vector<double>& alpha);

    /** Sample an index from an (unnormalized) weight vector. */
    size_t categorical(const std::vector<double>& weights);

  private:
    uint64_t state_;
    bool haveSpare_ = false;
    double spare_ = 0.0;
};

/**
 * Process-wide base seed for experiment reproducibility. Every bench and
 * example derives its per-component Rng seeds from this value, so one
 * `--seed N` flag (or the STEP_SEED environment variable) reseeds a whole
 * sweep while run-to-run results stay bit-identical for a fixed seed.
 * Defaults to 42.
 *
 * Thread-safety contract: the seed is stored atomically, so concurrent
 * reads never tear — but for reproducibility, call setGlobalSeed once at
 * startup, *before* any worker thread (e.g. ServingCluster replicas)
 * spawns. A mid-run reseed is a race against every in-flight
 * deriveSeed and yields runs that no single seed reproduces.
 */
void setGlobalSeed(uint64_t seed);
uint64_t globalSeed();

/**
 * Derive an independent stream seed for component @p stream_id from the
 * global seed (SplitMix64 mix, so nearby ids decorrelate). This is how
 * per-replica engine seeds decorrelate deterministically: ServingCluster
 * seeds replica i with deriveSeed(i) on the coordinating thread before
 * workers start.
 */
uint64_t deriveSeed(uint64_t stream_id);

/**
 * Bench entry point: apply `--seed N` from @p argv or the STEP_SEED
 * environment variable (flag wins) to the global seed; returns it.
 */
uint64_t seedFromArgsOrEnv(int argc, char** argv);

} // namespace step
