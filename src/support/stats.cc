#include "support/stats.hh"

#include <algorithm>
#include <cmath>

#include "support/error.hh"

namespace step {

double
mean(const std::vector<double>& xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

double
stddev(const std::vector<double>& xs)
{
    if (xs.size() < 2)
        return 0.0;
    double m = mean(xs);
    double s = 0.0;
    for (double x : xs)
        s += (x - m) * (x - m);
    // Bessel-corrected sample estimator: these are always samples (of a
    // trace window, of bench repetitions), never a whole population, and
    // dividing by n underestimates spread at the small n the benches use.
    return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double
geomean(const std::vector<double>& xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs) {
        STEP_ASSERT(x > 0.0, "geomean needs positive values");
        s += std::log(x);
    }
    return std::exp(s / static_cast<double>(xs.size()));
}

double
pearson(const std::vector<double>& xs, const std::vector<double>& ys)
{
    STEP_ASSERT(xs.size() == ys.size(), "pearson: length mismatch");
    size_t n = xs.size();
    if (n < 2)
        return 0.0;
    double mx = mean(xs);
    double my = mean(ys);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (size_t i = 0; i < n; ++i) {
        double dx = xs[i] - mx;
        double dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx == 0.0 || syy == 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

double
percentileSorted(const std::vector<double>& xs, double p)
{
    if (xs.empty())
        return 0.0;
    STEP_ASSERT(p >= 0.0 && p <= 100.0, "percentile rank out of range");
    if (p <= 0.0)
        return xs.front();
    auto rank = static_cast<size_t>(
        std::ceil(p / 100.0 * static_cast<double>(xs.size())));
    return xs[std::min(rank, xs.size()) - 1];
}

double
percentile(std::vector<double> xs, double p)
{
    std::sort(xs.begin(), xs.end());
    return percentileSorted(xs, p);
}

std::vector<double>
percentiles(std::vector<double> xs, const std::vector<double>& ps)
{
    std::sort(xs.begin(), xs.end());
    std::vector<double> out;
    out.reserve(ps.size());
    for (double p : ps)
        out.push_back(percentileSorted(xs, p));
    return out;
}

} // namespace step
