#include "support/rng.hh"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "support/error.hh"

namespace step {

namespace {

// Atomic so a worker thread calling deriveSeed/globalSeed never races a
// late setGlobalSeed into a torn read. Relaxed ordering suffices: the
// seed carries no release/acquire payload, and the documented contract
// (rng.hh) is that setGlobalSeed happens before workers spawn — thread
// creation itself then sequences the store before every worker load.
std::atomic<uint64_t> g_seed{42};

} // namespace

void
setGlobalSeed(uint64_t seed)
{
    g_seed.store(seed, std::memory_order_relaxed);
}

uint64_t
globalSeed()
{
    return g_seed.load(std::memory_order_relaxed);
}

uint64_t
deriveSeed(uint64_t stream_id)
{
    // One SplitMix64 step over (seed, stream) decorrelates nearby ids.
    Rng mix(globalSeed() ^ (stream_id * 0xd1342543de82ef95ULL));
    return mix.next();
}

uint64_t
seedFromArgsOrEnv(int argc, char** argv)
{
    if (const char* env = std::getenv("STEP_SEED"))
        setGlobalSeed(std::strtoull(env, nullptr, 0));
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--seed") == 0)
            setGlobalSeed(std::strtoull(argv[i + 1], nullptr, 0));
    }
    return globalSeed();
}

uint64_t
Rng::uniformInt(uint64_t n)
{
    STEP_ASSERT(n > 0, "uniformInt over an empty range");
    // Rejection sampling (arc4random_uniform style): 2^64 mod n raw
    // draws map to one extra residue each under plain `next() % n`,
    // biasing small values by up to n/2^64. Computing min = 2^64 mod n
    // as (-n) mod n in wrapping arithmetic, draws below min are
    // rejected so every residue keeps exactly floor(2^64 / n)
    // preimages. Accepted draws return the same value the old modulo
    // did, so seeded sequences only change in the astronomically rare
    // rejection case (probability < n / 2^64 per draw).
    const uint64_t min = (0 - n) % n;
    uint64_t x = next();
    while (x < min)
        x = next();
    return x % n;
}

double
Rng::gaussian()
{
    if (haveSpare_) {
        haveSpare_ = false;
        return spare_;
    }
    double u1 = 0.0;
    while (u1 == 0.0)
        u1 = uniform();
    double u2 = uniform();
    double mag = std::sqrt(-2.0 * std::log(u1));
    spare_ = mag * std::sin(2.0 * M_PI * u2);
    haveSpare_ = true;
    return mag * std::cos(2.0 * M_PI * u2);
}

double
Rng::logNormal(double mu, double sigma)
{
    return std::exp(mu + sigma * gaussian());
}

double
Rng::gamma(double shape)
{
    STEP_ASSERT(shape > 0.0, "gamma shape must be positive");
    if (shape < 1.0) {
        // Boost to shape+1 and scale back (Marsaglia-Tsang trick).
        double u = 0.0;
        while (u == 0.0)
            u = uniform();
        return gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
    }
    double d = shape - 1.0 / 3.0;
    double c = 1.0 / std::sqrt(9.0 * d);
    while (true) {
        double x = gaussian();
        double v = 1.0 + c * x;
        if (v <= 0.0)
            continue;
        v = v * v * v;
        double u = uniform();
        if (u < 1.0 - 0.0331 * x * x * x * x)
            return d * v;
        if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v)))
            return d * v;
    }
}

std::vector<double>
Rng::dirichlet(const std::vector<double>& alpha)
{
    std::vector<double> draws(alpha.size());
    double sum = 0.0;
    for (size_t i = 0; i < alpha.size(); ++i) {
        draws[i] = gamma(alpha[i]);
        sum += draws[i];
    }
    if (sum <= 0.0)
        sum = 1.0;
    for (double& d : draws)
        d /= sum;
    return draws;
}

size_t
Rng::categorical(const std::vector<double>& weights)
{
    STEP_ASSERT(!weights.empty(), "categorical over empty weights");
    double total = 0.0;
    for (double w : weights)
        total += w;
    double r = uniform() * total;
    double acc = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        if (r < acc)
            return i;
    }
    return weights.size() - 1;
}

} // namespace step
