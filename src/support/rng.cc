#include "support/rng.hh"

#include <cmath>
#include <cstdlib>
#include <cstring>

#include "support/error.hh"

namespace step {

namespace {

uint64_t g_seed = 42;

} // namespace

void
setGlobalSeed(uint64_t seed)
{
    g_seed = seed;
}

uint64_t
globalSeed()
{
    return g_seed;
}

uint64_t
deriveSeed(uint64_t stream_id)
{
    // One SplitMix64 step over (seed, stream) decorrelates nearby ids.
    Rng mix(g_seed ^ (stream_id * 0xd1342543de82ef95ULL));
    return mix.next();
}

uint64_t
seedFromArgsOrEnv(int argc, char** argv)
{
    if (const char* env = std::getenv("STEP_SEED"))
        setGlobalSeed(std::strtoull(env, nullptr, 0));
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--seed") == 0)
            setGlobalSeed(std::strtoull(argv[i + 1], nullptr, 0));
    }
    return g_seed;
}

double
Rng::gaussian()
{
    if (haveSpare_) {
        haveSpare_ = false;
        return spare_;
    }
    double u1 = 0.0;
    while (u1 == 0.0)
        u1 = uniform();
    double u2 = uniform();
    double mag = std::sqrt(-2.0 * std::log(u1));
    spare_ = mag * std::sin(2.0 * M_PI * u2);
    haveSpare_ = true;
    return mag * std::cos(2.0 * M_PI * u2);
}

double
Rng::logNormal(double mu, double sigma)
{
    return std::exp(mu + sigma * gaussian());
}

double
Rng::gamma(double shape)
{
    STEP_ASSERT(shape > 0.0, "gamma shape must be positive");
    if (shape < 1.0) {
        // Boost to shape+1 and scale back (Marsaglia-Tsang trick).
        double u = 0.0;
        while (u == 0.0)
            u = uniform();
        return gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
    }
    double d = shape - 1.0 / 3.0;
    double c = 1.0 / std::sqrt(9.0 * d);
    while (true) {
        double x = gaussian();
        double v = 1.0 + c * x;
        if (v <= 0.0)
            continue;
        v = v * v * v;
        double u = uniform();
        if (u < 1.0 - 0.0331 * x * x * x * x)
            return d * v;
        if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v)))
            return d * v;
    }
}

std::vector<double>
Rng::dirichlet(const std::vector<double>& alpha)
{
    std::vector<double> draws(alpha.size());
    double sum = 0.0;
    for (size_t i = 0; i < alpha.size(); ++i) {
        draws[i] = gamma(alpha[i]);
        sum += draws[i];
    }
    if (sum <= 0.0)
        sum = 1.0;
    for (double& d : draws)
        d /= sum;
    return draws;
}

size_t
Rng::categorical(const std::vector<double>& weights)
{
    STEP_ASSERT(!weights.empty(), "categorical over empty weights");
    double total = 0.0;
    for (double w : weights)
        total += w;
    double r = uniform() * total;
    double acc = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        if (r < acc)
            return i;
    }
    return weights.size() - 1;
}

} // namespace step
