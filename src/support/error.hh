/**
 * @file
 * Error-reporting primitives, in the spirit of gem5's logging.hh.
 *
 * stepPanic()  — internal invariant violated (a bug in this library).
 * stepFatal()  — the user configured something impossible.
 * STEP_ASSERT — cheap invariant check that is kept in release builds.
 */
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace step {

/** Exception thrown for user-caused configuration errors. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string& what) : std::runtime_error(what) {}
};

/** Exception thrown for internal invariant violations. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

/** Format a message with file/line context. */
[[nodiscard]] inline std::string
formatWhere(const char* kind, const char* file, int line,
            const std::string& msg)
{
    std::ostringstream os;
    os << kind << " at " << file << ":" << line << ": " << msg;
    return os.str();
}

} // namespace detail

} // namespace step

/** Report an internal bug and unwind. */
#define stepPanic(msg)                                                       \
    do {                                                                     \
        std::ostringstream _step_os;                                         \
        _step_os << msg;                                                     \
        throw ::step::PanicError(::step::detail::formatWhere(                \
            "panic", __FILE__, __LINE__, _step_os.str()));                   \
    } while (0)

/** Report a user-caused error and unwind. */
#define stepFatal(msg)                                                       \
    do {                                                                     \
        std::ostringstream _step_os;                                         \
        _step_os << msg;                                                     \
        throw ::step::FatalError(::step::detail::formatWhere(                \
            "fatal", __FILE__, __LINE__, _step_os.str()));                   \
    } while (0)

/** Invariant check kept in all build types. */
#define STEP_ASSERT(cond, msg)                                               \
    do {                                                                     \
        if (!(cond)) {                                                       \
            stepPanic("assertion `" #cond "` failed: " << msg);              \
        }                                                                    \
    } while (0)
