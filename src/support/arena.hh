/**
 * @file
 * Monotonic arena + name interner backing graph recycling. The serving
 * engine rebuilds a structurally identical decoder graph every batching
 * iteration; allocating operator objects from a bump arena and interning
 * channel names lets Graph::recycle() release a whole iteration's nodes
 * by running destructors and resetting an offset — the blocks and the
 * interned strings are reused by the next build, so steady-state graph
 * reconstruction performs no large allocations.
 */
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace step {

/**
 * Bump allocator over retained blocks. allocate() never constructs;
 * reset() never frees — callers run destructors themselves (Graph does,
 * in reverse construction order) and subsequent builds bump through the
 * same memory.
 */
class MonotonicArena
{
  public:
    static constexpr size_t kDefaultBlockBytes = 64 * 1024;

    explicit MonotonicArena(size_t block_bytes = kDefaultBlockBytes)
        : blockBytes_(block_bytes)
    {}

    void*
    allocate(size_t size, size_t align)
    {
        for (;;) {
            if (cur_ < blocks_.size()) {
                Block& b = blocks_[cur_];
                // Align the actual address: the block base is only
                // guaranteed new[]-aligned, which over-aligned types
                // can exceed.
                auto base = reinterpret_cast<uintptr_t>(b.data.get());
                uintptr_t at = (base + b.used + align - 1) &
                               ~static_cast<uintptr_t>(align - 1);
                if (at + size <= base + b.size) {
                    b.used = at + size - base;
                    return reinterpret_cast<void*>(at);
                }
                ++cur_;
                continue;
            }
            size_t want = std::max(blockBytes_, size + align);
            blocks_.push_back(Block{
                std::make_unique<std::byte[]>(want), want, 0});
        }
    }

    /** Rewind every block; memory is retained for the next build. */
    void
    reset()
    {
        for (Block& b : blocks_)
            b.used = 0;
        cur_ = 0;
    }

    size_t
    retainedBytes() const
    {
        size_t n = 0;
        for (const Block& b : blocks_)
            n += b.size;
        return n;
    }

  private:
    struct Block
    {
        std::unique_ptr<std::byte[]> data;
        size_t size = 0;
        size_t used = 0;
    };

    size_t blockBytes_;
    std::vector<Block> blocks_;
    size_t cur_ = 0;
};

/**
 * String interner for channel/operator names. Rebuilding the same graph
 * produces the same names, so after the first build every lookup hits
 * and returns a stable reference with no allocation. Interned strings
 * survive recycle() by design (they key the reuse).
 */
class NameInterner
{
  public:
    std::string_view
    intern(std::string_view s)
    {
        auto it = pool_.find(s);
        if (it != pool_.end())
            return *it;
        return *pool_.emplace(s).first;
    }

    size_t size() const { return pool_.size(); }

  private:
    struct Hash
    {
        using is_transparent = void;
        size_t
        operator()(std::string_view s) const
        {
            return std::hash<std::string_view>{}(s);
        }
    };
    struct Eq
    {
        using is_transparent = void;
        bool
        operator()(std::string_view a, std::string_view b) const
        {
            return a == b;
        }
    };

    std::unordered_set<std::string, Hash, Eq> pool_;
};

/** Everything a recyclable graph retains across iterations. */
struct GraphArena
{
    MonotonicArena mem;
    NameInterner names;
};

} // namespace step
