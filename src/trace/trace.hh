/**
 * @file
 * Synthetic trace substrate. The paper drives its experiments with (a)
 * expert-routing traces from running Qwen3/Mixtral on HH-RLHF requests
 * and (b) KV-cache lengths sampled from the AzureLLMInference dataset
 * (section 5.1, appendix B.3). Neither dataset ships with this repo, so
 * we synthesize traces with the properties the experiments consume:
 * skewed expert popularity with controllable bin-count variance, and
 * KV-length batches in low/median/high standard-deviation classes drawn
 * from a 5000-request log-normal window.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "support/rng.hh"

namespace step {

/** Expert assignments for one batch at one layer. */
struct ExpertTrace
{
    int64_t numExperts = 0;
    /** topK expert ids per token. */
    std::vector<std::vector<uint32_t>> perToken;

    /** Tokens routed to each expert. */
    std::vector<int64_t> binCounts() const;
    /** Standard deviation of bin counts (B.3 selection metric). */
    double binStddev() const;
    /** Number of experts with at least one token. */
    int64_t activeExperts() const;
};

/**
 * Generate one expert-routing trace: expert popularity is drawn from a
 * symmetric Dirichlet (smaller alpha = more skew, mimicking the
 * concentration seen in real MoE routers), then each token samples topK
 * distinct experts.
 */
ExpertTrace generateExpertTrace(Rng& rng, int64_t num_tokens,
                                int64_t num_experts, int64_t top_k,
                                double alpha = 0.5);

/**
 * B.3 methodology: generate @p layers traces and return the one whose
 * bin-count standard deviation is closest to the average over all.
 */
ExpertTrace representativeExpertTrace(uint64_t seed, int64_t num_tokens,
                                      int64_t num_experts, int64_t top_k,
                                      int64_t layers = 16,
                                      double alpha = 0.5);

/** KV-length variability class (Figures 14, 15, 21). */
enum class KvVarClass { Low, Med, High };

/**
 * Sample a batch of KV-cache lengths. A 5000-request window is drawn
 * from a log-normal; batches are formed and ranked by their length
 * standard deviation; Low/Med/High return a batch from the bottom 10% /
 * median / top 10% variability, mirroring B.3.
 */
std::vector<int64_t> sampleKvBatch(uint64_t seed, int64_t batch,
                                   KvVarClass var,
                                   int64_t mean_len = 1024,
                                   int64_t max_len = 8192);

} // namespace step
