#include "trace/trace.hh"

#include <algorithm>
#include <cmath>

#include "support/error.hh"
#include "support/stats.hh"

namespace step {

std::vector<int64_t>
ExpertTrace::binCounts() const
{
    std::vector<int64_t> bins(static_cast<size_t>(numExperts), 0);
    for (const auto& tok : perToken)
        for (uint32_t e : tok)
            ++bins[e];
    return bins;
}

double
ExpertTrace::binStddev() const
{
    auto bins = binCounts();
    std::vector<double> xs(bins.begin(), bins.end());
    return stddev(xs);
}

int64_t
ExpertTrace::activeExperts() const
{
    int64_t n = 0;
    for (int64_t c : binCounts())
        n += c > 0;
    return n;
}

ExpertTrace
generateExpertTrace(Rng& rng, int64_t num_tokens, int64_t num_experts,
                    int64_t top_k, double alpha)
{
    STEP_ASSERT(top_k <= num_experts, "topK > experts");
    ExpertTrace tr;
    tr.numExperts = num_experts;
    std::vector<double> alphas(static_cast<size_t>(num_experts), alpha);
    std::vector<double> popularity = rng.dirichlet(alphas);
    for (int64_t t = 0; t < num_tokens; ++t) {
        std::vector<double> w = popularity;
        std::vector<uint32_t> picks;
        for (int64_t k = 0; k < top_k; ++k) {
            size_t e = rng.categorical(w);
            picks.push_back(static_cast<uint32_t>(e));
            w[e] = 0.0; // without replacement
        }
        std::sort(picks.begin(), picks.end());
        tr.perToken.push_back(std::move(picks));
    }
    return tr;
}

ExpertTrace
representativeExpertTrace(uint64_t seed, int64_t num_tokens,
                          int64_t num_experts, int64_t top_k,
                          int64_t layers, double alpha)
{
    Rng rng(seed);
    std::vector<ExpertTrace> traces;
    std::vector<double> devs;
    for (int64_t l = 0; l < layers; ++l) {
        traces.push_back(generateExpertTrace(rng, num_tokens, num_experts,
                                             top_k, alpha));
        devs.push_back(traces.back().binStddev());
    }
    double avg = mean(devs);
    size_t best = 0;
    for (size_t i = 1; i < traces.size(); ++i)
        if (std::abs(devs[i] - avg) < std::abs(devs[best] - avg))
            best = i;
    return traces[best];
}

std::vector<int64_t>
sampleKvBatch(uint64_t seed, int64_t batch, KvVarClass var,
              int64_t mean_len, int64_t max_len)
{
    Rng rng(seed);
    constexpr int64_t kWindow = 5000;
    // Log-normal with sigma ~1 gives the heavy-tailed mix of short
    // chats and long-context requests seen in serving traces.
    double sigma = 1.0;
    double mu = std::log(static_cast<double>(mean_len)) -
                sigma * sigma / 2.0;
    std::vector<int64_t> window;
    window.reserve(static_cast<size_t>(kWindow));
    for (int64_t i = 0; i < kWindow; ++i) {
        auto len = static_cast<int64_t>(rng.logNormal(mu, sigma));
        window.push_back(std::clamp<int64_t>(len, 16, max_len));
    }
    // Form candidate batches and rank by length stddev.
    int64_t num_batches = kWindow / batch;
    std::vector<std::pair<double, int64_t>> ranked;
    for (int64_t b = 0; b < num_batches; ++b) {
        std::vector<double> xs;
        for (int64_t i = 0; i < batch; ++i)
            xs.push_back(static_cast<double>(
                window[static_cast<size_t>(b * batch + i)]));
        ranked.emplace_back(stddev(xs), b);
    }
    std::sort(ranked.begin(), ranked.end());
    size_t idx = 0;
    switch (var) {
      case KvVarClass::Low:
        idx = ranked.size() / 20; // bottom decile
        break;
      case KvVarClass::Med:
        idx = ranked.size() / 2;
        break;
      case KvVarClass::High:
        idx = ranked.size() - 1 - ranked.size() / 20;
        break;
    }
    int64_t b = ranked[idx].second;
    return std::vector<int64_t>(
        window.begin() + static_cast<long>(b * batch),
        window.begin() + static_cast<long>((b + 1) * batch));
}

} // namespace step
