/**
 * @file
 * Coroutine task type for simulation contexts. Each operator's body is a
 * C++20 coroutine returning SimTask; it suspends on channel reads/writes
 * and is resumed by the Scheduler. This mirrors the Dataflow Abstract
 * Machine execution model [Zhang et al., ISCA'24] that the paper's Rust
 * simulator builds on: asynchronously executing blocks with local virtual
 * time, communicating through timestamped FIFOs.
 */
#pragma once

#include <coroutine>
#include <exception>
#include <utility>

#include "support/framepool.hh"

namespace step::dam {

/** Simulation time in cycles. */
using Cycle = uint64_t;

class SimTask
{
  public:
    struct promise_type
    {
        SimTask
        get_return_object()
        {
            return SimTask(Handle::from_promise(*this));
        }
        std::suspend_always initial_suspend() noexcept { return {}; }
        std::suspend_always final_suspend() noexcept { return {}; }
        void return_void() {}
        void
        unhandled_exception()
        {
            exception = std::current_exception();
        }

        // Coroutine frames are allocated through the promise: route them
        // into the size-bucketed FramePool so re-running a recycled graph
        // reuses warm frame blocks instead of hitting the heap ~190
        // times per serving iteration.
        static void* operator new(std::size_t n)
        {
            return FramePool::allocate(n);
        }
        static void operator delete(void* p) noexcept
        {
            FramePool::deallocate(p);
        }
        static void operator delete(void* p, std::size_t) noexcept
        {
            FramePool::deallocate(p);
        }

        std::exception_ptr exception;
    };

    using Handle = std::coroutine_handle<promise_type>;

    SimTask() = default;
    explicit SimTask(Handle h) : handle_(h) {}
    SimTask(SimTask&& o) noexcept : handle_(std::exchange(o.handle_, {})) {}
    SimTask&
    operator=(SimTask&& o) noexcept
    {
        if (this != &o) {
            destroy();
            handle_ = std::exchange(o.handle_, {});
        }
        return *this;
    }
    SimTask(const SimTask&) = delete;
    SimTask& operator=(const SimTask&) = delete;
    ~SimTask() { destroy(); }

    bool valid() const { return static_cast<bool>(handle_); }
    bool done() const { return handle_ && handle_.done(); }
    void resume() { handle_.resume(); }

    /** Exception escaped from the coroutine body, if any. */
    std::exception_ptr
    exception() const
    {
        return handle_ ? handle_.promise().exception : nullptr;
    }

  private:
    void
    destroy()
    {
        if (handle_) {
            handle_.destroy();
            handle_ = {};
        }
    }

    Handle handle_;
};

} // namespace step::dam
