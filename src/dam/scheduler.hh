/**
 * @file
 * Cooperative scheduler for simulation contexts. Resumes the runnable
 * context with the smallest local clock, which keeps context clocks close
 * together (important for shared-resource contention modeling and for
 * availability-ordered merges) and makes runs deterministic.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "dam/context.hh"

namespace step::dam {

class Scheduler
{
  public:
    Scheduler() = default;

    /** Register a context. The scheduler does not take ownership. */
    void add(Context* ctx);

    /**
     * Run until every context finishes. Throws FatalError with a blocked-
     * context report on deadlock, and PanicError if a context body threw.
     */
    void run();

    /**
     * Forget all registered contexts so the scheduler can be reused for
     * another simulation (the serving runtime runs one graph per batching
     * iteration through a single engine-owned scheduler). Contexts are
     * not owned and are left untouched.
     */
    void reset();

    /** Makespan: max local clock over all contexts after run(). */
    Cycle elapsed() const;

    /** Wake a blocked context (channel push/pop side effects). */
    void makeReady(Context* ctx);

    /** Requeue the currently running context (used by Yield). */
    void yieldRunning(Context* ctx);

    /** Smallest clock among ready contexts other than @p self. */
    Cycle minReadyClock(const Context* self) const;

    size_t numContexts() const { return contexts_.size(); }

  private:
    void enqueue(Context* ctx);
    std::string deadlockReport() const;

    struct QEntry
    {
        Cycle time;
        uint64_t seq;
        Context* ctx;
        bool
        operator>(const QEntry& o) const
        {
            return time != o.time ? time > o.time : seq > o.seq;
        }
    };

    std::vector<Context*> contexts_;
    std::priority_queue<QEntry, std::vector<QEntry>, std::greater<>> ready_;
    uint64_t seq_ = 0;
    size_t finished_ = 0;
};

} // namespace step::dam
