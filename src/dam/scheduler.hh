/**
 * @file
 * Cooperative scheduler for simulation contexts. Resumes the runnable
 * context with the smallest local clock, which keeps context clocks close
 * together (important for shared-resource contention modeling and for
 * availability-ordered merges) and makes runs deterministic.
 *
 * The ready queue is an index-tracking binary min-heap: each context
 * records its heap slot, so there are never stale entries, re-keying is
 * O(log n), and the minimum ready clock is an O(1) root read instead of
 * an O(n) scan.
 */
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dam/context.hh"

namespace step::obs {
class TraceSink;
}

namespace step::dam {

class Scheduler
{
  public:
    Scheduler() = default;

    /** Register a context. The scheduler does not take ownership. */
    void add(Context* ctx);

    /**
     * Run until every context finishes. Throws FatalError with a blocked-
     * context report on deadlock, and PanicError if a context body threw.
     * Equivalent to start() followed by drain().
     */
    void run();

    /**
     * Create every context's coroutine and mark it ready, without
     * executing any event. Splitting start from drain lets callers (e.g.
     * the allocation-counting benches) measure the steady-state event
     * loop separately from coroutine-frame setup.
     */
    void start();

    /** Execute events until every started context finishes. */
    void drain();

    /**
     * Forget all registered contexts so the scheduler can be reused for
     * another simulation (the serving runtime runs one graph per batching
     * iteration through a single engine-owned scheduler). Contexts are
     * not owned and are left untouched.
     */
    void reset();

    /** Makespan: max local clock over all contexts after run(). */
    Cycle elapsed() const;

    /** Wake a blocked context (channel push/pop side effects). */
    void makeReady(Context* ctx);

    /**
     * Wake a blocked context but park it in the ready heap no earlier
     * than cycle @p t (clamped up to the context's own clock). Channels
     * use this to wake a reader at the pushed token's ready time and a
     * writer at the released credit's time: the woken context cannot
     * make progress before @p t anyway (its clock joins to it on
     * pop/push), and keeping it parked lets the other endpoint keep
     * running and batch up work, so the wake costs one resume per burst
     * instead of one per token. Per-context virtual-time traces are
     * unaffected — only the interleaving of resumes changes, and
     * deterministically.
     */
    void makeReadyAt(Context* ctx, Cycle t);

    /** Requeue the currently running context (used by Yield). */
    void yieldRunning(Context* ctx);

    /**
     * Time-indexed suspension: park the running context in the ready
     * heap keyed at cycle @p t instead of its own clock. It is resumed
     * exactly when no other ready context has an earlier key — i.e.
     * once simulated time has caught up to @p t — or earlier, if a
     * channel wake (makeReady) re-keys it to its own clock first. The
     * context is marked Blocked with a TimedWait record so drain() can
     * tell a timer expiry from a corrupted heap. This is the primitive
     * behind WaitUntil, which replaces EagerMerge's patience-yield
     * polling with a single suspension.
     */
    void suspendUntil(Context* ctx, Cycle t);

    /**
     * Coroutine resumes executed so far (one per context switch into an
     * operator body). Cleared by reset(), so a Graph::run on a reused
     * scheduler reads a per-run count.
     */
    uint64_t contextSwitches() const { return switches_; }

    /**
     * Attach (or detach, with nullptr) a trace sink. When set, drain()
     * reports every resume, suspend, and completion to the sink —
     * per-resume spans, per-op lifetime spans, and switch attribution,
     * depending on the sink's level. Deliberately NOT cleared by
     * reset(): the serving engine resets this scheduler once per
     * batching iteration and the trace must span the whole run. The
     * cost with no sink attached is one predicted branch per event.
     */
    void setTraceSink(obs::TraceSink* sink) { trace_ = sink; }
    obs::TraceSink* traceSink() const { return trace_; }

    /**
     * Earliest next-resume key in the ready heap, or nullopt when the
     * heap is empty. This is NOT necessarily any context's clock: the
     * heap also holds timed waiters keyed at their deadlines
     * (suspendUntil) and contexts parked at the token-ready/credit
     * time that woke them (makeReadyAt), so the value is "no runnable
     * context can act before this cycle". Meaningful from a running
     * context (which is never in the ready heap), so @p self never
     * shadows the result; the parameter is asserted against the root
     * defensively.
     */
    std::optional<Cycle> minReadyClock(const Context* self) const;

    size_t numContexts() const { return contexts_.size(); }

  private:
    void enqueue(Context* ctx);
    void enqueueAt(Context* ctx, Cycle t);
    Context* popMin();
    void siftUp(size_t i);
    void siftDown(size_t i);
    std::string deadlockReport() const;

    struct HeapEntry
    {
        Cycle time;
        uint64_t seq;
        Context* ctx;
        bool
        operator<(const HeapEntry& o) const
        {
            return time != o.time ? time < o.time : seq < o.seq;
        }
    };

    std::vector<Context*> contexts_;
    std::vector<HeapEntry> heap_;
    uint64_t seq_ = 0;
    size_t finished_ = 0;
    uint64_t switches_ = 0;
    obs::TraceSink* trace_ = nullptr;
};

// ---- hot-path inline definitions --------------------------------------
// makeReady runs on every channel wake; keep it and the heap primitives
// header-inline so the wake path costs a few stores plus a sift.

inline void
Scheduler::siftUp(size_t i)
{
    HeapEntry e = heap_[i];
    while (i > 0) {
        size_t parent = (i - 1) / 2;
        if (!(e < heap_[parent]))
            break;
        heap_[i] = heap_[parent];
        heap_[i].ctx->heapPos_ = i;
        i = parent;
    }
    heap_[i] = e;
    e.ctx->heapPos_ = i;
}

inline void
Scheduler::siftDown(size_t i)
{
    HeapEntry e = heap_[i];
    const size_t n = heap_.size();
    while (true) {
        size_t child = 2 * i + 1;
        if (child >= n)
            break;
        if (child + 1 < n && heap_[child + 1] < heap_[child])
            ++child;
        if (!(heap_[child] < e))
            break;
        heap_[i] = heap_[child];
        heap_[i].ctx->heapPos_ = i;
        i = child;
    }
    heap_[i] = e;
    e.ctx->heapPos_ = i;
}

inline void
Scheduler::enqueueAt(Context* ctx, Cycle t)
{
    if (ctx->heapPos_ != Context::kNotQueued) {
        // Re-key in place. Live path: a channel wake re-keys a timed
        // waiter from its deadline down to its own clock.
        size_t i = ctx->heapPos_;
        heap_[i].time = t;
        heap_[i].seq = seq_++;
        siftUp(i);
        siftDown(ctx->heapPos_);
        return;
    }
    heap_.push_back(HeapEntry{t, seq_++, ctx});
    siftUp(heap_.size() - 1);
}

inline void
Scheduler::enqueue(Context* ctx)
{
    enqueueAt(ctx, ctx->now());
}

inline void
Scheduler::makeReady(Context* ctx)
{
    makeReadyAt(ctx, ctx->now());
}

inline void
Scheduler::makeReadyAt(Context* ctx, Cycle t)
{
    if (ctx->state_ == CtxState::Blocked) {
        ctx->state_ = CtxState::Ready;
        ctx->block_ = BlockInfo{};
        if (t < ctx->now())
            t = ctx->now();
        if (ctx->heapPos_ != Context::kNotQueued) {
            // A timed waiter woken by channel activity: pull its heap
            // key down when the wake time is earlier than the
            // remaining deadline, so the new input is considered as
            // soon as the waiter would naturally run.
            if (t < heap_[ctx->heapPos_].time)
                enqueueAt(ctx, t);
            return;
        }
        enqueueAt(ctx, t);
    }
}

} // namespace step::dam
