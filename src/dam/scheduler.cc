#include "dam/scheduler.hh"

#include <sstream>

#include "dam/channel.hh"
#include "obs/sink.hh"
#include "support/error.hh"

namespace step::dam {

void
Scheduler::add(Context* ctx)
{
    STEP_ASSERT(ctx->state_ == CtxState::NotStarted,
                "context " << ctx->name() << " registered twice");
    ctx->sched_ = this;
    ctx->id_ = contexts_.size();
    contexts_.push_back(ctx);
}

Context*
Scheduler::popMin()
{
    STEP_ASSERT(!heap_.empty(), "popMin on empty ready heap");
    Context* ctx = heap_.front().ctx;
    ctx->heapPos_ = Context::kNotQueued;
    HeapEntry last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
        heap_.front() = last;
        last.ctx->heapPos_ = 0;
        siftDown(0);
    }
    return ctx;
}

void
Scheduler::suspendUntil(Context* ctx, Cycle t)
{
    STEP_ASSERT(ctx->state_ == CtxState::Running,
                "suspendUntil from non-running context");
    ctx->state_ = CtxState::Blocked;
    ctx->block_ = BlockInfo{BlockInfo::Kind::TimedWait, nullptr, 0};
    enqueueAt(ctx, t);
}

void
Scheduler::yieldRunning(Context* ctx)
{
    STEP_ASSERT(ctx->state_ == CtxState::Running,
                "yield from non-running context");
    ctx->state_ = CtxState::Ready;
    enqueue(ctx);
}

std::optional<Cycle>
Scheduler::minReadyClock(const Context* self) const
{
    if (heap_.empty())
        return std::nullopt;
    STEP_ASSERT(heap_.front().ctx != self,
                "minReadyClock caller is in the ready heap");
    return heap_.front().time;
}

void
Scheduler::start()
{
    finished_ = 0;
    heap_.reserve(contexts_.size());
    for (Context* ctx : contexts_) {
        ctx->task_ = ctx->run();
        ctx->state_ = CtxState::Ready;
        enqueue(ctx);
    }
}

void
Scheduler::drain()
{
    while (finished_ < contexts_.size()) {
        if (heap_.empty())
            stepFatal("simulation deadlock:\n" << deadlockReport());
        // The root key is the scheduler's virtual time: it never runs
        // backwards (wakes and yields always re-key at or after the
        // current root), so it is the monotone stamp tracing wants.
        const Cycle vnow = heap_.front().time;
        Context* ctx = popMin();
        if (ctx->state_ == CtxState::Blocked) {
            // Timed-wait deadline reached: every other ready context's
            // key is at or past it, so the waiter proceeds. The channel
            // registrations are cleared by WaitUntil::await_resume.
            STEP_ASSERT(ctx->block_.kind == BlockInfo::Kind::TimedWait,
                        "blocked context " << ctx->name()
                        << " in ready heap");
            ctx->state_ = CtxState::Ready;
            ctx->block_ = BlockInfo{};
        }
        STEP_ASSERT(ctx->state_ == CtxState::Ready,
                    "non-ready context " << ctx->name()
                    << " in ready heap");
        ctx->state_ = CtxState::Running;
        ++switches_;
#ifdef STEP_SWITCH_TRACE
        extern void stepSwitchTraceHook(const char*);
        stepSwitchTraceHook(ctx->name().c_str());
#endif
        if (trace_) [[unlikely]]
            trace_->schedResume(ctx, ctx->name(), vnow);
        ctx->task_.resume();
        if (ctx->task_.done()) {
            if (auto ex = ctx->task_.exception())
                std::rethrow_exception(ex);
            ctx->state_ = CtxState::Finished;
            ++finished_;
            if (trace_) [[unlikely]]
                trace_->schedFinish(ctx, ctx->name(), ctx->now());
        } else if (ctx->state_ == CtxState::Running) {
            // Suspended without blocking (shouldn't happen: every
            // suspension point marks Blocked or yields).
            stepPanic("context " << ctx->name()
                      << " suspended in Running state");
        } else if (trace_) [[unlikely]] {
            // Blocked (read/write/select/timed-wait) or yielded; the
            // block record is still intact either way.
            trace_->schedSuspend(ctx, std::max(vnow, ctx->now()),
                                 static_cast<uint8_t>(ctx->block_.kind),
                                 ctx->block_.ch);
        }
    }
}

void
Scheduler::run()
{
    start();
    drain();
}

void
Scheduler::reset()
{
    // Deliberately no per-context bookkeeping: after an abnormal run
    // (deadlock throw) the caller may have destroyed the contexts still
    // sitting in the heap, so their pointers must not be dereferenced.
    // A forgotten context can never be re-enqueued here (add() only
    // accepts NotStarted contexts, which are born with heapPos_ clear),
    // so dropping the heap wholesale is safe.
    contexts_.clear();
    heap_.clear();
    seq_ = 0;
    finished_ = 0;
    switches_ = 0;
}

Cycle
Scheduler::elapsed() const
{
    Cycle t = 0;
    for (const Context* c : contexts_)
        t = std::max(t, c->now());
    return t;
}

std::string
Scheduler::deadlockReport() const
{
    std::ostringstream os;
    for (const Context* c : contexts_) {
        if (c->state_ != CtxState::Finished) {
            os << "  [" << c->name() << "] t=" << c->now()
               << " blocked on " << c->block_.toString() << "\n";
        }
    }
    return os.str();
}

} // namespace step::dam
