#include "dam/scheduler.hh"

#include <sstream>

#include "support/error.hh"

namespace step::dam {

void
Scheduler::add(Context* ctx)
{
    STEP_ASSERT(ctx->state_ == CtxState::NotStarted,
                "context " << ctx->name() << " registered twice");
    ctx->sched_ = this;
    ctx->id_ = contexts_.size();
    contexts_.push_back(ctx);
}

void
Scheduler::enqueue(Context* ctx)
{
    ready_.push(QEntry{ctx->now(), seq_++, ctx});
}

void
Scheduler::makeReady(Context* ctx)
{
    if (ctx->state_ == CtxState::Blocked) {
        ctx->state_ = CtxState::Ready;
        ctx->blockReason_.clear();
        enqueue(ctx);
    }
}

void
Scheduler::yieldRunning(Context* ctx)
{
    STEP_ASSERT(ctx->state_ == CtxState::Running,
                "yield from non-running context");
    ctx->state_ = CtxState::Ready;
    enqueue(ctx);
}

Cycle
Scheduler::minReadyClock(const Context* self) const
{
    Cycle best = ~Cycle{0};
    for (const Context* c : contexts_) {
        if (c == self)
            continue;
        if (c->state_ == CtxState::Ready && c->now() < best)
            best = c->now();
    }
    return best;
}

void
Scheduler::run()
{
    finished_ = 0;
    for (Context* ctx : contexts_) {
        ctx->task_ = ctx->run();
        ctx->state_ = CtxState::Ready;
        enqueue(ctx);
    }

    while (finished_ < contexts_.size()) {
        if (ready_.empty())
            stepFatal("simulation deadlock:\n" << deadlockReport());
        Context* ctx = ready_.top().ctx;
        ready_.pop();
        if (ctx->state_ != CtxState::Ready)
            continue; // stale queue entry
        ctx->state_ = CtxState::Running;
        ctx->task_.resume();
        if (ctx->task_.done()) {
            if (auto ex = ctx->task_.exception())
                std::rethrow_exception(ex);
            ctx->state_ = CtxState::Finished;
            ++finished_;
        } else if (ctx->state_ == CtxState::Running) {
            // Suspended without blocking (shouldn't happen: every
            // suspension point marks Blocked or yields).
            stepPanic("context " << ctx->name()
                      << " suspended in Running state");
        }
    }
}

void
Scheduler::reset()
{
    contexts_.clear();
    ready_ = {};
    seq_ = 0;
    finished_ = 0;
}

Cycle
Scheduler::elapsed() const
{
    Cycle t = 0;
    for (const Context* c : contexts_)
        t = std::max(t, c->now());
    return t;
}

std::string
Scheduler::deadlockReport() const
{
    std::ostringstream os;
    for (const Context* c : contexts_) {
        if (c->state_ != CtxState::Finished) {
            os << "  [" << c->name() << "] t=" << c->now() << " blocked on "
               << (c->blockReason_.empty() ? "<unknown>" : c->blockReason_)
               << "\n";
        }
    }
    return os.str();
}

} // namespace step::dam
