/**
 * @file
 * Timestamped bounded FIFO channel between two contexts.
 *
 * Semantics (credit-based backpressure, as in latency-insensitive /
 * DAM-style simulation):
 *  - The channel starts with `capacity` credits at time 0.
 *  - send: the writer consumes the earliest credit; its clock advances to
 *    the credit's availability (stall-until-space), and the token becomes
 *    visible to the reader at writer_clock + latency.
 *  - recv: the reader's clock advances to the token's ready time; a new
 *    credit is released at the reader's clock.
 *
 * Channels are single-producer single-consumer; fan-out is an explicit
 * Broadcast operator, as on real SDA fabrics.
 *
 * The hot path (push/pop/suspend) performs no heap allocation: entry and
 * credit storage are rings sized to the FIFO depth at construction, and
 * blocking records a tagged BlockInfo instead of formatting a string.
 */
#pragma once

#include <coroutine>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/token.hh"
#include "dam/context.hh"
#include "support/ring.hh"

namespace step::dam {

class Scheduler;

class Channel
{
  public:
    /**
     * @param name     diagnostic label
     * @param capacity max in-flight tokens (hardware FIFO depth)
     * @param latency  cycles from send to visibility
     */
    explicit Channel(std::string name, size_t capacity = 8,
                     Cycle latency = 1);

    /**
     * Re-initialize a pooled channel for reuse in a recycled graph:
     * equivalent to destroying and re-constructing, but keeps the name
     * and ring storage capacity so steady-state graph rebuilds do not
     * allocate (see Graph::recycle()).
     */
    void reinit(std::string_view name, size_t capacity, Cycle latency);

    /**
     * Reset run-time dynamics only — FIFO contents, credits, waiter
     * registrations, push count — while keeping the name, geometry, and
     * producer/consumer bindings. Used by Graph::rearm() to re-run a
     * structurally unchanged graph without rebuilding it.
     */
    void rearm();

    const std::string& name() const { return name_; }
    size_t capacity() const { return capacity_; }
    Cycle latency() const { return latency_; }

    bool empty() const { return entries_.empty(); }
    size_t size() const { return entries_.size(); }
    bool
    hasCredit() const
    {
        return initCredits_ > 0 || !credits_.empty();
    }

    /** Ready time of the head token; requires !empty(). */
    Cycle frontTime() const;
    /** Head token without consuming; requires !empty(). */
    const Token& frontToken() const;

    /** Bind endpoints (done by the graph builder). */
    void setProducer(Context* p) { producer_ = p; }
    void setConsumer(Context* c) { consumer_ = c; }
    Context* producer() const { return producer_; }
    Context* consumer() const { return consumer_; }

    // ---- coroutine interface ------------------------------------------

    struct ReadAwaiter
    {
        Channel& ch;
        Context& reader;

        bool await_ready() const { return !ch.empty(); }
        void await_suspend(std::coroutine_handle<>) const;
        Token await_resume() const { return ch.pop(reader); }
    };

    /**
     * Rvalue write path: views the caller's token instead of moving it
     * into the awaiter. A temporary in a co_await expression lives in
     * the coroutine frame until the expression completes (across
     * suspension), so the pointer stays valid and the steady-state write
     * costs exactly one token move (into the FIFO slot).
     */
    struct WriteAwaiter
    {
        Channel& ch;
        Context& writer;
        Token* tok;
        Cycle minReady = 0;

        bool await_ready() const { return ch.hasCredit(); }
        void await_suspend(std::coroutine_handle<>) const;
        void await_resume() { ch.push(writer, std::move(*tok), minReady); }
    };

    /** Lvalue write path: owns a copy (Broadcast re-emits one token). */
    struct WriteCopyAwaiter
    {
        Channel& ch;
        Context& writer;
        Token tok;
        Cycle minReady = 0;

        bool await_ready() const { return ch.hasCredit(); }
        void await_suspend(std::coroutine_handle<>) const;
        void await_resume() { ch.push(writer, std::move(tok), minReady); }
    };

    /** co_await ch.read(self) -> Token. */
    ReadAwaiter read(Context& reader) { return ReadAwaiter{*this, reader}; }

    /** co_await ch.write(self, token). */
    WriteAwaiter
    write(Context& writer, Token&& t)
    {
        return WriteAwaiter{*this, writer, &t};
    }
    WriteCopyAwaiter
    write(Context& writer, const Token& t)
    {
        return WriteCopyAwaiter{*this, writer, t};
    }

    /**
     * co_await ch.writeAt(self, token, t): like write but the token
     * becomes visible no earlier than @p min_ready (e.g. a DRAM
     * completion time) — models pipelined units with in-flight requests.
     */
    WriteAwaiter
    writeAt(Context& writer, Token&& t, Cycle min_ready)
    {
        return WriteAwaiter{*this, writer, &t, min_ready};
    }
    WriteCopyAwaiter
    writeAt(Context& writer, const Token& t, Cycle min_ready)
    {
        return WriteCopyAwaiter{*this, writer, t, min_ready};
    }

    /** Register/unregister a multi-channel waiter (see WaitAny). */
    void setWaitingReader(Context* c) { waitingReader_ = c; }

    /** Total tokens ever pushed (stats). */
    uint64_t totalPushed() const { return totalPushed_; }

  private:
    friend struct ReadAwaiter;
    friend struct WriteAwaiter;
    friend struct WriteCopyAwaiter;

    // Inline (header) definitions: push/pop run once per simulated
    // token and must inline into the operator coroutines.
    void push(Context& writer, Token&& t, Cycle min_ready = 0);
    Token pop(Context& reader);

    std::string name_;
    size_t capacity_;
    Cycle latency_;

    struct Entry
    {
        Cycle ready = 0;
        Token tok;
    };
    // entries + credits (incl. implicit ones) == capacity at all times.
    // Rings grow lazily to the occupancy high-water mark: construction
    // touches nothing, and steady-state push/pop never reallocates.
    // The `capacity` initial credits (all available at t=0) are
    // represented by a plain counter instead of materialized ring
    // slots, so building a deep FIFO is O(1).
    Ring<Entry> entries_;
    Ring<Cycle> credits_;
    size_t initCredits_;
    /** Ready time of the most recently pushed token (monotone). */
    Cycle lastReady_ = 0;

    Context* producer_ = nullptr;
    Context* consumer_ = nullptr;
    Context* waitingReader_ = nullptr;
    Context* waitingWriter_ = nullptr;
    uint64_t totalPushed_ = 0;
};

/**
 * Awaitable that suspends until at least one of the given channels is
 * non-empty. Used by EagerMerge-style operators; the caller re-inspects
 * heads after resuming.
 *
 * Views the caller's channel list (no copy): the viewed sequence must
 * outlive the co_await, which holds for coroutine locals and operator
 * members. Select-heavy operators keep a member scratch vector so
 * re-blocking allocates nothing.
 */
struct WaitAny
{
    std::span<Channel* const> chans;
    Context& self;

    bool
    await_ready() const
    {
        for (const Channel* c : chans)
            if (!c->empty())
                return true;
        return false;
    }

    void await_suspend(std::coroutine_handle<>) const;

    void
    await_resume() const
    {
        for (Channel* c : chans)
            c->setWaitingReader(nullptr);
    }
};

/**
 * Timed wait with channel wake: suspends until simulated time reaches
 * @p deadline — the context parks in the scheduler's ready heap keyed at
 * the deadline, so it resumes exactly when no other runnable context is
 * earlier — or until any of the given channels receives a token,
 * whichever the deterministic heap order reaches first. Replaces
 * patience-yield polling in availability-ordered merges: one suspension
 * instead of one context switch per polled producer step.
 *
 * Like WaitAny, the channel list is viewed, not copied, and must
 * outlive the co_await (operator members and coroutine locals qualify).
 * The list may be empty for a pure timer.
 */
struct WaitUntil
{
    std::span<Channel* const> chans;
    Context& self;
    Cycle deadline;

    bool
    await_ready() const
    {
        // A token already visible on a listed channel satisfies the
        // wait immediately (mirrors WaitAny); an empty list is a pure
        // timer.
        for (const Channel* c : chans)
            if (!c->empty())
                return true;
        return false;
    }

    void await_suspend(std::coroutine_handle<>) const;

    void
    await_resume() const
    {
        for (Channel* c : chans)
            c->setWaitingReader(nullptr);
    }
};

/** Reschedules the context, letting lower-clock contexts run first. */
struct Yield
{
    Context& self;

    bool await_ready() const { return false; }
    void await_suspend(std::coroutine_handle<>) const;
    void await_resume() const {}
};

} // namespace step::dam

// ---- hot-path inline definitions --------------------------------------
// push/pop and the blocking hooks are defined here (after Scheduler is
// visible) so the per-token path fully inlines into operator bodies.

#include "dam/scheduler.hh"

namespace step::dam {

inline void
Channel::push(Context& writer, Token&& t, Cycle min_ready)
{
    STEP_ASSERT(hasCredit(), "push without credit on " << name_);
    // The implicit t=0 credits sit at the front of the credit FIFO:
    // consume them before any credit released by a pop.
    Cycle credit = 0;
    if (initCredits_ > 0) {
        --initCredits_;
    } else {
        credit = credits_.front();
        credits_.pop_front();
    }
    writer.advanceTo(credit);
    Cycle ready = std::max(writer.now() + latency_, min_ready);
    // FIFO ordering: a token can never become ready before a
    // predecessor still in the queue (lastReady_ mirrors the tail's
    // ready time and is zeroed when the queue drains, matching a clamp
    // against back().ready exactly).
    ready = std::max(ready, lastReady_);
    lastReady_ = ready;
    Entry& slot = entries_.push_slot();
    slot.ready = ready;
    slot.tok = std::move(t);
    ++totalPushed_;
    if (waitingReader_) {
        Context* r = waitingReader_;
        waitingReader_ = nullptr;
        // Wake at the token's ready time: the reader joins to it on
        // pop anyway, and parking it lets this writer finish its burst
        // so the reader drains it in one resume.
        writer.scheduler()->makeReadyAt(r, ready);
    }
}

inline Token
Channel::pop(Context& reader)
{
    STEP_ASSERT(!entries_.empty(), "pop on empty channel " << name_);
    Entry& e = entries_.front();
    reader.advanceTo(e.ready);
    Token out = std::move(e.tok);
    entries_.pop_front();
    if (entries_.empty())
        lastReady_ = 0;
    credits_.push_back(reader.now());
    if (waitingWriter_) {
        Context* w = waitingWriter_;
        waitingWriter_ = nullptr;
        // Wake at the released credit's time (the writer's clock joins
        // to it on push), mirroring the reader-side batching wake.
        reader.scheduler()->makeReadyAt(w, reader.now());
    }
    return out;
}

inline void
Channel::ReadAwaiter::await_suspend(std::coroutine_handle<>) const
{
    ch.waitingReader_ = &reader;
    reader.state_ = CtxState::Blocked;
    reader.block_ = BlockInfo{BlockInfo::Kind::Read, &ch, 0};
}

inline void
Channel::WriteAwaiter::await_suspend(std::coroutine_handle<>) const
{
    ch.waitingWriter_ = &writer;
    writer.state_ = CtxState::Blocked;
    writer.block_ = BlockInfo{BlockInfo::Kind::Write, &ch, 0};
}

inline void
Channel::WriteCopyAwaiter::await_suspend(std::coroutine_handle<>) const
{
    ch.waitingWriter_ = &writer;
    writer.state_ = CtxState::Blocked;
    writer.block_ = BlockInfo{BlockInfo::Kind::Write, &ch, 0};
}

} // namespace step::dam
