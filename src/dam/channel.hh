/**
 * @file
 * Timestamped bounded FIFO channel between two contexts.
 *
 * Semantics (credit-based backpressure, as in latency-insensitive /
 * DAM-style simulation):
 *  - The channel starts with `capacity` credits at time 0.
 *  - send: the writer consumes the earliest credit; its clock advances to
 *    the credit's availability (stall-until-space), and the token becomes
 *    visible to the reader at writer_clock + latency.
 *  - recv: the reader's clock advances to the token's ready time; a new
 *    credit is released at the reader's clock.
 *
 * Channels are single-producer single-consumer; fan-out is an explicit
 * Broadcast operator, as on real SDA fabrics.
 */
#pragma once

#include <coroutine>
#include <deque>
#include <string>

#include "core/token.hh"
#include "dam/context.hh"

namespace step::dam {

class Scheduler;

class Channel
{
  public:
    /**
     * @param name     diagnostic label
     * @param capacity max in-flight tokens (hardware FIFO depth)
     * @param latency  cycles from send to visibility
     */
    explicit Channel(std::string name, size_t capacity = 8,
                     Cycle latency = 1);

    const std::string& name() const { return name_; }
    size_t capacity() const { return capacity_; }
    Cycle latency() const { return latency_; }

    bool empty() const { return entries_.empty(); }
    size_t size() const { return entries_.size(); }
    bool hasCredit() const { return !credits_.empty(); }

    /** Ready time of the head token; requires !empty(). */
    Cycle frontTime() const;
    /** Head token without consuming; requires !empty(). */
    const Token& frontToken() const;

    /** Bind endpoints (done by the graph builder). */
    void setProducer(Context* p) { producer_ = p; }
    void setConsumer(Context* c) { consumer_ = c; }
    Context* producer() const { return producer_; }
    Context* consumer() const { return consumer_; }

    // ---- coroutine interface ------------------------------------------

    struct ReadAwaiter
    {
        Channel& ch;
        Context& reader;

        bool await_ready() const { return !ch.empty(); }
        void await_suspend(std::coroutine_handle<>) const;
        Token await_resume() const { return ch.pop(reader); }
    };

    struct WriteAwaiter
    {
        Channel& ch;
        Context& writer;
        Token tok;
        Cycle minReady = 0;

        bool await_ready() const { return ch.hasCredit(); }
        void await_suspend(std::coroutine_handle<>) const;
        void await_resume() { ch.push(writer, std::move(tok), minReady); }
    };

    /** co_await ch.read(self) -> Token. */
    ReadAwaiter read(Context& reader) { return ReadAwaiter{*this, reader}; }

    /** co_await ch.write(self, token). */
    WriteAwaiter
    write(Context& writer, Token t)
    {
        return WriteAwaiter{*this, writer, std::move(t)};
    }

    /**
     * co_await ch.writeAt(self, token, t): like write but the token
     * becomes visible no earlier than @p min_ready (e.g. a DRAM
     * completion time) — models pipelined units with in-flight requests.
     */
    WriteAwaiter
    writeAt(Context& writer, Token t, Cycle min_ready)
    {
        return WriteAwaiter{*this, writer, std::move(t), min_ready};
    }

    /** Register/unregister a multi-channel waiter (see WaitAny). */
    void setWaitingReader(Context* c) { waitingReader_ = c; }

    /** Total tokens ever pushed (stats). */
    uint64_t totalPushed() const { return totalPushed_; }

  private:
    friend struct ReadAwaiter;
    friend struct WriteAwaiter;

    void push(Context& writer, Token t, Cycle min_ready = 0);
    Token pop(Context& reader);

    std::string name_;
    size_t capacity_;
    Cycle latency_;

    struct Entry
    {
        Cycle ready;
        Token tok;
    };
    std::deque<Entry> entries_;
    std::deque<Cycle> credits_;

    Context* producer_ = nullptr;
    Context* consumer_ = nullptr;
    Context* waitingReader_ = nullptr;
    Context* waitingWriter_ = nullptr;
    uint64_t totalPushed_ = 0;
};

/**
 * Awaitable that suspends until at least one of the given channels is
 * non-empty. Used by EagerMerge-style operators; the caller re-inspects
 * heads after resuming.
 */
struct WaitAny
{
    std::vector<Channel*> chans;
    Context& self;

    bool
    await_ready() const
    {
        for (const Channel* c : chans)
            if (!c->empty())
                return true;
        return false;
    }

    void await_suspend(std::coroutine_handle<>) const;

    void
    await_resume() const
    {
        for (Channel* c : chans)
            c->setWaitingReader(nullptr);
    }
};

/** Reschedules the context, letting lower-clock contexts run first. */
struct Yield
{
    Context& self;

    bool await_ready() const { return false; }
    void await_suspend(std::coroutine_handle<>) const;
    void await_resume() const {}
};

} // namespace step::dam
