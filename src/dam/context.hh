/**
 * @file
 * Simulation context: one asynchronously executing dataflow block with a
 * local virtual clock. Subclasses implement run() as a coroutine.
 */
#pragma once

#include <cstdint>
#include <string>

#include "dam/task.hh"

namespace step::dam {

class Channel;
class Scheduler;

enum class CtxState : uint8_t {
    NotStarted,
    Ready,
    Running,
    Blocked,
    Finished,
};

/**
 * Why a context is blocked. A tagged record instead of a formatted
 * string: suspension is the hottest event in the simulator, so the
 * reason is rendered lazily (by Scheduler::deadlockReport) and storing
 * it costs two stores, no allocation.
 */
struct BlockInfo
{
    enum class Kind : uint8_t { None, Read, Write, Select, TimedWait };

    Kind kind = Kind::None;
    const Channel* ch = nullptr; ///< channel involved (Read/Write)
    size_t selectCount = 0;      ///< channels waited on (Select)

    /** Human-readable rendering (diagnostics only, allocates). */
    std::string toString() const;
};

class Context
{
  public:
    explicit Context(std::string name) : name_(std::move(name)) {}
    virtual ~Context() = default;

    Context(const Context&) = delete;
    Context& operator=(const Context&) = delete;

    /** The operator body. Runs as a coroutine under the scheduler. */
    virtual SimTask run() = 0;

    const std::string& name() const { return name_; }
    Cycle now() const { return now_; }
    CtxState state() const { return state_; }
    const BlockInfo& blockInfo() const { return block_; }

    /** Local time bump: the block was busy for @p dt cycles. */
    void advance(Cycle dt) { now_ += dt; }
    /** Local time join: wait until at least @p t. */
    void
    advanceTo(Cycle t)
    {
        if (t > now_)
            now_ = t;
    }

    Scheduler* scheduler() const { return sched_; }

  protected:
    /**
     * Return the context to its pre-registration state so it can be
     * re-added to a scheduler and re-run: clock zeroed, coroutine frame
     * destroyed (its block returns to the FramePool), block info
     * cleared. The rearm path (OpBase::rearm) calls this so a recycled
     * graph re-runs without reconstructing its operators.
     */
    void
    resetRun()
    {
        now_ = 0;
        state_ = CtxState::NotStarted;
        block_ = BlockInfo{};
        sched_ = nullptr;
        task_ = SimTask{};
        heapPos_ = kNotQueued;
    }

  private:
    friend class Scheduler;
    friend class Channel;
    friend struct WaitAny;
    friend struct WaitUntil;
    friend struct Yield;

    static constexpr size_t kNotQueued = ~size_t{0};

    std::string name_;
    Cycle now_ = 0;
    CtxState state_ = CtxState::NotStarted;
    BlockInfo block_;
    Scheduler* sched_ = nullptr;
    SimTask task_;
    uint64_t id_ = 0;
    /** Slot in the scheduler's ready heap; kNotQueued when absent. */
    size_t heapPos_ = kNotQueued;
};

} // namespace step::dam
