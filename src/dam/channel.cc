#include "dam/channel.hh"

#include <algorithm>

#include "dam/scheduler.hh"
#include "support/error.hh"

namespace step::dam {

Channel::Channel(std::string name, size_t capacity, Cycle latency)
    : name_(std::move(name)), capacity_(capacity), latency_(latency)
{
    STEP_ASSERT(capacity_ >= 1, "channel capacity must be >= 1");
    for (size_t i = 0; i < capacity_; ++i)
        credits_.push_back(0);
}

Cycle
Channel::frontTime() const
{
    STEP_ASSERT(!entries_.empty(), "frontTime on empty channel " << name_);
    return entries_.front().ready;
}

const Token&
Channel::frontToken() const
{
    STEP_ASSERT(!entries_.empty(), "frontToken on empty channel " << name_);
    return entries_.front().tok;
}

void
Channel::push(Context& writer, Token t, Cycle min_ready)
{
    STEP_ASSERT(!credits_.empty(), "push without credit on " << name_);
    Cycle credit = credits_.front();
    credits_.pop_front();
    writer.advanceTo(credit);
    Cycle ready = std::max(writer.now() + latency_, min_ready);
    // FIFO ordering: a token can never become ready before its
    // predecessor.
    if (!entries_.empty())
        ready = std::max(ready, entries_.back().ready);
    entries_.push_back(Entry{ready, std::move(t)});
    ++totalPushed_;
    if (waitingReader_) {
        Context* r = waitingReader_;
        waitingReader_ = nullptr;
        writer.scheduler()->makeReady(r);
    }
}

Token
Channel::pop(Context& reader)
{
    STEP_ASSERT(!entries_.empty(), "pop on empty channel " << name_);
    Entry e = std::move(entries_.front());
    entries_.pop_front();
    reader.advanceTo(e.ready);
    credits_.push_back(reader.now());
    if (waitingWriter_) {
        Context* w = waitingWriter_;
        waitingWriter_ = nullptr;
        reader.scheduler()->makeReady(w);
    }
    return std::move(e.tok);
}

void
Channel::ReadAwaiter::await_suspend(std::coroutine_handle<>) const
{
    ch.waitingReader_ = &reader;
    reader.state_ = CtxState::Blocked;
    reader.blockReason_ = "read " + ch.name_;
}

void
Channel::WriteAwaiter::await_suspend(std::coroutine_handle<>) const
{
    ch.waitingWriter_ = &writer;
    writer.state_ = CtxState::Blocked;
    writer.blockReason_ = "write " + ch.name_ + " (full)";
}

void
WaitAny::await_suspend(std::coroutine_handle<>) const
{
    for (Channel* c : chans)
        c->setWaitingReader(&self);
    self.state_ = CtxState::Blocked;
    self.blockReason_ = "select over " + std::to_string(chans.size()) +
                        " channels";
}

void
Yield::await_suspend(std::coroutine_handle<>) const
{
    self.scheduler()->yieldRunning(&self);
}

} // namespace step::dam
