#include "dam/channel.hh"

#include "dam/scheduler.hh"
#include "support/error.hh"

namespace step::dam {

Channel::Channel(std::string name, size_t capacity, Cycle latency)
    : name_(std::move(name)), capacity_(capacity), latency_(latency),
      initCredits_(capacity)
{
    STEP_ASSERT(capacity_ >= 1, "channel capacity must be >= 1");
}

void
Channel::reinit(std::string_view name, size_t capacity, Cycle latency)
{
    STEP_ASSERT(capacity >= 1, "channel capacity must be >= 1");
    name_.assign(name); // reuses the string's buffer when it fits
    capacity_ = capacity;
    latency_ = latency;
    entries_.clear();
    credits_.clear();
    initCredits_ = capacity_;
    lastReady_ = 0;
    producer_ = nullptr;
    consumer_ = nullptr;
    waitingReader_ = nullptr;
    waitingWriter_ = nullptr;
    totalPushed_ = 0;
}

Cycle
Channel::frontTime() const
{
    STEP_ASSERT(!entries_.empty(), "frontTime on empty channel " << name_);
    return entries_.front().ready;
}

const Token&
Channel::frontToken() const
{
    STEP_ASSERT(!entries_.empty(), "frontToken on empty channel " << name_);
    return entries_.front().tok;
}

void
WaitAny::await_suspend(std::coroutine_handle<>) const
{
    for (Channel* c : chans)
        c->setWaitingReader(&self);
    self.state_ = CtxState::Blocked;
    self.block_ = BlockInfo{BlockInfo::Kind::Select, nullptr, chans.size()};
}

void
WaitUntil::await_suspend(std::coroutine_handle<>) const
{
    for (Channel* c : chans)
        c->setWaitingReader(&self);
    self.scheduler()->suspendUntil(&self, deadline);
}

void
Yield::await_suspend(std::coroutine_handle<>) const
{
    self.scheduler()->yieldRunning(&self);
}

/** Dynamics-only reset for the rearm path (see header). */
void
Channel::rearm()
{
    entries_.clear();
    credits_.clear();
    initCredits_ = capacity_;
    lastReady_ = 0;
    waitingReader_ = nullptr;
    waitingWriter_ = nullptr;
    totalPushed_ = 0;
}

std::string
BlockInfo::toString() const
{
    switch (kind) {
    case Kind::Read:
        return "read " + ch->name();
    case Kind::Write:
        return "write " + ch->name() + " (full)";
    case Kind::Select:
        return "select over " + std::to_string(selectCount) + " channels";
    case Kind::TimedWait:
        return "timed wait";
    case Kind::None:
        break;
    }
    return "<unknown>";
}

} // namespace step::dam
