/**
 * @file
 * A small symbolic-integer expression engine, standing in for the SymPy
 * layer of the paper's symbolic frontend (section 4.2).
 *
 * Expressions are immutable DAGs of:
 *   Const(c) | Sym(name) | Add(ts...) | Mul(fs...) | CeilDiv(a,b)
 *   | FloorDiv(a,b) | Max(xs...) | Min(xs...)
 *
 * Construction normalizes: constants fold, nested adds/muls flatten, like
 * terms combine, operands sort into a canonical order so structural
 * equality is meaningful. Expressions support substitution (symbol ->
 * expression) and full evaluation against an integer environment; dynamic
 * dims are symbols that the simulator or the user later binds (section
 * 4.2, "Handling data dependencies").
 */
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace step::sym {

enum class Kind { Const, Sym, Add, Mul, CeilDiv, FloorDiv, Max, Min };

class ExprNode;

/** Value-semantics handle to an immutable expression node. */
class Expr
{
  public:
    /** Default: the constant 0. */
    Expr();
    /** Constant expression. */
    Expr(int64_t c); // NOLINT: implicit by design, mirrors SymPy
    Expr(int c) : Expr(static_cast<int64_t>(c)) {}

    /** Fresh or named symbol. */
    static Expr sym(const std::string& name);

    Kind kind() const;

    bool isConst() const { return kind() == Kind::Const; }
    /** Constant value; requires isConst(). */
    int64_t constValue() const;
    /** Symbol name; requires kind()==Sym. */
    const std::string& symName() const;
    /** Operands of a compound node. */
    const std::vector<Expr>& operands() const;

    /** Environment type for evaluation/substitution. */
    using Env = std::map<std::string, int64_t>;
    using Subst = std::map<std::string, Expr>;

    /** Evaluate fully; throws FatalError on unbound symbols. */
    int64_t eval(const Env& env = {}) const;
    /** Evaluate if possible. */
    std::optional<int64_t> tryEval(const Env& env = {}) const;
    /** Replace symbols by expressions (simplifying as it goes). */
    Expr substitute(const Subst& s) const;

    /** Free symbols of the expression. */
    std::set<std::string> freeSymbols() const;

    /** Canonical text form, e.g. "2*B + ceil(D0, 4)". */
    std::string toString() const;

    /** Structural (canonical-form) equality. */
    bool equals(const Expr& other) const;

    /** Total order used for canonicalization. */
    static int compare(const Expr& a, const Expr& b);

    friend Expr operator+(const Expr& a, const Expr& b);
    friend Expr operator-(const Expr& a, const Expr& b);
    friend Expr operator*(const Expr& a, const Expr& b);

    Expr& operator+=(const Expr& b) { *this = *this + b; return *this; }
    Expr& operator*=(const Expr& b) { *this = *this * b; return *this; }

  private:
    explicit Expr(std::shared_ptr<const ExprNode> node)
        : node_(std::move(node))
    {}

    std::shared_ptr<const ExprNode> node_;

    friend Expr makeAdd(std::vector<Expr> ts);
    friend Expr makeMul(std::vector<Expr> fs);
    friend Expr ceilDiv(const Expr& a, const Expr& b);
    friend Expr floorDiv(const Expr& a, const Expr& b);
    friend Expr max(const Expr& a, const Expr& b);
    friend Expr min(const Expr& a, const Expr& b);
    friend class ExprNode;
};

/** ceil(a / b); b must not evaluate to 0. */
Expr ceilDiv(const Expr& a, const Expr& b);
/** floor(a / b). */
Expr floorDiv(const Expr& a, const Expr& b);
Expr max(const Expr& a, const Expr& b);
Expr min(const Expr& a, const Expr& b);

/** Sum / product over a vector (empty -> 0 / 1). */
Expr sum(const std::vector<Expr>& xs);
Expr product(const std::vector<Expr>& xs);

} // namespace step::sym
