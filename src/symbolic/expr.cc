#include "symbolic/expr.hh"

#include <algorithm>
#include <sstream>

#include "support/error.hh"

namespace step::sym {

Expr makeAdd(std::vector<Expr> ts);
Expr makeMul(std::vector<Expr> fs);

/** Immutable expression node. */
class ExprNode
{
  public:
    Kind kind;
    int64_t value = 0;            // Const
    std::string name;             // Sym
    std::vector<Expr> ops;        // compound kinds

    static Expr
    make(Kind k, int64_t v, std::string n, std::vector<Expr> o)
    {
        auto node = std::make_shared<ExprNode>();
        node->kind = k;
        node->value = v;
        node->name = std::move(n);
        node->ops = std::move(o);
        return Expr(std::shared_ptr<const ExprNode>(std::move(node)));
    }
};

namespace {

Expr
constant(int64_t c)
{
    // Interned small constants: stream shapes and metric expressions
    // are rebuilt for every operator of every per-iteration serving
    // graph, and their dims/coefficients are overwhelmingly small
    // non-negative integers. Nodes are immutable, so sharing is safe.
    static constexpr int64_t kMaxInterned = 256;
    if (c >= 0 && c <= kMaxInterned) {
        static const std::vector<Expr> cache = [] {
            std::vector<Expr> v;
            v.reserve(kMaxInterned + 1);
            for (int64_t i = 0; i <= kMaxInterned; ++i)
                v.push_back(ExprNode::make(Kind::Const, i, {}, {}));
            return v;
        }();
        return cache[static_cast<size_t>(c)];
    }
    return ExprNode::make(Kind::Const, c, {}, {});
}

int64_t
ceilDivInt(int64_t a, int64_t b)
{
    STEP_ASSERT(b != 0, "ceilDiv by zero");
    if ((a >= 0) == (b > 0))
        return (a + (b > 0 ? b - 1 : b + 1)) / b;
    return a / b;
}

int64_t
floorDivInt(int64_t a, int64_t b)
{
    STEP_ASSERT(b != 0, "floorDiv by zero");
    int64_t q = a / b;
    if ((a % b != 0) && ((a < 0) != (b < 0)))
        --q;
    return q;
}

} // namespace

Expr::Expr() : Expr(static_cast<int64_t>(0)) {}

Expr::Expr(int64_t c) { *this = constant(c); }

Expr
Expr::sym(const std::string& name)
{
    return ExprNode::make(Kind::Sym, 0, name, {});
}

Kind Expr::kind() const { return node_->kind; }

int64_t
Expr::constValue() const
{
    STEP_ASSERT(isConst(), "constValue on non-const " << toString());
    return node_->value;
}

const std::string&
Expr::symName() const
{
    STEP_ASSERT(kind() == Kind::Sym, "symName on non-symbol");
    return node_->name;
}

const std::vector<Expr>&
Expr::operands() const
{
    return node_->ops;
}

int
Expr::compare(const Expr& a, const Expr& b)
{
    if (a.node_ == b.node_)
        return 0;
    if (a.kind() != b.kind())
        return a.kind() < b.kind() ? -1 : 1;
    switch (a.kind()) {
      case Kind::Const:
        if (a.node_->value != b.node_->value)
            return a.node_->value < b.node_->value ? -1 : 1;
        return 0;
      case Kind::Sym:
        return a.node_->name.compare(b.node_->name);
      default: {
        const auto& ao = a.node_->ops;
        const auto& bo = b.node_->ops;
        if (ao.size() != bo.size())
            return ao.size() < bo.size() ? -1 : 1;
        for (size_t i = 0; i < ao.size(); ++i) {
            int c = compare(ao[i], bo[i]);
            if (c != 0)
                return c;
        }
        return 0;
      }
    }
}

bool
Expr::equals(const Expr& other) const
{
    return compare(*this, other) == 0;
}

// ---------------------------------------------------------------------
// Normalizing constructors
// ---------------------------------------------------------------------

/**
 * Build a normalized sum: flattens nested adds, folds constants, and
 * combines like terms (x + 2*x -> 3*x).
 */
Expr
makeAdd(std::vector<Expr> ts)
{
    // (term without constant factor, accumulated coefficient)
    std::vector<std::pair<Expr, int64_t>> terms;
    int64_t c = 0;

    auto addTerm = [&](const Expr& base, int64_t coeff) {
        for (auto& [t, k] : terms) {
            if (t.equals(base)) {
                k += coeff;
                return;
            }
        }
        terms.emplace_back(base, coeff);
    };

    // Split a (non-Add) expression into coeff * base.
    auto split = [](const Expr& e) -> std::pair<Expr, int64_t> {
        if (e.kind() == Kind::Mul) {
            const auto& ops = e.operands();
            if (!ops.empty() && ops[0].isConst()) {
                std::vector<Expr> rest(ops.begin() + 1, ops.end());
                if (rest.size() == 1)
                    return {rest[0], ops[0].constValue()};
                return {ExprNode::make(Kind::Mul, 0, {}, std::move(rest)),
                        ops[0].constValue()};
            }
        }
        return {e, 1};
    };

    std::vector<Expr> work = std::move(ts);
    while (!work.empty()) {
        Expr e = work.back();
        work.pop_back();
        if (e.kind() == Kind::Add) {
            for (const auto& o : e.operands())
                work.push_back(o);
        } else if (e.isConst()) {
            c += e.constValue();
        } else {
            auto [base, coeff] = split(e);
            addTerm(base, coeff);
        }
    }

    std::vector<Expr> out;
    for (auto& [base, coeff] : terms) {
        if (coeff == 0)
            continue;
        if (coeff == 1)
            out.push_back(base);
        else
            out.push_back(makeMul({constant(coeff), base}));
    }
    if (c != 0 || out.empty())
        out.push_back(constant(c));
    if (out.size() == 1)
        return out[0];
    std::sort(out.begin(), out.end(), [](const Expr& a, const Expr& b) {
        return Expr::compare(a, b) < 0;
    });
    return ExprNode::make(Kind::Add, 0, {}, std::move(out));
}

/**
 * Build a normalized product: flattens, folds constants, annihilates on 0,
 * drops unit factors; the constant (if any) sorts first.
 */
Expr
makeMul(std::vector<Expr> fs)
{
    int64_t c = 1;
    std::vector<Expr> out;
    std::vector<Expr> work = std::move(fs);
    while (!work.empty()) {
        Expr e = work.back();
        work.pop_back();
        if (e.kind() == Kind::Mul) {
            for (const auto& o : e.operands())
                work.push_back(o);
        } else if (e.isConst()) {
            c *= e.constValue();
        } else {
            out.push_back(e);
        }
    }
    if (c == 0)
        return constant(0);
    std::sort(out.begin(), out.end(), [](const Expr& a, const Expr& b) {
        return Expr::compare(a, b) < 0;
    });
    if (out.empty())
        return constant(c);
    if (c != 1)
        out.insert(out.begin(), constant(c));
    if (out.size() == 1)
        return out[0];
    return ExprNode::make(Kind::Mul, 0, {}, std::move(out));
}

Expr
operator+(const Expr& a, const Expr& b)
{
    return makeAdd({a, b});
}

Expr
operator-(const Expr& a, const Expr& b)
{
    return makeAdd({a, makeMul({Expr(static_cast<int64_t>(-1)), b})});
}

Expr
operator*(const Expr& a, const Expr& b)
{
    return makeMul({a, b});
}

Expr
ceilDiv(const Expr& a, const Expr& b)
{
    if (a.isConst() && b.isConst())
        return constant(ceilDivInt(a.constValue(), b.constValue()));
    if (b.isConst() && b.constValue() == 1)
        return a;
    if (a.isConst() && a.constValue() == 0)
        return constant(0);
    return ExprNode::make(Kind::CeilDiv, 0, {}, {a, b});
}

Expr
floorDiv(const Expr& a, const Expr& b)
{
    if (a.isConst() && b.isConst())
        return constant(floorDivInt(a.constValue(), b.constValue()));
    if (b.isConst() && b.constValue() == 1)
        return a;
    if (a.isConst() && a.constValue() == 0)
        return constant(0);
    return ExprNode::make(Kind::FloorDiv, 0, {}, {a, b});
}

Expr
max(const Expr& a, const Expr& b)
{
    if (a.equals(b))
        return a;
    if (a.isConst() && b.isConst())
        return constant(std::max(a.constValue(), b.constValue()));
    std::vector<Expr> ops{a, b};
    std::sort(ops.begin(), ops.end(), [](const Expr& x, const Expr& y) {
        return Expr::compare(x, y) < 0;
    });
    return ExprNode::make(Kind::Max, 0, {}, std::move(ops));
}

Expr
min(const Expr& a, const Expr& b)
{
    if (a.equals(b))
        return a;
    if (a.isConst() && b.isConst())
        return constant(std::min(a.constValue(), b.constValue()));
    std::vector<Expr> ops{a, b};
    std::sort(ops.begin(), ops.end(), [](const Expr& x, const Expr& y) {
        return Expr::compare(x, y) < 0;
    });
    return ExprNode::make(Kind::Min, 0, {}, std::move(ops));
}

Expr
sum(const std::vector<Expr>& xs)
{
    return makeAdd(xs);
}

Expr
product(const std::vector<Expr>& xs)
{
    if (xs.empty())
        return Expr(static_cast<int64_t>(1));
    return makeMul(xs);
}

// ---------------------------------------------------------------------
// Evaluation / substitution
// ---------------------------------------------------------------------

std::optional<int64_t>
Expr::tryEval(const Env& env) const
{
    switch (kind()) {
      case Kind::Const:
        return node_->value;
      case Kind::Sym: {
        auto it = env.find(node_->name);
        if (it == env.end())
            return std::nullopt;
        return it->second;
      }
      case Kind::Add: {
        int64_t acc = 0;
        for (const auto& o : node_->ops) {
            auto v = o.tryEval(env);
            if (!v)
                return std::nullopt;
            acc += *v;
        }
        return acc;
      }
      case Kind::Mul: {
        int64_t acc = 1;
        for (const auto& o : node_->ops) {
            auto v = o.tryEval(env);
            if (!v)
                return std::nullopt;
            acc *= *v;
        }
        return acc;
      }
      case Kind::CeilDiv:
      case Kind::FloorDiv: {
        auto a = node_->ops[0].tryEval(env);
        auto b = node_->ops[1].tryEval(env);
        if (!a || !b)
            return std::nullopt;
        return kind() == Kind::CeilDiv ? ceilDivInt(*a, *b)
                                       : floorDivInt(*a, *b);
      }
      case Kind::Max:
      case Kind::Min: {
        std::optional<int64_t> acc;
        for (const auto& o : node_->ops) {
            auto v = o.tryEval(env);
            if (!v)
                return std::nullopt;
            if (!acc)
                acc = *v;
            else
                acc = kind() == Kind::Max ? std::max(*acc, *v)
                                          : std::min(*acc, *v);
        }
        return acc;
      }
    }
    stepPanic("unreachable expression kind");
}

int64_t
Expr::eval(const Env& env) const
{
    auto v = tryEval(env);
    if (!v)
        stepFatal("cannot evaluate `" << toString()
                  << "`: unbound symbol(s)");
    return *v;
}

Expr
Expr::substitute(const Subst& s) const
{
    switch (kind()) {
      case Kind::Const:
        return *this;
      case Kind::Sym: {
        auto it = s.find(node_->name);
        return it == s.end() ? *this : it->second;
      }
      case Kind::Add: {
        std::vector<Expr> ops;
        ops.reserve(node_->ops.size());
        for (const auto& o : node_->ops)
            ops.push_back(o.substitute(s));
        return makeAdd(std::move(ops));
      }
      case Kind::Mul: {
        std::vector<Expr> ops;
        ops.reserve(node_->ops.size());
        for (const auto& o : node_->ops)
            ops.push_back(o.substitute(s));
        return makeMul(std::move(ops));
      }
      case Kind::CeilDiv:
        return ceilDiv(node_->ops[0].substitute(s),
                       node_->ops[1].substitute(s));
      case Kind::FloorDiv:
        return floorDiv(node_->ops[0].substitute(s),
                        node_->ops[1].substitute(s));
      case Kind::Max:
        return max(node_->ops[0].substitute(s),
                   node_->ops[1].substitute(s));
      case Kind::Min:
        return min(node_->ops[0].substitute(s),
                   node_->ops[1].substitute(s));
    }
    stepPanic("unreachable expression kind");
}

std::set<std::string>
Expr::freeSymbols() const
{
    std::set<std::string> out;
    if (kind() == Kind::Sym) {
        out.insert(node_->name);
        return out;
    }
    for (const auto& o : node_->ops) {
        auto sub = o.freeSymbols();
        out.insert(sub.begin(), sub.end());
    }
    return out;
}

std::string
Expr::toString() const
{
    std::ostringstream os;
    switch (kind()) {
      case Kind::Const:
        os << node_->value;
        break;
      case Kind::Sym:
        os << node_->name;
        break;
      case Kind::Add: {
        bool first = true;
        for (const auto& o : node_->ops) {
            if (!first)
                os << " + ";
            first = false;
            os << o.toString();
        }
        break;
      }
      case Kind::Mul: {
        bool first = true;
        for (const auto& o : node_->ops) {
            if (!first)
                os << "*";
            first = false;
            bool paren = o.kind() == Kind::Add;
            if (paren)
                os << "(";
            os << o.toString();
            if (paren)
                os << ")";
        }
        break;
      }
      case Kind::CeilDiv:
        os << "ceil(" << node_->ops[0].toString() << ", "
           << node_->ops[1].toString() << ")";
        break;
      case Kind::FloorDiv:
        os << "floor(" << node_->ops[0].toString() << ", "
           << node_->ops[1].toString() << ")";
        break;
      case Kind::Max:
        os << "max(" << node_->ops[0].toString() << ", "
           << node_->ops[1].toString() << ")";
        break;
      case Kind::Min:
        os << "min(" << node_->ops[0].toString() << ", "
           << node_->ops[1].toString() << ")";
        break;
    }
    return os.str();
}

} // namespace step::sym
