/**
 * @file
 * Stream tokens. A STeP stream is a sequence of data values interleaved
 * with stop tokens S_N (N >= 1) that annotate the ends of tensor
 * dimensions, terminated by a Done token (section 3.1 "Stop Tokens").
 *
 * Protocol for a rank-r stream (see DESIGN.md section 5.2):
 *  - stop levels lie in [1, r-1];
 *  - at the end of multiple nested dimensions only the highest stop is
 *    emitted (writers enforce this via StopCoalescer);
 *  - a stop following a stop of greater-or-equal level encodes an empty
 *    group;
 *  - a non-empty stream's final tokens are S_{r-1}, Done; an empty stream
 *    is just Done.
 */
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "core/value.hh"

namespace step {

class Token
{
  public:
    enum class Kind : uint8_t { Data, Stop, Done };

    Token() : kind_(Kind::Done) {}

    static Token data(Value v) { return Token(Kind::Data, 0, std::move(v)); }
    static Token stop(uint32_t level)
    {
        return Token(Kind::Stop, level, Value());
    }
    static Token done() { return Token(Kind::Done, 0, Value()); }

    Kind kind() const { return kind_; }
    bool isData() const { return kind_ == Kind::Data; }
    bool isStop() const { return kind_ == Kind::Stop; }
    bool isDone() const { return kind_ == Kind::Done; }

    /** Stop level; only meaningful for stop tokens. */
    uint32_t level() const { return level_; }

    const Value& value() const { return value_; }

    /** Move the payload out (hot paths; the token is spent afterwards). */
    Value&& takeValue() { return std::move(value_); }

    /** Wire size used for FIFO bandwidth modeling. */
    int64_t
    bytes() const
    {
        return isData() ? value_.bytes() : 1;
    }

    std::string
    toString() const
    {
        if (isData())
            return value_.toString();
        if (isStop())
            return "S" + std::to_string(level_);
        return "D";
    }

  private:
    Token(Kind k, uint32_t level, Value v)
        : kind_(k), level_(level), value_(std::move(v))
    {}

    Kind kind_;
    uint32_t level_ = 0;
    Value value_;
};

} // namespace step
