#include "core/tile.hh"

#include <cmath>

#include "support/error.hh"

namespace step {

Tile::Tile(int64_t rows, int64_t cols, int elem_bytes)
    : rows_(rows), cols_(cols), elemBytes_(elem_bytes)
{
    STEP_ASSERT(rows >= 0 && cols >= 0, "negative tile shape");
}

Tile
Tile::withData(int64_t rows, int64_t cols, std::vector<float> data,
               int elem_bytes)
{
    STEP_ASSERT(static_cast<int64_t>(data.size()) == rows * cols,
                "payload size " << data.size() << " != " << rows * cols);
    Tile t(rows, cols, elem_bytes);
    t.data_ = std::make_shared<const std::vector<float>>(std::move(data));
    return t;
}

Tile
Tile::zeros(int64_t rows, int64_t cols, int elem_bytes)
{
    return withData(rows, cols,
                    std::vector<float>(static_cast<size_t>(rows * cols)),
                    elem_bytes);
}

float
Tile::at(int64_t r, int64_t c) const
{
    STEP_ASSERT(hasData(), "at() on shape-only tile");
    STEP_ASSERT(r >= 0 && r < rows_ && c >= 0 && c < cols_,
                "tile index (" << r << "," << c << ") out of "
                << rows_ << "x" << cols_);
    return (*data_)[static_cast<size_t>(r * cols_ + c)];
}

bool
Tile::equals(const Tile& o, float tol) const
{
    if (!sameShape(o))
        return false;
    if (!hasData() || !o.hasData())
        return true;
    for (int64_t i = 0; i < numel(); ++i) {
        float d = (*data_)[static_cast<size_t>(i)] -
                  (*o.data_)[static_cast<size_t>(i)];
        if (std::fabs(d) > tol)
            return false;
    }
    return true;
}

Tile
matmul(const Tile& a, const Tile& b, int64_t* flops)
{
    STEP_ASSERT(a.cols() == b.rows(),
                "matmul shape mismatch: " << a.rows() << "x" << a.cols()
                << " * " << b.rows() << "x" << b.cols());
    if (flops)
        *flops += 2 * a.rows() * a.cols() * b.cols();
    if (!a.hasData() || !b.hasData())
        return Tile(a.rows(), b.cols(), a.elemBytes());
    std::vector<float> out(static_cast<size_t>(a.rows() * b.cols()), 0.0f);
    for (int64_t i = 0; i < a.rows(); ++i) {
        for (int64_t k = 0; k < a.cols(); ++k) {
            float av = a.at(i, k);
            if (av == 0.0f)
                continue;
            for (int64_t j = 0; j < b.cols(); ++j)
                out[static_cast<size_t>(i * b.cols() + j)] +=
                    av * b.at(k, j);
        }
    }
    return Tile::withData(a.rows(), b.cols(), std::move(out),
                          a.elemBytes());
}

namespace {

template <typename F>
Tile
elementwise2(const Tile& a, const Tile& b, int64_t* flops, F&& f)
{
    STEP_ASSERT(a.sameShape(b), "elementwise shape mismatch: "
                << a.rows() << "x" << a.cols() << " vs "
                << b.rows() << "x" << b.cols());
    if (flops)
        *flops += a.numel();
    if (!a.hasData() || !b.hasData())
        return Tile(a.rows(), a.cols(), a.elemBytes());
    std::vector<float> out(static_cast<size_t>(a.numel()));
    for (int64_t i = 0; i < a.rows(); ++i)
        for (int64_t j = 0; j < a.cols(); ++j)
            out[static_cast<size_t>(i * a.cols() + j)] =
                f(a.at(i, j), b.at(i, j));
    return Tile::withData(a.rows(), a.cols(), std::move(out),
                          a.elemBytes());
}

} // namespace

Tile
add(const Tile& a, const Tile& b, int64_t* flops)
{
    return elementwise2(a, b, flops,
                        [](float x, float y) { return x + y; });
}

Tile
elemMul(const Tile& a, const Tile& b, int64_t* flops)
{
    return elementwise2(a, b, flops,
                        [](float x, float y) { return x * y; });
}

Tile
silu(const Tile& a, int64_t* flops)
{
    // Count ~4 ops per element (exp, add, div, mul).
    if (flops)
        *flops += 4 * a.numel();
    if (!a.hasData())
        return Tile(a.rows(), a.cols(), a.elemBytes());
    std::vector<float> out(static_cast<size_t>(a.numel()));
    for (int64_t i = 0; i < a.rows(); ++i) {
        for (int64_t j = 0; j < a.cols(); ++j) {
            float x = a.at(i, j);
            out[static_cast<size_t>(i * a.cols() + j)] =
                x / (1.0f + std::exp(-x));
        }
    }
    return Tile::withData(a.rows(), a.cols(), std::move(out),
                          a.elemBytes());
}

Tile
retileRow(const Tile& a, const Tile& b)
{
    if (a.numel() == 0 && a.rows() == 0)
        return b;
    STEP_ASSERT(a.cols() == b.cols(), "retileRow col mismatch: "
                << a.cols() << " vs " << b.cols());
    if (!a.hasData() || !b.hasData())
        return Tile(a.rows() + b.rows(), a.cols(), a.elemBytes());
    std::vector<float> out;
    out.reserve(static_cast<size_t>((a.rows() + b.rows()) * a.cols()));
    out.insert(out.end(), a.data()->begin(), a.data()->end());
    out.insert(out.end(), b.data()->begin(), b.data()->end());
    return Tile::withData(a.rows() + b.rows(), a.cols(), std::move(out),
                          a.elemBytes());
}

Tile
retileCol(const Tile& a, const Tile& b)
{
    if (a.numel() == 0 && a.cols() == 0)
        return b;
    STEP_ASSERT(a.rows() == b.rows(), "retileCol row mismatch: "
                << a.rows() << " vs " << b.rows());
    if (!a.hasData() || !b.hasData())
        return Tile(a.rows(), a.cols() + b.cols(), a.elemBytes());
    std::vector<float> out;
    out.reserve(static_cast<size_t>(a.rows() * (a.cols() + b.cols())));
    for (int64_t i = 0; i < a.rows(); ++i) {
        for (int64_t j = 0; j < a.cols(); ++j)
            out.push_back(a.at(i, j));
        for (int64_t j = 0; j < b.cols(); ++j)
            out.push_back(b.at(i, j));
    }
    return Tile::withData(a.rows(), a.cols() + b.cols(), std::move(out),
                          a.elemBytes());
}

Tile
sliceRows(const Tile& a, int64_t r0, int64_t r1)
{
    STEP_ASSERT(0 <= r0 && r0 <= r1 && r1 <= a.rows(),
                "sliceRows [" << r0 << "," << r1 << ") of " << a.rows());
    if (!a.hasData())
        return Tile(r1 - r0, a.cols(), a.elemBytes());
    std::vector<float> out(
        a.data()->begin() + static_cast<size_t>(r0 * a.cols()),
        a.data()->begin() + static_cast<size_t>(r1 * a.cols()));
    return Tile::withData(r1 - r0, a.cols(), std::move(out),
                          a.elemBytes());
}

} // namespace step
