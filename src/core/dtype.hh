/**
 * @file
 * Symbolic descriptors of stream data types, used by shape inference and
 * by the section-4.2 metric equations (|dtype| terms). The runtime values
 * are in core/value.hh; this is the compile-time view.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/stream_shape.hh"
#include "core/tile.hh"
#include "symbolic/expr.hh"

namespace step {

enum class ValueKind : uint8_t { Tile, Selector, BufferRef, Tuple };

/** Compile-time data type of a stream. */
class DataType
{
  public:
    /** Default: a [1,1] tile (member initializers below). */
    DataType() = default;

    /** Tile type with (possibly symbolic / dynamic) dimensions. */
    static DataType tile(Dim rows, Dim cols,
                         int elem_bytes = kDefaultElemBytes);
    static DataType tile(int64_t rows, int64_t cols,
                         int elem_bytes = kDefaultElemBytes);

    /** Selector (multi-hot vector over @p fanout consumers). */
    static DataType selector(int64_t fanout);

    /**
     * Reference to an on-chip buffer holding a rank-|dims| arrangement of
     * tiles of @p elem type.
     */
    static DataType bufferRef(std::vector<Dim> buffer_dims, DataType elem);

    static DataType tuple(std::vector<DataType> elems);

    ValueKind kind() const { return kind_; }
    bool isTile() const { return kind_ == ValueKind::Tile; }
    bool isSelector() const { return kind_ == ValueKind::Selector; }
    bool isBufferRef() const { return kind_ == ValueKind::BufferRef; }
    bool isTuple() const { return kind_ == ValueKind::Tuple; }

    const Dim& tileRows() const { return rows_; }
    const Dim& tileCols() const { return cols_; }
    int elemBytes() const { return elemBytes_; }

    const std::vector<Dim>& bufferDims() const { return bufferDims_; }
    /** Element type of a buffer reference. */
    const DataType& pointee() const;
    const std::vector<DataType>& tupleElems() const { return elems_; }

    /** |dtype| of section 4.2: wire/storage size in bytes. */
    sym::Expr sizeBytes() const;

    /** ||buffer|| * |elem| — payload bytes a BufferRef points at. */
    sym::Expr referencedBytes() const;

    /** True if any constituent dim is non-static. */
    bool hasDynamicDims() const;

    std::string toString() const;

  private:
    ValueKind kind_ = ValueKind::Tile;
    Dim rows_ = Dim::fixed(1);
    Dim cols_ = Dim::fixed(1);
    int elemBytes_ = kDefaultElemBytes;
    int64_t fanout_ = 0;
    std::vector<Dim> bufferDims_;
    std::shared_ptr<const DataType> pointee_;
    std::vector<DataType> elems_;
};

} // namespace step
