#include "core/value.hh"

#include <sstream>

#include "support/error.hh"

namespace step {

int64_t
TupleVal::bytes() const
{
    int64_t n = 0;
    if (elems)
        for (const auto& e : *elems)
            n += e.bytes();
    return n;
}

Value
Value::tuple(std::vector<Value> elems)
{
    TupleVal t;
    t.elems = std::make_shared<const std::vector<Value>>(std::move(elems));
    return Value(std::move(t));
}

std::string
Value::toString() const
{
    std::ostringstream os;
    if (isTile()) {
        const Tile& t = tile();
        os << "Tile[" << t.rows() << "x" << t.cols() << "]";
        if (t.hasData() && t.numel() <= 4) {
            os << "{";
            for (int64_t i = 0; i < t.rows(); ++i)
                for (int64_t j = 0; j < t.cols(); ++j)
                    os << (i + j ? "," : "") << t.at(i, j);
            os << "}";
        }
    } else if (isSelector()) {
        os << "Sel(";
        for (size_t i = 0; i < selector().indices.size(); ++i)
            os << (i ? "," : "") << selector().indices[i];
        os << ")";
    } else if (isBufferRef()) {
        os << "Buf#" << bufferRef().id;
    } else {
        os << "Tuple(";
        for (size_t i = 0; i < tupleElems().size(); ++i)
            os << (i ? "," : "") << tupleElems()[i].toString();
        os << ")";
    }
    return os.str();
}

} // namespace step
