#include "core/value.hh"

#include <sstream>

#include "support/error.hh"

namespace step {

int64_t
TupleVal::bytes() const
{
    int64_t n = 0;
    if (elems)
        for (const auto& e : *elems)
            n += e.bytes();
    return n;
}

Value
Value::tuple(std::vector<Value> elems)
{
    TupleVal t;
    t.elems = std::make_shared<const std::vector<Value>>(std::move(elems));
    return Value(std::move(t));
}

const Tile&
Value::tile() const
{
    STEP_ASSERT(isTile(), "value is not a tile: " << toString());
    return std::get<Tile>(v_);
}

const Selector&
Value::selector() const
{
    STEP_ASSERT(isSelector(), "value is not a selector: " << toString());
    return std::get<Selector>(v_);
}

const BufferRef&
Value::bufferRef() const
{
    STEP_ASSERT(isBufferRef(), "value is not a buffer ref: " << toString());
    return std::get<BufferRef>(v_);
}

const std::vector<Value>&
Value::tupleElems() const
{
    STEP_ASSERT(isTuple(), "value is not a tuple: " << toString());
    return *std::get<TupleVal>(v_).elems;
}

int64_t
Value::bytes() const
{
    if (isTile())
        return tile().bytes();
    if (isSelector())
        return selector().bytes();
    if (isBufferRef())
        return bufferRef().bytes();
    return std::get<TupleVal>(v_).bytes();
}

std::string
Value::toString() const
{
    std::ostringstream os;
    if (isTile()) {
        const Tile& t = tile();
        os << "Tile[" << t.rows() << "x" << t.cols() << "]";
        if (t.hasData() && t.numel() <= 4) {
            os << "{";
            for (int64_t i = 0; i < t.rows(); ++i)
                for (int64_t j = 0; j < t.cols(); ++j)
                    os << (i + j ? "," : "") << t.at(i, j);
            os << "}";
        }
    } else if (isSelector()) {
        os << "Sel(";
        for (size_t i = 0; i < selector().indices.size(); ++i)
            os << (i ? "," : "") << selector().indices[i];
        os << ")";
    } else if (isBufferRef()) {
        os << "Buf#" << bufferRef().id;
    } else {
        os << "Tuple(";
        for (size_t i = 0; i < tupleElems().size(); ++i)
            os << (i ? "," : "") << tupleElems()[i].toString();
        os << ")";
    }
    return os.str();
}

} // namespace step
