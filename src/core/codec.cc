#include "core/codec.hh"

#include <sstream>

#include "support/error.hh"

namespace step {

size_t
Nested::depth() const
{
    if (isLeaf())
        return 0;
    size_t d = 0;
    for (const auto& c : children())
        d = std::max(d, c.depth());
    return d + 1;
}

std::string
Nested::toString() const
{
    if (isLeaf())
        return leaf().toString();
    std::ostringstream os;
    os << "[";
    for (size_t i = 0; i < children().size(); ++i)
        os << (i ? ", " : "") << children()[i].toString();
    os << "]";
    return os.str();
}

namespace {

void
encodeRec(const Nested& n, size_t depth, StopCoalescer& coal,
          std::vector<Token>& out)
{
    if (depth == 0) {
        STEP_ASSERT(n.isLeaf(), "nested value deeper than declared rank");
        for (auto& t : coal.onData(n.leaf()))
            out.push_back(std::move(t));
        return;
    }
    STEP_ASSERT(!n.isLeaf(), "leaf at depth " << depth
                << "; nested value shallower than declared rank");
    for (const auto& c : n.children()) {
        encodeRec(c, depth - 1, coal, out);
        if (depth - 1 >= 1) {
            for (auto& t : coal.onStop(static_cast<uint32_t>(depth - 1)))
                out.push_back(std::move(t));
        }
    }
}

} // namespace

std::vector<Token>
encodeNested(const Nested& n, size_t rank)
{
    STEP_ASSERT(rank >= 1, "streams have rank >= 1");
    std::vector<Token> out;
    StopCoalescer coal;
    encodeRec(n, rank, coal, out);
    for (auto& t : coal.onDone())
        out.push_back(std::move(t));
    return out;
}

Nested
decodeNested(const std::vector<Token>& toks, size_t rank)
{
    auto err = checkWellFormed(toks, rank);
    if (err)
        stepFatal("decode of malformed stream: " << *err);

    // acc[d] collects the children of the depth-(d+1) group being built.
    std::vector<std::vector<Nested>> acc(rank);
    for (const auto& t : toks) {
        if (t.isData()) {
            acc[0].push_back(Nested(t.value()));
        } else if (t.isStop()) {
            for (uint32_t d = 1; d <= t.level(); ++d) {
                acc[d].push_back(Nested::list(std::move(acc[d - 1])));
                acc[d - 1].clear();
            }
        } else {
            break; // Done
        }
    }
    return Nested::list(std::move(acc[rank - 1]));
}

std::optional<std::string>
checkWellFormed(const std::vector<Token>& toks, size_t rank)
{
    if (rank < 1)
        return "rank must be >= 1";
    if (toks.empty())
        return "stream has no Done token";

    // Mirror the decoder: track how many elements are pending per level.
    std::vector<size_t> pending(rank, 0);
    bool done_seen = false;
    for (size_t i = 0; i < toks.size(); ++i) {
        const Token& t = toks[i];
        if (done_seen)
            return "token after Done at position " + std::to_string(i);
        if (t.isData()) {
            pending[0]++;
        } else if (t.isStop()) {
            if (t.level() < 1 || t.level() > rank - 1) {
                return "stop level " + std::to_string(t.level()) +
                       " outside [1," + std::to_string(rank - 1) +
                       "] for rank " + std::to_string(rank);
            }
            for (uint32_t d = 1; d <= t.level(); ++d) {
                pending[d]++;
                pending[d - 1] = 0;
            }
        } else {
            done_seen = true;
            for (size_t d = 0; d + 1 < rank; ++d) {
                if (pending[d] != 0) {
                    return "Done with " + std::to_string(pending[d]) +
                           " unclosed element(s) at depth " +
                           std::to_string(d);
                }
            }
        }
    }
    if (!done_seen)
        return "stream has no Done token";
    return std::nullopt;
}

size_t
countData(const std::vector<Token>& toks)
{
    size_t n = 0;
    for (const auto& t : toks)
        n += t.isData();
    return n;
}

std::string
tokensToString(const std::vector<Token>& toks)
{
    std::ostringstream os;
    for (size_t i = 0; i < toks.size(); ++i)
        os << (i ? ", " : "") << toks[i].toString();
    return os.str();
}

} // namespace step
