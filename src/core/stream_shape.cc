#include "core/stream_shape.hh"

#include <atomic>
#include <sstream>

#include "support/error.hh"

namespace step {

namespace {

std::atomic<uint64_t> symCounter{0};

std::string
freshName(const std::string& hint)
{
    return hint + std::to_string(symCounter.fetch_add(1));
}

} // namespace

Dim
Dim::dynamic(const std::string& hint)
{
    return {sym::Expr::sym(freshName(hint)), DimKind::DynamicRegular};
}

Dim
Dim::ragged(const std::string& hint)
{
    return {sym::Expr::sym(freshName(hint)), DimKind::Ragged};
}

std::string
Dim::toString() const
{
    std::string s = size.toString();
    if (kind == DimKind::Ragged)
        s += "~";
    return s;
}

Dim
mergeDims(const Dim* first, const Dim* last)
{
    bool any_ragged = false;
    bool any_dynamic = false;
    std::vector<sym::Expr> sizes;
    for (const Dim* d = first; d != last; ++d) {
        any_ragged |= d->isRagged();
        any_dynamic |= d->isDynamic();
        sizes.push_back(d->size);
    }
    if (any_ragged) {
        // Absorbing property: the result is a fresh ragged dimension
        // (section 3.1, example 1: [2, 2, D0] flattens to [2, D0']).
        return Dim::ragged();
    }
    return {sym::product(sizes), any_dynamic ? DimKind::DynamicRegular
                                             : DimKind::StaticRegular};
}

Dim
mergeDims(const std::vector<Dim>& dims)
{
    return mergeDims(dims.data(), dims.data() + dims.size());
}

StreamShape
StreamShape::fixed(std::initializer_list<int64_t> sizes)
{
    DimVec dims;
    for (int64_t s : sizes)
        dims.push_back(Dim::fixed(s));
    return StreamShape(std::move(dims));
}

sym::Expr
StreamShape::numel() const
{
    std::vector<sym::Expr> sizes;
    for (const auto& d : dims_)
        sizes.push_back(d.size);
    return sym::product(sizes);
}

bool
StreamShape::allStatic() const
{
    for (const auto& d : dims_)
        if (!d.isStatic())
            return false;
    return true;
}

std::string
StreamShape::toString() const
{
    std::ostringstream os;
    os << "[";
    for (size_t i = 0; i < dims_.size(); ++i)
        os << (i ? "," : "") << dims_[i].toString();
    os << "]";
    return os.str();
}

StreamShape
StreamShape::flattened(size_t inner_lo, size_t inner_hi) const
{
    STEP_ASSERT(inner_lo <= inner_hi && inner_hi < rank(),
                "flatten range [" << inner_lo << "," << inner_hi
                << "] out of rank " << rank());
    // Convert paper (inner-first) indices to vector (outer-first) indices.
    size_t v_hi = rank() - 1 - inner_lo;   // innermost of the range
    size_t v_lo = rank() - 1 - inner_hi;   // outermost of the range
    DimVec out(dims_.begin(), dims_.begin() + v_lo);
    out.push_back(mergeDims(dims_.begin() + v_lo,
                            dims_.begin() + v_hi + 1));
    out.append(dims_.begin() + v_hi + 1, dims_.end());
    return StreamShape(std::move(out));
}

StreamShape
StreamShape::dropInner(size_t n) const
{
    STEP_ASSERT(n <= rank(), "dropInner(" << n << ") of rank " << rank());
    return StreamShape(DimVec(dims_.begin(), dims_.end() - n));
}

StreamShape
StreamShape::takeInner(size_t n) const
{
    STEP_ASSERT(n <= rank(), "takeInner(" << n << ") of rank " << rank());
    return StreamShape(DimVec(dims_.end() - n, dims_.end()));
}

StreamShape
StreamShape::pushOuter(Dim d) const
{
    DimVec out;
    out.push_back(std::move(d));
    out.append(dims_.begin(), dims_.end());
    return StreamShape(std::move(out));
}

StreamShape
StreamShape::concatInner(const StreamShape& inner) const
{
    DimVec out = dims_;
    out.append(inner.dims_.begin(), inner.dims_.end());
    return StreamShape(std::move(out));
}

bool
StreamShape::compatibleWith(const StreamShape& o) const
{
    if (rank() != o.rank())
        return false;
    for (size_t i = 0; i < rank(); ++i) {
        const Dim& a = dims_[i];
        const Dim& b = o.dims_[i];
        if (a.isStatic() && b.isStatic() && !a.size.equals(b.size))
            return false;
    }
    return true;
}

} // namespace step
