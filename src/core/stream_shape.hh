/**
 * @file
 * Symbolic stream shape semantics (section 3.1 "Stream Shape").
 *
 * A rank-N stream has a shape [D_{N-1}, ..., D_1, D_0] (outermost first,
 * D_0 innermost, matching the paper's notation). Each dimension is
 * static-regular, dynamic-regular (data-dependent constant), or ragged
 * (varying per group). Ragged dimensions absorb arithmetic: any equation
 * containing a ragged dimension yields a fresh ragged dimension.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/smallvec.hh"
#include "symbolic/expr.hh"

namespace step {

enum class DimKind : uint8_t {
    StaticRegular,
    DynamicRegular,
    Ragged,
};

/** One stream dimension: a symbolic size plus its regularity class. */
struct Dim
{
    sym::Expr size;
    DimKind kind = DimKind::StaticRegular;

    /** Compile-time constant dimension. */
    static Dim fixed(int64_t n) { return {sym::Expr(n), DimKind::StaticRegular}; }

    /** Data-dependent constant dimension with a fresh symbol. */
    static Dim dynamic(const std::string& hint = "D");

    /** Dynamic-regular dimension with an explicit size expression. */
    static Dim
    dynamicExpr(const sym::Expr& e)
    {
        return {e, DimKind::DynamicRegular};
    }

    /** Ragged dimension with a fresh symbol. */
    static Dim ragged(const std::string& hint = "R");

    bool isStatic() const { return kind == DimKind::StaticRegular; }
    bool isRagged() const { return kind == DimKind::Ragged; }
    /** Dynamic-regular or ragged-with-data-dependence; per footnote 4 we
     * treat all ragged dims as symbolic (see section 4.2 footnote 8). */
    bool isDynamic() const { return kind != DimKind::StaticRegular; }

    std::string toString() const;
};

/**
 * Combine dimensions under multiplication (e.g. Flatten): ragged absorbs,
 * dynamic-regular dominates static.
 */
Dim mergeDims(const Dim* first, const Dim* last);
Dim mergeDims(const std::vector<Dim>& dims);

/**
 * Dimension list with inline storage: graphs copy shapes with every
 * StreamPort, and nearly all streams have rank <= 4, so shape copies
 * stay off the heap.
 */
using DimVec = SmallVec<Dim, 4>;

/** Shape of a stream: dims().front() is the outermost dimension. */
class StreamShape
{
  public:
    StreamShape() = default;
    explicit StreamShape(DimVec dims) : dims_(std::move(dims)) {}
    StreamShape(std::initializer_list<Dim> dims) : dims_(dims) {}
    explicit StreamShape(const std::vector<Dim>& dims)
        : dims_(dims.begin(), dims.end())
    {}

    /** Convenience: all-static shape, outermost first. */
    static StreamShape fixed(std::initializer_list<int64_t> sizes);

    size_t rank() const { return dims_.size(); }
    const DimVec& dims() const { return dims_; }

    /** Dimension by paper index: inner(0) == D_0 (innermost). */
    const Dim&
    inner(size_t i) const
    {
        return dims_[dims_.size() - 1 - i];
    }
    /** Dimension counted from outside: outer(0) is outermost. */
    const Dim& outer(size_t i) const { return dims_[i]; }

    /** Product of all dimension sizes (the stream cardinality ||X||). */
    sym::Expr numel() const;

    /** True if every dim is static-regular. */
    bool allStatic() const;

    /** "[2, 2, D0]" (outermost first, as in the paper). */
    std::string toString() const;

    /**
     * Flatten the paper-indexed dimension range [inner_lo, inner_hi] into
     * one dimension (ragged absorbing).
     */
    StreamShape flattened(size_t inner_lo, size_t inner_hi) const;

    /** Drop the n innermost dims (Bufferize/Accum over rank b). */
    StreamShape dropInner(size_t n) const;

    /** Keep only the n innermost dims. */
    StreamShape takeInner(size_t n) const;

    /** Add a dimension outside everything (Promote/Partition-new-dim). */
    StreamShape pushOuter(Dim d) const;

    /** Append dims inside everything (loads, Streamify, FlatMap). */
    StreamShape concatInner(const StreamShape& inner) const;

    /**
     * Structural compatibility: same rank and, where both sides are
     * static, equal sizes. Symbolic dims unify with anything of any kind
     * (the runtime carries the precise value).
     */
    bool compatibleWith(const StreamShape& o) const;

  private:
    DimVec dims_;
};

} // namespace step
