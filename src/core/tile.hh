/**
 * @file
 * Runtime tile type. A tile is a two-dimensional regular matrix whose shape
 * may be decided at runtime (dynamically-sized tiles are first-class in
 * STeP, section 3.1). Tiles run in one of two modes:
 *
 *  - timing mode: shape-only; `data()` is null. The simulator cost model
 *    only needs rows/cols/element-size, so full model dimensions can be
 *    simulated without materializing weights.
 *  - functional mode: carries float payload so tests can check STeP graphs
 *    against dense references.
 *
 * Payloads are shared (copy-on-write by convention: tiles are immutable
 * once built), so routing a tile through the graph never deep-copies.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace step {

/** Default element size: BFloat16, as in the paper's evaluation. */
constexpr int kDefaultElemBytes = 2;

class Tile
{
  public:
    Tile() = default;

    /** Shape-only tile (timing mode). */
    Tile(int64_t rows, int64_t cols, int elem_bytes = kDefaultElemBytes);

    /** Tile with payload (functional mode); data.size()==rows*cols. */
    static Tile withData(int64_t rows, int64_t cols,
                         std::vector<float> data,
                         int elem_bytes = kDefaultElemBytes);

    /** Tile of zeros with payload. */
    static Tile zeros(int64_t rows, int64_t cols,
                      int elem_bytes = kDefaultElemBytes);

    int64_t rows() const { return rows_; }
    int64_t cols() const { return cols_; }
    int elemBytes() const { return elemBytes_; }
    int64_t numel() const { return rows_ * cols_; }
    int64_t bytes() const { return numel() * elemBytes_; }
    bool hasData() const { return data_ != nullptr; }

    /** Element access; requires hasData(). */
    float at(int64_t r, int64_t c) const;

    const std::vector<float>* data() const { return data_.get(); }

    bool
    sameShape(const Tile& o) const
    {
        return rows_ == o.rows_ && cols_ == o.cols_;
    }

    /** Exact equality (shape, and payload when both have data). */
    bool equals(const Tile& o, float tol = 0.0f) const;

  private:
    int64_t rows_ = 0;
    int64_t cols_ = 0;
    int elemBytes_ = kDefaultElemBytes;
    std::shared_ptr<const std::vector<float>> data_;
};

/** C = A x B. FLOPs = 2*m*k*n (counted even in timing mode). */
Tile matmul(const Tile& a, const Tile& b, int64_t* flops = nullptr);

/** Elementwise sum; shapes must match. */
Tile add(const Tile& a, const Tile& b, int64_t* flops = nullptr);

/** Elementwise (Hadamard) product. */
Tile elemMul(const Tile& a, const Tile& b, int64_t* flops = nullptr);

/** SiLU activation x * sigmoid(x), as used by SwiGLU. */
Tile silu(const Tile& a, int64_t* flops = nullptr);

/** Row-wise concatenation: [a; b]. Used by the RetileRow accumulator. */
Tile retileRow(const Tile& a, const Tile& b);

/** Column-wise concatenation: [a, b]. Used by the RetileCol accumulator. */
Tile retileCol(const Tile& a, const Tile& b);

/** Rows [r0, r1) of the tile. Used by RetileStreamify splitting. */
Tile sliceRows(const Tile& a, int64_t r0, int64_t r1);

} // namespace step
