/**
 * @file
 * Stream element values. A STeP stream's data type is a tile, a selector,
 * a read-only reference to on-chip memory, or a tuple of these
 * (section 3.1 "Data Type").
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "core/tile.hh"

namespace step {

/**
 * Multi-hot routing vector: the indices of the selected consumers or
 * producers (Figure 4 writes these as tuples of nonzero indices).
 */
struct Selector
{
    std::vector<uint32_t> indices;

    Selector() = default;
    explicit Selector(std::vector<uint32_t> idx) : indices(std::move(idx)) {}
    static Selector oneHot(uint32_t i) { return Selector({i}); }

    bool operator==(const Selector& o) const { return indices == o.indices; }
    /** Metric size: one machine word. */
    int64_t bytes() const { return 8; }
};

/** Read-only reference to a buffer allocated in on-chip memory. */
struct BufferRef
{
    /** Scratchpad allocation id (see mem/scratchpad.hh). */
    uint64_t id = 0;
    /** Total payload bytes of the referenced buffer. */
    int64_t payloadBytes = 0;

    bool operator==(const BufferRef& o) const { return id == o.id; }
    /** Metric size: an address. */
    int64_t bytes() const { return 8; }
};

class Value;

/** Tuple payload (from Zip); shared to keep Value cheap to copy. */
struct TupleVal
{
    std::shared_ptr<const std::vector<Value>> elems;

    int64_t bytes() const;
};

/**
 * A single data element travelling on a stream.
 */
class Value
{
  public:
    Value() : v_(Tile()) {}
    Value(Tile t) : v_(std::move(t)) {}             // NOLINT implicit
    Value(Selector s) : v_(std::move(s)) {}         // NOLINT implicit
    Value(BufferRef b) : v_(std::move(b)) {}        // NOLINT implicit
    Value(TupleVal t) : v_(std::move(t)) {}         // NOLINT implicit

    static Value tuple(std::vector<Value> elems);

    bool isTile() const { return std::holds_alternative<Tile>(v_); }
    bool isSelector() const { return std::holds_alternative<Selector>(v_); }
    bool isBufferRef() const { return std::holds_alternative<BufferRef>(v_); }
    bool isTuple() const { return std::holds_alternative<TupleVal>(v_); }

    const Tile& tile() const;
    const Selector& selector() const;
    const BufferRef& bufferRef() const;
    const std::vector<Value>& tupleElems() const;

    /** Wire size in bytes, used by the roofline timing model. */
    int64_t bytes() const;

    std::string toString() const;

  private:
    std::variant<Tile, Selector, BufferRef, TupleVal> v_;
};

} // namespace step
