/**
 * @file
 * Stream element values. A STeP stream's data type is a tile, a selector,
 * a read-only reference to on-chip memory, or a tuple of these
 * (section 3.1 "Data Type").
 */
#pragma once

#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "core/tile.hh"
#include "support/error.hh"
#include "support/smallvec.hh"

namespace step {

/**
 * Small-buffer-optimized index store for Selector. One-hot and top-2
 * routing tokens — the overwhelming majority of MoE/attention traffic —
 * fit in the two inline slots, so constructing and copying them never
 * touches the heap; wider selectors spill to a vector.
 */
using IndexVec = SmallVec<uint32_t, 2>;

/**
 * Multi-hot routing vector: the indices of the selected consumers or
 * producers (Figure 4 writes these as tuples of nonzero indices).
 */
struct Selector
{
    IndexVec indices;

    Selector() = default;
    explicit Selector(IndexVec idx) : indices(std::move(idx)) {}
    explicit Selector(const std::vector<uint32_t>& idx)
        : indices(idx.begin(), idx.end())
    {}
    static Selector oneHot(uint32_t i) { return Selector(IndexVec{i}); }

    bool operator==(const Selector& o) const { return indices == o.indices; }
    /** Metric size: one machine word. */
    int64_t bytes() const { return 8; }
};

/** Read-only reference to a buffer allocated in on-chip memory. */
struct BufferRef
{
    /** Scratchpad allocation id (see mem/scratchpad.hh). */
    uint64_t id = 0;
    /** Total payload bytes of the referenced buffer. */
    int64_t payloadBytes = 0;

    bool operator==(const BufferRef& o) const { return id == o.id; }
    /** Metric size: an address. */
    int64_t bytes() const { return 8; }
};

class Value;

/** Tuple payload (from Zip); shared to keep Value cheap to copy. */
struct TupleVal
{
    std::shared_ptr<const std::vector<Value>> elems;

    int64_t bytes() const;
};

/**
 * A single data element travelling on a stream.
 *
 * Implemented as a hand-rolled tagged union rather than std::variant:
 * tokens are moved several times per simulated channel transfer, and the
 * open-coded switch moves (plus same-kind move-assignment reusing the
 * destination in place, the FIFO-slot recycle case) compile to a few
 * stores where the variant machinery dispatches through visit tables.
 */
class Value
{
  public:
    Value() : kind_(Kind::Tile), tile_() {}
    Value(Tile t)                                   // NOLINT implicit
        : kind_(Kind::Tile), tile_(std::move(t))
    {}
    Value(Selector s)                               // NOLINT implicit
        : kind_(Kind::Selector), sel_(std::move(s))
    {}
    Value(BufferRef b)                              // NOLINT implicit
        : kind_(Kind::BufferRef), buf_(b)
    {}
    Value(TupleVal t)                               // NOLINT implicit
        : kind_(Kind::Tuple), tup_(std::move(t))
    {}

    Value(const Value& o) : kind_(o.kind_) { copyFrom(o); }

    Value(Value&& o) noexcept : kind_(o.kind_) { moveFrom(std::move(o)); }

    Value&
    operator=(const Value& o)
    {
        // Copy-construct first so a throwing payload copy (functional-
        // mode tiles allocate) cannot leave kind_ pointing at an
        // unconstructed member; the move assign below is noexcept.
        if (this != &o) {
            Value tmp(o);
            *this = std::move(tmp);
        }
        return *this;
    }

    Value&
    operator=(Value&& o) noexcept
    {
        if (this == &o)
            return *this;
        if (kind_ == o.kind_) {
            // In-place member move-assignment: the dominant case when a
            // recycled FIFO slot receives a token of the same kind.
            switch (kind_) {
            case Kind::Tile:      tile_ = std::move(o.tile_); break;
            case Kind::Selector:  sel_ = std::move(o.sel_); break;
            case Kind::BufferRef: buf_ = o.buf_; break;
            case Kind::Tuple:     tup_ = std::move(o.tup_); break;
            }
            return *this;
        }
        destroy();
        kind_ = o.kind_;
        moveFrom(std::move(o));
        return *this;
    }

    ~Value() { destroy(); }

    static Value tuple(std::vector<Value> elems);

    bool isTile() const { return kind_ == Kind::Tile; }
    bool isSelector() const { return kind_ == Kind::Selector; }
    bool isBufferRef() const { return kind_ == Kind::BufferRef; }
    bool isTuple() const { return kind_ == Kind::Tuple; }

    // Accessors are defined inline below (per-event hot path); the
    // assert only formats its message on failure.
    const Tile& tile() const;
    const Selector& selector() const;
    const BufferRef& bufferRef() const;
    const std::vector<Value>& tupleElems() const;

    /** Wire size in bytes, used by the roofline timing model. */
    int64_t bytes() const;

    std::string toString() const;

  private:
    enum class Kind : uint8_t { Tile, Selector, BufferRef, Tuple };

    void
    copyFrom(const Value& o)
    {
        switch (kind_) {
        case Kind::Tile:      new (&tile_) Tile(o.tile_); break;
        case Kind::Selector:  new (&sel_) Selector(o.sel_); break;
        case Kind::BufferRef: new (&buf_) BufferRef(o.buf_); break;
        case Kind::Tuple:     new (&tup_) TupleVal(o.tup_); break;
        }
    }

    void
    moveFrom(Value&& o) noexcept
    {
        switch (kind_) {
        case Kind::Tile:      new (&tile_) Tile(std::move(o.tile_)); break;
        case Kind::Selector:  new (&sel_) Selector(std::move(o.sel_)); break;
        case Kind::BufferRef: new (&buf_) BufferRef(o.buf_); break;
        case Kind::Tuple:     new (&tup_) TupleVal(std::move(o.tup_)); break;
        }
    }

    void
    destroy() noexcept
    {
        switch (kind_) {
        case Kind::Tile:      tile_.~Tile(); break;
        case Kind::Selector:  sel_.~Selector(); break;
        case Kind::BufferRef: break; // trivially destructible
        case Kind::Tuple:     tup_.~TupleVal(); break;
        }
    }

    Kind kind_;
    union {
        Tile tile_;
        Selector sel_;
        BufferRef buf_;
        TupleVal tup_;
    };
};

inline const Tile&
Value::tile() const
{
    STEP_ASSERT(isTile(), "value is not a tile: " << toString());
    return tile_;
}

inline const Selector&
Value::selector() const
{
    STEP_ASSERT(isSelector(), "value is not a selector: " << toString());
    return sel_;
}

inline const BufferRef&
Value::bufferRef() const
{
    STEP_ASSERT(isBufferRef(), "value is not a buffer ref: " << toString());
    return buf_;
}

inline const std::vector<Value>&
Value::tupleElems() const
{
    STEP_ASSERT(isTuple(), "value is not a tuple: " << toString());
    return *tup_.elems;
}

inline int64_t
Value::bytes() const
{
    if (isTile())
        return tile_.bytes();
    if (isSelector())
        return sel_.bytes();
    if (isBufferRef())
        return buf_.bytes();
    return tup_.bytes();
}

} // namespace step
