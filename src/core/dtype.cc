#include "core/dtype.hh"

#include <sstream>

#include "support/error.hh"

namespace step {

DataType
DataType::tile(Dim rows, Dim cols, int elem_bytes)
{
    DataType d;
    d.kind_ = ValueKind::Tile;
    d.rows_ = std::move(rows);
    d.cols_ = std::move(cols);
    d.elemBytes_ = elem_bytes;
    return d;
}

DataType
DataType::tile(int64_t rows, int64_t cols, int elem_bytes)
{
    return tile(Dim::fixed(rows), Dim::fixed(cols), elem_bytes);
}

DataType
DataType::selector(int64_t fanout)
{
    DataType d;
    d.kind_ = ValueKind::Selector;
    d.fanout_ = fanout;
    return d;
}

DataType
DataType::bufferRef(std::vector<Dim> buffer_dims, DataType elem)
{
    DataType d;
    d.kind_ = ValueKind::BufferRef;
    d.bufferDims_ = std::move(buffer_dims);
    d.pointee_ = std::make_shared<const DataType>(std::move(elem));
    return d;
}

DataType
DataType::tuple(std::vector<DataType> elems)
{
    DataType d;
    d.kind_ = ValueKind::Tuple;
    d.elems_ = std::move(elems);
    return d;
}

const DataType&
DataType::pointee() const
{
    STEP_ASSERT(isBufferRef() && pointee_, "pointee() on non-buffer dtype");
    return *pointee_;
}

sym::Expr
DataType::sizeBytes() const
{
    switch (kind_) {
      case ValueKind::Tile:
        return rows_.size * cols_.size * sym::Expr(int64_t{elemBytes_});
      case ValueKind::Selector:
        return sym::Expr(int64_t{8});
      case ValueKind::BufferRef:
        return sym::Expr(int64_t{8});
      case ValueKind::Tuple: {
        sym::Expr total;
        for (const auto& e : elems_)
            total += e.sizeBytes();
        return total;
      }
    }
    stepPanic("unreachable dtype kind");
}

sym::Expr
DataType::referencedBytes() const
{
    STEP_ASSERT(isBufferRef(), "referencedBytes() on non-buffer dtype");
    sym::Expr count(int64_t{1});
    for (const auto& d : bufferDims_)
        count *= d.size;
    return count * pointee_->sizeBytes();
}

bool
DataType::hasDynamicDims() const
{
    switch (kind_) {
      case ValueKind::Tile:
        return rows_.isDynamic() || cols_.isDynamic();
      case ValueKind::Selector:
        return false;
      case ValueKind::BufferRef: {
        for (const auto& d : bufferDims_)
            if (d.isDynamic())
                return true;
        return pointee_->hasDynamicDims();
      }
      case ValueKind::Tuple: {
        for (const auto& e : elems_)
            if (e.hasDynamicDims())
                return true;
        return false;
      }
    }
    stepPanic("unreachable dtype kind");
}

std::string
DataType::toString() const
{
    std::ostringstream os;
    switch (kind_) {
      case ValueKind::Tile:
        os << "Tile[" << rows_.toString() << "," << cols_.toString() << "]";
        break;
      case ValueKind::Selector:
        os << "Sel<" << fanout_ << ">";
        break;
      case ValueKind::BufferRef: {
        os << "Buffer[";
        for (size_t i = 0; i < bufferDims_.size(); ++i)
            os << (i ? "," : "") << bufferDims_[i].toString();
        os << "]<" << pointee_->toString() << ">";
        break;
      }
      case ValueKind::Tuple: {
        os << "(";
        for (size_t i = 0; i < elems_.size(); ++i)
            os << (i ? "," : "") << elems_[i].toString();
        os << ")";
        break;
      }
    }
    return os.str();
}

} // namespace step
