/**
 * @file
 * Tensor <-> token-stream codec plus the stop-coalescing writer state
 * machine. These implement the stream protocol described in
 * core/token.hh and are the backbone of the operator unit tests: every
 * operator's output is decoded back into nested tensors and compared with
 * a dense reference.
 */
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "core/token.hh"

namespace step {

/**
 * Nested (possibly ragged) tensor-of-values used to build and inspect
 * streams in tests. A Nested is either a leaf Value or a list of Nested.
 */
class Nested
{
  public:
    Nested() : node_(std::vector<Nested>{}) {}
    Nested(Value v) : node_(std::move(v)) {}                // NOLINT
    static Nested list(std::vector<Nested> xs)
    {
        Nested n;
        n.node_ = std::move(xs);
        return n;
    }

    bool isLeaf() const { return std::holds_alternative<Value>(node_); }
    const Value& leaf() const { return std::get<Value>(node_); }
    const std::vector<Nested>&
    children() const
    {
        return std::get<std::vector<Nested>>(node_);
    }
    std::vector<Nested>&
    children()
    {
        return std::get<std::vector<Nested>>(node_);
    }

    /** Depth below this node (leaf = 0). Ragged trees use max depth. */
    size_t depth() const;

    std::string toString() const;

  private:
    std::variant<Value, std::vector<Nested>> node_;
};

/**
 * Writer-side stop coalescing: buffers the most recent stop and upgrades
 * it when a higher-level stop closes the same position, so "only the
 * highest-level stop token" is emitted at nested dimension ends, while
 * stops at the same-or-lower level flush through (empty groups).
 *
 * Coroutine-friendly: each call returns the tokens to physically emit.
 * One writer event emits at most two tokens (a flushed stop plus the
 * new token), so the result is an inline fixed-capacity range — the
 * coalescer sits on every operator's emit path and must not allocate.
 */
class StopCoalescer
{
  public:
    /** Up to two tokens produced by one coalescer event; no heap. */
    class Emit
    {
      public:
        Token* begin() { return toks_; }
        Token* end() { return toks_ + n_; }
        const Token* begin() const { return toks_; }
        const Token* end() const { return toks_ + n_; }
        size_t size() const { return n_; }
        bool empty() const { return n_ == 0; }
        const Token& operator[](size_t i) const { return toks_[i]; }

      private:
        friend class StopCoalescer;
        void push(Token t) { toks_[n_++] = std::move(t); }

        Token toks_[2];
        uint8_t n_ = 0;
    };

    Emit
    onData(Value v)
    {
        Emit out = flush();
        out.push(Token::data(std::move(v)));
        return out;
    }

    Emit
    onToken(const Token& t)
    {
        if (t.isData())
            return onData(t.value());
        if (t.isStop())
            return onStop(t.level());
        return onDone();
    }

    Emit
    onStop(uint32_t level)
    {
        Emit out;
        if (pending_ && *pending_ < level) {
            pending_ = level;           // upgrade: nested ends coincide
        } else {
            out = flush();              // same/lower level: genuine stop
            pending_ = level;
        }
        return out;
    }

    Emit
    onDone()
    {
        Emit out = flush();
        out.push(Token::done());
        return out;
    }

    /** Drop any buffered stop: back to the freshly-built state (rearm). */
    void reset() { pending_.reset(); }

    /** Force out any buffered stop (used before Done or at barriers). */
    Emit
    flush()
    {
        Emit out;
        if (pending_) {
            out.push(Token::stop(*pending_));
            pending_.reset();
        }
        return out;
    }

  private:
    std::optional<uint32_t> pending_;
};

/**
 * Encode a nested tensor of depth @p rank into a token stream ending in
 * Done. Leaves at depth 0; ragged children are fine; empty groups encode
 * as repeated stops.
 */
std::vector<Token> encodeNested(const Nested& n, size_t rank);

/** Decode a well-formed rank-@p rank token stream back into a Nested. */
Nested decodeNested(const std::vector<Token>& toks, size_t rank);

/**
 * Check protocol invariants for a rank-@p rank stream. Returns an error
 * description, or std::nullopt if well-formed.
 */
std::optional<std::string> checkWellFormed(const std::vector<Token>& toks,
                                           size_t rank);

/** Count data tokens. */
size_t countData(const std::vector<Token>& toks);

/** Printable "1, 2, S1, 3, S2, D" form (paper notation). */
std::string tokensToString(const std::vector<Token>& toks);

} // namespace step
