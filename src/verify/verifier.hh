/**
 * @file
 * Static analysis over a built ops::Graph — the machine-checkable
 * well-formedness oracle the graph-rewrite/fusion pass will invoke
 * after every rewrite. The verifier never executes the graph: it walks
 * the channel endpoint tables and the operator-declared ports
 * (OpBase::collectPorts) and emits structured findings.
 *
 * Passes (each independently toggleable via VerifyOptions):
 *
 *  - structural well-formedness: every channel has exactly one producer
 *    and one consumer endpoint registered in the owning graph, no
 *    dangling ports, positive capacities, and the op-side port
 *    declarations agree with the channel endpoint tables (the property
 *    recycle()/rearm() must preserve).
 *
 *  - shape/dtype flow: for every channel, the producer's declared
 *    output view must be compatible (StreamShape::compatibleWith +
 *    dtype equality) with the consumer's declared input view.
 *
 *  - deadlock-freedom: build the op-level channel dependency graph,
 *    find its strongly connected components, and for each cycle
 *    conservatively check the initial credits (OpBase::primingTokens,
 *    the static counterpart of initial tokens on a marked dataflow
 *    graph) against the cycle's buffering; a cycle with no initial
 *    tokens, or more initial tokens than its channels can buffer, is
 *    reported with a minimal cycle witness — the static counterpart of
 *    the scheduler's runtime deadlock report.
 *
 *  - determinism audit: flag operators whose output order can depend
 *    on scheduler interleaving (EagerMerge in legacy poll mode), so
 *    the seeded-replay guarantee is auditable rather than folklore.
 */
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace step {

class Graph;

namespace verify {

enum class Severity
{
    Warning,
    Error,
};

[[nodiscard]] const char* severityName(Severity s);

/** One verification finding, pinned to an op and/or channel. */
struct Finding
{
    Severity severity = Severity::Error;
    /** Stable rule identifier, e.g. "structural.no-consumer". */
    std::string ruleId;
    /** Operator the finding is attached to ("" when channel-only). */
    std::string opName;
    /** Channel the finding is attached to ("" when op-only). */
    std::string channelName;
    /**
     * Machine-checkable evidence: for deadlock findings the minimal
     * cycle as "ch1 -> ch2 -> ... -> ch1"; for shape findings the two
     * disagreeing views; for structural findings the endpoint state.
     */
    std::string witness;
    /** What to do about it. */
    std::string hint;
};

/** Pass toggles; default-constructed runs everything. */
struct VerifyOptions
{
    bool structural = true;
    bool shapeFlow = true;
    bool deadlock = true;
    bool determinism = true;
};

struct VerifyReport
{
    std::vector<Finding> findings;
    /** Ops / channels examined (for the step_lint table). */
    size_t opsChecked = 0;
    size_t channelsChecked = 0;

    [[nodiscard]] size_t errors() const;
    [[nodiscard]] size_t warnings() const;
    [[nodiscard]] bool clean() const { return findings.empty(); }

    /** Human-readable rendering, one finding per line. */
    void renderText(std::ostream& os) const;
    [[nodiscard]] std::string toText() const;

    /** JSON rendering (the schema documented in README). */
    [[nodiscard]] std::string toJson() const;
};

/**
 * Analyzes a built graph without executing it. The graph must outlive
 * the verifier. Verification is read-only: a verifier-on run is
 * byte-identical to a verifier-off run.
 */
class GraphVerifier
{
  public:
    explicit GraphVerifier(const Graph& g) : g_(g) {}

    [[nodiscard]] VerifyReport run(const VerifyOptions& opts = {}) const;

  private:
    const Graph& g_;
};

} // namespace verify
} // namespace step
