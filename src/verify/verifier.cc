/**
 * @file
 * GraphVerifier implementation: four read-only analysis passes over the
 * channel endpoint tables and operator port declarations, plus the text
 * and JSON finding renderers. Findings are emitted in deterministic
 * graph order (ops, then channels, in creation order), so verifier
 * output is replay-stable like everything else in the simulator.
 */
#include "verify/verifier.hh"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <ostream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "dam/channel.hh"
#include "obs/json.hh"
#include "ops/graph.hh"
#include "ops/route.hh"

namespace step::verify {

const char*
severityName(Severity s)
{
    return s == Severity::Error ? "error" : "warning";
}

size_t
VerifyReport::errors() const
{
    size_t n = 0;
    for (const Finding& f : findings)
        n += f.severity == Severity::Error;
    return n;
}

size_t
VerifyReport::warnings() const
{
    return findings.size() - errors();
}

void
VerifyReport::renderText(std::ostream& os) const
{
    for (const Finding& f : findings) {
        os << severityName(f.severity) << "[" << f.ruleId << "]";
        if (!f.opName.empty())
            os << " op '" << f.opName << "'";
        if (!f.channelName.empty())
            os << " channel '" << f.channelName << "'";
        os << ": " << f.witness << "\n";
        if (!f.hint.empty())
            os << "    hint: " << f.hint << "\n";
    }
    os << findings.size() << " finding(s): " << errors() << " error(s), "
       << warnings() << " warning(s) over " << opsChecked << " op(s), "
       << channelsChecked << " channel(s)\n";
}

std::string
VerifyReport::toText() const
{
    std::ostringstream os;
    renderText(os);
    return os.str();
}

std::string
VerifyReport::toJson() const
{
    std::string out = "{\"findings\":[";
    bool first = true;
    for (const Finding& f : findings) {
        if (!first)
            out += ",";
        first = false;
        out += "{\"severity\":\"";
        out += severityName(f.severity);
        out += "\",\"ruleId\":\"";
        obs::appendJsonEscaped(out, f.ruleId);
        out += "\",\"op\":\"";
        obs::appendJsonEscaped(out, f.opName);
        out += "\",\"channel\":\"";
        obs::appendJsonEscaped(out, f.channelName);
        out += "\",\"witness\":\"";
        obs::appendJsonEscaped(out, f.witness);
        out += "\",\"hint\":\"";
        obs::appendJsonEscaped(out, f.hint);
        out += "\"}";
    }
    out += "],\"errors\":" + std::to_string(errors()) +
           ",\"warnings\":" + std::to_string(warnings()) +
           ",\"opsChecked\":" + std::to_string(opsChecked) +
           ",\"channelsChecked\":" + std::to_string(channelsChecked) + "}";
    return out;
}

namespace {

/** Everything the passes need, gathered once. */
struct View
{
    const Graph& g;
    /** Per-op declared ports, index-aligned with g.ops(). */
    std::vector<std::vector<PortDecl>> ports;
    /** Graph membership and index of each op, keyed by Context*. */
    std::unordered_map<const dam::Context*, size_t> opIndex;
    /** Declared producer/consumer view per channel (first declaration
     *  wins; duplicates surface as endpoint mismatches). */
    std::unordered_map<const dam::Channel*, const PortDecl*> prodDecl;
    std::unordered_map<const dam::Channel*, const PortDecl*> consDecl;
    std::unordered_map<const dam::Channel*, const OpBase*> prodOp;
    std::unordered_map<const dam::Channel*, const OpBase*> consOp;

    explicit View(const Graph& graph) : g(graph)
    {
        const auto& ops = g.ops();
        ports.resize(ops.size());
        for (size_t i = 0; i < ops.size(); ++i) {
            opIndex.emplace(ops[i], i);
            ops[i]->collectPorts(ports[i]);
            for (const PortDecl& p : ports[i]) {
                if (p.ch == nullptr)
                    continue;
                if (p.isInput) {
                    consDecl.emplace(p.ch, &p);
                    consOp.emplace(p.ch, ops[i]);
                } else {
                    prodDecl.emplace(p.ch, &p);
                    prodOp.emplace(p.ch, ops[i]);
                }
            }
        }
    }
};

void
structuralPass(const View& v, std::vector<Finding>& out)
{
    const auto& ops = v.g.ops();
    for (size_t i = 0; i < ops.size(); ++i) {
        for (const PortDecl& p : v.ports[i]) {
            if (p.ch == nullptr) {
                out.push_back(
                    {Severity::Error, "structural.null-port",
                     ops[i]->name(), "",
                     std::string(p.isInput ? "input" : "output") +
                         " port declared with a null channel",
                     "bind the port to a channel created by "
                     "Graph::makeChannel"});
                continue;
            }
            const dam::Context* endpoint =
                p.isInput ? p.ch->consumer() : p.ch->producer();
            if (endpoint != static_cast<const dam::Context*>(ops[i]))
                out.push_back(
                    {Severity::Error, "structural.endpoint-mismatch",
                     ops[i]->name(), p.ch->name(),
                     "op declares itself " +
                         std::string(p.isInput ? "consumer" : "producer") +
                         " but the channel's " +
                         (p.isInput ? "consumer" : "producer") + " is '" +
                         (endpoint ? endpoint->name() : "<none>") + "'",
                     "channels are single-producer single-consumer; a "
                     "later set" +
                         std::string(p.isInput ? "Consumer" : "Producer") +
                         " overwrote this op's binding (use BroadcastOp "
                         "for fan-out)"});
        }
    }
    for (const dam::Channel* ch : v.g.channels()) {
        if (ch->producer() == nullptr)
            out.push_back({Severity::Error, "structural.no-producer", "",
                           ch->name(), "channel has no producer endpoint",
                           "every channel needs exactly one producer op; "
                           "drop the channel or attach a Source/Relay"});
        else if (v.opIndex.find(ch->producer()) == v.opIndex.end())
            out.push_back({Severity::Error, "structural.foreign-endpoint",
                           ch->producer()->name(), ch->name(),
                           "producer is not an operator of this graph",
                           "the endpoint belongs to another graph build; "
                           "re-wire after recycle()"});
        if (ch->consumer() == nullptr)
            out.push_back({Severity::Error, "structural.no-consumer", "",
                           ch->name(), "channel has no consumer endpoint",
                           "every channel needs exactly one consumer op; "
                           "drop the channel or attach a Sink"});
        else if (v.opIndex.find(ch->consumer()) == v.opIndex.end())
            out.push_back({Severity::Error, "structural.foreign-endpoint",
                           ch->consumer()->name(), ch->name(),
                           "consumer is not an operator of this graph",
                           "the endpoint belongs to another graph build; "
                           "re-wire after recycle()"});
        if (ch->capacity() == 0)
            out.push_back(
                {Severity::Error, "structural.zero-capacity", "",
                 ch->name(), "channel capacity is 0 (no credits ever)",
                 "any write blocks forever; set SimConfig::"
                 "channelCapacity or the makeChannel override > 0"});
    }
}

void
shapeFlowPass(const View& v, std::vector<Finding>& out)
{
    for (const dam::Channel* ch : v.g.channels()) {
        auto p = v.prodDecl.find(ch);
        auto c = v.consDecl.find(ch);
        if (p == v.prodDecl.end() || c == v.consDecl.end())
            continue; // dangling endpoints are structural findings
        const PortDecl& prod = *p->second;
        const PortDecl& cons = *c->second;
        const std::string prodName = v.prodOp.at(ch)->name();
        const std::string consName = v.consOp.at(ch)->name();
        if (!prod.shape.compatibleWith(cons.shape))
            out.push_back(
                {Severity::Error, "shape.mismatch", consName, ch->name(),
                 "producer '" + prodName + "' emits " +
                     prod.shape.toString() + " but consumer '" + consName +
                     "' expects " + cons.shape.toString(),
                 "shapes must agree in rank and every static extent; "
                 "insert a shape operator or fix the port declaration"});
        if (prod.dtype.toString() != cons.dtype.toString())
            out.push_back(
                {Severity::Error, "shape.dtype-mismatch", consName,
                 ch->name(),
                 "producer '" + prodName + "' emits " +
                     prod.dtype.toString() + " but consumer '" + consName +
                     "' expects " + cons.dtype.toString(),
                 "element types must match exactly across a channel"});
    }
}

/**
 * Iterative Tarjan SCC over the op-level dependency graph (one edge per
 * channel, producer -> consumer). Recursion-free so pathological graphs
 * cannot overflow the stack.
 */
struct Sccs
{
    std::vector<int> comp;  ///< op index -> SCC id
    size_t count = 0;
};

Sccs
tarjan(size_t n, const std::vector<std::vector<size_t>>& adj)
{
    Sccs r;
    r.comp.assign(n, -1);
    std::vector<int> low(n, -1), idx(n, -1);
    std::vector<size_t> stack;
    std::vector<char> onStack(n, 0);
    int next = 0;
    struct Frame
    {
        size_t v;
        size_t edge;
    };
    std::vector<Frame> frames;
    for (size_t root = 0; root < n; ++root) {
        if (idx[root] != -1)
            continue;
        frames.push_back({root, 0});
        while (!frames.empty()) {
            Frame& f = frames.back();
            size_t u = f.v;
            if (f.edge == 0) {
                idx[u] = low[u] = next++;
                stack.push_back(u);
                onStack[u] = 1;
            }
            bool descended = false;
            while (f.edge < adj[u].size()) {
                size_t w = adj[u][f.edge++];
                if (idx[w] == -1) {
                    frames.push_back({w, 0});
                    descended = true;
                    break;
                }
                if (onStack[w])
                    low[u] = std::min(low[u], idx[w]);
            }
            if (descended)
                continue;
            if (low[u] == idx[u]) {
                while (true) {
                    size_t w = stack.back();
                    stack.pop_back();
                    onStack[w] = 0;
                    r.comp[w] = static_cast<int>(r.count);
                    if (w == u)
                        break;
                }
                ++r.count;
            }
            frames.pop_back();
            if (!frames.empty()) {
                size_t parent = frames.back().v;
                low[parent] = std::min(low[parent], low[u]);
            }
        }
    }
    return r;
}

void
deadlockPass(const View& v, std::vector<Finding>& out)
{
    const auto& ops = v.g.ops();
    const size_t n = ops.size();
    struct Edge
    {
        size_t from;
        size_t to;
        const dam::Channel* ch;
    };
    std::vector<Edge> edges;
    std::vector<std::vector<size_t>> adj(n);
    for (const dam::Channel* ch : v.g.channels()) {
        auto p = v.opIndex.find(ch->producer());
        auto c = v.opIndex.find(ch->consumer());
        if (p == v.opIndex.end() || c == v.opIndex.end())
            continue;
        adj[p->second].push_back(c->second);
        edges.push_back({p->second, c->second, ch});
    }
    const Sccs sccs = tarjan(n, adj);

    // Per-SCC member count to tell real cycles from singletons.
    std::vector<int> members(sccs.count, 0);
    for (size_t i = 0; i < n; ++i)
        ++members[static_cast<size_t>(sccs.comp[i])];

    std::vector<char> cyclic(sccs.count, 0);
    for (const Edge& e : edges) {
        if (sccs.comp[e.from] != sccs.comp[e.to])
            continue;
        if (members[static_cast<size_t>(sccs.comp[e.from])] > 1 ||
            e.from == e.to)
            cyclic[static_cast<size_t>(sccs.comp[e.from])] = 1;
    }

    for (size_t scc = 0; scc < sccs.count; ++scc) {
        if (!cyclic[scc])
            continue;
        // Internal channels, credits and buffering of this cycle family.
        int64_t priming = 0;
        int64_t capacity = 0;
        const dam::Channel* zeroCap = nullptr;
        std::vector<std::vector<std::pair<size_t, const dam::Channel*>>>
            inAdj(n);
        size_t start = n;
        for (const Edge& e : edges) {
            if (sccs.comp[e.from] != static_cast<int>(scc) ||
                sccs.comp[e.to] != static_cast<int>(scc))
                continue;
            priming += ops[e.from]->primingTokens(e.ch);
            capacity += static_cast<int64_t>(e.ch->capacity());
            if (e.ch->capacity() == 0 && !zeroCap)
                zeroCap = e.ch;
            inAdj[e.from].emplace_back(e.to, e.ch);
            start = std::min(start, std::min(e.from, e.to));
        }

        // Minimal cycle witness: shortest internal path start -> start.
        std::string witness;
        const dam::Channel* firstCh = nullptr;
        {
            std::vector<std::pair<size_t, const dam::Channel*>> parent(
                n, {n, nullptr});
            std::deque<size_t> q;
            for (const auto& [to, ch] : inAdj[start])
                if (parent[to].second == nullptr && to != start) {
                    parent[to] = {start, ch};
                    q.push_back(to);
                }
            const dam::Channel* closing = nullptr;
            for (const auto& [to, ch] : inAdj[start])
                if (to == start)
                    closing = ch; // self-loop
            size_t tail = start;
            while (!closing && !q.empty()) {
                size_t u = q.front();
                q.pop_front();
                for (const auto& [to, ch] : inAdj[u]) {
                    if (to == start) {
                        closing = ch;
                        tail = u;
                        break;
                    }
                    if (parent[to].second == nullptr) {
                        parent[to] = {u, ch};
                        q.push_back(to);
                    }
                }
            }
            std::vector<const dam::Channel*> path;
            if (closing) {
                path.push_back(closing);
                for (size_t u = tail; u != start; u = parent[u].first)
                    path.push_back(parent[u].second);
            }
            for (auto it = path.rbegin(); it != path.rend(); ++it) {
                if (!firstCh)
                    firstCh = *it;
                witness += (*it)->name();
                witness += " -> ";
            }
            if (firstCh)
                witness += firstCh->name();
        }
        const std::string opName = ops[start]->name();
        const std::string chName = firstCh ? firstCh->name() : "";

        if (zeroCap) {
            out.push_back(
                {Severity::Error, "deadlock.zero-capacity-cycle", opName,
                 zeroCap->name(),
                 "channel cycle contains a zero-capacity channel: " +
                     witness,
                 "a zero-capacity channel on a cycle can never be "
                 "written; give it buffering"});
        } else if (priming == 0) {
            out.push_back(
                {Severity::Error, "deadlock.cycle-no-credits", opName,
                 chName,
                 "channel cycle carries no initial tokens: " + witness,
                 "every op on the cycle blocks reading its predecessor; "
                 "prime the cycle (see DispatcherOp::primingTokens) or "
                 "break it"});
        } else if (priming > capacity) {
            out.push_back(
                {Severity::Error, "deadlock.cycle-capacity", opName,
                 chName,
                 "cycle primes " + std::to_string(priming) +
                     " token(s) but its channels buffer only " +
                     std::to_string(capacity) + ": " + witness,
                 "the priming writes exhaust the cycle's credits before "
                 "any consumer runs; enlarge the cycle's channel "
                 "capacities"});
        }
    }
}

void
determinismPass(const View& v, std::vector<Finding>& out)
{
    if (v.g.config().mergeTimedWait)
        return;
    for (const OpBase* op : v.g.ops()) {
        const auto* em = dynamic_cast<const EagerMergeOp*>(op);
        if (!em)
            continue;
        out.push_back(
            {Severity::Warning, "determinism.eager-merge-poll", op->name(),
             em->out().ch ? em->out().ch->name() : "",
             "availability-ordered merge runs in legacy poll mode "
             "(SimConfig::mergeTimedWait == false); its output order "
             "depends on scheduler interleaving",
             "enable mergeTimedWait for replay-stable arbitration, or "
             "pin the interleaving in the test that disables it"});
    }
}

} // namespace

VerifyReport
GraphVerifier::run(const VerifyOptions& opts) const
{
    View v(g_);
    VerifyReport r;
    r.opsChecked = g_.ops().size();
    r.channelsChecked = g_.channels().size();
    if (opts.structural)
        structuralPass(v, r.findings);
    if (opts.shapeFlow)
        shapeFlowPass(v, r.findings);
    if (opts.deadlock)
        deadlockPass(v, r.findings);
    if (opts.determinism)
        determinismPass(v, r.findings);
    return r;
}

} // namespace step::verify

namespace step {

verify::VerifyReport
Graph::verify(const verify::VerifyOptions& opts) const
{
    return verify::GraphVerifier(*this).run(opts);
}

} // namespace step
