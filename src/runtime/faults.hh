/**
 * @file
 * Deterministic fault model for the serving runtime. A FaultPlan is a
 * list of scripted or seeded-random events — replica crashes at cycle X
 * (with optional recovery at cycle Y) and transient slowdown windows
 * that scale totalComputeBw — fixed *before* any simulation runs, so a
 * faulty run is as bit-identically replayable as a fault-free one: the
 * plan is data, derived from deriveSeed, never from simulation state.
 *
 * The same header carries the pluggable degradation policies the fault
 * tier needs (the DynaFlow-style policy-object pattern the routers and
 * bandwidth policies already use): RetryPolicy decides whether and when
 * a failed request re-arrives at a surviving replica (max attempts,
 * modeled backoff, never after its deadline), and AdmissionPolicy lets
 * the batcher shed requests whose deadline is already unmeetable instead
 * of queueing them without bound. StallError replaces the engine's
 * former fatal assert when admission genuinely cannot make progress,
 * carrying a scheduler-state diagnostic dump instead of aborting.
 */
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/request.hh"
#include "support/error.hh"

namespace step::runtime {

/** Replica crash at failAt; recoverAt 0 means it never comes back. */
struct FaultEvent
{
    int64_t replica = 0;
    dam::Cycle failAt = 0;
    dam::Cycle recoverAt = 0;
};

/** Transient degradation: totalComputeBw scales by bwFactor in
 *  [start, end) — a straggler window, not an outage. */
struct SlowdownWindow
{
    int64_t replica = 0;
    dam::Cycle start = 0;
    dam::Cycle end = 0;
    double bwFactor = 0.5;
};

/**
 * One replica's slice of a FaultPlan, in event order — what a
 * ServingEngine consumes. Down windows are half-open [failAt,
 * recoverAt); a window with recoverAt == 0 extends forever and must be
 * the replica's last.
 */
struct ReplicaFaultTimeline
{
    struct Down
    {
        dam::Cycle failAt = 0;
        dam::Cycle recoverAt = 0; ///< 0 = never recovers
    };
    struct Slow
    {
        dam::Cycle start = 0;
        dam::Cycle end = 0;
        double factor = 1.0;
    };

    std::vector<Down> downs;
    std::vector<Slow> slowdowns;

    static constexpr dam::Cycle kNoEvent =
        std::numeric_limits<dam::Cycle>::max();

    bool empty() const { return downs.empty() && slowdowns.empty(); }

    /** Is the replica down at cycle @p c? */
    bool downAt(dam::Cycle c) const;

    /** Effective bandwidth factor at cycle @p c (1.0 outside windows). */
    double bwFactorAt(dam::Cycle c) const;

    /**
     * Earliest timeline boundary (crash, recovery, slowdown edge)
     * strictly after @p c, or kNoEvent. The engine clamps analytic
     * prefill iterations to this so bandwidth changes land on exact
     * cycles. (Decode iterations are graph-simulated and keep their
     * natural length; a crash then takes effect at the next iteration
     * boundary — iteration-granular fault delivery, documented in the
     * README determinism contract.)
     */
    dam::Cycle nextEventAfter(dam::Cycle c) const;

    /** Sort windows and validate (no overlap, recoverAt==0 last,
     *  factors in (0, 1]). Throws FatalError on a malformed plan. */
    void normalize();
};

/** The full cluster-wide fault script. */
struct FaultPlan
{
    std::vector<FaultEvent> crashes;
    std::vector<SlowdownWindow> slowdowns;

    bool empty() const { return crashes.empty() && slowdowns.empty(); }

    /** Extract (and normalize) replica @p r's timeline. */
    ReplicaFaultTimeline forReplica(int64_t r) const;

    /** Is replica @p r up at cycle @p c? (Router-side helper.) */
    bool aliveAt(int64_t r, dam::Cycle c) const;
};

/** Seeded-random plan generation: per-replica Poisson failure/repair
 *  processes, the classic MTBF/MTTR model. */
struct FaultPlanConfig
{
    /** Mean cycles between crashes per replica; 0 = no crashes. */
    double mtbfCycles = 0;
    /** Mean cycles to repair; 0 = crashes are permanent. */
    double mttrCycles = 0;
    /** Mean cycles between slowdown windows per replica; 0 = none. */
    double slowdownMtbfCycles = 0;
    /** Mean slowdown-window length. */
    double slowdownMeanCycles = 2'000'000;
    /** Bandwidth factor inside slowdown windows. */
    double slowdownFactor = 0.5;
    /** Events are generated up to this cycle. */
    dam::Cycle horizonCycles = 0;
};

/**
 * Draw a FaultPlan from the config. Pure function of (cfg, replicas,
 * seed) — the plan, like a trace, is generated before simulation, so
 * every faulty run replays bit-identically.
 */
FaultPlan generateFaultPlan(const FaultPlanConfig& cfg, int64_t replicas,
                            uint64_t seed);

/**
 * Parse a scripted plan: comma- or semicolon-separated events, each
 * "REPLICA@FAIL_AT[:RECOVER_AT]" (cycles; recovery omitted = permanent),
 * e.g. "1@8000000:12000000,2@5000000". Returns false with a message in
 * @p err on malformed input.
 */
bool parseFaultPlan(std::string_view spec, FaultPlan* out,
                    std::string* err);

// ---- retry ------------------------------------------------------------

/**
 * Decides whether a request that failed (its replica crashed) is
 * re-submitted, and when. Consulted by ServingCluster on the
 * coordinating thread between failover waves, so implementations need
 * no synchronization; they must be pure functions of their arguments
 * for the determinism contract to hold.
 */
class RetryPolicy
{
  public:
    virtual ~RetryPolicy() = default;

    /**
     * @p r failed at cycle @p failed_at; @p attempt is the attempt
     * number the retry would be (1 = first retry). Return the re-arrival
     * cycle (>= failed_at — the router cannot travel back in time), or
     * nullopt to give up (the request stays failed).
     */
    virtual std::optional<dam::Cycle>
    reschedule(const Request& r, int64_t attempt,
               dam::Cycle failed_at) const = 0;
};

/**
 * Standard client behavior: up to maxRetries re-submissions, each
 * delayed by backoffBase * backoffMult^(attempt-1) cycles of modeled
 * backoff — and never a retry whose re-arrival would already be past
 * the request's deadline (retrying a sure loser only adds load where
 * the cluster is weakest).
 */
class ExponentialBackoffRetry : public RetryPolicy
{
  public:
    int64_t maxRetries = 3;
    dam::Cycle backoffBaseCycles = 1'000'000;
    double backoffMult = 2.0;

    std::optional<dam::Cycle> reschedule(const Request& r, int64_t attempt,
                                         dam::Cycle failed_at) const override;
};

/** Fail fast: every failure is permanent. */
class NoRetryPolicy : public RetryPolicy
{
  public:
    std::optional<dam::Cycle>
    reschedule(const Request&, int64_t, dam::Cycle) const override
    {
        return std::nullopt;
    }
};

// ---- admission / shedding ---------------------------------------------

/** What the batcher knows when it consults the admission policy. */
struct AdmissionContext
{
    dam::Cycle now = 0;
    /** Analytic prefill cost per prompt token (engine's fpt). */
    double prefillFlopsPerToken = 0;
    /** Effective compute bandwidth (slowdown-scaled). */
    int64_t totalComputeBw = 0;
    /** Configured compute bandwidth before slowdown scaling; the gap to
     *  totalComputeBw is the degradation signal brown-out reads. 0 when
     *  the engine predates the signal (treated as "not degraded"). */
    int64_t nominalComputeBw = 0;
    int64_t runningRequests = 0;
    int64_t waitingRequests = 0;
    int64_t kvBudgetBytes = 0;
    int64_t kvReservedBytes = 0;
};

/**
 * Consulted per waiting request at every admission round. Returning
 * true sheds the request (terminal, counted separately from failures) —
 * graceful degradation under overload instead of unbounded queueing.
 * Must be a pure function of its arguments (determinism contract).
 */
class AdmissionPolicy
{
  public:
    virtual ~AdmissionPolicy() = default;
    virtual bool shouldShed(const Request& r,
                            const AdmissionContext& ctx) const = 0;

    /**
     * Graceful degradation below shedding: a positive return caps the
     * request's outputLen at that many tokens at admission (never
     * raising it) — the brown-out ladder's middle rung. 0, the default,
     * admits unmodified.
     */
    virtual int64_t
    outputCap(const Request& /*r*/, const AdmissionContext& /*ctx*/) const
    {
        return 0;
    }
};

/**
 * Sheds a request only when its deadline is provably unmeetable: the
 * optimistic completion bound — start prefilling the uncached suffix
 * *now* at the full machine bandwidth, decode at safetyDecodeCycles per
 * token — already lands past deadlineAt. An optimistic bound sheds only
 * sure losers; requests without a deadline are never shed.
 */
class DeadlineAwareShedPolicy : public AdmissionPolicy
{
  public:
    /** Lower bound on decode cycles per output token after the first.
     *  0 (default) keeps the bound purely prefill-based. */
    dam::Cycle safetyDecodeCyclesPerToken = 0;

    bool shouldShed(const Request& r,
                    const AdmissionContext& ctx) const override;
};

// ---- stall diagnostics -------------------------------------------------

/**
 * Scheduler-state dump attached to a StallError: what was blocked and
 * what occupied the channels (KV reservations, cache pins) when the
 * engine concluded no further progress is possible.
 */
struct StallDiagnostic
{
    std::string reason;
    dam::Cycle now = 0;
    int64_t iterations = 0;

    struct BlockedRequest
    {
        int64_t id = 0;
        int64_t promptLen = 0;
        int64_t outputLen = 0;
        int64_t needKvBytes = 0; ///< reservation admission would take
        dam::Cycle arrival = 0;
    };
    /** Admission queue, head first (the head is what cannot admit). */
    std::vector<BlockedRequest> blocked;

    int64_t runningRequests = 0;
    int64_t kvReservedBytes = 0;
    int64_t kvBudgetBytes = 0;
    int64_t cachePinnedRequests = 0;
    int64_t cacheOccupancyTokens = 0;

    /** One-line-per-field human rendering (the StallError's what()). */
    std::string format() const;
};

/**
 * Thrown (instead of the former fatal assert) when the engine is idle
 * with requests it can never serve — e.g. a head-of-line request whose
 * KV reservation exceeds the whole budget and no admission policy is
 * attached to shed it. Subclasses PanicError so existing catch sites
 * and tests keep working; carries the structured diagnostic so stalls
 * are reportable and testable instead of aborting the process.
 */
class StallError : public PanicError
{
  public:
    explicit StallError(StallDiagnostic d)
        : PanicError(d.format()), diagnostic(std::move(d))
    {}

    StallDiagnostic diagnostic;
};

} // namespace step::runtime
