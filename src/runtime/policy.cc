#include "runtime/policy.hh"

#include <algorithm>

#include "support/error.hh"

namespace step::runtime {

StaticSplitPolicy::StaticSplitPolicy(double prefill_frac)
    : prefillFrac_(prefill_frac)
{
    STEP_ASSERT(prefill_frac > 0.0 && prefill_frac < 1.0,
                "static prefill fraction must be in (0, 1)");
}

BwSplit
StaticSplitPolicy::split(const LoadSnapshot& load, int64_t total_bw) const
{
    (void)load; // static: the whole point is that it cannot react
    BwSplit s;
    s.prefillBw = std::max<int64_t>(
        1, static_cast<int64_t>(prefillFrac_ *
                                static_cast<double>(total_bw)));
    s.decodeBw = std::max<int64_t>(1, total_bw - s.prefillBw);
    return s;
}

QueueDepthPolicy::QueueDepthPolicy(double ramp_tokens,
                                   double max_prefill_frac)
    : rampTokens_(ramp_tokens), maxPrefillFrac_(max_prefill_frac)
{
    STEP_ASSERT(ramp_tokens > 0.0, "ramp must be positive");
    STEP_ASSERT(max_prefill_frac > 0.0 && max_prefill_frac < 1.0,
                "prefill cap must be in (0, 1)");
}

BwSplit
QueueDepthPolicy::split(const LoadSnapshot& load, int64_t total_bw) const
{
    // Only admitted prefill work can consume bandwidth this iteration:
    // waiting requests were already offered admission at the iteration
    // boundary, so if the queue is deep while nothing is Prefilling the
    // batch is KV/cap-blocked and prefill bandwidth would be pure waste.
    double prefill_work = static_cast<double>(load.pendingPrefillTokens);
    BwSplit s;
    if (prefill_work <= 0.0) {
        s.decodeBw = total_bw;
        return s;
    }
    double frac = maxPrefillFrac_ *
                  std::min(1.0, prefill_work / rampTokens_);
    s.prefillBw = std::max<int64_t>(
        1, static_cast<int64_t>(frac * static_cast<double>(total_bw)));
    if (load.activeDecodes > 0)
        s.prefillBw = std::min(s.prefillBw, total_bw - 1);
    s.decodeBw = total_bw - s.prefillBw;
    return s;
}

} // namespace step::runtime
