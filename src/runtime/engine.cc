#include "runtime/engine.hh"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hh"
#include "obs/sink.hh"
#include "support/error.hh"
#include "support/rng.hh"
#include "trace/trace.hh"
#include "verify/verifier.hh"

namespace step::runtime {

namespace {

/** Hard bound against a non-progressing configuration. */
constexpr int64_t kMaxIterations = 1'000'000;

/** Handles into the sink's CounterRegistry, resolved once per run. */
struct EngineCounters
{
    obs::CounterRegistry::Handle queueDepth, runningRequests, decodeBatch,
        kvReservedBytes, prefixCacheTokens, iterations, prefillTokens,
        generatedTokens, contextSwitches;

    explicit EngineCounters(obs::CounterRegistry& c)
        : queueDepth(c.gauge("queue_depth")),
          runningRequests(c.gauge("running_requests")),
          decodeBatch(c.gauge("decode_batch")),
          kvReservedBytes(c.gauge("kv_reserved_bytes")),
          prefixCacheTokens(c.gauge("prefix_cache_tokens")),
          iterations(c.monotonic("iterations")),
          prefillTokens(c.monotonic("prefill_tokens")),
          generatedTokens(c.monotonic("generated_tokens")),
          contextSwitches(c.monotonic("context_switches"))
    {}
};

/**
 * Fault-tier counters, registered only when the run can actually use
 * them (faults, an admission policy, or deadlines present) — a
 * fault-free, deadline-less traced run keeps its counter set, and so
 * its exported bytes, identical to earlier builds.
 */
struct FaultCounters
{
    obs::CounterRegistry::Handle requestsFailed, requestsRetried,
        requestsShed, deadlineMisses, replicaFaults;

    explicit FaultCounters(obs::CounterRegistry& c)
        : requestsFailed(c.monotonic("requests_failed")),
          requestsRetried(c.monotonic("requests_retried")),
          requestsShed(c.monotonic("requests_shed")),
          deadlineMisses(c.monotonic("deadline_misses")),
          replicaFaults(c.monotonic("replica_faults"))
    {}
};

/**
 * Resilience-tier counters, registered only when the tier is active on
 * this replica (slowdown drain enabled or cluster instants present) —
 * the FaultCounters pattern, so resilience-free runs keep their counter
 * set, and their exported bytes, unchanged.
 */
struct ResilienceCounters
{
    obs::CounterRegistry::Handle requestsMigrated, requestsCapped;

    explicit ResilienceCounters(obs::CounterRegistry& c)
        : requestsMigrated(c.monotonic("requests_migrated")),
          requestsCapped(c.monotonic("requests_capped"))
    {}
};

/**
 * Handles into the attached MetricsRegistry, resolved once per run.
 * Two latency histograms (windowed percentile signal for the SLO
 * monitor and the telemetry health monitor) plus window-aggregate
 * series for lifecycle events and per-iteration gauges.
 */
struct MetricsInstruments
{
    obs::MetricsRegistry::Handle ttft, tpot, finished, failed, shed,
        migrated, deadlineMisses, sloGoodTokens, queueDepth,
        runningRequests, decodeBatch, kvReservedBytes, generatedTokens,
        prefillTokens, iterCycles;

    explicit MetricsInstruments(obs::MetricsRegistry& m)
        : ttft(m.histogram("ttft_cycles")),
          tpot(m.histogram("tpot_cycles")),
          finished(m.series("requests_finished")),
          failed(m.series("requests_failed")),
          shed(m.series("requests_shed")),
          migrated(m.series("requests_migrated")),
          deadlineMisses(m.series("deadline_misses")),
          sloGoodTokens(m.series("slo_good_tokens")),
          queueDepth(m.series("queue_depth")),
          runningRequests(m.series("running_requests")),
          decodeBatch(m.series("decode_batch")),
          kvReservedBytes(m.series("kv_reserved_bytes")),
          generatedTokens(m.series("generated_tokens")),
          prefillTokens(m.series("prefill_tokens")),
          iterCycles(m.series("iter_cycles"))
    {}
};

} // namespace

EngineConfig::EngineConfig() : model(servingSimConfig()) {}

ServingEngine::ServingEngine(EngineConfig cfg, const Policy& policy)
    : cfg_(std::move(cfg)), policy_(policy)
{
    if (cfg_.numLayers == 0)
        cfg_.numLayers = cfg_.model.numLayers;
    if (cfg_.batcher.kvBytesPerToken == 0)
        cfg_.batcher.kvBytesPerToken = cfg_.model.kvBytesPerToken();
    STEP_ASSERT(cfg_.totalComputeBw >= 2,
                "bandwidth pool too small to split");
    STEP_ASSERT(cfg_.numLayers > 0, "layer count must be positive");
}

int64_t
prefillFlopsPerToken(const ModelConfig& m, int64_t num_layers)
{
    int64_t d = m.numKvHeads * m.headDim;
    int64_t qkv_cols = m.numQHeads * m.headDim + 2 * d;
    int64_t per_layer = 2 * m.hidden * qkv_cols          // QKV proj
                        + 2 * d * m.hidden               // output proj
                        + m.topK * 3 * 2 * m.hidden *
                              m.moeIntermediate;         // SwiGLU expert
    return per_layer * num_layers;
}

int64_t
ServingEngine::prefillFlopsPerToken() const
{
    return runtime::prefillFlopsPerToken(cfg_.model, cfg_.numLayers);
}

EngineResult
ServingEngine::run(std::vector<Request>& reqs)
{
    STEP_ASSERT(std::is_sorted(reqs.begin(), reqs.end(),
                               [](const Request& a, const Request& b) {
                                   return a.arrival < b.arrival;
                               }),
                "request trace must be sorted by arrival");

    ContinuousBatcher batcher(cfg_.batcher);
    // Fresh cold cache per run: replays of one engine stay bit-identical.
    std::unique_ptr<PrefixCache> cache;
    if (cfg_.prefixCache.capacityTokens > 0) {
        cache = std::make_unique<PrefixCache>(cfg_.prefixCache);
        batcher.attachPrefixCache(cache.get());
    }
    EngineResult res;
    Rng iter_rng(cfg_.seed);
    const double fpt = static_cast<double>(prefillFlopsPerToken());

    // Tracing: scheduler events only matter at level >= Op, so the
    // per-resume branch in dam::Scheduler::drain stays cold below it.
    sched_.setTraceSink(trace_ && trace_->level() >= obs::TraceLevel::Op
                            ? trace_
                            : nullptr);
    std::unique_ptr<EngineCounters> ctr;
    if (trace_)
        ctr = std::make_unique<EngineCounters>(trace_->counters());
    std::unique_ptr<MetricsInstruments> mtr;
    if (metrics_)
        mtr = std::make_unique<MetricsInstruments>(*metrics_);

    // ---- fault tier ---------------------------------------------------
    const ReplicaFaultTimeline& faults = cfg_.faults;
    const bool have_faults = !faults.empty();
    bool have_deadlines = false;
    for (const Request& r : reqs)
        if (r.deadlineAt != 0) {
            have_deadlines = true;
            break;
        }
    std::unique_ptr<FaultCounters> fctr;
    if (trace_ && (have_faults || cfg_.admission || have_deadlines))
        fctr = std::make_unique<FaultCounters>(trace_->counters());
    // Stats of caches dropped by crashes, folded into the summary tail.
    PrefixCacheStats lostCacheStats;

    // ---- resilience tier ---------------------------------------------
    // Slowdown-drain edges: the cycle each qualifying slowdown window
    // has been observed long enough to trigger live migration.
    // Precomputed from the (already normalized, start-sorted) timeline —
    // data, like the fault plan itself.
    std::vector<dam::Cycle> drain_edges;
    if (cfg_.drain.enabled)
        for (const auto& s : faults.slowdowns)
            if (s.factor <= cfg_.drain.openBelowFactor &&
                s.end - s.start > cfg_.drain.detectCycles)
                drain_edges.push_back(s.start + cfg_.drain.detectCycles);
    size_t drain_idx = 0;
    size_t instant_idx = 0; ///< next cfg_.clusterInstants to emit
    std::unique_ptr<ResilienceCounters> rctr;
    if (trace_ && (cfg_.drain.enabled || !cfg_.clusterInstants.empty()))
        rctr = std::make_unique<ResilienceCounters>(trace_->counters());

    // Request completion: cache the full prompt+output stream (the next
    // turn of the session prefixes it), drop the admission pin, free the
    // KV reservation.
    int64_t terminal = 0;
    auto finish = [&](Request* r, dam::Cycle at) {
        r->state = ReqState::Finished;
        r->finishedAt = at;
        if (cache) {
            cache->insert(r->blockHashes,
                          static_cast<int64_t>(r->blockHashes.size()));
            cache->release(*r);
        }
        batcher.release(r);
        ++terminal;
        if (trace_) [[unlikely]] {
            trace_->reqFinished(r->id, r->attempt, at);
            if (fctr && r->deadlineAt != 0 && at > r->deadlineAt)
                trace_->counters().add(fctr->deadlineMisses, 1);
        }
        if (mtr) [[unlikely]] {
            metrics_->record(mtr->finished, at, 1);
            if (r->outputLen > 1)
                metrics_->record(
                    mtr->tpot, at,
                    static_cast<uint64_t>(std::llround(tpot(*r))));
            if (r->deadlineAt != 0 && at > r->deadlineAt)
                metrics_->record(mtr->deadlineMisses, at, 1);
            if (cfg_.slo.meets(*r))
                metrics_->record(mtr->sloGoodTokens, at,
                                 static_cast<uint64_t>(r->generated));
        }
    };
    // Terminal failure (replica crash): KV/cache bookkeeping is the
    // *caller's* job — a crash releases everything wholesale first.
    auto failReq = [&](Request* r, dam::Cycle at) {
        r->state = ReqState::Failed;
        r->finishedAt = at;
        ++terminal;
        if (trace_) [[unlikely]] {
            trace_->reqFailed(r->id, r->attempt, at);
            if (fctr)
                trace_->counters().add(fctr->requestsFailed, 1);
        }
        if (mtr) [[unlikely]]
            metrics_->record(mtr->failed, at, 1);
    };
    // Live migration exit: the incarnation ends here carrying
    // @p kv_tokens of computed KV for the handoff; the cluster turns it
    // into a re-arrival elsewhere. Like failReq, KV/cache bookkeeping
    // is the caller's job.
    auto migrateReq = [&](Request* r, dam::Cycle at, int64_t kv_tokens) {
        r->state = ReqState::Migrated;
        r->finishedAt = at;
        ++terminal;
        if (trace_) [[unlikely]] {
            trace_->reqMigrated(r->id, r->attempt, at, kv_tokens);
            if (rctr)
                trace_->counters().add(rctr->requestsMigrated, 1);
        }
        if (mtr) [[unlikely]]
            metrics_->record(mtr->migrated, at,
                             static_cast<uint64_t>(kv_tokens));
    };

    // Iteration-graph parameters shared across iterations; the per-
    // iteration pieces are the batch's KV lengths, the expert trace, and
    // the policy-assigned matmul bandwidth.
    DecoderParams dp;
    dp.cfg = cfg_.model;
    dp.attnStrategy = cfg_.attnStrategy;
    dp.attnRegions = cfg_.attnRegions;
    dp.kvTileRows = cfg_.kvTileRows;
    dp.moeRegions = cfg_.moeRegions;
    dp.moeTile = cfg_.moeTile;
    dp.denseTile = cfg_.denseTile;
    dp.weightTileCols = cfg_.weightTileCols;
    dp.seed = cfg_.seed;
    // Matmul pipelines the decode share is spread over: the two dense
    // projections, the attention regions, and the MoE regions.
    const int64_t decode_units =
        2 + cfg_.attnRegions +
        (cfg_.moeRegions > 0 ? cfg_.moeRegions : cfg_.model.numExperts);

    dam::Cycle now = 0;
    size_t next_arrival = 0;
    size_t down_idx = 0; ///< next unprocessed crash window
    const auto total = static_cast<int64_t>(reqs.size());

    // Structured stall reporting: dump what was blocked and what held
    // the channels (KV reservations, cache pins), then unwind.
    auto buildStall = [&](std::string reason) {
        StallDiagnostic d;
        d.reason = std::move(reason);
        d.now = now;
        d.iterations = res.iterations;
        d.runningRequests = static_cast<int64_t>(batcher.running().size());
        d.kvReservedBytes = batcher.kvBytesReserved();
        d.kvBudgetBytes = batcher.kvBudgetBytes();
        if (cache) {
            d.cachePinnedRequests = cache->pinnedRequests();
            d.cacheOccupancyTokens = cache->occupancyTokens();
        }
        for (const Request* r : batcher.waiting())
            d.blocked.push_back({r->id, r->promptLen, r->outputLen,
                                 r->kvReservationTokens() *
                                     cfg_.batcher.kvBytesPerToken,
                                 r->arrival});
        return StallError(std::move(d));
    };

    while (terminal < total) {
        if (res.iterations >= kMaxIterations)
            throw buildStall("iteration bound exceeded without progress");

        // ---- deliver arrivals and crash windows in cycle order -------
        // Both can lie anywhere inside the iteration that just ended, so
        // they are replayed earliest-first: an arrival before the crash
        // is enqueued (and then dies with the replica), one after the
        // recovery enqueues into the restarted replica.
        while (true) {
            const bool has_arr = next_arrival < reqs.size() &&
                                 reqs[next_arrival].arrival <= now;
            const bool has_crash = down_idx < faults.downs.size() &&
                                   faults.downs[down_idx].failAt <= now;
            // Resilience events interleave in cycle order; ties go to
            // them so the trace stamps the cause (breaker flip, drain
            // trigger) before its effects. With the tier disabled both
            // lists are empty and this is the historical loop verbatim.
            const dam::Cycle arr_at =
                has_arr ? reqs[next_arrival].arrival
                        : ReplicaFaultTimeline::kNoEvent;
            const dam::Cycle crash_at =
                has_crash ? faults.downs[down_idx].failAt
                          : ReplicaFaultTimeline::kNoEvent;
            const bool has_instant =
                instant_idx < cfg_.clusterInstants.size() &&
                cfg_.clusterInstants[instant_idx].at <= now;
            const bool has_drain = drain_idx < drain_edges.size() &&
                                   drain_edges[drain_idx] <= now;
            const dam::Cycle inst_at =
                has_instant ? cfg_.clusterInstants[instant_idx].at
                            : ReplicaFaultTimeline::kNoEvent;
            const dam::Cycle drain_at =
                has_drain ? drain_edges[drain_idx]
                          : ReplicaFaultTimeline::kNoEvent;
            if (has_instant && inst_at <= arr_at && inst_at <= crash_at &&
                inst_at <= drain_at) {
                const ClusterInstant& ci =
                    cfg_.clusterInstants[instant_idx++];
                if (trace_) [[unlikely]]
                    trace_->instant(clusterInstantName(ci.kind), ci.at,
                                    -1, ci.value);
                continue;
            }
            if (has_drain && drain_at <= arr_at && drain_at <= crash_at) {
                const dam::Cycle at = drain_edges[drain_idx++];
                // Queued and prefilling requests leave for a healthy
                // replica; decoding requests stay and finish locally at
                // the degraded bandwidth (shipping a half-generated
                // stream would cost more than it saves).
                const std::vector<Request*> running(batcher.running());
                for (Request* r : running) {
                    if (r->state != ReqState::Prefilling)
                        continue;
                    const int64_t kv = r->prefilledTokens;
                    if (cache)
                        cache->release(*r);
                    batcher.release(r);
                    migrateReq(r, at, kv);
                }
                for (Request* r : batcher.drainWaiting()) {
                    r->cachedPrefixTokens = 0; // no pin was ever taken
                    migrateReq(r, at, 0);
                }
                continue;
            }
            if (has_arr &&
                (!has_crash || reqs[next_arrival].arrival <=
                                   faults.downs[down_idx].failAt)) {
                Request& r = reqs[next_arrival++];
                if (trace_) [[unlikely]] {
                    trace_->reqArrived(r.id, r.sessionId, r.turn,
                                       r.promptLen, r.outputLen, r.arrival,
                                       r.attempt);
                    if (fctr && r.attempt > 0)
                        trace_->counters().add(fctr->requestsRetried, 1);
                }
                if (have_faults && faults.downAt(r.arrival)) {
                    // Connection refused: the replica was down when the
                    // request arrived.
                    failReq(&r, r.arrival);
                } else {
                    batcher.enqueue(&r);
                }
                continue;
            }
            if (has_crash) {
                const ReplicaFaultTimeline::Down w =
                    faults.downs[down_idx++];
                if (trace_) [[unlikely]] {
                    trace_->faultDown(now, w.failAt, w.recoverAt);
                    if (fctr)
                        trace_->counters().add(fctr->replicaFaults, 1);
                }
                // Everything in flight or queued dies with the replica;
                // KV reservations and cache pins are torn down wholesale
                // (the invariant checks below catch any leak).
                const std::vector<Request*> running(batcher.running());
                for (Request* r : running) {
                    if (cache)
                        cache->release(*r);
                    batcher.release(r);
                    failReq(r, now);
                }
                for (Request* r : batcher.drainWaiting()) {
                    r->cachedPrefixTokens = 0; // no pin was ever taken
                    failReq(r, now);
                }
                STEP_ASSERT(batcher.kvBytesReserved() == 0,
                            "crash teardown leaked "
                                << batcher.kvBytesReserved()
                                << " B of KV reservations");
                if (cache) {
                    STEP_ASSERT(cache->pinnedRequests() == 0,
                                "crash teardown leaked "
                                    << cache->pinnedRequests()
                                    << " prefix-cache pins");
                    // The cache's KV blocks died with the replica:
                    // fold its stats away and restart cold, so
                    // re-routed requests re-prefill from scratch.
                    const PrefixCacheStats& st = cache->stats();
                    lostCacheStats.lookups += st.lookups;
                    lostCacheStats.hits += st.hits;
                    lostCacheStats.tokensSaved += st.tokensSaved;
                    lostCacheStats.peakOccupancyTokens =
                        std::max(lostCacheStats.peakOccupancyTokens,
                                 st.peakOccupancyTokens);
                    cache = std::make_unique<PrefixCache>(
                        cfg_.prefixCache);
                    batcher.attachPrefixCache(cache.get());
                }
                if (w.recoverAt == 0) {
                    // Dead forever: every remaining arrival is refused
                    // the moment it shows up.
                    while (next_arrival < reqs.size()) {
                        Request& r = reqs[next_arrival++];
                        if (trace_) [[unlikely]]
                            trace_->reqArrived(r.id, r.sessionId, r.turn,
                                               r.promptLen, r.outputLen,
                                               r.arrival, r.attempt);
                        failReq(&r, r.arrival);
                    }
                } else if (w.recoverAt > now) {
                    now = w.recoverAt;
                    if (trace_) [[unlikely]]
                        trace_->faultUp(now);
                } else if (trace_) [[unlikely]] {
                    // The iteration that just ended spans the whole
                    // outage: down and up are delivered at the same
                    // boundary. Emit the up so the trace's down/up
                    // alternation invariant holds.
                    trace_->faultUp(now);
                }
                continue;
            }
            break;
        }
        if (terminal >= total)
            break;

        // Slowdown windows scale the bandwidth pool this iteration
        // splits (>= 2 so the policy can always split something).
        int64_t eff_bw = cfg_.totalComputeBw;
        if (have_faults) {
            const double f = faults.bwFactorAt(now);
            if (f < 1.0)
                eff_bw = std::max<int64_t>(
                    2, static_cast<int64_t>(std::llround(
                           static_cast<double>(cfg_.totalComputeBw) * f)));
        }

        AdmissionContext actx;
        actx.now = now;
        actx.prefillFlopsPerToken = fpt;
        actx.totalComputeBw = eff_bw;
        actx.nominalComputeBw = cfg_.totalComputeBw;
        // Idle-TTL sweep before admission: entries that expire this
        // round cannot be hit by this round's lookups (TTL 0 = off and
        // the calls are never reached).
        if (cache && cfg_.prefixCache.idleTtlCycles > 0) {
            cache->setClock(now);
            cache->evictIdle();
        }
        const ContinuousBatcher::AdmitResult adm =
            batcher.admit(cfg_.admission, actx);
        for (Request* r : adm.shed) {
            r->finishedAt = now;
            ++terminal;
            if (trace_) [[unlikely]] {
                trace_->reqShed(r->id, r->attempt, now);
                if (fctr)
                    trace_->counters().add(fctr->requestsShed, 1);
            }
            if (mtr) [[unlikely]]
                metrics_->record(mtr->shed, now, 1);
        }
        if (trace_) [[unlikely]] {
            for (const Request* r : adm.admitted)
                trace_->reqAdmitted(r->id, r->attempt, r->cachedPrefixTokens, now);
            for (const Request* r : adm.capped) {
                trace_->reqCapped(r->id, now, r->outputLen);
                if (rctr)
                    trace_->counters().add(rctr->requestsCapped, 1);
            }
        }

        if (batcher.running().empty()) {
            if (batcher.waitingCount() > 0) {
                if (!adm.shed.empty())
                    continue; // shedding made progress; re-admit
                // Empty machine, nothing admitted: the head can never
                // fit the KV budget and no policy sheds it.
                throw buildStall(
                    "head-of-line request can never be admitted");
            }
            if (terminal >= total)
                break;
            if (next_arrival >= reqs.size())
                throw buildStall("idle with unfinished requests");
            now = reqs[next_arrival].arrival;
            continue;
        }

        // ---- policy decision for this iteration ----------------------
        LoadSnapshot load;
        load.waitingRequests = batcher.waitingCount();
        load.waitingPromptTokens = batcher.waitingPromptTokens();
        std::vector<Request*> decodes;
        std::vector<Request*> prefills;
        for (Request* r : batcher.running()) {
            if (r->state == ReqState::Decoding) {
                decodes.push_back(r);
            } else {
                prefills.push_back(r);
                load.pendingPrefillTokens +=
                    r->promptLen - r->prefilledTokens;
            }
        }
        load.activeDecodes = static_cast<int64_t>(decodes.size());
        BwSplit split = policy_.split(load, eff_bw);

        // ---- iteration length ---------------------------------------
        dam::Cycle iter_cycles = 0;
        int64_t decode_flops = 0;
        if (!decodes.empty()) {
            // One decode step for the whole batch: a decoder-layer pass
            // over the current composition, simulated on the substrate.
            IterationSpec spec;
            for (Request* r : decodes)
                spec.kvLens.push_back(r->contextLen());
            spec.trace = generateExpertTrace(
                iter_rng, static_cast<int64_t>(decodes.size()),
                cfg_.model.numExperts, cfg_.model.topK);
            dp.batch = static_cast<int64_t>(decodes.size());
            dp.computeBwPerMatmul = std::max<int64_t>(
                16, split.decodeBw / decode_units);
            dp.cfg.moeMatmulBw = dp.computeBwPerMatmul;
            if (cfg_.recycleGraphs && !iterGraph_)
                iterGraph_ = std::make_unique<Graph>(SimConfig{},
                                                     &arena_);
            if (trace_) [[unlikely]] {
                // Graph runs stamp events in graph-local cycles; anchor
                // them on the serving timeline. iter_cycles >= the
                // simulated span, so successive bases stay monotone.
                trace_->setTimeBase(now);
            }
            static constexpr verify::VerifyOptions kVerifyAll{};
            SimResult sim = runDecoderIteration(
                dp, spec, &sched_,
                cfg_.recycleGraphs ? iterGraph_.get() : nullptr,
                cfg_.recycleGraphs ? &rearmHandles_ : nullptr,
                cfg_.verifyGraphs ? &kVerifyAll : nullptr);
            iter_cycles = sim.cycles * static_cast<dam::Cycle>(
                cfg_.numLayers);
            decode_flops = sim.totalFlops * cfg_.numLayers;
            if (ctr) [[unlikely]]
                trace_->counters().add(
                    ctr->contextSwitches,
                    static_cast<int64_t>(sim.contextSwitches));
        } else {
            // Prefill-only iteration: run until the head request's
            // prompt completes, but wake up for the next arrival.
            STEP_ASSERT(split.prefillBw > 0,
                        "policy starves prefill with no decode work");
            // Only the uncached suffix costs prefill flops; the cached
            // prefix's KV is already resident, and migrated-in KV skips
            // compute the same way (>= 1 suffix token always remains,
            // see Request::prefillSkipTokens).
            const Request* head = prefills.front();
            double remaining =
                static_cast<double>(head->promptLen -
                                    head->prefillSkipTokens()) *
                    fpt -
                head->prefillFlopsDone;
            iter_cycles = static_cast<dam::Cycle>(std::ceil(
                remaining / static_cast<double>(split.prefillBw)));
            iter_cycles = std::max<dam::Cycle>(1, iter_cycles);
            if (next_arrival < reqs.size()) {
                dam::Cycle gap = reqs[next_arrival].arrival - now;
                iter_cycles = std::max<dam::Cycle>(
                    1, std::min(iter_cycles, gap));
            }
            // Wake exactly on fault-timeline edges too, so crashes and
            // bandwidth changes land on the cycle they were scripted at.
            if (have_faults) {
                const dam::Cycle edge = faults.nextEventAfter(now);
                if (edge != ReplicaFaultTimeline::kNoEvent && edge > now)
                    iter_cycles = std::max<dam::Cycle>(
                        1, std::min(iter_cycles, edge - now));
            }
            // ... and on resilience edges (drain triggers, cluster
            // instants), for the same exact-cycle reason.
            if (drain_idx < drain_edges.size() &&
                drain_edges[drain_idx] > now)
                iter_cycles = std::max<dam::Cycle>(
                    1, std::min(iter_cycles,
                                drain_edges[drain_idx] - now));
            if (instant_idx < cfg_.clusterInstants.size() &&
                cfg_.clusterInstants[instant_idx].at > now)
                iter_cycles = std::max<dam::Cycle>(
                    1, std::min(iter_cycles,
                                cfg_.clusterInstants[instant_idx].at -
                                    now));
        }

        // ---- prefill progress (FIFO, analytic) ----------------------
        double budget = static_cast<double>(split.prefillBw) *
                        static_cast<double>(iter_cycles);
        double consumed = 0.0;
        int64_t prefilled_tokens = 0;
        int64_t first_tokens = 0;
        for (Request* r : prefills) {
            if (budget <= 0.0)
                break;
            double need =
                static_cast<double>(r->promptLen -
                                    r->prefillSkipTokens()) *
                    fpt -
                r->prefillFlopsDone;
            double use = std::min(need, budget);
            budget -= use;
            consumed += use;
            r->prefillFlopsDone += use;
            int64_t tok_before = r->prefilledTokens;
            r->prefilledTokens = std::min(
                r->promptLen,
                r->prefillSkipTokens() +
                    static_cast<int64_t>(r->prefillFlopsDone / fpt));
            prefilled_tokens += r->prefilledTokens - tok_before;
            if (use >= need) {
                // Prompt done: the first output token is emitted at the
                // point inside the iteration where its prefill finished.
                auto offset = static_cast<dam::Cycle>(std::ceil(
                    consumed / static_cast<double>(split.prefillBw)));
                r->firstTokenAt =
                    now + std::min(offset, iter_cycles);
                r->generated = 1;
                ++first_tokens;
                r->state = ReqState::Decoding;
                if (trace_) [[unlikely]]
                    trace_->reqFirstToken(r->id, r->attempt, r->firstTokenAt);
                if (mtr) [[unlikely]]
                    metrics_->record(mtr->ttft, r->firstTokenAt,
                                     r->firstTokenAt - r->arrival);
                // The completed prompt prefix becomes cacheable for the
                // session's (or any prefix-sharing) next request.
                if (cache)
                    cache->insert(r->blockHashes, r->promptBlocks);
                if (r->generated >= r->outputLen)
                    finish(r, r->firstTokenAt);
            }
        }

        // ---- decode progress ----------------------------------------
        for (Request* r : decodes) {
            r->generated += 1;
            if (r->generated >= r->outputLen)
                finish(r, now + iter_cycles);
        }

        // ---- accounting ---------------------------------------------
        IterationSample sample;
        sample.start = now;
        sample.length = iter_cycles;
        sample.prefillBw = split.prefillBw;
        sample.decodeBw = split.decodeBw;
        sample.usefulFlops =
            decode_flops + static_cast<int64_t>(consumed);
        sample.decodeBatch = static_cast<int64_t>(decodes.size());
        sample.prefillTokens = prefilled_tokens;
        res.timeline.record(sample);
        ++res.iterations;

        now += iter_cycles;

        if (ctr) [[unlikely]] {
            obs::CounterRegistry& c = trace_->counters();
            c.set(ctr->queueDepth, batcher.waitingCount());
            c.set(ctr->runningRequests,
                  static_cast<int64_t>(batcher.running().size()));
            c.set(ctr->decodeBatch, sample.decodeBatch);
            c.set(ctr->kvReservedBytes, batcher.kvBytesReserved());
            if (cache)
                c.set(ctr->prefixCacheTokens, cache->occupancyTokens());
            c.add(ctr->iterations, 1);
            c.add(ctr->prefillTokens, prefilled_tokens);
            // Every decode emits one token; prefill completions emit
            // their first token inside this iteration too.
            c.add(ctr->generatedTokens,
                  static_cast<int64_t>(decodes.size()) + first_tokens);
            trace_->sampleCounters(now);
        }
        if (mtr) [[unlikely]] {
            metrics_->record(mtr->queueDepth, now,
                             static_cast<uint64_t>(
                                 batcher.waitingCount()));
            metrics_->record(mtr->runningRequests, now,
                             batcher.running().size());
            metrics_->record(mtr->decodeBatch, now,
                             static_cast<uint64_t>(sample.decodeBatch));
            metrics_->record(mtr->kvReservedBytes, now,
                             static_cast<uint64_t>(
                                 batcher.kvBytesReserved()));
            metrics_->record(mtr->generatedTokens, now,
                             decodes.size() +
                                 static_cast<uint64_t>(first_tokens));
            metrics_->record(mtr->prefillTokens, now,
                             static_cast<uint64_t>(prefilled_tokens));
            metrics_->record(mtr->iterCycles, now, iter_cycles);
        }
    }

    // Abort-path accounting invariant: every KV reservation and prefix
    // pin taken during the run — including ones for requests that
    // failed or were shed — must have been returned.
    STEP_ASSERT(batcher.kvBytesReserved() == 0,
                "run ended with " << batcher.kvBytesReserved()
                                  << " B of KV still reserved");
    if (cache)
        STEP_ASSERT(cache->pinnedRequests() == 0,
                    "run ended with " << cache->pinnedRequests()
                                      << " prefix-cache pins held");

    res.summary = summarize(reqs, res.timeline.span(), cfg_.slo);
    res.summary.computeUtilization =
        res.timeline.computeUtilization(cfg_.totalComputeBw);
    if (cache) {
        // Fold in caches lost to crashes: their lookups/hits happened
        // even though their content died with the replica.
        PrefixCacheStats st = cache->stats();
        st.lookups += lostCacheStats.lookups;
        st.hits += lostCacheStats.hits;
        st.tokensSaved += lostCacheStats.tokensSaved;
        st.peakOccupancyTokens = std::max(
            st.peakOccupancyTokens, lostCacheStats.peakOccupancyTokens);
        res.summary.prefixLookups = st.lookups;
        res.summary.prefixHits = st.hits;
        res.summary.prefixTokensSaved = st.tokensSaved;
        res.summary.prefixPeakOccupancyTokens = st.peakOccupancyTokens;
        // A single engine is its own busiest replica.
        res.summary.prefixPeakOccupancyMaxReplica =
            st.peakOccupancyTokens;
        // summarize ran before the cache counters were attached.
        refreshPrefixDerivedStats(res.summary);
    }
    if (trace_)
        res.summary.counters = trace_->counters().snapshot();
    if (metrics_)
        applySloWindows(res.summary, *metrics_, cfg_.slo);
    return res;
}

} // namespace step::runtime
