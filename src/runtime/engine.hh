/**
 * @file
 * Continuous-batching serving engine on the DAM substrate. Per batching
 * iteration the engine (1) admits arrivals through the KV-budgeted
 * batcher — with the prefix cache enabled, admission charges KV and
 * prefill only for the prompt suffix the cache does not already hold —
 * (2) asks the active dynamic-parallelism policy to split the compute
 * bandwidth between prefill and decode, (3) instantiates one
 * decoder-layer STeP graph for the *current* decode-batch composition
 * (per-request KV lengths + a fresh expert-routing trace) and runs it
 * through a reused dam::Scheduler, and (4) advances per-request state,
 * recording TTFT/TPOT events and inserting completed prefixes back into
 * the cache. Prefill progress is modeled analytically at the
 * policy-allocated bandwidth (prefill is dense and static — the
 * dynamism the simulated graphs must capture lives in decode).
 */
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "analysis/utilization.hh"
#include "runtime/batcher.hh"
#include "runtime/faults.hh"
#include "runtime/metrics.hh"
#include "runtime/policy.hh"
#include "runtime/prefixcache.hh"
#include "runtime/request.hh"
#include "runtime/resilience.hh"
#include "workloads/decoder.hh"

namespace step::obs {
class TraceSink;
class MetricsRegistry;
}

namespace step::runtime {

struct EngineConfig
{
    ModelConfig model;
    /** Layers the per-layer iteration cycles scale by; 0 = model value. */
    int64_t numLayers = 0;
    /** Compute-bandwidth pool the policy splits (FLOPs/cycle). */
    int64_t totalComputeBw = 8192;

    // ---- iteration-graph knobs (see DecoderParams) -------------------
    ParStrategy attnStrategy = ParStrategy::Dynamic;
    int64_t attnRegions = 4;
    int64_t kvTileRows = 32;
    int64_t moeRegions = 4;
    int64_t moeTile = 16;
    int64_t denseTile = 16;
    int64_t weightTileCols = 64;

    BatcherConfig batcher; ///< kvBytesPerToken 0 = derive from model
    /**
     * KV prefix cache (capacityTokens 0 = disabled, the default — the
     * engine is then bit-identical to a cache-less build). When
     * enabled, admission charges prefill flops and KV reservation only
     * for the uncached suffix, completed prefixes are inserted back,
     * and ServingSummary reports hit-rate / tokens-saved / occupancy.
     * Each run() starts with a cold cache so replays stay seeded.
     */
    PrefixCacheConfig prefixCache;
    SloConfig slo;
    uint64_t seed = 42;

    /**
     * This replica's fault timeline (empty = fault-free, the default —
     * the engine is then bit-identical to a fault-less build). A crash
     * fails every in-flight and queued request, releases their KV
     * reservations and prefix-cache pins, and drops the cache (its KV
     * content died with the replica); arrivals during downtime are
     * refused on arrival. Slowdown windows scale totalComputeBw by
     * their factor. Faults take effect at iteration boundaries (the
     * engine's event granularity); analytic prefill iterations are
     * clamped to the next timeline edge so bandwidth changes land on
     * exact cycles.
     */
    ReplicaFaultTimeline faults;
    /**
     * Admission/shedding policy consulted per waiting request at every
     * admission round (not owned; may be null = never shed). See
     * AdmissionPolicy; with one attached, requests that could never fit
     * the KV budget are shed instead of stalling the engine.
     */
    const AdmissionPolicy* admission = nullptr;

    /**
     * Engine-side live-migration trigger (see SlowdownDrainConfig):
     * when a deep slowdown window has run for the detection lag, queued
     * and prefilling requests leave in state Migrated (with finishedAt
     * and their prefill progress as the KV tokens to hand off) instead
     * of grinding through the degraded window; the cluster reschedules
     * them. Disabled (default) the engine is bit-identical to a
     * drain-less build.
     */
    SlowdownDrainConfig drain;
    /**
     * Cluster-scope instants (breaker flips, autoscale steps) for this
     * replica's trace, sorted by cycle. The engine emits each from its
     * own loop when the clock passes it — the sink is single-writer, so
     * the coordinator cannot append them itself. Empty (default) emits
     * nothing.
     */
    std::vector<ClusterInstant> clusterInstants;

    /**
     * Recycle one arena-backed decoder graph across batching iterations
     * instead of rebuilding from the heap each time (see
     * Graph::recycle). Metrics are identical either way; the rebuild
     * path remains for A/B verification.
     */
    bool recycleGraphs = true;

    /**
     * Statically verify every freshly built iteration graph — the first
     * build and each rearm structural-key fallback — before running it
     * (src/verify; error findings are fatal). Read-only, so enabling it
     * is byte-identical to disabling it on a well-formed graph; on by
     * default in debug builds, opt-in (--verify on the sims) elsewhere.
     */
#ifndef NDEBUG
    bool verifyGraphs = true;
#else
    bool verifyGraphs = false;
#endif

    EngineConfig();
};

struct EngineResult
{
    ServingSummary summary;
    UtilizationTimeline timeline;
    int64_t iterations = 0;
};

/**
 * Analytic prefill cost of one prompt token across @p num_layers layers
 * (QKV + output projections and the top-K expert FFN; prompt attention
 * is projection-dominated and left out of the model). Shared by the
 * engine's prefill accounting and the cluster router's service-time
 * estimates.
 */
int64_t prefillFlopsPerToken(const ModelConfig& m, int64_t num_layers);

class ServingEngine
{
  public:
    ServingEngine(EngineConfig cfg, const Policy& policy);

    /**
     * Serve @p reqs (mutated in place: states, TTFT/finish stamps) until
     * every request reaches a terminal state — Finished, Failed/Shed
     * under the fault tier, or Migrated when a slowdown drain hands the
     * request off for the cluster to reschedule. Deterministic for fixed (config, policy,
     * trace). Throws StallError (with a scheduler-state diagnostic)
     * when no admission progress is possible, e.g. a head-of-line
     * request that can never fit the KV budget with no admission policy
     * attached to shed it.
     */
    EngineResult run(std::vector<Request>& reqs);

    /**
     * Analytic prefill cost of one prompt token across all layers
     * (QKV + output projections and the top-K expert FFN; prompt
     * attention is projection-dominated and left out of the model).
     */
    int64_t prefillFlopsPerToken() const;

    /**
     * Attach (or detach, with nullptr) a trace sink. run() then reports
     * request lifecycle instants and samples the counter registry each
     * iteration, and — at level >= Op — forwards the iteration graphs'
     * scheduler events with the engine clock as time base. The sink
     * must outlive the engine's runs; with none attached the only cost
     * is one predicted branch per hook site.
     */
    void attachTrace(obs::TraceSink* sink) { trace_ = sink; }
    obs::TraceSink* trace() const { return trace_; }

    /**
     * Attach (or detach, with nullptr) a metrics registry. run() then
     * registers the engine's instrument set (TTFT/TPOT histograms,
     * per-iteration gauges, lifecycle event series — see README) and
     * records into it at iteration boundaries and request lifecycle
     * events, and fills the summary's windowed-SLO fields. Sampling
     * never influences control flow, so a metrics-on run is identical
     * to a metrics-off run in every other output byte; with none
     * attached the only cost is one predicted branch per hook site
     * (the hot path stays allocation-free).
     */
    void attachMetrics(obs::MetricsRegistry* m) { metrics_ = m; }
    obs::MetricsRegistry* metrics() const { return metrics_; }

  private:
    EngineConfig cfg_;
    const Policy& policy_;
    obs::TraceSink* trace_ = nullptr;
    obs::MetricsRegistry* metrics_ = nullptr;
    dam::Scheduler sched_; ///< reused across per-iteration graphs
    GraphArena arena_;     ///< backs the recycled iteration graph
    std::unique_ptr<Graph> iterGraph_; ///< lazily created when recycling
    /** Structure-preserving rearm handles for iterGraph_: while the
     *  decode batch's structural key is stable, iterations patch the
     *  recycled graph in place instead of rebuilding it. */
    DecoderRearmHandles rearmHandles_;
};

} // namespace step::runtime
