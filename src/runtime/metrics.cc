#include "runtime/metrics.hh"

#include <algorithm>
#include <iostream>

#include "obs/metrics.hh"
#include "support/error.hh"
#include "support/stats.hh"

namespace step::runtime {

double
ttft(const Request& r)
{
    STEP_ASSERT(r.generated >= 1,
                "TTFT of request " << r.id << " before its first token");
    return static_cast<double>(r.firstTokenAt - r.arrival);
}

double
tpot(const Request& r)
{
    if (r.outputLen <= 1)
        return 0.0;
    STEP_ASSERT(r.done(), "TPOT of unfinished request " << r.id);
    return static_cast<double>(r.finishedAt - r.firstTokenAt) /
           static_cast<double>(r.outputLen - 1);
}

namespace {

/** Fill everything derivable from the raw fields — percentiles and
 *  means from the sample vectors (each sorted once), rates from the
 *  token totals over the makespan. Shared tail of summarize and
 *  mergeSummaries. */
void
finalizeDerivedStats(ServingSummary& s)
{
    std::vector<double> ttft = s.ttftSamples;
    std::sort(ttft.begin(), ttft.end());
    std::vector<double> tpot = s.tpotSamples;
    std::sort(tpot.begin(), tpot.end());
    s.ttftP50 = percentileSorted(ttft, 50.0);
    s.ttftP95 = percentileSorted(ttft, 95.0);
    s.ttftP99 = percentileSorted(ttft, 99.0);
    s.ttftMean = mean(ttft);
    s.tpotP50 = percentileSorted(tpot, 50.0);
    s.tpotP95 = percentileSorted(tpot, 95.0);
    s.tpotP99 = percentileSorted(tpot, 99.0);
    s.tpotMean = mean(tpot);
    refreshPrefixDerivedStats(s);
    refreshAvailability(s);
    if (s.makespan > 0) {
        double kcycles = static_cast<double>(s.makespan) / 1000.0;
        s.throughputTokensPerKcycle =
            static_cast<double>(s.generatedTokens) / kcycles;
        s.goodputTokensPerKcycle =
            static_cast<double>(s.sloGoodTokens) / kcycles;
    }
}

} // namespace

void
refreshAvailability(ServingSummary& s)
{
    const int64_t terminal =
        s.completed + s.failedRequests + s.shedRequests;
    s.availability =
        terminal > 0 ? static_cast<double>(s.completed) /
                           static_cast<double>(terminal)
                     : 1.0;
}

void
refreshPrefixDerivedStats(ServingSummary& s)
{
    s.prefixHitRate =
        s.prefixLookups > 0
            ? static_cast<double>(s.prefixHits) /
                  static_cast<double>(s.prefixLookups)
            : 0.0;
    s.prefillTokensSavedFrac =
        s.promptTokens > 0
            ? static_cast<double>(s.prefixTokensSaved) /
                  static_cast<double>(s.promptTokens)
            : 0.0;
}

ServingSummary
summarize(const std::vector<Request>& reqs, dam::Cycle makespan,
          const SloConfig& slo)
{
    ServingSummary s;
    s.makespan = makespan;
    for (const Request& r : reqs) {
        if (r.state == ReqState::Failed) {
            // The engine sees every crash casualty as failed; a cluster
            // reclassifies the retried ones (see ServingCluster::run).
            ++s.failedRequests;
            continue;
        }
        if (r.state == ReqState::Shed) {
            ++s.shedRequests;
            continue;
        }
        if (r.state == ReqState::Migrated) {
            // In-transit handoff: the incarnation that replaces it is
            // accounted at its target replica.
            ++s.migratedRequests;
            continue;
        }
        if (!r.done())
            continue;
        if (r.deadlineAt != 0 && r.finishedAt > r.deadlineAt)
            ++s.deadlineMisses;
        ++s.completed;
        s.generatedTokens += r.generated;
        s.promptTokens += r.promptLen;
        s.ttftSamples.push_back(ttft(r));
        if (r.outputLen > 1)
            s.tpotSamples.push_back(tpot(r));
        if (slo.meets(r)) {
            ++s.sloCompliant;
            s.sloGoodTokens += r.generated;
        }
    }
    finalizeDerivedStats(s);
    return s;
}

ServingSummary
mergeSummaries(const std::vector<ServingSummary>& parts)
{
    ServingSummary m;
    for (const ServingSummary& p : parts) {
        m.completed += p.completed;
        m.generatedTokens += p.generatedTokens;
        m.failedRequests += p.failedRequests;
        m.retriedRequests += p.retriedRequests;
        m.shedRequests += p.shedRequests;
        m.migratedRequests += p.migratedRequests;
        m.deadlineMisses += p.deadlineMisses;
        m.sloCompliant += p.sloCompliant;
        m.sloGoodTokens += p.sloGoodTokens;
        m.promptTokens += p.promptTokens;
        m.prefixLookups += p.prefixLookups;
        m.prefixHits += p.prefixHits;
        m.prefixTokensSaved += p.prefixTokensSaved;
        m.prefixPeakOccupancyTokens += p.prefixPeakOccupancyTokens;
        // Carry the per-replica peak: a part that is itself a merge
        // reports its busiest replica; a leaf summary (maxReplica still
        // 0) is one replica, so its own peak is the carrier.
        const int64_t part_peak =
            p.prefixPeakOccupancyMaxReplica != 0
                ? p.prefixPeakOccupancyMaxReplica
                : p.prefixPeakOccupancyTokens;
        m.prefixPeakOccupancyMaxReplica =
            std::max(m.prefixPeakOccupancyMaxReplica, part_peak);
        for (const obs::CounterSample& c : p.counters) {
            auto it = std::find_if(m.counters.begin(), m.counters.end(),
                                   [&](const obs::CounterSample& x) {
                                       return x.name == c.name;
                                   });
            if (it == m.counters.end())
                m.counters.push_back(c);
            else if (c.monotonic)
                it->value += c.value;
            else
                it->value = std::max(it->value, c.value);
        }
        m.makespan = std::max(m.makespan, p.makespan);
        m.ttftSamples.insert(m.ttftSamples.end(), p.ttftSamples.begin(),
                             p.ttftSamples.end());
        m.tpotSamples.insert(m.tpotSamples.end(), p.tpotSamples.begin(),
                             p.tpotSamples.end());
    }
    finalizeDerivedStats(m);
    return m;
}

void
printSummary(const ServingSummary& s, std::ostream& os)
{
    os << "completed requests : " << s.completed << " ("
       << s.generatedTokens << " tokens, " << s.sloCompliant
       << " within SLO)\n"
       << "makespan           : " << s.makespan << " cycles\n"
       << "TTFT p50/p99       : " << s.ttftP50 << " / " << s.ttftP99
       << " cycles\n"
       << "TPOT p50/p99       : " << s.tpotP50 << " / " << s.tpotP99
       << " cycles/token\n"
       << "throughput         : " << s.throughputTokensPerKcycle
       << " tokens/kcycle\n"
       << "goodput (SLO)      : " << s.goodputTokensPerKcycle
       << " tokens/kcycle\n"
       << "compute utilization: " << 100.0 * s.computeUtilization
       << " %\n";
    // Fault line only when the fault tier did something: a fault-free,
    // deadline-less run prints bytes identical to earlier builds.
    if (s.failedRequests + s.retriedRequests + s.shedRequests +
            s.migratedRequests + s.deadlineMisses >
        0) {
        os << "fault tolerance    : " << s.failedRequests << " failed, "
           << s.retriedRequests << " retried, " << s.shedRequests
           << " shed, " << s.deadlineMisses << " deadline misses, "
           << 100.0 * s.availability << " % availability";
        // Migration sub-clause only when it happened: fault lines from
        // migration-free runs keep their exact historical bytes.
        if (s.migratedRequests > 0)
            os << ", " << s.migratedRequests << " migrated";
        os << "\n";
    }
    // SLO-window line only when a metrics registry fed the run: the
    // fault-line pattern, so metrics-off runs keep their exact bytes.
    if (s.sloWindows > 0) {
        os << "slo windows        : " << s.sloWindowsAttained << "/"
           << s.sloWindows << " attained ("
           << 100.0 * static_cast<double>(s.sloWindowsAttained) /
                  static_cast<double>(s.sloWindows)
           << " %), worst window p95 TTFT " << s.sloWorstWindowP95Ttft
           << " cycles, p95 TPOT " << s.sloWorstWindowP95Tpot
           << " cycles/token\n";
    }
    if (s.prefixLookups > 0) {
        os << "prefix cache       : " << 100.0 * s.prefixHitRate
           << " % hit rate (" << s.prefixHits << "/" << s.prefixLookups
           << "), " << s.prefixTokensSaved << "/" << s.promptTokens
           << " prompt tokens served from cache ("
           << 100.0 * s.prefillTokensSavedFrac << " % prefill saved), "
           << "peak occupancy " << s.prefixPeakOccupancyTokens
           << " KV tokens summed bound ("
           << (s.prefixPeakOccupancyMaxReplica != 0
                   ? s.prefixPeakOccupancyMaxReplica
                   : s.prefixPeakOccupancyTokens)
           << " busiest replica)\n";
    }
    if (!s.counters.empty()) {
        os << "counters           :";
        for (const obs::CounterSample& c : s.counters)
            os << " " << c.name << "=" << c.value;
        os << "\n";
    }
}

SloWindowStats
computeSloWindows(const obs::MetricsRegistry& m, const SloConfig& slo)
{
    SloWindowStats st;
    const obs::MetricsRegistry::Instrument* ttft_i =
        m.find("ttft_cycles");
    const obs::MetricsRegistry::Instrument* tpot_i =
        m.find("tpot_cycles");
    const obs::MetricsRegistry::Instrument* miss_i =
        m.find("deadline_misses");
    size_t slots = 0;
    if (ttft_i)
        slots = std::max(slots, ttft_i->series.windowSlots());
    if (tpot_i)
        slots = std::max(slots, tpot_i->series.windowSlots());
    for (size_t w = 0; w < slots; ++w) {
        const obs::LogHistogram* th =
            ttft_i ? ttft_i->series.windowHistogram(w) : nullptr;
        const obs::LogHistogram* ph =
            tpot_i ? tpot_i->series.windowHistogram(w) : nullptr;
        if ((!th || th->empty()) && (!ph || ph->empty()))
            continue; // no completion latency observed this window
        ++st.windows;
        bool ok = true;
        if (th && !th->empty()) {
            const uint64_t p95 = th->percentile(95.0);
            st.worstP95Ttft = std::max(st.worstP95Ttft, p95);
            ok = ok && static_cast<double>(p95) <= slo.ttftCycles;
        }
        if (ph && !ph->empty()) {
            const uint64_t p95 = ph->percentile(95.0);
            st.worstP95Tpot = std::max(st.worstP95Tpot, p95);
            ok = ok && static_cast<double>(p95) <= slo.tpotCycles;
        }
        if (miss_i && miss_i->series.window(w).count > 0)
            ok = false;
        if (ok)
            ++st.attained;
    }
    return st;
}

void
applySloWindows(ServingSummary& s, const obs::MetricsRegistry& m,
                const SloConfig& slo)
{
    const SloWindowStats st = computeSloWindows(m, slo);
    s.sloWindows = st.windows;
    s.sloWindowsAttained = st.attained;
    s.sloWorstWindowP95Ttft = st.worstP95Ttft;
    s.sloWorstWindowP95Tpot = st.worstP95Tpot;
}

} // namespace step::runtime
