#include "runtime/metrics.hh"

#include <iostream>

#include "support/error.hh"
#include "support/stats.hh"

namespace step::runtime {

double
ttft(const Request& r)
{
    STEP_ASSERT(r.generated >= 1,
                "TTFT of request " << r.id << " before its first token");
    return static_cast<double>(r.firstTokenAt - r.arrival);
}

double
tpot(const Request& r)
{
    if (r.outputLen <= 1)
        return 0.0;
    STEP_ASSERT(r.done(), "TPOT of unfinished request " << r.id);
    return static_cast<double>(r.finishedAt - r.firstTokenAt) /
           static_cast<double>(r.outputLen - 1);
}

ServingSummary
summarize(const std::vector<Request>& reqs, dam::Cycle makespan,
          const SloConfig& slo)
{
    ServingSummary s;
    s.makespan = makespan;
    std::vector<double> ttfts;
    std::vector<double> tpots;
    int64_t good_tokens = 0;
    for (const Request& r : reqs) {
        if (!r.done())
            continue;
        ++s.completed;
        s.generatedTokens += r.generated;
        ttfts.push_back(ttft(r));
        if (r.outputLen > 1)
            tpots.push_back(tpot(r));
        if (slo.meets(r)) {
            ++s.sloCompliant;
            good_tokens += r.generated;
        }
    }
    s.ttftP50 = percentile(ttfts, 50.0);
    s.ttftP99 = percentile(ttfts, 99.0);
    s.ttftMean = mean(ttfts);
    s.tpotP50 = percentile(tpots, 50.0);
    s.tpotP99 = percentile(tpots, 99.0);
    s.tpotMean = mean(tpots);
    if (makespan > 0) {
        double kcycles = static_cast<double>(makespan) / 1000.0;
        s.throughputTokensPerKcycle =
            static_cast<double>(s.generatedTokens) / kcycles;
        s.goodputTokensPerKcycle =
            static_cast<double>(good_tokens) / kcycles;
    }
    return s;
}

void
printSummary(const ServingSummary& s, std::ostream& os)
{
    os << "completed requests : " << s.completed << " ("
       << s.generatedTokens << " tokens, " << s.sloCompliant
       << " within SLO)\n"
       << "makespan           : " << s.makespan << " cycles\n"
       << "TTFT p50/p99       : " << s.ttftP50 << " / " << s.ttftP99
       << " cycles\n"
       << "TPOT p50/p99       : " << s.tpotP50 << " / " << s.tpotP99
       << " cycles/token\n"
       << "throughput         : " << s.throughputTokensPerKcycle
       << " tokens/kcycle\n"
       << "goodput (SLO)      : " << s.goodputTokensPerKcycle
       << " tokens/kcycle\n"
       << "compute utilization: " << 100.0 * s.computeUtilization
       << " %\n";
}

} // namespace step::runtime
