/**
 * @file
 * Dynamic-parallelism policies: how the serving engine divides its
 * compute bandwidth between prefill and decode work, re-decided every
 * batching iteration (the request-level analog of the paper's
 * configuration time-multiplexing, Figures 12/13). A StaticSplit
 * partitions the hardware once — the Revet-style provisioning that
 * idles the prefill share when the queue is empty and starves it during
 * bursts — while QueueDepth reallocates proportionally to the
 * outstanding work on each side.
 */
#pragma once

#include <cstdint>
#include <string>

namespace step::runtime {

/** Queue/batch state visible to a policy at an iteration boundary. */
struct LoadSnapshot
{
    int64_t waitingRequests = 0;     ///< in the admission queue
    int64_t waitingPromptTokens = 0; ///< prompt tokens not yet admitted
    int64_t pendingPrefillTokens = 0;///< admitted, not yet prefilled
    int64_t activeDecodes = 0;       ///< requests in Decoding state
};

/** Compute-bandwidth split for one iteration (FLOPs/cycle each). */
struct BwSplit
{
    int64_t prefillBw = 0;
    int64_t decodeBw = 0;
};

class Policy
{
  public:
    virtual ~Policy() = default;
    virtual std::string name() const = 0;
    /** Split @p total_bw for the next iteration. */
    virtual BwSplit split(const LoadSnapshot& load,
                          int64_t total_bw) const = 0;
};

/** Fixed-fraction partition, regardless of load. */
class StaticSplitPolicy : public Policy
{
  public:
    explicit StaticSplitPolicy(double prefill_frac = 0.3);
    std::string name() const override { return "static-split"; }
    BwSplit split(const LoadSnapshot& load,
                  int64_t total_bw) const override;

  private:
    double prefillFrac_;
};

/**
 * Queue-depth-driven reallocation: the prefill share ramps linearly with
 * the admitted-but-unprefilled tokens up to a cap that protects
 * in-flight decodes, and collapses to zero when no admitted prefill
 * work exists so decode gets the whole machine. Bursts therefore pull
 * bandwidth toward prefill exactly while there is prefill work that can
 * run — the request-level analog of availability-driven dispatch.
 */
class QueueDepthPolicy : public Policy
{
  public:
    /**
     * @p ramp_tokens — outstanding prefill tokens at which the share
     * reaches its cap (roughly one typical prompt); @p max_prefill_frac
     * — decode-protection cap on the prefill share.
     */
    explicit QueueDepthPolicy(double ramp_tokens = 256.0,
                              double max_prefill_frac = 0.75);
    std::string name() const override { return "queue-depth"; }
    BwSplit split(const LoadSnapshot& load,
                  int64_t total_bw) const override;

  private:
    double rampTokens_;
    double maxPrefillFrac_;
};

} // namespace step::runtime
