/**
 * @file
 * Resilient cluster tier: the recovery/placement policies that turn the
 * fault tier's *detection* machinery (FaultPlan, failover waves) into
 * graceful degradation. Four pieces, all seeded-deterministic:
 *
 *  - Circuit breakers: per-replica health timelines precomputed from the
 *    fault plan. A breaker opens on a crash or on a sustained deep
 *    slowdown (after a detection lag), half-opens deterministically
 *    after a cooldown, and closes again; the router and the failover
 *    target selection consult it, so a degraded replica stops receiving
 *    traffic *before* it drowns.
 *
 *  - Live request migration: on a crash or a breaker-opening slowdown,
 *    in-flight (prefilling) and queued requests move to a healthy
 *    replica instead of failing, paying a modeled KV-handoff cost
 *    (fixed handshake + tokens x per-token transfer cycles). A
 *    hard-down source loses its KV, so crash casualties re-prefill.
 *
 *  - Cross-replica prefix reuse: a migrated or retried request placed
 *    off its cache-affinity replica can still use that replica's radix
 *    tree at a modeled fetch latency (lookup RTT + per-token transfer),
 *    invalidated by the owner's own crashes. This is also the hook for
 *    cache-affinity-aware failover placement: prefer the affinity
 *    owner while it is alive, breaker-closed, and not overloaded.
 *
 *  - Overload brown-out: a graceful-degradation AdmissionPolicy ladder
 *    (shed low-priority first, then cap output lengths, then refuse all
 *    but high-priority) driven by queue depth, KV pressure, and
 *    bandwidth degradation, plus a utilization-driven replica
 *    autoscaler whose step timeline restricts fresh placements.
 *
 * Everything here is a pure pre-pass or a pure function of its
 * arguments: breaker timelines, autoscale steps, and placement
 * decisions are computed on the coordinating thread before (or
 * between) replica simulations, so faulty runs stay bit-identical
 * across replays and worker-thread counts.
 */
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "runtime/faults.hh"
#include "runtime/request.hh"

namespace step::obs {
class MetricsRegistry;
}

namespace step::runtime {

// ---- circuit breakers --------------------------------------------------

enum class BreakerState : uint8_t { Closed, Open, HalfOpen };

const char* breakerStateName(BreakerState s);

struct BreakerConfig
{
    /**
     * A slowdown window must run this long (and dip to or below
     * openBelowFactor) before the breaker opens — transient stragglers
     * do not trip it. Crashes open the breaker immediately.
     */
    dam::Cycle detectCycles = 500'000;
    /** Slowdowns at or below this bandwidth factor count as degraded. */
    double openBelowFactor = 0.75;
    /** Half-open probation length after the degradation ends. */
    dam::Cycle cooldownCycles = 2'000'000;
    /**
     * Load multiplier a half-open replica carries in health-scored
     * target selection: it takes traffic again, but only when clearly
     * the best choice.
     */
    double halfOpenLoadPenalty = 2.0;
};

/**
 * One replica's breaker timeline, precomputed from its fault timeline —
 * data, like the plan itself, so every consultation is a pure lookup.
 * Open intervals are half-open [start, end) with end 0 = forever;
 * half-open probation intervals likewise. Open wins over HalfOpen
 * where they overlap; everything else is Closed.
 */
struct BreakerTimeline
{
    struct Window
    {
        dam::Cycle start = 0;
        dam::Cycle end = 0; ///< 0 = never (permanent)
    };
    std::vector<Window> open;
    std::vector<Window> halfOpen;

    BreakerState stateAt(dam::Cycle c) const;
    bool openAt(dam::Cycle c) const
    {
        return stateAt(c) == BreakerState::Open;
    }
};

/** Derive a replica's breaker timeline from its fault timeline. */
BreakerTimeline computeBreakerTimeline(const ReplicaFaultTimeline& t,
                                       const BreakerConfig& cfg);

// ---- telemetry-inferred breakers ---------------------------------------

/**
 * Where the cluster's breaker timelines come from. Plan (the default)
 * derives them from the fault plan's ground truth via
 * computeBreakerTimeline. Telemetry infers them *online* from each
 * replica's windowed metrics — failed-request counts and windowed p95
 * TTFT — the production-faithful variant: it only knows what a client-
 * side monitor could observe, so it detects crashes one window late,
 * needs consecutive evidence for slowdowns, can miss a fault an idle
 * replica never surfaces, and can open on load-induced latency the
 * plan never scripted (the divergence-under-noise the tests pin).
 */
enum class BreakerSource : uint8_t { Plan, Telemetry };

/** Parse "plan" / "telemetry"; returns false on anything else. */
bool parseBreakerSource(std::string_view s, BreakerSource* out);

/**
 * Health-monitor thresholds for telemetry-inferred breakers. All
 * decisions land on window-close edges (cycle (w+1)*windowCycles), so
 * the inferred timeline is causal: it only uses windows that had
 * fully closed by the decision cycle.
 */
struct HealthMonitorConfig
{
    /** Telemetry aggregation window; also the detection quantum. */
    dam::Cycle windowCycles = 2'000'000;
    /** A window is degraded when its p95 TTFT exceeds this. The
     *  default matches SloConfig::ttftCycles. */
    double degradedTtftCycles = 5e6;
    /** Consecutive degraded windows before the breaker opens. */
    int64_t openAfterDegraded = 2;
    /** Failed requests in one window that open it immediately (the
     *  crash signal; 0 disables error-triggered opens). */
    int64_t openOnErrors = 1;
    /** Consecutive healthy windows (>= 1 first token, p95 within
     *  threshold, no failures) before an open breaker closes. Windows
     *  with no evidence either way — an opened replica is routed
     *  around, so its windows go quiet — neither close nor extend. */
    int64_t closeAfterHealthy = 2;
    /** Half-open probation length after an inferred close. */
    dam::Cycle cooldownCycles = 2'000'000;
};

/**
 * Streaming per-replica breaker-state machine over closed telemetry
 * windows. Feed windows in increasing index order (one observeWindow
 * per window, empty ones included); finish() seals a still-open
 * breaker as permanent and returns the inferred timeline. Pure state
 * machine over its inputs — bit-deterministic like the plan pre-pass.
 */
class HealthMonitor
{
  public:
    explicit HealthMonitor(HealthMonitorConfig cfg) : cfg_(cfg) {}

    /** One closed window: failed-request count, first-token count, and
     *  windowed p95 TTFT (ignored when @p first_tokens is 0). */
    void observeWindow(uint64_t failed, uint64_t first_tokens,
                       uint64_t p95_ttft);

    BreakerTimeline finish();

  private:
    HealthMonitorConfig cfg_;
    BreakerTimeline tl_;
    int64_t window_ = 0;
    int64_t degraded_ = 0;
    int64_t healthy_ = 0;
    bool open_ = false;
    dam::Cycle openAt_ = 0;
};

/**
 * Infer one replica's breaker timeline from its metrics registry
 * (instruments `requests_failed` and `ttft_cycles`; the registry's
 * window width must equal cfg.windowCycles). This is the ROADMAP's
 * "breaker feedback from observed latency" follow-on: the cluster runs
 * an observation pass with metrics on, infers timelines per replica,
 * and the resilient run consults them exactly like plan-derived ones.
 */
BreakerTimeline inferBreakerTimeline(const obs::MetricsRegistry& m,
                                     const HealthMonitorConfig& cfg);

// ---- live request migration -------------------------------------------

struct MigrationConfig
{
    /** Fixed handoff cost per migration (handshake + metadata). */
    dam::Cycle fixedHandoffCycles = 50'000;
    /** KV-shard transfer cost per token moved (soft drain only — a
     *  hard-down source lost its KV and the request re-prefills). */
    dam::Cycle perTokenTransferCycles = 100;
    /** Migrations per request before the cluster gives up (the retry
     *  policy's maxRetries analogue). */
    int64_t maxMigrations = 3;
};

/**
 * Engine-side half of slowdown migration: when a slowdown window at or
 * below openBelowFactor has run for detectCycles (the same edge that
 * opens the breaker), the engine drains its queued and prefilling
 * requests — they leave in state Migrated, carrying their prefill
 * progress as the KV tokens the handoff must move. Decoding requests
 * stay: their batch finishes locally at the degraded bandwidth rather
 * than shipping a half-generated stream. Disabled (the default) the
 * engine is bit-identical to a drain-less build.
 */
struct SlowdownDrainConfig
{
    bool enabled = false;
    dam::Cycle detectCycles = 500'000;
    double openBelowFactor = 0.75;
};

// ---- cross-replica prefix reuse ---------------------------------------

struct RemotePrefixConfig
{
    bool enabled = false;
    /** Remote lookup round trip, paid once per remote hit. */
    dam::Cycle lookupCycles = 20'000;
    /** Per-token cost of fetching remote KV into local memory. */
    dam::Cycle perTokenFetchCycles = 150;
    /**
     * Failover placement prefers the cache-affinity owner while its
     * load is at most this multiple of the least-loaded candidate's —
     * a warm cache is worth a moderately longer queue, not any queue.
     */
    double affinityLoadFactor = 1.5;
};

// ---- overload brown-out ------------------------------------------------

struct BrownoutConfig
{
    /** Waiting requests at which queue pressure saturates to 1.0. */
    int64_t queueFullDepth = 64;
    /** Pressure at which low-priority requests shed (rung 1). */
    double shedLowAt = 0.5;
    /** Pressure at which output lengths cap (rung 2). */
    double capAt = 0.75;
    int64_t outputCapTokens = 32;
    /** Pressure at which all but high-priority requests are refused
     *  (rung 3). */
    double refuseAt = 0.95;
};

/**
 * Graceful-degradation admission ladder. Pressure is the worst of
 * queue depth (vs queueFullDepth), KV reservation occupancy, and
 * bandwidth degradation (1 - effective/nominal, the slowdown signal the
 * breakers read) — so the same health signal drives shedding that
 * drives routing. Rungs engage in order: shed low-priority, cap output
 * lengths (all but high-priority), refuse everything but high-priority.
 * Composes with deadline shedding via the optional fallback policy.
 */
class BrownoutPolicy : public AdmissionPolicy
{
  public:
    BrownoutConfig cfg;
    /** Consulted first when set (e.g. DeadlineAwareShedPolicy). */
    const AdmissionPolicy* fallback = nullptr;

    /** The ladder's drive signal, exposed for tests. */
    static double pressure(const AdmissionContext& ctx,
                           const BrownoutConfig& cfg);

    bool shouldShed(const Request& r,
                    const AdmissionContext& ctx) const override;
    int64_t outputCap(const Request& r,
                      const AdmissionContext& ctx) const override;
};

// ---- autoscaler --------------------------------------------------------

struct AutoscaleConfig
{
    bool enabled = false;
    /** Utilization is evaluated once per interval. */
    dam::Cycle evalIntervalCycles = 4'000'000;
    /** Offered-load utilization above which one replica activates. */
    double scaleUpUtil = 0.75;
    /** Below which one replica parks. */
    double scaleDownUtil = 0.30;
    int64_t minReplicas = 1;
    /** 0 = the cluster's replica count. */
    int64_t maxReplicas = 0;
};

/** One autoscaler decision: @p active replicas from cycle @p at on. */
struct AutoscaleStep
{
    dam::Cycle at = 0;
    int64_t active = 0;
};

/**
 * Precompute the autoscaler's step timeline from the offered load: per
 * evaluation interval, the arriving work (prompt + output tokens,
 * weighted by the analytic per-token cost) against the capacity of the
 * currently active *alive* replicas; above scaleUpUtil one replica
 * activates, below scaleDownUtil one parks (hysteresis band between).
 * A pure function of (cfg, trace, plan, ...) — the timeline, like the
 * fault plan, is data fixed before any simulation runs. Parked
 * replicas stop receiving fresh placements; sticky sessions already
 * owned by a parked replica stay (cache affinity outranks parking).
 */
std::vector<AutoscaleStep>
computeAutoscaleTimeline(const AutoscaleConfig& cfg,
                         const std::vector<Request>& reqs,
                         const FaultPlan& plan, int64_t replicas,
                         double flopsPerToken, int64_t perReplicaBw);

/** Active replica count at cycle @p c (replicas when steps empty). */
int64_t autoscaleActiveAt(const std::vector<AutoscaleStep>& steps,
                          dam::Cycle c, int64_t replicas);

// ---- health-scored placement ------------------------------------------

/**
 * Pick the failover/migration target among @p n replicas at cycle
 * @p at: candidates must be alive, breaker-not-open, and autoscale-
 * active (the active restriction is waived when it would leave no
 * candidate). The cache-affinity owner wins while its load is at most
 * affinityLoadFactor x the least-loaded candidate's; otherwise the
 * lowest health-scored load wins, where a candidate's score is its
 * assigned load scaled up by its current slowdown (1/bwFactor) and the
 * half-open penalty, and scaled down by its static capacity scale
 * (@p bwScales; null or short = 1.0 — a 2x replica absorbs 2x the
 * queue). Ties break to the lowest index. Returns -1 when no replica
 * is alive. Pure function of its arguments.
 */
int64_t pickResilientTarget(
    const std::vector<int64_t>& load, const FaultPlan& plan,
    const std::vector<BreakerTimeline>& breakers,
    const std::vector<AutoscaleStep>& autoscale, dam::Cycle at,
    int64_t affinityOwner, double affinityLoadFactor,
    double halfOpenLoadPenalty,
    const std::vector<double>* bwScales = nullptr);

// ---- cluster-level instants -------------------------------------------

/**
 * Cluster-scope decisions stamped onto a replica's trace. The
 * coordinating thread cannot append to a replica's TraceSink (one
 * writer per sink; the monotone per-track clamp would also drag engine
 * events forward), so the cluster hands each engine the instants that
 * concern it — breaker flips, autoscale steps — and the engine emits
 * them in cycle order from its own loop.
 */
struct ClusterInstant
{
    enum Kind : uint8_t {
        BreakerOpen,
        BreakerHalfOpen,
        BreakerClosed,
        AutoscaleActive,
    };
    dam::Cycle at = 0;
    Kind kind = BreakerOpen;
    int64_t value = 0; ///< AutoscaleActive: the active replica count
};

/** The instant's trace name ("breaker.open", "autoscale.active", ...). */
const char* clusterInstantName(ClusterInstant::Kind k);

// ---- the master switch -------------------------------------------------

/**
 * Cluster resilience tier configuration. With enabled == false (the
 * default) every piece is off and ServingCluster behaves bit-
 * identically to the plain fault tier — the empty-plan, disabled-tier
 * byte-identity contract CI pins.
 */
struct ResilienceConfig
{
    bool enabled = false;
    MigrationConfig migration;
    BreakerConfig breaker;
    RemotePrefixConfig remotePrefix;
    AutoscaleConfig autoscale;
    /**
     * Plan: breakers from computeBreakerTimeline (ground truth).
     * Telemetry: the cluster first runs an observation pass (the plain
     * fault tier, metrics force-enabled at health.windowCycles, no
     * resilience machinery) and infers each replica's timeline with
     * inferBreakerTimeline; the resilient run then consults the
     * inferred timelines everywhere the plan-derived ones are used.
     * Engine-side slowdown drains stay plan-driven either way — they
     * model the replica's own local detection, not the cluster
     * monitor. Plan-source runs are byte-identical to builds without
     * this knob.
     */
    BreakerSource breakerSource = BreakerSource::Plan;
    HealthMonitorConfig health;
};

} // namespace step::runtime
