#include "runtime/cluster.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <exception>
#include <limits>
#include <numeric>
#include <set>
#include <thread>
#include <utility>

#include "support/error.hh"
#include "support/rng.hh"

namespace step::runtime {

namespace {

/**
 * Router-side model of one replica for join-least-work routing. A real
 * ContinuousBatcher (the replica's admission config) tracks the waiting
 * queue and KV reservations; an analytic serial-server drain model
 * estimates when assigned requests leave, so the router never needs
 * feedback from the replica simulations — routing stays a deterministic
 * single-threaded pre-pass over the trace.
 */
struct ShadowReplica
{
    explicit ShadowReplica(const BatcherConfig& bc) : batcher(bc) {}

    ContinuousBatcher batcher;
    /** Stable-address copies of routed requests (the engine later runs
     *  the originals; the shadow must not mutate their state). */
    std::deque<Request> owned;
    struct InFlight
    {
        Request* req;
        dam::Cycle finish; ///< modeled service completion
    };
    std::vector<InFlight> inflight;
    dam::Cycle busyUntil = 0; ///< serial-server horizon

    /** Retire modeled-finished requests and admit from the queue until
     *  a fixed point (a release can unblock further admissions whose
     *  finish estimates have also passed). */
    void
    drainUntil(dam::Cycle now)
    {
        bool progress = true;
        while (progress) {
            progress = false;
            batcher.admit();
            for (auto it = inflight.begin(); it != inflight.end();) {
                if (it->finish <= now &&
                    it->req->state == ReqState::Prefilling) {
                    batcher.release(it->req);
                    it = inflight.erase(it);
                    progress = true;
                } else {
                    ++it;
                }
            }
        }
    }

    /** Outstanding prompt tokens: un-admitted waiting work plus
     *  admitted-but-unfinished work. */
    int64_t
    queuedPromptTokens() const
    {
        int64_t tokens = batcher.waitingPromptTokens();
        for (const InFlight& f : inflight)
            if (f.req->state == ReqState::Prefilling)
                tokens += f.req->promptLen;
        return tokens;
    }
};

} // namespace

std::string
routeKindName(RouteKind k)
{
    switch (k) {
      case RouteKind::RoundRobin:
        return "round-robin";
      case RouteKind::LeastQueued:
        return "least-queued";
      case RouteKind::HashAffinity:
        return "hash-affinity";
      case RouteKind::PrefixAffinity:
        return "prefix-affinity";
    }
    return "?";
}

ServingCluster::ServingCluster(ClusterConfig cfg, const Policy& policy)
    : cfg_(std::move(cfg)), policy_(policy)
{
    STEP_ASSERT(cfg_.replicas >= 1, "cluster needs at least one replica");
    STEP_ASSERT(cfg_.threads >= 0, "negative worker-thread count");
    STEP_ASSERT(cfg_.bwScales.empty() ||
                    cfg_.bwScales.size() ==
                        static_cast<size_t>(cfg_.replicas),
                "bwScales must be empty or one entry per replica");
    for (double s : cfg_.bwScales)
        STEP_ASSERT(s > 0.0, "bwScales entries must be positive");
}

double
ServingCluster::bwScaleAt(size_t r) const
{
    return cfg_.bwScales.empty() ? 1.0 : cfg_.bwScales[r];
}

std::vector<BreakerTimeline>
ServingCluster::resilientBreakers(const std::vector<Request>& reqs) const
{
    const auto R = static_cast<size_t>(cfg_.replicas);
    std::vector<BreakerTimeline> out(R);
    if (cfg_.resilience.breakerSource == BreakerSource::Plan) {
        for (size_t r = 0; r < R; ++r)
            out[r] = computeBreakerTimeline(
                cfg_.faults.forReplica(static_cast<int64_t>(r)),
                cfg_.resilience.breaker);
        return out;
    }
    // Telemetry source: observation pass. Run the *plain fault tier* on
    // a copy of the trace — resilience machinery off (so the pass
    // cannot recurse), tracing off, metrics forced on at the health
    // monitor's window width — and infer each replica's timeline from
    // its windowed failure counts and TTFT p95. The pass is itself a
    // deterministic cluster run, so the inferred timelines are pure
    // reproducible data, exactly like the plan-derived ones.
    ClusterConfig oc = cfg_;
    oc.resilience.enabled = false;
    oc.trace = obs::TraceOptions{};
    oc.metrics.enabled = true;
    oc.metrics.windowCycles = cfg_.resilience.health.windowCycles;
    std::vector<Request> copy(reqs);
    ServingCluster observer(std::move(oc), policy_);
    const ClusterResult watched = observer.run(copy);
    for (size_t r = 0; r < R; ++r)
        out[r] = inferBreakerTimeline(*watched.metrics[r],
                                      cfg_.resilience.health);
    return out;
}

std::vector<int64_t>
ServingCluster::routeTrace(const std::vector<Request>& reqs) const
{
    return routeTraceImpl(reqs, nullptr);
}

std::vector<int64_t>
ServingCluster::routeTraceImpl(
    const std::vector<Request>& reqs,
    const std::vector<BreakerTimeline>* pre) const
{
    const auto R = static_cast<size_t>(cfg_.replicas);
    std::vector<int64_t> out(reqs.size(), 0);

    switch (cfg_.routing) {
      case RouteKind::RoundRobin:
        for (size_t i = 0; i < reqs.size(); ++i)
            out[i] = static_cast<int64_t>(i % R);
        break;

      case RouteKind::HashAffinity:
        for (size_t i = 0; i < reqs.size(); ++i) {
            // Pure function of the request id: a request (session) always
            // lands on the same replica, whatever else is in the trace.
            Rng h(0xa24baed4963ee407ULL ^
                  static_cast<uint64_t>(reqs[i].id));
            out[i] = static_cast<int64_t>(h.uniformInt(R));
        }
        break;

      case RouteKind::PrefixAffinity: {
        // Sticky map: dominant-prefix hash -> replica. First sight of a
        // key picks the least-loaded replica by assigned worst-case
        // tokens (a router-side proxy — it deliberately overcharges
        // sticky replicas, since their cache hits make later turns
        // cheaper than the estimate, which biases new sessions away
        // from hot replicas). Pure pre-pass: deterministic, no feedback
        // from the replica simulations.
        std::unordered_map<uint64_t, size_t> owner;
        std::vector<int64_t> load(R, 0);
        for (size_t i = 0; i < reqs.size(); ++i) {
            const uint64_t key = reqs[i].affinityKey;
            size_t pick;
            auto it = key != 0 ? owner.find(key) : owner.end();
            if (it != owner.end()) {
                pick = it->second;
            } else {
                // First sight of a session — or a keyless legacy
                // request, for which every arrival takes this branch: a
                // work-balanced spread with no stickiness to preserve.
                pick = 0;
                for (size_t r = 1; r < R; ++r)
                    if (load[r] < load[pick])
                        pick = r;
                if (key != 0)
                    owner.emplace(key, pick);
            }
            load[pick] += reqs[i].promptLen + reqs[i].outputLen;
            out[i] = static_cast<int64_t>(pick);
        }
        break;
      }

      case RouteKind::LeastQueued: {
        BatcherConfig bc = cfg_.engine.batcher;
        if (bc.kvBytesPerToken == 0)
            bc.kvBytesPerToken = cfg_.engine.model.kvBytesPerToken();
        const int64_t layers = cfg_.engine.numLayers > 0
                                   ? cfg_.engine.numLayers
                                   : cfg_.engine.model.numLayers;
        // Per-token service proxy: the analytic prefill cost stands in
        // for both phases — the router only needs relative load, not
        // absolute latency.
        const double fpt = static_cast<double>(
            prefillFlopsPerToken(cfg_.engine.model, layers));
        const double bw =
            static_cast<double>(cfg_.engine.totalComputeBw);

        std::vector<ShadowReplica> shadows;
        shadows.reserve(R);
        for (size_t r = 0; r < R; ++r)
            shadows.emplace_back(bc);

        for (size_t i = 0; i < reqs.size(); ++i) {
            const Request& q = reqs[i];
            size_t pick = 0;
            int64_t best = std::numeric_limits<int64_t>::max();
            for (size_t r = 0; r < R; ++r) {
                shadows[r].drainUntil(q.arrival);
                int64_t tokens = shadows[r].queuedPromptTokens();
                if (tokens < best) { // ties break to the lowest index
                    best = tokens;
                    pick = r;
                }
            }
            ShadowReplica& s = shadows[pick];
            // Heterogeneous fleet: a scaled replica serves its queue at
            // its own rate, so fast replicas drain sooner and attract
            // more placements — the scale shifts load at routing time.
            const double rbw = bw * bwScaleAt(pick);
            s.owned.push_back(q);
            Request* copy = &s.owned.back();
            copy->state = ReqState::Queued;
            copy->prefilledTokens = 0;
            copy->prefillFlopsDone = 0.0;
            copy->generated = 0;
            copy->firstTokenAt = 0;
            copy->finishedAt = 0;
            // The shadow batcher has no prefix cache; reserve worst case
            // and drop the (unconsulted) block hashes the copy dragged
            // in — multi-turn requests carry dozens of them.
            copy->cachedPrefixTokens = 0;
            copy->blockHashes = {};
            s.batcher.enqueue(copy);
            auto service = static_cast<dam::Cycle>(std::ceil(
                static_cast<double>(q.promptLen + q.outputLen) * fpt /
                rbw));
            service = std::max<dam::Cycle>(1, service);
            s.busyUntil = std::max(q.arrival, s.busyUntil) + service;
            s.inflight.push_back({copy, s.busyUntil});
            out[i] = static_cast<int64_t>(pick);
        }
        break;
      }
    }

    // Health-scored remap (resilience tier): beyond liveness, the
    // router consults the precomputed breaker timelines and the
    // autoscaler's step timeline. A request whose chosen replica is
    // down or breaker-open at arrival moves to the health-scored best
    // candidate; autoscale-parked replicas stop receiving *fresh*
    // placements, but sticky sessions they already own stay (cache
    // affinity outranks parking). All inputs are pure pre-computed
    // data, so the remap stays a deterministic pre-pass.
    if (cfg_.resilience.enabled) {
        std::vector<BreakerTimeline> computed;
        if (pre == nullptr) {
            computed = resilientBreakers(reqs);
            pre = &computed;
        }
        const std::vector<BreakerTimeline>& breakers = *pre;
        const int64_t layers = cfg_.engine.numLayers > 0
                                   ? cfg_.engine.numLayers
                                   : cfg_.engine.model.numLayers;
        const std::vector<AutoscaleStep> autoscale =
            computeAutoscaleTimeline(
                cfg_.resilience.autoscale, reqs, cfg_.faults,
                cfg_.replicas,
                static_cast<double>(
                    prefillFlopsPerToken(cfg_.engine.model, layers)),
                cfg_.engine.totalComputeBw);
        std::vector<int64_t> load(R, 0);
        std::unordered_map<uint64_t, size_t> sticky; // key -> owner
        for (size_t i = 0; i < reqs.size(); ++i) {
            auto r = static_cast<size_t>(out[i]);
            const dam::Cycle at = reqs[i].arrival;
            const uint64_t key = reqs[i].affinityKey;
            // A session lives where its first turn actually landed —
            // if that was itself remapped, later turns follow it (the
            // warm cache is there, not at the routing pre-pass's pick).
            const auto it = key != 0 ? sticky.find(key) : sticky.end();
            const bool owned = it != sticky.end();
            if (owned && it->second != r) {
                r = it->second;
                out[i] = static_cast<int64_t>(r);
            }
            const bool parked =
                static_cast<int64_t>(r) >=
                autoscaleActiveAt(autoscale, at, cfg_.replicas);
            const bool unhealthy =
                !cfg_.faults.aliveAt(static_cast<int64_t>(r), at) ||
                breakers[r].openAt(at) || (parked && !owned);
            if (unhealthy) {
                const int64_t best = pickResilientTarget(
                    load, cfg_.faults, breakers, autoscale, at,
                    /*affinityOwner=*/-1,
                    cfg_.resilience.remotePrefix.affinityLoadFactor,
                    cfg_.resilience.breaker.halfOpenLoadPenalty,
                    cfg_.bwScales.empty() ? nullptr : &cfg_.bwScales);
                if (best >= 0) {
                    r = static_cast<size_t>(best);
                    out[i] = best;
                }
            }
            if (key != 0)
                sticky[key] = r; // remaps move the session's home
            load[r] += reqs[i].promptLen + reqs[i].outputLen;
        }
        return out;
    }

    // Fault-aware remap: a health-checked router never sends a request
    // into a replica it knows is down at the arrival cycle. Such
    // requests move to the least-loaded alive replica (assigned
    // worst-case tokens, ties to the lowest index); if *no* replica is
    // alive the assignment stands and the dead replica refuses the
    // request on arrival (a crash mid-flight is still the engine's to
    // discover — the router only sees health at admission time).
    if (!cfg_.faults.empty()) {
        std::vector<int64_t> load(R, 0);
        for (size_t i = 0; i < reqs.size(); ++i) {
            auto r = static_cast<size_t>(out[i]);
            if (!cfg_.faults.aliveAt(static_cast<int64_t>(r),
                                     reqs[i].arrival)) {
                int64_t best = -1;
                for (size_t c = 0; c < R; ++c) {
                    if (!cfg_.faults.aliveAt(static_cast<int64_t>(c),
                                             reqs[i].arrival))
                        continue;
                    if (best < 0 ||
                        load[c] < load[static_cast<size_t>(best)])
                        best = static_cast<int64_t>(c);
                }
                if (best >= 0) {
                    r = static_cast<size_t>(best);
                    out[i] = best;
                }
            }
            load[r] += reqs[i].promptLen + reqs[i].outputLen;
        }
    }
    return out;
}

ClusterResult
ServingCluster::run(std::vector<Request>& reqs)
{
    STEP_ASSERT(std::is_sorted(reqs.begin(), reqs.end(),
                               [](const Request& a, const Request& b) {
                                   return a.arrival < b.arrival;
                               }),
                "request trace must be sorted by arrival");

    const auto R = static_cast<size_t>(cfg_.replicas);
    // Breaker timelines come first: routing consults them, and under
    // BreakerSource::Telemetry deriving them runs a whole observation
    // pass — computed once here and shared with failover placement.
    const bool resilient = cfg_.resilience.enabled;
    std::vector<BreakerTimeline> breakers;
    if (resilient)
        breakers = resilientBreakers(reqs);
    const std::vector<int64_t> assignment =
        routeTraceImpl(reqs, resilient ? &breakers : nullptr);
    const bool have_faults = !cfg_.faults.empty();

    // Per-replica fault timelines and seeds, derived on the coordinating
    // thread before any worker exists — the one ordering the global-seed
    // contract requires (see rng.hh).
    std::vector<ReplicaFaultTimeline> plans(R);
    if (have_faults)
        for (size_t r = 0; r < R; ++r)
            plans[r] = cfg_.faults.forReplica(static_cast<int64_t>(r));
    std::vector<uint64_t> seeds(R);
    for (size_t r = 0; r < R; ++r)
        seeds[r] = deriveSeed(static_cast<uint64_t>(r));

    // Resilience pre-pass: breaker timelines, the autoscaler's step
    // timeline, and the per-replica cluster-instant lists the engines
    // will stamp onto their traces — all pure data derived before any
    // worker exists, like the fault plans and seeds above.
    std::vector<AutoscaleStep> autoscale;
    std::vector<std::vector<ClusterInstant>> instants(R);
    std::unordered_map<uint64_t, int64_t> affinity_owner;
    if (resilient) {
        const int64_t layers = cfg_.engine.numLayers > 0
                                   ? cfg_.engine.numLayers
                                   : cfg_.engine.model.numLayers;
        autoscale = computeAutoscaleTimeline(
            cfg_.resilience.autoscale, reqs, cfg_.faults, cfg_.replicas,
            static_cast<double>(
                prefillFlopsPerToken(cfg_.engine.model, layers)),
            cfg_.engine.totalComputeBw);
        for (size_t r = 0; r < R; ++r) {
            // Each breaker-state flip becomes one instant at its edge;
            // the state *after* the edge names the instant.
            std::vector<dam::Cycle> edges;
            for (const BreakerTimeline::Window& w : breakers[r].open) {
                edges.push_back(w.start);
                if (w.end != 0)
                    edges.push_back(w.end);
            }
            for (const BreakerTimeline::Window& w :
                 breakers[r].halfOpen) {
                edges.push_back(w.start);
                if (w.end != 0)
                    edges.push_back(w.end);
            }
            std::sort(edges.begin(), edges.end());
            edges.erase(std::unique(edges.begin(), edges.end()),
                        edges.end());
            for (dam::Cycle c : edges) {
                ClusterInstant ci;
                ci.at = c;
                ci.value = static_cast<int64_t>(r);
                switch (breakers[r].stateAt(c)) {
                  case BreakerState::Open:
                    ci.kind = ClusterInstant::BreakerOpen;
                    break;
                  case BreakerState::HalfOpen:
                    ci.kind = ClusterInstant::BreakerHalfOpen;
                    break;
                  case BreakerState::Closed:
                    ci.kind = ClusterInstant::BreakerClosed;
                    break;
                }
                instants[r].push_back(ci);
            }
        }
        // Autoscale steps are cluster-scope; replica 0's trace carries
        // them (one writer per sink — the coordinator cannot).
        for (const AutoscaleStep& s : autoscale)
            instants[0].push_back(
                {s.at, ClusterInstant::AutoscaleActive, s.active});
        for (size_t r = 0; r < R; ++r)
            std::sort(instants[r].begin(), instants[r].end(),
                      [](const ClusterInstant& a,
                         const ClusterInstant& b) {
                          if (a.at != b.at)
                              return a.at < b.at;
                          return a.kind < b.kind;
                      });
        // Last sight wins: where the session's cache is warm *now*
        // (the health-scored remap may have moved the session's home).
        for (size_t i = 0; i < reqs.size(); ++i)
            if (reqs[i].affinityKey != 0)
                affinity_owner[reqs[i].affinityKey] = assignment[i];
    }

    // Shard the trace into *pristine* per-replica inputs. Each shard
    // keeps trace order, so it starts sorted by arrival; meta[] maps
    // shard slots back to the caller's vector and records which retry
    // incarnation the slot is. Failover waves append incarnations here
    // and re-simulate from a fresh working copy, so every (re-)run of a
    // replica replays the identical deterministic input.
    struct Incarnation
    {
        size_t orig;     ///< index into the caller's trace
        int64_t attempt; ///< 0 = original submission
    };
    std::vector<std::vector<Request>> shard(R);
    std::vector<std::vector<Incarnation>> meta(R);
    for (size_t i = 0; i < reqs.size(); ++i) {
        auto r = static_cast<size_t>(assignment[i]);
        shard[r].push_back(reqs[i]);
        meta[r].push_back({i, reqs[i].attempt});
    }

    int64_t threads = cfg_.threads > 0 ? cfg_.threads : cfg_.replicas;
    threads = std::min(threads, cfg_.replicas);

    std::vector<ReplicaResult> results(R);
    std::vector<std::vector<Request>> work(R);

    // One sink per replica; a re-simulated replica gets a fresh sink so
    // the exported trace describes its final timeline only. Sinks are
    // (re)created before a wave's workers spawn: replica r's worker is
    // its sink's only writer, so recording needs no locks, and exporting
    // in index order erases the thread count from the output bytes.
    std::vector<std::unique_ptr<obs::TraceSink>> traces;
    if (cfg_.trace.level != obs::TraceLevel::Off)
        traces.resize(R);

    // One metrics registry per replica, same single-writer discipline
    // as the trace sinks; re-simulated replicas get a fresh registry so
    // the exported metrics describe the final timeline only.
    std::vector<std::unique_ptr<obs::MetricsRegistry>> mregs;
    if (cfg_.metrics.enabled)
        mregs.resize(R);

    auto run_replica = [&](size_t r) {
        EngineConfig ec = cfg_.engine;
        ec.seed = seeds[r];
        ec.faults = plans[r];
        if (!cfg_.bwScales.empty())
            ec.totalComputeBw = static_cast<int64_t>(std::llround(
                static_cast<double>(cfg_.engine.totalComputeBw) *
                cfg_.bwScales[r]));
        if (resilient) {
            // The drain fires on the same edge that opens the breaker:
            // detection is one signal, shared by routing and migration.
            ec.drain.enabled = true;
            ec.drain.detectCycles = cfg_.resilience.breaker.detectCycles;
            ec.drain.openBelowFactor =
                cfg_.resilience.breaker.openBelowFactor;
            ec.clusterInstants = instants[r];
        }
        ServingEngine engine(ec, policy_);
        if (!traces.empty())
            engine.attachTrace(traces[r].get());
        if (!mregs.empty())
            engine.attachMetrics(mregs[r].get());
        ReplicaResult& out = results[r];
        out.replica = static_cast<int64_t>(r);
        out.seed = seeds[r];
        out.assignedRequests = static_cast<int64_t>(shard[r].size());
        out.result = engine.run(work[r]);
    };
    // Simulate the listed replicas on the worker pool. Replica todo[i]
    // runs on worker i mod T; which thread hosts a replica never changes
    // what the replica computes (shared-nothing), only where.
    auto run_wave = [&](const std::vector<size_t>& todo) {
        for (size_t r : todo) {
            work[r] = shard[r];
            if (!traces.empty())
                traces[r] = std::make_unique<obs::TraceSink>(cfg_.trace);
            if (!mregs.empty())
                mregs[r] =
                    std::make_unique<obs::MetricsRegistry>(cfg_.metrics);
        }
        const size_t T = static_cast<size_t>(std::min<int64_t>(
            threads, static_cast<int64_t>(todo.size())));
        std::vector<std::exception_ptr> errors(std::max<size_t>(1, T));
        auto worker = [&](size_t t) {
            try {
                for (size_t i = t; i < todo.size(); i += T)
                    run_replica(todo[i]);
            } catch (...) {
                errors[t] = std::current_exception();
            }
        };
        if (T <= 1) {
            worker(0);
        } else {
            std::vector<std::thread> pool;
            pool.reserve(T);
            for (size_t t = 0; t < T; ++t)
                pool.emplace_back(worker, t);
            for (std::thread& th : pool)
                th.join();
        }
        for (std::exception_ptr& e : errors)
            if (e)
                std::rethrow_exception(e);
    };

    // ---- failover waves ----------------------------------------------
    // Wave 0 simulates every replica. Each later wave collects the crash
    // casualties no earlier wave decided, offers them to the retry
    // policy in (fail-cycle, request, attempt) order, appends granted
    // retries to the least-loaded replica alive at the re-arrival, and
    // re-simulates only the changed replicas. Converges because each
    // (request, attempt) pair is decided exactly once and the policy
    // bounds attempts.
    static const ExponentialBackoffRetry default_retry;
    const RetryPolicy* retry = cfg_.retry ? cfg_.retry : &default_retry;
    std::set<std::pair<size_t, int64_t>> decided;
    std::vector<int64_t> load(R, 0);
    for (size_t i = 0; i < reqs.size(); ++i)
        load[static_cast<size_t>(assignment[i])] +=
            reqs[i].promptLen + reqs[i].outputLen;
    int64_t retries_issued = 0;
    int64_t migrations_issued = 0;
    // Last crash of replica r at or before cycle c (kNoEvent = none):
    // the owner's cache holds nothing inserted before it.
    auto last_crash_before = [&](size_t r, dam::Cycle c) -> dam::Cycle {
        dam::Cycle last = ReplicaFaultTimeline::kNoEvent;
        for (const auto& d : plans[r].downs)
            if (d.failAt <= c &&
                (last == ReplicaFaultTimeline::kNoEvent ||
                 d.failAt > last))
                last = d.failAt;
        return last;
    };

    std::vector<size_t> todo(R);
    std::iota(todo.begin(), todo.end(), size_t{0});
    for (int wave = 0; !todo.empty(); ++wave) {
        STEP_ASSERT(wave < 1024, "failover waves did not converge");
        run_wave(todo);
        todo.clear();
        if (!have_faults)
            break;

        struct FailRec
        {
            dam::Cycle at;
            size_t orig;
            int64_t attempt;
            size_t replica, slot;
            bool migrated; ///< left via slowdown drain, KV intact
        };
        std::vector<FailRec> fails;
        for (size_t r = 0; r < R; ++r)
            for (size_t k = 0; k < work[r].size(); ++k) {
                const Request& q = work[r][k];
                // Migrated only appears with the resilience drain on,
                // so the fault-only path scans exactly as before.
                if (q.state != ReqState::Failed &&
                    q.state != ReqState::Migrated)
                    continue;
                const Incarnation& m = meta[r][k];
                if (decided.count({m.orig, m.attempt}))
                    continue;
                fails.push_back({q.finishedAt, m.orig, m.attempt, r, k,
                                 q.state == ReqState::Migrated});
            }
        std::sort(fails.begin(), fails.end(),
                  [](const FailRec& a, const FailRec& b) {
                      if (a.at != b.at)
                          return a.at < b.at;
                      if (a.orig != b.orig)
                          return a.orig < b.orig;
                      return a.attempt < b.attempt;
                  });

        std::vector<char> dirty(R, 0);
        for (const FailRec& f : fails) {
            const std::pair<size_t, int64_t> key{f.orig, f.attempt};
            decided.insert(key);
            const Request& src = work[f.replica][f.slot];
            std::optional<dam::Cycle> re;
            int64_t kv = 0; // KV tokens the handoff carries
            if (!resilient) {
                re = retry->reschedule(src, f.attempt + 1, f.at);
            } else if (f.attempt + 1 <=
                       cfg_.resilience.migration.maxMigrations) {
                // Migration cost model: fixed handshake, plus the KV
                // shard for a soft drain (a hard-down source lost its
                // KV — crash casualties re-prefill from scratch).
                const MigrationConfig& mc = cfg_.resilience.migration;
                kv = f.migrated ? src.prefilledTokens : 0;
                const dam::Cycle rearrive =
                    f.at + std::max<dam::Cycle>(
                               1, mc.fixedHandoffCycles +
                                      static_cast<dam::Cycle>(kv) *
                                          mc.perTokenTransferCycles);
                // Same contract as RetryPolicy: never hand off work
                // that can only miss its deadline.
                if (src.deadlineAt == 0 || rearrive <= src.deadlineAt)
                    re = rearrive;
            }
            if (!re)
                continue; // policy says permanent (attempts / deadline)
            int64_t owner = -1;
            if (resilient && reqs[f.orig].affinityKey != 0) {
                const auto it =
                    affinity_owner.find(reqs[f.orig].affinityKey);
                if (it != affinity_owner.end())
                    owner = it->second;
            }
            int64_t best = -1;
            if (resilient) {
                best = pickResilientTarget(
                    load, cfg_.faults, breakers, autoscale, *re, owner,
                    cfg_.resilience.remotePrefix.affinityLoadFactor,
                    cfg_.resilience.breaker.halfOpenLoadPenalty,
                    cfg_.bwScales.empty() ? nullptr : &cfg_.bwScales);
            } else {
                // Least-loaded replica alive at the re-arrival cycle;
                // with none alive the retry could only be refused
                // again, so the failure stands.
                for (size_t c = 0; c < R; ++c) {
                    if (!cfg_.faults.aliveAt(static_cast<int64_t>(c),
                                             *re))
                        continue;
                    if (best < 0 ||
                        load[c] < load[static_cast<size_t>(best)])
                        best = static_cast<int64_t>(c);
                }
            }
            if (best < 0)
                continue;
            const auto tgt = static_cast<size_t>(best);
            Request inc = reqs[f.orig]; // pristine: waves never mutate
            inc.arrival = *re;
            inc.attempt = f.attempt + 1;
            if (resilient) {
                // Cross-replica prefix fetch: placed off its affinity
                // owner, the incarnation may still pull its warm prefix
                // from the owner's cache — if an earlier turn of the
                // session finished there before the handoff lands and
                // after the owner's last crash (the cache died with
                // it). Block-granular; the fetch pays a lookup RTT plus
                // per-token transfer for what the migration did not
                // already carry. The owner's currently-simulated
                // timeline is the reference — deterministic, since
                // waves run sequentially on this thread.
                const RemotePrefixConfig& rp =
                    cfg_.resilience.remotePrefix;
                if (rp.enabled && owner >= 0 &&
                    static_cast<size_t>(owner) != tgt) {
                    const auto ow = static_cast<size_t>(owner);
                    const dam::Cycle wiped = last_crash_before(ow, *re);
                    int64_t credit = 0;
                    for (const Request& q : work[ow]) {
                        if (q.sessionId != inc.sessionId ||
                            q.turn >= inc.turn ||
                            q.state != ReqState::Finished)
                            continue;
                        if (q.finishedAt > *re)
                            continue;
                        if (wiped != ReplicaFaultTimeline::kNoEvent &&
                            q.finishedAt <= wiped)
                            continue;
                        const int64_t blocks = static_cast<int64_t>(
                            q.blockHashes.size());
                        credit = std::max(
                            credit,
                            std::min(blocks * kPrefixBlockTokens,
                                     inc.promptLen - 1));
                    }
                    if (credit > kv) {
                        const dam::Cycle fetched =
                            *re + rp.lookupCycles +
                            static_cast<dam::Cycle>(credit - kv) *
                                rp.perTokenFetchCycles;
                        if (inc.deadlineAt == 0 ||
                            fetched <= inc.deadlineAt) {
                            inc.arrival = fetched;
                            kv = credit;
                        }
                    }
                }
                inc.remoteKvTokens = kv;
            }
            shard[tgt].push_back(inc);
            meta[tgt].push_back({f.orig, inc.attempt});
            load[tgt] += inc.promptLen + inc.outputLen;
            if (f.migrated)
                ++migrations_issued;
            else
                ++retries_issued;
            dirty[tgt] = 1;
        }

        // Re-sort the changed shards by arrival (lockstep with meta;
        // full key keeps the order independent of the append sequence).
        for (size_t r = 0; r < R; ++r) {
            if (!dirty[r])
                continue;
            std::vector<size_t> idx(shard[r].size());
            std::iota(idx.begin(), idx.end(), size_t{0});
            std::sort(idx.begin(), idx.end(),
                      [&](size_t a, size_t b) {
                          const Request& qa = shard[r][a];
                          const Request& qb = shard[r][b];
                          if (qa.arrival != qb.arrival)
                              return qa.arrival < qb.arrival;
                          if (qa.id != qb.id)
                              return qa.id < qb.id;
                          return meta[r][a].attempt < meta[r][b].attempt;
                      });
            std::vector<Request> s2;
            std::vector<Incarnation> m2;
            s2.reserve(idx.size());
            m2.reserve(idx.size());
            for (size_t k : idx) {
                s2.push_back(shard[r][k]);
                m2.push_back(meta[r][k]);
            }
            shard[r] = std::move(s2);
            meta[r] = std::move(m2);
            todo.push_back(r);
        }
    }

    // ---- reflect outcomes back to the caller -------------------------
    // Every original request reports its *final* incarnation (highest
    // attempt), with the original arrival restored so the caller's trace
    // stays sorted; superseded incarnations must all have failed (the
    // retry bookkeeping invariant).
    struct Final
    {
        int64_t attempt = -1;
        size_t replica = 0, slot = 0;
    };
    std::vector<Final> fin(reqs.size());
    for (size_t r = 0; r < R; ++r)
        for (size_t k = 0; k < work[r].size(); ++k) {
            const Incarnation& m = meta[r][k];
            if (m.attempt > fin[m.orig].attempt)
                fin[m.orig] = {m.attempt, r, k};
        }
    if (resilient || have_faults) {
        // An incarnation's fate can legitimately flip between waves: a
        // later wave's extra arrivals shift the bandwidth split, and a
        // request that was mid-prefill at a drain edge (-> Migrated)
        // may by then have finished, failed, or been shed. The same
        // holds on the plain failover path — a retry landing on a
        // replica changes its timeline, and the superseded incarnation
        // re-simulated under that timeline can come out Finished. The
        // per-wave issue log is therefore not a reliable accounting
        // source; instead, every replica's summary is recomputed below
        // from its *final* timeline, with superseded slots
        // reinterpreted:
        //   - Failed/Migrated with a successor: transparent handoff
        //     (retried resp. migrated, outside availability);
        //   - Finished/Shed with a successor: phantom duplicate — the
        //     source would have stopped serving the moment the handoff
        //     was issued, so the slot is dropped and the successor
        //     carries the client-visible outcome.
        // A *final* incarnation still in Migrated was denied a target
        // (attempt cap, deadline, nothing healthy): a loss, converted
        // to Failed so availability closes over finished/failed/shed.
        for (size_t r = 0; r < R; ++r) {
            int64_t retried = 0;
            std::vector<Request> view;
            view.reserve(work[r].size());
            for (size_t k = 0; k < work[r].size(); ++k) {
                Request q = work[r][k];
                const Incarnation& m = meta[r][k];
                if (m.attempt < fin[m.orig].attempt) {
                    if (q.state == ReqState::Failed)
                        ++retried; // counted as failover, not failure
                    else if (q.state == ReqState::Migrated)
                        view.push_back(q);
                    continue;
                }
                if (q.state == ReqState::Migrated) {
                    q.state = ReqState::Failed;
                    work[r][k].state = ReqState::Failed;
                }
                view.push_back(q);
            }
            ServingSummary& old = results[r].result.summary;
            ServingSummary ns =
                summarize(view, old.makespan, cfg_.engine.slo);
            ns.retriedRequests = retried;
            // Engine-attached fields survive the recompute untouched.
            ns.computeUtilization = old.computeUtilization;
            ns.prefixLookups = old.prefixLookups;
            ns.prefixHits = old.prefixHits;
            ns.prefixTokensSaved = old.prefixTokensSaved;
            ns.prefixPeakOccupancyTokens =
                old.prefixPeakOccupancyTokens;
            ns.prefixPeakOccupancyMaxReplica =
                old.prefixPeakOccupancyMaxReplica;
            ns.counters = old.counters;
            // Windowed-SLO telemetry describes the replica's actual
            // final timeline, which the recompute does not change.
            ns.sloWindows = old.sloWindows;
            ns.sloWindowsAttained = old.sloWindowsAttained;
            ns.sloWorstWindowP95Ttft = old.sloWorstWindowP95Ttft;
            ns.sloWorstWindowP95Tpot = old.sloWorstWindowP95Tpot;
            refreshPrefixDerivedStats(ns);
            old = std::move(ns);
        }
    }
    for (size_t i = 0; i < reqs.size(); ++i) {
        const dam::Cycle arrival = reqs[i].arrival;
        reqs[i] = work[fin[i].replica][fin[i].slot];
        reqs[i].arrival = arrival;
    }

    // Merge in replica-index order: the aggregate depends only on the
    // per-replica results, never on worker scheduling.
    ClusterResult out;
    out.replicas = std::move(results);
    out.traces = std::move(traces);
    out.metrics = std::move(mregs);
    out.breakers = std::move(breakers);
    out.retriesIssued = retries_issued;
    out.migrationsIssued = migrations_issued;
    out.autoscale = std::move(autoscale);
    std::vector<ServingSummary> parts;
    parts.reserve(R);
    for (const ReplicaResult& rr : out.replicas) {
        parts.push_back(rr.result.summary);
        out.timeline.merge(rr.result.timeline);
        out.totalIterations += rr.result.iterations;
    }
    out.aggregate = mergeSummaries(parts);
    // Heterogeneous fleets provision sum(scale_r * bw) FLOPs/cycle; the
    // unscaled expression is kept verbatim so scale-less runs stay
    // bit-identical (no float round-trip).
    int64_t provisioned = cfg_.engine.totalComputeBw * cfg_.replicas;
    if (!cfg_.bwScales.empty()) {
        double cap = 0.0;
        for (size_t r = 0; r < R; ++r)
            cap += static_cast<double>(cfg_.engine.totalComputeBw) *
                   cfg_.bwScales[r];
        provisioned = static_cast<int64_t>(std::llround(cap));
    }
    out.aggregate.computeUtilization =
        out.timeline.computeUtilization(provisioned);
    // The aggregate's windowed-SLO view comes from the replica-index-
    // order merge of the registries (mergeSummaries recomputes latency
    // percentiles from raw samples but leaves window fields zero).
    if (!out.metrics.empty()) {
        auto merged =
            std::make_unique<obs::MetricsRegistry>(cfg_.metrics);
        for (const auto& m : out.metrics)
            merged->mergeFrom(*m);
        applySloWindows(out.aggregate, *merged, cfg_.engine.slo);
        out.mergedMetrics = std::move(merged);
    }
    return out;
}

} // namespace step::runtime
