#include "runtime/cluster.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <exception>
#include <limits>
#include <thread>

#include "support/error.hh"
#include "support/rng.hh"

namespace step::runtime {

namespace {

/**
 * Router-side model of one replica for join-least-work routing. A real
 * ContinuousBatcher (the replica's admission config) tracks the waiting
 * queue and KV reservations; an analytic serial-server drain model
 * estimates when assigned requests leave, so the router never needs
 * feedback from the replica simulations — routing stays a deterministic
 * single-threaded pre-pass over the trace.
 */
struct ShadowReplica
{
    explicit ShadowReplica(const BatcherConfig& bc) : batcher(bc) {}

    ContinuousBatcher batcher;
    /** Stable-address copies of routed requests (the engine later runs
     *  the originals; the shadow must not mutate their state). */
    std::deque<Request> owned;
    struct InFlight
    {
        Request* req;
        dam::Cycle finish; ///< modeled service completion
    };
    std::vector<InFlight> inflight;
    dam::Cycle busyUntil = 0; ///< serial-server horizon

    /** Retire modeled-finished requests and admit from the queue until
     *  a fixed point (a release can unblock further admissions whose
     *  finish estimates have also passed). */
    void
    drainUntil(dam::Cycle now)
    {
        bool progress = true;
        while (progress) {
            progress = false;
            batcher.admit();
            for (auto it = inflight.begin(); it != inflight.end();) {
                if (it->finish <= now &&
                    it->req->state == ReqState::Prefilling) {
                    batcher.release(it->req);
                    it = inflight.erase(it);
                    progress = true;
                } else {
                    ++it;
                }
            }
        }
    }

    /** Outstanding prompt tokens: un-admitted waiting work plus
     *  admitted-but-unfinished work. */
    int64_t
    queuedPromptTokens() const
    {
        int64_t tokens = batcher.waitingPromptTokens();
        for (const InFlight& f : inflight)
            if (f.req->state == ReqState::Prefilling)
                tokens += f.req->promptLen;
        return tokens;
    }
};

} // namespace

std::string
routeKindName(RouteKind k)
{
    switch (k) {
      case RouteKind::RoundRobin:
        return "round-robin";
      case RouteKind::LeastQueued:
        return "least-queued";
      case RouteKind::HashAffinity:
        return "hash-affinity";
      case RouteKind::PrefixAffinity:
        return "prefix-affinity";
    }
    return "?";
}

ServingCluster::ServingCluster(ClusterConfig cfg, const Policy& policy)
    : cfg_(std::move(cfg)), policy_(policy)
{
    STEP_ASSERT(cfg_.replicas >= 1, "cluster needs at least one replica");
    STEP_ASSERT(cfg_.threads >= 0, "negative worker-thread count");
}

std::vector<int64_t>
ServingCluster::routeTrace(const std::vector<Request>& reqs) const
{
    const auto R = static_cast<size_t>(cfg_.replicas);
    std::vector<int64_t> out(reqs.size(), 0);

    switch (cfg_.routing) {
      case RouteKind::RoundRobin:
        for (size_t i = 0; i < reqs.size(); ++i)
            out[i] = static_cast<int64_t>(i % R);
        return out;

      case RouteKind::HashAffinity:
        for (size_t i = 0; i < reqs.size(); ++i) {
            // Pure function of the request id: a request (session) always
            // lands on the same replica, whatever else is in the trace.
            Rng h(0xa24baed4963ee407ULL ^
                  static_cast<uint64_t>(reqs[i].id));
            out[i] = static_cast<int64_t>(h.uniformInt(R));
        }
        return out;

      case RouteKind::PrefixAffinity: {
        // Sticky map: dominant-prefix hash -> replica. First sight of a
        // key picks the least-loaded replica by assigned worst-case
        // tokens (a router-side proxy — it deliberately overcharges
        // sticky replicas, since their cache hits make later turns
        // cheaper than the estimate, which biases new sessions away
        // from hot replicas). Pure pre-pass: deterministic, no feedback
        // from the replica simulations.
        std::unordered_map<uint64_t, size_t> owner;
        std::vector<int64_t> load(R, 0);
        for (size_t i = 0; i < reqs.size(); ++i) {
            const uint64_t key = reqs[i].affinityKey;
            size_t pick;
            auto it = key != 0 ? owner.find(key) : owner.end();
            if (it != owner.end()) {
                pick = it->second;
            } else {
                // First sight of a session — or a keyless legacy
                // request, for which every arrival takes this branch: a
                // work-balanced spread with no stickiness to preserve.
                pick = 0;
                for (size_t r = 1; r < R; ++r)
                    if (load[r] < load[pick])
                        pick = r;
                if (key != 0)
                    owner.emplace(key, pick);
            }
            load[pick] += reqs[i].promptLen + reqs[i].outputLen;
            out[i] = static_cast<int64_t>(pick);
        }
        return out;
      }

      case RouteKind::LeastQueued: {
        BatcherConfig bc = cfg_.engine.batcher;
        if (bc.kvBytesPerToken == 0)
            bc.kvBytesPerToken = cfg_.engine.model.kvBytesPerToken();
        const int64_t layers = cfg_.engine.numLayers > 0
                                   ? cfg_.engine.numLayers
                                   : cfg_.engine.model.numLayers;
        // Per-token service proxy: the analytic prefill cost stands in
        // for both phases — the router only needs relative load, not
        // absolute latency.
        const double fpt = static_cast<double>(
            prefillFlopsPerToken(cfg_.engine.model, layers));
        const double bw =
            static_cast<double>(cfg_.engine.totalComputeBw);

        std::vector<ShadowReplica> shadows;
        shadows.reserve(R);
        for (size_t r = 0; r < R; ++r)
            shadows.emplace_back(bc);

        for (size_t i = 0; i < reqs.size(); ++i) {
            const Request& q = reqs[i];
            size_t pick = 0;
            int64_t best = std::numeric_limits<int64_t>::max();
            for (size_t r = 0; r < R; ++r) {
                shadows[r].drainUntil(q.arrival);
                int64_t tokens = shadows[r].queuedPromptTokens();
                if (tokens < best) { // ties break to the lowest index
                    best = tokens;
                    pick = r;
                }
            }
            ShadowReplica& s = shadows[pick];
            s.owned.push_back(q);
            Request* copy = &s.owned.back();
            copy->state = ReqState::Queued;
            copy->prefilledTokens = 0;
            copy->prefillFlopsDone = 0.0;
            copy->generated = 0;
            copy->firstTokenAt = 0;
            copy->finishedAt = 0;
            // The shadow batcher has no prefix cache; reserve worst case
            // and drop the (unconsulted) block hashes the copy dragged
            // in — multi-turn requests carry dozens of them.
            copy->cachedPrefixTokens = 0;
            copy->blockHashes = {};
            s.batcher.enqueue(copy);
            auto service = static_cast<dam::Cycle>(std::ceil(
                static_cast<double>(q.promptLen + q.outputLen) * fpt /
                bw));
            service = std::max<dam::Cycle>(1, service);
            s.busyUntil = std::max(q.arrival, s.busyUntil) + service;
            s.inflight.push_back({copy, s.busyUntil});
            out[i] = static_cast<int64_t>(pick);
        }
        return out;
      }
    }
    return out;
}

ClusterResult
ServingCluster::run(std::vector<Request>& reqs)
{
    STEP_ASSERT(std::is_sorted(reqs.begin(), reqs.end(),
                               [](const Request& a, const Request& b) {
                                   return a.arrival < b.arrival;
                               }),
                "request trace must be sorted by arrival");

    const auto R = static_cast<size_t>(cfg_.replicas);
    const std::vector<int64_t> assignment = routeTrace(reqs);

    // Shard the trace. Each shard keeps trace order, so it stays sorted
    // by arrival; origin[] maps shard slots back to the caller's vector.
    std::vector<std::vector<Request>> shard(R);
    std::vector<std::vector<size_t>> origin(R);
    for (size_t i = 0; i < reqs.size(); ++i) {
        auto r = static_cast<size_t>(assignment[i]);
        shard[r].push_back(reqs[i]);
        origin[r].push_back(i);
    }

    // Per-replica seeds are derived on the coordinating thread before
    // any worker exists — the one ordering the global-seed contract
    // requires (see rng.hh).
    std::vector<uint64_t> seeds(R);
    for (size_t r = 0; r < R; ++r)
        seeds[r] = deriveSeed(static_cast<uint64_t>(r));

    int64_t threads = cfg_.threads > 0 ? cfg_.threads : cfg_.replicas;
    threads = std::min(threads, cfg_.replicas);
    const auto T = static_cast<size_t>(threads);

    std::vector<ReplicaResult> results(R);
    std::vector<std::exception_ptr> errors(T);

    // One sink per replica, created before any worker exists: replica
    // r's worker is the sink's only writer, and exporting the vector in
    // index order erases the thread count from the output bytes.
    std::vector<std::unique_ptr<obs::TraceSink>> traces;
    if (cfg_.trace.level != obs::TraceLevel::Off) {
        traces.reserve(R);
        for (size_t r = 0; r < R; ++r)
            traces.push_back(std::make_unique<obs::TraceSink>(cfg_.trace));
    }

    auto run_replica = [&](size_t r) {
        EngineConfig ec = cfg_.engine;
        ec.seed = seeds[r];
        ServingEngine engine(ec, policy_);
        if (!traces.empty())
            engine.attachTrace(traces[r].get());
        ReplicaResult& out = results[r];
        out.replica = static_cast<int64_t>(r);
        out.seed = seeds[r];
        out.assignedRequests = static_cast<int64_t>(shard[r].size());
        out.result = engine.run(shard[r]);
    };
    // Replica r runs on worker r mod T; each worker walks its replicas
    // in increasing index. Which thread hosts a replica never changes
    // what the replica computes (shared-nothing), only where.
    auto worker = [&](size_t t) {
        try {
            for (size_t r = t; r < R; r += T)
                run_replica(r);
        } catch (...) {
            errors[t] = std::current_exception();
        }
    };

    if (T == 1) {
        worker(0);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(T);
        for (size_t t = 0; t < T; ++t)
            pool.emplace_back(worker, t);
        for (std::thread& th : pool)
            th.join();
    }
    for (std::exception_ptr& e : errors)
        if (e)
            std::rethrow_exception(e);

    // Reflect per-replica request state back into the caller's trace,
    // preserving the single-engine run() contract.
    for (size_t r = 0; r < R; ++r)
        for (size_t k = 0; k < shard[r].size(); ++k)
            reqs[origin[r][k]] = shard[r][k];

    // Merge in replica-index order: the aggregate depends only on the
    // per-replica results, never on worker scheduling.
    ClusterResult out;
    out.replicas = std::move(results);
    out.traces = std::move(traces);
    std::vector<ServingSummary> parts;
    parts.reserve(R);
    for (const ReplicaResult& rr : out.replicas) {
        parts.push_back(rr.result.summary);
        out.timeline.merge(rr.result.timeline);
        out.totalIterations += rr.result.iterations;
    }
    out.aggregate = mergeSummaries(parts);
    out.aggregate.computeUtilization = out.timeline.computeUtilization(
        cfg_.engine.totalComputeBw * cfg_.replicas);
    return out;
}

} // namespace step::runtime
