#include "runtime/cluster.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <exception>
#include <limits>
#include <map>
#include <numeric>
#include <set>
#include <thread>
#include <utility>

#include "support/error.hh"
#include "support/rng.hh"

namespace step::runtime {

namespace {

/**
 * Router-side model of one replica for join-least-work routing. A real
 * ContinuousBatcher (the replica's admission config) tracks the waiting
 * queue and KV reservations; an analytic serial-server drain model
 * estimates when assigned requests leave, so the router never needs
 * feedback from the replica simulations — routing stays a deterministic
 * single-threaded pre-pass over the trace.
 */
struct ShadowReplica
{
    explicit ShadowReplica(const BatcherConfig& bc) : batcher(bc) {}

    ContinuousBatcher batcher;
    /** Stable-address copies of routed requests (the engine later runs
     *  the originals; the shadow must not mutate their state). */
    std::deque<Request> owned;
    struct InFlight
    {
        Request* req;
        dam::Cycle finish; ///< modeled service completion
    };
    std::vector<InFlight> inflight;
    dam::Cycle busyUntil = 0; ///< serial-server horizon

    /** Retire modeled-finished requests and admit from the queue until
     *  a fixed point (a release can unblock further admissions whose
     *  finish estimates have also passed). */
    void
    drainUntil(dam::Cycle now)
    {
        bool progress = true;
        while (progress) {
            progress = false;
            batcher.admit();
            for (auto it = inflight.begin(); it != inflight.end();) {
                if (it->finish <= now &&
                    it->req->state == ReqState::Prefilling) {
                    batcher.release(it->req);
                    it = inflight.erase(it);
                    progress = true;
                } else {
                    ++it;
                }
            }
        }
    }

    /** Outstanding prompt tokens: un-admitted waiting work plus
     *  admitted-but-unfinished work. */
    int64_t
    queuedPromptTokens() const
    {
        int64_t tokens = batcher.waitingPromptTokens();
        for (const InFlight& f : inflight)
            if (f.req->state == ReqState::Prefilling)
                tokens += f.req->promptLen;
        return tokens;
    }
};

} // namespace

std::string
routeKindName(RouteKind k)
{
    switch (k) {
      case RouteKind::RoundRobin:
        return "round-robin";
      case RouteKind::LeastQueued:
        return "least-queued";
      case RouteKind::HashAffinity:
        return "hash-affinity";
      case RouteKind::PrefixAffinity:
        return "prefix-affinity";
    }
    return "?";
}

ServingCluster::ServingCluster(ClusterConfig cfg, const Policy& policy)
    : cfg_(std::move(cfg)), policy_(policy)
{
    STEP_ASSERT(cfg_.replicas >= 1, "cluster needs at least one replica");
    STEP_ASSERT(cfg_.threads >= 0, "negative worker-thread count");
}

std::vector<int64_t>
ServingCluster::routeTrace(const std::vector<Request>& reqs) const
{
    const auto R = static_cast<size_t>(cfg_.replicas);
    std::vector<int64_t> out(reqs.size(), 0);

    switch (cfg_.routing) {
      case RouteKind::RoundRobin:
        for (size_t i = 0; i < reqs.size(); ++i)
            out[i] = static_cast<int64_t>(i % R);
        break;

      case RouteKind::HashAffinity:
        for (size_t i = 0; i < reqs.size(); ++i) {
            // Pure function of the request id: a request (session) always
            // lands on the same replica, whatever else is in the trace.
            Rng h(0xa24baed4963ee407ULL ^
                  static_cast<uint64_t>(reqs[i].id));
            out[i] = static_cast<int64_t>(h.uniformInt(R));
        }
        break;

      case RouteKind::PrefixAffinity: {
        // Sticky map: dominant-prefix hash -> replica. First sight of a
        // key picks the least-loaded replica by assigned worst-case
        // tokens (a router-side proxy — it deliberately overcharges
        // sticky replicas, since their cache hits make later turns
        // cheaper than the estimate, which biases new sessions away
        // from hot replicas). Pure pre-pass: deterministic, no feedback
        // from the replica simulations.
        std::unordered_map<uint64_t, size_t> owner;
        std::vector<int64_t> load(R, 0);
        for (size_t i = 0; i < reqs.size(); ++i) {
            const uint64_t key = reqs[i].affinityKey;
            size_t pick;
            auto it = key != 0 ? owner.find(key) : owner.end();
            if (it != owner.end()) {
                pick = it->second;
            } else {
                // First sight of a session — or a keyless legacy
                // request, for which every arrival takes this branch: a
                // work-balanced spread with no stickiness to preserve.
                pick = 0;
                for (size_t r = 1; r < R; ++r)
                    if (load[r] < load[pick])
                        pick = r;
                if (key != 0)
                    owner.emplace(key, pick);
            }
            load[pick] += reqs[i].promptLen + reqs[i].outputLen;
            out[i] = static_cast<int64_t>(pick);
        }
        break;
      }

      case RouteKind::LeastQueued: {
        BatcherConfig bc = cfg_.engine.batcher;
        if (bc.kvBytesPerToken == 0)
            bc.kvBytesPerToken = cfg_.engine.model.kvBytesPerToken();
        const int64_t layers = cfg_.engine.numLayers > 0
                                   ? cfg_.engine.numLayers
                                   : cfg_.engine.model.numLayers;
        // Per-token service proxy: the analytic prefill cost stands in
        // for both phases — the router only needs relative load, not
        // absolute latency.
        const double fpt = static_cast<double>(
            prefillFlopsPerToken(cfg_.engine.model, layers));
        const double bw =
            static_cast<double>(cfg_.engine.totalComputeBw);

        std::vector<ShadowReplica> shadows;
        shadows.reserve(R);
        for (size_t r = 0; r < R; ++r)
            shadows.emplace_back(bc);

        for (size_t i = 0; i < reqs.size(); ++i) {
            const Request& q = reqs[i];
            size_t pick = 0;
            int64_t best = std::numeric_limits<int64_t>::max();
            for (size_t r = 0; r < R; ++r) {
                shadows[r].drainUntil(q.arrival);
                int64_t tokens = shadows[r].queuedPromptTokens();
                if (tokens < best) { // ties break to the lowest index
                    best = tokens;
                    pick = r;
                }
            }
            ShadowReplica& s = shadows[pick];
            s.owned.push_back(q);
            Request* copy = &s.owned.back();
            copy->state = ReqState::Queued;
            copy->prefilledTokens = 0;
            copy->prefillFlopsDone = 0.0;
            copy->generated = 0;
            copy->firstTokenAt = 0;
            copy->finishedAt = 0;
            // The shadow batcher has no prefix cache; reserve worst case
            // and drop the (unconsulted) block hashes the copy dragged
            // in — multi-turn requests carry dozens of them.
            copy->cachedPrefixTokens = 0;
            copy->blockHashes = {};
            s.batcher.enqueue(copy);
            auto service = static_cast<dam::Cycle>(std::ceil(
                static_cast<double>(q.promptLen + q.outputLen) * fpt /
                bw));
            service = std::max<dam::Cycle>(1, service);
            s.busyUntil = std::max(q.arrival, s.busyUntil) + service;
            s.inflight.push_back({copy, s.busyUntil});
            out[i] = static_cast<int64_t>(pick);
        }
        break;
      }
    }

    // Fault-aware remap: a health-checked router never sends a request
    // into a replica it knows is down at the arrival cycle. Such
    // requests move to the least-loaded alive replica (assigned
    // worst-case tokens, ties to the lowest index); if *no* replica is
    // alive the assignment stands and the dead replica refuses the
    // request on arrival (a crash mid-flight is still the engine's to
    // discover — the router only sees health at admission time).
    if (!cfg_.faults.empty()) {
        std::vector<int64_t> load(R, 0);
        for (size_t i = 0; i < reqs.size(); ++i) {
            auto r = static_cast<size_t>(out[i]);
            if (!cfg_.faults.aliveAt(static_cast<int64_t>(r),
                                     reqs[i].arrival)) {
                int64_t best = -1;
                for (size_t c = 0; c < R; ++c) {
                    if (!cfg_.faults.aliveAt(static_cast<int64_t>(c),
                                             reqs[i].arrival))
                        continue;
                    if (best < 0 ||
                        load[c] < load[static_cast<size_t>(best)])
                        best = static_cast<int64_t>(c);
                }
                if (best >= 0) {
                    r = static_cast<size_t>(best);
                    out[i] = best;
                }
            }
            load[r] += reqs[i].promptLen + reqs[i].outputLen;
        }
    }
    return out;
}

ClusterResult
ServingCluster::run(std::vector<Request>& reqs)
{
    STEP_ASSERT(std::is_sorted(reqs.begin(), reqs.end(),
                               [](const Request& a, const Request& b) {
                                   return a.arrival < b.arrival;
                               }),
                "request trace must be sorted by arrival");

    const auto R = static_cast<size_t>(cfg_.replicas);
    const std::vector<int64_t> assignment = routeTrace(reqs);
    const bool have_faults = !cfg_.faults.empty();

    // Per-replica fault timelines and seeds, derived on the coordinating
    // thread before any worker exists — the one ordering the global-seed
    // contract requires (see rng.hh).
    std::vector<ReplicaFaultTimeline> plans(R);
    if (have_faults)
        for (size_t r = 0; r < R; ++r)
            plans[r] = cfg_.faults.forReplica(static_cast<int64_t>(r));
    std::vector<uint64_t> seeds(R);
    for (size_t r = 0; r < R; ++r)
        seeds[r] = deriveSeed(static_cast<uint64_t>(r));

    // Shard the trace into *pristine* per-replica inputs. Each shard
    // keeps trace order, so it starts sorted by arrival; meta[] maps
    // shard slots back to the caller's vector and records which retry
    // incarnation the slot is. Failover waves append incarnations here
    // and re-simulate from a fresh working copy, so every (re-)run of a
    // replica replays the identical deterministic input.
    struct Incarnation
    {
        size_t orig;     ///< index into the caller's trace
        int64_t attempt; ///< 0 = original submission
    };
    std::vector<std::vector<Request>> shard(R);
    std::vector<std::vector<Incarnation>> meta(R);
    for (size_t i = 0; i < reqs.size(); ++i) {
        auto r = static_cast<size_t>(assignment[i]);
        shard[r].push_back(reqs[i]);
        meta[r].push_back({i, reqs[i].attempt});
    }

    int64_t threads = cfg_.threads > 0 ? cfg_.threads : cfg_.replicas;
    threads = std::min(threads, cfg_.replicas);

    std::vector<ReplicaResult> results(R);
    std::vector<std::vector<Request>> work(R);

    // One sink per replica; a re-simulated replica gets a fresh sink so
    // the exported trace describes its final timeline only. Sinks are
    // (re)created before a wave's workers spawn: replica r's worker is
    // its sink's only writer, so recording needs no locks, and exporting
    // in index order erases the thread count from the output bytes.
    std::vector<std::unique_ptr<obs::TraceSink>> traces;
    if (cfg_.trace.level != obs::TraceLevel::Off)
        traces.resize(R);

    auto run_replica = [&](size_t r) {
        EngineConfig ec = cfg_.engine;
        ec.seed = seeds[r];
        ec.faults = plans[r];
        ServingEngine engine(ec, policy_);
        if (!traces.empty())
            engine.attachTrace(traces[r].get());
        ReplicaResult& out = results[r];
        out.replica = static_cast<int64_t>(r);
        out.seed = seeds[r];
        out.assignedRequests = static_cast<int64_t>(shard[r].size());
        out.result = engine.run(work[r]);
    };
    // Simulate the listed replicas on the worker pool. Replica todo[i]
    // runs on worker i mod T; which thread hosts a replica never changes
    // what the replica computes (shared-nothing), only where.
    auto run_wave = [&](const std::vector<size_t>& todo) {
        for (size_t r : todo) {
            work[r] = shard[r];
            if (!traces.empty())
                traces[r] = std::make_unique<obs::TraceSink>(cfg_.trace);
        }
        const size_t T = static_cast<size_t>(std::min<int64_t>(
            threads, static_cast<int64_t>(todo.size())));
        std::vector<std::exception_ptr> errors(std::max<size_t>(1, T));
        auto worker = [&](size_t t) {
            try {
                for (size_t i = t; i < todo.size(); i += T)
                    run_replica(todo[i]);
            } catch (...) {
                errors[t] = std::current_exception();
            }
        };
        if (T <= 1) {
            worker(0);
        } else {
            std::vector<std::thread> pool;
            pool.reserve(T);
            for (size_t t = 0; t < T; ++t)
                pool.emplace_back(worker, t);
            for (std::thread& th : pool)
                th.join();
        }
        for (std::exception_ptr& e : errors)
            if (e)
                std::rethrow_exception(e);
    };

    // ---- failover waves ----------------------------------------------
    // Wave 0 simulates every replica. Each later wave collects the crash
    // casualties no earlier wave decided, offers them to the retry
    // policy in (fail-cycle, request, attempt) order, appends granted
    // retries to the least-loaded replica alive at the re-arrival, and
    // re-simulates only the changed replicas. Converges because each
    // (request, attempt) pair is decided exactly once and the policy
    // bounds attempts.
    static const ExponentialBackoffRetry default_retry;
    const RetryPolicy* retry = cfg_.retry ? cfg_.retry : &default_retry;
    std::set<std::pair<size_t, int64_t>> decided;
    // (orig, attempt) -> source replica whose summary reclassifies the
    // failure as a retry.
    std::map<std::pair<size_t, int64_t>, size_t> issued;
    std::vector<int64_t> load(R, 0);
    for (size_t i = 0; i < reqs.size(); ++i)
        load[static_cast<size_t>(assignment[i])] +=
            reqs[i].promptLen + reqs[i].outputLen;
    int64_t retries_issued = 0;

    std::vector<size_t> todo(R);
    std::iota(todo.begin(), todo.end(), size_t{0});
    for (int wave = 0; !todo.empty(); ++wave) {
        STEP_ASSERT(wave < 1024, "failover waves did not converge");
        run_wave(todo);
        todo.clear();
        if (!have_faults)
            break;

        struct FailRec
        {
            dam::Cycle at;
            size_t orig;
            int64_t attempt;
            size_t replica, slot;
        };
        std::vector<FailRec> fails;
        for (size_t r = 0; r < R; ++r)
            for (size_t k = 0; k < work[r].size(); ++k) {
                const Request& q = work[r][k];
                if (q.state != ReqState::Failed)
                    continue;
                const Incarnation& m = meta[r][k];
                if (decided.count({m.orig, m.attempt}))
                    continue;
                fails.push_back({q.finishedAt, m.orig, m.attempt, r, k});
            }
        std::sort(fails.begin(), fails.end(),
                  [](const FailRec& a, const FailRec& b) {
                      if (a.at != b.at)
                          return a.at < b.at;
                      if (a.orig != b.orig)
                          return a.orig < b.orig;
                      return a.attempt < b.attempt;
                  });

        std::vector<char> dirty(R, 0);
        for (const FailRec& f : fails) {
            const std::pair<size_t, int64_t> key{f.orig, f.attempt};
            decided.insert(key);
            const std::optional<dam::Cycle> re = retry->reschedule(
                work[f.replica][f.slot], f.attempt + 1, f.at);
            if (!re)
                continue; // policy says permanent (attempts / deadline)
            // Least-loaded replica alive at the re-arrival cycle; with
            // none alive the retry could only be refused again, so the
            // failure stands.
            int64_t best = -1;
            for (size_t c = 0; c < R; ++c) {
                if (!cfg_.faults.aliveAt(static_cast<int64_t>(c), *re))
                    continue;
                if (best < 0 ||
                    load[c] < load[static_cast<size_t>(best)])
                    best = static_cast<int64_t>(c);
            }
            if (best < 0)
                continue;
            const auto tgt = static_cast<size_t>(best);
            issued.emplace(key, f.replica);
            Request inc = reqs[f.orig]; // pristine: waves never mutate
            inc.arrival = *re;
            inc.attempt = f.attempt + 1;
            shard[tgt].push_back(inc);
            meta[tgt].push_back({f.orig, inc.attempt});
            load[tgt] += inc.promptLen + inc.outputLen;
            ++retries_issued;
            dirty[tgt] = 1;
        }

        // Re-sort the changed shards by arrival (lockstep with meta;
        // full key keeps the order independent of the append sequence).
        for (size_t r = 0; r < R; ++r) {
            if (!dirty[r])
                continue;
            std::vector<size_t> idx(shard[r].size());
            std::iota(idx.begin(), idx.end(), size_t{0});
            std::sort(idx.begin(), idx.end(),
                      [&](size_t a, size_t b) {
                          const Request& qa = shard[r][a];
                          const Request& qb = shard[r][b];
                          if (qa.arrival != qb.arrival)
                              return qa.arrival < qb.arrival;
                          if (qa.id != qb.id)
                              return qa.id < qb.id;
                          return meta[r][a].attempt < meta[r][b].attempt;
                      });
            std::vector<Request> s2;
            std::vector<Incarnation> m2;
            s2.reserve(idx.size());
            m2.reserve(idx.size());
            for (size_t k : idx) {
                s2.push_back(shard[r][k]);
                m2.push_back(meta[r][k]);
            }
            shard[r] = std::move(s2);
            meta[r] = std::move(m2);
            todo.push_back(r);
        }
    }

    // ---- reflect outcomes back to the caller -------------------------
    // Every original request reports its *final* incarnation (highest
    // attempt), with the original arrival restored so the caller's trace
    // stays sorted; superseded incarnations must all have failed (the
    // retry bookkeeping invariant).
    struct Final
    {
        int64_t attempt = -1;
        size_t replica = 0, slot = 0;
    };
    std::vector<Final> fin(reqs.size());
    for (size_t r = 0; r < R; ++r)
        for (size_t k = 0; k < work[r].size(); ++k) {
            const Incarnation& m = meta[r][k];
            if (m.attempt > fin[m.orig].attempt)
                fin[m.orig] = {m.attempt, r, k};
        }
    for (size_t r = 0; r < R; ++r)
        for (size_t k = 0; k < work[r].size(); ++k) {
            const Incarnation& m = meta[r][k];
            if (m.attempt < fin[m.orig].attempt)
                STEP_ASSERT(work[r][k].state == ReqState::Failed,
                            "superseded incarnation of request "
                                << work[r][k].id
                                << " did not stay failed");
        }
    for (size_t i = 0; i < reqs.size(); ++i) {
        const dam::Cycle arrival = reqs[i].arrival;
        reqs[i] = work[fin[i].replica][fin[i].slot];
        reqs[i].arrival = arrival;
    }

    // A failure that produced a retry is transparent failover, not a
    // lost request: reclassify it at the replica that failed it.
    for (const auto& [key, src] : issued) {
        ServingSummary& s = results[src].result.summary;
        s.failedRequests -= 1;
        s.retriedRequests += 1;
        refreshAvailability(s);
    }

    // Merge in replica-index order: the aggregate depends only on the
    // per-replica results, never on worker scheduling.
    ClusterResult out;
    out.replicas = std::move(results);
    out.traces = std::move(traces);
    out.retriesIssued = retries_issued;
    std::vector<ServingSummary> parts;
    parts.reserve(R);
    for (const ReplicaResult& rr : out.replicas) {
        parts.push_back(rr.result.summary);
        out.timeline.merge(rr.result.timeline);
        out.totalIterations += rr.result.iterations;
    }
    out.aggregate = mergeSummaries(parts);
    out.aggregate.computeUtilization = out.timeline.computeUtilization(
        cfg_.engine.totalComputeBw * cfg_.replicas);
    return out;
}

} // namespace step::runtime
