/**
 * @file
 * Request model for the serving runtime. A request is a prompt that must
 * be prefilled, then a sequence of decode tokens, with an arrival time
 * drawn from a seeded synthetic workload (Poisson or bursty on/off
 * modulated Poisson). This is the request-level dynamism — variable KV
 * lengths, variable batch composition, bursty load — that the STeP
 * paper's streaming abstraction is built to exploit.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "dam/task.hh"

namespace step::runtime {

enum class ReqState : uint8_t {
    Queued,     ///< arrived, waiting for admission
    Prefilling, ///< admitted, prompt being processed
    Decoding,   ///< first token emitted, generating
    Finished,
    Failed, ///< terminal: its replica crashed (may be retried elsewhere)
    Shed,   ///< terminal: dropped by the admission policy
    /**
     * Terminal *here*: drained off a degraded replica by the resilience
     * tier, carrying its KV to a healthy one. Like Failed it marks an
     * incarnation that ended without completing, but the work was
     * handed off rather than lost — the cluster reschedules it with a
     * modeled KV-transfer cost instead of a client-visible failure.
     */
    Migrated,
};

/**
 * Request priority class for the brown-out ladder: under overload the
 * cluster sheds Low first, then caps everyone below High, and at the
 * top rung refuses all but High. Normal is the default everywhere so a
 * priority-blind build behaves identically.
 */
enum class ReqPriority : uint8_t { Low, Normal, High };

/**
 * Tokens per prefix-cache block. Prompt content is identified by a
 * chained hash per block of this many tokens (see Request::blockHashes);
 * the prefix cache stores and evicts whole blocks, so trace generation
 * and the cache must agree on the granularity — hence one shared
 * constant rather than two config knobs that could drift apart.
 */
constexpr int64_t kPrefixBlockTokens = 16;

/**
 * SplitMix64-style 2-to-1 mixer used for synthetic token content and
 * chained block hashes. Not cryptographic; 64-bit collisions are
 * negligible at trace scale.
 */
constexpr uint64_t
prefixHashMix(uint64_t a, uint64_t b)
{
    uint64_t z = a + 0x9e3779b97f4a7c15ULL +
                 (b ^ (b >> 31)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

struct Request
{
    int64_t id = 0;
    dam::Cycle arrival = 0;
    int64_t promptLen = 0; ///< tokens to prefill
    int64_t outputLen = 1; ///< tokens to generate (includes first token)

    // ---- conversation / prefix identity ------------------------------
    /** Session this request belongs to; -1 for single-turn traces. */
    int64_t sessionId = -1;
    /** Turn index within the session (0-based). */
    int64_t turn = 0;
    /**
     * Chained hashes of the request's token stream (prompt followed by
     * its own output), one per kPrefixBlockTokens full block. Hash i
     * commits to every token in blocks [0, i], so equal hashes mean
     * equal prefixes; a turn's stream is a strict prefix of the next
     * turn's stream in the same session. Empty for legacy traces (no
     * token content — the prefix cache then never matches).
     */
    std::vector<uint64_t> blockHashes;
    /** How many of blockHashes lie entirely within the prompt. */
    int64_t promptBlocks = 0;
    /**
     * Dominant-prefix key for cache-affinity routing: the chained hash
     * of the session's first-turn prompt (shared by every turn of the
     * session, distinct across sessions). 0 for legacy traces — the
     * affinity router then places each request least-loaded, with no
     * stickiness to preserve.
     */
    uint64_t affinityKey = 0;

    // ---- service-level constraints -----------------------------------
    /**
     * Absolute completion deadline (cycles); 0 = none, the default —
     * every layer then behaves bit-identically to a deadline-less
     * build. A deadline-aware admission policy may shed a request whose
     * deadline is provably unmeetable; a retry policy never re-submits
     * past it; a request finishing after it counts as a deadline miss.
     */
    dam::Cycle deadlineAt = 0;
    /** Submission attempt (0 = original; bumped per cluster retry). */
    int64_t attempt = 0;
    /** Brown-out class; Normal keeps priority-blind builds identical. */
    ReqPriority priority = ReqPriority::Normal;

    // ---- dynamic serving state --------------------------------------
    ReqState state = ReqState::Queued;
    int64_t prefilledTokens = 0;
    /** Sub-token prefill progress (flops), engine bookkeeping. */
    double prefillFlopsDone = 0.0;
    int64_t generated = 0;
    dam::Cycle firstTokenAt = 0; ///< valid once generated >= 1
    /** Terminal stamp: completion, failure, or shed cycle. */
    dam::Cycle finishedAt = 0;
    /**
     * Prompt tokens already resident in the prefix cache at admission
     * (set by ContinuousBatcher::admit, 0 when the cache is disabled or
     * cold). Capped at promptLen - 1: the final prompt token is always
     * processed so the first output token has a compute event to come
     * from. Fixed for the request's lifetime once admitted.
     */
    int64_t cachedPrefixTokens = 0;
    /**
     * Prompt tokens whose KV arrives over the wire instead of being
     * recomputed: migrated KV shards and cross-replica prefix-cache
     * fetches. The transfer latency is charged by the cluster before
     * the incarnation re-arrives; here the tokens only skip prefill
     * compute — unlike cachedPrefixTokens they are NOT resident in the
     * local cache, so they reserve KV budget like any other token.
     */
    int64_t remoteKvTokens = 0;

    /** Current KV context length (prompt + generated so far). */
    int64_t contextLen() const { return promptLen + generated; }

    /**
     * Prompt tokens that skip prefill compute: the better of the local
     * cache hit and the remotely transferred KV (they overlap — both
     * cover a prefix of the prompt). Capped like cachedPrefixTokens so
     * the first output token always has a compute event.
     */
    int64_t prefillSkipTokens() const
    {
        int64_t remote = remoteKvTokens;
        if (remote > promptLen - 1)
            remote = promptLen - 1;
        return cachedPrefixTokens > remote ? cachedPrefixTokens : remote;
    }

    /**
     * KV tokens this request must newly reserve at admission: the
     * worst-case footprint (prompt + max output) minus the cached-prefix
     * tokens whose KV is already resident in the prefix cache and kept
     * alive by the admission pin. Reserving the full prompt here would
     * double-count the cached prefix — once in the cache's occupancy,
     * once in the batcher budget — and starve admission exactly on the
     * shared-prefix traces the cache exists for. cachedPrefixTokens is
     * set at admission and never changes while the request runs, so
     * release() symmetrically frees what admit() reserved.
     */
    int64_t kvReservationTokens() const
    {
        return promptLen + outputLen - cachedPrefixTokens;
    }

    bool done() const { return state == ReqState::Finished; }

    /** Finished, failed, shed, or migrated away: no further service
     *  possible on this replica. */
    bool
    terminal() const
    {
        return state == ReqState::Finished || state == ReqState::Failed ||
               state == ReqState::Shed || state == ReqState::Migrated;
    }
};

/** Synthetic arrival/length workload parameters. */
struct TraceConfig
{
    int64_t numRequests = 200;
    /** Mean arrivals per 1000 cycles of simulated time. */
    double arrivalsPerKcycle = 0.001;

    /** Prompt length: log-normal around the mean, clamped. */
    int64_t promptMean = 128;
    int64_t promptMin = 16;
    int64_t promptMax = 1024;
    double promptSigma = 0.6; ///< underlying normal sigma

    /** Output length: log-normal around the mean, clamped. */
    int64_t outputMean = 32;
    int64_t outputMin = 4;
    int64_t outputMax = 128;
    double outputSigma = 0.5;

    /**
     * On/off burst modulation. With burstPeriod == 0 arrivals are plain
     * Poisson. Otherwise time alternates between an "on" window of
     * burstDuty * burstPeriod cycles where the rate is multiplied by
     * burstFactor and an "off" window where it is divided by it —
     * bursty traffic with the same long-run mean shape, which is what
     * separates queue-depth-driven resource policies from static
     * splits.
     */
    dam::Cycle burstPeriod = 0;
    double burstDuty = 0.3;
    double burstFactor = 4.0;

    /**
     * Per-request completion deadline, relative to arrival (deadlineAt =
     * arrival + deadlineCycles); 0, the default, generates deadline-less
     * traces that are bit-identical to previous builds.
     */
    dam::Cycle deadlineCycles = 0;

    /**
     * Priority class mix for brown-out studies. Both 0 (the default)
     * draws nothing from the RNG and marks every request Normal, so
     * priority-free traces stay bit-identical to previous builds. With
     * either fraction positive, each request draws one uniform (after
     * its length draws): u < lowPriorityFrac → Low, u >
     * 1 - highPriorityFrac → High, Normal between.
     */
    double lowPriorityFrac = 0;
    double highPriorityFrac = 0;

    // ---- conversation model (numSessions > 0 switches it on) ---------
    /**
     * With numSessions > 0 the trace is generated from a multi-turn
     * conversation model instead of independent single-turn requests:
     * numSessions sessions arrive as a (burst-modulated) Poisson
     * process at arrivalsPerKcycle, each session runs turnsPerSession
     * turns, and turn t's prompt is the session's full prior context —
     * shared system prompt, every earlier turn's prompt delta and
     * generated output — plus a fresh user delta. Token content is
     * synthesized deterministically, so the per-block prefix hashes of
     * a session's turns genuinely nest and the system prompt is
     * bit-identical across sessions; numRequests is ignored (the trace
     * holds numSessions * turnsPerSession requests). Prompt lengths
     * follow from the context, so promptMean/Min/Max govern only the
     * per-turn delta in this mode (see turnDeltaMean).
     */
    int64_t numSessions = 0;
    int64_t turnsPerSession = 4;
    /** Tokens of system prompt shared by every session (may be 0). */
    int64_t sharedSystemPromptLen = 64;
    /** Mean new user tokens per turn (log-normal, promptSigma,
     *  clamped to [promptMin, promptMax]). */
    int64_t turnDeltaMean = 96;
    /**
     * Mean cycles between a turn's arrival and the next turn of the
     * same session (exponential): user think time plus service. Short
     * gaps make the next turn arrive before the previous finished, so
     * its freshly generated suffix is not yet cached — partial hits,
     * exactly like a real impatient user.
     */
    dam::Cycle turnGapMean = 4'000'000;
};

/**
 * Generate a request trace, sorted by arrival time. Deterministic for a
 * fixed (config, seed) pair.
 */
std::vector<Request> generateTrace(const TraceConfig& cfg, uint64_t seed);

} // namespace step::runtime
