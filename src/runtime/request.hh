/**
 * @file
 * Request model for the serving runtime. A request is a prompt that must
 * be prefilled, then a sequence of decode tokens, with an arrival time
 * drawn from a seeded synthetic workload (Poisson or bursty on/off
 * modulated Poisson). This is the request-level dynamism — variable KV
 * lengths, variable batch composition, bursty load — that the STeP
 * paper's streaming abstraction is built to exploit.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "dam/task.hh"

namespace step::runtime {

enum class ReqState : uint8_t {
    Queued,     ///< arrived, waiting for admission
    Prefilling, ///< admitted, prompt being processed
    Decoding,   ///< first token emitted, generating
    Finished,
};

struct Request
{
    int64_t id = 0;
    dam::Cycle arrival = 0;
    int64_t promptLen = 0; ///< tokens to prefill
    int64_t outputLen = 1; ///< tokens to generate (includes first token)

    // ---- dynamic serving state --------------------------------------
    ReqState state = ReqState::Queued;
    int64_t prefilledTokens = 0;
    /** Sub-token prefill progress (flops), engine bookkeeping. */
    double prefillFlopsDone = 0.0;
    int64_t generated = 0;
    dam::Cycle firstTokenAt = 0; ///< valid once generated >= 1
    dam::Cycle finishedAt = 0;   ///< valid once state == Finished

    /** Current KV context length (prompt + generated so far). */
    int64_t contextLen() const { return promptLen + generated; }

    /** Worst-case KV footprint in tokens, reserved at admission. */
    int64_t kvReservationTokens() const { return promptLen + outputLen; }

    bool done() const { return state == ReqState::Finished; }
};

/** Synthetic arrival/length workload parameters. */
struct TraceConfig
{
    int64_t numRequests = 200;
    /** Mean arrivals per 1000 cycles of simulated time. */
    double arrivalsPerKcycle = 0.001;

    /** Prompt length: log-normal around the mean, clamped. */
    int64_t promptMean = 128;
    int64_t promptMin = 16;
    int64_t promptMax = 1024;
    double promptSigma = 0.6; ///< underlying normal sigma

    /** Output length: log-normal around the mean, clamped. */
    int64_t outputMean = 32;
    int64_t outputMin = 4;
    int64_t outputMax = 128;
    double outputSigma = 0.5;

    /**
     * On/off burst modulation. With burstPeriod == 0 arrivals are plain
     * Poisson. Otherwise time alternates between an "on" window of
     * burstDuty * burstPeriod cycles where the rate is multiplied by
     * burstFactor and an "off" window where it is divided by it —
     * bursty traffic with the same long-run mean shape, which is what
     * separates queue-depth-driven resource policies from static
     * splits.
     */
    dam::Cycle burstPeriod = 0;
    double burstDuty = 0.3;
    double burstFactor = 4.0;
};

/**
 * Generate a request trace, sorted by arrival time. Deterministic for a
 * fixed (config, seed) pair.
 */
std::vector<Request> generateTrace(const TraceConfig& cfg, uint64_t seed);

} // namespace step::runtime
