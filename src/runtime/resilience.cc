#include "runtime/resilience.hh"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hh"
#include "support/error.hh"

namespace step::runtime {

// ---- circuit breakers --------------------------------------------------

const char*
breakerStateName(BreakerState s)
{
    switch (s) {
    case BreakerState::Closed: return "closed";
    case BreakerState::Open: return "open";
    case BreakerState::HalfOpen: return "half-open";
    }
    return "?";
}

BreakerState
BreakerTimeline::stateAt(dam::Cycle c) const
{
    for (const auto& w : open)
        if (w.start <= c && (w.end == 0 || c < w.end))
            return BreakerState::Open;
    for (const auto& w : halfOpen)
        if (w.start <= c && (w.end == 0 || c < w.end))
            return BreakerState::HalfOpen;
    return BreakerState::Closed;
}

BreakerTimeline
computeBreakerTimeline(const ReplicaFaultTimeline& t,
                       const BreakerConfig& cfg)
{
    BreakerTimeline b;
    for (const auto& d : t.downs) {
        // A crash opens the breaker for the whole outage; recovery
        // starts the half-open probation. A permanent crash never
        // half-opens.
        b.open.push_back({d.failAt, d.recoverAt});
        if (d.recoverAt != 0)
            b.halfOpen.push_back(
                {d.recoverAt, d.recoverAt + cfg.cooldownCycles});
    }
    for (const auto& s : t.slowdowns) {
        // Only a *sustained* deep slowdown trips the breaker, and only
        // after the detection lag — the health scorer needs to observe
        // the degradation before it can act on it.
        if (s.factor > cfg.openBelowFactor)
            continue;
        if (s.end - s.start <= cfg.detectCycles)
            continue;
        b.open.push_back({s.start + cfg.detectCycles, s.end});
        b.halfOpen.push_back({s.end, s.end + cfg.cooldownCycles});
    }
    auto byStart = [](const BreakerTimeline::Window& a,
                      const BreakerTimeline::Window& b) {
        return a.start < b.start;
    };
    std::sort(b.open.begin(), b.open.end(), byStart);
    std::sort(b.halfOpen.begin(), b.halfOpen.end(), byStart);
    return b;
}

// ---- telemetry-inferred breakers ---------------------------------------

bool
parseBreakerSource(std::string_view s, BreakerSource* out)
{
    if (s == "plan") {
        *out = BreakerSource::Plan;
        return true;
    }
    if (s == "telemetry") {
        *out = BreakerSource::Telemetry;
        return true;
    }
    return false;
}

void
HealthMonitor::observeWindow(uint64_t failed, uint64_t first_tokens,
                             uint64_t p95_ttft)
{
    // Decisions land when the window closes — the monitor cannot act
    // on a window it has not fully observed.
    const dam::Cycle close_at =
        dam::Cycle(window_ + 1) * cfg_.windowCycles;
    ++window_;
    const bool error =
        cfg_.openOnErrors > 0 && failed >= uint64_t(cfg_.openOnErrors);
    const bool degraded =
        !error && first_tokens > 0 &&
        double(p95_ttft) > cfg_.degradedTtftCycles;
    const bool healthy =
        !error && !degraded && first_tokens > 0;
    if (!open_) {
        if (error) {
            open_ = true;
            openAt_ = close_at;
            degraded_ = 0;
        } else if (degraded) {
            if (++degraded_ >= cfg_.openAfterDegraded) {
                open_ = true;
                openAt_ = close_at;
                degraded_ = 0;
            }
        } else if (healthy) {
            degraded_ = 0;
        }
        // Quiet window while closed: the degraded streak neither grows
        // nor resets — no evidence either way.
        return;
    }
    if (error || degraded) {
        healthy_ = 0;
        return;
    }
    if (healthy && ++healthy_ >= cfg_.closeAfterHealthy) {
        tl_.open.push_back({openAt_, close_at});
        tl_.halfOpen.push_back(
            {close_at, close_at + cfg_.cooldownCycles});
        open_ = false;
        healthy_ = 0;
    }
}

BreakerTimeline
HealthMonitor::finish()
{
    if (open_) {
        // Still open when the telemetry ends: permanent, like a
        // plan-derived breaker for an unrecovered crash.
        tl_.open.push_back({openAt_, 0});
        open_ = false;
    }
    return std::move(tl_);
}

BreakerTimeline
inferBreakerTimeline(const obs::MetricsRegistry& m,
                     const HealthMonitorConfig& cfg)
{
    STEP_ASSERT(m.config().windowCycles == cfg.windowCycles,
                "health monitor window ("
                    << cfg.windowCycles
                    << ") does not match the metrics registry's ("
                    << m.config().windowCycles << ")");
    HealthMonitor hm(cfg);
    const obs::MetricsRegistry::Instrument* fail =
        m.find("requests_failed");
    const obs::MetricsRegistry::Instrument* ttft =
        m.find("ttft_cycles");
    size_t slots = 0;
    if (fail)
        slots = std::max(slots, fail->series.windowSlots());
    if (ttft)
        slots = std::max(slots, ttft->series.windowSlots());
    for (size_t w = 0; w < slots; ++w) {
        const uint64_t failed =
            fail ? fail->series.window(w).count : 0;
        uint64_t first_tokens = 0;
        uint64_t p95 = 0;
        if (ttft) {
            if (const obs::LogHistogram* h =
                    ttft->series.windowHistogram(w);
                h && !h->empty()) {
                first_tokens = h->count();
                p95 = h->percentile(95.0);
            }
        }
        hm.observeWindow(failed, first_tokens, p95);
    }
    return hm.finish();
}

// ---- overload brown-out ------------------------------------------------

double
BrownoutPolicy::pressure(const AdmissionContext& ctx,
                         const BrownoutConfig& cfg)
{
    double p = 0.0;
    if (cfg.queueFullDepth > 0)
        p = std::max(p, double(ctx.waitingRequests) /
                            double(cfg.queueFullDepth));
    if (ctx.kvBudgetBytes > 0)
        p = std::max(p, double(ctx.kvReservedBytes) /
                            double(ctx.kvBudgetBytes));
    if (ctx.nominalComputeBw > 0)
        p = std::max(p, 1.0 - double(ctx.totalComputeBw) /
                                  double(ctx.nominalComputeBw));
    return p;
}

bool
BrownoutPolicy::shouldShed(const Request& r,
                           const AdmissionContext& ctx) const
{
    double p = pressure(ctx, cfg);
    if (p >= cfg.refuseAt && r.priority != ReqPriority::High)
        return true;
    if (p >= cfg.shedLowAt && r.priority == ReqPriority::Low)
        return true;
    return fallback && fallback->shouldShed(r, ctx);
}

int64_t
BrownoutPolicy::outputCap(const Request& r,
                          const AdmissionContext& ctx) const
{
    if (r.priority != ReqPriority::High &&
        pressure(ctx, cfg) >= cfg.capAt)
        return cfg.outputCapTokens;
    return fallback ? fallback->outputCap(r, ctx) : 0;
}

// ---- autoscaler --------------------------------------------------------

std::vector<AutoscaleStep>
computeAutoscaleTimeline(const AutoscaleConfig& cfg,
                         const std::vector<Request>& reqs,
                         const FaultPlan& plan, int64_t replicas,
                         double flopsPerToken, int64_t perReplicaBw)
{
    std::vector<AutoscaleStep> steps;
    if (!cfg.enabled || cfg.evalIntervalCycles <= 0 || reqs.empty() ||
        perReplicaBw <= 0 || flopsPerToken <= 0)
        return steps;

    const int64_t maxR =
        cfg.maxReplicas > 0 ? std::min(cfg.maxReplicas, replicas)
                            : replicas;
    const int64_t minR =
        std::clamp<int64_t>(cfg.minReplicas, 1, maxR);

    int64_t active = std::clamp<int64_t>(replicas, minR, maxR);
    if (active != replicas)
        steps.push_back({0, active});

    dam::Cycle horizon = 0;
    for (const auto& r : reqs)
        horizon = std::max(horizon, r.arrival);

    // Walk the trace interval by interval: arrivals are sorted, so one
    // cursor suffices. The offered load is the analytic flops the
    // interval's arrivals will eventually demand — prompt and output
    // tokens both priced at the prefill cost, a deliberate lower bound
    // that keeps the scaler from thrashing on decode-heavy noise.
    size_t cursor = 0;
    for (dam::Cycle t = 0; t <= horizon; t += cfg.evalIntervalCycles) {
        double offered = 0.0;
        while (cursor < reqs.size() &&
               reqs[cursor].arrival < t + cfg.evalIntervalCycles) {
            offered += double(reqs[cursor].promptLen +
                              reqs[cursor].outputLen) *
                       flopsPerToken;
            ++cursor;
        }
        int64_t aliveActive = 0;
        for (int64_t r = 0; r < active; ++r)
            if (plan.aliveAt(r, t))
                ++aliveActive;
        const double capacity = double(aliveActive) *
                                double(perReplicaBw) *
                                double(cfg.evalIntervalCycles);
        const double util =
            capacity > 0 ? offered / capacity
                         : (offered > 0 ? 1.0 : 0.0);
        int64_t next = active;
        if (util > cfg.scaleUpUtil)
            next = std::min(active + 1, maxR);
        else if (util < cfg.scaleDownUtil)
            next = std::max(active - 1, minR);
        if (next != active) {
            active = next;
            steps.push_back({t + cfg.evalIntervalCycles, active});
        }
    }
    return steps;
}

int64_t
autoscaleActiveAt(const std::vector<AutoscaleStep>& steps, dam::Cycle c,
                  int64_t replicas)
{
    int64_t active = replicas;
    for (const auto& s : steps) {
        if (s.at > c)
            break;
        active = s.active;
    }
    return active;
}

// ---- health-scored placement ------------------------------------------

namespace {

double
slowFactorAt(const FaultPlan& plan, int64_t r, dam::Cycle c)
{
    double f = 1.0;
    for (const auto& w : plan.slowdowns)
        if (w.replica == r && w.start <= c && c < w.end)
            f *= w.bwFactor;
    return f <= 0.0 ? 1.0 : f;
}

} // namespace

int64_t
pickResilientTarget(const std::vector<int64_t>& load,
                    const FaultPlan& plan,
                    const std::vector<BreakerTimeline>& breakers,
                    const std::vector<AutoscaleStep>& autoscale,
                    dam::Cycle at, int64_t affinityOwner,
                    double affinityLoadFactor,
                    double halfOpenLoadPenalty,
                    const std::vector<double>* bwScales)
{
    const int64_t n = int64_t(load.size());
    const int64_t active = autoscaleActiveAt(autoscale, at, n);

    auto candidates = [&](bool requireActive,
                          bool requireBreaker) {
        std::vector<int64_t> c;
        for (int64_t r = 0; r < n; ++r) {
            if (!plan.aliveAt(r, at))
                continue;
            if (requireActive && r >= active)
                continue;
            if (requireBreaker && r < int64_t(breakers.size()) &&
                breakers[r].openAt(at))
                continue;
            c.push_back(r);
        }
        return c;
    };

    // Prefer healthy active replicas; relax parking, then the breaker,
    // before giving up — an open breaker beats a dead cluster.
    std::vector<int64_t> cand = candidates(true, true);
    if (cand.empty())
        cand = candidates(false, true);
    if (cand.empty())
        cand = candidates(false, false);
    if (cand.empty())
        return -1;

    int64_t minLoad = load[cand.front()];
    for (int64_t r : cand)
        minLoad = std::min(minLoad, load[r]);

    // Cache-affinity-aware placement: the owner's warm radix tree is
    // worth a moderately longer queue.
    if (affinityOwner >= 0 &&
        std::find(cand.begin(), cand.end(), affinityOwner) !=
            cand.end() &&
        double(load[affinityOwner]) <=
            affinityLoadFactor * double(minLoad))
        return affinityOwner;

    int64_t best = -1;
    double bestScore = 0.0;
    for (int64_t r : cand) {
        // Effective bandwidth factor: transient slowdown x static
        // capacity scale — a half-speed replica should absorb half
        // the queue, whichever way it got slow.
        double factor = slowFactorAt(plan, r, at);
        if (bwScales && r < int64_t(bwScales->size()) &&
            (*bwScales)[size_t(r)] > 0.0)
            factor *= (*bwScales)[size_t(r)];
        double score = double(load[r]) / factor;
        if (r < int64_t(breakers.size()) &&
            breakers[r].stateAt(at) == BreakerState::HalfOpen)
            score *= halfOpenLoadPenalty;
        if (best < 0 || score < bestScore) {
            best = r;
            bestScore = score;
        }
    }
    return best;
}

// ---- cluster-level instants -------------------------------------------

const char*
clusterInstantName(ClusterInstant::Kind k)
{
    switch (k) {
    case ClusterInstant::BreakerOpen: return "breaker.open";
    case ClusterInstant::BreakerHalfOpen: return "breaker.half_open";
    case ClusterInstant::BreakerClosed: return "breaker.closed";
    case ClusterInstant::AutoscaleActive: return "autoscale.active";
    }
    return "?";
}

} // namespace step::runtime
