#include "runtime/prefixcache.hh"

#include <algorithm>

#include "support/error.hh"

namespace step::runtime {

PrefixCache::PrefixCache(PrefixCacheConfig cfg) : cfg_(cfg)
{
    STEP_ASSERT(cfg_.capacityTokens >= 0, "negative prefix-cache capacity");
    STEP_ASSERT(cfg_.capacityTokens == 0 ||
                    cfg_.capacityTokens >= kPrefixBlockTokens,
                "prefix-cache capacity below one block ("
                    << kPrefixBlockTokens << " tokens)");
}

// unique_ptr children destruct recursively; prefix chains are a few
// hundred blocks deep at most, well within stack limits.
PrefixCache::~PrefixCache() = default;

PrefixCache::Node*
PrefixCache::walk(const std::vector<uint64_t>& block_hashes,
                  int64_t nblocks) const
{
    Node* n = &root_;
    for (int64_t i = 0; i < nblocks; ++i) {
        auto it = n->children.find(block_hashes[static_cast<size_t>(i)]);
        if (it == n->children.end())
            break;
        n = it->second.get();
    }
    return n;
}

int64_t
PrefixCache::depthOf(const Node* n) const
{
    int64_t d = 0;
    for (; n != &root_; n = n->parent)
        ++d;
    return d;
}

int64_t
PrefixCache::matchTokens(const Request& r) const
{
    if (cfg_.capacityTokens == 0 || r.blockHashes.empty() ||
        r.promptBlocks == 0)
        return 0;
    const int64_t nblocks =
        std::min<int64_t>(r.promptBlocks,
                          static_cast<int64_t>(r.blockHashes.size()));
    Node* deepest = walk(r.blockHashes, nblocks);
    int64_t matched = depthOf(deepest) * kPrefixBlockTokens;
    // The final prompt token always runs through prefill so the first
    // output token has a compute event to come from (and TTFT stays
    // strictly after arrival).
    return std::min(matched, r.promptLen - 1);
}

bool
PrefixCache::evictable(const Node* n) const
{
    return n != &root_ && n->children.empty() && n->pins == 0;
}

void
PrefixCache::evictRemove(Node* n)
{
    evictQueue_.erase({n->lastUsed, n->id});
}

void
PrefixCache::evictAddIfEligible(Node* n)
{
    if (evictable(n))
        evictQueue_.insert({n->lastUsed, n->id});
}

void
PrefixCache::acquire(Request& r)
{
    if (cfg_.capacityTokens == 0)
        return;
    ++stats_.lookups;
    if (r.blockHashes.empty() || r.promptBlocks == 0)
        return;
    const int64_t nblocks =
        std::min<int64_t>(r.promptBlocks,
                          static_cast<int64_t>(r.blockHashes.size()));
    Node* deepest = walk(r.blockHashes, nblocks);
    int64_t matched = std::min(depthOf(deepest) * kPrefixBlockTokens,
                               r.promptLen - 1);
    STEP_ASSERT(r.cachedPrefixTokens == 0 ||
                    r.cachedPrefixTokens == matched,
                "acquire disagrees with the matchTokens admission sized "
                "against (cache mutated in between?)");
    r.cachedPrefixTokens = matched;
    if (matched <= 0)
        return;
    ++stats_.hits;
    stats_.tokensSaved += matched;
    // Pin and freshen the whole matched path; the pin holds until the
    // request finishes, so eviction can never drop in-flight KV.
    for (Node* n = deepest; n != &root_; n = n->parent) {
        evictRemove(n);
        ++n->pins;
        n->lastUsed = ++tick_;
        n->lastTouch = clock_;
    }
    STEP_ASSERT(pinned_.find(&r) == pinned_.end(),
                "request " << r.id << " acquired the prefix cache twice");
    pinned_.emplace(&r, deepest);
}

void
PrefixCache::release(const Request& r)
{
    auto it = pinned_.find(&r);
    if (it == pinned_.end())
        return;
    for (Node* n = it->second; n != &root_; n = n->parent) {
        STEP_ASSERT(n->pins > 0, "prefix-cache pin underflow");
        --n->pins;
        evictAddIfEligible(n);
    }
    pinned_.erase(it);
}

bool
PrefixCache::evictOne()
{
    if (evictQueue_.empty())
        return false;
    auto [tick, id] = *evictQueue_.begin();
    evictQueue_.erase(evictQueue_.begin());
    auto it = byId_.find(id);
    STEP_ASSERT(it != byId_.end(), "evict queue references unknown node");
    Node* n = it->second;
    STEP_ASSERT(evictable(n), "evict queue held a non-evictable node");
    Node* parent = n->parent;
    byId_.erase(it);
    parent->children.erase(n->hash); // frees n
    stats_.occupancyTokens -= kPrefixBlockTokens;
    ++stats_.evictedBlocks;
    evictAddIfEligible(parent); // may have just become an unpinned leaf
    return true;
}

int64_t
PrefixCache::evictIdle()
{
    if (cfg_.idleTtlCycles == 0)
        return 0;
    int64_t evicted = 0;
    // The queue is ordered by (lastUsed tick, id) and ticks are handed
    // out in clock order, so the front is always the stalest unpinned
    // leaf: stop at the first fresh one.
    while (!evictQueue_.empty()) {
        auto it = byId_.find(evictQueue_.begin()->second);
        STEP_ASSERT(it != byId_.end(),
                    "evict queue references unknown node");
        if (it->second->lastTouch + cfg_.idleTtlCycles > clock_)
            break;
        bool ok = evictOne();
        STEP_ASSERT(ok, "idle eviction failed on a queued leaf");
        ++evicted;
    }
    stats_.ttlEvictedBlocks += evicted;
    return evicted;
}

void
PrefixCache::insert(const std::vector<uint64_t>& block_hashes,
                    int64_t nblocks)
{
    if (cfg_.capacityTokens == 0)
        return;
    nblocks = std::min<int64_t>(nblocks,
                                static_cast<int64_t>(block_hashes.size()));
    Node* n = &root_;
    // Pin the path as we descend so eviction pressure from this very
    // insert cannot cannibalize it; unpinned on the way out.
    std::vector<Node*> path;
    path.reserve(static_cast<size_t>(nblocks));
    for (int64_t i = 0; i < nblocks; ++i) {
        uint64_t h = block_hashes[static_cast<size_t>(i)];
        auto it = n->children.find(h);
        Node* child;
        if (it != n->children.end()) {
            child = it->second.get();
        } else {
            while (stats_.occupancyTokens + kPrefixBlockTokens >
                       cfg_.capacityTokens &&
                   evictOne()) {
            }
            if (stats_.occupancyTokens + kPrefixBlockTokens >
                cfg_.capacityTokens) {
                stats_.skippedBlocks += nblocks - i;
                break;
            }
            auto node = std::make_unique<Node>();
            child = node.get();
            child->hash = h;
            child->id = nextId_++;
            child->parent = n;
            // The parent stops being a leaf; its evict entry (if any)
            // disappears until it is childless again.
            evictRemove(n);
            n->children.emplace(h, std::move(node));
            byId_.emplace(child->id, child);
            stats_.occupancyTokens += kPrefixBlockTokens;
            stats_.peakOccupancyTokens = std::max(
                stats_.peakOccupancyTokens, stats_.occupancyTokens);
            ++stats_.insertedBlocks;
        }
        evictRemove(child);
        ++child->pins;
        child->lastUsed = ++tick_;
        child->lastTouch = clock_;
        path.push_back(child);
        n = child;
    }
    for (Node* p : path) {
        --p->pins;
        evictAddIfEligible(p);
    }
}

} // namespace step::runtime
