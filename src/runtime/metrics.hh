/**
 * @file
 * Serving metrics: TTFT (time to first token), TPOT (time per output
 * token), throughput, and SLO-gated goodput, with nearest-rank p50/p99
 * built on support/stats. All times are simulated cycles.
 */
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "dam/task.hh"
#include "obs/counters.hh"
#include "runtime/request.hh"

namespace step::obs {
class MetricsRegistry;
}

namespace step::runtime {

/** Per-request latencies (cycles). */
double ttft(const Request& r);
/** Mean decode latency per token after the first; 0 if outputLen == 1. */
double tpot(const Request& r);

/** Latency service-level objective used to gate goodput. */
struct SloConfig
{
    double ttftCycles = 5e6;
    double tpotCycles = 1.5e6;

    bool
    meets(const Request& r) const
    {
        return ttft(r) <= ttftCycles &&
               (r.outputLen <= 1 || tpot(r) <= tpotCycles);
    }
};

struct ServingSummary
{
    int64_t completed = 0;
    int64_t generatedTokens = 0;
    dam::Cycle makespan = 0;

    double ttftP50 = 0, ttftP95 = 0, ttftP99 = 0, ttftMean = 0;
    double tpotP50 = 0, tpotP95 = 0, tpotP99 = 0, tpotMean = 0;

    int64_t sloCompliant = 0; ///< completed requests meeting the SLO
    int64_t sloGoodTokens = 0; ///< tokens from SLO-compliant requests
    /** Generated tokens per kilocycle, all completed requests. */
    double throughputTokensPerKcycle = 0;
    /** Generated tokens per kilocycle from SLO-compliant requests only. */
    double goodputTokensPerKcycle = 0;

    /** Useful FLOPs / (provisioned bandwidth * makespan); engine-filled. */
    double computeUtilization = 0;

    // ---- fault-tolerance metrics (all 0 on a fault-free run) ---------
    /** Requests that ended Failed (replica crash) and were not retried
     *  to completion elsewhere. */
    int64_t failedRequests = 0;
    /** Failed submissions that a RetryPolicy re-submitted (counted at
     *  the failing replica; the retry incarnation is accounted wherever
     *  it lands). */
    int64_t retriedRequests = 0;
    /** Requests dropped by the admission policy. */
    int64_t shedRequests = 0;
    /**
     * Incarnations the resilience tier drained off a degraded replica
     * mid-flight (counted at the source, like retriedRequests; the new
     * incarnation is accounted wherever it lands). Not part of the
     * availability denominator — a migration is in-transit work, not a
     * client-visible outcome.
     */
    int64_t migratedRequests = 0;
    /** Completed requests that finished after their deadline. */
    int64_t deadlineMisses = 0;
    /**
     * completed / (completed + failed + shed); derived, 1.0 when no
     * request reached a terminal state (never NaN). Retried-and-
     * completed requests count once, as completions.
     */
    double availability = 1.0;

    // ---- windowed SLO attainment (all 0 without a metrics registry) --
    /** Fixed windows with at least one completion-latency sample. */
    int64_t sloWindows = 0;
    /** Of those, windows whose p95 TTFT and p95 TPOT met the SLO with
     *  no deadline miss — the per-window attainment the sims report. */
    int64_t sloWindowsAttained = 0;
    /** Worst windowed p95 TTFT / TPOT (bucket representatives, cycles);
     *  the tail the run-level p99 averages away. */
    uint64_t sloWorstWindowP95Ttft = 0;
    uint64_t sloWorstWindowP95Tpot = 0;

    // ---- prefix-cache metrics (all 0 when the cache is disabled) -----
    /** Prompt tokens of completed requests (denominator for savings). */
    int64_t promptTokens = 0;
    int64_t prefixLookups = 0; ///< admissions that consulted the cache
    int64_t prefixHits = 0;    ///< lookups matching >= 1 cached block
    /** Prompt tokens served from cache instead of being prefilled. */
    int64_t prefixTokensSaved = 0;
    /**
     * Peak cache occupancy in KV tokens, summed across replicas.
     * Replica caches are disjoint, so the sum is an upper *bound* on
     * the cluster's aggregate cache footprint — the per-replica peaks
     * need not be simultaneous, so this can overstate the true
     * cluster-wide peak. Read prefixPeakOccupancyMaxReplica for the
     * busiest single replica's provisioning requirement.
     */
    int64_t prefixPeakOccupancyTokens = 0;
    /**
     * Largest single-replica peak occupancy (KV tokens): what any one
     * replica's cache must be provisioned for. Equals
     * prefixPeakOccupancyTokens for a single engine; merged by max.
     */
    int64_t prefixPeakOccupancyMaxReplica = 0;
    /** prefixHits / prefixLookups; derived, 0 with no lookups. */
    double prefixHitRate = 0;
    /** prefixTokensSaved / promptTokens; derived, 0 with no prompts. */
    double prefillTokensSavedFrac = 0;

    /**
     * Raw per-request latency samples (request order), retained so a
     * cluster can recompute aggregate percentiles over the union of its
     * replicas' samples — a p99 of per-replica p99s is not a p99.
     */
    std::vector<double> ttftSamples;
    std::vector<double> tpotSamples;

    /**
     * Final telemetry counter values snapshotted from the engine's
     * CounterRegistry (empty when tracing is off). Merged across
     * replicas by name: monotonic counters sum, gauges take the max.
     */
    std::vector<obs::CounterSample> counters;
};

/**
 * Aggregate terminal requests into a summary: Finished requests feed the
 * latency/throughput statistics (and deadlineMisses when they finish
 * past a nonzero deadline), Failed and Shed requests only the fault
 * counters and availability. Non-terminal requests are ignored (the
 * engine runs traces to a terminal state, so normally none).
 */
ServingSummary summarize(const std::vector<Request>& reqs,
                         dam::Cycle makespan, const SloConfig& slo);

/** Re-derive availability from the summary's terminal counts (1.0 when
 *  none — never NaN). Called by summarize/mergeSummaries and by the
 *  cluster after it reclassifies retried failures. */
void refreshAvailability(ServingSummary& s);

/**
 * Merge per-replica summaries into one cluster-level summary. Counts,
 * token totals, and prefix-cache counters add (replica caches are
 * disjoint, so summed peak occupancy bounds the cluster's aggregate
 * cache footprint) and the hit-rate/savings fractions are re-derived
 * from the summed counters; the makespan is the maximum (replicas run
 * concurrently from cycle 0, so the cluster finishes when its slowest
 * replica does) and rates are recomputed against it; percentiles and
 * means are recomputed from the concatenated raw sample vectors, never
 * from the per-replica statistics. computeUtilization is left 0 — it
 * needs the cluster's provisioned bandwidth, which the caller applies
 * from the merged utilization timeline. Deterministic in the order of
 * @p parts.
 */
ServingSummary mergeSummaries(const std::vector<ServingSummary>& parts);

/**
 * Re-derive prefixHitRate / prefillTokensSavedFrac from the summary's
 * prefix counters — the one definition of those ratios, shared by
 * summarize/mergeSummaries and by the engine, which attaches the cache
 * counters only after summarize has run.
 */
void refreshPrefixDerivedStats(ServingSummary& s);

void printSummary(const ServingSummary& s, std::ostream& os);

/**
 * Windowed SLO attainment computed from a metrics registry's
 * `ttft_cycles` / `tpot_cycles` histogram deltas and `deadline_misses`
 * series. A window is monitored when either latency instrument saw a
 * sample; it is attained when every present signal met its target
 * (p95 TTFT <= slo.ttftCycles, p95 TPOT <= slo.tpotCycles, zero
 * deadline misses). Deterministic: percentiles are bucket
 * representatives, windows are walked in index order.
 */
struct SloWindowStats
{
    int64_t windows = 0;
    int64_t attained = 0;
    uint64_t worstP95Ttft = 0;
    uint64_t worstP95Tpot = 0;
};

SloWindowStats computeSloWindows(const obs::MetricsRegistry& m,
                                 const SloConfig& slo);

/** Fold computeSloWindows into the summary's slo* fields. */
void applySloWindows(ServingSummary& s, const obs::MetricsRegistry& m,
                     const SloConfig& slo);

} // namespace step::runtime
