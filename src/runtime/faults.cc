#include "runtime/faults.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/rng.hh"

namespace step::runtime {

// ---- ReplicaFaultTimeline ---------------------------------------------

bool
ReplicaFaultTimeline::downAt(dam::Cycle c) const
{
    for (const Down& d : downs)
        if (c >= d.failAt && (d.recoverAt == 0 || c < d.recoverAt))
            return true;
    return false;
}

double
ReplicaFaultTimeline::bwFactorAt(dam::Cycle c) const
{
    for (const Slow& s : slowdowns)
        if (c >= s.start && c < s.end)
            return s.factor;
    return 1.0;
}

dam::Cycle
ReplicaFaultTimeline::nextEventAfter(dam::Cycle c) const
{
    dam::Cycle next = kNoEvent;
    auto consider = [&](dam::Cycle t) {
        if (t > c && t < next)
            next = t;
    };
    for (const Down& d : downs) {
        consider(d.failAt);
        if (d.recoverAt != 0)
            consider(d.recoverAt);
    }
    for (const Slow& s : slowdowns) {
        consider(s.start);
        consider(s.end);
    }
    return next;
}

void
ReplicaFaultTimeline::normalize()
{
    std::sort(downs.begin(), downs.end(),
              [](const Down& a, const Down& b) {
                  return a.failAt < b.failAt;
              });
    for (size_t i = 0; i < downs.size(); ++i) {
        const Down& d = downs[i];
        if (d.recoverAt == 0) {
            if (i + 1 < downs.size())
                stepFatal("fault plan: permanent crash at cycle "
                          << d.failAt
                          << " is followed by a later event at cycle "
                          << downs[i + 1].failAt);
        } else {
            if (d.recoverAt <= d.failAt)
                stepFatal("fault plan: recovery at cycle " << d.recoverAt
                          << " does not follow its crash at cycle "
                          << d.failAt);
            if (i + 1 < downs.size() &&
                downs[i + 1].failAt < d.recoverAt)
                stepFatal("fault plan: crash windows overlap at cycle "
                          << downs[i + 1].failAt);
        }
    }
    std::sort(slowdowns.begin(), slowdowns.end(),
              [](const Slow& a, const Slow& b) {
                  return a.start < b.start;
              });
    for (size_t i = 0; i < slowdowns.size(); ++i) {
        const Slow& s = slowdowns[i];
        if (s.end <= s.start)
            stepFatal("fault plan: empty slowdown window at cycle "
                      << s.start);
        if (!(s.factor > 0.0) || s.factor > 1.0)
            stepFatal("fault plan: slowdown factor " << s.factor
                      << " outside (0, 1]");
        if (i + 1 < slowdowns.size() && slowdowns[i + 1].start < s.end)
            stepFatal("fault plan: slowdown windows overlap at cycle "
                      << slowdowns[i + 1].start);
    }
}

// ---- FaultPlan ---------------------------------------------------------

ReplicaFaultTimeline
FaultPlan::forReplica(int64_t r) const
{
    ReplicaFaultTimeline t;
    for (const FaultEvent& e : crashes)
        if (e.replica == r)
            t.downs.push_back({e.failAt, e.recoverAt});
    for (const SlowdownWindow& w : slowdowns)
        if (w.replica == r)
            t.slowdowns.push_back({w.start, w.end, w.bwFactor});
    t.normalize();
    return t;
}

bool
FaultPlan::aliveAt(int64_t r, dam::Cycle c) const
{
    for (const FaultEvent& e : crashes)
        if (e.replica == r && c >= e.failAt &&
            (e.recoverAt == 0 || c < e.recoverAt))
            return false;
    return true;
}

// ---- generation --------------------------------------------------------

namespace {

/** Exponential draw with the given mean (mean > 0). */
dam::Cycle
expoCycles(Rng& rng, double mean)
{
    double u = rng.uniform();
    // uniform() is in [0, 1); 1-u is in (0, 1], so the log is finite.
    double d = -std::log(1.0 - u) * mean;
    return static_cast<dam::Cycle>(std::max(1.0, std::ceil(d)));
}

} // namespace

FaultPlan
generateFaultPlan(const FaultPlanConfig& cfg, int64_t replicas,
                  uint64_t seed)
{
    FaultPlan plan;
    if (cfg.horizonCycles == 0)
        return plan;
    // One Rng, replicas walked in index order: the plan is a pure
    // function of (cfg, replicas, seed), independent of anything the
    // simulation later does.
    Rng rng(seed);
    for (int64_t r = 0; r < replicas; ++r) {
        if (cfg.mtbfCycles > 0) {
            dam::Cycle t = 0;
            while (true) {
                t += expoCycles(rng, cfg.mtbfCycles);
                if (t >= cfg.horizonCycles)
                    break;
                dam::Cycle recover =
                    cfg.mttrCycles > 0
                        ? t + expoCycles(rng, cfg.mttrCycles)
                        : 0;
                plan.crashes.push_back({r, t, recover});
                if (recover == 0)
                    break; // permanent: nothing after it matters
                t = recover;
            }
        }
        if (cfg.slowdownMtbfCycles > 0) {
            dam::Cycle t = 0;
            while (true) {
                t += expoCycles(rng, cfg.slowdownMtbfCycles);
                if (t >= cfg.horizonCycles)
                    break;
                dam::Cycle end =
                    t + expoCycles(rng, cfg.slowdownMeanCycles);
                plan.slowdowns.push_back(
                    {r, t, end, cfg.slowdownFactor});
                t = end;
            }
        }
    }
    return plan;
}

// ---- parsing -----------------------------------------------------------

bool
parseFaultPlan(std::string_view spec, FaultPlan* out, std::string* err)
{
    auto fail = [&](const std::string& msg) {
        if (err)
            *err = msg;
        return false;
    };
    FaultPlan plan;
    size_t pos = 0;
    while (pos < spec.size()) {
        size_t end = spec.find_first_of(",;", pos);
        std::string_view tok = spec.substr(
            pos, end == std::string_view::npos ? std::string_view::npos
                                               : end - pos);
        pos = end == std::string_view::npos ? spec.size() : end + 1;
        if (tok.empty())
            continue;
        size_t at = tok.find('@');
        if (at == std::string_view::npos)
            return fail("fault event '" + std::string(tok) +
                        "' has no '@' (want REPLICA@FAIL[:RECOVER])");
        FaultEvent e;
        try {
            e.replica = std::stoll(std::string(tok.substr(0, at)));
            std::string_view times = tok.substr(at + 1);
            size_t colon = times.find(':');
            e.failAt = static_cast<dam::Cycle>(
                std::stoull(std::string(times.substr(0, colon))));
            if (colon != std::string_view::npos)
                e.recoverAt = static_cast<dam::Cycle>(
                    std::stoull(std::string(times.substr(colon + 1))));
        } catch (const std::exception&) {
            return fail("fault event '" + std::string(tok) +
                        "' has a malformed number");
        }
        if (e.replica < 0)
            return fail("fault event '" + std::string(tok) +
                        "' names a negative replica");
        if (e.recoverAt != 0 && e.recoverAt <= e.failAt)
            return fail("fault event '" + std::string(tok) +
                        "' recovers before it fails");
        plan.crashes.push_back(e);
    }
    *out = std::move(plan);
    return true;
}

// ---- policies ----------------------------------------------------------

std::optional<dam::Cycle>
ExponentialBackoffRetry::reschedule(const Request& r, int64_t attempt,
                                    dam::Cycle failed_at) const
{
    if (attempt > maxRetries)
        return std::nullopt;
    double delay = static_cast<double>(backoffBaseCycles) *
                   std::pow(backoffMult, static_cast<double>(attempt - 1));
    auto rearrive = failed_at + static_cast<dam::Cycle>(
                                    std::max(1.0, std::ceil(delay)));
    // Never retry after the deadline: the re-submitted request could
    // only be shed or miss, adding load exactly where the cluster is
    // weakest.
    if (r.deadlineAt != 0 && rearrive > r.deadlineAt)
        return std::nullopt;
    return rearrive;
}

bool
DeadlineAwareShedPolicy::shouldShed(const Request& r,
                                    const AdmissionContext& ctx) const
{
    if (r.deadlineAt == 0)
        return false;
    if (ctx.now >= r.deadlineAt)
        return true;
    if (ctx.prefillFlopsPerToken <= 0 || ctx.totalComputeBw <= 0)
        return false; // no cost model: cannot prove anything, keep it
    // Optimistic completion bound: the uncached prompt suffix prefills
    // starting now at the *whole* machine's bandwidth, then decode
    // proceeds at the configured per-token floor. Anything the real
    // engine does (sharing bandwidth, queueing) only finishes later.
    const auto suffix = static_cast<double>(
        r.promptLen - r.prefillSkipTokens());
    auto prefill = static_cast<dam::Cycle>(std::ceil(
        suffix * ctx.prefillFlopsPerToken /
        static_cast<double>(ctx.totalComputeBw)));
    dam::Cycle decode =
        safetyDecodeCyclesPerToken *
        static_cast<dam::Cycle>(r.outputLen > 1 ? r.outputLen - 1 : 0);
    return ctx.now + prefill + decode > r.deadlineAt;
}

// ---- stall diagnostics -------------------------------------------------

std::string
StallDiagnostic::format() const
{
    std::ostringstream os;
    os << "serving engine stalled: " << reason << " (cycle " << now
       << ", iteration " << iterations << ")\n"
       << "  running requests : " << runningRequests << "\n"
       << "  kv occupancy     : " << kvReservedBytes << " / "
       << kvBudgetBytes << " B reserved\n"
       << "  cache pins       : " << cachePinnedRequests
       << " pinned paths, " << cacheOccupancyTokens
       << " tokens resident\n"
       << "  blocked queue    : " << blocked.size() << " request(s)";
    for (const BlockedRequest& b : blocked) {
        os << "\n    id " << b.id << " arrival " << b.arrival
           << " prompt " << b.promptLen << " output " << b.outputLen
           << " needs " << b.needKvBytes << " B KV";
    }
    return os.str();
}

} // namespace step::runtime
