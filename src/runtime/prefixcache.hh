/**
 * @file
 * KV prefix cache for the serving runtime: a radix tree over chained
 * token-block hashes (see Request::blockHashes) modeling the KV blocks a
 * replica retains beyond its per-request reservations. Shared system
 * prompts and multi-turn conversations make most prefix tokens of a
 * "new" request already resident; admission looks up the longest cached
 * prefix and charges prefill flops and KV reservation only for the
 * uncached suffix — the dominant real-serving saving the cold-prompt
 * model misses.
 *
 * Structure: one node per cached block, children keyed by the child's
 * chained hash (a chained hash commits to the whole prefix, so hash
 * equality is prefix equality and the tree deduplicates shared prefixes
 * across sessions automatically). Nodes are ref-counted by in-flight
 * pins: an admitted request pins its matched path until it finishes, so
 * eviction can never drop KV a running request depends on. Capacity is
 * a token budget; eviction is LRU over unpinned *leaves* only (interior
 * nodes are shared by definition — leaf-first keeps the tree a tree and
 * drops the least-shared content first), with (lastUsed, creation id)
 * ordering so every run is bit-identical for a fixed call sequence.
 */
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "runtime/request.hh"

namespace step::runtime {

struct PrefixCacheConfig
{
    /**
     * KV-token capacity of the cache; 0 disables it entirely (the
     * engine then behaves bit-identically to a cache-less build).
     * Occupancy is counted in whole blocks of kPrefixBlockTokens.
     */
    int64_t capacityTokens = 0;
    /**
     * Idle TTL in cycles; 0 (default) disables — entries then live
     * until capacity pressure evicts them, bit-identical to previous
     * builds. With a TTL, unpinned entries untouched for this long are
     * evicted by the engine's per-iteration evictIdle() sweep, so a
     * long-lived sim stops carrying dead sessions. Ages come from the
     * engine-supplied clock (setClock), not wall time, and the LRU
     * queue's tick order equals clock order, so the sweep is
     * deterministic for a fixed call sequence.
     */
    dam::Cycle idleTtlCycles = 0;
};

/** Monotone counters + occupancy snapshot; engine copies the totals
 *  into ServingSummary at the end of a run. */
struct PrefixCacheStats
{
    int64_t lookups = 0;     ///< admissions that consulted the cache
    int64_t hits = 0;        ///< lookups matching at least one block
    int64_t tokensSaved = 0; ///< prompt tokens served from cache
    int64_t insertedBlocks = 0;
    int64_t evictedBlocks = 0;
    /** Blocks an insert wanted but could not place because capacity was
     *  exhausted by pinned content (never silently exceeds capacity). */
    int64_t skippedBlocks = 0;
    /** Subset of evictedBlocks dropped by the idle-TTL sweep. */
    int64_t ttlEvictedBlocks = 0;
    int64_t occupancyTokens = 0;
    int64_t peakOccupancyTokens = 0;
};

class PrefixCache
{
  public:
    explicit PrefixCache(PrefixCacheConfig cfg);
    ~PrefixCache();

    PrefixCache(const PrefixCache&) = delete;
    PrefixCache& operator=(const PrefixCache&) = delete;

    /**
     * Longest cached prefix of @p r's prompt, in tokens — a pure query
     * (no pins, no LRU touch, no counters), used by admission to size
     * the KV reservation before deciding whether the request fits.
     * Block-granular and capped at promptLen - 1 (the last prompt token
     * is always processed so the first output token has a compute event
     * to come from).
     */
    int64_t matchTokens(const Request& r) const;

    /**
     * Re-walk the match, pin the matched path against eviction, bump
     * its LRU stamps, record the hit/saved-token counters, and set
     * r.cachedPrefixTokens. Must follow a matchTokens() call with no
     * intervening mutation (admission does exactly this); asserts the
     * walk agrees with r.cachedPrefixTokens when already set. One
     * acquire per admitted request; release(r) when it finishes.
     */
    void acquire(Request& r);

    /** Drop the pin taken by acquire (no-op if none, e.g. a cold miss). */
    void release(const Request& r);

    /**
     * Insert the first @p nblocks of @p block_hashes, reusing any
     * cached prefix and evicting LRU unpinned leaves to make room.
     * Blocks that cannot fit once nothing evictable remains are skipped
     * (counted in stats().skippedBlocks) — capacity is never exceeded.
     * The engine calls this with the prompt blocks when a request
     * finishes prefill, and with the full prompt+output stream when it
     * finishes, so a session's next turn can hit its predecessor's
     * whole context.
     */
    void insert(const std::vector<uint64_t>& block_hashes, int64_t nblocks);

    /** Advance the cache's notion of simulated time (engine `now`).
     *  Monotone by construction of the engine loop; only read by the
     *  TTL sweep, so a TTL-less cache ignores it entirely. */
    void setClock(dam::Cycle now) { clock_ = now; }

    /**
     * Idle-TTL sweep: evict unpinned leaves untouched for
     * idleTtlCycles, oldest first (the LRU queue front IS the
     * oldest-touched entry — tick order equals clock order). Returns
     * blocks evicted; no-op when the TTL is 0.
     */
    int64_t evictIdle();

    const PrefixCacheStats& stats() const { return stats_; }
    int64_t occupancyTokens() const { return stats_.occupancyTokens; }
    int64_t capacityTokens() const { return cfg_.capacityTokens; }
    /** In-flight pins outstanding (one per acquired request). Must be 0
     *  after every sim — the abort-path accounting invariant. */
    int64_t pinnedRequests() const
    {
        return static_cast<int64_t>(pinned_.size());
    }

  private:
    struct Node
    {
        uint64_t hash = 0;
        uint64_t id = 0;       ///< creation order; deterministic tiebreak
        uint64_t lastUsed = 0;    ///< LRU stamp (monotone operation tick)
        dam::Cycle lastTouch = 0; ///< simulated cycle of the last touch
        int64_t pins = 0;      ///< in-flight references incl. descendants
        Node* parent = nullptr;
        /** Ordered map: child iteration (destruction, debug) is
         *  deterministic without relying on hash-table order. */
        std::map<uint64_t, std::unique_ptr<Node>> children;
    };

    /** Deepest node matching block_hashes[0..nblocks); may be root_. */
    Node* walk(const std::vector<uint64_t>& block_hashes,
               int64_t nblocks) const;
    int64_t depthOf(const Node* n) const;
    bool evictable(const Node* n) const;
    void evictRemove(Node* n);
    void evictAddIfEligible(Node* n);
    /** Evict the LRU unpinned leaf; false if none exists. */
    bool evictOne();

    PrefixCacheConfig cfg_;
    PrefixCacheStats stats_;
    mutable Node root_; ///< sentinel: depth 0, never evicted
    uint64_t tick_ = 0;
    dam::Cycle clock_ = 0; ///< simulated time, for the TTL sweep
    uint64_t nextId_ = 1;
    /** (lastUsed, id) of every unpinned leaf — the eviction frontier. */
    std::set<std::pair<uint64_t, uint64_t>> evictQueue_;
    std::unordered_map<uint64_t, Node*> byId_;
    /** Deepest pinned node per admitted request id. */
    /**
     * Pins key on the incarnation object, not the request id: fault-
     * tier re-simulation can leave a superseded incarnation and its
     * successor concurrently admitted on one replica (the phantom-
     * duplicate case the cluster's accounting drops), and each must
     * hold its own pin.
     */
    std::unordered_map<const Request*, Node*> pinned_;
};

} // namespace step::runtime
