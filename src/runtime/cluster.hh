/**
 * @file
 * Multi-replica sharded serving cluster: the scale-out layer over the
 * single-engine serving runtime. One ServingEngine is single-threaded by
 * design (deterministic virtual time); a ServingCluster splits a request
 * trace across N shared-nothing replica engines — each with its own
 * Scheduler, GraphArena, rearm handles, and thread-local coroutine-frame
 * pool — runs each replica's simulation in a worker thread, and merges
 * the per-replica results into one aggregate with percentiles recomputed
 * over the union of raw latency samples. This mirrors how continuous-
 * batching serving systems scale out: replicas behind a router, sharing
 * nothing but the request stream.
 *
 * Determinism contract: routing is a pre-pass on the coordinating
 * thread, per-replica seeds are derived before workers spawn
 * (deriveSeed(replica_id)), every replica simulates independently, and
 * merging walks replicas in index order — so the aggregate is
 * bit-identical whether the replicas run on 1 worker thread or N.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hh"
#include "obs/sink.hh"
#include "runtime/engine.hh"

namespace step::runtime {

/** How the cluster assigns arriving requests to replicas. */
enum class RouteKind {
    /** Request i goes to replica i mod N: fair counts, blind to work. */
    RoundRobin,
    /**
     * Join-least-work: pick the replica whose shadow queue holds the
     * fewest outstanding prompt tokens (waiting, via
     * ContinuousBatcher::waitingPromptTokens, plus admitted-but-
     * unfinished). The router drains its shadow queues with an analytic
     * service-time model, so decisions need no feedback from the
     * replica simulations and stay a deterministic pre-pass.
     */
    LeastQueued,
    /**
     * Hash of the request id picks the replica: sticky session/prefix
     * affinity, at the cost of load blindness.
     */
    HashAffinity,
    /**
     * KV-prefix-aware affinity: requests route by their dominant-prefix
     * hash (Request::affinityKey — the session's first-turn prompt
     * hash), so every turn of a session lands on the replica whose
     * prefix cache already holds its context. The first request of a
     * key falls back to the least-loaded replica (fewest assigned
     * prompt+output tokens, ties to the lowest index), which spreads
     * sessions without breaking stickiness. Legacy requests carry no
     * affinity key, so each takes the least-loaded fallback
     * individually — a work-balanced spread with no stickiness to
     * preserve.
     */
    PrefixAffinity,
};

std::string routeKindName(RouteKind k);

struct ClusterConfig
{
    /**
     * Per-replica engine template. The seed field is ignored: replica i
     * always runs with deriveSeed(i) so replica streams decorrelate
     * deterministically under one global seed.
     */
    EngineConfig engine;
    int64_t replicas = 2;
    /** Worker threads; 0 means one per replica. */
    int64_t threads = 0;
    /**
     * Static per-replica compute-capacity scales for a heterogeneous
     * fleet (empty = every replica at 1.0, the default — run() is then
     * bit-identical to a scale-less build). Replica r simulates with
     * round(engine.totalComputeBw * bwScales[r]); the least-queued
     * router's shadow service times, the resilience tier's
     * health-scored placement (pickResilientTarget divides load by the
     * scale), and the merged utilization denominator all honor the
     * scale. Must be empty or have exactly `replicas` positive entries.
     */
    std::vector<double> bwScales;
    RouteKind routing = RouteKind::RoundRobin;
    /**
     * Cluster-wide fault plan (empty = fault-free, the default — run()
     * is then bit-identical to a fault-less build). Each replica
     * receives its own timeline (FaultPlan::forReplica); the engine
     * template's `faults` field is ignored, like its seed. The router
     * is fault-aware: a request arriving while its chosen replica is
     * down is re-routed to the least-loaded alive replica before any
     * simulation runs (a health-checked load balancer), and requests a
     * crash kills in flight are re-routed through the retry policy.
     */
    FaultPlan faults;
    /**
     * Failover policy for requests a replica crash killed (not owned;
     * null = a default ExponentialBackoffRetry). Consulted once per
     * failed incarnation; a granted retry re-arrives at the policy's
     * cycle on the least-loaded replica alive then, with
     * Request::attempt incremented. See RetryPolicy for the
     * never-retry-past-deadline contract.
     */
    const RetryPolicy* retry = nullptr;
    /**
     * Resilience tier (disabled = the default — run() is then
     * bit-identical to the plain fault tier). Enabled, it changes four
     * things (see resilience.hh): the router and failover placement
     * become health-scored (circuit breakers from the fault plan,
     * autoscale parking, affinity preference); crash casualties and
     * slowdown-drained requests *migrate* at a modeled KV-handoff cost
     * instead of going through the plain retry policy; migrated or
     * retried requests placed off their cache-affinity replica may
     * fetch their prefix from the owner's cache at a modeled transfer
     * cost; and each engine runs the slowdown drain with the breaker's
     * detection parameters. cfg_.retry is not consulted while enabled.
     */
    ResilienceConfig resilience;
    /**
     * Tracing (level Off = disabled). When enabled, run() creates one
     * TraceSink per replica *before* workers spawn — each sink is then
     * written by exactly one worker, so recording needs no locks — and
     * hands them back in ClusterResult::traces, replica-index order.
     * Exporting that vector yields bytes independent of the thread
     * count. Replicas re-simulated by a failover wave get a fresh sink,
     * so exported traces always describe the final timeline.
     */
    obs::TraceOptions trace;
    /**
     * Streaming metrics (enabled = false is the default — run() is then
     * bit-identical to a metrics-less build). When enabled, run()
     * creates one MetricsRegistry per replica *before* workers spawn
     * (single-writer, like the trace sinks), each engine samples its
     * instrument set into its replica's registry at iteration
     * boundaries, and ClusterResult hands back the per-replica
     * registries plus their replica-index-order merge — so the exported
     * artifact is bit-identical whatever the thread count. Replicas
     * re-simulated by a failover wave get a fresh registry, so metrics
     * always describe the final timeline.
     */
    obs::MetricsConfig metrics;
};

struct ReplicaResult
{
    int64_t replica = 0;
    uint64_t seed = 0; ///< deriveSeed(replica), recorded for replay
    int64_t assignedRequests = 0;
    EngineResult result;
};

struct ClusterResult
{
    /** Raw-sample merge of the per-replica summaries (mergeSummaries);
     *  computeUtilization is against replicas * totalComputeBw. */
    ServingSummary aggregate;
    /** Union of the per-replica iteration samples. */
    UtilizationTimeline timeline;
    std::vector<ReplicaResult> replicas;
    int64_t totalIterations = 0;
    /** Retry incarnations the failover waves issued (0 without faults). */
    int64_t retriesIssued = 0;
    /** Migration incarnations the resilience tier issued (0 unless the
     *  tier is enabled and a slowdown drain fired). */
    int64_t migrationsIssued = 0;
    /** The autoscaler's precomputed step timeline (empty unless the
     *  resilience tier's autoscaler is enabled). */
    std::vector<AutoscaleStep> autoscale;
    /** Per-replica trace sinks (replica-index order); empty when
     *  ClusterConfig::trace.level is Off. unique_ptr keeps the sinks'
     *  addresses stable across the result's moves. */
    std::vector<std::unique_ptr<obs::TraceSink>> traces;
    /** Per-replica metrics registries (replica-index order); empty when
     *  ClusterConfig::metrics.enabled is false. */
    std::vector<std::unique_ptr<obs::MetricsRegistry>> metrics;
    /** Replica-index-order merge of `metrics` (null when disabled);
     *  the cluster aggregate's windowed-SLO fields are computed from
     *  this registry. */
    std::unique_ptr<obs::MetricsRegistry> mergedMetrics;
    /** The breaker timelines the router and failover placement actually
     *  consulted (empty unless the resilience tier is enabled):
     *  plan-derived by default, telemetry-inferred under
     *  BreakerSource::Telemetry. Exposed for tests and tools. */
    std::vector<BreakerTimeline> breakers;

    /** Borrowed views of `traces` in export order (replica order),
     *  ready to pass to the obs exporters. */
    std::vector<const obs::TraceSink*>
    traceViews() const
    {
        std::vector<const obs::TraceSink*> out;
        out.reserve(traces.size());
        for (const auto& t : traces)
            out.push_back(t.get());
        return out;
    }

    /** Borrowed views of `metrics` in export order (replica order),
     *  ready to pass to the obs metrics exporters. */
    std::vector<const obs::MetricsRegistry*>
    metricsViews() const
    {
        std::vector<const obs::MetricsRegistry*> out;
        out.reserve(metrics.size());
        for (const auto& m : metrics)
            out.push_back(m.get());
        return out;
    }
};

class ServingCluster
{
  public:
    ServingCluster(ClusterConfig cfg, const Policy& policy);

    /**
     * Route @p reqs (sorted by arrival) across the replicas, run every
     * replica's simulation to completion on the worker pool, and merge.
     * Requests are mutated in place exactly as ServingEngine::run would
     * (states, TTFT/finish stamps). With a fault plan, failover runs in
     * deterministic waves: replicas simulate, crash casualties are
     * collected in (fail-cycle, request) order and offered to the retry
     * policy, granted retries are appended to their target replica's
     * shard, and only the changed replicas re-simulate — until no new
     * failure appears. A request that failed but was retried reports
     * the final incarnation's outcome to the caller (original arrival
     * kept, Request::attempt telling the story); its source replica's
     * summary reclassifies it failed -> retried. Deterministic for
     * fixed (config, policy, trace, global seed), independent of the
     * thread count.
     */
    ClusterResult run(std::vector<Request>& reqs);

    /**
     * The deterministic routing pre-pass alone: replica index per
     * request, in trace order. Includes the fault-aware remap (requests
     * arriving into a down replica move to the least-loaded alive one)
     * — or, with the resilience tier enabled, the health-scored remap
     * (down, breaker-open, and autoscale-parked replicas stop getting
     * fresh placements; targets are picked by pickResilientTarget).
     * Exposed for tests and routing studies.
     */
    std::vector<int64_t> routeTrace(const std::vector<Request>& reqs) const;

  private:
    /**
     * The breaker timelines the resilience tier will consult, by
     * ClusterConfig::resilience.breakerSource: plan-derived
     * (computeBreakerTimeline per replica) or telemetry-inferred — an
     * observation pass runs the *plain fault tier* on a copy of the
     * trace (resilience off, traces off, metrics forced on at the
     * health monitor's window width) and feeds each replica's windowed
     * failure counts and TTFT p95 to inferBreakerTimeline. Both are
     * pure pre-passes on the coordinating thread, so routing stays
     * deterministic and thread-count independent.
     */
    std::vector<BreakerTimeline>
    resilientBreakers(const std::vector<Request>& reqs) const;
    /** routeTrace with the resilience pre-pass's breaker timelines
     *  precomputed (null = compute internally). Lets run() share one
     *  observation pass between routing and failover placement. */
    std::vector<int64_t>
    routeTraceImpl(const std::vector<Request>& reqs,
                   const std::vector<BreakerTimeline>* breakers) const;
    /** bwScales[r], or 1.0 for an unscaled fleet. */
    double bwScaleAt(size_t r) const;

    ClusterConfig cfg_;
    const Policy& policy_;
};

} // namespace step::runtime
