#include "runtime/request.hh"

#include <algorithm>
#include <cmath>

#include "support/error.hh"
#include "support/rng.hh"

namespace step::runtime {

namespace {

/** Log-normal draw with the given linear-scale mean, clamped. */
int64_t
sampleLen(Rng& rng, int64_t mean, double sigma, int64_t lo, int64_t hi)
{
    // E[lognormal(mu, sigma)] = exp(mu + sigma^2/2); solve for mu.
    double mu = std::log(static_cast<double>(mean)) - 0.5 * sigma * sigma;
    auto len = static_cast<int64_t>(std::llround(rng.logNormal(mu, sigma)));
    return std::clamp(len, lo, hi);
}

/** Arrival rate (per cycle) in effect at time @p t. */
double
rateAt(const TraceConfig& cfg, double t)
{
    double base = cfg.arrivalsPerKcycle / 1000.0;
    if (cfg.burstPeriod == 0)
        return base;
    double phase = std::fmod(t, static_cast<double>(cfg.burstPeriod));
    bool on = phase < cfg.burstDuty * static_cast<double>(cfg.burstPeriod);
    return on ? base * cfg.burstFactor : base / cfg.burstFactor;
}

} // namespace

std::vector<Request>
generateTrace(const TraceConfig& cfg, uint64_t seed)
{
    STEP_ASSERT(cfg.numRequests > 0, "empty trace requested");
    STEP_ASSERT(cfg.arrivalsPerKcycle > 0.0, "non-positive arrival rate");
    Rng rng(seed);
    std::vector<Request> reqs;
    reqs.reserve(static_cast<size_t>(cfg.numRequests));

    // Piecewise-homogeneous Poisson process: each inter-arrival gap is an
    // exponential draw at the rate in effect when the previous request
    // arrived. For burst periods much longer than a gap this matches the
    // on/off process; it keeps generation one-pass and deterministic.
    double t = 0.0;
    for (int64_t i = 0; i < cfg.numRequests; ++i) {
        double u = 0.0;
        while (u == 0.0)
            u = rng.uniform();
        t += -std::log(u) / rateAt(cfg, t);

        Request r;
        r.id = i;
        r.arrival = static_cast<dam::Cycle>(std::llround(t));
        r.promptLen = sampleLen(rng, cfg.promptMean, cfg.promptSigma,
                                cfg.promptMin, cfg.promptMax);
        r.outputLen = sampleLen(rng, cfg.outputMean, cfg.outputSigma,
                                cfg.outputMin, cfg.outputMax);
        reqs.push_back(r);
    }
    return reqs;
}

} // namespace step::runtime
