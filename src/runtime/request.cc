#include "runtime/request.hh"

#include <algorithm>
#include <cmath>

#include "support/error.hh"
#include "support/rng.hh"

namespace step::runtime {

namespace {

/** Log-normal draw with the given linear-scale mean, clamped. */
int64_t
sampleLen(Rng& rng, int64_t mean, double sigma, int64_t lo, int64_t hi)
{
    // E[lognormal(mu, sigma)] = exp(mu + sigma^2/2); solve for mu.
    double mu = std::log(static_cast<double>(mean)) - 0.5 * sigma * sigma;
    auto len = static_cast<int64_t>(std::llround(rng.logNormal(mu, sigma)));
    return std::clamp(len, lo, hi);
}

/** Arrival rate (per cycle) in effect at time @p t. */
double
rateAt(const TraceConfig& cfg, double t)
{
    double base = cfg.arrivalsPerKcycle / 1000.0;
    if (cfg.burstPeriod == 0)
        return base;
    double phase = std::fmod(t, static_cast<double>(cfg.burstPeriod));
    bool on = phase < cfg.burstDuty * static_cast<double>(cfg.burstPeriod);
    return on ? base * cfg.burstFactor : base / cfg.burstFactor;
}

/**
 * Priority draw for brown-out studies. Gated on the fractions being
 * set: the default (both 0) consumes nothing from the RNG, keeping
 * priority-free traces bit-identical to previous builds.
 */
ReqPriority
samplePriority(Rng& rng, const TraceConfig& cfg)
{
    if (cfg.lowPriorityFrac <= 0.0 && cfg.highPriorityFrac <= 0.0)
        return ReqPriority::Normal;
    double u = rng.uniform();
    if (u < cfg.lowPriorityFrac)
        return ReqPriority::Low;
    if (u > 1.0 - cfg.highPriorityFrac)
        return ReqPriority::High;
    return ReqPriority::Normal;
}

/** Seed constants for synthetic token content. The system prompt hashes
 *  from a fixed constant so it is bit-identical across sessions (and
 *  across traces); session content hashes from (trace seed, session). */
constexpr uint64_t kSystemPromptSeed = 0x53595354454d5052ULL;
constexpr uint64_t kSessionSeed = 0x434f4e5645525341ULL;

/**
 * Per-session token-stream builder: appends synthetic token hashes and
 * records the chained hash at every kPrefixBlockTokens boundary. Equal
 * token sequences yield equal chained hashes, which is what turns the
 * prefix cache's hash-keyed radix tree into genuine content sharing.
 */
struct TokenChain
{
    uint64_t hash = kSystemPromptSeed; ///< chain origin (any constant)
    int64_t tokens = 0;
    std::vector<uint64_t> blockHashes;

    void
    append(uint64_t segment_seed, int64_t count)
    {
        for (int64_t i = 0; i < count; ++i) {
            hash = prefixHashMix(hash, prefixHashMix(segment_seed,
                                                     static_cast<uint64_t>(i)));
            if (++tokens % kPrefixBlockTokens == 0)
                blockHashes.push_back(hash);
        }
    }
};

std::vector<Request>
generateConversationTrace(const TraceConfig& cfg, uint64_t seed)
{
    STEP_ASSERT(cfg.turnsPerSession > 0, "session needs at least one turn");
    STEP_ASSERT(cfg.sharedSystemPromptLen >= 0,
                "negative system prompt length");
    Rng rng(seed);

    std::vector<Request> reqs;
    reqs.reserve(static_cast<size_t>(cfg.numSessions * cfg.turnsPerSession));

    // Session starts form the same piecewise-homogeneous Poisson process
    // as single-turn arrivals (burst modulation included).
    double session_start = 0.0;
    for (int64_t s = 0; s < cfg.numSessions; ++s) {
        double u = 0.0;
        while (u == 0.0)
            u = rng.uniform();
        session_start += -std::log(u) / rateAt(cfg, session_start);

        const uint64_t session_seed =
            prefixHashMix(prefixHashMix(kSessionSeed, seed),
                          static_cast<uint64_t>(s));
        TokenChain chain;
        chain.append(kSystemPromptSeed, cfg.sharedSystemPromptLen);

        double arrival = session_start;
        uint64_t affinity_key = 0;
        for (int64_t t = 0; t < cfg.turnsPerSession; ++t) {
            int64_t delta = sampleLen(rng, cfg.turnDeltaMean,
                                      cfg.promptSigma, cfg.promptMin,
                                      cfg.promptMax);
            int64_t output = sampleLen(rng, cfg.outputMean,
                                       cfg.outputSigma, cfg.outputMin,
                                       cfg.outputMax);
            ReqPriority priority = samplePriority(rng, cfg);
            // User turn t: new tokens on top of the full prior context.
            chain.append(prefixHashMix(session_seed,
                                       static_cast<uint64_t>(2 * t)),
                         delta);

            Request r;
            r.sessionId = s;
            r.turn = t;
            r.arrival = static_cast<dam::Cycle>(std::llround(arrival));
            r.promptLen = chain.tokens;
            r.outputLen = output;
            r.priority = priority;
            r.promptBlocks = chain.tokens / kPrefixBlockTokens;

            // Assistant turn t: the generated output joins the context
            // (and the request's own block hashes, so inserting the
            // finished request caches prompt + output for turn t+1).
            chain.append(prefixHashMix(session_seed,
                                       static_cast<uint64_t>(2 * t + 1)),
                         output);
            r.blockHashes.assign(
                chain.blockHashes.begin(),
                chain.blockHashes.begin() +
                    static_cast<ptrdiff_t>(chain.tokens /
                                           kPrefixBlockTokens));

            if (t == 0)
                affinity_key = r.promptBlocks > 0
                                   ? r.blockHashes[static_cast<size_t>(
                                         r.promptBlocks - 1)]
                                   : prefixHashMix(session_seed, 0);
            r.affinityKey = affinity_key;
            reqs.push_back(std::move(r));

            double gap = 0.0;
            while (gap == 0.0)
                gap = rng.uniform();
            arrival += -std::log(gap) *
                       static_cast<double>(cfg.turnGapMean);
        }
    }

    // Arrival order with a deterministic tie-break; ids number the
    // sorted trace 0..n-1 exactly like the single-turn generator.
    std::stable_sort(reqs.begin(), reqs.end(),
                     [](const Request& a, const Request& b) {
                         if (a.arrival != b.arrival)
                             return a.arrival < b.arrival;
                         if (a.sessionId != b.sessionId)
                             return a.sessionId < b.sessionId;
                         return a.turn < b.turn;
                     });
    for (size_t i = 0; i < reqs.size(); ++i)
        reqs[i].id = static_cast<int64_t>(i);
    return reqs;
}

} // namespace

std::vector<Request>
generateTrace(const TraceConfig& cfg, uint64_t seed)
{
    STEP_ASSERT(cfg.arrivalsPerKcycle > 0.0, "non-positive arrival rate");
    if (cfg.numSessions > 0) {
        std::vector<Request> reqs = generateConversationTrace(cfg, seed);
        if (cfg.deadlineCycles > 0)
            for (Request& r : reqs)
                r.deadlineAt = r.arrival + cfg.deadlineCycles;
        return reqs;
    }
    STEP_ASSERT(cfg.numRequests > 0, "empty trace requested");
    Rng rng(seed);
    std::vector<Request> reqs;
    reqs.reserve(static_cast<size_t>(cfg.numRequests));

    // Piecewise-homogeneous Poisson process: each inter-arrival gap is an
    // exponential draw at the rate in effect when the previous request
    // arrived. For burst periods much longer than a gap this matches the
    // on/off process; it keeps generation one-pass and deterministic.
    double t = 0.0;
    for (int64_t i = 0; i < cfg.numRequests; ++i) {
        double u = 0.0;
        while (u == 0.0)
            u = rng.uniform();
        t += -std::log(u) / rateAt(cfg, t);

        Request r;
        r.id = i;
        r.arrival = static_cast<dam::Cycle>(std::llround(t));
        r.promptLen = sampleLen(rng, cfg.promptMean, cfg.promptSigma,
                                cfg.promptMin, cfg.promptMax);
        r.outputLen = sampleLen(rng, cfg.outputMean, cfg.outputSigma,
                                cfg.outputMin, cfg.outputMax);
        r.priority = samplePriority(rng, cfg);
        if (cfg.deadlineCycles > 0)
            r.deadlineAt = r.arrival + cfg.deadlineCycles;
        reqs.push_back(r);
    }
    return reqs;
}

} // namespace step::runtime
