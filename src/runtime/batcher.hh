/**
 * @file
 * Admission queue + iteration-level continuous batcher. Requests wait in
 * FIFO order; at every batching iteration the engine asks the batcher to
 * admit as many waiting requests as fit under the KV-memory budget and
 * the batch-size cap. Admission reserves the request's worst-case KV
 * footprint (prompt + max output), so an admitted request never has to
 * be preempted — the simple deterministic discipline of iteration-level
 * continuous batching. With a prefix cache attached, the footprint is
 * sized against the *uncached suffix* only: the cached prefix's KV is
 * already resident and pinned in the cache, so reserving it again would
 * double-count exactly the tokens prefix sharing saves.
 */
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "runtime/faults.hh"
#include "runtime/request.hh"

namespace step::runtime {

struct BatcherConfig
{
    /** KV-cache capacity in bytes. */
    int64_t kvBudgetBytes = int64_t{1} << 26;
    /** KV bytes per cached token (model-dependent; see ModelConfig). */
    int64_t kvBytesPerToken = 256;
    /** Maximum concurrently running requests. */
    int64_t maxRunning = 64;
};

class PrefixCache;

class ContinuousBatcher
{
  public:
    explicit ContinuousBatcher(BatcherConfig cfg);

    /**
     * Attach the engine's prefix cache (may be null). Admission then
     * looks up the longest cached prefix per request, reserves KV only
     * for the uncached suffix, and pins the matched path until the
     * request is released.
     */
    void attachPrefixCache(PrefixCache* cache) { cache_ = cache; }

    /**
     * A request has arrived; it joins the admission queue. A request
     * whose worst-case reservation exceeds the whole KV budget is
     * accepted here but can never admit: with an admission policy
     * attached it is shed at the next admission round, without one the
     * engine raises a StallError carrying the diagnostic — either way a
     * structured outcome instead of the former fatal assert.
     */
    void enqueue(Request* r);

    /** Outcome of one admission round. */
    struct AdmitResult
    {
        std::vector<Request*> admitted;
        /** Dropped by the admission policy (state set to Shed; the
         *  caller stamps finishedAt and accounts them). */
        std::vector<Request*> shed;
        /** Admitted with outputLen truncated by the policy's outputCap
         *  (brown-out middle rung); subset of admitted. */
        std::vector<Request*> capped;
    };

    /**
     * Admit waiting requests in FIFO order while the KV reservation and
     * batch cap allow; head-of-line blocking is deliberate (keeps
     * admission fair and deterministic). Admitted requests move to
     * Prefilling (with cachedPrefixTokens and the prefilledTokens
     * baseline set from the prefix cache). With @p policy attached,
     * each request is offered to it (post-cache-match, so the policy
     * sees the true uncached suffix) before the budget check; requests
     * it sheds — plus any request that could never fit the budget at
     * all — leave the queue as Shed instead of blocking the line.
     */
    AdmitResult admit(const AdmissionPolicy* policy = nullptr,
                      const AdmissionContext& ctx = {});

    /** Release a finished or failed request's KV reservation and drop
     *  it from the running set. */
    void release(Request* r);

    /**
     * Remove and return every waiting request (admission-queue drop on
     * replica crash: the caller marks them failed and releases any
     * cache state). The returned pointers are in FIFO order.
     */
    std::vector<Request*> drainWaiting();

    const std::vector<Request*>& running() const { return running_; }
    /** The admission queue, head first (stall diagnostics). */
    const std::deque<Request*>& waiting() const { return waiting_; }
    int64_t waitingCount() const
    {
        return static_cast<int64_t>(waiting_.size());
    }
    /** Total un-prefilled prompt tokens still waiting for admission. */
    int64_t waitingPromptTokens() const;

    int64_t kvBytesReserved() const { return kvReserved_; }
    int64_t kvBudgetBytes() const { return cfg_.kvBudgetBytes; }

  private:
    BatcherConfig cfg_;
    PrefixCache* cache_ = nullptr;
    std::deque<Request*> waiting_;
    std::vector<Request*> running_;
    int64_t kvReserved_ = 0;
};

} // namespace step::runtime
