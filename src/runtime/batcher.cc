#include "runtime/batcher.hh"

#include <algorithm>

#include "runtime/prefixcache.hh"
#include "support/error.hh"

namespace step::runtime {

ContinuousBatcher::ContinuousBatcher(BatcherConfig cfg) : cfg_(cfg)
{
    STEP_ASSERT(cfg_.kvBudgetBytes > 0, "KV budget must be positive");
    STEP_ASSERT(cfg_.kvBytesPerToken > 0, "KV token size must be positive");
    STEP_ASSERT(cfg_.maxRunning > 0, "batch cap must be positive");
}

void
ContinuousBatcher::enqueue(Request* r)
{
    STEP_ASSERT(r->state == ReqState::Queued,
                "request " << r->id << " enqueued in non-Queued state");
    // Oversized requests (worst-case reservation > whole budget) are
    // accepted into the queue: admission sheds them under a policy, or
    // the engine raises a StallError with the diagnostic — structured
    // outcomes where a fatal assert used to live.
    waiting_.push_back(r);
}

ContinuousBatcher::AdmitResult
ContinuousBatcher::admit(const AdmissionPolicy* policy,
                         const AdmissionContext& ctx)
{
    AdmitResult out;
    while (!waiting_.empty() &&
           static_cast<int64_t>(running_.size()) < cfg_.maxRunning) {
        Request* r = waiting_.front();
        // Size the reservation against the uncached suffix: tokens the
        // prefix cache already holds are pinned there, not re-reserved
        // (see Request::kvReservationTokens).
        if (cache_)
            r->cachedPrefixTokens = cache_->matchTokens(*r);
        int64_t need = r->kvReservationTokens() * cfg_.kvBytesPerToken;
        if (policy) {
            AdmissionContext c = ctx;
            c.runningRequests = static_cast<int64_t>(running_.size());
            c.waitingRequests = waitingCount();
            c.kvBudgetBytes = cfg_.kvBudgetBytes;
            c.kvReservedBytes = kvReserved_;
            // A request that can never fit the budget blocks the line
            // forever; shed it structurally whenever shedding is on.
            if (need > cfg_.kvBudgetBytes || policy->shouldShed(*r, c)) {
                waiting_.pop_front();
                r->cachedPrefixTokens = 0; // no pin was taken
                r->state = ReqState::Shed;
                out.shed.push_back(r);
                continue;
            }
            // Brown-out middle rung: admit, but with a truncated output
            // budget. The block-hash stream must shrink with it — the
            // finish-time cache insert would otherwise publish blocks
            // this request never generates.
            int64_t cap = policy->outputCap(*r, c);
            if (cap > 0 && cap < r->outputLen) {
                r->outputLen = cap;
                auto blocks = static_cast<size_t>(
                    (r->promptLen + r->outputLen) / kPrefixBlockTokens);
                if (r->blockHashes.size() > blocks)
                    r->blockHashes.resize(blocks);
                need = r->kvReservationTokens() * cfg_.kvBytesPerToken;
                out.capped.push_back(r);
            }
        }
        if (kvReserved_ + need > cfg_.kvBudgetBytes) {
            // Not admitted: the match is re-done (and may differ) on the
            // next attempt, so leave no stale state behind.
            r->cachedPrefixTokens = 0;
            break;
        }
        waiting_.pop_front();
        kvReserved_ += need;
        if (cache_)
            cache_->acquire(*r); // pins the matched path until release
        // Tokens that skip prefill compute: the local cache hit or, for
        // a migrated/remote-hit incarnation, the transferred KV.
        r->prefilledTokens = r->prefillSkipTokens();
        r->state = ReqState::Prefilling;
        running_.push_back(r);
        out.admitted.push_back(r);
    }
    return out;
}

std::vector<Request*>
ContinuousBatcher::drainWaiting()
{
    std::vector<Request*> out(waiting_.begin(), waiting_.end());
    waiting_.clear();
    return out;
}

void
ContinuousBatcher::release(Request* r)
{
    auto it = std::find(running_.begin(), running_.end(), r);
    STEP_ASSERT(it != running_.end(),
                "releasing request " << r->id << " that is not running");
    kvReserved_ -= r->kvReservationTokens() * cfg_.kvBytesPerToken;
    STEP_ASSERT(kvReserved_ >= 0, "KV reservation accounting underflow");
    running_.erase(it);
}

int64_t
ContinuousBatcher::waitingPromptTokens() const
{
    int64_t tokens = 0;
    for (const Request* r : waiting_)
        tokens += r->promptLen;
    return tokens;
}

} // namespace step::runtime
