/**
 * @file
 * Figure-8 validation substrate (section 4.5). The paper validates the
 * cycle-approximate STeP simulator against a cycle-accurate Bluespec HDL
 * implementation of a SwiGLU layer mapped at 16x16 compute-tile
 * granularity. This module provides both sides of that comparison:
 *
 *  - simulateSwigluHdl(): an independent cycle-level reference model —
 *    a double-buffered load/compute/store pipeline schedule computed
 *    with cycle-exact recurrences over the HBM bank model, mirroring the
 *    mapped HDL design (hierarchical tiling to 16x16 physical tiles,
 *    II=1 MACs, 256 B/cycle scratchpad ports);
 *  - buildSwigluGraph(): the same computation as a STeP graph for the
 *    cycle-approximate simulator.
 *
 * The benchmark sweeps tile sizes and reports both cycle counts and
 * off-chip traffic plus their Pearson correlation.
 */
#pragma once

#include "mem/dram.hh"
#include "ops/graph.hh"

namespace step {

struct SwigluConfig
{
    int64_t batch = 64;        ///< full batch dimension
    int64_t hidden = 256;      ///< full hidden dimension
    int64_t inter = 512;       ///< full MoE intermediate dimension
    int64_t batchTile = 16;    ///< tile size along batch
    int64_t interTile = 16;    ///< tile size along intermediate
    int64_t onChipBw = 256;    ///< scratchpad bytes/cycle (section 4.5)
    int64_t computeTile = 16;  ///< physical compute-tile edge
    HbmConfig hbm;             ///< HBM2 8-stack configuration
};

struct SwigluResult
{
    dam::Cycle cycles = 0;
    int64_t offChipBytes = 0;
};

/** Cycle-level reference ("HDL") model. */
SwigluResult simulateSwigluHdl(const SwigluConfig& cfg);

/**
 * STeP graph for the same mapped design; returns after wiring the graph
 * (including the final off-chip store) into @p g.
 */
void buildSwigluGraph(Graph& g, const SwigluConfig& cfg);

/** Run the STeP side with matched memory configuration. */
SwigluResult simulateSwigluStep(const SwigluConfig& cfg);

/** Analytic off-chip traffic (both models must match this). */
int64_t swigluTrafficBytes(const SwigluConfig& cfg);

} // namespace step
