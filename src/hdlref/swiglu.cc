#include "hdlref/swiglu.hh"

#include "ops/higher_order.hh"
#include "ops/offchip.hh"
#include "ops/shape_ops.hh"
#include "ops/source_sink.hh"
#include "support/error.hh"

namespace step {

int64_t
swigluTrafficBytes(const SwigluConfig& c)
{
    int64_t groups = c.batch / c.batchTile;
    int64_t cols = c.inter / c.interTile;
    int64_t x_bytes = groups * c.batchTile * c.hidden * 2;
    // W1 and W3 column tiles are re-streamed for every batch group.
    int64_t w_bytes = groups * cols * (c.hidden * c.interTile * 2) * 2;
    int64_t out_bytes = groups * cols * (c.batchTile * c.interTile * 2);
    return x_bytes + w_bytes + out_bytes;
}

// ---------------------------------------------------------------------
// Cycle-level reference model
// ---------------------------------------------------------------------

SwigluResult
simulateSwigluHdl(const SwigluConfig& c)
{
    STEP_ASSERT(c.batch % c.batchTile == 0 &&
                c.inter % c.interTile == 0 &&
                c.hidden % c.computeTile == 0,
                "tile sizes must divide tensor dims");
    HbmBankModel dram(c.hbm);

    const int64_t groups = c.batch / c.batchTile;
    const int64_t cols = c.inter / c.interTile;
    const int64_t x_tile_bytes = c.batchTile * c.hidden * 2;
    const int64_t w_tile_bytes = c.hidden * c.interTile * 2;
    const int64_t o_tile_bytes = c.batchTile * c.interTile * 2;

    // Hierarchical tiling (appendix B.2): each logical tile op maps onto
    // 16x16 physical tiles at initiation interval 1, so a logical
    // [bt,H]x[H,it] matmul occupies (bt/16)*(H/16)*(it/16) cycles on its
    // dedicated compute unit; mm1 and mm3 run on parallel units, the
    // silu*mul pipe consumes (bt/16)*(it/16) tiles at II=1.
    auto ceil16 = [&](int64_t v) {
        return (v + c.computeTile - 1) / c.computeTile;
    };
    const int64_t mac_cycles = ceil16(c.batchTile) * ceil16(c.hidden) *
                               ceil16(c.interTile);
    const int64_t act_cycles = ceil16(c.batchTile) * ceil16(c.interTile);
    // Scratchpad port: the compute unit reads its operands at onChipBw.
    const int64_t mem_cycles =
        (x_tile_bytes + w_tile_bytes + c.onChipBw - 1) / c.onChipBw;
    const int64_t compute_cycles =
        std::max({mac_cycles, act_cycles, mem_cycles});

    // Double-buffered pipeline schedule. Work items are (group, col)
    // pairs in row-major order. Addresses: X | W1 | W3 | OUT regions.
    const uint64_t x_base = 0;
    const uint64_t w1_base = uint64_t{1} << 28;
    const uint64_t w3_base = uint64_t{1} << 29;
    const uint64_t out_base = uint64_t{1} << 30;

    std::vector<dam::Cycle> compute_done; // per work item
    dam::Cycle load_free = 0;     // DMA engine issue serialization
    dam::Cycle compute_free = 0;  // compute unit availability
    dam::Cycle store_free = 0;    // store DMA
    dam::Cycle last_write = 0;
    dam::Cycle x_ready = 0;
    int64_t item = 0;

    for (int64_t i = 0; i < groups; ++i) {
        // Load this group's X tile once (double buffered against the
        // previous group's compute).
        dam::Cycle x_issue = load_free;
        if (item >= 2)
            x_issue = std::max(x_issue,
                               compute_done[static_cast<size_t>(item - 2)]);
        x_ready = dram.access(
            x_base + static_cast<uint64_t>(i * x_tile_bytes),
            x_tile_bytes, x_issue, false);
        load_free = x_issue + x_tile_bytes / c.onChipBw + 1;

        for (int64_t j = 0; j < cols; ++j, ++item) {
            dam::Cycle w_issue = load_free;
            if (item >= 2) {
                w_issue = std::max(
                    w_issue, compute_done[static_cast<size_t>(item - 2)]);
            }
            uint64_t woff = static_cast<uint64_t>(
                (i * cols + j) % (cols * groups)) *
                static_cast<uint64_t>(w_tile_bytes);
            dam::Cycle w1_ready = dram.access(w1_base + woff, w_tile_bytes,
                                              w_issue, false);
            dam::Cycle w3_ready = dram.access(w3_base + woff, w_tile_bytes,
                                              w_issue, false);
            load_free = w_issue + 2 * w_tile_bytes / c.onChipBw + 1;

            dam::Cycle start = std::max(
                {x_ready, w1_ready, w3_ready, compute_free});
            dam::Cycle done = start +
                static_cast<dam::Cycle>(compute_cycles);
            compute_free = done;
            compute_done.push_back(done);

            dam::Cycle st_issue = std::max(done, store_free);
            dam::Cycle st_done = dram.access(
                out_base + static_cast<uint64_t>(item * o_tile_bytes),
                o_tile_bytes, st_issue, true);
            store_free = st_issue + o_tile_bytes / c.onChipBw + 1;
            last_write = std::max(last_write, st_done);
        }
    }
    return SwigluResult{last_write, dram.stats().totalBytes()};
}

// ---------------------------------------------------------------------
// STeP graph for the same design
// ---------------------------------------------------------------------

void
buildSwigluGraph(Graph& g, const SwigluConfig& c)
{
    const int64_t groups = c.batch / c.batchTile;
    const int64_t cols = c.inter / c.interTile;

    // One trigger per batch group.
    std::vector<Token> trig;
    for (int64_t i = 0; i < groups; ++i)
        trig.push_back(Token::data(Tile::withData(
            1, 1, {static_cast<float>(i)}, 1)));
    trig.push_back(Token::done());
    auto& ref = g.add<SourceOp>("swiglu.ref", std::move(trig),
                                StreamShape({Dim::fixed(groups)}),
                                DataType::tile(1, 1, 1));
    auto& refbc = g.add<BroadcastOp>("swiglu.refbc", ref.out(), 3);

    // X: one [bt, H] tile per group.
    OffChipTensor xt = OffChipTensor::shapeOnly(
        0, c.batch, c.hidden, c.batchTile, c.hidden);
    auto& xload = g.add<RandomOffChipLoadOp>("swiglu.x", refbc.out(0), xt,
                                             xt.tileBytes());
    // Per group, stream all W1/W3 column tiles.
    OffChipTensor w1t = OffChipTensor::shapeOnly(
        uint64_t{1} << 28, c.hidden, c.inter, c.hidden, c.interTile);
    OffChipTensor w3t = OffChipTensor::shapeOnly(
        uint64_t{1} << 29, c.hidden, c.inter, c.hidden, c.interTile);
    auto& w1load = g.add<LinearOffChipLoadOp>(
        "swiglu.w1", refbc.out(1), w1t, std::array<int64_t, 2>{cols, 1},
        std::array<int64_t, 2>{1, cols});
    auto& w3load = g.add<LinearOffChipLoadOp>(
        "swiglu.w3", refbc.out(2), w3t, std::array<int64_t, 2>{cols, 1},
        std::array<int64_t, 2>{1, cols});
    auto& w1f = g.add<FlattenOp>("swiglu.w1f", w1load.out(), 0, 1);
    auto& w3f = g.add<FlattenOp>("swiglu.w3f", w3load.out(), 0, 1);

    // Broadcast each X tile across the column tiles.
    auto& xrep = g.add<RepeatOp>("swiglu.xrep", xload.out(), cols);
    auto& xbc = g.add<BroadcastOp>("swiglu.xbc", xrep.out(), 2);

    // Compute bandwidth: one 16x16 MAC unit at II=1 -> 2*16^3 FLOPs per
    // 16^3 MAC-tile cycle = 8192 FLOPs/cycle.
    const int64_t mac_bw = 2 * c.computeTile * c.computeTile *
                           c.computeTile;
    auto& mm1 = g.add<MapOp>(
        "swiglu.mm1", std::vector<StreamPort>{xbc.out(0), w1f.out()},
        fns::matmul(), mac_bw, DataType::tile(c.batchTile, c.interTile));
    mm1.setMatmulMemSpec(1);
    auto& mm3 = g.add<MapOp>(
        "swiglu.mm3", std::vector<StreamPort>{xbc.out(1), w3f.out()},
        fns::matmul(), mac_bw, DataType::tile(c.batchTile, c.interTile));
    mm3.setMatmulMemSpec(1);
    auto& act = g.add<MapOp>(
        "swiglu.act", std::vector<StreamPort>{mm1.out(), mm3.out()},
        fns::swigluFn(), mac_bw,
        DataType::tile(c.batchTile, c.interTile));
    g.add<LinearOffChipStoreOp>("swiglu.store", act.out(),
                                uint64_t{1} << 30);
}

SwigluResult
simulateSwigluStep(const SwigluConfig& c)
{
    SimConfig sc;
    sc.onChipBwBytesPerCycle = c.onChipBw;
    // Double buffering, matching the HDL design and the x2 factor in
    // the section-4.2 on-chip memory equations.
    sc.channelCapacity = 2;
    Graph g(sc);
    g.setMemModel(std::make_unique<HbmBankModel>(c.hbm));
    buildSwigluGraph(g, c);
    SimResult r = g.run();
    return SwigluResult{r.cycles, r.offChipBytes};
}

} // namespace step
