#include "ops/graph.hh"

#include "support/error.hh"

namespace step {

OpBase::OpBase(Graph& g, std::string name)
    : dam::Context(std::move(name)), graph_(g)
{}

void
OpBase::rearm(const RearmSpec&)
{
    flops_ = 0;
    onChipPeak_ = 0;
    elements_ = 0;
    busy_ = 0;
    // Invalidate the roofline memo: a rearm may change the operator's
    // compute bandwidth, which the memo key deliberately omits.
    memoIn_ = -1;
    memoFlops_ = -1;
    memoOut_ = -1;
    memoDt_ = 0;
    resetRun();
}

dam::Cycle
OpBase::rooflineCycles(int64_t in_bytes, int64_t flops, int64_t out_bytes,
                       int64_t compute_bw, bool in_via_memory,
                       bool out_via_memory) const
{
    const SimConfig& cfg = graph_.config();
    int64_t cycles = 0;
    if (in_via_memory)
        cycles = std::max(cycles, (in_bytes + cfg.onChipBwBytesPerCycle - 1)
                          / cfg.onChipBwBytesPerCycle);
    if (out_via_memory)
        cycles = std::max(cycles, (out_bytes + cfg.onChipBwBytesPerCycle - 1)
                          / cfg.onChipBwBytesPerCycle);
    if (compute_bw > 0)
        cycles = std::max(cycles, (flops + compute_bw - 1) / compute_bw);
    return static_cast<dam::Cycle>(cycles);
}

Graph::Graph(SimConfig cfg, GraphArena* arena)
    : cfg_(cfg), arena_(arena),
      mem_(std::make_unique<SimpleBwModel>(cfg.offChipBwBytesPerCycle,
                                           cfg.offChipLatency))
{}

Graph::~Graph()
{
    destroyOps();
}

void
Graph::destroyOps()
{
    // Reverse construction order, mirroring what member unique_ptrs in
    // a struct would do.
    for (size_t i = ops_.size(); i-- > 0;) {
        if (arena_)
            ops_[i]->~OpBase(); // virtual dtor; storage stays in arena
        else
            delete ops_[i];
    }
    ops_.clear();
}

dam::Channel&
Graph::makeChannel(std::string_view name, size_t capacity_override)
{
    size_t cap = capacity_override ? capacity_override
                                   : cfg_.channelCapacity;
    if (arena_)
        name = arena_->names.intern(name);
    std::unique_ptr<dam::Channel> ch;
    if (!channelPool_.empty()) {
        ch = std::move(channelPool_.back());
        channelPool_.pop_back();
        ch->reinit(name, cap, cfg_.channelLatency);
    } else {
        ch = std::make_unique<dam::Channel>(std::string(name), cap,
                                            cfg_.channelLatency);
    }
    channels_.push_back(ch.get());
    channelStore_.push_back(std::move(ch));
    return *channels_.back();
}

void
Graph::recycle(const SimConfig& cfg)
{
    STEP_ASSERT(arena_, "Graph::recycle requires an arena-backed graph");
    destroyOps();
    arena_->mem.reset();
    channels_.clear();
    // LIFO pooling: a structurally stable rebuild pops channels in a
    // fixed order, so each logical channel settles onto one pooled
    // object whose name/ring storage already fits.
    while (!channelStore_.empty()) {
        channelPool_.push_back(std::move(channelStore_.back()));
        channelStore_.pop_back();
    }
    cfg_ = cfg;
    if (customMem_) {
        // A user-installed model is reset in place; it does not derive
        // from SimConfig.
        mem_->reset();
    } else {
        // Re-arm the default model with the new config's parameters in
        // place (no allocation) so a recycled build matches a fresh
        // Graph(cfg) exactly even when off-chip parameters change.
        static_cast<SimpleBwModel*>(mem_.get())
            ->reinit(cfg_.offChipBwBytesPerCycle, cfg_.offChipLatency);
    }
    spad_.reset();
    ran_ = false;
}

void
Graph::rearm(const SimConfig& cfg)
{
    STEP_ASSERT(!ops_.empty(), "Graph::rearm on an empty graph");
    STEP_ASSERT(cfg.channelCapacity == cfg_.channelCapacity &&
                cfg.channelLatency == cfg_.channelLatency,
                "channel geometry is structural: recycle and rebuild "
                "instead of rearming");
    cfg_ = cfg;
    for (dam::Channel* ch : channels_)
        ch->rearm();
    if (customMem_) {
        mem_->reset();
    } else {
        static_cast<SimpleBwModel*>(mem_.get())
            ->reinit(cfg_.offChipBwBytesPerCycle, cfg_.offChipLatency);
    }
    spad_.reset();
    ran_ = false;
    for (OpBase* op : ops_)
        op->rearm(RearmSpec{});
}

uint64_t
Graph::totalChannelTokens() const
{
    uint64_t n = 0;
    for (const dam::Channel* ch : channels_)
        n += ch->totalPushed();
    return n;
}

sym::Expr
Graph::offChipTrafficExpr() const
{
    sym::Expr total;
    for (const auto& op : ops_)
        total += op->offChipTrafficExpr();
    return total;
}

sym::Expr
Graph::onChipMemExpr() const
{
    sym::Expr total;
    for (const auto& op : ops_)
        total += op->onChipMemExpr();
    return total;
}

SimResult
Graph::run()
{
    dam::Scheduler sched;
    return run(sched);
}

SimResult
Graph::run(dam::Scheduler& sched)
{
    STEP_ASSERT(!ran_, "Graph::run() called twice");
    ran_ = true;

    sched.reset();
    for (OpBase* op : ops_)
        sched.add(op);
    sched.run();

    SimResult res;
    res.cycles = sched.elapsed();
    res.contextSwitches = sched.contextSwitches();
    // Drop the scheduler's context pointers now: they reference ops this
    // graph owns, and a long-lived external scheduler must not dangle
    // into them once the graph is destroyed.
    sched.reset();
    const MemStats& ms = mem_->stats();
    res.offChipReadBytes = ms.bytesRead;
    res.offChipWriteBytes = ms.bytesWritten;
    res.offChipBytes = ms.totalBytes();
    res.onChipPeakBytes = spad_.peakAllocatedBytes() + spad_.peakMetaBytes();
    for (const auto& op : ops_) {
        res.totalFlops += op->measuredFlops();
        res.allocatedComputeBw += op->allocatedComputeBw();
        res.onChipPeakBytes += op->measuredOnChipPeakBytes();
    }
    return res;
}

} // namespace step
