#include "ops/graph.hh"

#include "support/error.hh"

namespace step {

OpBase::OpBase(Graph& g, std::string name)
    : dam::Context(std::move(name)), graph_(g)
{}

dam::Cycle
OpBase::rooflineCycles(int64_t in_bytes, int64_t flops, int64_t out_bytes,
                       int64_t compute_bw, bool in_via_memory,
                       bool out_via_memory) const
{
    const SimConfig& cfg = graph_.config();
    int64_t cycles = 0;
    if (in_via_memory)
        cycles = std::max(cycles, (in_bytes + cfg.onChipBwBytesPerCycle - 1)
                          / cfg.onChipBwBytesPerCycle);
    if (out_via_memory)
        cycles = std::max(cycles, (out_bytes + cfg.onChipBwBytesPerCycle - 1)
                          / cfg.onChipBwBytesPerCycle);
    if (compute_bw > 0)
        cycles = std::max(cycles, (flops + compute_bw - 1) / compute_bw);
    return static_cast<dam::Cycle>(cycles);
}

Graph::Graph(SimConfig cfg)
    : cfg_(cfg),
      mem_(std::make_unique<SimpleBwModel>(cfg.offChipBwBytesPerCycle,
                                           cfg.offChipLatency))
{}

Graph::~Graph() = default;

dam::Channel&
Graph::makeChannel(const std::string& name, size_t capacity_override)
{
    channels_.push_back(std::make_unique<dam::Channel>(
        name, capacity_override ? capacity_override : cfg_.channelCapacity,
        cfg_.channelLatency));
    return *channels_.back();
}

sym::Expr
Graph::offChipTrafficExpr() const
{
    sym::Expr total;
    for (const auto& op : ops_)
        total += op->offChipTrafficExpr();
    return total;
}

sym::Expr
Graph::onChipMemExpr() const
{
    sym::Expr total;
    for (const auto& op : ops_)
        total += op->onChipMemExpr();
    return total;
}

SimResult
Graph::run()
{
    dam::Scheduler sched;
    return run(sched);
}

SimResult
Graph::run(dam::Scheduler& sched)
{
    STEP_ASSERT(!ran_, "Graph::run() called twice");
    ran_ = true;

    sched.reset();
    for (auto& op : ops_)
        sched.add(op.get());
    sched.run();

    SimResult res;
    res.cycles = sched.elapsed();
    // Drop the scheduler's context pointers now: they reference ops this
    // graph owns, and a long-lived external scheduler must not dangle
    // into them once the graph is destroyed.
    sched.reset();
    const MemStats& ms = mem_->stats();
    res.offChipReadBytes = ms.bytesRead;
    res.offChipWriteBytes = ms.bytesWritten;
    res.offChipBytes = ms.totalBytes();
    res.onChipPeakBytes = spad_.peakAllocatedBytes() + spad_.peakMetaBytes();
    for (const auto& op : ops_) {
        res.totalFlops += op->measuredFlops();
        res.allocatedComputeBw += op->allocatedComputeBw();
        res.onChipPeakBytes += op->measuredOnChipPeakBytes();
    }
    return res;
}

} // namespace step
