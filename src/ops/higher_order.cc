#include "ops/higher_order.hh"

#include <cmath>

#include "support/error.hh"

namespace step {

// ---------------------------------------------------------------------
// MapOp
// ---------------------------------------------------------------------

MapOp::MapOp(Graph& g, const std::string& name, std::vector<StreamPort> ins,
             MapFn fn, int64_t compute_bw, DataType out_dtype)
    : OpBase(g, name), ins_(std::move(ins)), fn_(std::move(fn)),
      computeBw_(compute_bw)
{
    STEP_ASSERT(ins_.size() == 1 || ins_.size() == 2,
                "Map takes 1 or 2 inputs");
    for (auto& p : ins_)
        p.ch->setConsumer(this);
    if (ins_.size() == 2) {
        STEP_ASSERT(ins_[0].shape.compatibleWith(ins_[1].shape),
                    "Map input shapes misaligned: "
                    << ins_[0].shape.toString() << " vs "
                    << ins_[1].shape.toString() << " in " << name);
    }
    out_ = StreamPort{&g.makeChannel(name + ".out"), ins_[0].shape,
                      std::move(out_dtype)};
    out_.ch->setProducer(this);
    // Reserve at build time so the per-element path never allocates.
    argScratch_.reserve(ins_.size());
}

void
MapOp::setMatmulMemSpec(size_t weight_input)
{
    STEP_ASSERT(weight_input < ins_.size(), "bad weight input index");
    weightInput_ = static_cast<int>(weight_input);
    const DataType& in_dt = ins_[1 - weight_input].dtype;
    const DataType& w_dt = ins_[weight_input].dtype;
    // Section 4.2: 16 x in_tile_col + |weight tile| (in bytes).
    onChipExpr_ = sym::Expr(16) * in_dt.tileCols().size *
        sym::Expr(int64_t{in_dt.elemBytes()}) + w_dt.sizeBytes();
}

dam::SimTask
MapOp::run()
{
    while (true) {
        Token t0 = co_await ins_[0].ch->read(*this);
        if (ins_.size() == 2) {
            Token t1 = co_await ins_[1].ch->read(*this);
            STEP_ASSERT(t0.kind() == t1.kind() &&
                        (!t0.isStop() || t0.level() == t1.level()),
                        "Map inputs misaligned in " << name() << ": "
                        << t0.toString() << " vs " << t1.toString());
            if (t0.isData()) {
                ++elements_;
                int64_t flops = 0;
                // In-place assignment (not clear+push) so the scratch
                // slots move-assign same-kind values with no
                // destroy/construct cycle.
                if (argScratch_.size() != 2)
                    argScratch_.resize(2);
                argScratch_[0] = t0.takeValue();
                argScratch_[1] = t1.takeValue();
                const std::vector<Value>& args = argScratch_;
                Value out = fn_(args, flops);
                flops_ += flops;
                int64_t in_bytes = args[0].bytes() + args[1].bytes();
                dam::Cycle dt = std::max<dam::Cycle>(
                    1, rooflineCyclesMemo(in_bytes, flops, out.bytes(),
                                      computeBw_, false, false));
                busyAdvance(dt);
                if (weightInput_ >= 0) {
                    // Section 4.2: 16 x in_tile_col + |weight tile|
                    // (partial-input rows + resident weight).
                    const Tile& in_tile =
                        args[static_cast<size_t>(1 - weightInput_)].tile();
                    int64_t mem = 16 * in_tile.cols() *
                            in_tile.elemBytes() +
                        args[static_cast<size_t>(weightInput_)].bytes();
                    onChipPeak_ = std::max(onChipPeak_, mem);
                }
                STEP_EMIT_RAW(out_.ch, Token::data(std::move(out)));
                continue;
            }
        } else if (t0.isData()) {
            ++elements_;
            int64_t flops = 0;
            if (argScratch_.size() != 1)
                argScratch_.resize(1);
            argScratch_[0] = t0.takeValue();
            const std::vector<Value>& args = argScratch_;
            Value out = fn_(args, flops);
            flops_ += flops;
            dam::Cycle dt = std::max<dam::Cycle>(
                1, rooflineCyclesMemo(args[0].bytes(), flops, out.bytes(),
                                  computeBw_, false, false));
            busyAdvance(dt);
            STEP_EMIT_RAW(out_.ch, Token::data(std::move(out)));
            continue;
        }
        // Stop or Done (inputs aligned): forward.
        busyAdvance(1);
        bool done = t0.isDone();
        STEP_EMIT_RAW(out_.ch, t0);
        if (done)
            break;
    }
    co_return;
}

void
MapOp::rearm(const RearmSpec& spec)
{
    OpBase::rearm(spec);
    if (spec.computeBw >= 0)
        computeBw_ = spec.computeBw;
}

// ---------------------------------------------------------------------
// AccumOp
// ---------------------------------------------------------------------

AccumOp::AccumOp(Graph& g, const std::string& name, StreamPort in,
                 size_t rank, AccumInitFn init, AccumUpdateFn update,
                 int64_t compute_bw, DataType out_dtype)
    : OpBase(g, name), in_(in), rank_(rank), init_(std::move(init)),
      update_(std::move(update)), computeBw_(compute_bw)
{
    STEP_ASSERT(rank_ >= 1 && rank_ <= in_.rank(),
                "Accum rank " << rank_ << " vs input rank " << in_.rank()
                << " in " << name);
    in_.ch->setConsumer(this);
    out_ = StreamPort{&g.makeChannel(name + ".out"),
                      in_.shape.dropInner(rank_), std::move(out_dtype)};
    out_.ch->setProducer(this);
}

dam::SimTask
AccumOp::run()
{
    Value state = init_();
    bool saw_data = false;
    const bool full_reduce = rank_ == in_.rank();
    while (true) {
        if (in_.ch->empty())
            STEP_EMIT(out_.ch, coal_.flush());
        Token t = co_await in_.ch->read(*this);
        if (t.isData()) {
            ++elements_;
            saw_data = true;
            int64_t flops = 0;
            int64_t in_bytes = t.value().bytes();
            state = update_(t.value(), std::move(state), flops);
            flops_ += flops;
            onChipPeak_ = std::max(onChipPeak_, state.bytes());
            dam::Cycle dt = std::max<dam::Cycle>(
                1, rooflineCyclesMemo(in_bytes, flops, 0, computeBw_, false,
                                  false));
            busyAdvance(dt);
        } else if (t.isStop()) {
            if (t.level() >= rank_) {
                STEP_EMIT(out_.ch, coal_.onData(std::move(state)));
                state = init_();
                if (t.level() > rank_) {
                    STEP_EMIT(out_.ch, coal_.onStop(
                        t.level() - static_cast<uint32_t>(rank_)));
                }
            }
            busyAdvance(1);
        } else {
            if (full_reduce && saw_data)
                STEP_EMIT(out_.ch, coal_.onData(std::move(state)));
            STEP_EMIT(out_.ch, coal_.onDone());
            break;
        }
    }
    co_return;
}

void
AccumOp::rearm(const RearmSpec& spec)
{
    OpBase::rearm(spec);
    coal_.reset();
    if (spec.computeBw >= 0)
        computeBw_ = spec.computeBw;
}

// ---------------------------------------------------------------------
// ScanOp
// ---------------------------------------------------------------------

ScanOp::ScanOp(Graph& g, const std::string& name, StreamPort in, size_t rank,
               AccumInitFn init, AccumUpdateFn update, int64_t compute_bw,
               DataType out_dtype)
    : OpBase(g, name), in_(in), rank_(rank), init_(std::move(init)),
      update_(std::move(update)), computeBw_(compute_bw)
{
    STEP_ASSERT(rank_ >= 1 && rank_ <= in_.rank(),
                "Scan rank " << rank_ << " vs input rank " << in_.rank());
    in_.ch->setConsumer(this);
    out_ = StreamPort{&g.makeChannel(name + ".out"), in_.shape,
                      std::move(out_dtype)};
    out_.ch->setProducer(this);
}

dam::SimTask
ScanOp::run()
{
    Value state = init_();
    while (true) {
        Token t = co_await in_.ch->read(*this);
        if (t.isData()) {
            ++elements_;
            int64_t flops = 0;
            int64_t in_bytes = t.value().bytes();
            state = update_(t.value(), std::move(state), flops);
            flops_ += flops;
            onChipPeak_ = std::max(onChipPeak_, state.bytes());
            dam::Cycle dt = std::max<dam::Cycle>(
                1, rooflineCyclesMemo(in_bytes, flops, state.bytes(),
                                  computeBw_, false, false));
            busyAdvance(dt);
            STEP_EMIT_RAW(out_.ch, Token::data(state));
        } else if (t.isStop()) {
            if (t.level() >= rank_)
                state = init_(); // reset at reduction-group boundary
            busyAdvance(1);
            STEP_EMIT_RAW(out_.ch, t);
        } else {
            STEP_EMIT_RAW(out_.ch, Token::done());
            break;
        }
    }
    co_return;
}

void
ScanOp::rearm(const RearmSpec& spec)
{
    OpBase::rearm(spec);
    if (spec.computeBw >= 0)
        computeBw_ = spec.computeBw;
}

// ---------------------------------------------------------------------
// FlatMapOp
// ---------------------------------------------------------------------

FlatMapOp::FlatMapOp(Graph& g, const std::string& name, StreamPort in,
                     FlatMapFn fn, StreamShape fn_dims, DataType out_dtype,
                     int64_t compute_bw)
    : OpBase(g, name), in_(in), fn_(std::move(fn)), rank_(fn_dims.rank()),
      computeBw_(compute_bw)
{
    STEP_ASSERT(rank_ >= 1, "FlatMap expansion rank must be >= 1");
    in_.ch->setConsumer(this);
    // [D_a..D_1, D'_b..D'_0]: the input's innermost dim persists as the
    // expansion-count dim; fn_dims appends inside it (Table 5).
    StreamShape out_shape = in_.shape.concatInner(fn_dims);
    out_ = StreamPort{&g.makeChannel(name + ".out"), std::move(out_shape),
                      std::move(out_dtype)};
    out_.ch->setProducer(this);
}

dam::SimTask
FlatMapOp::run()
{
    const auto b = static_cast<uint32_t>(rank_);
    while (true) {
        if (in_.ch->empty())
            STEP_EMIT(out_.ch, coal_.flush());
        Token t = co_await in_.ch->read(*this);
        if (t.isData()) {
            ++elements_;
            int64_t flops = 0;
            expScratch_.clear();
            fn_(t.value(), expScratch_, flops);
            const std::vector<Token>& expansion = expScratch_;
            flops_ += flops;
            busyAdvance(std::max<dam::Cycle>(
                1, rooflineCyclesMemo(t.value().bytes(), flops, 0, computeBw_,
                                  false, false)));
            for (auto& et : expansion) {
                STEP_ASSERT(!et.isDone() && (!et.isStop() ||
                            et.level() < b),
                            "FlatMap fn emitted token beyond rank "
                            << rank_);
                STEP_EMIT(out_.ch, coal_.onToken(et));
            }
            STEP_EMIT(out_.ch, coal_.onStop(b));
        } else if (t.isStop()) {
            busyAdvance(1);
            STEP_EMIT(out_.ch, coal_.onStop(t.level() + b));
        } else {
            STEP_EMIT(out_.ch, coal_.onDone());
            break;
        }
    }
    co_return;
}

void
FlatMapOp::rearm(const RearmSpec& spec)
{
    OpBase::rearm(spec);
    coal_.reset();
    if (spec.computeBw >= 0)
        computeBw_ = spec.computeBw;
}

// ---------------------------------------------------------------------
// Function library
// ---------------------------------------------------------------------

namespace fns {

MapFn
matmul()
{
    return [](const std::vector<Value>& args, int64_t& flops) -> Value {
        STEP_ASSERT(args.size() == 2, "matmul needs 2 inputs");
        return step::matmul(args[0].tile(), args[1].tile(), &flops);
    };
}

MapFn
matmulBT()
{
    return [](const std::vector<Value>& args, int64_t& flops) -> Value {
        STEP_ASSERT(args.size() == 2, "matmulBT needs 2 inputs");
        const Tile& a = args[0].tile();
        const Tile& b = args[1].tile();
        flops += 2 * a.rows() * a.cols() * b.rows();
        if (!a.hasData() || !b.hasData())
            return Tile(a.rows(), b.rows(), a.elemBytes());
        std::vector<float> out(static_cast<size_t>(a.rows() * b.rows()));
        for (int64_t i = 0; i < a.rows(); ++i)
            for (int64_t j = 0; j < b.rows(); ++j) {
                float acc = 0.0f;
                for (int64_t k = 0; k < a.cols(); ++k)
                    acc += a.at(i, k) * b.at(j, k);
                out[static_cast<size_t>(i * b.rows() + j)] = acc;
            }
        return Tile::withData(a.rows(), b.rows(), std::move(out),
                              a.elemBytes());
    };
}

MapFn
addFn()
{
    return [](const std::vector<Value>& args, int64_t& flops) -> Value {
        return step::add(args[0].tile(), args[1].tile(), &flops);
    };
}

MapFn
mulFn()
{
    return [](const std::vector<Value>& args, int64_t& flops) -> Value {
        return step::elemMul(args[0].tile(), args[1].tile(), &flops);
    };
}

MapFn
siluFn()
{
    return [](const std::vector<Value>& args, int64_t& flops) -> Value {
        return step::silu(args[0].tile(), &flops);
    };
}

MapFn
swigluFn()
{
    return [](const std::vector<Value>& args, int64_t& flops) -> Value {
        const Tile* gate;
        const Tile* up;
        if (args.size() == 2) {
            gate = &args[0].tile();
            up = &args[1].tile();
        } else {
            const auto& tup = args[0].tupleElems();
            gate = &tup[0].tile();
            up = &tup[1].tile();
        }
        return step::elemMul(step::silu(*gate, &flops), *up, &flops);
    };
}

AccumInitFn
retileRowInit(int64_t cols, int elem_bytes)
{
    return [cols, elem_bytes]() -> Value {
        return Tile(0, cols, elem_bytes);
    };
}

AccumUpdateFn
retileRowUpdate()
{
    return [](const Value& in, Value state, int64_t&) -> Value {
        return retileRow(state.tile(), in.tile());
    };
}

AccumInitFn
retileColInit(int64_t rows, int elem_bytes)
{
    return [rows, elem_bytes]() -> Value {
        return Tile(rows, 0, elem_bytes);
    };
}

AccumUpdateFn
retileColUpdate()
{
    return [](const Value& in, Value state, int64_t&) -> Value {
        return retileCol(state.tile(), in.tile());
    };
}

AccumInitFn
zeroInit(int64_t rows, int64_t cols, int elem_bytes)
{
    return [rows, cols, elem_bytes]() -> Value {
        return Tile::zeros(rows, cols, elem_bytes);
    };
}

AccumUpdateFn
addUpdate()
{
    return [](const Value& in, Value state, int64_t& flops) -> Value {
        return step::add(state.tile(), in.tile(), &flops);
    };
}

AccumInitFn
attnInit(int64_t head_dim, int elem_bytes)
{
    return [head_dim, elem_bytes]() -> Value {
        // (m = -inf, l = 0, acc = 0)
        return Value::tuple({
            Tile::withData(1, 1, {-1e30f}, elem_bytes),
            Tile::withData(1, 1, {0.0f}, elem_bytes),
            Tile::zeros(1, head_dim, elem_bytes),
        });
    };
}

AccumUpdateFn
attnUpdate(int64_t flop_scale)
{
    return [flop_scale](const Value& in, Value state,
                        int64_t& flops) -> Value {
        const auto& tin = in.tupleElems();
        const Tile& q = tin[0].tile();
        const Tile& k = tin[1].tile();
        const Tile& v = tin[2].tile();
        const auto& st = state.tupleElems();
        const Tile& m_t = st[0].tile();
        const Tile& l_t = st[1].tile();
        const Tile& acc_t = st[2].tile();

        int64_t t_rows = k.rows();
        int64_t hd = q.cols();
        // scores = q k^T; softmax-rescaled accumulate of v.
        flops += flop_scale *
                 (2 * t_rows * hd   // scores
                  + 4 * t_rows      // exp + max bookkeeping
                  + 2 * t_rows * hd // weighted v accumulate
                  + 2 * hd);        // rescale
        if (!q.hasData() || !k.hasData() || !v.hasData()) {
            return Value::tuple({Tile(1, 1, q.elemBytes()),
                                 Tile(1, 1, q.elemBytes()),
                                 Tile(1, hd, q.elemBytes())});
        }
        float m_old = m_t.hasData() ? m_t.at(0, 0) : -1e30f;
        float l_old = l_t.hasData() ? l_t.at(0, 0) : 0.0f;
        std::vector<float> scores(static_cast<size_t>(t_rows));
        float m_new = m_old;
        float scale = 1.0f / std::sqrt(static_cast<float>(hd));
        for (int64_t t = 0; t < t_rows; ++t) {
            float s = 0.0f;
            for (int64_t d = 0; d < hd; ++d)
                s += q.at(0, d) * k.at(t, d);
            s *= scale;
            scores[static_cast<size_t>(t)] = s;
            m_new = std::max(m_new, s);
        }
        float corr = std::exp(m_old - m_new);
        float l_new = l_old * corr;
        std::vector<float> acc(static_cast<size_t>(hd));
        for (int64_t d = 0; d < hd; ++d)
            acc[static_cast<size_t>(d)] =
                (acc_t.hasData() ? acc_t.at(0, d) : 0.0f) * corr;
        for (int64_t t = 0; t < t_rows; ++t) {
            float p = std::exp(scores[static_cast<size_t>(t)] - m_new);
            l_new += p;
            for (int64_t d = 0; d < hd; ++d)
                acc[static_cast<size_t>(d)] += p * v.at(t, d);
        }
        return Value::tuple({
            Tile::withData(1, 1, {m_new}, q.elemBytes()),
            Tile::withData(1, 1, {l_new}, q.elemBytes()),
            Tile::withData(1, hd, std::move(acc), q.elemBytes()),
        });
    };
}

MapFn
attnFinish()
{
    return [](const std::vector<Value>& args, int64_t& flops) -> Value {
        const auto& st = args[0].tupleElems();
        const Tile& l_t = st[1].tile();
        const Tile& acc = st[2].tile();
        flops += acc.cols();
        if (!acc.hasData() || !l_t.hasData())
            return Tile(1, acc.cols(), acc.elemBytes());
        float l = l_t.at(0, 0);
        std::vector<float> out(static_cast<size_t>(acc.cols()));
        for (int64_t d = 0; d < acc.cols(); ++d)
            out[static_cast<size_t>(d)] =
                l > 0.0f ? acc.at(0, d) / l : 0.0f;
        return Tile::withData(1, acc.cols(), std::move(out),
                              acc.elemBytes());
    };
}

FlatMapFn
retileStreamify(int64_t chunk_rows)
{
    return [chunk_rows](const Value& v, std::vector<Token>& out, int64_t&) {
        const Tile& t = v.tile();
        for (int64_t r = 0; r < t.rows(); r += chunk_rows) {
            out.push_back(Token::data(
                sliceRows(t, r, std::min(r + chunk_rows, t.rows()))));
        }
    };
}

} // namespace fns

} // namespace step
