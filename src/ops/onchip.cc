#include "ops/onchip.hh"

#include "mem/scratchpad.hh"
#include "support/error.hh"

namespace step {

// ---------------------------------------------------------------------
// Bufferize
// ---------------------------------------------------------------------

BufferizeOp::BufferizeOp(Graph& g, const std::string& name, StreamPort in,
                         size_t rank)
    : OpBase(g, name), in_(in), rank_(rank)
{
    STEP_ASSERT(rank_ >= 1 && rank_ <= in_.rank(),
                "bufferize rank " << rank_ << " of input rank "
                << in_.rank() << " in " << name);
    in_.ch->setConsumer(this);
    StreamShape taken = in_.shape.takeInner(rank_);
    std::vector<Dim> buf_dims(taken.dims().begin(), taken.dims().end());
    out_ = StreamPort{&g.makeChannel(name + ".out"),
                      in_.shape.dropInner(rank_),
                      DataType::bufferRef(buf_dims, in_.dtype)};
    out_.ch->setProducer(this);
}

namespace {

/** Compute tile-grid extents of a buffered rank-b group, if regular. */
std::vector<int64_t>
gridDimsOf(const std::vector<Token>& toks, size_t rank)
{
    if (rank == 1)
        return {static_cast<int64_t>(countData(toks))};
    if (rank != 2)
        return {};
    // rows separated by S1; regular iff all rows equal length.
    int64_t rows = 0;
    int64_t cols = -1;
    int64_t cur = 0;
    for (const auto& t : toks) {
        if (t.isData()) {
            ++cur;
        } else if (t.isStop() && t.level() >= 1) {
            if (cols < 0)
                cols = cur;
            else if (cols != cur)
                return {};
            ++rows;
            cur = 0;
        }
    }
    if (cur > 0) {
        if (cols < 0)
            cols = cur;
        else if (cols != cur)
            return {};
        ++rows;
    }
    return {rows, cols < 0 ? 0 : cols};
}

} // namespace

dam::SimTask
BufferizeOp::run()
{
    const auto b = static_cast<uint32_t>(rank_);
    const bool full = rank_ == in_.rank();
    std::vector<Token> toks;
    int64_t payload = 0;
    auto flush_buffer = [&]() -> Token {
        StoredBuffer buf;
        buf.payloadBytes = payload;
        buf.gridDims = gridDimsOf(toks, rank_);
        buf.rank = rank_;
        buf.toks = std::move(toks);
        toks.clear();
        uint64_t id = graph_.scratchpad().alloc(std::move(buf));
        Token out = Token::data(BufferRef{id, payload});
        payload = 0;
        return out;
    };

    while (true) {
        if (in_.ch->empty())
            STEP_EMIT(out_.ch, coal_.flush());
        Token t = co_await in_.ch->read(*this);
        if (t.isData()) {
            ++elements_;
            int64_t bytes = t.value().bytes();
            payload += bytes;
            busyAdvance(std::max<dam::Cycle>(
                1, static_cast<dam::Cycle>(
                    (bytes + graph_.config().onChipBwBytesPerCycle - 1) /
                    graph_.config().onChipBwBytesPerCycle)));
            toks.push_back(std::move(t));
        } else if (t.isStop()) {
            busyAdvance(1);
            if (t.level() >= b) {
                Token buf = flush_buffer();
                STEP_EMIT(out_.ch, coal_.onData(buf.value()));
                if (t.level() > b)
                    STEP_EMIT(out_.ch, coal_.onStop(t.level() - b));
            } else {
                toks.push_back(std::move(t));
            }
        } else {
            if (full && (!toks.empty() || payload > 0)) {
                Token buf = flush_buffer();
                STEP_EMIT(out_.ch, coal_.onData(buf.value()));
            }
            STEP_EMIT(out_.ch, coal_.onDone());
            break;
        }
    }
    co_return;
}

sym::Expr
BufferizeOp::onChipMemExpr() const
{
    return in_.dtype.sizeBytes() +
           out_.dtype.referencedBytes() * sym::Expr(2);
}

// ---------------------------------------------------------------------
// Streamify
// ---------------------------------------------------------------------

StreamifyOp::StreamifyOp(Graph& g, const std::string& name, StreamPort in,
                         StreamPort ref, size_t ref_inner_rank,
                         std::optional<StreamifyAffine> affine)
    : OpBase(g, name), in_(in), ref_(ref), refInnerRank_(ref_inner_rank),
      affine_(affine)
{
    STEP_ASSERT(in_.dtype.isBufferRef(),
                "streamify input must carry buffer references");
    STEP_ASSERT(ref_.rank() == in_.rank() + refInnerRank_,
                "streamify ref rank " << ref_.rank() << " != in rank "
                << in_.rank() << " + " << refInnerRank_ << " in " << name);
    in_.ch->setConsumer(this);
    ref_.ch->setConsumer(this);

    StreamShape added = affine_
        ? StreamShape::fixed({affine_->outShape[0], affine_->outShape[1]})
        : StreamShape(in_.dtype.bufferDims());
    out_ = StreamPort{&g.makeChannel(name + ".out"),
                      ref_.shape.concatInner(added),
                      in_.dtype.pointee()};
    out_.ch->setProducer(this);
}

size_t
StreamifyOp::addedRank() const
{
    return affine_ ? 2 : in_.dtype.bufferDims().size();
}

dam::SimTask
StreamifyOp::run()
{
    const auto added = static_cast<uint32_t>(addedRank());
    const auto c = static_cast<uint32_t>(refInnerRank_);
    std::optional<uint64_t> cur;
    auto bw = graph_.config().onChipBwBytesPerCycle;

    auto release_current = [&]() {
        if (cur) {
            graph_.scratchpad().release(*cur);
            cur.reset();
        }
    };

    while (true) {
        if (ref_.ch->empty())
            STEP_EMIT(out_.ch, coal_.flush());
        Token t = co_await ref_.ch->read(*this);
        if (t.isData()) {
            ++elements_;
            while (!cur) {
                Token ti = co_await in_.ch->read(*this);
                STEP_ASSERT(!ti.isDone(),
                            "streamify buffers ended before ref in "
                            << name());
                if (ti.isData())
                    cur = ti.value().bufferRef().id;
            }
            const StoredBuffer& buf = graph_.scratchpad().get(*cur);
            if (affine_) {
                STEP_ASSERT(buf.gridDims.size() == 2,
                            "affine streamify over irregular buffer in "
                            << name());
                std::vector<const Value*> grid;
                grid.reserve(buf.toks.size());
                for (const auto& bt : buf.toks)
                    if (bt.isData())
                        grid.push_back(&bt.value());
                for (int64_t i = 0; i < affine_->outShape[0]; ++i) {
                    for (int64_t j = 0; j < affine_->outShape[1]; ++j) {
                        int64_t li = i * affine_->stride[0] +
                                     j * affine_->stride[1];
                        STEP_ASSERT(li >= 0 && li <
                                    static_cast<int64_t>(grid.size()),
                                    "affine read index " << li
                                    << " outside buffer of "
                                    << grid.size() << " tiles");
                        const Value& v = *grid[static_cast<size_t>(li)];
                        busyAdvance(std::max<dam::Cycle>(
                            1, static_cast<dam::Cycle>(
                                (v.bytes() + bw - 1) / bw)));
                        STEP_EMIT(out_.ch, coal_.onData(v));
                    }
                    STEP_EMIT(out_.ch, coal_.onStop(1));
                }
                STEP_EMIT(out_.ch, coal_.onStop(2));
            } else {
                for (const auto& bt : buf.toks) {
                    if (bt.isData()) {
                        busyAdvance(std::max<dam::Cycle>(
                            1, static_cast<dam::Cycle>(
                                (bt.value().bytes() + bw - 1) / bw)));
                        STEP_EMIT(out_.ch, coal_.onData(bt.value()));
                    } else {
                        STEP_EMIT(out_.ch, coal_.onStop(bt.level()));
                    }
                }
                STEP_EMIT(out_.ch, coal_.onStop(added));
            }
            if (c == 0)
                release_current();
        } else if (t.isStop()) {
            busyAdvance(1);
            STEP_EMIT(out_.ch, coal_.onStop(t.level() + added));
            if (t.level() >= c && c > 0)
                release_current();
        } else {
            release_current();
            while (true) {
                Token ti = co_await in_.ch->read(*this);
                if (ti.isDone())
                    break;
                if (ti.isData())
                    graph_.scratchpad().release(
                        ti.value().bufferRef().id);
            }
            STEP_EMIT(out_.ch, coal_.onDone());
            break;
        }
    }
    co_return;
}


void
BufferizeOp::rearm(const RearmSpec& spec)
{
    OpBase::rearm(spec);
    coal_.reset();
}

void
StreamifyOp::rearm(const RearmSpec& spec)
{
    OpBase::rearm(spec);
    coal_.reset();
}

} // namespace step
