/**
 * @file
 * On-chip memory operators (section 3.2.2): Bufferize stores rank-b
 * portions of a stream into the scratchpad and emits buffer references;
 * Streamify replays referenced buffers a data-dependent number of times,
 * affinely when the buffer is regular. Together they expose the on-chip
 * memory / off-chip traffic trade-off at the abstraction level.
 */
#pragma once

#include <array>
#include <optional>

#include "ops/common.hh"
#include "ops/graph.hh"

namespace step {

class BufferizeOp : public OpBase
{
  public:
    BufferizeOp(Graph& g, const std::string& name, StreamPort in,
                size_t rank);

    StreamPort out() const { return out_; }

    dam::SimTask run() override;

    /** |in dtype| + ||buffer|| * |in dtype| * 2 (double buffering). */
    sym::Expr onChipMemExpr() const override;

    void rearm(const RearmSpec& spec) override;

    void
    collectPorts(std::vector<PortDecl>& out) const override
    {
        out.push_back(PortDecl::input(in_));
        out.push_back(PortDecl::output(out_));
    }

  private:
    StreamPort in_;
    size_t rank_;
    StreamPort out_;
    StopCoalescer coal_;
};

/** Affine-read parameters for regular buffers (tile-grid indices). */
struct StreamifyAffine
{
    std::array<int64_t, 2> stride{1, 1};
    std::array<int64_t, 2> outShape{1, 1};
};

class StreamifyOp : public OpBase
{
  public:
    /**
     * @param ref_inner_rank c: number of ref dims inside the buffer
     *        stream's dims — each buffer serves one rank-c ref group,
     *        and each ref element in it triggers one pass.
     * @param affine affine read over the buffer's tile grid; when absent
     *        the buffer is replayed linearly (required for
     *        dynamically-sized buffers).
     */
    StreamifyOp(Graph& g, const std::string& name, StreamPort in,
                StreamPort ref, size_t ref_inner_rank,
                std::optional<StreamifyAffine> affine = std::nullopt);

    StreamPort out() const { return out_; }

    dam::SimTask run() override;
    void rearm(const RearmSpec& spec) override;

    void
    collectPorts(std::vector<PortDecl>& out) const override
    {
        out.push_back(PortDecl::input(in_));
        out.push_back(PortDecl::input(ref_));
        out.push_back(PortDecl::output(out_));
    }

  private:
    size_t addedRank() const;

    StreamPort in_;
    StreamPort ref_;
    size_t refInnerRank_;
    std::optional<StreamifyAffine> affine_;
    StreamPort out_;
    StopCoalescer coal_;
};

} // namespace step
