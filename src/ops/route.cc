#include "ops/route.hh"

#include <algorithm>

#include "dam/scheduler.hh"
#include "support/error.hh"

namespace step {

namespace {

/** Routing cost of one token through a switch at on-chip bandwidth. */
dam::Cycle
routeCost(const Token& t, int64_t bw)
{
    if (!t.isData())
        return 1;
    return std::max<dam::Cycle>(
        1, static_cast<dam::Cycle>((t.value().bytes() + bw - 1) / bw));
}

} // namespace

// ---------------------------------------------------------------------
// Partition
// ---------------------------------------------------------------------

PartitionOp::PartitionOp(Graph& g, const std::string& name, StreamPort in,
                         StreamPort sel, size_t rank, size_t num_consumers)
    : OpBase(g, name), in_(in), sel_(sel), rank_(rank)
{
    STEP_ASSERT(num_consumers >= 1, "partition needs >= 1 consumers");
    STEP_ASSERT(in_.rank() == sel_.rank() + rank_,
                "partition rank mismatch: in rank " << in_.rank()
                << " != sel rank " << sel_.rank() << " + " << rank_
                << " in " << name);
    in_.ch->setConsumer(this);
    sel_.ch->setConsumer(this);

    // [sel outer dims..., D^i (ragged), chunk dims...]
    StreamShape out_shape = sel_.shape.dropInner(1)
        .concatInner(StreamShape({Dim::ragged()}))
        .concatInner(in_.shape.takeInner(rank_));
    for (size_t i = 0; i < num_consumers; ++i) {
        StreamPort p{&g.makeChannel(name + ".out" + std::to_string(i)),
                     out_shape, in_.dtype};
        p.ch->setProducer(this);
        outs_.push_back(p);
        coals_.emplace_back();
    }
}

dam::SimTask
PartitionOp::run()
{
    const auto p = static_cast<uint32_t>(rank_);
    while (true) {
        if (sel_.ch->empty()) {
            for (size_t o = 0; o < outs_.size(); ++o)
                STEP_EMIT(outs_[o].ch, coals_[o].flush());
        }
        Token ts = co_await sel_.ch->read(*this);
        if (ts.isData()) {
            ++elements_;
            const auto& sel = ts.value().selector().indices;
            for (uint32_t i : sel)
                STEP_ASSERT(i < outs_.size(), "selector index " << i
                            << " out of " << outs_.size() << " outputs");
            // Route one rank-p chunk.
            while (true) {
                Token t = co_await in_.ch->read(*this);
                STEP_ASSERT(!t.isDone(),
                            "input ended mid-selection in " << name());
                busyAdvance(routeCost(
                    t, graph_.config().onChipBwBytesPerCycle));
                if (t.isData()) {
                    for (uint32_t i : sel)
                        STEP_EMIT(outs_[i].ch, coals_[i].onData(t.value()));
                } else if (t.level() < p) {
                    for (uint32_t i : sel)
                        STEP_EMIT(outs_[i].ch,
                                  coals_[i].onStop(t.level()));
                } else {
                    // Chunk terminator; levels above p close selector
                    // dims and broadcast to every output.
                    for (uint32_t i : sel)
                        STEP_EMIT(outs_[i].ch, coals_[i].onStop(t.level()));
                    if (t.level() > p) {
                        for (size_t o = 0; o < outs_.size(); ++o) {
                            if (std::find(sel.begin(), sel.end(),
                                          static_cast<uint32_t>(o)) ==
                                sel.end()) {
                                STEP_EMIT(outs_[o].ch,
                                          coals_[o].onStop(t.level()));
                            }
                        }
                    }
                    break;
                }
            }
        } else if (ts.isStop()) {
            busyAdvance(1); // structure already mirrored via input stops
        } else {
            Token t = co_await in_.ch->read(*this);
            STEP_ASSERT(t.isDone(), "input/selector length mismatch in "
                        << name() << ": leftover " << t.toString());
            for (size_t o = 0; o < outs_.size(); ++o)
                STEP_EMIT(outs_[o].ch, coals_[o].onDone());
            break;
        }
    }
    co_return;
}

void
PartitionOp::rearm(const RearmSpec& spec)
{
    OpBase::rearm(spec);
    for (auto& c : coals_)
        c.reset();
}

// ---------------------------------------------------------------------
// Reassemble
// ---------------------------------------------------------------------

ReassembleOp::ReassembleOp(Graph& g, const std::string& name,
                           std::vector<StreamPort> ins, StreamPort sel,
                           size_t rank)
    : OpBase(g, name), ins_(std::move(ins)), sel_(sel), rank_(rank)
{
    STEP_ASSERT(!ins_.empty(), "reassemble needs inputs");
    for (auto& p : ins_) {
        p.ch->setConsumer(this);
        STEP_ASSERT(p.rank() == rank_ + 1,
                    "reassemble input rank " << p.rank() << " != rank+1 ("
                    << rank_ + 1 << ") in " << name);
    }
    sel_.ch->setConsumer(this);
    StreamShape out_shape = sel_.shape
        .concatInner(StreamShape({Dim::ragged()}))
        .concatInner(ins_[0].shape.takeInner(rank_));
    out_ = StreamPort{&g.makeChannel(name + ".out"), std::move(out_shape),
                      ins_[0].dtype};
    out_.ch->setProducer(this);
    // Reserve at build time so per-selection routing never allocates.
    selScratch_.reserve(ins_.size());
}

dam::SimTask
ReassembleOp::run()
{
    const auto b = static_cast<uint32_t>(rank_);
    while (true) {
        if (sel_.ch->empty())
            STEP_EMIT(out_.ch, coal_.flush());
        Token ts = co_await sel_.ch->read(*this);
        if (ts.isData()) {
            ++elements_;
            const IndexVec& picked = ts.value().selector().indices;
            selScratch_.assign(picked.begin(), picked.end());
            std::vector<uint32_t>& sel = selScratch_;
            // Collect in availability order: inputs whose head token is
            // already present go first (by ready time), the rest last.
            std::stable_sort(sel.begin(), sel.end(),
                [&](uint32_t a, uint32_t c) {
                    auto key = [&](uint32_t i) -> dam::Cycle {
                        const auto* ch = ins_[i].ch;
                        return ch->empty() ? ~dam::Cycle{0}
                                           : ch->frontTime();
                    };
                    return key(a) < key(c);
                });
            for (size_t si = 0; si < sel.size(); ++si) {
                uint32_t i = sel[si];
                STEP_ASSERT(i < ins_.size(), "selector index " << i
                            << " out of " << ins_.size() << " inputs");
                while (true) {
                    Token t = co_await ins_[i].ch->read(*this);
                    STEP_ASSERT(!t.isDone(), "input " << i
                                << " exhausted while selected in "
                                << name());
                    busyAdvance(routeCost(
                        t, graph_.config().onChipBwBytesPerCycle));
                    if (t.isData()) {
                        STEP_EMIT(out_.ch, coal_.onData(t.value()));
                    } else if (t.level() < b) {
                        STEP_EMIT(out_.ch, coal_.onStop(t.level()));
                    } else {
                        break; // chunk terminator consumed
                    }
                }
                if (si + 1 < sel.size())
                    STEP_EMIT(out_.ch, coal_.onStop(b));
            }
            STEP_EMIT(out_.ch, coal_.onStop(b + 1));
        } else if (ts.isStop()) {
            busyAdvance(1);
            STEP_EMIT(out_.ch, coal_.onStop(b + 1 + ts.level()));
        } else {
            for (size_t i = 0; i < ins_.size(); ++i) {
                Token t = co_await ins_[i].ch->read(*this);
                STEP_ASSERT(t.isDone(), "trailing tokens on reassemble "
                            << "input " << i << ": " << t.toString());
            }
            STEP_EMIT(out_.ch, coal_.onDone());
            break;
        }
    }
    co_return;
}

void
ReassembleOp::rearm(const RearmSpec& spec)
{
    OpBase::rearm(spec);
    coal_.reset();
}

// ---------------------------------------------------------------------
// EagerMerge
// ---------------------------------------------------------------------

EagerMergeOp::EagerMergeOp(Graph& g, const std::string& name,
                           std::vector<StreamPort> ins, size_t rank)
    : OpBase(g, name), ins_(std::move(ins)), rank_(rank)
{
    STEP_ASSERT(!ins_.empty(), "eager merge needs inputs");
    for (auto& p : ins_) {
        p.ch->setConsumer(this);
        STEP_ASSERT(p.rank() == rank_ + 1 || (rank_ == 0 && p.rank() == 1),
                    "eager merge input rank " << p.rank()
                    << " incompatible with rank " << rank_);
    }
    StreamShape out_shape = StreamShape({Dim::ragged()})
        .concatInner(ins_[0].shape.takeInner(rank_));
    out_ = StreamPort{&g.makeChannel(name + ".out"), std::move(out_shape),
                      ins_[0].dtype};
    out_.ch->setProducer(this);
    selOut_ = StreamPort{&g.makeChannel(name + ".sel"),
                         StreamShape({Dim::ragged()}),
                         DataType::selector(
                             static_cast<int64_t>(ins_.size()))};
    selOut_.ch->setProducer(this);
    // Reserve at build time so re-blocking never allocates.
    waitScratch_.reserve(ins_.size());
    done_.assign(ins_.size(), false);
}

int
EagerMergeOp::pickAvailable(const std::vector<bool>& done) const
{
    int best = -1;
    dam::Cycle best_t = ~dam::Cycle{0};
    for (size_t i = 0; i < ins_.size(); ++i) {
        if (done[i] || ins_[i].ch->empty())
            continue;
        dam::Cycle t = ins_[i].ch->frontTime();
        if (t < best_t) {
            best_t = t;
            best = static_cast<int>(i);
        }
    }
    return best;
}

void
EagerMergeOp::rearm(const RearmSpec& spec)
{
    OpBase::rearm(spec);
    coal_.reset();
    done_.assign(ins_.size(), false);
}

dam::SimTask
EagerMergeOp::run()
{
    const auto b = static_cast<uint32_t>(rank_);
    const bool timed_wait = graph_.config().mergeTimedWait;
    std::vector<bool>& done = done_;
    size_t remaining = ins_.size();
    int patience = 0;
    while (remaining > 0) {
        int pick = pickAvailable(done);
        if (pick < 0) {
            STEP_EMIT(out_.ch, coal_.flush());
            waitScratch_.clear();
            for (size_t i = 0; i < ins_.size(); ++i)
                if (!done[i])
                    waitScratch_.push_back(ins_[i].ch);
            // Named awaiter: GCC 12 mis-destroys temporary awaiter
            // objects with non-trivial members (double free).
            dam::WaitAny any_waiter{waitScratch_, *this};
            co_await any_waiter;
            continue;
        }
        // Let producers with earlier clocks act first so "arrival order"
        // approximates hardware availability.
        dam::Cycle avail =
            ins_[static_cast<size_t>(pick)].ch->frontTime();
        std::optional<dam::Cycle> other = scheduler()->minReadyClock(this);
        if (timed_wait) {
            if (other && *other < avail) {
                // One time-indexed suspension until simulated time
                // catches up to the candidate's availability, instead
                // of yield-polling once per earlier-clocked producer
                // step. A pure timer: anything pushed in the meantime
                // is visible at the re-pick after the deadline pop, so
                // a channel wake would only add resumes.
                dam::WaitUntil until_waiter{{}, *this, avail};
                co_await until_waiter;
                continue;
            }
        } else if (patience < 64 && other && *other < avail) {
            // Legacy bounded-retry yield poll (A/B reference).
            ++patience;
            co_await dam::Yield{*this};
            continue;
        }
        patience = 0;
        auto pi = static_cast<size_t>(pick);
        if (ins_[pi].ch->frontToken().isDone()) {
            co_await ins_[pi].ch->read(*this);
            done[pi] = true;
            --remaining;
            continue;
        }
        // One chunk from the picked input.
        ++elements_;
        STEP_EMIT_RAW(selOut_.ch, Token::data(
            Selector::oneHot(static_cast<uint32_t>(pick))));
        if (b == 0) {
            Token t = co_await ins_[pi].ch->read(*this);
            busyAdvance(routeCost(
                t, graph_.config().onChipBwBytesPerCycle));
            STEP_EMIT(out_.ch, coal_.onData(t.value()));
            continue;
        }
        while (true) {
            Token t = co_await ins_[pi].ch->read(*this);
            busyAdvance(routeCost(
                t, graph_.config().onChipBwBytesPerCycle));
            if (t.isData()) {
                STEP_EMIT(out_.ch, coal_.onData(t.value()));
            } else if (t.isStop() && t.level() < b) {
                STEP_EMIT(out_.ch, coal_.onStop(t.level()));
            } else if (t.isStop()) {
                STEP_EMIT(out_.ch, coal_.onStop(b));
                break;
            } else {
                STEP_EMIT(out_.ch, coal_.onStop(b));
                done[pi] = true;
                --remaining;
                break;
            }
        }
    }
    STEP_EMIT(out_.ch, coal_.onDone());
    STEP_EMIT_RAW(selOut_.ch, Token::done());
    co_return;
}

// ---------------------------------------------------------------------
// Dispatcher
// ---------------------------------------------------------------------

DispatcherOp::DispatcherOp(Graph& g, const std::string& name,
                           StreamPort completions, size_t regions,
                           uint64_t total)
    : OpBase(g, name), completions_(completions), regions_(regions),
      total_(total)
{
    completions_.ch->setConsumer(this);
    out_ = StreamPort{&g.makeChannel(name + ".out",
                                     std::max<size_t>(16, 2 * regions)),
                      StreamShape({Dim::fixed(
                          static_cast<int64_t>(total))}),
                      DataType::selector(static_cast<int64_t>(regions))};
    out_.ch->setProducer(this);
}

dam::SimTask
DispatcherOp::run()
{
    uint64_t issued = 0;
    // Initial round-robin fill (the FlatMap of Figure 16).
    for (size_t r = 0; r < regions_ && issued < total_; ++r, ++issued) {
        busyAdvance(1);
        STEP_EMIT_RAW(out_.ch, Token::data(
            Selector::oneHot(static_cast<uint32_t>(r))));
    }
    // Every completion frees a slot in its region.
    bool comp_done = false;
    while (issued < total_) {
        Token t = co_await completions_.ch->read(*this);
        if (t.isDone()) {
            comp_done = true;
            break;
        }
        if (!t.isData())
            continue;
        ++issued;
        ++elements_;
        busyAdvance(1);
        STEP_EMIT_RAW(out_.ch, Token::data(t.value()));
    }
    // Emit Done immediately so downstream termination doesn't wait on
    // the trailing completions (which depend on downstream finishing).
    STEP_EMIT_RAW(out_.ch, Token::done());
    while (!comp_done) {
        Token t = co_await completions_.ch->read(*this);
        comp_done = t.isDone();
    }
    co_return;
}

} // namespace step
