/**
 * @file
 * Stream endpoints and fan-out: SourceOp injects a pre-materialized token
 * stream (program inputs: activations from the previous layer, selector
 * streams from the router, reference/trigger streams), SinkOp terminates
 * and optionally captures a stream, and BroadcastOp is the explicit
 * fan-out node (channels are single-consumer, as on the hardware fabric).
 */
#pragma once

#include "ops/common.hh"
#include "ops/graph.hh"

namespace step {

class SourceOp : public OpBase
{
  public:
    /**
     * @param toks   full token stream including the trailing Done
     * @param shape  declared symbolic shape
     * @param dtype  element type
     * @param ii     initiation interval per token (cycles)
     */
    SourceOp(Graph& g, const std::string& name, std::vector<Token> toks,
             StreamShape shape, DataType dtype, dam::Cycle ii = 1);

    StreamPort out() const { return out_; }

    dam::SimTask run() override;

    /**
     * Requires spec.tokens when re-arming for a new run: the previous
     * stream was moved out during emission. Graph::rearm's generic
     * pass (null tokens) leaves the source disarmed; running a
     * disarmed source asserts.
     */
    void rearm(const RearmSpec& spec) override;

    void
    collectPorts(std::vector<PortDecl>& out) const override
    {
        out.push_back(PortDecl::output(out_));
    }

  private:
    std::vector<Token> toks_;
    StreamPort out_;
    dam::Cycle ii_;
    bool armed_ = true;
};

class SinkOp : public OpBase
{
  public:
    SinkOp(Graph& g, const std::string& name, StreamPort in,
           bool capture = false);

    dam::SimTask run() override;

    /** Captured tokens (only if capture=true). */
    const std::vector<Token>& tokens() const { return captured_; }
    uint64_t dataCount() const { return dataCount_; }
    /** Local clock when Done was received. */
    dam::Cycle finishTime() const { return finish_; }

    void rearm(const RearmSpec& spec) override;

    void
    collectPorts(std::vector<PortDecl>& out) const override
    {
        out.push_back(PortDecl::input(in_));
    }

  private:
    StreamPort in_;
    bool capture_;
    std::vector<Token> captured_;
    uint64_t dataCount_ = 0;
    dam::Cycle finish_ = 0;
};

/**
 * Forwards a stream into a pre-created channel. Used to close feedback
 * structures (e.g. region-completion signals feeding a dispatcher whose
 * output routes work to those same regions, Figure 16) where the
 * consumer graph must exist before the producer.
 */
class RelayOp : public OpBase
{
  public:
    RelayOp(Graph& g, const std::string& name, StreamPort in,
            dam::Channel* target);

    dam::SimTask run() override;

    void
    collectPorts(std::vector<PortDecl>& out) const override
    {
        out.push_back(PortDecl::input(in_));
        // Verbatim forwarder: the target carries the input's view.
        out.push_back(PortDecl{target_, in_.shape, in_.dtype, false});
    }

  private:
    StreamPort in_;
    dam::Channel* target_;
};

class BroadcastOp : public OpBase
{
  public:
    BroadcastOp(Graph& g, const std::string& name, StreamPort in,
                size_t fanout);

    StreamPort out(size_t i) const { return outs_.at(i); }
    size_t fanout() const { return outs_.size(); }

    dam::SimTask run() override;

    void
    collectPorts(std::vector<PortDecl>& out) const override
    {
        out.push_back(PortDecl::input(in_));
        for (const StreamPort& o : outs_)
            out.push_back(PortDecl::output(o));
    }

  private:
    StreamPort in_;
    std::vector<StreamPort> outs_;
};

} // namespace step
