/**
 * @file
 * Dynamic routing and merging operators (section 3.2.3): Partition,
 * Reassemble, EagerMerge — the data-dependent control flow primitives —
 * plus DispatcherOp, the availability-driven selector generator that
 * closes the dynamic-parallelization loop of Figure 16.
 */
#pragma once

#include <algorithm>

#include "ops/common.hh"
#include "ops/graph.hh"

namespace step {

/**
 * Partition routes rank-@p rank chunks of the input stream to the output
 * streams selected by each (multi-hot) selector element. Stops closing
 * selector-level dimensions broadcast to every output so all partitions
 * observe the group structure.
 */
class PartitionOp : public OpBase
{
  public:
    PartitionOp(Graph& g, const std::string& name, StreamPort in,
                StreamPort sel, size_t rank, size_t num_consumers);

    StreamPort out(size_t i) const { return outs_.at(i); }
    size_t numOuts() const { return outs_.size(); }

    dam::SimTask run() override;
    void rearm(const RearmSpec& spec) override;

    void
    collectPorts(std::vector<PortDecl>& out) const override
    {
        out.push_back(PortDecl::input(in_));
        out.push_back(PortDecl::input(sel_));
        for (const StreamPort& o : outs_)
            out.push_back(PortDecl::output(o));
    }

  private:
    StreamPort in_;
    StreamPort sel_;
    size_t rank_;
    std::vector<StreamPort> outs_;
    std::vector<StopCoalescer> coals_;
};

/**
 * Reassemble merges rank-@p rank chunks from the selected input streams;
 * when a multi-hot selector picks several inputs, chunks are collected in
 * the order input data is available, never interleaving chunks
 * (Figure 4). After all selected inputs are collected a new dimension is
 * added by incrementing the stop token.
 */
class ReassembleOp : public OpBase
{
  public:
    ReassembleOp(Graph& g, const std::string& name,
                 std::vector<StreamPort> ins, StreamPort sel, size_t rank);

    StreamPort out() const { return out_; }

    dam::SimTask run() override;
    void rearm(const RearmSpec& spec) override;

    void
    collectPorts(std::vector<PortDecl>& out) const override
    {
        for (const StreamPort& i : ins_)
            out.push_back(PortDecl::input(i));
        out.push_back(PortDecl::input(sel_));
        out.push_back(PortDecl::output(out_));
    }

  private:
    std::vector<StreamPort> ins_;
    StreamPort sel_;
    size_t rank_;
    StreamPort out_;
    StopCoalescer coal_;
    /** Per-selection scratch (capacity reused across events). */
    std::vector<uint32_t> selScratch_;
};

/**
 * EagerMerge collects rank-@p rank chunks in arrival order and reports
 * the origin of each chunk on a selector stream. rank 0 merges scalar
 * streams element-wise (completion signals).
 */
class EagerMergeOp : public OpBase
{
  public:
    EagerMergeOp(Graph& g, const std::string& name,
                 std::vector<StreamPort> ins, size_t rank);

    StreamPort out() const { return out_; }
    StreamPort selOut() const { return selOut_; }

    dam::SimTask run() override;
    void rearm(const RearmSpec& spec) override;

    void
    collectPorts(std::vector<PortDecl>& out) const override
    {
        for (const StreamPort& i : ins_)
            out.push_back(PortDecl::input(i));
        out.push_back(PortDecl::output(out_));
        out.push_back(PortDecl::output(selOut_));
    }

  private:
    /** Pick the available input with the earliest head token. */
    int pickAvailable(const std::vector<bool>& done) const;

    std::vector<StreamPort> ins_;
    size_t rank_;
    StreamPort out_;
    StreamPort selOut_;
    StopCoalescer coal_;
    /** Re-block scratch for WaitAny (capacity reused across events). */
    std::vector<dam::Channel*> waitScratch_;
    /** Per-input exhaustion flags; sized at build (run() runs once). */
    std::vector<bool> done_;
};

/**
 * Dispatcher for dynamic parallelization (Figure 16): emits @p total
 * one-hot selectors over @p regions consumers; the first `regions`
 * assignments are round-robin (the FlatMap in the figure), every
 * subsequent assignment targets the region whose completion signal
 * arrives next (the EagerMerge selector input).
 */
class DispatcherOp : public OpBase
{
  public:
    DispatcherOp(Graph& g, const std::string& name, StreamPort completions,
                 size_t regions, uint64_t total);

    StreamPort out() const { return out_; }

    dam::SimTask run() override;

    void
    collectPorts(std::vector<PortDecl>& out) const override
    {
        out.push_back(PortDecl::input(completions_));
        out.push_back(PortDecl::output(out_));
    }

    /**
     * The first min(regions, total) selectors are emitted round-robin
     * before any completion is read — the initial tokens that keep the
     * Figure-16 feedback cycle live.
     */
    int64_t
    primingTokens(const dam::Channel* out) const override
    {
        if (out != out_.ch)
            return 0;
        return static_cast<int64_t>(
            std::min<uint64_t>(regions_, total_));
    }

  private:
    StreamPort completions_;
    size_t regions_;
    uint64_t total_;
    StreamPort out_;
};

} // namespace step
