/**
 * @file
 * The STeP program graph: owns operators, channels, and the shared memory
 * resources (off-chip model + scratchpad), provides the builder API used
 * by workloads (the C++ analog of the symbolic Python frontend of
 * section 4.1), aggregates the symbolic metrics of section 4.2, and runs
 * the cycle-approximate simulation of section 4.3.
 */
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "dam/scheduler.hh"
#include "mem/mem_model.hh"
#include "mem/scratchpad.hh"
#include "ops/common.hh"
#include "support/arena.hh"

namespace step {

namespace verify {
struct VerifyOptions;
struct VerifyReport;
} // namespace verify

/** Result of one simulation run. */
struct SimResult
{
    dam::Cycle cycles = 0;            ///< makespan over all contexts
    int64_t offChipBytes = 0;         ///< achieved off-chip traffic
    int64_t offChipReadBytes = 0;
    int64_t offChipWriteBytes = 0;
    int64_t onChipPeakBytes = 0;      ///< scratchpad + operator state peak
    int64_t totalFlops = 0;           ///< useful FLOPs executed
    int64_t allocatedComputeBw = 0;   ///< sum of per-op compute bandwidth
    uint64_t contextSwitches = 0;     ///< coroutine resumes during the run

    /** Fraction of allocated compute doing useful work. */
    double
    computeUtilization() const
    {
        if (!cycles || !allocatedComputeBw)
            return 0.0;
        return static_cast<double>(totalFlops) /
               (static_cast<double>(cycles) *
                static_cast<double>(allocatedComputeBw));
    }

    /** Fraction of off-chip bandwidth used, given bytes/cycle peak. */
    double
    offChipBwUtilization(int64_t peak_bytes_per_cycle) const
    {
        if (!cycles || !peak_bytes_per_cycle)
            return 0.0;
        return static_cast<double>(offChipBytes) /
               (static_cast<double>(cycles) *
                static_cast<double>(peak_bytes_per_cycle));
    }
};

class Graph
{
  public:
    /**
     * @param cfg   timing parameters
     * @param arena optional recycling backend. When set, operators are
     *              bump-allocated from it, channel names are interned in
     *              it, and recycle() rewinds the whole build; the arena
     *              must outlive the graph.
     */
    explicit Graph(SimConfig cfg = {}, GraphArena* arena = nullptr);
    ~Graph();

    Graph(const Graph&) = delete;
    Graph& operator=(const Graph&) = delete;

    const SimConfig& config() const { return cfg_; }

    /** Construct and register an operator. */
    template <typename OpT, typename... Args>
    OpT&
    add(Args&&... args)
    {
        OpT* op;
        if (arena_) {
            void* p = arena_->mem.allocate(sizeof(OpT), alignof(OpT));
            op = new (p) OpT(*this, std::forward<Args>(args)...);
        } else {
            op = new OpT(*this, std::forward<Args>(args)...);
        }
        ops_.push_back(op);
        return *op;
    }

    /** Create a channel owned by the graph. */
    dam::Channel& makeChannel(std::string_view name,
                              size_t capacity_override = 0);

    /**
     * Tear down the current build for reuse (arena-backed graphs only):
     * operator destructors run in reverse order, the arena rewinds,
     * channels return to a pool for reinit, and the memory models reset.
     * The next build bump-allocates through the retained blocks, reuses
     * pooled channel storage, and hits the interned name pool — so
     * steady-state rebuilds of a structurally stable graph stop paying
     * per-node heap allocation.
     */
    void recycle(const SimConfig& cfg);

    /**
     * Structure-preserving re-arm: keep every operator and channel of
     * the current build alive and reset only their run-time state
     * (clocks, coroutine frames, FIFO contents, measured metrics,
     * memory models), so the same graph can run again after its
     * per-iteration parameters are patched through OpBase::rearm().
     * This skips the ~190 operator constructors a recycle+rebuild pays
     * and is valid only while the graph structure (operator set,
     * channel geometry) is unchanged — callers key on a structural
     * fingerprint and fall back to recycle() + rebuild on mismatch.
     */
    void rearm(const SimConfig& cfg);

    /** Off-chip memory model (default: SimpleBwModel per SimConfig). */
    MemModel& memModel() { return *mem_; }
    void
    setMemModel(std::unique_ptr<MemModel> m)
    {
        mem_ = std::move(m);
        customMem_ = true;
    }

    Scratchpad& scratchpad() { return spad_; }

    /** Sum of per-operator off-chip traffic expressions (section 4.2). */
    sym::Expr offChipTrafficExpr() const;
    /** Sum of per-operator on-chip requirement expressions. */
    sym::Expr onChipMemExpr() const;

    /** Run the simulation; callable once per graph build. */
    [[nodiscard]] SimResult run();

    /**
     * Run the simulation on an externally owned scheduler (reset before
     * use). Lets a long-lived driver such as the serving engine reuse one
     * scheduler across many per-iteration graphs.
     */
    [[nodiscard]] SimResult run(dam::Scheduler& sched);

    /**
     * Statically analyze the current build without executing it
     * (structural well-formedness, shape/dtype flow, deadlock-freedom,
     * determinism audit — see src/verify/verifier.hh). Read-only:
     * verification never changes simulation behavior or output bytes.
     */
    [[nodiscard]] verify::VerifyReport
    verify(const verify::VerifyOptions& opts) const;

    [[nodiscard]] const std::vector<OpBase*>& ops() const { return ops_; }

    /** Live channels of the current build, in creation order. */
    [[nodiscard]] const std::vector<dam::Channel*>&
    channels() const
    {
        return channels_;
    }

    /** Total tokens pushed across all channels (event count). */
    uint64_t totalChannelTokens() const;

  private:
    void destroyOps();

    SimConfig cfg_;
    GraphArena* arena_ = nullptr;
    std::vector<OpBase*> ops_;
    /** Live channels of the current build (owned via store/pool). */
    std::vector<dam::Channel*> channels_;
    std::vector<std::unique_ptr<dam::Channel>> channelStore_;
    std::vector<std::unique_ptr<dam::Channel>> channelPool_;
    std::unique_ptr<MemModel> mem_;
    bool customMem_ = false;
    Scratchpad spad_;
    bool ran_ = false;
};

} // namespace step
