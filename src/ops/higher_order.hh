/**
 * @file
 * Higher-order operators (section 3.2.4): Map, Accum, Scan, FlatMap. Each
 * takes a hardware-supported function and a programmer-specified compute
 * bandwidth; per input element the operator advances its clock by the
 * roofline equation of section 4.3.
 */
#pragma once

#include <functional>

#include "ops/common.hh"
#include "ops/graph.hh"

namespace step {

/** Elementwise function over (possibly zipped) inputs. */
using MapFn =
    std::function<Value(const std::vector<Value>&, int64_t& flops)>;

/** Accumulator functions. */
using AccumInitFn = std::function<Value()>;
using AccumUpdateFn =
    std::function<Value(const Value& in, Value state, int64_t& flops)>;

/**
 * Element expansion: appends a rank-b sub-stream (stops < b allowed) to
 * @p out. The operator clears and reuses one scratch vector across
 * elements, so expansion performs no steady-state allocation.
 */
using FlatMapFn = std::function<void(const Value&, std::vector<Token>& out,
                                     int64_t& flops)>;

/**
 * Map applies an element-wise function without changing the stream shape.
 * With two inputs the streams are read in lockstep (token kinds and stop
 * levels must align), as in Listing 1's matmul over (activations,
 * weights).
 */
class MapOp : public OpBase
{
  public:
    MapOp(Graph& g, const std::string& name, std::vector<StreamPort> ins,
          MapFn fn, int64_t compute_bw, DataType out_dtype);

    StreamPort out() const { return out_; }

    dam::SimTask run() override;

    int64_t allocatedComputeBw() const override { return computeBw_; }
    sym::Expr onChipMemExpr() const override { return onChipExpr_; }

    /**
     * Declare this Map a matrix-multiplication unit for the memory
     * metric: on-chip requirement 16 x in_tile_col + |weight tile|
     * (section 4.2), with input index @p weight_input holding the weight.
     */
    void setMatmulMemSpec(size_t weight_input);

    void rearm(const RearmSpec& spec) override;

    void
    collectPorts(std::vector<PortDecl>& out) const override
    {
        for (const StreamPort& i : ins_)
            out.push_back(PortDecl::input(i));
        out.push_back(PortDecl::output(out_));
    }

  private:
    std::vector<StreamPort> ins_;
    MapFn fn_;
    int64_t computeBw_;
    StreamPort out_;
    int weightInput_ = -1;
    sym::Expr onChipExpr_ = sym::Expr(0);
    /** Per-element argument pack (capacity reused across events). */
    std::vector<Value> argScratch_;
};

/**
 * Accum reduces over the b innermost dimensions: every rank-b subtensor
 * folds into an accumulator that is emitted at the subtensor boundary.
 * The accumulator may grow dynamically (RetileRow over dynamically sized
 * tiles — the key enabler of dynamic tiling, section 5.2).
 */
class AccumOp : public OpBase
{
  public:
    AccumOp(Graph& g, const std::string& name, StreamPort in, size_t rank,
            AccumInitFn init, AccumUpdateFn update, int64_t compute_bw,
            DataType out_dtype);

    StreamPort out() const { return out_; }

    dam::SimTask run() override;

    int64_t allocatedComputeBw() const override { return computeBw_; }
    /** |output dtype| (section 4.2). */
    sym::Expr
    onChipMemExpr() const override
    {
        return out_.dtype.sizeBytes();
    }

    void rearm(const RearmSpec& spec) override;

    void
    collectPorts(std::vector<PortDecl>& out) const override
    {
        out.push_back(PortDecl::input(in_));
        out.push_back(PortDecl::output(out_));
    }

  private:
    StreamPort in_;
    size_t rank_;
    AccumInitFn init_;
    AccumUpdateFn update_;
    int64_t computeBw_;
    StreamPort out_;
    StopCoalescer coal_;
};

/** Scan: like Accum but emits the running state on every element. */
class ScanOp : public OpBase
{
  public:
    ScanOp(Graph& g, const std::string& name, StreamPort in, size_t rank,
           AccumInitFn init, AccumUpdateFn update, int64_t compute_bw,
           DataType out_dtype);

    StreamPort out() const { return out_; }

    dam::SimTask run() override;

    int64_t allocatedComputeBw() const override { return computeBw_; }
    sym::Expr
    onChipMemExpr() const override
    {
        return out_.dtype.sizeBytes();
    }

    void rearm(const RearmSpec& spec) override;

    void
    collectPorts(std::vector<PortDecl>& out) const override
    {
        out.push_back(PortDecl::input(in_));
        out.push_back(PortDecl::output(out_));
    }

  private:
    StreamPort in_;
    size_t rank_;
    AccumInitFn init_;
    AccumUpdateFn update_;
    int64_t computeBw_;
    StreamPort out_;
};

/**
 * FlatMap expands each element into a rank-b sub-stream; consecutive
 * expansions concatenate (separated by S_b), incoming stops shift up by b.
 */
class FlatMapOp : public OpBase
{
  public:
    /**
     * @param fn_dims symbolic dims of one expansion (rank b ==
     *                fn_dims.rank())
     */
    FlatMapOp(Graph& g, const std::string& name, StreamPort in, FlatMapFn fn,
              StreamShape fn_dims, DataType out_dtype,
              int64_t compute_bw = 0);

    StreamPort out() const { return out_; }

    dam::SimTask run() override;

    int64_t allocatedComputeBw() const override { return computeBw_; }

    void rearm(const RearmSpec& spec) override;

    void
    collectPorts(std::vector<PortDecl>& out) const override
    {
        out.push_back(PortDecl::input(in_));
        out.push_back(PortDecl::output(out_));
    }

  private:
    StreamPort in_;
    FlatMapFn fn_;
    size_t rank_;
    int64_t computeBw_;
    StreamPort out_;
    StopCoalescer coal_;
    /** Expansion scratch (capacity reused across events). */
    std::vector<Token> expScratch_;
};

// ---------------------------------------------------------------------
// Function library
// ---------------------------------------------------------------------

namespace fns {

/** C = A x B over a 2-tuple input (activations, weights). */
MapFn matmul();
/** C = A x B^T (scores = q x K^T in attention). */
MapFn matmulBT();
/** Elementwise sum of a 2-input map. */
MapFn addFn();
/** Elementwise product of a 2-input map (SwiGLU gating). */
MapFn mulFn();
/** SiLU activation. */
MapFn siluFn();
/** SwiGLU combine: silu(gate) * up over a tuple (gate, up). */
MapFn swigluFn();

/** Accumulator: empty tile growing by row-wise concatenation. */
AccumInitFn retileRowInit(int64_t cols, int elem_bytes = kDefaultElemBytes);
AccumUpdateFn retileRowUpdate();
/** Accumulator: empty tile growing by column-wise concatenation. */
AccumInitFn retileColInit(int64_t rows, int elem_bytes = kDefaultElemBytes);
AccumUpdateFn retileColUpdate();
/** Accumulator: elementwise running sum starting at zero. */
AccumInitFn zeroInit(int64_t rows, int64_t cols,
                     int elem_bytes = kDefaultElemBytes);
AccumUpdateFn addUpdate();

/**
 * Online-softmax attention accumulator (flash-attention style): state is
 * a tuple (m, l, acc); each input is a tuple (q [1,H], k [T,H], v [T,H]).
 * finishing happens in attnFinish. @p flop_scale multiplies the counted
 * FLOPs (grouped-query attention runs numQHeads/numKvHeads query heads
 * against each KV element; the payload math models one effective head).
 */
AccumInitFn attnInit(int64_t head_dim, int elem_bytes = kDefaultElemBytes);
AccumUpdateFn attnUpdate(int64_t flop_scale = 1);
/** Map finishing the attention state tuple into the output row acc/l. */
MapFn attnFinish();

/** FlatMap fn: split a tile row-wise into chunk_rows-row tiles. */
FlatMapFn retileStreamify(int64_t chunk_rows);

} // namespace fns

} // namespace step
