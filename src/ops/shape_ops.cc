#include "ops/shape_ops.hh"

#include "support/error.hh"

namespace step {

// ---------------------------------------------------------------------
// Flatten
// ---------------------------------------------------------------------

FlattenOp::FlattenOp(Graph& g, const std::string& name, StreamPort in,
                     size_t lo, size_t hi)
    : OpBase(g, name), in_(in), lo_(lo), hi_(hi)
{
    STEP_ASSERT(lo <= hi && hi < in.rank(),
                "flatten range [" << lo << "," << hi << "] of rank "
                << in.rank() << " in " << name);
    in_.ch->setConsumer(this);
    out_ = StreamPort{&g.makeChannel(name + ".out"),
                      in_.shape.flattened(lo, hi), in_.dtype};
    out_.ch->setProducer(this);
}

dam::SimTask
FlattenOp::run()
{
    const auto drop = static_cast<uint32_t>(hi_ - lo_);
    while (true) {
        if (in_.ch->empty())
            STEP_EMIT(out_.ch, coal_.flush());
        Token t = co_await in_.ch->read(*this);
        busyAdvance(1);
        if (t.isData()) {
            ++elements_;
            STEP_EMIT(out_.ch, coal_.onData(t.value()));
        } else if (t.isStop()) {
            uint32_t l = t.level();
            if (l <= lo_) {
                STEP_EMIT(out_.ch, coal_.onStop(l));
            } else if (l <= hi_) {
                // separator inside the flattened range: dissolves
            } else {
                STEP_EMIT(out_.ch, coal_.onStop(l - drop));
            }
        } else {
            STEP_EMIT(out_.ch, coal_.onDone());
            break;
        }
    }
    co_return;
}

// ---------------------------------------------------------------------
// Reshape
// ---------------------------------------------------------------------

ReshapeOp::ReshapeOp(Graph& g, const std::string& name, StreamPort in,
                     size_t rank, int64_t chunk, std::optional<Value> pad)
    : OpBase(g, name), in_(in), rank_(rank), chunk_(chunk),
      pad_(std::move(pad))
{
    STEP_ASSERT(chunk_ >= 1, "reshape chunk must be >= 1");
    STEP_ASSERT(rank_ < in.rank(), "reshape rank " << rank_
                << " out of input rank " << in.rank());
    STEP_ASSERT(!pad_ || rank_ == 0,
                "padding only supported when splitting the innermost dim");
    in_.ch->setConsumer(this);

    // Split inner(rank): [..., D, ...] -> [..., ceil(D/S), S, ...].
    DimVec dims = in_.shape.dims();
    size_t vidx = in_.rank() - 1 - rank_;
    Dim d = dims[static_cast<size_t>(vidx)];
    Dim outer{sym::ceilDiv(d.size, sym::Expr(chunk_)), d.kind};
    if (d.isRagged())
        outer = Dim::ragged();
    dims[vidx] = outer;
    dims.insert(vidx + 1, Dim::fixed(chunk_));
    out_ = StreamPort{&g.makeChannel(name + ".out"), StreamShape(dims),
                      in_.dtype};
    out_.ch->setProducer(this);
    if (pad_) {
        padOut_ = StreamPort{&g.makeChannel(name + ".pad"),
                             StreamShape(dims), DataType::tile(1, 1, 1)};
        padOut_.ch->setProducer(this);
    }
}

dam::SimTask
ReshapeOp::run()
{
    const auto b = static_cast<uint32_t>(rank_);
    int64_t count = 0; // elements (rank 0) or chunks (rank b) seen
    while (true) {
        if (in_.ch->empty()) {
            STEP_EMIT(out_.ch, coal_.flush());
            if (padOut_.ch)
                STEP_EMIT(padOut_.ch, padCoal_.flush());
        }
        Token t = co_await in_.ch->read(*this);
        busyAdvance(1);
        if (t.isData()) {
            ++elements_;
            if (b == 0) {
                STEP_EMIT(out_.ch, coal_.onData(t.value()));
                if (padOut_.ch) {
                    STEP_EMIT(padOut_.ch, padCoal_.onData(
                        Tile::withData(1, 1, {0.0f}, 1)));
                }
                if (++count % chunk_ == 0) {
                    STEP_EMIT(out_.ch, coal_.onStop(1));
                    if (padOut_.ch)
                        STEP_EMIT(padOut_.ch, padCoal_.onStop(1));
                }
            } else {
                STEP_EMIT(out_.ch, coal_.onData(t.value()));
            }
        } else if (t.isStop()) {
            uint32_t l = t.level();
            if (b == 0) {
                if (count % chunk_ != 0) {
                    STEP_ASSERT(pad_, "dimension " << count
                                << " not divisible by " << chunk_
                                << " and no pad value in " << name());
                    while (count % chunk_ != 0) {
                        STEP_EMIT(out_.ch, coal_.onData(*pad_));
                        if (padOut_.ch) {
                            STEP_EMIT(padOut_.ch, padCoal_.onData(
                                Tile::withData(1, 1, {1.0f}, 1)));
                        }
                        ++count;
                    }
                }
                count = 0;
                STEP_EMIT(out_.ch, coal_.onStop(l + 1));
                if (padOut_.ch)
                    STEP_EMIT(padOut_.ch, padCoal_.onStop(l + 1));
            } else {
                if (l < b) {
                    STEP_EMIT(out_.ch, coal_.onStop(l));
                } else if (l == b) {
                    ++count;
                    STEP_EMIT(out_.ch, coal_.onStop(
                        count % chunk_ == 0 ? b + 1 : b));
                } else {
                    STEP_ASSERT(count % chunk_ == 0,
                                "dim at rank " << rank_ << " (" << count
                                << " chunks) not divisible by " << chunk_
                                << " in " << name());
                    count = 0;
                    STEP_EMIT(out_.ch, coal_.onStop(l + 1));
                }
            }
        } else {
            // A rank-1 input's innermost dimension closes at Done: pad
            // the trailing partial chunk and emit its boundary stop.
            if (b == 0 && count % chunk_ != 0) {
                STEP_ASSERT(pad_, "trailing dimension of " << count
                            << " not divisible by " << chunk_
                            << " and no pad value in " << name());
                while (count % chunk_ != 0) {
                    STEP_EMIT(out_.ch, coal_.onData(*pad_));
                    if (padOut_.ch) {
                        STEP_EMIT(padOut_.ch, padCoal_.onData(
                            Tile::withData(1, 1,
                                           std::vector<float>{1.0f}, 1)));
                    }
                    ++count;
                }
                STEP_EMIT(out_.ch, coal_.onStop(1));
                if (padOut_.ch)
                    STEP_EMIT(padOut_.ch, padCoal_.onStop(1));
            }
            STEP_EMIT(out_.ch, coal_.onDone());
            if (padOut_.ch)
                STEP_EMIT(padOut_.ch, padCoal_.onDone());
            break;
        }
    }
    co_return;
}

// ---------------------------------------------------------------------
// Promote
// ---------------------------------------------------------------------

PromoteOp::PromoteOp(Graph& g, const std::string& name, StreamPort in)
    : OpBase(g, name), in_(in)
{
    in_.ch->setConsumer(this);
    Dim outer{sym::min(sym::Expr(1), in_.shape.rank()
                       ? in_.shape.outer(0).size : sym::Expr(0)),
              in_.shape.rank() && in_.shape.outer(0).isStatic()
                  ? DimKind::StaticRegular : DimKind::DynamicRegular};
    out_ = StreamPort{&g.makeChannel(name + ".out"),
                      in_.shape.pushOuter(outer), in_.dtype};
    out_.ch->setProducer(this);
}

dam::SimTask
PromoteOp::run()
{
    const auto r = static_cast<uint32_t>(in_.rank());
    bool seen = false;
    StopCoalescer coal;
    while (true) {
        if (in_.ch->empty())
            STEP_EMIT(out_.ch, coal.flush());
        Token t = co_await in_.ch->read(*this);
        busyAdvance(1);
        if (t.isData()) {
            ++elements_;
            seen = true;
            STEP_EMIT(out_.ch, coal.onData(t.value()));
        } else if (t.isStop()) {
            seen = true;
            STEP_EMIT(out_.ch, coal.onStop(t.level()));
        } else {
            if (seen)
                STEP_EMIT(out_.ch, coal.onStop(r));
            STEP_EMIT(out_.ch, coal.onDone());
            break;
        }
    }
    co_return;
}

// ---------------------------------------------------------------------
// Expand (reference-driven)
// ---------------------------------------------------------------------

ExpandOp::ExpandOp(Graph& g, const std::string& name, StreamPort in,
                   StreamPort ref, size_t rank)
    : OpBase(g, name), in_(in), ref_(ref), rank_(rank)
{
    STEP_ASSERT(in.rank() == ref.rank(),
                "Expand input/ref rank mismatch in " << name);
    in_.ch->setConsumer(this);
    ref_.ch->setConsumer(this);
    out_ = StreamPort{&g.makeChannel(name + ".out"), ref_.shape,
                      in_.dtype};
    out_.ch->setProducer(this);
}

dam::SimTask
ExpandOp::run()
{
    StopCoalescer coal;
    std::optional<Value> cur;
    while (true) {
        if (ref_.ch->empty())
            STEP_EMIT(out_.ch, coal.flush());
        Token t = co_await ref_.ch->read(*this);
        busyAdvance(1);
        if (t.isData()) {
            ++elements_;
            while (!cur) {
                Token ti = co_await in_.ch->read(*this);
                STEP_ASSERT(!ti.isDone(), "Expand input ended before ref "
                            << "in " << name());
                if (ti.isData())
                    cur = ti.value();
            }
            STEP_EMIT(out_.ch, coal.onData(*cur));
        } else if (t.isStop()) {
            if (t.level() >= rank_)
                cur.reset(); // next outer element -> next input value
            STEP_EMIT(out_.ch, coal.onStop(t.level()));
        } else {
            // Drain the input's trailing stops and Done.
            while (true) {
                Token ti = co_await in_.ch->read(*this);
                if (ti.isDone())
                    break;
            }
            STEP_EMIT(out_.ch, coal.onDone());
            break;
        }
    }
    co_return;
}

// ---------------------------------------------------------------------
// ExpandStatic
// ---------------------------------------------------------------------

ExpandStaticOp::ExpandStaticOp(Graph& g, const std::string& name,
                               StreamPort in, int64_t count)
    : OpBase(g, name), in_(in), count_(count)
{
    STEP_ASSERT(count_ >= 1, "expand count must be >= 1");
    in_.ch->setConsumer(this);
    DimVec dims = in_.shape.dims();
    STEP_ASSERT(!dims.empty(), "expand on rank-0 stream");
    Dim& inner = dims.back();
    inner = Dim{inner.size * sym::Expr(count_), inner.kind};
    out_ = StreamPort{&g.makeChannel(name + ".out"), StreamShape(dims),
                      in_.dtype};
    out_.ch->setProducer(this);
}

dam::SimTask
ExpandStaticOp::run()
{
    while (true) {
        Token t = co_await in_.ch->read(*this);
        busyAdvance(1);
        if (t.isData()) {
            ++elements_;
            for (int64_t i = 0; i < count_; ++i)
                STEP_EMIT_RAW(out_.ch, t);
        } else {
            bool done = t.isDone();
            STEP_EMIT_RAW(out_.ch, t);
            if (done)
                break;
        }
    }
    co_return;
}

// ---------------------------------------------------------------------
// Repeat
// ---------------------------------------------------------------------

RepeatOp::RepeatOp(Graph& g, const std::string& name, StreamPort in,
                   int64_t count)
    : OpBase(g, name), in_(in), count_(count)
{
    STEP_ASSERT(count_ >= 1, "repeat count must be >= 1");
    in_.ch->setConsumer(this);
    out_ = StreamPort{
        &g.makeChannel(name + ".out"),
        in_.shape.concatInner(StreamShape::fixed({count_})), in_.dtype};
    out_.ch->setProducer(this);
}

dam::SimTask
RepeatOp::run()
{
    while (true) {
        if (in_.ch->empty())
            STEP_EMIT(out_.ch, coal_.flush());
        Token t = co_await in_.ch->read(*this);
        busyAdvance(1);
        if (t.isData()) {
            ++elements_;
            for (int64_t i = 0; i < count_; ++i)
                STEP_EMIT(out_.ch, coal_.onData(t.value()));
            STEP_EMIT(out_.ch, coal_.onStop(1));
        } else if (t.isStop()) {
            STEP_EMIT(out_.ch, coal_.onStop(t.level() + 1));
        } else {
            STEP_EMIT(out_.ch, coal_.onDone());
            break;
        }
    }
    co_return;
}

// ---------------------------------------------------------------------
// Zip
// ---------------------------------------------------------------------

ZipOp::ZipOp(Graph& g, const std::string& name, std::vector<StreamPort> ins)
    : OpBase(g, name), ins_(std::move(ins))
{
    STEP_ASSERT(ins_.size() >= 2, "Zip needs >= 2 inputs");
    std::vector<DataType> dts;
    for (auto& p : ins_) {
        p.ch->setConsumer(this);
        STEP_ASSERT(p.shape.compatibleWith(ins_[0].shape),
                    "Zip shapes misaligned in " << name);
        dts.push_back(p.dtype);
    }
    out_ = StreamPort{&g.makeChannel(name + ".out"), ins_[0].shape,
                      DataType::tuple(std::move(dts))};
    out_.ch->setProducer(this);
}

dam::SimTask
ZipOp::run()
{
    while (true) {
        std::vector<Token> ts;
        ts.reserve(ins_.size());
        for (auto& p : ins_)
            ts.push_back(co_await p.ch->read(*this));
        busyAdvance(1);
        for (size_t i = 1; i < ts.size(); ++i) {
            STEP_ASSERT(ts[i].kind() == ts[0].kind() &&
                        (!ts[0].isStop() ||
                         ts[i].level() == ts[0].level()),
                        "Zip inputs misaligned in " << name() << ": "
                        << ts[0].toString() << " vs " << ts[i].toString());
        }
        if (ts[0].isData()) {
            ++elements_;
            std::vector<Value> vals;
            vals.reserve(ts.size());
            for (auto& t : ts)
                vals.push_back(t.value());
            STEP_EMIT_RAW(out_.ch, Token::data(Value::tuple(
                std::move(vals))));
        } else {
            bool done = ts[0].isDone();
            STEP_EMIT_RAW(out_.ch, ts[0]);
            if (done)
                break;
        }
    }
    co_return;
}

// ---------------------------------------------------------------------
// Filter
// ---------------------------------------------------------------------

FilterOp::FilterOp(Graph& g, const std::string& name, StreamPort in,
                   StreamPort mask)
    : OpBase(g, name), in_(in), mask_(mask)
{
    in_.ch->setConsumer(this);
    mask_.ch->setConsumer(this);
    DimVec dims = in_.shape.dims();
    STEP_ASSERT(!dims.empty(), "filter on rank-0 stream");
    dims.back() = Dim::ragged();
    out_ = StreamPort{&g.makeChannel(name + ".out"), StreamShape(dims),
                      in_.dtype};
    out_.ch->setProducer(this);
}

dam::SimTask
FilterOp::run()
{
    while (true) {
        if (in_.ch->empty())
            STEP_EMIT(out_.ch, coal_.flush());
        Token t = co_await in_.ch->read(*this);
        Token m = co_await mask_.ch->read(*this);
        busyAdvance(1);
        STEP_ASSERT(t.kind() == m.kind() &&
                    (!t.isStop() || t.level() == m.level()),
                    "Filter mask misaligned in " << name());
        if (t.isData()) {
            ++elements_;
            bool padded = m.value().tile().hasData() &&
                          m.value().tile().at(0, 0) != 0.0f;
            if (!padded)
                STEP_EMIT(out_.ch, coal_.onData(t.value()));
        } else if (t.isStop()) {
            STEP_EMIT(out_.ch, coal_.onStop(t.level()));
        } else {
            STEP_EMIT(out_.ch, coal_.onDone());
            break;
        }
    }
    co_return;
}


// ---------------------------------------------------------------------
// rearm overrides: reset the stop-coalescing state machines
// ---------------------------------------------------------------------

void
FlattenOp::rearm(const RearmSpec& spec)
{
    OpBase::rearm(spec);
    coal_.reset();
}

void
ReshapeOp::rearm(const RearmSpec& spec)
{
    OpBase::rearm(spec);
    coal_.reset();
    padCoal_.reset();
}

void
RepeatOp::rearm(const RearmSpec& spec)
{
    OpBase::rearm(spec);
    coal_.reset();
}

void
FilterOp::rearm(const RearmSpec& spec)
{
    OpBase::rearm(spec);
    coal_.reset();
}

} // namespace step
