/**
 * @file
 * Shared infrastructure for STeP operator implementations: the simulation
 * configuration, stream ports (channel + symbolic shape + dtype), and the
 * operator base class combining a DAM context with the section-4.2 metric
 * interface.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/codec.hh"
#include "core/dtype.hh"
#include "core/stream_shape.hh"
#include "core/token.hh"
#include "dam/channel.hh"
#include "dam/context.hh"
#include "symbolic/expr.hh"

namespace step {

class Graph;

/** Timing parameters shared by all operators (section 5.1 defaults). */
struct SimConfig
{
    /** Per-unit on-chip memory bandwidth in bytes/cycle. */
    int64_t onChipBwBytesPerCycle = 64;
    /** Off-chip aggregate bandwidth for the SimpleBwModel default. */
    int64_t offChipBwBytesPerCycle = 1024;
    /** Off-chip access latency for the SimpleBwModel default. */
    dam::Cycle offChipLatency = 64;
    /** Hardware FIFO depth. */
    size_t channelCapacity = 8;
    /** FIFO forwarding latency. */
    dam::Cycle channelLatency = 1;
    /**
     * Availability-ordered merges wait out arrival races with one
     * WaitUntil suspension instead of patience-yield polling (~3x fewer
     * context switches per decoder iteration). The legacy yield loop is
     * kept behind this flag for A/B verification in tests and benches.
     */
    bool mergeTimedWait = true;
};

/** One end of a stream: the channel plus its compile-time view. */
struct StreamPort
{
    dam::Channel* ch = nullptr;
    StreamShape shape;
    DataType dtype;

    size_t rank() const { return shape.rank(); }

    /** Listing-1 style shape override (e.g. after Reassemble). */
    StreamPort
    withShape(StreamShape s) const
    {
        return StreamPort{ch, std::move(s), dtype};
    }
};

/**
 * One stream endpoint as declared by its operator, for static analysis
 * (src/verify). Operators report every port they bound in their
 * constructor — inputs they consume, outputs they produce — so the
 * verifier can cross-check the op-side view against the channel
 * endpoint tables and diff shapes/dtypes across each channel without
 * executing anything.
 */
struct PortDecl
{
    const dam::Channel* ch = nullptr;
    StreamShape shape;
    DataType dtype;
    bool isInput = false;

    static PortDecl
    input(const StreamPort& p)
    {
        return PortDecl{p.ch, p.shape, p.dtype, true};
    }

    static PortDecl
    output(const StreamPort& p)
    {
        return PortDecl{p.ch, p.shape, p.dtype, false};
    }
};

struct OffChipTensor;

/**
 * Per-iteration payload handed to OpBase::rearm(). Only the fields an
 * operator understands are consumed; everything else is ignored. The
 * default-constructed spec means "reset run state only" and is what
 * Graph::rearm() passes to every operator; workload-level rearm
 * functions then re-invoke rearm on the operators that carry
 * per-iteration data (source token streams, off-chip tensor metadata,
 * policy-assigned compute bandwidths).
 */
struct RearmSpec
{
    /** New source token stream (consumed by move; SourceOp). */
    std::vector<Token>* tokens = nullptr;
    /** New off-chip tensor metadata (off-chip load operators). */
    const OffChipTensor* tensor = nullptr;
    /** New allocated compute bandwidth; < 0 keeps the current value. */
    int64_t computeBw = -1;
};

/**
 * Base class for every STeP operator. An operator is a DAM context (its
 * run() coroutine implements the streaming semantics and the timing
 * model) plus the static metric expressions of section 4.2.
 */
class OpBase : public dam::Context
{
  public:
    OpBase(Graph& g, std::string name);

    /**
     * Structure-preserving re-arm: reset all per-run state (local
     * clock, coroutine frame, measured metrics, roofline memo) and
     * apply the per-iteration payload in @p spec, so the operator can
     * re-run inside a recycled graph without being reconstructed.
     * Subclasses with run-state members (stop coalescers, exhaustion
     * flags, cursors) or rearm-able parameters override this and call
     * the base. Metrics after a rearmed run are bit-identical to a
     * rebuilt graph's.
     */
    virtual void rearm(const RearmSpec& spec);

    /** Off-chip traffic in bytes (zero except off-chip operators). */
    virtual sym::Expr offChipTrafficExpr() const { return sym::Expr(0); }

    /** On-chip memory requirement in bytes (section 4.2 equations). */
    virtual sym::Expr onChipMemExpr() const { return sym::Expr(0); }

    /** Compute bandwidth allocated to this operator (FLOPs/cycle). */
    virtual int64_t allocatedComputeBw() const { return 0; }

    /**
     * Append one PortDecl per stream endpoint this operator bound in its
     * constructor. The declarations are the operator-side ground truth
     * the static verifier checks against the channel endpoint tables;
     * an operator that binds a channel but does not declare it here
     * shows up as a structural finding.
     */
    virtual void
    collectPorts(std::vector<PortDecl>& out) const
    {
        (void)out;
    }

    /**
     * Tokens this operator emits on @p out before consuming anything —
     * the static counterpart of initial tokens on a marked dataflow
     * graph. DispatcherOp primes its selector stream this way (Figure
     * 16); the deadlock pass uses these credits to prove its feedback
     * cycle live instead of flagging it.
     */
    virtual int64_t
    primingTokens(const dam::Channel* out) const
    {
        (void)out;
        return 0;
    }

    // Runtime measurements, populated during simulation.
    int64_t measuredFlops() const { return flops_; }
    int64_t measuredOnChipPeakBytes() const { return onChipPeak_; }
    uint64_t processedElements() const { return elements_; }
    dam::Cycle busyCycles() const { return busy_; }

    Graph& graph() const { return graph_; }

  protected:
    /** advance() that also accrues busy-cycle statistics. */
    void
    busyAdvance(dam::Cycle dt)
    {
        busy_ += dt;
        advance(dt);
    }

    /** Roofline cycles for one element (section 4.3 equation). */
    dam::Cycle rooflineCycles(int64_t in_bytes, int64_t flops,
                              int64_t out_bytes, int64_t compute_bw,
                              bool in_via_memory,
                              bool out_via_memory) const;

    /**
     * Memoized rooflineCycles for the regular-stream common case: most
     * operators process identically-shaped elements, so the (division-
     * heavy) roofline evaluates to the same cycle count every event.
     * Keyed on everything that varies at run time; bandwidths and the
     * via-memory flags are fixed per operator lifetime.
     */
    dam::Cycle
    rooflineCyclesMemo(int64_t in_bytes, int64_t flops, int64_t out_bytes,
                       int64_t compute_bw, bool in_via_memory,
                       bool out_via_memory)
    {
        if (in_bytes == memoIn_ && flops == memoFlops_ &&
            out_bytes == memoOut_)
            return memoDt_;
        memoIn_ = in_bytes;
        memoFlops_ = flops;
        memoOut_ = out_bytes;
        memoDt_ = rooflineCycles(in_bytes, flops, out_bytes, compute_bw,
                                 in_via_memory, out_via_memory);
        return memoDt_;
    }

    Graph& graph_;
    int64_t flops_ = 0;
    int64_t onChipPeak_ = 0;
    uint64_t elements_ = 0;
    dam::Cycle busy_ = 0;

  private:
    int64_t memoIn_ = -1;
    int64_t memoFlops_ = -1;
    int64_t memoOut_ = -1;
    dam::Cycle memoDt_ = 0;
};

/** Emit every token of a StopCoalescer result (coroutine bodies only). */
#define STEP_EMIT(chan, toks)                                                \
    for (auto& _step_tok : (toks))                                           \
        co_await (chan)->write(*this, std::move(_step_tok))

/** Emit a single raw token. */
#define STEP_EMIT_RAW(chan, tok) co_await (chan)->write(*this, (tok))

} // namespace step
