/**
 * @file
 * Off-chip memory operators (section 3.2.1): LinearOffChipLoad/Store and
 * RandomOffChipLoad/Store. These are the only operators with nonzero
 * off-chip traffic; coupled with the shape semantics they expose traffic
 * and operational intensity at the abstraction level.
 *
 * Timing: each tile access is issued to the shared MemModel at the unit's
 * local clock (1 request/cycle issue rate); the produced token becomes
 * visible at the DRAM completion time, so the unit pipelines requests and
 * the channel capacity bounds the outstanding-request window.
 */
#pragma once

#include <array>
#include <memory>

#include "ops/common.hh"
#include "ops/graph.hh"

namespace step {

/** Static description of a tiled tensor resident in off-chip memory. */
struct OffChipTensor
{
    uint64_t baseAddr = 0;
    int64_t tileRows = 1;
    int64_t tileCols = 1;
    int elemBytes = kDefaultElemBytes;
    /** Stored tensor extent in tiles: {rows, cols}. */
    std::array<int64_t, 2> inShapeTiles{1, 1};
    /** Optional functional payload: row-major element tensor. */
    std::shared_ptr<const std::vector<float>> payload;

    int64_t tileBytes() const { return tileRows * tileCols * elemBytes; }
    int64_t
    tensorBytes() const
    {
        return inShapeTiles[0] * inShapeTiles[1] * tileBytes();
    }

    /** Functional tensor from row-major data (tile grid inferred). */
    static OffChipTensor fromData(uint64_t base, int64_t rows, int64_t cols,
                                  int64_t tile_rows, int64_t tile_cols,
                                  std::vector<float> data,
                                  int elem_bytes = kDefaultElemBytes);

    /** Shape-only tensor. */
    static OffChipTensor shapeOnly(uint64_t base, int64_t rows,
                                   int64_t cols, int64_t tile_rows,
                                   int64_t tile_cols,
                                   int elem_bytes = kDefaultElemBytes);

    /** Extract tile (ti, tj); shape-only when no payload. */
    Tile tileAt(int64_t ti, int64_t tj) const;
};

/**
 * LinearOffChipLoad: for every element of the reference stream, performs
 * one affine read over the stored tensor, emitting a [outR, outC] grid of
 * tiles (two added inner dimensions). The reference stream's contents are
 * ignored — it is a trigger (Figure 2).
 */
class LinearOffChipLoadOp : public OpBase
{
  public:
    LinearOffChipLoadOp(Graph& g, const std::string& name, StreamPort ref,
                        OffChipTensor tensor,
                        std::array<int64_t, 2> stride_tiles,
                        std::array<int64_t, 2> out_shape_tiles);

    StreamPort out() const { return out_; }

    dam::SimTask run() override;

    sym::Expr offChipTrafficExpr() const override;
    sym::Expr onChipMemExpr() const override;

    /** spec.tensor swaps in new tensor metadata (same tile geometry). */
    void rearm(const RearmSpec& spec) override;

    void
    collectPorts(std::vector<PortDecl>& out) const override
    {
        out.push_back(PortDecl::input(ref_));
        out.push_back(PortDecl::output(out_));
    }

  private:
    StreamPort ref_;
    OffChipTensor tensor_;
    std::array<int64_t, 2> stride_;
    std::array<int64_t, 2> outShape_;
    StreamPort out_;
    StopCoalescer coal_;
};

/** LinearOffChipStore: writes the input tiles linearly from baseAddr. */
class LinearOffChipStoreOp : public OpBase
{
  public:
    LinearOffChipStoreOp(Graph& g, const std::string& name, StreamPort in,
                         uint64_t base_addr);

    dam::SimTask run() override;

    sym::Expr offChipTrafficExpr() const override;
    sym::Expr onChipMemExpr() const override;

    /** Completion time of the last store. */
    dam::Cycle lastWrite() const { return lastWrite_; }
    int64_t bytesStored() const { return cursor_; }

    void rearm(const RearmSpec& spec) override;

    void
    collectPorts(std::vector<PortDecl>& out) const override
    {
        out.push_back(PortDecl::input(in_));
    }

  private:
    StreamPort in_;
    uint64_t base_;
    int64_t cursor_ = 0;
    dam::Cycle lastWrite_ = 0;
};

/**
 * RandomOffChipLoad: data-dependent reads. Each address-stream element
 * selects a block (addr index x blockStrideBytes past baseAddr). In
 * single-tile mode one tile is emitted per address and the stream rank is
 * preserved (Table 3); in grid mode a [outR, outC] grid is emitted per
 * address (used for expert weights under configuration
 * time-multiplexing, Figure 11).
 */
class RandomOffChipLoadOp : public OpBase
{
  public:
    RandomOffChipLoadOp(Graph& g, const std::string& name, StreamPort addr,
                        OffChipTensor tensor, int64_t block_stride_bytes,
                        std::array<int64_t, 2> out_shape_tiles = {1, 1},
                        bool grid_mode = false);

    StreamPort out() const { return out_; }

    dam::SimTask run() override;

    sym::Expr offChipTrafficExpr() const override;
    sym::Expr onChipMemExpr() const override;

    /** Interpret an address-stream element as a block index. */
    static int64_t addrIndexOf(const Value& v);

    /** spec.tensor swaps in new tensor metadata (e.g. per-iteration KV
     *  extents); the block stride and output grid stay as built. */
    void rearm(const RearmSpec& spec) override;

    void
    collectPorts(std::vector<PortDecl>& out) const override
    {
        out.push_back(PortDecl::input(addr_));
        out.push_back(PortDecl::output(out_));
    }

  private:
    StreamPort addr_;
    OffChipTensor tensor_;
    int64_t blockStride_;
    std::array<int64_t, 2> outShape_;
    bool gridMode_;
    StreamPort out_;
    StopCoalescer coal_;
};

/**
 * RandomOffChipStore: writes each wdata element at the block selected by
 * the corresponding waddr element; emits a bool acknowledgement stream of
 * the waddr shape.
 */
class RandomOffChipStoreOp : public OpBase
{
  public:
    RandomOffChipStoreOp(Graph& g, const std::string& name, StreamPort waddr,
                         StreamPort wdata, uint64_t base_addr,
                         int64_t block_stride_bytes);

    StreamPort ackOut() const { return ack_; }

    dam::SimTask run() override;

    sym::Expr offChipTrafficExpr() const override;
    sym::Expr onChipMemExpr() const override;

    void
    collectPorts(std::vector<PortDecl>& out) const override
    {
        out.push_back(PortDecl::input(waddr_));
        out.push_back(PortDecl::input(wdata_));
        out.push_back(PortDecl::output(ack_));
    }

  private:
    StreamPort waddr_;
    StreamPort wdata_;
    uint64_t base_;
    int64_t blockStride_;
    StreamPort ack_;
};

} // namespace step
