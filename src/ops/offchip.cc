#include "ops/offchip.hh"

#include "support/error.hh"

namespace step {

OffChipTensor
OffChipTensor::fromData(uint64_t base, int64_t rows, int64_t cols,
                        int64_t tile_rows, int64_t tile_cols,
                        std::vector<float> data, int elem_bytes)
{
    STEP_ASSERT(rows % tile_rows == 0 && cols % tile_cols == 0,
                "tensor " << rows << "x" << cols
                << " not divisible by tile " << tile_rows << "x"
                << tile_cols);
    STEP_ASSERT(static_cast<int64_t>(data.size()) == rows * cols,
                "payload size mismatch");
    OffChipTensor t;
    t.baseAddr = base;
    t.tileRows = tile_rows;
    t.tileCols = tile_cols;
    t.elemBytes = elem_bytes;
    t.inShapeTiles = {rows / tile_rows, cols / tile_cols};
    t.payload = std::make_shared<const std::vector<float>>(std::move(data));
    return t;
}

OffChipTensor
OffChipTensor::shapeOnly(uint64_t base, int64_t rows, int64_t cols,
                         int64_t tile_rows, int64_t tile_cols,
                         int elem_bytes)
{
    STEP_ASSERT(rows % tile_rows == 0 && cols % tile_cols == 0,
                "tensor " << rows << "x" << cols
                << " not divisible by tile " << tile_rows << "x"
                << tile_cols);
    OffChipTensor t;
    t.baseAddr = base;
    t.tileRows = tile_rows;
    t.tileCols = tile_cols;
    t.elemBytes = elem_bytes;
    t.inShapeTiles = {rows / tile_rows, cols / tile_cols};
    return t;
}

Tile
OffChipTensor::tileAt(int64_t ti, int64_t tj) const
{
    STEP_ASSERT(ti >= 0 && ti < inShapeTiles[0] && tj >= 0 &&
                tj < inShapeTiles[1],
                "tile (" << ti << "," << tj << ") outside grid "
                << inShapeTiles[0] << "x" << inShapeTiles[1]);
    if (!payload)
        return Tile(tileRows, tileCols, elemBytes);
    int64_t tensor_cols = inShapeTiles[1] * tileCols;
    std::vector<float> data(
        static_cast<size_t>(tileRows * tileCols));
    for (int64_t r = 0; r < tileRows; ++r) {
        int64_t src = (ti * tileRows + r) * tensor_cols + tj * tileCols;
        for (int64_t c = 0; c < tileCols; ++c)
            data[static_cast<size_t>(r * tileCols + c)] =
                (*payload)[static_cast<size_t>(src + c)];
    }
    return Tile::withData(tileRows, tileCols, std::move(data), elemBytes);
}

// ---------------------------------------------------------------------
// LinearOffChipLoad
// ---------------------------------------------------------------------

LinearOffChipLoadOp::LinearOffChipLoadOp(Graph& g, const std::string& name,
                                         StreamPort ref,
                                         OffChipTensor tensor,
                                         std::array<int64_t, 2> stride_tiles,
                                         std::array<int64_t, 2>
                                             out_shape_tiles)
    : OpBase(g, name), ref_(ref), tensor_(std::move(tensor)),
      stride_(stride_tiles), outShape_(out_shape_tiles)
{
    ref_.ch->setConsumer(this);
    StreamShape out_shape = ref_.shape.concatInner(
        StreamShape::fixed({outShape_[0], outShape_[1]}));
    DataType dt = DataType::tile(tensor_.tileRows, tensor_.tileCols,
                                 tensor_.elemBytes);
    out_ = StreamPort{&g.makeChannel(name + ".out"), std::move(out_shape),
                      std::move(dt)};
    out_.ch->setProducer(this);
}

dam::SimTask
LinearOffChipLoadOp::run()
{
    while (true) {
        if (ref_.ch->empty())
            STEP_EMIT(out_.ch, coal_.flush());
        Token t = co_await ref_.ch->read(*this);
        if (t.isData()) {
            ++elements_;
            for (int64_t i = 0; i < outShape_[0]; ++i) {
                for (int64_t j = 0; j < outShape_[1]; ++j) {
                    int64_t li = i * stride_[0] + j * stride_[1];
                    int64_t ti = li / tensor_.inShapeTiles[1];
                    int64_t tj = li % tensor_.inShapeTiles[1];
                    uint64_t addr = tensor_.baseAddr +
                        static_cast<uint64_t>(li * tensor_.tileBytes());
                    dam::Cycle done_at = graph_.memModel().access(
                        addr, tensor_.tileBytes(), now(), false);
                    busyAdvance(1);
                    STEP_EMIT(out_.ch, coal_.flush());
                    co_await out_.ch->writeAt(
                        *this, Token::data(tensor_.tileAt(ti, tj)),
                        done_at);
                }
                STEP_EMIT(out_.ch, coal_.onStop(1));
            }
            STEP_EMIT(out_.ch, coal_.onStop(2));
        } else if (t.isStop()) {
            STEP_EMIT(out_.ch, coal_.onStop(t.level() + 2));
        } else {
            STEP_EMIT(out_.ch, coal_.onDone());
            break;
        }
    }
    co_return;
}

sym::Expr
LinearOffChipLoadOp::offChipTrafficExpr() const
{
    return out_.shape.numel() * sym::Expr(tensor_.tileBytes());
}

sym::Expr
LinearOffChipLoadOp::onChipMemExpr() const
{
    return out_.dtype.sizeBytes() * sym::Expr(2);
}

// ---------------------------------------------------------------------
// LinearOffChipStore
// ---------------------------------------------------------------------

LinearOffChipStoreOp::LinearOffChipStoreOp(Graph& g, const std::string& name,
                                           StreamPort in, uint64_t base_addr)
    : OpBase(g, name), in_(in), base_(base_addr)
{
    in_.ch->setConsumer(this);
}

dam::SimTask
LinearOffChipStoreOp::run()
{
    while (true) {
        Token t = co_await in_.ch->read(*this);
        if (t.isData()) {
            ++elements_;
            int64_t bytes = t.value().bytes();
            dam::Cycle done_at = graph_.memModel().access(
                base_ + static_cast<uint64_t>(cursor_), bytes, now(), true);
            lastWrite_ = std::max(lastWrite_, done_at);
            cursor_ += bytes;
            busyAdvance(1);
        } else if (t.isDone()) {
            break;
        }
    }
    co_return;
}

sym::Expr
LinearOffChipStoreOp::offChipTrafficExpr() const
{
    return in_.shape.numel() * in_.dtype.sizeBytes();
}

sym::Expr
LinearOffChipStoreOp::onChipMemExpr() const
{
    return in_.dtype.sizeBytes() * sym::Expr(2);
}

// ---------------------------------------------------------------------
// RandomOffChipLoad
// ---------------------------------------------------------------------

RandomOffChipLoadOp::RandomOffChipLoadOp(Graph& g, const std::string& name,
                                         StreamPort addr,
                                         OffChipTensor tensor,
                                         int64_t block_stride_bytes,
                                         std::array<int64_t, 2>
                                             out_shape_tiles,
                                         bool grid_mode)
    : OpBase(g, name), addr_(addr), tensor_(std::move(tensor)),
      blockStride_(block_stride_bytes), outShape_(out_shape_tiles),
      gridMode_(grid_mode)
{
    addr_.ch->setConsumer(this);
    StreamShape out_shape = gridMode_
        ? addr_.shape.concatInner(
              StreamShape::fixed({outShape_[0], outShape_[1]}))
        : addr_.shape;
    DataType dt = DataType::tile(tensor_.tileRows, tensor_.tileCols,
                                 tensor_.elemBytes);
    out_ = StreamPort{&g.makeChannel(name + ".out"), std::move(out_shape),
                      std::move(dt)};
    out_.ch->setProducer(this);
}

int64_t
RandomOffChipLoadOp::addrIndexOf(const Value& v)
{
    if (v.isSelector()) {
        STEP_ASSERT(!v.selector().indices.empty(),
                    "empty selector as address");
        return v.selector().indices[0];
    }
    const Tile& t = v.tile();
    STEP_ASSERT(t.hasData() && t.numel() >= 1,
                "address tile must carry a value");
    return static_cast<int64_t>(t.at(0, 0));
}

dam::SimTask
RandomOffChipLoadOp::run()
{
    while (true) {
        if (addr_.ch->empty())
            STEP_EMIT(out_.ch, coal_.flush());
        Token t = co_await addr_.ch->read(*this);
        if (t.isData()) {
            ++elements_;
            int64_t idx = addrIndexOf(t.value());
            uint64_t block_base = tensor_.baseAddr +
                static_cast<uint64_t>(idx * blockStride_);
            for (int64_t i = 0; i < outShape_[0]; ++i) {
                for (int64_t j = 0; j < outShape_[1]; ++j) {
                    int64_t li = i * outShape_[1] + j;
                    uint64_t a = block_base +
                        static_cast<uint64_t>(li * tensor_.tileBytes());
                    dam::Cycle done_at = graph_.memModel().access(
                        a, tensor_.tileBytes(), now(), false);
                    busyAdvance(1);
                    // Functional payload: block idx maps to grid row
                    // offset idx*outR when a payload is present.
                    Tile tile = tensor_.payload
                        ? tensor_.tileAt(
                              (idx * outShape_[0] + i) %
                                  tensor_.inShapeTiles[0],
                              j % tensor_.inShapeTiles[1])
                        : Tile(tensor_.tileRows, tensor_.tileCols,
                               tensor_.elemBytes);
                    STEP_EMIT(out_.ch, coal_.flush());
                    co_await out_.ch->writeAt(*this, Token::data(tile),
                                              done_at);
                }
                if (gridMode_)
                    STEP_EMIT(out_.ch, coal_.onStop(1));
            }
            if (gridMode_)
                STEP_EMIT(out_.ch, coal_.onStop(2));
        } else if (t.isStop()) {
            STEP_EMIT(out_.ch,
                      coal_.onStop(t.level() + (gridMode_ ? 2 : 0)));
        } else {
            STEP_EMIT(out_.ch, coal_.onDone());
            break;
        }
    }
    co_return;
}

sym::Expr
RandomOffChipLoadOp::offChipTrafficExpr() const
{
    return out_.shape.numel() * sym::Expr(tensor_.tileBytes());
}

sym::Expr
RandomOffChipLoadOp::onChipMemExpr() const
{
    return out_.dtype.sizeBytes() * sym::Expr(2);
}

// ---------------------------------------------------------------------
// RandomOffChipStore
// ---------------------------------------------------------------------

RandomOffChipStoreOp::RandomOffChipStoreOp(Graph& g, const std::string& name,
                                           StreamPort waddr, StreamPort wdata,
                                           uint64_t base_addr,
                                           int64_t block_stride_bytes)
    : OpBase(g, name), waddr_(waddr), wdata_(wdata), base_(base_addr),
      blockStride_(block_stride_bytes)
{
    waddr_.ch->setConsumer(this);
    wdata_.ch->setConsumer(this);
    ack_ = StreamPort{&g.makeChannel(name + ".ack"), waddr_.shape,
                      DataType::tile(1, 1, 1)};
    ack_.ch->setProducer(this);
}

dam::SimTask
RandomOffChipStoreOp::run()
{
    while (true) {
        Token ta = co_await waddr_.ch->read(*this);
        Token td = co_await wdata_.ch->read(*this);
        STEP_ASSERT(ta.kind() == td.kind() &&
                    (!ta.isStop() || ta.level() == td.level()),
                    "waddr/wdata streams misaligned in " << name());
        if (ta.isData()) {
            ++elements_;
            int64_t idx = RandomOffChipLoadOp::addrIndexOf(ta.value());
            int64_t bytes = td.value().bytes();
            dam::Cycle done_at = graph_.memModel().access(
                base_ + static_cast<uint64_t>(idx * blockStride_), bytes,
                now(), true);
            busyAdvance(1);
            Token ack = Token::data(
                Tile::withData(1, 1, std::vector<float>{1.0f}, 1));
            co_await ack_.ch->writeAt(*this, std::move(ack), done_at);
        } else if (ta.isStop()) {
            STEP_EMIT_RAW(ack_.ch, ta);
        } else {
            STEP_EMIT_RAW(ack_.ch, Token::done());
            break;
        }
    }
    co_return;
}

sym::Expr
RandomOffChipStoreOp::offChipTrafficExpr() const
{
    return waddr_.shape.numel() * wdata_.dtype.sizeBytes();
}

sym::Expr
RandomOffChipStoreOp::onChipMemExpr() const
{
    return wdata_.dtype.sizeBytes() * sym::Expr(2);
}


// ---------------------------------------------------------------------
// rearm overrides
// ---------------------------------------------------------------------

void
LinearOffChipLoadOp::rearm(const RearmSpec& spec)
{
    OpBase::rearm(spec);
    coal_.reset();
    if (spec.tensor)
        tensor_ = *spec.tensor;
}

void
LinearOffChipStoreOp::rearm(const RearmSpec& spec)
{
    OpBase::rearm(spec);
    cursor_ = 0;
    lastWrite_ = 0;
}

void
RandomOffChipLoadOp::rearm(const RearmSpec& spec)
{
    OpBase::rearm(spec);
    coal_.reset();
    if (spec.tensor)
        tensor_ = *spec.tensor;
}

} // namespace step
