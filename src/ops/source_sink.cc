#include "ops/source_sink.hh"

#include "support/error.hh"

namespace step {

SourceOp::SourceOp(Graph& g, const std::string& name,
                   std::vector<Token> toks, StreamShape shape,
                   DataType dtype, dam::Cycle ii)
    : OpBase(g, name), toks_(std::move(toks)), ii_(ii)
{
    STEP_ASSERT(!toks_.empty() && toks_.back().isDone(),
                "source stream must end in Done: " << name);
    out_ = StreamPort{&g.makeChannel(name + ".out"), std::move(shape),
                      std::move(dtype)};
    out_.ch->setProducer(this);
}

dam::SimTask
SourceOp::run()
{
    STEP_ASSERT(armed_, "source " << name() << " re-run without a "
                "fresh token stream (rearm spec missing tokens)");
    armed_ = false;
    // A run consumes the pre-materialized tokens, so they can be moved
    // out instead of copied; rearm() installs the next stream.
    for (auto& t : toks_) {
        busyAdvance(ii_);
        STEP_EMIT_RAW(out_.ch, std::move(t));
    }
    co_return;
}

void
SourceOp::rearm(const RearmSpec& spec)
{
    OpBase::rearm(spec);
    if (spec.tokens) {
        STEP_ASSERT(!spec.tokens->empty() && spec.tokens->back().isDone(),
                    "rearm stream must end in Done: " << name());
        toks_ = std::move(*spec.tokens);
        armed_ = true;
    }
}

SinkOp::SinkOp(Graph& g, const std::string& name, StreamPort in,
               bool capture)
    : OpBase(g, name), in_(in), capture_(capture)
{
    in_.ch->setConsumer(this);
}

dam::SimTask
SinkOp::run()
{
    while (true) {
        Token t = co_await in_.ch->read(*this);
        if (t.isData()) {
            ++dataCount_;
            ++elements_;
        }
        bool done = t.isDone();
        if (capture_)
            captured_.push_back(std::move(t));
        if (done)
            break;
    }
    finish_ = now();
    co_return;
}

void
SinkOp::rearm(const RearmSpec& spec)
{
    OpBase::rearm(spec);
    captured_.clear();
    dataCount_ = 0;
    finish_ = 0;
}

RelayOp::RelayOp(Graph& g, const std::string& name, StreamPort in,
                 dam::Channel* target)
    : OpBase(g, name), in_(in), target_(target)
{
    in_.ch->setConsumer(this);
    target_->setProducer(this);
}

dam::SimTask
RelayOp::run()
{
    while (true) {
        Token t = co_await in_.ch->read(*this);
        bool done = t.isDone();
        if (t.isData())
            ++elements_;
        co_await target_->write(*this, std::move(t));
        if (done)
            break;
    }
    co_return;
}

BroadcastOp::BroadcastOp(Graph& g, const std::string& name, StreamPort in,
                         size_t fanout)
    : OpBase(g, name), in_(in)
{
    STEP_ASSERT(fanout >= 1, "broadcast fanout must be >= 1");
    in_.ch->setConsumer(this);
    for (size_t i = 0; i < fanout; ++i) {
        StreamPort p{&g.makeChannel(name + ".out" + std::to_string(i)),
                     in.shape, in.dtype};
        p.ch->setProducer(this);
        outs_.push_back(p);
    }
}

dam::SimTask
BroadcastOp::run()
{
    while (true) {
        Token t = co_await in_.ch->read(*this);
        bool done = t.isDone();
        if (t.isData())
            ++elements_;
        for (auto& o : outs_)
            STEP_EMIT_RAW(o.ch, t);
        if (done)
            break;
    }
    co_return;
}

} // namespace step
