/**
 * @file
 * Shape operators (section 3.2.5): Flatten, Reshape, Promote, Expand
 * (reference-driven and static variants), Repeat, Zip — plus Filter, the
 * companion of Reshape's padding stream that drops padded elements after
 * compute. Shape operators only manipulate stop tokens; data contents are
 * untouched.
 */
#pragma once

#include <optional>

#include "ops/common.hh"
#include "ops/graph.hh"

namespace step {

/** Flatten the paper-indexed inner dimension range [lo, hi] into one. */
class FlattenOp : public OpBase
{
  public:
    FlattenOp(Graph& g, const std::string& name, StreamPort in, size_t lo,
              size_t hi);

    StreamPort out() const { return out_; }
    dam::SimTask run() override;
    void rearm(const RearmSpec& spec) override;

    void
    collectPorts(std::vector<PortDecl>& out) const override
    {
        out.push_back(PortDecl::input(in_));
        out.push_back(PortDecl::output(out_));
    }

  private:
    StreamPort in_;
    size_t lo_;
    size_t hi_;
    StreamPort out_;
    StopCoalescer coal_;
};

/**
 * Reshape splits dimension @p rank into chunks of @p chunk elements. For
 * rank 0 (the innermost dimension) a padding value pads the final chunk
 * and a boolean padding stream marks padded elements; higher dimensions
 * must be statically divisible.
 */
class ReshapeOp : public OpBase
{
  public:
    ReshapeOp(Graph& g, const std::string& name, StreamPort in, size_t rank,
              int64_t chunk, std::optional<Value> pad = std::nullopt);

    StreamPort out() const { return out_; }
    /** Padding indicator stream (only when a pad value was supplied). */
    StreamPort padOut() const { return padOut_; }
    bool hasPadStream() const { return padOut_.ch != nullptr; }

    dam::SimTask run() override;
    void rearm(const RearmSpec& spec) override;

    void
    collectPorts(std::vector<PortDecl>& out) const override
    {
        out.push_back(PortDecl::input(in_));
        out.push_back(PortDecl::output(out_));
        if (hasPadStream())
            out.push_back(PortDecl::output(padOut_));
    }

  private:
    StreamPort in_;
    size_t rank_;
    int64_t chunk_;
    std::optional<Value> pad_;
    StreamPort out_;
    StreamPort padOut_;
    StopCoalescer coal_;
    StopCoalescer padCoal_;
};

/** Promote adds a new outermost dimension of extent (D_a > 0 ? 1 : 0). */
class PromoteOp : public OpBase
{
  public:
    PromoteOp(Graph& g, const std::string& name, StreamPort in);

    StreamPort out() const { return out_; }
    dam::SimTask run() override;

    void
    collectPorts(std::vector<PortDecl>& out) const override
    {
        out.push_back(PortDecl::input(in_));
        out.push_back(PortDecl::output(out_));
    }

  private:
    StreamPort in_;
    StreamPort out_;
};

/**
 * Expand repeats each input element following the reference stream's
 * structure (Figure 5); the input's dims below @p rank must be unit.
 */
class ExpandOp : public OpBase
{
  public:
    ExpandOp(Graph& g, const std::string& name, StreamPort in,
             StreamPort ref, size_t rank);

    StreamPort out() const { return out_; }
    dam::SimTask run() override;

    void
    collectPorts(std::vector<PortDecl>& out) const override
    {
        out.push_back(PortDecl::input(in_));
        out.push_back(PortDecl::input(ref_));
        out.push_back(PortDecl::output(out_));
    }

  private:
    StreamPort in_;
    StreamPort ref_;
    size_t rank_;
    StreamPort out_;
};

/** Static Expand: widens the innermost dimension by emitting each
 *  element @p count times (the static variant noted in footnote 6). */
class ExpandStaticOp : public OpBase
{
  public:
    ExpandStaticOp(Graph& g, const std::string& name, StreamPort in,
                   int64_t count);

    StreamPort out() const { return out_; }
    dam::SimTask run() override;

    void
    collectPorts(std::vector<PortDecl>& out) const override
    {
        out.push_back(PortDecl::input(in_));
        out.push_back(PortDecl::output(out_));
    }

  private:
    StreamPort in_;
    int64_t count_;
    StreamPort out_;
};

/** Repeat adds a new innermost dimension of extent @p count (Fig. 18). */
class RepeatOp : public OpBase
{
  public:
    RepeatOp(Graph& g, const std::string& name, StreamPort in,
             int64_t count);

    StreamPort out() const { return out_; }
    dam::SimTask run() override;
    void rearm(const RearmSpec& spec) override;

    void
    collectPorts(std::vector<PortDecl>& out) const override
    {
        out.push_back(PortDecl::input(in_));
        out.push_back(PortDecl::output(out_));
    }

  private:
    StreamPort in_;
    int64_t count_;
    StreamPort out_;
    StopCoalescer coal_;
};

/** Zip groups 2+ same-shape streams into a tuple-typed stream. */
class ZipOp : public OpBase
{
  public:
    ZipOp(Graph& g, const std::string& name, std::vector<StreamPort> ins);

    StreamPort out() const { return out_; }
    dam::SimTask run() override;

    void
    collectPorts(std::vector<PortDecl>& out) const override
    {
        for (const StreamPort& i : ins_)
            out.push_back(PortDecl::input(i));
        out.push_back(PortDecl::output(out_));
    }

  private:
    std::vector<StreamPort> ins_;
    StreamPort out_;
};

/**
 * Filter drops data elements whose mask-stream counterpart is nonzero
 * (used to discard Reshape padding after compute); the innermost
 * dimension becomes ragged.
 */
class FilterOp : public OpBase
{
  public:
    FilterOp(Graph& g, const std::string& name, StreamPort in,
             StreamPort mask);

    StreamPort out() const { return out_; }
    dam::SimTask run() override;
    void rearm(const RearmSpec& spec) override;

    void
    collectPorts(std::vector<PortDecl>& out) const override
    {
        out.push_back(PortDecl::input(in_));
        out.push_back(PortDecl::input(mask_));
        out.push_back(PortDecl::output(out_));
    }

  private:
    StreamPort in_;
    StreamPort mask_;
    StreamPort out_;
    StopCoalescer coal_;
};

} // namespace step
