/**
 * @file
 * On-chip scratchpad memory. Bufferize allocates here and emits buffer
 * references; Streamify reads them back (section 3.2.2). To support
 * dynamically-sized tensors, allocation is virtualized at a fixed page
 * granularity with a mapping table, exactly the mechanism sketched in
 * section 6.2 ("allocating space at a fixed granularity independent of
 * stream length and maintaining mappings between stream references and
 * their memory addresses"); the mapping metadata is accounted so the ~6%
 * overhead claim can be checked.
 */
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/token.hh"

namespace step {

struct ScratchpadConfig
{
    /** Page granularity for virtualized allocation. */
    int64_t pageBytes = 2048;
    /** Bytes of mapping metadata per page (one table entry). */
    int64_t pageMetaBytes = 8;
    /** Optional capacity limit; 0 = unlimited (tracking only). */
    int64_t capacityBytes = 0;
};

/**
 * Contents of one allocated on-chip buffer: the stored sub-stream (data
 * tokens and stop tokens, no Done) plus, when the buffered region is
 * regular, its tile-grid extents for affine Streamify reads.
 */
struct StoredBuffer
{
    std::vector<Token> toks;
    int64_t payloadBytes = 0;
    /** Tile-grid extents, innermost last; empty when ragged/irregular. */
    std::vector<int64_t> gridDims;
    /** Buffer rank as declared by Bufferize. */
    size_t rank = 0;
};

class Scratchpad
{
  public:
    explicit Scratchpad(ScratchpadConfig cfg = {}) : cfg_(cfg) {}

    /** Allocate and register a buffer; returns its reference id. */
    uint64_t alloc(StoredBuffer buf);

    /** Look up a live buffer. */
    const StoredBuffer& get(uint64_t id) const;

    /** Release a buffer (deallocates its pages). */
    void release(uint64_t id);

    /** Live payload bytes right now. */
    int64_t liveBytes() const { return liveBytes_; }
    /** Live bytes rounded to page granularity + metadata. */
    int64_t liveAllocatedBytes() const { return liveAllocated_; }
    int64_t liveMetaBytes() const { return liveMeta_; }

    /** High-water marks over the run (on-chip memory requirement). */
    int64_t peakBytes() const { return peakBytes_; }
    int64_t peakAllocatedBytes() const { return peakAllocated_; }
    int64_t peakMetaBytes() const { return peakMeta_; }

    uint64_t numAllocs() const { return nextId_; }
    size_t numLive() const { return buffers_.size(); }

    /** Drop all buffers and watermarks (graph recycling). */
    void
    reset()
    {
        buffers_.clear();
        allocPages_.clear();
        nextId_ = 0;
        liveBytes_ = 0;
        liveAllocated_ = 0;
        liveMeta_ = 0;
        peakBytes_ = 0;
        peakAllocated_ = 0;
        peakMeta_ = 0;
    }

    const ScratchpadConfig& config() const { return cfg_; }

  private:
    int64_t pagesFor(int64_t bytes) const;

    ScratchpadConfig cfg_;
    std::unordered_map<uint64_t, StoredBuffer> buffers_;
    std::unordered_map<uint64_t, int64_t> allocPages_;
    uint64_t nextId_ = 0;
    int64_t liveBytes_ = 0;
    int64_t liveAllocated_ = 0;
    int64_t liveMeta_ = 0;
    int64_t peakBytes_ = 0;
    int64_t peakAllocated_ = 0;
    int64_t peakMeta_ = 0;
};

} // namespace step
