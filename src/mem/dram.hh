/**
 * @file
 * HBM-style DRAM timing model: multiple channels with address
 * interleaving, banks with open-row policy, and the first-order timing
 * parameters (tRP, tRCD, tCL, burst time). This plays the role of the
 * Ramulator 2.0 node in the paper's simulator: it serializes requests per
 * channel and charges row activate/precharge penalties, which is what the
 * tile-size sweep in the validation study (Figure 8) is sensitive to.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "mem/mem_model.hh"

namespace step {

struct HbmConfig
{
    int numChannels = 8;        ///< pseudo-channels (8-stack HBM2 setup)
    int banksPerChannel = 16;
    int64_t rowBytes = 1024;    ///< row buffer size per bank
    int64_t burstBytes = 32;    ///< bytes transferred per burst
    dam::Cycle tBurst = 2;      ///< cycles per burst (tCCD)
    dam::Cycle tRP = 14;        ///< precharge
    dam::Cycle tRCD = 14;       ///< activate-to-access
    dam::Cycle tCL = 14;        ///< access latency
    int64_t interleaveBytes = 256; ///< channel-interleave granularity

    /** Peak bandwidth in bytes/cycle (all channels streaming bursts). */
    int64_t
    peakBytesPerCycle() const
    {
        return numChannels * burstBytes /
               static_cast<int64_t>(tBurst ? tBurst : 1);
    }
};

class HbmBankModel : public MemModel
{
  public:
    explicit HbmBankModel(HbmConfig cfg = {});

    dam::Cycle access(uint64_t addr, int64_t bytes, dam::Cycle issue,
                      bool is_write) override;

    const HbmConfig& config() const { return cfg_; }

    uint64_t rowHits() const { return rowHits_; }
    uint64_t rowMisses() const { return rowMisses_; }

    void
    reset() override
    {
        resetStats();
        for (auto& t : channelFree_)
            t = 0;
        for (auto& b : banks_)
            b = Bank{};
        rowHits_ = 0;
        rowMisses_ = 0;
    }

  private:
    struct Bank
    {
        int64_t openRow = -1;
        dam::Cycle nextReady = 0;
    };

    HbmConfig cfg_;
    std::vector<dam::Cycle> channelFree_;
    std::vector<Bank> banks_; // [channel * banksPerChannel + bank]
    uint64_t rowHits_ = 0;
    uint64_t rowMisses_ = 0;
};

} // namespace step
