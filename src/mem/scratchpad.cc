#include "mem/scratchpad.hh"

#include "support/error.hh"

namespace step {

int64_t
Scratchpad::pagesFor(int64_t bytes) const
{
    if (bytes <= 0)
        return 1; // even empty buffers hold a mapping entry
    return (bytes + cfg_.pageBytes - 1) / cfg_.pageBytes;
}

uint64_t
Scratchpad::alloc(StoredBuffer buf)
{
    int64_t pages = pagesFor(buf.payloadBytes);
    int64_t alloc_bytes = pages * cfg_.pageBytes;
    int64_t meta_bytes = pages * cfg_.pageMetaBytes;
    if (cfg_.capacityBytes > 0 &&
        liveAllocated_ + alloc_bytes + liveMeta_ + meta_bytes >
            cfg_.capacityBytes) {
        stepFatal("scratchpad capacity exceeded: live="
                  << liveAllocated_ << "B request=" << alloc_bytes
                  << "B cap=" << cfg_.capacityBytes << "B");
    }

    uint64_t id = nextId_++;
    liveBytes_ += buf.payloadBytes;
    liveAllocated_ += alloc_bytes;
    liveMeta_ += meta_bytes;
    peakBytes_ = std::max(peakBytes_, liveBytes_);
    peakAllocated_ = std::max(peakAllocated_, liveAllocated_);
    peakMeta_ = std::max(peakMeta_, liveMeta_);
    allocPages_[id] = pages;
    buffers_.emplace(id, std::move(buf));
    return id;
}

const StoredBuffer&
Scratchpad::get(uint64_t id) const
{
    auto it = buffers_.find(id);
    if (it == buffers_.end())
        stepPanic("dangling buffer reference #" << id);
    return it->second;
}

void
Scratchpad::release(uint64_t id)
{
    auto it = buffers_.find(id);
    if (it == buffers_.end())
        stepPanic("double release of buffer #" << id);
    int64_t pages = allocPages_.at(id);
    liveBytes_ -= it->second.payloadBytes;
    liveAllocated_ -= pages * cfg_.pageBytes;
    liveMeta_ -= pages * cfg_.pageMetaBytes;
    allocPages_.erase(id);
    buffers_.erase(it);
}

} // namespace step
