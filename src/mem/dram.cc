#include "mem/dram.hh"

#include <algorithm>

#include "support/error.hh"

namespace step {

HbmBankModel::HbmBankModel(HbmConfig cfg) : cfg_(cfg)
{
    STEP_ASSERT(cfg_.numChannels > 0 && cfg_.banksPerChannel > 0,
                "bad HBM geometry");
    channelFree_.assign(static_cast<size_t>(cfg_.numChannels), 0);
    banks_.assign(
        static_cast<size_t>(cfg_.numChannels * cfg_.banksPerChannel),
        Bank{});
}

dam::Cycle
HbmBankModel::access(uint64_t addr, int64_t bytes, dam::Cycle issue,
                     bool is_write)
{
    STEP_ASSERT(bytes > 0, "zero-byte DRAM access");
    dam::Cycle complete = issue;
    // Split the access into channel-interleaved bursts. Each burst is
    // serialized on its channel's data bus and pays bank timing.
    for (int64_t off = 0; off < bytes; off += cfg_.burstBytes) {
        uint64_t a = addr + static_cast<uint64_t>(off);
        auto chan = static_cast<size_t>(
            (a / static_cast<uint64_t>(cfg_.interleaveBytes)) %
            static_cast<uint64_t>(cfg_.numChannels));
        uint64_t chan_local =
            a / (static_cast<uint64_t>(cfg_.interleaveBytes) *
                 static_cast<uint64_t>(cfg_.numChannels));
        auto bank_idx = static_cast<size_t>(
            (chan_local / static_cast<uint64_t>(cfg_.rowBytes)) %
            static_cast<uint64_t>(cfg_.banksPerChannel));
        int64_t row = static_cast<int64_t>(
            chan_local / (static_cast<uint64_t>(cfg_.rowBytes) *
                          static_cast<uint64_t>(cfg_.banksPerChannel)));

        Bank& bank = banks_[chan * static_cast<size_t>(
            cfg_.banksPerChannel) + bank_idx];
        dam::Cycle start = std::max(issue, bank.nextReady);

        dam::Cycle ready = start;
        if (bank.openRow != row) {
            // Row miss: precharge (if a row is open) then activate.
            if (bank.openRow >= 0)
                ready += cfg_.tRP;
            ready += cfg_.tRCD;
            bank.openRow = row;
            ++rowMisses_;
        } else {
            ++rowHits_;
        }
        // Column access latency (tCL) pipelines with the data bus; the
        // bus itself is occupied tBurst cycles per burst.
        dam::Cycle data_start = std::max(ready + cfg_.tCL,
                                         channelFree_[chan]);
        dam::Cycle data_end = data_start + cfg_.tBurst;
        channelFree_[chan] = data_end;
        bank.nextReady = ready + cfg_.tBurst;
        complete = std::max(complete, data_end);
    }
    stats_.record(bytes, is_write, issue, complete);
    return complete;
}

} // namespace step
