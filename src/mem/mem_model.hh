/**
 * @file
 * Off-chip memory timing models. The STeP simulator integrates off-chip
 * access delays through a pluggable model (the paper uses Ramulator 2.0;
 * section 4.4 notes the node can be reconfigured or replaced). Two
 * implementations:
 *
 *  - SimpleBwModel: aggregate bandwidth + fixed latency, matching the
 *    evaluation configuration (1024 bytes/cycle, section 5.1).
 *  - HbmBankModel (mem/dram.hh): channel/bank/row timing for the
 *    validation study.
 */
#pragma once

#include <cstdint>
#include <memory>

#include "dam/task.hh"

namespace step {

/** Aggregated traffic/timing statistics for one memory device. */
struct MemStats
{
    int64_t bytesRead = 0;
    int64_t bytesWritten = 0;
    uint64_t reads = 0;
    uint64_t writes = 0;
    dam::Cycle firstIssue = ~dam::Cycle{0};
    dam::Cycle lastComplete = 0;

    int64_t totalBytes() const { return bytesRead + bytesWritten; }

    void
    record(int64_t bytes, bool is_write, dam::Cycle issue,
           dam::Cycle complete)
    {
        if (is_write) {
            bytesWritten += bytes;
            ++writes;
        } else {
            bytesRead += bytes;
            ++reads;
        }
        if (issue < firstIssue)
            firstIssue = issue;
        if (complete > lastComplete)
            lastComplete = complete;
    }
};

class MemModel
{
  public:
    virtual ~MemModel() = default;

    /**
     * Model one access. Returns the completion cycle. Implementations
     * serialize accesses on internal resources (channels/banks), so the
     * returned time reflects contention between operators.
     */
    virtual dam::Cycle access(uint64_t addr, int64_t bytes,
                              dam::Cycle issue, bool is_write) = 0;

    const MemStats& stats() const { return stats_; }
    void resetStats() { stats_ = MemStats{}; }

    /**
     * Return the model to its initial state (stats and timing
     * resources) so a recycled graph starts from a cold device.
     */
    virtual void reset() { resetStats(); }

  protected:
    MemStats stats_;
};

/**
 * Bandwidth/latency queueing model: one shared port of `bw` bytes/cycle
 * and a pipelined access latency.
 */
class SimpleBwModel : public MemModel
{
  public:
    SimpleBwModel(int64_t bytes_per_cycle, dam::Cycle latency)
        : bw_(bytes_per_cycle), latency_(latency)
    {}

    dam::Cycle
    access(uint64_t addr, int64_t bytes, dam::Cycle issue,
           bool is_write) override
    {
        (void)addr;
        // Byte-granular port accounting (in units of bytes-time =
        // cycles * bw) so sub-cycle accesses don't serialize to one
        // access per cycle.
        uint64_t issue_units = issue * static_cast<uint64_t>(bw_);
        uint64_t start_units = std::max(busyUnits_, issue_units);
        busyUnits_ = start_units + static_cast<uint64_t>(bytes);
        dam::Cycle complete = static_cast<dam::Cycle>(
            (busyUnits_ + static_cast<uint64_t>(bw_) - 1) /
            static_cast<uint64_t>(bw_)) + latency_;
        stats_.record(bytes, is_write, issue, complete);
        return complete;
    }

    int64_t bandwidth() const { return bw_; }

    void
    reset() override
    {
        resetStats();
        busyUnits_ = 0;
    }

    /** reset() plus new parameters, in place (graph recycling). */
    void
    reinit(int64_t bytes_per_cycle, dam::Cycle latency)
    {
        bw_ = bytes_per_cycle;
        latency_ = latency;
        reset();
    }

  private:
    int64_t bw_;
    dam::Cycle latency_;
    uint64_t busyUnits_ = 0; // port-busy horizon in byte-time
};

} // namespace step
