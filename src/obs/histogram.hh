/**
 * @file
 * Deterministic HDR-style log-bucketed histogram over integer cycle /
 * token values. The bucket layout is fixed by the value alone (no
 * dynamic rebalancing, no floating-point bucket math), so two
 * histograms fed the same multiset of values are bit-identical
 * regardless of insertion order, thread count, or merge grouping —
 * the same contract TraceSink gives event streams.
 *
 * Layout: values in [0, 64) get one exact bucket each; above that,
 * each power-of-two range [2^k, 2^(k+1)) is split into 32 equal
 * sub-buckets. Bucket width / bucket lower bound is therefore at most
 * 1/32, and the midpoint representative returned by percentile() is
 * within ~1.6% relative error of any value in the bucket (exact below
 * 64). Memory is a dense count vector grown on demand: full uint64
 * range needs (64-6+1)*32 + 64 ≈ 1.9k buckets, ~15 KB worst case.
 *
 * merge() adds per-bucket counts, so it is associative and
 * commutative; the cluster still merges in replica-index order for
 * uniformity with the trace layer.
 */
#pragma once

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

namespace step::obs {

class LogHistogram
{
  public:
    /// log2 of the number of exact low buckets (and of 2x the
    /// sub-bucket count per power-of-two range).
    static constexpr int kSubBucketBits = 6;
    static constexpr uint64_t kSubBuckets = uint64_t{1} << kSubBucketBits;
    static constexpr uint64_t kHalfSub = kSubBuckets / 2;

    /** Bucket index for a value (pure function of the value). */
    static size_t
    bucketIndex(uint64_t v)
    {
        if (v < kSubBuckets)
            return size_t(v);
        const int exp = std::bit_width(v) - kSubBucketBits;
        const uint64_t sub = v >> exp; // in [kHalfSub, kSubBuckets)
        return size_t(kSubBuckets + uint64_t(exp - 1) * kHalfSub +
                      (sub - kHalfSub));
    }

    /** Smallest value mapping to bucket @p idx. */
    static uint64_t
    bucketLower(size_t idx)
    {
        if (idx < kSubBuckets)
            return uint64_t(idx);
        const uint64_t off = uint64_t(idx) - kSubBuckets;
        const int exp = int(off / kHalfSub) + 1;
        const uint64_t sub = kHalfSub + off % kHalfSub;
        return sub << exp;
    }

    /** One past the largest value mapping to bucket @p idx. */
    static uint64_t
    bucketUpper(size_t idx)
    {
        if (idx < kSubBuckets)
            return uint64_t(idx) + 1;
        const uint64_t off = uint64_t(idx) - kSubBuckets;
        const int exp = int(off / kHalfSub) + 1;
        const uint64_t sub = kHalfSub + off % kHalfSub;
        return (sub + 1) << exp;
    }

    /** Deterministic representative for a bucket: the exact value below
     *  kSubBuckets, the (integer) midpoint above. */
    static uint64_t
    bucketRepresentative(size_t idx)
    {
        if (idx < kSubBuckets)
            return uint64_t(idx);
        const uint64_t lo = bucketLower(idx);
        return lo + (bucketUpper(idx) - lo) / 2;
    }

    void
    record(uint64_t v, uint64_t n = 1)
    {
        if (n == 0)
            return;
        const size_t idx = bucketIndex(v);
        if (idx >= counts_.size())
            counts_.resize(idx + 1, 0);
        counts_[idx] += n;
        count_ += n;
        sum_ += v * n;
        min_ = count_ == n ? v : std::min(min_, v);
        max_ = count_ == n ? v : std::max(max_, v);
    }

    /** Elementwise count add; exact min/max/sum fold in too. */
    void
    merge(const LogHistogram& o)
    {
        if (o.count_ == 0)
            return;
        if (o.counts_.size() > counts_.size())
            counts_.resize(o.counts_.size(), 0);
        for (size_t i = 0; i < o.counts_.size(); ++i)
            counts_[i] += o.counts_[i];
        min_ = count_ == 0 ? o.min_ : std::min(min_, o.min_);
        max_ = count_ == 0 ? o.max_ : std::max(max_, o.max_);
        count_ += o.count_;
        sum_ += o.sum_;
    }

    uint64_t count() const { return count_; }
    uint64_t sum() const { return sum_; }
    /** Exact extrema of recorded values; 0 when empty. */
    uint64_t min() const { return count_ ? min_ : 0; }
    uint64_t max() const { return count_ ? max_ : 0; }
    bool empty() const { return count_ == 0; }

    /**
     * Nearest-rank percentile (same rank rule as stats::percentileSorted:
     * rank = ceil(p/100 * count)), answered from the bucket counts. The
     * result is the containing bucket's representative clamped into
     * [min, max], so single-sample and extreme quantiles are exact.
     * Returns 0 on an empty histogram.
     */
    uint64_t
    percentile(double p) const
    {
        if (count_ == 0)
            return 0;
        if (p <= 0.0)
            return min_;
        uint64_t rank = uint64_t(std::ceil(p / 100.0 * double(count_)));
        rank = std::min(std::max<uint64_t>(rank, 1), count_);
        uint64_t seen = 0;
        for (size_t i = 0; i < counts_.size(); ++i) {
            seen += counts_[i];
            if (seen >= rank)
                return std::clamp(bucketRepresentative(i), min_, max_);
        }
        return max_; // unreachable when counts are consistent
    }

    /** Dense bucket counts (trailing buckets may be absent). */
    const std::vector<uint64_t>& buckets() const { return counts_; }

  private:
    std::vector<uint64_t> counts_;
    uint64_t count_ = 0;
    uint64_t sum_ = 0;
    uint64_t min_ = 0;
    uint64_t max_ = 0;
};

} // namespace step::obs
