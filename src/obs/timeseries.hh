/**
 * @file
 * Fixed-window time-series aggregates for the metrics tier. A
 * TimeSeries buckets samples by `at / windowCycles` and keeps, per
 * window, {count, sum, min, max} — and, for histogram-backed
 * instruments, a per-window LogHistogram delta so windowed
 * percentiles (p95 TTFT per window, the SLO monitor's and the
 * telemetry health monitor's main signal) come from the same bounded-
 * relative-error buckets as the run-level histogram.
 *
 * Windows are dense slots grown on demand; empty windows cost one
 * WindowAgg each and are skipped by forEachWindow / the exporters.
 * Samples may arrive in any `at` order (request-finish events are not
 * monotone across the batch), and the aggregate of a window is a pure
 * function of the multiset of samples that landed in it — so merge()
 * (windowwise count/sum add, min/max fold, histogram merge) is
 * associative and order-insensitive, and the cluster's replica-index-
 * order merge is bit-stable across worker-thread counts.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "dam/task.hh"
#include "obs/histogram.hh"

namespace step::obs {

/** One window's plain aggregates. A default-constructed WindowAgg is
 *  the empty window (count 0); min/max are only meaningful when
 *  count > 0. */
struct WindowAgg
{
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t min = 0;
    uint64_t max = 0;
};

class TimeSeries
{
  public:
    explicit TimeSeries(dam::Cycle window_cycles, bool with_histograms);

    void record(dam::Cycle at, uint64_t value);

    /** Windowwise merge; window widths must match. */
    void merge(const TimeSeries& o);

    dam::Cycle windowCycles() const { return window_; }
    bool withHistograms() const { return withHists_; }

    /** Number of dense window slots (== highest touched window + 1). */
    size_t windowSlots() const { return windows_.size(); }

    /** Aggregates for window @p w (empty agg past the touched range). */
    const WindowAgg& window(size_t w) const;

    /** Per-window histogram delta, or nullptr when the instrument does
     *  not keep histograms or the window is empty. */
    const LogHistogram* windowHistogram(size_t w) const;

    /** Whole-run aggregates across all windows. */
    const WindowAgg& total() const { return total_; }

    /** Visit non-empty windows in increasing window order. */
    void forEachWindow(
        const std::function<void(size_t w, const WindowAgg&)>& fn) const;

  private:
    dam::Cycle window_ = 1;
    bool withHists_ = false;
    std::vector<WindowAgg> windows_;
    std::vector<std::unique_ptr<LogHistogram>> hists_;
    WindowAgg total_;
};

} // namespace step::obs
