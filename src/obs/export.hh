/**
 * @file
 * Trace exporters: Chrome trace-event JSON (loadable in Perfetto or
 * chrome://tracing) and a per-request lifecycle JSONL, both produced
 * from one or more TraceSinks — one sink per replica, exported in
 * replica-index order, so output bytes are bit-identical for a seeded
 * run regardless of worker-thread count. All values are integers
 * (simulated cycles, token counts), so no float-formatting ambiguity
 * can creep into the byte stream.
 *
 * Also provides the `--trace <path> --trace-level {off,request,op,full}`
 * CLI convention shared by the example sims, and the switch-attribution
 * table printer (the fusion-planning histogram).
 */
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/sink.hh"

namespace step::obs {

/**
 * Write a Chrome trace-event JSON document. Sink i becomes pid i
 * (Perfetto renders it as one process track group) labeled
 * "<processLabel> i"; sub-tracks follow the kTid* layout. Returns
 * false on stream failure.
 */
bool writeChromeTrace(std::ostream& os,
                      const std::vector<const TraceSink*>& sinks,
                      const std::string& process_label = "replica");

bool writeChromeTraceFile(const std::string& path,
                          const std::vector<const TraceSink*>& sinks,
                          const std::string& process_label = "replica");

/**
 * Write one JSON object per request per line: identity, lengths,
 * cache-hit annotation, and the lifecycle stamps (arrival / admitted /
 * first token / finished, -1 when the phase was never reached). The
 * "replica" field is the owning sink's index.
 */
bool writeRequestJsonl(std::ostream& os,
                       const std::vector<const TraceSink*>& sinks);

bool writeRequestJsonlFile(const std::string& path,
                           const std::vector<const TraceSink*>& sinks);

/**
 * Merge the sinks' switch-attribution histograms by op name and print
 * the top @p top_n rows (resumes, share, cumulative share). This is the
 * work-list for trivial-op fusion: names that dominate the table are
 * the chains to fuse first.
 */
void printSwitchAttribution(std::ostream& os,
                            const std::vector<const TraceSink*>& sinks,
                            size_t top_n = 16);

/** Derive the lifecycle JSONL path from a trace path:
 *  "out.json" -> "out.requests.jsonl". */
std::string requestJsonlPath(const std::string& trace_path);

/** Parsed `--trace` / `--trace-level` flags. */
struct TraceCli
{
    std::string path;  ///< empty = tracing not requested
    TraceLevel level = TraceLevel::Request;
    bool error = false;
    std::string errorMsg;

    /** Tracing requested: a path was given, the level is not `off`,
     *  and parsing succeeded. */
    bool
    enabled() const
    {
        return !path.empty() && level != TraceLevel::Off && !error;
    }

    TraceOptions
    options() const
    {
        TraceOptions o;
        o.level = level;
        return o;
    }
};

/**
 * Scan argv for `--trace <path>` (or `--trace=<path>`) and
 * `--trace-level <off|request|op|full>`. Unrelated flags are ignored —
 * the sims parse their own. A level without a path is an error (there
 * would be nowhere to write), as is an unknown level.
 */
TraceCli parseTraceCli(int argc, char** argv);

} // namespace step::obs
