/**
 * @file
 * CounterRegistry: named telemetry counters sampled into the trace
 * event stream. Components register a counter once (monotonic for
 * ever-increasing totals like generated tokens, gauge for levels like
 * queue depth), update it by handle — an index, so the hot path is one
 * vector store — and the owning TraceSink samples every registered
 * counter into Counter events each serving iteration. ServingSummary
 * snapshots the final values so cluster merges can aggregate them
 * (monotonic counters add across replicas, gauges take the max).
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace step::obs {

/** Final value of one counter, as snapshotted into ServingSummary. */
struct CounterSample
{
    std::string name;
    int64_t value = 0;
    bool monotonic = false;
};

class CounterRegistry
{
  public:
    enum class Kind : uint8_t { Monotonic, Gauge };

    using Handle = size_t;

    /** Register (or re-find) a counter; idempotent per name. */
    Handle
    monotonic(std::string name)
    {
        return ensure(std::move(name), Kind::Monotonic);
    }
    Handle
    gauge(std::string name)
    {
        return ensure(std::move(name), Kind::Gauge);
    }

    void
    set(Handle h, int64_t v)
    {
        entries_[h].value = v;
    }
    void
    add(Handle h, int64_t dv)
    {
        entries_[h].value += dv;
    }
    int64_t value(Handle h) const { return entries_[h].value; }

    size_t size() const { return entries_.size(); }
    const std::string& name(Handle h) const { return entries_[h].name; }
    Kind kind(Handle h) const { return entries_[h].kind; }

    /**
     * True when the counter's value differs from its last-emitted
     * sample (or was never emitted); marks it emitted. The sink uses
     * this to sample only transitions, which keeps counter tracks small
     * without losing any level change.
     */
    bool
    consumeChanged(Handle h)
    {
        Entry& e = entries_[h];
        if (e.everEmitted && e.lastEmitted == e.value)
            return false;
        e.everEmitted = true;
        e.lastEmitted = e.value;
        return true;
    }

    /** Final values, registration order (deterministic). */
    std::vector<CounterSample>
    snapshot() const
    {
        std::vector<CounterSample> out;
        out.reserve(entries_.size());
        for (const Entry& e : entries_)
            out.push_back({e.name, e.value, e.kind == Kind::Monotonic});
        return out;
    }

  private:
    struct Entry
    {
        std::string name;
        int64_t value = 0;
        int64_t lastEmitted = 0;
        bool everEmitted = false;
        Kind kind = Kind::Gauge;
    };

    Handle
    ensure(std::string name, Kind kind)
    {
        for (size_t i = 0; i < entries_.size(); ++i)
            if (entries_[i].name == name)
                return i;
        entries_.push_back(Entry{std::move(name), 0, 0, false, kind});
        return entries_.size() - 1;
    }

    std::vector<Entry> entries_;
};

} // namespace step::obs
