/**
 * @file
 * TraceSink: the per-replica event recorder behind every tracing hook.
 * One sink is written by exactly one simulation thread (a ServingEngine
 * and its dam::Scheduler), so recording needs no synchronization; a
 * cluster creates one sink per replica before workers spawn and the
 * exporter merges them in replica-index order — which makes the merged
 * trace bit-identical whatever the worker-thread count.
 *
 * Storage is a bounded ring of fixed-size, string-free events (names
 * are interned ids); per-request lifecycle records and the counter
 * registry live outside the ring so they survive even when a long run
 * wraps it. Per-track B/E/i/C timestamps are clamped monotone at append
 * time (deterministically), so exported tracks always satisfy the
 * trace-validator contract.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/counters.hh"
#include "obs/trace.hh"

namespace step::dam {
class Channel;
}

namespace step::obs {

/** Lifecycle of one served request, assembled from engine hooks. */
struct RequestLifecycle
{
    int64_t id = 0;
    int64_t sessionId = -1;
    int64_t turn = 0;
    int64_t promptLen = 0;
    int64_t outputLen = 0;
    /** Prompt tokens served from the prefix cache at admission. */
    int64_t cachedPrefixTokens = 0;
    /** Submission attempt (0 = original, >0 = cluster retry). */
    int64_t attempt = 0;
    dam::Cycle arrival = 0;
    dam::Cycle admittedAt = 0;
    dam::Cycle firstTokenAt = 0;
    dam::Cycle finishedAt = 0;
    dam::Cycle failedAt = 0;
    dam::Cycle shedAt = 0;
    dam::Cycle migratedAt = 0;
    bool admitted = false;
    bool sawFirstToken = false;
    bool finished = false;
    bool failed = false;   ///< replica crashed under it
    bool shed = false;     ///< dropped by the admission policy
    bool migrated = false; ///< drained to another replica mid-flight
};

/** One row of the switch-attribution histogram (sorted for export). */
struct SwitchAttribution
{
    std::string_view name; ///< op (context) name, owned by the sink
    uint64_t switches = 0;
};

class TraceSink
{
  public:
    explicit TraceSink(TraceOptions opts = {});

    TraceLevel level() const { return opts_.level; }
    const TraceOptions& options() const { return opts_; }

    // ---- name interning ---------------------------------------------
    uint32_t intern(std::string_view s);
    const std::string& name(uint32_t id) const { return *names_[id]; }
    size_t nameCount() const { return names_.size(); }

    // ---- simulated-time base ----------------------------------------
    /**
     * Graph runs stamp events in graph-local cycles; the engine sets
     * the base to its global clock before each iteration's graph run so
     * scheduler events land on the serving timeline.
     */
    void setTimeBase(dam::Cycle base) { base_ = base; }
    dam::Cycle timeBase() const { return base_; }

    // ---- scheduler hooks (graph-local cycles; base applied) ----------
    /**
     * A context is about to be resumed at scheduler virtual time @p at
     * (its ready-heap key — never earlier than any previously issued
     * resume, which keeps the sched track monotone by construction).
     */
    void schedResume(const void* ctx, const std::string& ctx_name,
                     dam::Cycle at);
    /** The resumed context suspended (blocked or yielded) at @p at. */
    void schedSuspend(const void* ctx, dam::Cycle at, uint8_t block_kind,
                      const dam::Channel* ch);
    /** The resumed context ran to completion at @p at. */
    void schedFinish(const void* ctx, const std::string& ctx_name,
                     dam::Cycle at);

    // ---- request lifecycle hooks (engine-global cycles) --------------
    /**
     * @p attempt > 0 marks a cluster retry incarnation: a "req.retry"
     * instant is emitted alongside the arrival. Lifecycle records are
     * keyed by (id, attempt) — the fault tier's failover waves can
     * leave a superseded incarnation and its successor concurrently
     * simulated on one replica, and each hooks into its own record —
     * so every later hook passes the incarnation's attempt too. The
     * JSONL reports one line per incarnation, so a failed first
     * attempt stays visible.
     */
    void reqArrived(int64_t id, int64_t session, int64_t turn,
                    int64_t prompt_len, int64_t output_len, dam::Cycle at,
                    int64_t attempt = 0);
    void reqAdmitted(int64_t id, int64_t attempt,
                     int64_t cached_prefix_tokens, dam::Cycle at);
    void reqFirstToken(int64_t id, int64_t attempt, dam::Cycle at);
    void reqFinished(int64_t id, int64_t attempt, dam::Cycle at);
    /** The request's replica crashed under it at @p at. */
    void reqFailed(int64_t id, int64_t attempt, dam::Cycle at);
    /** The admission policy dropped the request at @p at. */
    void reqShed(int64_t id, int64_t attempt, dam::Cycle at);
    /** The resilience tier drained the request off this replica at
     *  @p at, handing off @p kv_tokens of computed KV. */
    void reqMigrated(int64_t id, int64_t attempt, dam::Cycle at,
                     int64_t kv_tokens);
    /** Admission capped the request's output budget to @p cap tokens
     *  (brown-out middle rung). */
    void reqCapped(int64_t id, dam::Cycle at, int64_t cap);

    /**
     * Generic named instant on the lifecycle track — cluster-scope
     * decisions (breaker flips, autoscale steps) the engine emits on
     * the coordinator's behalf. Unknown names pass the trace validator
     * untouched (it ignores instants it has no rules for).
     */
    void instant(std::string_view name, dam::Cycle at, int64_t arg0 = -1,
                 int64_t arg1 = 0);

    // ---- fault hooks (engine-global cycles) --------------------------
    /** Replica crash processed at @p at (scripted cycle @p fail_at;
     *  @p recover_at 0 = permanent). */
    void faultDown(dam::Cycle at, dam::Cycle fail_at, dam::Cycle recover_at);
    /** Replica back up at @p at. */
    void faultUp(dam::Cycle at);

    // ---- counters ----------------------------------------------------
    CounterRegistry& counters() { return counters_; }
    const CounterRegistry& counters() const { return counters_; }
    /** Emit a Counter event for every counter whose value changed. */
    void sampleCounters(dam::Cycle at);

    // ---- export access ----------------------------------------------
    /** Visit the events surviving in the ring, oldest first. */
    template <typename F>
    void
    forEachEvent(F&& f) const
    {
        for (size_t i = 0; i < ring_.size(); ++i)
            f(ring_[(head_ + i) % ring_.size()]);
    }
    size_t eventCount() const { return ring_.size(); }
    uint64_t droppedEvents() const { return dropped_; }

    const std::vector<RequestLifecycle>& requests() const
    {
        return requests_;
    }

    /**
     * Context-switch attribution: resumes per op name, accumulated at
     * level >= Op, sorted by (count desc, name asc) — the work-list for
     * trivial-op fusion. Views point into the sink's name table.
     */
    std::vector<SwitchAttribution> switchAttribution() const;
    uint64_t attributedSwitches() const { return attributedSwitches_; }

  private:
    void append(const TraceEvent& e);

    struct OpOpen
    {
        uint32_t name = 0;
        dam::Cycle firstResume = 0;
    };

    TraceOptions opts_;
    dam::Cycle base_ = 0;

    /**
     * Interned names. The map owns the strings (node-based, so key
     * addresses are stable); names_ indexes them by id for O(1) lookup
     * and exported string_views point at the map keys.
     */
    struct SvHash
    {
        using is_transparent = void;
        size_t
        operator()(std::string_view s) const
        {
            return std::hash<std::string_view>{}(s);
        }
    };
    std::unordered_map<std::string, uint32_t, SvHash, std::equal_to<>>
        nameIds_;
    std::vector<const std::string*> names_;

    std::vector<TraceEvent> ring_;
    size_t head_ = 0; ///< oldest element once the ring wrapped
    uint64_t dropped_ = 0;
    /** Per-tid monotone clamp cursor for B/E/i/C appends. */
    dam::Cycle lastTs_[3] = {0, 0, 0};

    std::vector<RequestLifecycle> requests_;
    /** (id, attempt) -> requests_ slot. Ids are dense trace indices
     *  and attempts are bounded by the retry/migration caps, so a
     *  shifted pack cannot collide. */
    static uint64_t
    lifeKey(int64_t id, int64_t attempt)
    {
        return (static_cast<uint64_t>(id) << 20) ^
               static_cast<uint64_t>(attempt);
    }
    std::unordered_map<uint64_t, size_t> reqIndex_;

    CounterRegistry counters_;
    std::vector<uint32_t> counterNameIds_; ///< lazily interned

    /** Op-name switch counts, first-seen order for determinism. */
    std::vector<std::pair<uint32_t, uint64_t>> switchCounts_;
    std::unordered_map<uint32_t, size_t> switchIndex_;
    uint64_t attributedSwitches_ = 0;

    std::unordered_map<const void*, OpOpen> activeOps_;

    // Pre-interned hook names (stable ids, interned in ctor).
    uint32_t nameArrive_, nameAdmit_, nameFirstToken_, nameFinish_;
    uint32_t nameRetry_, nameFailed_, nameShed_, nameFaultDown_,
        nameFaultUp_;
    uint32_t nameMigrated_, nameCapped_;
};

} // namespace step::obs
