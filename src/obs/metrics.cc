#include "obs/metrics.hh"

#include <cstdlib>
#include <fstream>
#include <ostream>

#include "obs/json.hh"
#include "support/error.hh"

namespace step::obs {

MetricsRegistry::MetricsRegistry(MetricsConfig cfg) : cfg_(cfg) {}

MetricsRegistry::Handle
MetricsRegistry::ensure(std::string_view name, bool is_histogram)
{
    for (size_t i = 0; i < instruments_.size(); ++i) {
        if (instruments_[i].name == name) {
            if (instruments_[i].isHistogram != is_histogram)
                throw step::FatalError(
                    "metrics instrument '" + std::string(name) +
                    "' re-registered with a different kind");
            return i;
        }
    }
    instruments_.emplace_back(std::string(name), is_histogram,
                              cfg_.windowCycles);
    return instruments_.size() - 1;
}

MetricsRegistry::Handle
MetricsRegistry::histogram(std::string_view name)
{
    return ensure(name, /*is_histogram=*/true);
}

MetricsRegistry::Handle
MetricsRegistry::series(std::string_view name)
{
    return ensure(name, /*is_histogram=*/false);
}

void
MetricsRegistry::record(Handle h, dam::Cycle at, uint64_t value)
{
    Instrument& ins = instruments_[h];
    if (ins.isHistogram)
        ins.total.record(value);
    ins.series.record(at, value);
}

const MetricsRegistry::Instrument*
MetricsRegistry::find(std::string_view name) const
{
    for (const Instrument& ins : instruments_)
        if (ins.name == name)
            return &ins;
    return nullptr;
}

void
MetricsRegistry::mergeFrom(const MetricsRegistry& o)
{
    for (size_t i = 0; i < o.instruments_.size(); ++i) {
        const Instrument& src = o.instruments_[i];
        const Handle h = ensure(src.name, src.isHistogram);
        instruments_[h].total.merge(src.total);
        instruments_[h].series.merge(src.series);
    }
}

namespace {

void
appendWindowAgg(std::string& buf, const WindowAgg& agg)
{
    buf += "\"count\":";
    buf += std::to_string(agg.count);
    buf += ",\"sum\":";
    buf += std::to_string(agg.sum);
    buf += ",\"min\":";
    buf += std::to_string(agg.min);
    buf += ",\"max\":";
    buf += std::to_string(agg.max);
}

void
appendPercentiles(std::string& buf, const LogHistogram& h)
{
    buf += ",\"p50\":";
    buf += std::to_string(h.percentile(50.0));
    buf += ",\"p95\":";
    buf += std::to_string(h.percentile(95.0));
    buf += ",\"p99\":";
    buf += std::to_string(h.percentile(99.0));
}

void
appendInstrumentJson(std::string& buf, const MetricsRegistry::Instrument& ins,
                     dam::Cycle window_cycles)
{
    buf += "{\"name\":\"";
    appendJsonEscaped(buf, ins.name);
    buf += "\",\"type\":\"";
    buf += ins.isHistogram ? "histogram" : "series";
    buf += "\",";
    appendWindowAgg(buf, ins.series.total());
    if (ins.isHistogram) {
        appendPercentiles(buf, ins.total);
        buf += ",\"buckets\":[";
        bool first = true;
        const std::vector<uint64_t>& counts = ins.total.buckets();
        for (size_t i = 0; i < counts.size(); ++i) {
            if (counts[i] == 0)
                continue;
            if (!first)
                buf += ',';
            first = false;
            buf += '[';
            buf += std::to_string(LogHistogram::bucketLower(i));
            buf += ',';
            buf += std::to_string(counts[i]);
            buf += ']';
        }
        buf += ']';
    }
    buf += ",\"windows\":[";
    bool first = true;
    ins.series.forEachWindow([&](size_t w, const WindowAgg& agg) {
        if (!first)
            buf += ',';
        first = false;
        buf += "{\"window\":";
        buf += std::to_string(w);
        buf += ",\"start\":";
        buf += std::to_string(uint64_t(w) * window_cycles);
        buf += ',';
        appendWindowAgg(buf, agg);
        if (const LogHistogram* wh = ins.series.windowHistogram(w))
            appendPercentiles(buf, *wh);
        buf += '}';
    });
    buf += "]}";
}

void
appendRegistryJson(std::string& buf, const MetricsRegistry& reg)
{
    buf += "\"instruments\":[";
    for (size_t i = 0; i < reg.size(); ++i) {
        if (i)
            buf += ',';
        appendInstrumentJson(buf, reg.at(i), reg.config().windowCycles);
    }
    buf += ']';
}

/** Fold all replica registries in index order (the deterministic
 *  cluster-merge convention). */
MetricsRegistry
foldReplicas(const std::vector<const MetricsRegistry*>& replicas)
{
    MetricsConfig cfg;
    if (!replicas.empty())
        cfg = replicas.front()->config();
    MetricsRegistry merged(cfg);
    for (const MetricsRegistry* r : replicas)
        merged.mergeFrom(*r);
    return merged;
}

} // namespace

bool
writeMetricsJson(std::ostream& os,
                 const std::vector<const MetricsRegistry*>& replicas,
                 const MetricsRegistry* merged)
{
    MetricsRegistry fold{MetricsConfig{}};
    if (merged == nullptr) {
        fold = foldReplicas(replicas);
        merged = &fold;
    }
    std::string buf;
    buf.reserve(1 << 16);
    buf += "{\n  \"schema_version\": 2,\n  \"kind\": \"step-metrics\",\n";
    buf += "  \"window_cycles\": ";
    buf += std::to_string(merged->config().windowCycles);
    buf += ",\n  \"replicas\": [\n";
    for (size_t r = 0; r < replicas.size(); ++r) {
        buf += "    {\"replica\":";
        buf += std::to_string(r);
        buf += ',';
        appendRegistryJson(buf, *replicas[r]);
        buf += r + 1 < replicas.size() ? "},\n" : "}\n";
    }
    buf += "  ],\n  \"merged\": {";
    appendRegistryJson(buf, *merged);
    buf += "}\n}\n";
    os << buf;
    return os.good();
}

bool
writeMetricsJsonFile(const std::string& path,
                     const std::vector<const MetricsRegistry*>& replicas,
                     const MetricsRegistry* merged)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        return false;
    return writeMetricsJson(os, replicas, merged);
}

namespace {

void
appendWindowJsonl(std::string& buf, int64_t replica,
                  const MetricsRegistry::Instrument& ins,
                  dam::Cycle window_cycles)
{
    ins.series.forEachWindow([&](size_t w, const WindowAgg& agg) {
        buf += "{\"replica\":";
        buf += std::to_string(replica);
        buf += ",\"instrument\":\"";
        appendJsonEscaped(buf, ins.name);
        buf += "\",\"window\":";
        buf += std::to_string(w);
        buf += ",\"start\":";
        buf += std::to_string(uint64_t(w) * window_cycles);
        buf += ',';
        appendWindowAgg(buf, agg);
        if (const LogHistogram* wh = ins.series.windowHistogram(w))
            appendPercentiles(buf, *wh);
        buf += "}\n";
    });
}

} // namespace

bool
writeMetricsWindowsJsonl(std::ostream& os,
                         const std::vector<const MetricsRegistry*>& replicas,
                         const MetricsRegistry* merged)
{
    MetricsRegistry fold{MetricsConfig{}};
    if (merged == nullptr) {
        fold = foldReplicas(replicas);
        merged = &fold;
    }
    std::string buf;
    buf.reserve(1 << 16);
    for (size_t r = 0; r < replicas.size(); ++r)
        for (size_t i = 0; i < replicas[r]->size(); ++i)
            appendWindowJsonl(buf, int64_t(r), replicas[r]->at(i),
                              replicas[r]->config().windowCycles);
    for (size_t i = 0; i < merged->size(); ++i)
        appendWindowJsonl(buf, -1, merged->at(i),
                          merged->config().windowCycles);
    os << buf;
    return os.good();
}

bool
writeMetricsWindowsJsonlFile(
    const std::string& path,
    const std::vector<const MetricsRegistry*>& replicas,
    const MetricsRegistry* merged)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        return false;
    return writeMetricsWindowsJsonl(os, replicas, merged);
}

std::string
metricsJsonlPath(const std::string& metrics_path)
{
    std::string stem = metrics_path;
    const std::string suffix = ".json";
    if (stem.size() > suffix.size() &&
        stem.compare(stem.size() - suffix.size(), suffix.size(), suffix) ==
            0)
        stem.resize(stem.size() - suffix.size());
    return stem + ".windows.jsonl";
}

MetricsCli
parseMetricsCli(int argc, char** argv)
{
    MetricsCli cli;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--metrics") {
            if (i + 1 >= argc) {
                cli.error = true;
                cli.errorMsg = "--metrics requires a path";
                return cli;
            }
            cli.path = argv[++i];
        } else if (a.rfind("--metrics=", 0) == 0) {
            cli.path = a.substr(10);
        } else if (a == "--metrics-window" ||
                   a.rfind("--metrics-window=", 0) == 0) {
            std::string v;
            if (a == "--metrics-window") {
                if (i + 1 >= argc) {
                    cli.error = true;
                    cli.errorMsg = "--metrics-window requires a value";
                    return cli;
                }
                v = argv[++i];
            } else {
                v = a.substr(17);
            }
            const long long parsed = std::atoll(v.c_str());
            if (parsed <= 0) {
                cli.error = true;
                cli.errorMsg = "--metrics-window must be a positive "
                               "cycle count, got '" +
                               v + "'";
                return cli;
            }
            cli.windowCycles = dam::Cycle(parsed);
        }
    }
    if (cli.path.empty() && cli.windowCycles > 0) {
        cli.error = true;
        cli.errorMsg = "--metrics-window given without --metrics <path>";
    }
    return cli;
}

} // namespace step::obs
