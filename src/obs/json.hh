/**
 * @file
 * Minimal JSON string escaping shared by the trace exporters and the
 * bench JSON artifact writer. Escapes the characters JSON requires
 * (quote, backslash, control characters); everything else passes
 * through byte-for-byte, which keeps output deterministic.
 */
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

namespace step::obs {

inline void
appendJsonEscaped(std::string& out, std::string_view s)
{
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
}

inline std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    appendJsonEscaped(out, s);
    return out;
}

} // namespace step::obs
