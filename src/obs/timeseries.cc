#include "obs/timeseries.hh"

#include <algorithm>

#include "support/error.hh"

namespace step::obs {

TimeSeries::TimeSeries(dam::Cycle window_cycles, bool with_histograms)
    : window_(window_cycles), withHists_(with_histograms)
{
    if (window_ == 0)
        throw step::FatalError("TimeSeries window width must be non-zero");
}

void
TimeSeries::record(dam::Cycle at, uint64_t value)
{
    const size_t w = size_t(at / window_);
    if (w >= windows_.size()) {
        windows_.resize(w + 1);
        if (withHists_)
            hists_.resize(w + 1);
    }
    WindowAgg& agg = windows_[w];
    agg.min = agg.count == 0 ? value : std::min(agg.min, value);
    agg.max = agg.count == 0 ? value : std::max(agg.max, value);
    agg.count += 1;
    agg.sum += value;
    total_.min = total_.count == 0 ? value : std::min(total_.min, value);
    total_.max = total_.count == 0 ? value : std::max(total_.max, value);
    total_.count += 1;
    total_.sum += value;
    if (withHists_) {
        if (!hists_[w])
            hists_[w] = std::make_unique<LogHistogram>();
        hists_[w]->record(value);
    }
}

void
TimeSeries::merge(const TimeSeries& o)
{
    if (o.window_ != window_)
        throw step::FatalError("TimeSeries merge: window width mismatch");
    if (o.windows_.size() > windows_.size()) {
        windows_.resize(o.windows_.size());
        if (withHists_)
            hists_.resize(o.windows_.size());
    }
    for (size_t w = 0; w < o.windows_.size(); ++w) {
        const WindowAgg& src = o.windows_[w];
        if (src.count == 0)
            continue;
        WindowAgg& dst = windows_[w];
        dst.min = dst.count == 0 ? src.min : std::min(dst.min, src.min);
        dst.max = dst.count == 0 ? src.max : std::max(dst.max, src.max);
        dst.count += src.count;
        dst.sum += src.sum;
        if (withHists_ && o.withHists_ && o.hists_[w]) {
            if (!hists_[w])
                hists_[w] = std::make_unique<LogHistogram>();
            hists_[w]->merge(*o.hists_[w]);
        }
    }
    const WindowAgg& src = o.total_;
    if (src.count != 0) {
        total_.min = total_.count == 0 ? src.min : std::min(total_.min, src.min);
        total_.max = total_.count == 0 ? src.max : std::max(total_.max, src.max);
        total_.count += src.count;
        total_.sum += src.sum;
    }
}

const WindowAgg&
TimeSeries::window(size_t w) const
{
    static const WindowAgg kEmpty{};
    return w < windows_.size() ? windows_[w] : kEmpty;
}

const LogHistogram*
TimeSeries::windowHistogram(size_t w) const
{
    if (!withHists_ || w >= hists_.size())
        return nullptr;
    return hists_[w].get();
}

void
TimeSeries::forEachWindow(
    const std::function<void(size_t, const WindowAgg&)>& fn) const
{
    for (size_t w = 0; w < windows_.size(); ++w)
        if (windows_[w].count != 0)
            fn(w, windows_[w]);
}

} // namespace step::obs
