/**
 * @file
 * Per-replica metrics registry: named instruments backed by the
 * deterministic LogHistogram + fixed-window TimeSeries core, sampled
 * by ServingEngine at iteration boundaries and request lifecycle
 * events, merged across replicas in replica-index order (bit-identical
 * across worker-thread counts, like TraceSink), and exported as a
 * schema-v2 JSON artifact behind `--metrics <path>` plus a per-window
 * JSONL stream (`out.json` -> `out.windows.jsonl`).
 *
 * Two instrument kinds:
 *  - histogram: run-level LogHistogram plus per-window histogram
 *    deltas (windowed percentiles — the SLO monitor's and the
 *    telemetry health monitor's signal) plus window aggregates;
 *  - series: window aggregates only (count/sum/min/max per window),
 *    for per-iteration gauges and lifecycle event counts.
 *
 * Registration order is the export order; every replica registers the
 * same instruments in the same order, so the merge is a positionless
 * name-keyed fold that still produces byte-stable output.
 */
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "obs/histogram.hh"
#include "obs/timeseries.hh"

namespace step::obs {

struct MetricsConfig
{
    bool enabled = false;
    /// Fixed aggregation window width in cycles.
    dam::Cycle windowCycles = 4'000'000;
};

class MetricsRegistry
{
  public:
    using Handle = size_t;

    explicit MetricsRegistry(MetricsConfig cfg = {});

    /** Register (or look up) a histogram instrument. Idempotent by
     *  name; the kind must match the original registration. */
    Handle histogram(std::string_view name);

    /** Register (or look up) a window-aggregate-only instrument. */
    Handle series(std::string_view name);

    /** Record one sample at cycle @p at. */
    void record(Handle h, dam::Cycle at, uint64_t value);

    struct Instrument
    {
        std::string name;
        bool isHistogram = false;
        LogHistogram total; ///< run-level buckets (histogram kind only)
        TimeSeries series;

        Instrument(std::string n, bool hist, dam::Cycle window)
            : name(std::move(n)), isHistogram(hist),
              series(window, /*with_histograms=*/hist)
        {
        }
    };

    const MetricsConfig& config() const { return cfg_; }
    size_t size() const { return instruments_.size(); }
    const Instrument& at(size_t i) const { return instruments_[i]; }

    /** Lookup by name; nullptr when absent. */
    const Instrument* find(std::string_view name) const;

    /**
     * Fold @p o into this registry: instruments match by name (new
     * names append in @p o's registration order), histograms and
     * window series merge elementwise. Window widths must match.
     */
    void mergeFrom(const MetricsRegistry& o);

  private:
    Handle ensure(std::string_view name, bool is_histogram);

    MetricsConfig cfg_;
    std::vector<Instrument> instruments_;
};

/**
 * Write the schema-v2 metrics artifact: one "replicas" entry per
 * registry in index order, plus a "merged" section folded in the same
 * order (computed here when @p merged is null). All values are
 * integers (cycles, counts); percentiles are bucket representatives.
 */
bool writeMetricsJson(std::ostream& os,
                      const std::vector<const MetricsRegistry*>& replicas,
                      const MetricsRegistry* merged = nullptr);

bool writeMetricsJsonFile(const std::string& path,
                          const std::vector<const MetricsRegistry*>& replicas,
                          const MetricsRegistry* merged = nullptr);

/**
 * Write one JSON object per non-empty (replica, instrument, window)
 * in (replica, instrument, window) order; merged rows use replica -1.
 */
bool
writeMetricsWindowsJsonl(std::ostream& os,
                         const std::vector<const MetricsRegistry*>& replicas,
                         const MetricsRegistry* merged = nullptr);

bool writeMetricsWindowsJsonlFile(
    const std::string& path,
    const std::vector<const MetricsRegistry*>& replicas,
    const MetricsRegistry* merged = nullptr);

/** Derive the window JSONL path from the artifact path:
 *  "out.json" -> "out.windows.jsonl". */
std::string metricsJsonlPath(const std::string& metrics_path);

/** Parsed `--metrics` / `--metrics-window` flags. */
struct MetricsCli
{
    std::string path; ///< empty = metrics not requested
    dam::Cycle windowCycles = 0; ///< 0 = keep the MetricsConfig default
    bool error = false;
    std::string errorMsg;

    bool enabled() const { return !path.empty() && !error; }

    MetricsConfig
    config() const
    {
        MetricsConfig c;
        c.enabled = enabled();
        if (windowCycles > 0)
            c.windowCycles = windowCycles;
        return c;
    }
};

/**
 * Scan argv for `--metrics <path>` (or `--metrics=<path>`) and
 * `--metrics-window <cycles>`. Unrelated flags are ignored — the sims
 * parse their own. A window without a path is an error, as is a
 * non-positive window.
 */
MetricsCli parseMetricsCli(int argc, char** argv);

} // namespace step::obs
