/**
 * @file
 * Deterministic tracing & telemetry: core types. A trace is a stream of
 * cycle-timestamped events — spans, instants, counters — recorded into
 * per-replica TraceSinks and exported as Chrome trace-event JSON (loads
 * in Perfetto / chrome://tracing) plus a per-request lifecycle JSONL.
 *
 * Timestamps are *simulated* cycles, never wall clock, so a trace of a
 * seeded run is bit-identical under replay and independent of worker-
 * thread count. Every instrumentation hook in the hot layers (scheduler
 * resume loop, engine iteration loop) gates on a single sink-pointer
 * branch, so tracing off costs one predicted-not-taken branch per hook.
 */
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "dam/task.hh"

namespace step::obs {

/**
 * How much the sink records. Each level is a superset of the previous:
 *  - Off:     nothing; hooks are dead branches.
 *  - Request: request lifecycle instants (arrive/admit/first-token/
 *             finish, with prefix-cache-hit annotations) + per-iteration
 *             counter samples.
 *  - Op:      + per-op lifetime spans per graph run and context-switch
 *             attribution per op name (the fusion-planning histogram).
 *  - Full:    + one span per coroutine resume, with the block kind and
 *             channel that suspended it. Verbose: ~500 spans per decoder
 *             iteration.
 */
enum class TraceLevel : uint8_t { Off = 0, Request = 1, Op = 2, Full = 3 };

const char* traceLevelName(TraceLevel level);

/** Parse "off"/"request"/"op"/"full"; returns false on anything else. */
bool parseTraceLevel(std::string_view s, TraceLevel* out);

struct TraceOptions
{
    TraceLevel level = TraceLevel::Off;
    /**
     * Events retained per sink (ring buffer). When a run emits more,
     * the oldest are dropped — deterministically, since the event
     * stream itself is deterministic — and the drop count is exported
     * as metadata. Request lifecycle records and counter finals are
     * kept out of the ring, so they are never dropped.
     */
    size_t ringCapacity = size_t{1} << 20;
};

/** Event kinds; each maps onto one Chrome trace-event phase. */
enum class EventKind : uint8_t {
    SpanBegin, ///< ph "B"
    SpanEnd,   ///< ph "E" (detail = block kind, arg0 = channel name id)
    Complete,  ///< ph "X" (arg0 = duration, arg1 = busy cycles)
    Instant,   ///< ph "i" (arg0 = request id, arg1 = kind-specific)
    Counter,   ///< ph "C" (arg0 = sampled value)
};

/**
 * Sub-track ("tid") layout inside one sink. One sink is one Chrome
 * "process" (pid = replica index), with fixed threads:
 */
enum : uint8_t {
    kTidLifecycle = 0, ///< request instants + counter samples
    kTidSched = 1,     ///< per-resume spans (Full)
    kTidOps = 2,       ///< per-op lifetime Complete spans (Op+)
};

/**
 * One recorded event. Fixed-size and string-free: names are interned
 * ids into the sink's append-only name table, so recording never
 * allocates once the ring has grown and the names are warm.
 */
struct TraceEvent
{
    dam::Cycle ts = 0; ///< simulated cycle (engine-global time base)
    int64_t arg0 = 0;
    int64_t arg1 = 0;
    uint32_t name = 0; ///< interned name id
    EventKind kind = EventKind::Instant;
    uint8_t tid = kTidLifecycle;
    uint8_t detail = 0; ///< SpanEnd: dam::BlockInfo::Kind of the suspend
};

/** Render a BlockInfo::Kind ordinal for export ("yield", "read", ...). */
const char* blockKindName(uint8_t kind);

} // namespace step::obs
