#include "obs/export.hh"

#include <algorithm>
#include <fstream>
#include <map>
#include <ostream>

#include "obs/json.hh"
#include "support/table.hh"

namespace step::obs {

namespace {

void
appendCommonFields(std::string& out, const char* ph, std::string_view name,
                   size_t pid, unsigned tid, dam::Cycle ts)
{
    out += "{\"ph\":\"";
    out += ph;
    out += "\",\"name\":\"";
    appendJsonEscaped(out, name);
    out += "\",\"pid\":";
    out += std::to_string(pid);
    out += ",\"tid\":";
    out += std::to_string(tid);
    out += ",\"ts\":";
    out += std::to_string(ts);
}

void
appendMetaEvent(std::string& out, const char* meta_name, size_t pid,
                int tid, std::string_view label)
{
    out += "{\"ph\":\"M\",\"name\":\"";
    out += meta_name;
    out += "\",\"pid\":";
    out += std::to_string(pid);
    if (tid >= 0) {
        out += ",\"tid\":";
        out += std::to_string(tid);
    }
    out += ",\"args\":{\"name\":\"";
    appendJsonEscaped(out, label);
    out += "\"}},\n";
}

} // namespace

bool
writeChromeTrace(std::ostream& os,
                 const std::vector<const TraceSink*>& sinks,
                 const std::string& process_label)
{
    os << "{\"traceEvents\":[\n";
    std::string buf;
    bool first = true;
    for (size_t pid = 0; pid < sinks.size(); ++pid) {
        const TraceSink& sink = *sinks[pid];
        buf.clear();
        appendMetaEvent(buf, "process_name", pid, -1,
                        process_label + " " + std::to_string(pid));
        appendMetaEvent(buf, "thread_name", pid, kTidLifecycle,
                        "requests+counters");
        appendMetaEvent(buf, "thread_name", pid, kTidSched, "scheduler");
        appendMetaEvent(buf, "thread_name", pid, kTidOps, "ops");

        // B spans dropped off the ring front can leave orphan E events;
        // skip those (depth tracking) so every exported track stays
        // balanced, and close any span still open at the end of the
        // stream at its last timestamp.
        int64_t depth = 0;
        dam::Cycle last_sched_ts = 0;
        std::vector<uint32_t> open;
        sink.forEachEvent([&](const TraceEvent& e) {
            switch (e.kind) {
              case EventKind::SpanBegin:
                appendCommonFields(buf, "B", sink.name(e.name), pid,
                                   e.tid, e.ts);
                buf += "},\n";
                ++depth;
                last_sched_ts = e.ts;
                open.push_back(e.name);
                break;
              case EventKind::SpanEnd:
                if (depth == 0)
                    break; // orphan: begin was dropped by the ring
                appendCommonFields(buf, "E", sink.name(e.name), pid,
                                   e.tid, e.ts);
                buf += ",\"args\":{\"block\":\"";
                buf += blockKindName(e.detail);
                buf += "\"";
                if (e.arg0 >= 0) {
                    buf += ",\"ch\":\"";
                    appendJsonEscaped(
                        buf, sink.name(static_cast<uint32_t>(e.arg0)));
                    buf += "\"";
                }
                buf += "}},\n";
                --depth;
                last_sched_ts = e.ts;
                open.pop_back();
                break;
              case EventKind::Complete:
                appendCommonFields(buf, "X", sink.name(e.name), pid,
                                   e.tid, e.ts);
                buf += ",\"dur\":";
                buf += std::to_string(e.arg0);
                buf += "},\n";
                break;
              case EventKind::Instant:
                appendCommonFields(buf, "i", sink.name(e.name), pid,
                                   e.tid, e.ts);
                buf += ",\"s\":\"t\",\"args\":{\"req\":";
                buf += std::to_string(e.arg0);
                buf += ",\"v\":";
                buf += std::to_string(e.arg1);
                buf += "}},\n";
                break;
              case EventKind::Counter:
                appendCommonFields(buf, "C", sink.name(e.name), pid,
                                   e.tid, e.ts);
                buf += ",\"args\":{\"value\":";
                buf += std::to_string(e.arg0);
                buf += "}},\n";
                break;
            }
        });
        while (!open.empty()) {
            appendCommonFields(buf, "E", sink.name(open.back()), pid,
                               kTidSched, last_sched_ts);
            buf += "},\n";
            open.pop_back();
        }
        if (sink.droppedEvents() > 0) {
            appendCommonFields(buf, "i", "trace.ring_dropped_events", pid,
                               kTidLifecycle, last_sched_ts);
            buf += ",\"s\":\"p\",\"args\":{\"req\":-1,\"v\":";
            buf += std::to_string(sink.droppedEvents());
            buf += "}},\n";
        }
        if (!buf.empty()) {
            if (!first)
                os << ",\n";
            // Trim the trailing ",\n" so the JSON array stays valid.
            buf.resize(buf.size() - 2);
            os << buf;
            first = false;
        }
    }
    os << "\n],\"displayTimeUnit\":\"ns\",\"otherData\":{"
          "\"clock\":\"simulated-cycles\"}}\n";
    return os.good();
}

bool
writeChromeTraceFile(const std::string& path,
                     const std::vector<const TraceSink*>& sinks,
                     const std::string& process_label)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    return writeChromeTrace(out, sinks, process_label);
}

bool
writeRequestJsonl(std::ostream& os,
                  const std::vector<const TraceSink*>& sinks)
{
    std::string buf;
    for (size_t pid = 0; pid < sinks.size(); ++pid) {
        for (const RequestLifecycle& r : sinks[pid]->requests()) {
            buf.clear();
            buf += "{\"id\":" + std::to_string(r.id);
            buf += ",\"replica\":" + std::to_string(pid);
            buf += ",\"session\":" + std::to_string(r.sessionId);
            buf += ",\"turn\":" + std::to_string(r.turn);
            buf += ",\"prompt_len\":" + std::to_string(r.promptLen);
            buf += ",\"output_len\":" + std::to_string(r.outputLen);
            buf += ",\"cached_prefix_tokens\":" +
                   std::to_string(r.cachedPrefixTokens);
            buf += ",\"attempt\":" + std::to_string(r.attempt);
            buf += ",\"arrival\":" + std::to_string(r.arrival);
            buf += ",\"admitted\":" +
                   (r.admitted ? std::to_string(r.admittedAt)
                               : std::string("-1"));
            buf += ",\"first_token\":" +
                   (r.sawFirstToken ? std::to_string(r.firstTokenAt)
                                    : std::string("-1"));
            buf += ",\"finished\":" +
                   (r.finished ? std::to_string(r.finishedAt)
                               : std::string("-1"));
            buf += ",\"failed\":" +
                   (r.failed ? std::to_string(r.failedAt)
                             : std::string("-1"));
            buf += ",\"shed\":" + (r.shed ? std::to_string(r.shedAt)
                                          : std::string("-1"));
            // Only present on migrated incarnations: lifecycles from a
            // resilience-free run keep their exact historical bytes.
            if (r.migrated)
                buf += ",\"migrated\":" + std::to_string(r.migratedAt);
            buf += ",\"ttft\":" +
                   (r.sawFirstToken
                        ? std::to_string(static_cast<int64_t>(
                              r.firstTokenAt - r.arrival))
                        : std::string("-1"));
            buf += "}\n";
            os << buf;
        }
    }
    return os.good();
}

bool
writeRequestJsonlFile(const std::string& path,
                      const std::vector<const TraceSink*>& sinks)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    return writeRequestJsonl(out, sinks);
}

void
printSwitchAttribution(std::ostream& os,
                       const std::vector<const TraceSink*>& sinks,
                       size_t top_n)
{
    // Merge by name across sinks (ordered map: deterministic and
    // replica-order independent).
    std::map<std::string_view, uint64_t> merged;
    uint64_t total = 0;
    for (const TraceSink* s : sinks) {
        for (const SwitchAttribution& a : s->switchAttribution()) {
            merged[a.name] += a.switches;
            total += a.switches;
        }
    }
    std::vector<SwitchAttribution> rows;
    rows.reserve(merged.size());
    for (const auto& [name, n] : merged)
        rows.push_back(SwitchAttribution{name, n});
    std::sort(rows.begin(), rows.end(),
              [](const SwitchAttribution& a, const SwitchAttribution& b) {
                  return a.switches != b.switches
                             ? a.switches > b.switches
                             : a.name < b.name;
              });

    os << "context-switch attribution (" << total << " resumes over "
       << rows.size() << " op names; fusion candidates lead):\n";
    Table t({"op", "resumes", "share %", "cum %"});
    double cum = 0.0;
    for (size_t i = 0; i < rows.size() && i < top_n; ++i) {
        double share = total
                           ? 100.0 * static_cast<double>(rows[i].switches) /
                                 static_cast<double>(total)
                           : 0.0;
        cum += share;
        t.row()
            .cell(std::string(rows[i].name))
            .cell(static_cast<int64_t>(rows[i].switches))
            .cellF(share, 1)
            .cellF(cum, 1);
    }
    t.print(os);
}

std::string
requestJsonlPath(const std::string& trace_path)
{
    std::string stem = trace_path;
    const std::string suffix = ".json";
    if (stem.size() > suffix.size() &&
        stem.compare(stem.size() - suffix.size(), suffix.size(), suffix) ==
            0)
        stem.resize(stem.size() - suffix.size());
    return stem + ".requests.jsonl";
}

TraceCli
parseTraceCli(int argc, char** argv)
{
    TraceCli cli;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--trace") {
            if (i + 1 >= argc) {
                cli.error = true;
                cli.errorMsg = "--trace requires a path";
                return cli;
            }
            cli.path = argv[++i];
        } else if (a.rfind("--trace=", 0) == 0) {
            cli.path = a.substr(8);
        } else if (a == "--trace-level" || a.rfind("--trace-level=", 0) ==
                                               0) {
            std::string v;
            if (a == "--trace-level") {
                if (i + 1 >= argc) {
                    cli.error = true;
                    cli.errorMsg = "--trace-level requires a value";
                    return cli;
                }
                v = argv[++i];
            } else {
                v = a.substr(14);
            }
            if (!parseTraceLevel(v, &cli.level)) {
                cli.error = true;
                cli.errorMsg = "unknown trace level '" + v +
                               "' (off|request|op|full)";
                return cli;
            }
        }
    }
    if (cli.path.empty() && cli.level != TraceLevel::Request &&
        cli.level != TraceLevel::Off) {
        cli.error = true;
        cli.errorMsg = "--trace-level given without --trace <path>";
    }
    return cli;
}

} // namespace step::obs
