#include "obs/sink.hh"

#include <algorithm>

#include "dam/channel.hh"
#include "support/error.hh"

namespace step::obs {

const char*
traceLevelName(TraceLevel level)
{
    switch (level) {
      case TraceLevel::Off:
        return "off";
      case TraceLevel::Request:
        return "request";
      case TraceLevel::Op:
        return "op";
      case TraceLevel::Full:
        return "full";
    }
    return "?";
}

bool
parseTraceLevel(std::string_view s, TraceLevel* out)
{
    if (s == "off")
        *out = TraceLevel::Off;
    else if (s == "request")
        *out = TraceLevel::Request;
    else if (s == "op")
        *out = TraceLevel::Op;
    else if (s == "full")
        *out = TraceLevel::Full;
    else
        return false;
    return true;
}

const char*
blockKindName(uint8_t kind)
{
    // Mirrors dam::BlockInfo::Kind ordinals; "yield" is the None case
    // (the context gave up the core without blocking on anything).
    switch (kind) {
      case 0:
        return "yield";
      case 1:
        return "read";
      case 2:
        return "write";
      case 3:
        return "select";
      case 4:
        return "timed_wait";
    }
    return "?";
}

TraceSink::TraceSink(TraceOptions opts) : opts_(opts)
{
    STEP_ASSERT(opts_.ringCapacity > 0,
                "trace ring capacity must be positive");
    nameArrive_ = intern("req.arrive");
    nameAdmit_ = intern("req.admit");
    nameFirstToken_ = intern("req.first_token");
    nameFinish_ = intern("req.finish");
    nameRetry_ = intern("req.retry");
    nameFailed_ = intern("req.failed");
    nameShed_ = intern("req.shed");
    nameFaultDown_ = intern("fault.replica_down");
    nameFaultUp_ = intern("fault.replica_up");
    nameMigrated_ = intern("req.migrated");
    nameCapped_ = intern("req.capped");
}

uint32_t
TraceSink::intern(std::string_view s)
{
    auto it = nameIds_.find(s);
    if (it != nameIds_.end())
        return it->second;
    auto id = static_cast<uint32_t>(names_.size());
    auto [pos, inserted] = nameIds_.emplace(std::string(s), id);
    names_.push_back(&pos->first);
    return id;
}

void
TraceSink::append(const TraceEvent& e)
{
    TraceEvent ev = e;
    // Deterministic monotone clamp per sub-track: discrete-event wakes
    // can stamp an event a hair before the previous one on its track
    // (e.g. an arrival that fell inside the last iteration); exported
    // tracks promise non-decreasing B/E/i/C timestamps, so pull the
    // stamp up to the track cursor. Complete (X) events are exempt —
    // they are emitted at span *end* but stamped at span begin.
    if (ev.kind != EventKind::Complete) {
        dam::Cycle& last = lastTs_[ev.tid];
        if (ev.ts < last)
            ev.ts = last;
        last = ev.ts;
    }
    if (ring_.size() < opts_.ringCapacity) {
        ring_.push_back(ev);
        return;
    }
    ring_[head_] = ev;
    head_ = (head_ + 1) % ring_.size();
    ++dropped_;
}

void
TraceSink::schedResume(const void* ctx, const std::string& ctx_name,
                       dam::Cycle at)
{
    if (opts_.level < TraceLevel::Op)
        return;
    const uint32_t id = intern(ctx_name);
    // Switch attribution per op name (first-seen order, so exports are
    // deterministic without sorting a hash map).
    auto [it, fresh] = switchIndex_.emplace(id, switchCounts_.size());
    if (fresh)
        switchCounts_.emplace_back(id, 0);
    ++switchCounts_[it->second].second;
    ++attributedSwitches_;

    const dam::Cycle ts = base_ + at;
    activeOps_.emplace(ctx, OpOpen{id, ts});
    if (opts_.level >= TraceLevel::Full) {
        TraceEvent e;
        e.ts = ts;
        e.name = id;
        e.kind = EventKind::SpanBegin;
        e.tid = kTidSched;
        append(e);
    }
}

void
TraceSink::schedSuspend(const void* ctx, dam::Cycle at, uint8_t block_kind,
                        const dam::Channel* ch)
{
    if (opts_.level < TraceLevel::Full)
        return;
    TraceEvent e;
    e.ts = base_ + at;
    auto it = activeOps_.find(ctx);
    e.name = it != activeOps_.end() ? it->second.name : 0;
    e.kind = EventKind::SpanEnd;
    e.tid = kTidSched;
    e.detail = block_kind;
    e.arg0 = ch ? static_cast<int64_t>(intern(ch->name())) : -1;
    append(e);
}

void
TraceSink::schedFinish(const void* ctx, const std::string& ctx_name,
                       dam::Cycle at)
{
    if (opts_.level < TraceLevel::Op)
        return;
    const dam::Cycle ts = base_ + at;
    auto it = activeOps_.find(ctx);
    if (opts_.level >= TraceLevel::Full) {
        TraceEvent e;
        e.ts = ts;
        e.name = it != activeOps_.end() ? it->second.name
                                        : intern(ctx_name);
        e.kind = EventKind::SpanEnd;
        e.tid = kTidSched;
        e.detail = 0;
        e.arg0 = -1;
        append(e);
    }
    // Per-op lifetime span: first resume -> completion, one X event per
    // graph run per op (the per-op timeline the fusion planner reads).
    if (it != activeOps_.end()) {
        TraceEvent e;
        e.ts = it->second.firstResume;
        e.arg0 = static_cast<int64_t>(ts - it->second.firstResume);
        e.name = it->second.name;
        e.kind = EventKind::Complete;
        e.tid = kTidOps;
        append(e);
        activeOps_.erase(it);
    } else {
        // First resume was recorded under a different sink level or the
        // map entry was lost; emit a zero-length span so begin/finish
        // stay paired in the export.
        TraceEvent e;
        e.ts = ts;
        e.name = intern(ctx_name);
        e.kind = EventKind::Complete;
        e.tid = kTidOps;
        append(e);
    }
}

void
TraceSink::reqArrived(int64_t id, int64_t session, int64_t turn,
                      int64_t prompt_len, int64_t output_len, dam::Cycle at,
                      int64_t attempt)
{
    if (opts_.level < TraceLevel::Request)
        return;
    RequestLifecycle rec;
    rec.id = id;
    rec.sessionId = session;
    rec.turn = turn;
    rec.promptLen = prompt_len;
    rec.outputLen = output_len;
    rec.attempt = attempt;
    rec.arrival = at;
    // Keyed by (id, attempt): a superseded incarnation and its retry
    // can be concurrently simulated on one replica, and each hook must
    // land on its own record. Every record stays in requests_ for the
    // JSONL.
    reqIndex_[lifeKey(id, attempt)] = requests_.size();
    requests_.push_back(rec);

    TraceEvent e;
    e.ts = at;
    e.name = nameArrive_;
    e.kind = EventKind::Instant;
    e.tid = kTidLifecycle;
    e.arg0 = id;
    e.arg1 = prompt_len;
    append(e);
    if (attempt > 0) {
        TraceEvent re;
        re.ts = at;
        re.name = nameRetry_;
        re.kind = EventKind::Instant;
        re.tid = kTidLifecycle;
        re.arg0 = id;
        re.arg1 = attempt;
        append(re);
    }
}

void
TraceSink::reqAdmitted(int64_t id, int64_t attempt,
                       int64_t cached_prefix_tokens, dam::Cycle at)
{
    if (opts_.level < TraceLevel::Request)
        return;
    auto it = reqIndex_.find(lifeKey(id, attempt));
    if (it != reqIndex_.end()) {
        RequestLifecycle& rec = requests_[it->second];
        rec.admitted = true;
        rec.admittedAt = at;
        rec.cachedPrefixTokens = cached_prefix_tokens;
    }
    TraceEvent e;
    e.ts = at;
    e.name = nameAdmit_;
    e.kind = EventKind::Instant;
    e.tid = kTidLifecycle;
    e.arg0 = id;
    e.arg1 = cached_prefix_tokens;
    append(e);
}

void
TraceSink::reqFirstToken(int64_t id, int64_t attempt, dam::Cycle at)
{
    if (opts_.level < TraceLevel::Request)
        return;
    auto it = reqIndex_.find(lifeKey(id, attempt));
    if (it != reqIndex_.end()) {
        RequestLifecycle& rec = requests_[it->second];
        rec.sawFirstToken = true;
        rec.firstTokenAt = at;
    }
    TraceEvent e;
    e.ts = at;
    e.name = nameFirstToken_;
    e.kind = EventKind::Instant;
    e.tid = kTidLifecycle;
    e.arg0 = id;
    append(e);
}

void
TraceSink::reqFinished(int64_t id, int64_t attempt, dam::Cycle at)
{
    if (opts_.level < TraceLevel::Request)
        return;
    auto it = reqIndex_.find(lifeKey(id, attempt));
    if (it != reqIndex_.end()) {
        RequestLifecycle& rec = requests_[it->second];
        rec.finished = true;
        rec.finishedAt = at;
    }
    TraceEvent e;
    e.ts = at;
    e.name = nameFinish_;
    e.kind = EventKind::Instant;
    e.tid = kTidLifecycle;
    e.arg0 = id;
    append(e);
}

void
TraceSink::reqFailed(int64_t id, int64_t attempt, dam::Cycle at)
{
    if (opts_.level < TraceLevel::Request)
        return;
    auto it = reqIndex_.find(lifeKey(id, attempt));
    if (it != reqIndex_.end()) {
        RequestLifecycle& rec = requests_[it->second];
        rec.failed = true;
        rec.failedAt = at;
    }
    TraceEvent e;
    e.ts = at;
    e.name = nameFailed_;
    e.kind = EventKind::Instant;
    e.tid = kTidLifecycle;
    e.arg0 = id;
    append(e);
}

void
TraceSink::reqShed(int64_t id, int64_t attempt, dam::Cycle at)
{
    if (opts_.level < TraceLevel::Request)
        return;
    auto it = reqIndex_.find(lifeKey(id, attempt));
    if (it != reqIndex_.end()) {
        RequestLifecycle& rec = requests_[it->second];
        rec.shed = true;
        rec.shedAt = at;
    }
    TraceEvent e;
    e.ts = at;
    e.name = nameShed_;
    e.kind = EventKind::Instant;
    e.tid = kTidLifecycle;
    e.arg0 = id;
    append(e);
}

void
TraceSink::reqMigrated(int64_t id, int64_t attempt, dam::Cycle at,
                       int64_t kv_tokens)
{
    if (opts_.level < TraceLevel::Request)
        return;
    auto it = reqIndex_.find(lifeKey(id, attempt));
    if (it != reqIndex_.end()) {
        RequestLifecycle& rec = requests_[it->second];
        rec.migrated = true;
        rec.migratedAt = at;
    }
    TraceEvent e;
    e.ts = at;
    e.name = nameMigrated_;
    e.kind = EventKind::Instant;
    e.tid = kTidLifecycle;
    e.arg0 = id;
    e.arg1 = kv_tokens;
    append(e);
}

void
TraceSink::reqCapped(int64_t id, dam::Cycle at, int64_t cap)
{
    if (opts_.level < TraceLevel::Request)
        return;
    TraceEvent e;
    e.ts = at;
    e.name = nameCapped_;
    e.kind = EventKind::Instant;
    e.tid = kTidLifecycle;
    e.arg0 = id;
    e.arg1 = cap;
    append(e);
}

void
TraceSink::instant(std::string_view name, dam::Cycle at, int64_t arg0,
                   int64_t arg1)
{
    if (opts_.level < TraceLevel::Request)
        return;
    TraceEvent e;
    e.ts = at;
    e.name = intern(name);
    e.kind = EventKind::Instant;
    e.tid = kTidLifecycle;
    e.arg0 = arg0;
    e.arg1 = arg1;
    append(e);
}

void
TraceSink::faultDown(dam::Cycle at, dam::Cycle fail_at,
                     dam::Cycle recover_at)
{
    if (opts_.level < TraceLevel::Request)
        return;
    TraceEvent e;
    e.ts = at;
    e.name = nameFaultDown_;
    e.kind = EventKind::Instant;
    e.tid = kTidLifecycle;
    e.arg0 = static_cast<int64_t>(fail_at);
    e.arg1 = recover_at != 0 ? static_cast<int64_t>(recover_at) : -1;
    append(e);
}

void
TraceSink::faultUp(dam::Cycle at)
{
    if (opts_.level < TraceLevel::Request)
        return;
    TraceEvent e;
    e.ts = at;
    e.name = nameFaultUp_;
    e.kind = EventKind::Instant;
    e.tid = kTidLifecycle;
    e.arg0 = -1;
    append(e);
}

void
TraceSink::sampleCounters(dam::Cycle at)
{
    if (opts_.level < TraceLevel::Request)
        return;
    while (counterNameIds_.size() < counters_.size())
        counterNameIds_.push_back(
            intern(counters_.name(counterNameIds_.size())));
    for (size_t i = 0; i < counters_.size(); ++i) {
        if (!counters_.consumeChanged(i))
            continue;
        TraceEvent e;
        e.ts = at;
        e.name = counterNameIds_[i];
        e.kind = EventKind::Counter;
        e.tid = kTidLifecycle;
        e.arg0 = counters_.value(i);
        append(e);
    }
}

std::vector<SwitchAttribution>
TraceSink::switchAttribution() const
{
    std::vector<SwitchAttribution> out;
    out.reserve(switchCounts_.size());
    for (const auto& [id, n] : switchCounts_)
        out.push_back(SwitchAttribution{name(id), n});
    std::sort(out.begin(), out.end(),
              [](const SwitchAttribution& a, const SwitchAttribution& b) {
                  return a.switches != b.switches
                             ? a.switches > b.switches
                             : a.name < b.name;
              });
    return out;
}

} // namespace step::obs
