/**
 * @file
 * Property-based tests of the shape semantics: for randomized operator
 * pipelines and randomized ragged inputs, the symbolic shape declared by
 * shape inference must agree with the observed token stream — same
 * rank, and equal extents wherever the inferred dimension is static.
 * Also checks stream conservation laws (Partition/Reassemble round
 * trips preserve multisets; EagerMerge preserves chunk contents).
 */
#include <gtest/gtest.h>

#include <set>

#include "ops/route.hh"
#include "ops/shape_ops.hh"
#include "ops/source_sink.hh"
#include "support/rng.hh"

#include "helpers.hh"

namespace step {
namespace {

using test::leavesOf;
using test::scalarTile;

/** Observed extents: for each depth, the set of group sizes. */
void
observedExtents(const Nested& n, size_t depth,
                std::vector<std::set<size_t>>& per_level)
{
    if (n.isLeaf())
        return;
    per_level[depth].insert(n.children().size());
    for (const auto& c : n.children())
        observedExtents(c, depth + 1, per_level);
}

/**
 * Check a decoded stream against a symbolic shape: every static dim's
 * extent must equal the observed group size at that level (when any
 * group was observed; trailing-empty collapse makes sizes of absent
 * groups unobservable).
 */
void
checkShapeAgainstStream(const StreamShape& shape,
                        const std::vector<Token>& toks)
{
    size_t rank = shape.rank();
    ASSERT_FALSE(checkWellFormed(toks, rank).has_value())
        << tokensToString(toks);
    if (countData(toks) == 0)
        return; // empty stream: no extents observable
    Nested n = decodeNested(toks, rank);
    std::vector<std::set<size_t>> per_level(rank + 1);
    per_level[0].insert(n.children().size());
    for (const auto& c : n.children())
        observedExtents(c, 1, per_level);
    for (size_t lvl = 0; lvl < rank; ++lvl) {
        const Dim& d = shape.outer(lvl);
        if (!d.isStatic() || per_level[lvl].empty())
            continue;
        auto expect = static_cast<size_t>(d.size.eval({}));
        for (size_t got : per_level[lvl]) {
            // Empty groups are unattributable: a collapsed ragged/empty
            // ancestor shows up as a zero-sized group at this level in
            // the stop-token encoding. Only nonzero extents must match.
            if (got == 0)
                continue;
            EXPECT_EQ(got, expect)
                << "level " << lvl << " of " << shape.toString() << ": "
                << tokensToString(toks);
        }
    }
}

/** Random ragged tensor with exact static outer dims where given. */
Nested
randomNested(Rng& rng, const std::vector<int64_t>& dims, size_t level,
             float& counter)
{
    if (level == dims.size())
        return Nested(test::val(counter++));
    int64_t n = dims[level] >= 0 ? dims[level]
                                 : static_cast<int64_t>(
                                       rng.uniformInt(4));
    std::vector<Nested> kids;
    for (int64_t i = 0; i < n; ++i)
        kids.push_back(randomNested(rng, dims, level + 1, counter));
    return Nested::list(std::move(kids));
}

class ShapeInference : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ShapeInference, PipelineShapesMatchObservedStreams)
{
    Rng rng(GetParam());
    // Random source: 2-3 dims, mix of static and ragged.
    size_t rank = 2 + rng.uniformInt(2);
    std::vector<int64_t> concrete;
    std::vector<Dim> dims;
    for (size_t i = 0; i < rank; ++i) {
        if (rng.uniform() < 0.5) {
            int64_t s = 1 + static_cast<int64_t>(rng.uniformInt(3));
            concrete.push_back(s);
            dims.push_back(Dim::fixed(s));
        } else {
            concrete.push_back(-1); // ragged
            dims.push_back(Dim::ragged());
        }
    }
    float counter = 1.0f;
    Nested n = randomNested(rng, concrete, 0, counter);
    auto toks = encodeNested(n, rank);

    Graph g;
    StreamPort cur = g.add<SourceOp>("src", toks, StreamShape(dims),
                                     scalarTile()).out();
    // Random chain of shape operators.
    size_t n_ops = 1 + rng.uniformInt(3);
    for (size_t i = 0; i < n_ops; ++i) {
        std::string name = "op" + std::to_string(i);
        switch (rng.uniformInt(4)) {
          case 0: { // Flatten a random inner range
            if (cur.rank() < 2)
                break;
            size_t hi = 1 + rng.uniformInt(cur.rank() - 1);
            cur = g.add<FlattenOp>(name, cur, 0, hi).out();
            break;
          }
          case 1: // Promote
            cur = g.add<PromoteOp>(name, cur).out();
            break;
          case 2: // Repeat (adds a static inner dim)
            cur = g.add<RepeatOp>(
                name, cur,
                1 + static_cast<int64_t>(rng.uniformInt(3))).out();
            break;
          default: // ExpandStatic (widens the innermost dim)
            cur = g.add<ExpandStaticOp>(
                name, cur,
                1 + static_cast<int64_t>(rng.uniformInt(3))).out();
            break;
        }
    }
    auto& sink = g.add<SinkOp>("sink", cur, true);
    (void)g.run();
    checkShapeAgainstStream(cur.shape, sink.tokens());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShapeInference,
                         ::testing::Range<uint64_t>(1, 41));

class RoutingConservation : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RoutingConservation, PartitionReassembleIsIdentity)
{
    Rng rng(GetParam());
    const auto n_rows =
        static_cast<int64_t>(4 + rng.uniformInt(12));
    const size_t n_out = 2 + rng.uniformInt(3);

    std::vector<Nested> rows;
    std::vector<Token> sels;
    for (int64_t i = 0; i < n_rows; ++i) {
        rows.push_back(test::vec(
            {static_cast<float>(i + 1)}));
        sels.push_back(Token::data(Selector::oneHot(
            static_cast<uint32_t>(rng.uniformInt(n_out)))));
    }
    sels.push_back(Token::done());

    // FIFO sizing discipline (DESIGN.md): channels between Partition
    // and Reassemble must cover the rows in flight per output.
    SimConfig sc;
    sc.channelCapacity = static_cast<size_t>(n_rows) + 8;
    Graph g(sc);
    auto& in = g.add<SourceOp>(
        "in", encodeNested(Nested::list(rows), 2),
        StreamShape({Dim::fixed(n_rows), Dim::fixed(1)}), scalarTile());
    auto& sa = g.add<SourceOp>("sa", sels,
                               StreamShape({Dim::fixed(n_rows)}),
                               DataType::selector(
                                   static_cast<int64_t>(n_out)));
    auto& sb = g.add<SourceOp>("sb", sels,
                               StreamShape({Dim::fixed(n_rows)}),
                               DataType::selector(
                                   static_cast<int64_t>(n_out)));
    auto& part = g.add<PartitionOp>("p", in.out(), sa.out(), 1, n_out);
    std::vector<StreamPort> outs;
    for (size_t i = 0; i < n_out; ++i)
        outs.push_back(part.out(i));
    auto& re = g.add<ReassembleOp>("r", outs, sb.out(), 1);
    auto& sink = g.add<SinkOp>("sink", re.out(), true);
    (void)g.run();

    Nested out = decodeNested(sink.tokens(), 3);
    std::vector<float> got = leavesOf(out);
    std::vector<float> expect;
    for (int64_t i = 0; i < n_rows; ++i)
        expect.push_back(static_cast<float>(i + 1));
    EXPECT_EQ(got, expect) << "round trip must preserve order";
    EXPECT_EQ(out.children().size(), static_cast<size_t>(n_rows));
}

TEST_P(RoutingConservation, EagerMergePreservesChunkMultiset)
{
    Rng rng(GetParam() + 1000);
    const size_t n_in = 2 + rng.uniformInt(3);
    Graph g;
    std::vector<StreamPort> ins;
    std::multiset<float> expect;
    float v = 1.0f;
    for (size_t i = 0; i < n_in; ++i) {
        std::vector<Nested> chunks;
        size_t n_chunks = rng.uniformInt(4);
        for (size_t c = 0; c < n_chunks; ++c) {
            chunks.push_back(test::vec({v}));
            expect.insert(v);
            v += 1.0f;
        }
        ins.push_back(g.add<SourceOp>(
            "in" + std::to_string(i),
            encodeNested(Nested::list(chunks), 2),
            StreamShape({Dim::ragged(), Dim::ragged()}),
            scalarTile()).out());
    }
    auto& em = g.add<EagerMergeOp>("em", ins, 1);
    auto& dsink = g.add<SinkOp>("d", em.out(), true);
    auto& ssink = g.add<SinkOp>("s", em.selOut(), true);
    (void)g.run();
    auto vals = leavesOf(decodeNested(dsink.tokens(), 2));
    std::multiset<float> got(vals.begin(), vals.end());
    EXPECT_EQ(got, expect);
    EXPECT_EQ(ssink.dataCount(), expect.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoutingConservation,
                         ::testing::Range<uint64_t>(1, 21));

} // namespace
} // namespace step
