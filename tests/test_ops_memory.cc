/**
 * @file
 * Tests for the memory substrates and memory operators: DRAM timing,
 * scratchpad accounting, off-chip load/store semantics and traffic
 * metrics, Bufferize/Streamify round trips including dynamic buffers,
 * and symbolic-vs-measured traffic agreement (section 4.2 cross-check).
 */
#include <gtest/gtest.h>

#include "mem/dram.hh"
#include "mem/scratchpad.hh"
#include "support/error.hh"
#include "ops/offchip.hh"
#include "ops/onchip.hh"
#include "ops/shape_ops.hh"
#include "ops/source_sink.hh"

#include "helpers.hh"

namespace step {
namespace {

using test::list;
using test::vec;

TEST(Dram, RowHitFasterThanMiss)
{
    HbmBankModel m;
    dam::Cycle first = m.access(0, 32, 0, false);
    uint64_t misses1 = m.rowMisses();
    // Adjacent column on the same channel/bank/row: hit.
    dam::Cycle second_issue = first;
    dam::Cycle second = m.access(32, 32, second_issue, false) -
                        second_issue;
    EXPECT_EQ(m.rowMisses(), misses1);
    EXPECT_GT(m.rowHits(), 0u);
    EXPECT_LT(second, first);
}

TEST(Dram, ChannelsServeInParallel)
{
    HbmConfig cfg;
    HbmBankModel m(cfg);
    // Two big streaming reads to disjoint address ranges issued at t=0:
    // channel interleaving means they share the full device bandwidth.
    dam::Cycle a = m.access(0, 1 << 16, 0, false);
    HbmBankModel m2(cfg);
    dam::Cycle b1 = m2.access(0, 1 << 15, 0, false);
    dam::Cycle b2 = m2.access(1 << 20, 1 << 15, 0, false);
    EXPECT_LE(std::max(b1, b2), a + cfg.tRP + cfg.tRCD + cfg.tCL);
}

TEST(Dram, BandwidthApproachesPeakForStreaming)
{
    HbmConfig cfg;
    HbmBankModel m(cfg);
    int64_t bytes = 4 << 20;
    dam::Cycle done = m.access(0, bytes, 0, false);
    double achieved = static_cast<double>(bytes) /
                      static_cast<double>(done);
    double peak = static_cast<double>(cfg.peakBytesPerCycle());
    EXPECT_GT(achieved, 0.5 * peak);
    EXPECT_LE(achieved, peak + 1);
}

TEST(SimpleBw, SerializesAccesses)
{
    SimpleBwModel m(64, 10);
    dam::Cycle a = m.access(0, 640, 0, false);   // 10 service + 10 lat
    dam::Cycle b = m.access(0, 640, 0, false);   // queued behind a
    EXPECT_EQ(a, 20u);
    EXPECT_EQ(b, 30u);
    EXPECT_EQ(m.stats().bytesRead, 1280);
}

TEST(Scratchpad, TracksPeakAndRelease)
{
    Scratchpad sp(ScratchpadConfig{1024, 8, 0});
    StoredBuffer b1;
    b1.payloadBytes = 1000;
    uint64_t id1 = sp.alloc(std::move(b1));
    EXPECT_EQ(sp.liveAllocatedBytes(), 1024);
    StoredBuffer b2;
    b2.payloadBytes = 3000; // 3 pages
    uint64_t id2 = sp.alloc(std::move(b2));
    EXPECT_EQ(sp.liveAllocatedBytes(), 1024 + 3072);
    EXPECT_EQ(sp.liveMetaBytes(), 4 * 8);
    sp.release(id1);
    EXPECT_EQ(sp.liveAllocatedBytes(), 3072);
    EXPECT_EQ(sp.peakAllocatedBytes(), 1024 + 3072);
    sp.release(id2);
    EXPECT_EQ(sp.liveBytes(), 0);
    EXPECT_THROW(sp.release(id2), PanicError);
}

TEST(Scratchpad, CapacityEnforced)
{
    Scratchpad sp(ScratchpadConfig{1024, 8, 2048});
    StoredBuffer b;
    b.payloadBytes = 4096;
    EXPECT_THROW(sp.alloc(std::move(b)), FatalError);
}

TEST(Scratchpad, MetadataOverheadSmall)
{
    // Section 6.2: mapping metadata should be a few percent of capacity.
    ScratchpadConfig cfg;
    double overhead = static_cast<double>(cfg.pageMetaBytes) /
                      static_cast<double>(cfg.pageBytes);
    EXPECT_LT(overhead, 0.06);
}

TEST(LinearLoad, EmitsGridPerTrigger)
{
    Graph g;
    // Stored tensor 4x4 with 2x2 tiles = [2,2] grid; payload 0..15.
    std::vector<float> data(16);
    for (int i = 0; i < 16; ++i)
        data[static_cast<size_t>(i)] = static_cast<float>(i);
    OffChipTensor t = OffChipTensor::fromData(0, 4, 4, 2, 2, data, 1);
    // Trigger twice.
    auto& ref = g.add<SourceOp>("ref", encodeNested(vec({0, 0}), 1),
                                StreamShape::fixed({2}),
                                test::scalarTile());
    auto& ld = g.add<LinearOffChipLoadOp>(
        "ld", ref.out(), t, std::array<int64_t, 2>{2, 1},
        std::array<int64_t, 2>{2, 2});
    auto& sink = g.add<SinkOp>("sink", ld.out(), true);
    auto res = g.run();
    // 2 triggers x 4 tiles of 2x2x1B.
    EXPECT_EQ(sink.dataCount(), 8u);
    EXPECT_EQ(res.offChipBytes, 2 * 4 * 4);
    // Symbolic traffic matches measurement exactly (section 4.2).
    EXPECT_EQ(g.offChipTrafficExpr().eval({}), res.offChipBytes);
    // Functional check: tile (0,0) carries 0,1,4,5.
    const Tile& t00 = sink.tokens()[0].value().tile();
    EXPECT_FLOAT_EQ(t00.at(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(t00.at(1, 1), 5.0f);
    Nested out = decodeNested(sink.tokens(), 3);
    ASSERT_EQ(out.children().size(), 2u);
    EXPECT_EQ(out.children()[0].children().size(), 2u);
}

TEST(LinearLoad, RefStreamStructureLifts)
{
    Graph g;
    OffChipTensor t = OffChipTensor::shapeOnly(0, 2, 2, 2, 2);
    auto& ref = g.add<SourceOp>(
        "ref", encodeNested(list({vec({0}), vec({0, 0})}), 2),
        StreamShape({Dim::fixed(2), Dim::ragged()}), test::scalarTile());
    auto& ld = g.add<LinearOffChipLoadOp>(
        "ld", ref.out(), t, std::array<int64_t, 2>{1, 1},
        std::array<int64_t, 2>{1, 1});
    EXPECT_EQ(ld.out().rank(), 4u);
    auto& sink = g.add<SinkOp>("sink", ld.out(), true);
    (void)g.run();
    Nested out = decodeNested(sink.tokens(), 4);
    ASSERT_EQ(out.children().size(), 2u);
    EXPECT_EQ(out.children()[1].children().size(), 2u);
}

TEST(LinearStore, CountsTrafficAndCompletes)
{
    Graph g;
    Nested n = list({Nested(Value(Tile(4, 4, 2))),
                     Nested(Value(Tile(4, 4, 2)))});
    auto& src = g.add<SourceOp>("src", encodeNested(n, 1),
                                StreamShape::fixed({2}),
                                DataType::tile(4, 4));
    auto& st = g.add<LinearOffChipStoreOp>("st", src.out(), 0x1000);
    auto res = g.run();
    EXPECT_EQ(res.offChipWriteBytes, 2 * 32);
    EXPECT_EQ(st.bytesStored(), 64);
    EXPECT_GT(st.lastWrite(), 0u);
    EXPECT_EQ(g.offChipTrafficExpr().eval({}), 64);
}

TEST(RandomLoad, SingleTilePreservesRank)
{
    Graph g;
    OffChipTensor t = OffChipTensor::shapeOnly(0, 8, 2, 2, 2);
    auto& addr = g.add<SourceOp>(
        "addr", encodeNested(list({vec({0, 2}), vec({1})}), 2),
        StreamShape({Dim::fixed(2), Dim::ragged()}), test::scalarTile());
    auto& ld = g.add<RandomOffChipLoadOp>("ld", addr.out(), t,
                                          t.tileBytes());
    EXPECT_EQ(ld.out().rank(), 2u);
    auto& sink = g.add<SinkOp>("sink", ld.out(), true);
    auto res = g.run();
    EXPECT_EQ(sink.dataCount(), 3u);
    EXPECT_EQ(res.offChipBytes, 3 * t.tileBytes());
}

TEST(RandomLoad, GridModeLoadsBlocks)
{
    Graph g;
    OffChipTensor t = OffChipTensor::shapeOnly(0, 16, 4, 2, 2);
    int64_t block = 2 * t.tileBytes();
    auto& addr = g.add<SourceOp>("addr", encodeNested(vec({1, 0}), 1),
                                 StreamShape::fixed({2}),
                                 test::scalarTile());
    auto& ld = g.add<RandomOffChipLoadOp>(
        "ld", addr.out(), t, block, std::array<int64_t, 2>{1, 2}, true);
    EXPECT_EQ(ld.out().rank(), 3u);
    auto& sink = g.add<SinkOp>("sink", ld.out(), true);
    auto res = g.run();
    EXPECT_EQ(sink.dataCount(), 4u);
    EXPECT_EQ(res.offChipBytes, 4 * t.tileBytes());
}

TEST(RandomStore, AcksEveryWrite)
{
    Graph g;
    auto& addr = g.add<SourceOp>("addr", encodeNested(vec({0, 3}), 1),
                                 StreamShape::fixed({2}),
                                 test::scalarTile());
    Nested data = list({Nested(Value(Tile(2, 2, 2))),
                        Nested(Value(Tile(2, 2, 2)))});
    auto& wd = g.add<SourceOp>("wd", encodeNested(data, 1),
                               StreamShape::fixed({2}),
                               DataType::tile(2, 2));
    auto& st = g.add<RandomOffChipStoreOp>("st", addr.out(), wd.out(),
                                           0x2000, 8);
    auto& sink = g.add<SinkOp>("sink", st.ackOut(), true);
    auto res = g.run();
    EXPECT_EQ(sink.dataCount(), 2u);
    EXPECT_EQ(res.offChipWriteBytes, 16);
}

TEST(Bufferize, GroupsByRankAndAllocates)
{
    Graph g;
    Nested n = list({vec({1, 2}), vec({3})});
    auto& src = g.add<SourceOp>("src", encodeNested(n, 2),
                                StreamShape({Dim::fixed(2), Dim::ragged()}),
                                test::scalarTile());
    auto& buf = g.add<BufferizeOp>("buf", src.out(), 1);
    EXPECT_EQ(buf.out().rank(), 1u);
    EXPECT_TRUE(buf.out().dtype.isBufferRef());
    auto& sink = g.add<SinkOp>("sink", buf.out(), true);
    (void)g.run();
    EXPECT_EQ(sink.dataCount(), 2u);
    EXPECT_EQ(g.scratchpad().numAllocs(), 2u);
    const auto& b0 = g.scratchpad().get(
        sink.tokens()[0].value().bufferRef().id);
    EXPECT_EQ(b0.gridDims, (std::vector<int64_t>{2}));
}

TEST(BufferizeStreamify, LinearReplayRoundTrip)
{
    Graph g;
    Nested n = list({vec({1, 2}), vec({3, 4, 5})});
    auto& src = g.add<SourceOp>("src", encodeNested(n, 2),
                                StreamShape({Dim::fixed(2), Dim::ragged()}),
                                test::scalarTile());
    auto& buf = g.add<BufferizeOp>("buf", src.out(), 1);
    // One pass per buffer (c=0): identity round trip.
    auto& ref = g.add<SourceOp>("ref", encodeNested(vec({0, 0}), 1),
                                StreamShape::fixed({2}),
                                test::scalarTile());
    auto& sf = g.add<StreamifyOp>("sf", buf.out(), ref.out(), 0);
    auto& sink = g.add<SinkOp>("sink", sf.out(), true);
    (void)g.run();
    Nested out = decodeNested(sink.tokens(), 2);
    EXPECT_EQ(test::leavesOf(out), (std::vector<float>{1, 2, 3, 4, 5}));
    // Buffers released after use.
    EXPECT_EQ(g.scratchpad().numLive(), 0u);
    EXPECT_GT(g.scratchpad().peakAllocatedBytes(), 0);
}

TEST(BufferizeStreamify, DynamicRereadCount)
{
    Graph g;
    // One buffer of 3 values, replayed a data-dependent 4 times.
    Nested n = list({vec({1, 2, 3})});
    auto& src = g.add<SourceOp>("src", encodeNested(n, 2),
                                StreamShape({Dim::fixed(1), Dim::ragged()}),
                                test::scalarTile());
    auto& buf = g.add<BufferizeOp>("buf", src.out(), 1);
    auto& ref = g.add<SourceOp>(
        "ref", encodeNested(list({vec({0, 0, 0, 0})}), 2),
        StreamShape({Dim::fixed(1), Dim::ragged()}), test::scalarTile());
    auto& sf = g.add<StreamifyOp>("sf", buf.out(), ref.out(), 1);
    auto& sink = g.add<SinkOp>("sink", sf.out(), true);
    (void)g.run();
    EXPECT_EQ(sink.dataCount(), 12u);
    Nested out = decodeNested(sink.tokens(), 3);
    ASSERT_EQ(out.children().size(), 1u);
    EXPECT_EQ(out.children()[0].children().size(), 4u);
}

TEST(BufferizeStreamify, AffineReadOverGrid)
{
    Graph g;
    // Buffer a [2,2] grid of scalars, then read it column-major via
    // stride (1,2) shape (2,2).
    Nested n = list({list({vec({1, 2}), vec({3, 4})})});
    auto& src = g.add<SourceOp>("src", encodeNested(n, 3),
                                StreamShape::fixed({1, 2, 2}),
                                test::scalarTile());
    auto& buf = g.add<BufferizeOp>("buf", src.out(), 2);
    auto& ref = g.add<SourceOp>("ref", encodeNested(vec({0}), 1),
                                StreamShape::fixed({1}),
                                test::scalarTile());
    StreamifyAffine aff;
    aff.stride = {1, 2};
    aff.outShape = {2, 2};
    auto& sf = g.add<StreamifyOp>("sf", buf.out(), ref.out(), 0, aff);
    auto& sink = g.add<SinkOp>("sink", sf.out(), true);
    (void)g.run();
    Nested out = decodeNested(sink.tokens(), 3);
    EXPECT_EQ(test::leavesOf(out), (std::vector<float>{1, 3, 2, 4}));
}

TEST(Metrics, BufferizeOnChipExpression)
{
    Graph g;
    auto& src = g.add<SourceOp>("src",
                                encodeNested(list({vec({1, 2})}), 2),
                                StreamShape::fixed({1, 2}),
                                DataType::tile(4, 4));
    g.add<BufferizeOp>("buf", src.out(), 1);
    // |in dtype| + ||buffer|| * |in dtype| * 2 = 32 + 2*32*2 = 160.
    EXPECT_EQ(g.onChipMemExpr().eval({}), 32 + 2 * 32 * 2);
}

} // namespace
} // namespace step
