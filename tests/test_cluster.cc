/**
 * @file
 * Sharded serving-cluster tests. The correctness bar for the cluster is
 * thread-count independence: per-replica simulations are shared-nothing
 * and merging is ordered by replica index, so the aggregate must be
 * bit-identical whether the replicas run on 1 worker thread or N. On
 * top of that: routing-policy behavior (least-queued beats round-robin
 * on a skewed trace, hash affinity is sticky), raw-sample percentile
 * merging, and per-replica seed decorrelation.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "runtime/cluster.hh"
#include "support/rng.hh"
#include "support/stats.hh"

using namespace step;
using namespace step::runtime;

namespace {

TraceConfig
clusterTrace(int64_t n)
{
    TraceConfig tc;
    tc.numRequests = n;
    // Roughly 4x a single engine's bursty test load: the point of the
    // cluster is serving traffic one replica cannot.
    tc.arrivalsPerKcycle = 0.0045;
    tc.burstPeriod = 16'000'000;
    tc.burstDuty = 0.3;
    tc.burstFactor = 4.0;
    return tc;
}

/** Heavy-tailed prompt/output lengths: equal request *counts* carry very
 *  unequal work, which is what separates work-aware routing from
 *  round-robin. */
TraceConfig
skewedTrace(int64_t n)
{
    TraceConfig tc = clusterTrace(n);
    tc.promptSigma = 1.3;
    tc.promptMean = 160;
    tc.outputSigma = 1.0;
    return tc;
}

void
expectSummariesBitIdentical(const ServingSummary& a, const ServingSummary& b)
{
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.generatedTokens, b.generatedTokens);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.sloCompliant, b.sloCompliant);
    EXPECT_EQ(a.sloGoodTokens, b.sloGoodTokens);
    // EXPECT_EQ on doubles is exact comparison — bit-identity, not
    // almost-equal: the merge must not depend on worker scheduling.
    EXPECT_EQ(a.ttftP50, b.ttftP50);
    EXPECT_EQ(a.ttftP99, b.ttftP99);
    EXPECT_EQ(a.ttftMean, b.ttftMean);
    EXPECT_EQ(a.tpotP50, b.tpotP50);
    EXPECT_EQ(a.tpotP99, b.tpotP99);
    EXPECT_EQ(a.tpotMean, b.tpotMean);
    EXPECT_EQ(a.throughputTokensPerKcycle, b.throughputTokensPerKcycle);
    EXPECT_EQ(a.goodputTokensPerKcycle, b.goodputTokensPerKcycle);
    EXPECT_EQ(a.computeUtilization, b.computeUtilization);
    EXPECT_EQ(a.ttftSamples, b.ttftSamples);
    EXPECT_EQ(a.tpotSamples, b.tpotSamples);
}

} // namespace

TEST(Cluster, AggregateBitIdenticalAcrossWorkerThreadCounts)
{
    TraceConfig tc = clusterTrace(120);
    auto base = generateTrace(tc, 5);
    QueueDepthPolicy policy;

    auto run_with = [&](int64_t threads, RouteKind routing) {
        auto reqs = base;
        ClusterConfig cc;
        cc.replicas = 4;
        cc.threads = threads;
        cc.routing = routing;
        ServingCluster cluster(cc, policy);
        return cluster.run(reqs);
    };

    for (RouteKind routing :
         {RouteKind::RoundRobin, RouteKind::LeastQueued}) {
        SCOPED_TRACE(routeKindName(routing));
        ClusterResult serial = run_with(1, routing);
        ClusterResult two = run_with(2, routing);
        ClusterResult four = run_with(4, routing);

        EXPECT_EQ(serial.aggregate.completed, 120);
        expectSummariesBitIdentical(serial.aggregate, two.aggregate);
        expectSummariesBitIdentical(serial.aggregate, four.aggregate);
        EXPECT_EQ(serial.totalIterations, four.totalIterations);
        EXPECT_EQ(serial.timeline.span(), four.timeline.span());
        EXPECT_EQ(serial.timeline.totalUsefulFlops(),
                  four.timeline.totalUsefulFlops());
        for (size_t r = 0; r < serial.replicas.size(); ++r) {
            EXPECT_EQ(serial.replicas[r].seed, four.replicas[r].seed);
            EXPECT_EQ(serial.replicas[r].assignedRequests,
                      four.replicas[r].assignedRequests);
            EXPECT_EQ(serial.replicas[r].result.summary.makespan,
                      four.replicas[r].result.summary.makespan);
        }
    }
}

TEST(Cluster, CompletesEveryRequestAndReflectsStateToCaller)
{
    TraceConfig tc = clusterTrace(96);
    auto reqs = generateTrace(tc, 11);
    QueueDepthPolicy policy;
    ClusterConfig cc;
    cc.replicas = 3;
    ServingCluster cluster(cc, policy);
    ClusterResult r = cluster.run(reqs);

    EXPECT_EQ(r.aggregate.completed, 96);
    int64_t assigned = 0;
    for (const ReplicaResult& rr : r.replicas)
        assigned += rr.assignedRequests;
    EXPECT_EQ(assigned, 96);
    for (const Request& req : reqs) {
        EXPECT_TRUE(req.done());
        EXPECT_EQ(req.generated, req.outputLen);
        EXPECT_GT(req.firstTokenAt, req.arrival);
    }
    // Aggregate spans the slowest replica; utilization is against the
    // cluster's full provisioned bandwidth.
    dam::Cycle max_span = 0;
    for (const ReplicaResult& rr : r.replicas)
        max_span = std::max(max_span, rr.result.summary.makespan);
    EXPECT_EQ(r.aggregate.makespan, max_span);
    EXPECT_GT(r.aggregate.computeUtilization, 0.0);
    EXPECT_LE(r.aggregate.computeUtilization, 1.0);
}

TEST(Cluster, LeastQueuedBeatsRoundRobinGoodputOnSkewedTrace)
{
    TraceConfig tc = skewedTrace(160);
    auto base = generateTrace(tc, 21);
    QueueDepthPolicy policy;

    auto goodput = [&](RouteKind routing) {
        auto reqs = base;
        ClusterConfig cc;
        cc.replicas = 4;
        cc.routing = routing;
        ServingCluster cluster(cc, policy);
        return cluster.run(reqs).aggregate.goodputTokensPerKcycle;
    };

    double rr = goodput(RouteKind::RoundRobin);
    double lq = goodput(RouteKind::LeastQueued);
    // Work-aware routing strictly beats count-fair routing when equal
    // counts mean unequal work — deterministically, since everything is
    // seeded.
    EXPECT_GT(lq, rr);
}

TEST(Cluster, PercentileMergeMatchesSingleVectorRecompute)
{
    // Hand-built replica summaries whose raw samples are known: the
    // merged percentile must equal a recompute over the concatenated
    // vector, not any combination of the per-replica percentiles.
    ServingSummary a;
    a.ttftSamples = {100, 200, 600};
    a.tpotSamples = {200, 200};
    a.completed = 3;
    a.makespan = 1100;
    ServingSummary b;
    b.ttftSamples = {50, 900, 1000, 1200};
    b.tpotSamples = {300};
    b.completed = 4;
    b.makespan = 900;

    ServingSummary m = mergeSummaries({a, b});
    std::vector<double> all_ttft = {100, 200, 600, 50, 900, 1000, 1200};
    std::vector<double> all_tpot = {200, 200, 300};
    EXPECT_EQ(m.ttftSamples, all_ttft);
    EXPECT_DOUBLE_EQ(m.ttftP50, percentile(all_ttft, 50.0));
    EXPECT_DOUBLE_EQ(m.ttftP99, percentile(all_ttft, 99.0));
    EXPECT_DOUBLE_EQ(m.ttftMean, mean(all_ttft));
    EXPECT_DOUBLE_EQ(m.tpotP50, percentile(all_tpot, 50.0));
    EXPECT_DOUBLE_EQ(m.tpotP99, percentile(all_tpot, 99.0));
    EXPECT_EQ(m.makespan, 1100u);
    EXPECT_EQ(m.completed, 7);

    // The broken alternative this API exists to rule out: percentiles
    // of per-replica percentiles. Here the p50 of the two replica p50s
    // is 200, while the true merged p50 is 600.
    double p50_of_p50s = percentile({percentile(a.ttftSamples, 50.0),
                                     percentile(b.ttftSamples, 50.0)},
                                    50.0);
    EXPECT_DOUBLE_EQ(m.ttftP50, 600.0);
    EXPECT_DOUBLE_EQ(p50_of_p50s, 200.0);
    EXPECT_NE(m.ttftP50, p50_of_p50s);
}

TEST(Cluster, MergeHandlesZeroRequestReplicaWithoutNaN)
{
    // A replica that was assigned nothing contributes empty sample
    // vectors and a zero makespan; the merge must stay finite (no 0/0
    // percentiles or rates) and reproduce the busy replica's stats.
    ServingSummary busy;
    busy.completed = 2;
    busy.generatedTokens = 8;
    busy.sloCompliant = 2;
    busy.sloGoodTokens = 8;
    busy.makespan = 1000;
    busy.ttftSamples = {100, 300};
    busy.tpotSamples = {50, 70};
    ServingSummary idle; // default: zero requests, empty samples

    for (const auto& parts :
         {std::vector<ServingSummary>{busy, idle},
          std::vector<ServingSummary>{idle, busy},
          std::vector<ServingSummary>{idle, idle}}) {
        ServingSummary m = mergeSummaries(parts);
        for (double v : {m.ttftP50, m.ttftP99, m.ttftMean, m.tpotP50,
                         m.tpotP99, m.tpotMean, m.prefixHitRate,
                         m.prefillTokensSavedFrac,
                         m.throughputTokensPerKcycle,
                         m.goodputTokensPerKcycle}) {
            EXPECT_TRUE(std::isfinite(v));
        }
    }
    ServingSummary m = mergeSummaries({busy, idle});
    EXPECT_EQ(m.completed, 2);
    EXPECT_DOUBLE_EQ(m.ttftP50, 100.0);
    EXPECT_DOUBLE_EQ(m.ttftP99, 300.0);
    EXPECT_DOUBLE_EQ(m.tpotMean, 60.0);
    EXPECT_EQ(m.makespan, 1000u);
    ServingSummary empty = mergeSummaries({idle, idle});
    EXPECT_EQ(empty.completed, 0);
    EXPECT_DOUBLE_EQ(empty.ttftP50, 0.0);
    EXPECT_DOUBLE_EQ(empty.throughputTokensPerKcycle, 0.0);
}

TEST(Cluster, MergeHandlesReplicaWithNoDecodedTokensWithoutNaN)
{
    // Single-output-token requests produce TTFT samples but no TPOT
    // samples; the merged TPOT percentiles must come from the replicas
    // that decoded, not degenerate to NaN.
    ServingSummary no_decode;
    no_decode.completed = 3;
    no_decode.generatedTokens = 3;
    no_decode.makespan = 500;
    no_decode.ttftSamples = {10, 20, 30};
    ServingSummary decodes;
    decodes.completed = 1;
    decodes.generatedTokens = 6;
    decodes.makespan = 800;
    decodes.ttftSamples = {40};
    decodes.tpotSamples = {90};

    ServingSummary m = mergeSummaries({no_decode, decodes});
    EXPECT_TRUE(std::isfinite(m.tpotP50));
    EXPECT_TRUE(std::isfinite(m.tpotP99));
    EXPECT_TRUE(std::isfinite(m.tpotMean));
    EXPECT_DOUBLE_EQ(m.tpotP50, 90.0);
    EXPECT_DOUBLE_EQ(m.tpotP99, 90.0);
    EXPECT_DOUBLE_EQ(m.ttftP50, 20.0);
    EXPECT_EQ(m.completed, 4);
}

TEST(Cluster, MoreReplicasThanRequestsLeavesIdleReplicasWellFormed)
{
    // End-to-end version of the zero-request edge case: 4 replicas, 3
    // requests, round-robin — replica 3 simulates an empty shard.
    TraceConfig tc = clusterTrace(3);
    auto reqs = generateTrace(tc, 19);
    QueueDepthPolicy policy;
    ClusterConfig cc;
    cc.replicas = 4;
    cc.routing = RouteKind::RoundRobin;
    ServingCluster cluster(cc, policy);
    ClusterResult r = cluster.run(reqs);

    EXPECT_EQ(r.aggregate.completed, 3);
    EXPECT_EQ(r.replicas[3].assignedRequests, 0);
    EXPECT_EQ(r.replicas[3].result.summary.completed, 0);
    EXPECT_EQ(r.replicas[3].result.summary.makespan, 0u);
    for (double v :
         {r.aggregate.ttftP50, r.aggregate.ttftP99, r.aggregate.tpotP50,
          r.aggregate.tpotP99, r.aggregate.computeUtilization}) {
        EXPECT_TRUE(std::isfinite(v));
    }
    for (const Request& req : reqs)
        EXPECT_TRUE(req.done());
}

TEST(Cluster, MergedSamplesEqualUnionOfReplicaSamples)
{
    TraceConfig tc = clusterTrace(80);
    auto reqs = generateTrace(tc, 31);
    QueueDepthPolicy policy;
    ClusterConfig cc;
    cc.replicas = 4;
    cc.routing = RouteKind::LeastQueued;
    ServingCluster cluster(cc, policy);
    ClusterResult r = cluster.run(reqs);

    std::vector<double> union_ttft;
    for (const ReplicaResult& rr : r.replicas)
        union_ttft.insert(union_ttft.end(),
                          rr.result.summary.ttftSamples.begin(),
                          rr.result.summary.ttftSamples.end());
    EXPECT_EQ(r.aggregate.ttftSamples, union_ttft);
    EXPECT_DOUBLE_EQ(r.aggregate.ttftP99, percentile(union_ttft, 99.0));
    EXPECT_DOUBLE_EQ(r.aggregate.ttftP50, percentile(union_ttft, 50.0));
}

TEST(Cluster, HashAffinityRoutesSameIdToSameReplica)
{
    QueueDepthPolicy policy;
    ClusterConfig cc;
    cc.replicas = 5;
    cc.routing = RouteKind::HashAffinity;
    ServingCluster cluster(cc, policy);

    TraceConfig tc = clusterTrace(60);
    auto a = generateTrace(tc, 3);
    // A different trace with the same ids (generateTrace numbers them
    // 0..n-1): the mapping must depend on the id alone.
    TraceConfig tc2 = skewedTrace(60);
    auto b = generateTrace(tc2, 77);

    auto route_a = cluster.routeTrace(a);
    auto route_b = cluster.routeTrace(b);
    ASSERT_EQ(route_a.size(), route_b.size());
    for (size_t i = 0; i < route_a.size(); ++i) {
        EXPECT_EQ(a[i].id, b[i].id);
        EXPECT_EQ(route_a[i], route_b[i]) << "request id " << a[i].id;
    }
    // ... and it actually spreads load rather than collapsing onto one
    // replica.
    std::set<int64_t> used(route_a.begin(), route_a.end());
    EXPECT_GT(used.size(), 1u);
}

TEST(Cluster, RoundRobinSplitsCountsEvenly)
{
    QueueDepthPolicy policy;
    ClusterConfig cc;
    cc.replicas = 4;
    cc.routing = RouteKind::RoundRobin;
    ServingCluster cluster(cc, policy);
    TraceConfig tc = clusterTrace(103);
    auto reqs = generateTrace(tc, 13);
    auto route = cluster.routeTrace(reqs);
    std::vector<int64_t> counts(4, 0);
    for (int64_t r : route)
        ++counts[static_cast<size_t>(r)];
    for (int64_t c : counts) {
        EXPECT_GE(c, 103 / 4);
        EXPECT_LE(c, 103 / 4 + 1);
    }
}

TEST(Cluster, PerReplicaSeedsDeriveFromReplicaIdAndDecorrelate)
{
    TraceConfig tc = clusterTrace(40);
    auto reqs = generateTrace(tc, 17);
    QueueDepthPolicy policy;
    ClusterConfig cc;
    cc.replicas = 4;
    ServingCluster cluster(cc, policy);
    ClusterResult r = cluster.run(reqs);

    std::set<uint64_t> seeds;
    for (const ReplicaResult& rr : r.replicas) {
        EXPECT_EQ(rr.seed, deriveSeed(static_cast<uint64_t>(rr.replica)));
        seeds.insert(rr.seed);
    }
    EXPECT_EQ(seeds.size(), 4u); // decorrelated, not copies of the base
}

// ---- heterogeneous replica capacity ------------------------------------

TEST(Cluster, MixedFleetBwScalesShiftLoadTowardFastReplicas)
{
    TraceConfig tc = skewedTrace(96);
    QueueDepthPolicy policy;

    ClusterConfig uniform;
    uniform.replicas = 4;
    uniform.routing = RouteKind::LeastQueued;

    ClusterConfig mixed = uniform;
    mixed.bwScales = {2.0, 2.0, 0.5, 0.5};

    auto reqs = generateTrace(tc, deriveSeed(2));
    const std::vector<int64_t> ua =
        ServingCluster(uniform, policy).routeTrace(reqs);
    const std::vector<int64_t> ma =
        ServingCluster(mixed, policy).routeTrace(reqs);
    ASSERT_EQ(ua.size(), reqs.size());
    ASSERT_EQ(ma.size(), reqs.size());

    auto tokens_on = [&](const std::vector<int64_t>& a, int64_t lo,
                         int64_t hi) {
        int64_t t = 0;
        for (size_t i = 0; i < reqs.size(); ++i)
            if (a[i] >= lo && a[i] <= hi)
                t += reqs[i].promptLen + reqs[i].outputLen;
        return t;
    };
    // The shadow router models per-replica service bandwidth, so the
    // 2x replicas drain faster and absorb more of the token stream
    // than the 0.5x pair — and more than they get in a uniform fleet.
    EXPECT_GT(tokens_on(ma, 0, 1), tokens_on(ma, 2, 3));
    EXPECT_GT(tokens_on(ma, 0, 1), tokens_on(ua, 0, 1));
}

TEST(Cluster, MixedFleetRunsThreadInvariantAndUnitScalesAreIdentity)
{
    TraceConfig tc = clusterTrace(64);
    QueueDepthPolicy policy;

    auto run_with = [&](std::vector<double> scales, int64_t threads) {
        ClusterConfig cc;
        cc.replicas = 4;
        cc.threads = threads;
        cc.routing = RouteKind::LeastQueued;
        cc.bwScales = std::move(scales);
        auto reqs = generateTrace(tc, deriveSeed(2));
        return ServingCluster(cc, policy).run(reqs).aggregate;
    };

    // All-unit scales are the documented identity: bit-identical to a
    // scale-less fleet, not just close.
    const ServingSummary plain = run_with({}, 1);
    const ServingSummary ones = run_with({1.0, 1.0, 1.0, 1.0}, 1);
    expectSummariesBitIdentical(plain, ones);

    // A genuinely mixed fleet still merges bit-identically whatever
    // the worker-thread count, and slower hardware shows up in the
    // makespan-level numbers rather than breaking accounting.
    const ServingSummary m1 = run_with({2.0, 1.0, 0.5, 0.25}, 1);
    const ServingSummary m4 = run_with({2.0, 1.0, 0.5, 0.25}, 4);
    expectSummariesBitIdentical(m1, m4);
    EXPECT_EQ(m1.completed, plain.completed);

    // Config validation: the scale vector must match the fleet size
    // and stay positive.
    ClusterConfig bad;
    bad.replicas = 4;
    bad.bwScales = {1.0, 1.0};
    EXPECT_THROW(ServingCluster(bad, policy), PanicError);
    bad.bwScales = {1.0, 1.0, 0.0, 1.0};
    EXPECT_THROW(ServingCluster(bad, policy), PanicError);
}
