/**
 * @file
 * Observability-layer tests. The correctness bar for tracing is the
 * determinism contract: exported bytes are bit-identical across seeded
 * replays and across cluster worker-thread counts, and attaching a sink
 * never changes what the simulation computes. On top of that: name
 * interning, counter change-sampling and merge semantics, ring-buffer
 * bounding, span balance and per-track monotonicity, request-lifecycle
 * ordering, JSON escaping, the per-replica peak-occupancy merge fix,
 * and the UtilizationTimeline accessors.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/utilization.hh"
#include "obs/export.hh"
#include "obs/json.hh"
#include "obs/sink.hh"
#include "runtime/cluster.hh"
#include "runtime/engine.hh"
#include "support/rng.hh"

using namespace step;
using namespace step::obs;
using namespace step::runtime;

namespace {

TraceConfig
burstyTrace(int64_t n)
{
    TraceConfig tc;
    tc.numRequests = n;
    tc.arrivalsPerKcycle = 0.0012;
    tc.burstPeriod = 16'000'000;
    tc.burstDuty = 0.3;
    tc.burstFactor = 4.0;
    return tc;
}

EngineResult
runTraced(TraceSink* sink, int64_t n)
{
    EngineConfig ec;
    ec.seed = deriveSeed(1);
    QueueDepthPolicy policy;
    auto reqs = generateTrace(burstyTrace(n), deriveSeed(2));
    ServingEngine engine(ec, policy);
    if (sink)
        engine.attachTrace(sink);
    return engine.run(reqs);
}

std::string
exportChrome(const TraceSink& sink)
{
    std::ostringstream os;
    writeChromeTrace(os, {&sink});
    return os.str();
}

std::string
exportJsonl(const TraceSink& sink)
{
    std::ostringstream os;
    writeRequestJsonl(os, {&sink});
    return os.str();
}

} // namespace

// ---- building blocks --------------------------------------------------

TEST(ObsTrace, LevelParseAndNamesRoundTrip)
{
    for (TraceLevel l : {TraceLevel::Off, TraceLevel::Request,
                         TraceLevel::Op, TraceLevel::Full}) {
        TraceLevel parsed = TraceLevel::Off;
        EXPECT_TRUE(parseTraceLevel(traceLevelName(l), &parsed));
        EXPECT_EQ(parsed, l);
    }
    TraceLevel parsed = TraceLevel::Off;
    EXPECT_FALSE(parseTraceLevel("verbose", &parsed));
    EXPECT_LT(TraceLevel::Off, TraceLevel::Request);
    EXPECT_LT(TraceLevel::Request, TraceLevel::Op);
    EXPECT_LT(TraceLevel::Op, TraceLevel::Full);
}

TEST(ObsTrace, InterningIsStableAndIdempotent)
{
    TraceSink sink;
    const uint32_t a = sink.intern("moe.gather");
    const uint32_t b = sink.intern("attn.disp");
    EXPECT_NE(a, b);
    EXPECT_EQ(a, sink.intern("moe.gather"));
    // Force table growth, then confirm early ids still resolve (the
    // interner must not hand out views that dangle on rehash).
    for (int i = 0; i < 300; ++i)
        sink.intern("op." + std::to_string(i));
    EXPECT_EQ(sink.name(a), "moe.gather");
    EXPECT_EQ(sink.name(b), "attn.disp");
}

TEST(ObsTrace, JsonEscaping)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb\tc"), "a\\nb\\tc");
    EXPECT_EQ(jsonEscape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(ObsCounters, RegistrationIsIdempotentAndTyped)
{
    CounterRegistry reg;
    auto h1 = reg.monotonic("tokens");
    auto h2 = reg.gauge("queue");
    EXPECT_EQ(h1, reg.monotonic("tokens"));
    EXPECT_NE(h1, h2);
    reg.add(h1, 5);
    reg.add(h1, 7);
    reg.set(h2, 3);
    EXPECT_EQ(reg.value(h1), 12);
    EXPECT_EQ(reg.value(h2), 3);

    auto snap = reg.snapshot();
    ASSERT_EQ(snap.size(), 2u);
    EXPECT_EQ(snap[0].name, "tokens");
    EXPECT_TRUE(snap[0].monotonic);
    EXPECT_EQ(snap[1].name, "queue");
    EXPECT_FALSE(snap[1].monotonic);
}

TEST(ObsCounters, ConsumeChangedSamplesOnlyTransitions)
{
    CounterRegistry reg;
    auto h = reg.gauge("depth");
    EXPECT_TRUE(reg.consumeChanged(h)); // initial value is a transition
    EXPECT_FALSE(reg.consumeChanged(h));
    reg.set(h, 4);
    EXPECT_TRUE(reg.consumeChanged(h));
    EXPECT_FALSE(reg.consumeChanged(h));
    reg.set(h, 4); // unchanged value: no sample
    EXPECT_FALSE(reg.consumeChanged(h));
}

TEST(ObsTrace, RingBoundsEventCountAndCountsDrops)
{
    TraceOptions opts;
    opts.level = TraceLevel::Request;
    opts.ringCapacity = 8;
    TraceSink sink(opts);
    for (int i = 0; i < 50; ++i)
        sink.reqFirstToken(i, 0, static_cast<dam::Cycle>(i) * 10);
    EXPECT_EQ(sink.eventCount(), 8u);
    EXPECT_EQ(sink.droppedEvents(), 42u);
    // The survivors are the newest events, oldest-first.
    int64_t expect_id = 42;
    dam::Cycle last = 0;
    sink.forEachEvent([&](const TraceEvent& e) {
        EXPECT_EQ(e.arg0, expect_id++);
        EXPECT_GE(e.ts, last);
        last = e.ts;
    });
    EXPECT_EQ(expect_id, 50);
}

// ---- engine integration ------------------------------------------------

TEST(ObsEngine, AttachingTraceDoesNotChangeTheSimulation)
{
    EngineResult plain = runTraced(nullptr, 40);
    TraceOptions opts;
    opts.level = TraceLevel::Full;
    TraceSink sink(opts);
    EngineResult traced = runTraced(&sink, 40);

    EXPECT_EQ(plain.iterations, traced.iterations);
    EXPECT_EQ(plain.summary.completed, traced.summary.completed);
    EXPECT_EQ(plain.summary.generatedTokens,
              traced.summary.generatedTokens);
    EXPECT_EQ(plain.summary.makespan, traced.summary.makespan);
    EXPECT_EQ(plain.summary.ttftP99, traced.summary.ttftP99);
    EXPECT_EQ(plain.summary.tpotP99, traced.summary.tpotP99);
}

TEST(ObsEngine, RequestLifecycleIsCompleteAndOrdered)
{
    TraceOptions opts;
    opts.level = TraceLevel::Request;
    TraceSink sink(opts);
    EngineResult r = runTraced(&sink, 40);

    ASSERT_EQ(sink.requests().size(), 40u);
    for (const RequestLifecycle& rec : sink.requests()) {
        EXPECT_TRUE(rec.admitted);
        EXPECT_TRUE(rec.sawFirstToken);
        EXPECT_TRUE(rec.finished);
        EXPECT_LE(rec.arrival, rec.admittedAt);
        EXPECT_LE(rec.admittedAt, rec.firstTokenAt);
        EXPECT_LE(rec.firstTokenAt, rec.finishedAt);
        EXPECT_GT(rec.promptLen, 0);
    }
    EXPECT_EQ(static_cast<int64_t>(sink.requests().size()),
              r.summary.completed);
}

TEST(ObsEngine, CountersAreSnapshottedIntoTheSummary)
{
    TraceOptions opts;
    opts.level = TraceLevel::Request;
    TraceSink sink(opts);
    EngineResult r = runTraced(&sink, 30);

    ASSERT_FALSE(r.summary.counters.empty());
    auto find = [&](const std::string& name) -> const CounterSample* {
        for (const CounterSample& c : r.summary.counters)
            if (c.name == name)
                return &c;
        return nullptr;
    };
    const CounterSample* iters = find("iterations");
    ASSERT_NE(iters, nullptr);
    EXPECT_EQ(iters->value, r.iterations);
    const CounterSample* gen = find("generated_tokens");
    ASSERT_NE(gen, nullptr);
    EXPECT_EQ(gen->value, r.summary.generatedTokens);
    const CounterSample* depth = find("queue_depth");
    ASSERT_NE(depth, nullptr);
    EXPECT_FALSE(depth->monotonic);
    // Drained at the end of the run.
    EXPECT_EQ(depth->value, 0);
}

TEST(ObsEngine, SchedulerSpansBalanceAndStayMonotonePerTrack)
{
    TraceOptions opts;
    opts.level = TraceLevel::Full;
    TraceSink sink(opts);
    runTraced(&sink, 12);

    EXPECT_GT(sink.attributedSwitches(), 0u);
    int64_t depth = 0;
    uint64_t begins = 0, ends = 0, completes = 0;
    dam::Cycle last[3] = {0, 0, 0};
    sink.forEachEvent([&](const TraceEvent& e) {
        if (e.kind != EventKind::Complete) {
            EXPECT_GE(e.ts, last[e.tid]);
            last[e.tid] = e.ts;
        }
        switch (e.kind) {
          case EventKind::SpanBegin:
            ++begins;
            ++depth;
            break;
          case EventKind::SpanEnd:
            ++ends;
            --depth;
            EXPECT_GE(depth, 0);
            break;
          case EventKind::Complete:
            ++completes;
            break;
          default:
            break;
        }
    });
    EXPECT_EQ(begins, ends);
    EXPECT_EQ(depth, 0);
    EXPECT_GT(completes, 0u); // per-op lifetime X spans
    // Every resume recorded in the attribution histogram.
    uint64_t attributed = 0;
    for (const SwitchAttribution& a : sink.switchAttribution())
        attributed += a.switches;
    EXPECT_EQ(attributed, sink.attributedSwitches());
    EXPECT_EQ(attributed, begins);
}

TEST(ObsEngine, ExportIsBitIdenticalAcrossSeededReplays)
{
    TraceOptions opts;
    opts.level = TraceLevel::Full;
    TraceSink a(opts), b(opts);
    runTraced(&a, 16);
    runTraced(&b, 16);
    EXPECT_EQ(exportChrome(a), exportChrome(b));
    EXPECT_EQ(exportJsonl(a), exportJsonl(b));
}

TEST(ObsEngine, ChromeExportBalancesSpansEvenAfterRingDrops)
{
    TraceOptions opts;
    opts.level = TraceLevel::Full;
    opts.ringCapacity = 64; // force heavy wrapping
    TraceSink sink(opts);
    runTraced(&sink, 12);
    EXPECT_GT(sink.droppedEvents(), 0u);

    const std::string json = exportChrome(sink);
    size_t b_count = 0, e_count = 0, pos = 0;
    while ((pos = json.find("\"ph\":\"B\"", pos)) != std::string::npos)
        ++b_count, ++pos;
    pos = 0;
    while ((pos = json.find("\"ph\":\"E\"", pos)) != std::string::npos)
        ++e_count, ++pos;
    EXPECT_EQ(b_count, e_count);
    EXPECT_NE(json.find("trace.ring_dropped_events"), std::string::npos);
}

// ---- cluster integration ----------------------------------------------

TEST(ObsCluster, TraceBytesIndependentOfWorkerThreadCount)
{
    TraceConfig tc = burstyTrace(60);
    tc.arrivalsPerKcycle = 0.0045;
    QueueDepthPolicy policy;

    std::string chrome[2], jsonl[2];
    for (int i = 0; i < 2; ++i) {
        ClusterConfig cc;
        cc.replicas = 3;
        cc.threads = i == 0 ? 1 : 3;
        cc.trace.level = TraceLevel::Full;
        auto reqs = generateTrace(tc, deriveSeed(2));
        ServingCluster cluster(cc, policy);
        ClusterResult r = cluster.run(reqs);
        ASSERT_EQ(r.traces.size(), 3u);
        std::ostringstream cos, jos;
        writeChromeTrace(cos, r.traceViews());
        writeRequestJsonl(jos, r.traceViews());
        chrome[i] = cos.str();
        jsonl[i] = jos.str();
    }
    EXPECT_EQ(chrome[0], chrome[1]);
    EXPECT_EQ(jsonl[0], jsonl[1]);
}

TEST(ObsCluster, TracingOffProducesNoSinks)
{
    ClusterConfig cc;
    cc.replicas = 2;
    QueueDepthPolicy policy;
    auto reqs = generateTrace(burstyTrace(20), deriveSeed(2));
    ServingCluster cluster(cc, policy);
    ClusterResult r = cluster.run(reqs);
    EXPECT_TRUE(r.traces.empty());
    EXPECT_TRUE(r.aggregate.counters.empty());
}

// ---- summary merge satellites -----------------------------------------

TEST(ObsMerge, PeakOccupancyReportsBothMaxReplicaAndSummedBound)
{
    ServingSummary a, b;
    a.prefixPeakOccupancyTokens = 100; // leaf: maxReplica still 0
    b.prefixPeakOccupancyTokens = 60;
    ServingSummary m = mergeSummaries({a, b});
    EXPECT_EQ(m.prefixPeakOccupancyTokens, 160);
    EXPECT_EQ(m.prefixPeakOccupancyMaxReplica, 100);

    // A merge of merges carries the busiest replica, not a summed bound.
    ServingSummary c;
    c.prefixPeakOccupancyTokens = 90;
    ServingSummary m2 = mergeSummaries({m, c});
    EXPECT_EQ(m2.prefixPeakOccupancyTokens, 250);
    EXPECT_EQ(m2.prefixPeakOccupancyMaxReplica, 100);
}

TEST(ObsMerge, CountersSumMonotonicAndMaxGauges)
{
    ServingSummary a, b;
    a.counters = {{"generated_tokens", 100, true}, {"queue_depth", 7,
                                                    false}};
    b.counters = {{"generated_tokens", 40, true},
                  {"queue_depth", 11, false},
                  {"iterations", 5, true}};
    ServingSummary m = mergeSummaries({a, b});
    ASSERT_EQ(m.counters.size(), 3u);
    EXPECT_EQ(m.counters[0].name, "generated_tokens");
    EXPECT_EQ(m.counters[0].value, 140);
    EXPECT_EQ(m.counters[1].name, "queue_depth");
    EXPECT_EQ(m.counters[1].value, 11);
    EXPECT_EQ(m.counters[2].name, "iterations");
    EXPECT_EQ(m.counters[2].value, 5);
}

// ---- UtilizationTimeline accessors (satellite) ------------------------

TEST(UtilizationTimeline, EmptyTimelineIsAllZero)
{
    UtilizationTimeline t;
    EXPECT_EQ(t.span(), 0u);
    EXPECT_EQ(t.iterations(), 0u);
    EXPECT_DOUBLE_EQ(t.meanDecodeBatch(), 0.0);
    EXPECT_DOUBLE_EQ(t.meanPrefillShare(), 0.0);
    EXPECT_DOUBLE_EQ(t.computeUtilization(1024), 0.0);
}

TEST(UtilizationTimeline, SingleSampleAccessors)
{
    UtilizationTimeline t;
    IterationSample s;
    s.start = 100;
    s.length = 50;
    s.prefillBw = 256;
    s.decodeBw = 768; // prefill share = 0.25
    s.usefulFlops = 1000;
    s.decodeBatch = 8;
    t.record(s);
    EXPECT_EQ(t.span(), 150u);
    EXPECT_DOUBLE_EQ(t.meanDecodeBatch(), 8.0);
    EXPECT_DOUBLE_EQ(t.meanPrefillShare(), 0.25);
}

TEST(UtilizationTimeline, MergedMeansAreLengthWeighted)
{
    UtilizationTimeline a, b;
    IterationSample s1;
    s1.start = 0;
    s1.length = 30;
    s1.prefillBw = 1024;
    s1.decodeBw = 0; // share 1.0
    s1.decodeBatch = 0;
    a.record(s1);
    IterationSample s2;
    s2.start = 30;
    s2.length = 10;
    s2.prefillBw = 0;
    s2.decodeBw = 1024; // share 0.0
    s2.decodeBatch = 4;
    b.record(s2);
    a.merge(b);
    EXPECT_EQ(a.span(), 40u);
    EXPECT_EQ(a.iterations(), 2u);
    // Length-weighted: (30*1.0 + 10*0.0) / 40 and (30*0 + 10*4) / 40.
    EXPECT_DOUBLE_EQ(a.meanPrefillShare(), 0.75);
    EXPECT_DOUBLE_EQ(a.meanDecodeBatch(), 1.0);
}
