/**
 * @file
 * Unit tests for the symbolic expression engine.
 */
#include <gtest/gtest.h>

#include "support/error.hh"
#include "symbolic/expr.hh"

namespace step::sym {
namespace {

TEST(Symbolic, ConstantsFold)
{
    Expr e = Expr(2) + Expr(3) * Expr(4);
    ASSERT_TRUE(e.isConst());
    EXPECT_EQ(e.constValue(), 14);
}

TEST(Symbolic, LikeTermsCombine)
{
    Expr x = Expr::sym("x");
    Expr e = x + Expr(2) * x;
    EXPECT_EQ(e.toString(), "3*x");
    EXPECT_TRUE((e - Expr(3) * x).isConst());
}

TEST(Symbolic, AdditionIdentity)
{
    Expr x = Expr::sym("x");
    EXPECT_TRUE((x + Expr(0)).equals(x));
    EXPECT_TRUE((x * Expr(1)).equals(x));
    EXPECT_TRUE((x * Expr(0)).isConst());
    EXPECT_EQ((x * Expr(0)).constValue(), 0);
}

TEST(Symbolic, CanonicalOrderingMakesEqualityStructural)
{
    Expr x = Expr::sym("x");
    Expr y = Expr::sym("y");
    EXPECT_TRUE((x + y).equals(y + x));
    EXPECT_TRUE((x * y).equals(y * x));
    EXPECT_FALSE((x + y).equals(x * y));
}

TEST(Symbolic, CeilDiv)
{
    EXPECT_EQ(ceilDiv(Expr(10), Expr(4)).constValue(), 3);
    EXPECT_EQ(ceilDiv(Expr(8), Expr(4)).constValue(), 2);
    EXPECT_EQ(ceilDiv(Expr(0), Expr(4)).constValue(), 0);
    Expr d = Expr::sym("D");
    EXPECT_TRUE(ceilDiv(d, Expr(1)).equals(d));
    Expr e = ceilDiv(d, Expr(4));
    EXPECT_EQ(e.eval({{"D", 10}}), 3);
}

TEST(Symbolic, FloorDiv)
{
    EXPECT_EQ(floorDiv(Expr(10), Expr(4)).constValue(), 2);
    EXPECT_EQ(floorDiv(Expr(-1), Expr(4)).constValue(), -1);
}

TEST(Symbolic, MaxMin)
{
    Expr d = Expr::sym("D");
    EXPECT_EQ(max(Expr(3), Expr(7)).constValue(), 7);
    EXPECT_EQ(min(Expr(3), Expr(7)).constValue(), 3);
    EXPECT_TRUE(max(d, d).equals(d));
    EXPECT_EQ(max(d, Expr(2)).eval({{"D", 9}}), 9);
    EXPECT_EQ(min(d, Expr(2)).eval({{"D", 9}}), 2);
}

TEST(Symbolic, SubstitutionSimplifies)
{
    Expr d = Expr::sym("D");
    Expr e = ceilDiv(d, Expr(4)) * Expr(4);
    Expr bound = e.substitute({{"D", Expr(10)}});
    ASSERT_TRUE(bound.isConst());
    EXPECT_EQ(bound.constValue(), 12);
}

TEST(Symbolic, SubstituteSymbolForExpression)
{
    Expr d = Expr::sym("D");
    Expr b = Expr::sym("B");
    Expr e = d * Expr(2);
    Expr out = e.substitute({{"D", b + Expr(1)}});
    EXPECT_EQ(out.eval({{"B", 4}}), 10);
}

TEST(Symbolic, EvalUnboundThrows)
{
    Expr d = Expr::sym("D");
    EXPECT_THROW(d.eval({}), FatalError);
    EXPECT_FALSE(d.tryEval({}).has_value());
}

TEST(Symbolic, FreeSymbols)
{
    Expr e = Expr::sym("a") * Expr::sym("b") + ceilDiv(Expr::sym("c"),
                                                       Expr(2));
    auto syms = e.freeSymbols();
    EXPECT_EQ(syms.size(), 3u);
    EXPECT_TRUE(syms.count("a"));
    EXPECT_TRUE(syms.count("b"));
    EXPECT_TRUE(syms.count("c"));
}

TEST(Symbolic, SumProductHelpers)
{
    EXPECT_EQ(sum({}).constValue(), 0);
    EXPECT_EQ(product({}).constValue(), 1);
    EXPECT_EQ(sum({Expr(1), Expr(2), Expr(3)}).constValue(), 6);
    EXPECT_EQ(product({Expr(2), Expr(3)}).constValue(), 6);
}

TEST(Symbolic, NestedArithmetic)
{
    Expr d0 = Expr::sym("D0");
    Expr d1 = Expr::sym("D1");
    Expr traffic = (ceilDiv(d0, Expr(4)) * Expr(4) + d1) * Expr(128);
    EXPECT_EQ(traffic.eval({{"D0", 6}, {"D1", 2}}), (8 + 2) * 128);
}

/** Property sweep: ceilDiv(eval) == integer ceil for many operands. */
class CeilDivProperty : public ::testing::TestWithParam<int64_t> {};

TEST_P(CeilDivProperty, MatchesIntegerCeil)
{
    int64_t n = GetParam();
    for (int64_t d = 1; d <= 9; ++d) {
        Expr e = ceilDiv(Expr(n), Expr(d));
        int64_t expect = (n + d - 1) / d;
        EXPECT_EQ(e.constValue(), expect) << n << "/" << d;
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CeilDivProperty,
                         ::testing::Values(0, 1, 3, 4, 7, 16, 17, 63, 64,
                                           65, 1023));

} // namespace
} // namespace step::sym
