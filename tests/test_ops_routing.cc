/**
 * @file
 * Tests for the dynamic routing and merging operators (section 3.2.3):
 * Partition / Reassemble round trips, Figure 4's reassemble semantics,
 * multi-hot routing, empty partitions, EagerMerge arrival ordering and
 * selector reporting, and the dynamic dispatcher.
 */
#include <gtest/gtest.h>

#include "ops/route.hh"
#include "ops/shape_ops.hh"
#include "ops/source_sink.hh"

#include "helpers.hh"

namespace step {
namespace {

using test::list;
using test::val;
using test::vec;

std::vector<Token>
selectorStream(std::initializer_list<std::initializer_list<uint32_t>> sels)
{
    std::vector<Token> toks;
    for (auto s : sels)
        toks.push_back(Token::data(Selector(std::vector<uint32_t>(s))));
    toks.push_back(Token::done());
    return toks;
}

StreamPort
selSource(Graph& g, const std::string& name, std::vector<Token> toks,
          int64_t fanout)
{
    auto& src = g.add<SourceOp>(
        name, std::move(toks),
        StreamShape({Dim::fixed(0)}), DataType::selector(fanout));
    return src.out();
}

TEST(Partition, RoutesRowChunksBySelector)
{
    Graph g;
    // Input [4,1]: four single-element rows routed 0,1,0,1.
    Nested n = list({vec({1}), vec({2}), vec({3}), vec({4})});
    auto& in = g.add<SourceOp>("in", encodeNested(n, 2),
                               StreamShape::fixed({4, 1}),
                               test::scalarTile());
    StreamPort sel = selSource(g, "sel",
                               selectorStream({{0}, {1}, {0}, {1}}), 2);
    auto& part = g.add<PartitionOp>("part", in.out(), sel, 1, 2);
    auto& s0 = g.add<SinkOp>("s0", part.out(0), true);
    auto& s1 = g.add<SinkOp>("s1", part.out(1), true);
    (void)g.run();
    EXPECT_EQ(test::leavesOf(decodeNested(s0.tokens(), 2)),
              (std::vector<float>{1, 3}));
    EXPECT_EQ(test::leavesOf(decodeNested(s1.tokens(), 2)),
              (std::vector<float>{2, 4}));
}

TEST(Partition, EmptyPartitionGetsBareDone)
{
    Graph g;
    Nested n = list({vec({1}), vec({2})});
    auto& in = g.add<SourceOp>("in", encodeNested(n, 2),
                               StreamShape::fixed({2, 1}),
                               test::scalarTile());
    StreamPort sel = selSource(g, "sel", selectorStream({{0}, {0}}), 3);
    auto& part = g.add<PartitionOp>("part", in.out(), sel, 1, 3);
    g.add<SinkOp>("s0", part.out(0), true);
    auto& s1 = g.add<SinkOp>("s1", part.out(1), true);
    auto& s2 = g.add<SinkOp>("s2", part.out(2), true);
    (void)g.run();
    EXPECT_EQ(tokensToString(s1.tokens()), "D");
    EXPECT_EQ(tokensToString(s2.tokens()), "D");
}

TEST(Partition, MultiHotBroadcastsChunk)
{
    Graph g;
    Nested n = list({vec({1}), vec({2})});
    auto& in = g.add<SourceOp>("in", encodeNested(n, 2),
                               StreamShape::fixed({2, 1}),
                               test::scalarTile());
    StreamPort sel = selSource(g, "sel", selectorStream({{0, 1}, {1}}), 2);
    auto& part = g.add<PartitionOp>("part", in.out(), sel, 1, 2);
    auto& s0 = g.add<SinkOp>("s0", part.out(0), true);
    auto& s1 = g.add<SinkOp>("s1", part.out(1), true);
    (void)g.run();
    EXPECT_EQ(test::leavesOf(decodeNested(s0.tokens(), 2)),
              (std::vector<float>{1}));
    EXPECT_EQ(test::leavesOf(decodeNested(s1.tokens(), 2)),
              (std::vector<float>{1, 2}));
}

TEST(PartitionReassemble, RoundTripIdentity)
{
    // Partition rows to 3 consumers then reassemble with the same
    // selector stream: values return in the original order.
    Graph g;
    Nested n = list({vec({1}), vec({2}), vec({3}), vec({4}), vec({5})});
    auto& in = g.add<SourceOp>("in", encodeNested(n, 2),
                               StreamShape::fixed({5, 1}),
                               test::scalarTile());
    auto sels = selectorStream({{0}, {2}, {1}, {0}, {2}});
    StreamPort selA = selSource(g, "selA", sels, 3);
    StreamPort selB = selSource(g, "selB", sels, 3);
    auto& part = g.add<PartitionOp>("part", in.out(), selA, 1, 3);
    auto& re = g.add<ReassembleOp>(
        "re",
        std::vector<StreamPort>{part.out(0), part.out(1), part.out(2)},
        selB, 1);
    auto& sink = g.add<SinkOp>("sink", re.out(), true);
    (void)g.run();
    Nested out = decodeNested(sink.tokens(), 3);
    EXPECT_EQ(test::leavesOf(out), (std::vector<float>{1, 2, 3, 4, 5}));
    ASSERT_EQ(out.children().size(), 5u);
}

TEST(Reassemble, Figure4Semantics)
{
    // Inputs: s0 = [W W W][Z Z], s1 = [X], s7(->2) = [Y Y].
    // Selectors: (0,1) then (0,2). Multi-hot groups collect whole chunks
    // and close with an incremented stop.
    Graph g;
    auto mk = [&](const std::string& name, Nested n) {
        return g.add<SourceOp>(name, encodeNested(n, 2),
                               StreamShape({Dim::ragged(), Dim::ragged()}),
                               test::scalarTile()).out();
    };
    StreamPort in0 = mk("in0", list({vec({1, 1, 1}), vec({4, 4})}));
    StreamPort in1 = mk("in1", list({vec({2})}));
    StreamPort in2 = mk("in2", list({vec({3, 3})}));
    StreamPort sel = selSource(g, "sel", selectorStream({{0, 1}, {0, 2}}),
                               3);
    auto& re = g.add<ReassembleOp>(
        "re", std::vector<StreamPort>{in0, in1, in2}, sel, 1);
    auto& sink = g.add<SinkOp>("sink", re.out(), true);
    (void)g.run();
    Nested out = decodeNested(sink.tokens(), 3);
    ASSERT_EQ(out.children().size(), 2u);
    // First selector group has chunks from 0 and 1; chunks never
    // interleave.
    EXPECT_EQ(out.children()[0].children().size(), 2u);
    std::vector<float> flat = test::leavesOf(out);
    std::multiset<float> group0(flat.begin(), flat.begin() + 4);
    EXPECT_EQ(group0, (std::multiset<float>{1, 1, 1, 2}));
    std::multiset<float> group1(flat.begin() + 4, flat.end());
    EXPECT_EQ(group1, (std::multiset<float>{3, 3, 4, 4}));
}

TEST(EagerMerge, MergesAllChunksAndReportsOrigins)
{
    Graph g;
    auto mk = [&](const std::string& name, Nested n) {
        return g.add<SourceOp>(name, encodeNested(n, 2),
                               StreamShape({Dim::ragged(), Dim::ragged()}),
                               test::scalarTile()).out();
    };
    StreamPort in0 = mk("in0", list({vec({1}), vec({2})}));
    StreamPort in1 = mk("in1", list({vec({10, 11})}));
    auto& em = g.add<EagerMergeOp>(
        "em", std::vector<StreamPort>{in0, in1}, 1);
    auto& dsink = g.add<SinkOp>("d", em.out(), true);
    auto& ssink = g.add<SinkOp>("s", em.selOut(), true);
    (void)g.run();
    Nested out = decodeNested(dsink.tokens(), 2);
    ASSERT_EQ(out.children().size(), 3u);
    // Selector stream has one origin per chunk; replaying it against the
    // chunks recovers the per-input substreams in order.
    ASSERT_EQ(ssink.dataCount(), 3u);
    std::vector<std::vector<float>> per_input(2);
    for (size_t i = 0; i < 3; ++i) {
        uint32_t origin =
            ssink.tokens()[i].value().selector().indices[0];
        for (float v : test::leavesOf(out.children()[i]))
            per_input[origin].push_back(v);
    }
    EXPECT_EQ(per_input[0], (std::vector<float>{1, 2}));
    EXPECT_EQ(per_input[1], (std::vector<float>{10, 11}));
}

TEST(EagerMerge, Rank0MergesScalars)
{
    Graph g;
    auto& a = g.add<SourceOp>("a", encodeNested(vec({1, 2}), 1),
                              StreamShape({Dim::ragged()}),
                              test::scalarTile());
    auto& b = g.add<SourceOp>("b", encodeNested(vec({3}), 1),
                              StreamShape({Dim::ragged()}),
                              test::scalarTile());
    auto& em = g.add<EagerMergeOp>(
        "em", std::vector<StreamPort>{a.out(), b.out()}, 0);
    auto& dsink = g.add<SinkOp>("d", em.out(), true);
    auto& ssink = g.add<SinkOp>("s", em.selOut(), true);
    (void)g.run();
    EXPECT_EQ(dsink.dataCount(), 3u);
    EXPECT_EQ(ssink.dataCount(), 3u);
}

TEST(EagerMerge, PrefersEarlierArrival)
{
    Graph g;
    // Slow producer: big II on source. Fast producer should merge first.
    Nested slow_n = list({vec({100})});
    Nested fast_n = list({vec({1})});
    auto& slow = g.add<SourceOp>("slow", encodeNested(slow_n, 2),
                                 StreamShape({Dim::ragged(),
                                              Dim::ragged()}),
                                 test::scalarTile(), 500);
    auto& fast = g.add<SourceOp>("fast", encodeNested(fast_n, 2),
                                 StreamShape({Dim::ragged(),
                                              Dim::ragged()}),
                                 test::scalarTile(), 1);
    auto& em = g.add<EagerMergeOp>(
        "em", std::vector<StreamPort>{slow.out(), fast.out()}, 1);
    auto& dsink = g.add<SinkOp>("d", em.out(), true);
    g.add<SinkOp>("s", em.selOut(), false);
    (void)g.run();
    Nested out = decodeNested(dsink.tokens(), 2);
    ASSERT_EQ(out.children().size(), 2u);
    EXPECT_FLOAT_EQ(test::leavesOf(out.children()[0])[0], 1.0f);
    EXPECT_FLOAT_EQ(test::leavesOf(out.children()[1])[0], 100.0f);
}

TEST(Dispatcher, RoundRobinThenCompletionDriven)
{
    Graph g;
    // Completions arrive from region 1 twice then region 0.
    std::vector<Token> comps;
    comps.push_back(Token::data(Selector::oneHot(1)));
    comps.push_back(Token::data(Selector::oneHot(1)));
    comps.push_back(Token::data(Selector::oneHot(0)));
    comps.push_back(Token::done());
    auto& csrc = g.add<SourceOp>("c", comps, StreamShape({Dim::ragged()}),
                                 DataType::selector(2));
    auto& disp = g.add<DispatcherOp>("disp", csrc.out(), 2, 5);
    auto& sink = g.add<SinkOp>("sink", disp.out(), true);
    (void)g.run();
    ASSERT_EQ(sink.dataCount(), 5u);
    std::vector<uint32_t> order;
    for (const auto& t : sink.tokens())
        if (t.isData())
            order.push_back(t.value().selector().indices[0]);
    EXPECT_EQ(order, (std::vector<uint32_t>{0, 1, 1, 1, 0}));
}

} // namespace
} // namespace step
