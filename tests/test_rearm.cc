/**
 * @file
 * Correctness of the structure-preserving rearm path: over a hundred-
 * plus serving iterations with seeded per-iteration KV lengths, expert
 * traces, and policy bandwidths, the rearm fast path must produce
 * metrics bit-identical to (a) recycle+rebuild on a reused graph and
 * (b) a cold graph built from scratch. Mid-run batch-size changes force
 * the structural-key fallback, which must transparently rebuild and
 * refresh the handles.
 */
#include <gtest/gtest.h>

#include "support/framepool.hh"
#include "support/rng.hh"
#include "trace/trace.hh"
#include "workloads/decoder.hh"

namespace step {
namespace {

DecoderParams
baseParams(ParStrategy attn)
{
    DecoderParams p;
    p.cfg = servingSimConfig();
    p.attnStrategy = attn;
    p.moeRegions = 4;
    p.moeTile = 16;
    p.denseTile = 16;
    return p;
}

IterationSpec
specFor(const DecoderParams& p, uint64_t seed, int64_t batch)
{
    IterationSpec spec;
    Rng rng(seed * 9176 + 13);
    spec.trace = generateExpertTrace(rng, batch, p.cfg.numExperts,
                                     p.cfg.topK);
    spec.kvLens = sampleKvBatch(seed, batch, KvVarClass::Med);
    return spec;
}

void
expectIdentical(const SimResult& a, const SimResult& b, int64_t iter,
                const char* what)
{
    EXPECT_EQ(a.cycles, b.cycles) << what << " iter " << iter;
    EXPECT_EQ(a.offChipBytes, b.offChipBytes) << what << " iter " << iter;
    EXPECT_EQ(a.offChipReadBytes, b.offChipReadBytes)
        << what << " iter " << iter;
    EXPECT_EQ(a.offChipWriteBytes, b.offChipWriteBytes)
        << what << " iter " << iter;
    EXPECT_EQ(a.onChipPeakBytes, b.onChipPeakBytes)
        << what << " iter " << iter;
    EXPECT_EQ(a.totalFlops, b.totalFlops) << what << " iter " << iter;
    EXPECT_EQ(a.allocatedComputeBw, b.allocatedComputeBw)
        << what << " iter " << iter;
    EXPECT_EQ(a.contextSwitches, b.contextSwitches)
        << what << " iter " << iter;
}

void
runComparison(ParStrategy attn)
{
    const int64_t kIters = 120;
    dam::Scheduler sched;

    GraphArena rearm_arena;
    Graph rearm_graph(SimConfig{}, &rearm_arena);
    DecoderRearmHandles handles;

    GraphArena rebuild_arena;
    Graph rebuild_graph(SimConfig{}, &rebuild_arena);

    for (int64_t i = 0; i < kIters; ++i) {
        // Two structural breaks (batch 4 -> 6 -> 4) plus a per-
        // iteration bandwidth wobble standing in for policy splits.
        const int64_t B = (i >= 40 && i < 80) ? 6 : 4;
        DecoderParams p = baseParams(attn);
        p.batch = B;
        p.computeBwPerMatmul = 512 + 128 * (i % 3);
        p.cfg.moeMatmulBw = p.computeBwPerMatmul;
        IterationSpec spec =
            specFor(p, 1000 + static_cast<uint64_t>(i), B);

        SimResult via_rearm = runDecoderIteration(p, spec, &sched,
                                                  &rearm_graph, &handles);
        SimResult via_rebuild =
            runDecoderIteration(p, spec, &sched, &rebuild_graph);
        SimResult cold = runDecoderIteration(p, spec, &sched);

        expectIdentical(via_rearm, via_rebuild, i, "rearm vs rebuild");
        expectIdentical(via_rearm, cold, i, "rearm vs cold");
        if (::testing::Test::HasFailure())
            break;
    }

    // Initial build + two structural-key fallbacks; everything else
    // took the fast path.
    EXPECT_EQ(handles.rebuilds, 3u);
    EXPECT_EQ(handles.rearms, static_cast<uint64_t>(kIters) - 3u);
}

TEST(Rearm, BitIdenticalStaticAttention)
{
    runComparison(ParStrategy::StaticInterleaved);
}

TEST(Rearm, BitIdenticalDynamicAttention)
{
    runComparison(ParStrategy::Dynamic);
}

TEST(Rearm, RepeatedRearmWithoutRunIsIdempotent)
{
    DecoderParams p = baseParams(ParStrategy::StaticInterleaved);
    p.batch = 4;
    IterationSpec spec = specFor(p, 7, 4);

    dam::Scheduler sched;
    GraphArena arena;
    Graph g(SimConfig{}, &arena);
    DecoderRearmHandles h;
    SimResult first = runDecoderIteration(p, spec, &sched, &g, &h);

    // Benches time rearmDecoderLayer in a loop without running the
    // graph in between; the extra rearms must not perturb the next run.
    for (int i = 0; i < 5; ++i)
        rearmDecoderLayer(g, h, p, spec);
    SimResult again = runDecoderIteration(p, spec, &sched, &g, &h);
    expectIdentical(first, again, 0, "after repeated rearm");
}

TEST(Rearm, FramePoolRecyclesFrames)
{
    DecoderParams p = baseParams(ParStrategy::StaticInterleaved);
    p.batch = 4;
    IterationSpec spec = specFor(p, 11, 4);

    dam::Scheduler sched;
    GraphArena arena;
    Graph g(SimConfig{}, &arena);
    DecoderRearmHandles h;
    runDecoderIteration(p, spec, &sched, &g, &h); // builds all frames

    FramePool::Stats before = FramePool::stats();
    runDecoderIteration(p, spec, &sched, &g, &h);
    FramePool::Stats after = FramePool::stats();
    // A steady-state iteration allocates every coroutine frame from the
    // pool's freelists, not the heap.
    EXPECT_GT(after.hits, before.hits);
    EXPECT_EQ(after.misses, before.misses);
}

} // namespace
} // namespace step
