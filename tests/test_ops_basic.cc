/**
 * @file
 * Functional tests for higher-order and shape operators: each operator's
 * token-level semantics are checked against the paper's definitions by
 * decoding output streams back into nested tensors.
 */
#include <gtest/gtest.h>

#include "ops/higher_order.hh"
#include "ops/shape_ops.hh"
#include "ops/source_sink.hh"

#include "helpers.hh"

namespace step {
namespace {

using test::leaf;
using test::list;
using test::scalarTile;
using test::val;
using test::vec;

TEST(SourceSink, RoundTrip)
{
    Graph g;
    auto toks = encodeNested(list({vec({1, 2}), vec({3})}), 2);
    auto& src = g.add<SourceOp>("src", toks, StreamShape::fixed({2, 2}),
                                scalarTile());
    auto& sink = g.add<SinkOp>("sink", src.out(), true);
    (void)g.run();
    EXPECT_EQ(tokensToString(sink.tokens()), tokensToString(toks));
    EXPECT_EQ(sink.dataCount(), 3u);
}

TEST(Broadcast, CopiesToAllOutputs)
{
    Graph g;
    auto toks = encodeNested(vec({1, 2, 3}), 1);
    auto& src = g.add<SourceOp>("src", toks, StreamShape::fixed({3}),
                                scalarTile());
    auto& bc = g.add<BroadcastOp>("bc", src.out(), 3);
    auto& s0 = g.add<SinkOp>("s0", bc.out(0), true);
    auto& s1 = g.add<SinkOp>("s1", bc.out(1), true);
    auto& s2 = g.add<SinkOp>("s2", bc.out(2), true);
    (void)g.run();
    EXPECT_EQ(tokensToString(s0.tokens()), tokensToString(toks));
    EXPECT_EQ(tokensToString(s1.tokens()), tokensToString(s2.tokens()));
}

TEST(Map, ElementwiseKeepsShape)
{
    Graph g;
    auto toks = encodeNested(list({vec({1, 2}), vec({3})}), 2);
    auto& src = g.add<SourceOp>("src", toks, StreamShape::fixed({2, 2}),
                                scalarTile());
    MapFn twice = [](const std::vector<Value>& a, int64_t& fl) -> Value {
        fl += 1;
        return Tile::withData(1, 1, {a[0].tile().at(0, 0) * 2}, 1);
    };
    auto& m = g.add<MapOp>("m", std::vector<StreamPort>{src.out()}, twice,
                           16, scalarTile());
    auto& sink = g.add<SinkOp>("sink", m.out(), true);
    (void)g.run();
    Nested out = decodeNested(sink.tokens(), 2);
    EXPECT_EQ(test::leavesOf(out), (std::vector<float>{2, 4, 6}));
    EXPECT_EQ(m.measuredFlops(), 3);
}

TEST(Map, TwoInputLockstep)
{
    Graph g;
    auto ta = encodeNested(vec({1, 2, 3}), 1);
    auto tb = encodeNested(vec({10, 20, 30}), 1);
    auto& a = g.add<SourceOp>("a", ta, StreamShape::fixed({3}),
                              scalarTile());
    auto& b = g.add<SourceOp>("b", tb, StreamShape::fixed({3}),
                              scalarTile());
    MapFn addv = [](const std::vector<Value>& xs, int64_t& fl) -> Value {
        fl += 1;
        return Tile::withData(
            1, 1, {xs[0].tile().at(0, 0) + xs[1].tile().at(0, 0)}, 1);
    };
    auto& m = g.add<MapOp>("m", std::vector<StreamPort>{a.out(), b.out()},
                           addv, 16, scalarTile());
    auto& sink = g.add<SinkOp>("sink", m.out(), true);
    (void)g.run();
    Nested out = decodeNested(sink.tokens(), 1);
    EXPECT_EQ(test::leavesOf(out), (std::vector<float>{11, 22, 33}));
}

TEST(Accum, ReducesInnerDim)
{
    Graph g;
    auto toks = encodeNested(list({vec({1, 2}), vec({3, 4, 5})}), 2);
    auto& src = g.add<SourceOp>("src", toks,
                                StreamShape({Dim::fixed(2), Dim::ragged()}),
                                scalarTile());
    auto& acc = g.add<AccumOp>("acc", src.out(), 1, fns::zeroInit(1, 1, 1),
                               fns::addUpdate(), 16, scalarTile());
    auto& sink = g.add<SinkOp>("sink", acc.out(), true);
    (void)g.run();
    Nested out = decodeNested(sink.tokens(), 1);
    EXPECT_EQ(test::leavesOf(out), (std::vector<float>{3, 12}));
}

TEST(Accum, FullRankReduceEmitsOnDone)
{
    Graph g;
    auto toks = encodeNested(vec({1, 2, 3, 4}), 1);
    auto& src = g.add<SourceOp>("src", toks, StreamShape::fixed({4}),
                                scalarTile());
    auto& acc = g.add<AccumOp>("acc", src.out(), 1, fns::zeroInit(1, 1, 1),
                               fns::addUpdate(), 16, scalarTile());
    auto& sink = g.add<SinkOp>("sink", acc.out(), true);
    (void)g.run();
    ASSERT_EQ(sink.dataCount(), 1u);
    EXPECT_FLOAT_EQ(sink.tokens()[0].value().tile().at(0, 0), 10.0f);
}

TEST(Accum, RetileRowPacksDynamicTiles)
{
    // [1,2]-row tiles packed into one dynamically-sized tile per group.
    Graph g;
    Nested rows = list({
        list({Nested(Value(Tile::withData(1, 2, {1, 2}))),
              Nested(Value(Tile::withData(1, 2, {3, 4}))),
              Nested(Value(Tile::withData(1, 2, {5, 6})))}),
        list({Nested(Value(Tile::withData(1, 2, {7, 8})))}),
    });
    auto& src = g.add<SourceOp>("src", encodeNested(rows, 2),
                                StreamShape({Dim::fixed(2), Dim::ragged()}),
                                DataType::tile(1, 2));
    auto& acc = g.add<AccumOp>(
        "acc", src.out(), 1, fns::retileRowInit(2), fns::retileRowUpdate(),
        16, DataType::tile(Dim::ragged(), Dim::fixed(2)));
    auto& sink = g.add<SinkOp>("sink", acc.out(), true);
    (void)g.run();
    ASSERT_EQ(sink.dataCount(), 2u);
    const Tile& t0 = sink.tokens()[0].value().tile();
    EXPECT_EQ(t0.rows(), 3);
    EXPECT_EQ(t0.cols(), 2);
    EXPECT_FLOAT_EQ(t0.at(2, 1), 6.0f);
    const Tile& t1 = sink.tokens()[1].value().tile();
    EXPECT_EQ(t1.rows(), 1);
    // On-chip peak tracks the largest accumulated tile.
    EXPECT_EQ(acc.measuredOnChipPeakBytes(), 3 * 2 * 2);
}

TEST(Scan, EmitsRunningState)
{
    Graph g;
    auto toks = encodeNested(list({vec({1, 2, 3}), vec({10, 10})}), 2);
    auto& src = g.add<SourceOp>("src", toks,
                                StreamShape({Dim::fixed(2), Dim::ragged()}),
                                scalarTile());
    auto& sc = g.add<ScanOp>("scan", src.out(), 1, fns::zeroInit(1, 1, 1),
                             fns::addUpdate(), 16, scalarTile());
    auto& sink = g.add<SinkOp>("sink", sc.out(), true);
    (void)g.run();
    Nested out = decodeNested(sink.tokens(), 2);
    EXPECT_EQ(test::leavesOf(out), (std::vector<float>{1, 3, 6, 10, 20}));
}

TEST(FlatMap, ExpandsElements)
{
    Graph g;
    // Each [2,1] tile splits into two [1,1] row tiles.
    Nested n = list({Nested(Value(Tile::withData(2, 1, {1, 2}))),
                     Nested(Value(Tile::withData(2, 1, {3, 4})))});
    auto& src = g.add<SourceOp>("src", encodeNested(n, 1),
                                StreamShape::fixed({2}),
                                DataType::tile(2, 1));
    auto& fm = g.add<FlatMapOp>("fm", src.out(), fns::retileStreamify(1),
                                StreamShape({Dim::ragged()}),
                                DataType::tile(1, 1));
    auto& sink = g.add<SinkOp>("sink", fm.out(), true);
    (void)g.run();
    Nested out = decodeNested(sink.tokens(), 2);
    ASSERT_EQ(out.children().size(), 2u);
    EXPECT_EQ(out.children()[0].children().size(), 2u);
    EXPECT_EQ(test::leavesOf(out), (std::vector<float>{1, 2, 3, 4}));
}

TEST(Flatten, MergesInnerDims)
{
    Graph g;
    // Example (1) flatten: [2,2,D0] -> [2, D'].
    Nested n = list({list({vec({1, 2}), vec({3})}),
                     list({vec({4}), vec({5, 6, 7})})});
    auto& src = g.add<SourceOp>(
        "src", encodeNested(n, 3),
        StreamShape({Dim::fixed(2), Dim::fixed(2), Dim::ragged()}),
        scalarTile());
    auto& fl = g.add<FlattenOp>("fl", src.out(), 0, 1);
    EXPECT_EQ(fl.out().rank(), 2u);
    EXPECT_TRUE(fl.out().shape.inner(0).isRagged());
    auto& sink = g.add<SinkOp>("sink", fl.out(), true);
    (void)g.run();
    Nested out = decodeNested(sink.tokens(), 2);
    ASSERT_EQ(out.children().size(), 2u);
    EXPECT_EQ(out.children()[0].children().size(), 3u);
    EXPECT_EQ(out.children()[1].children().size(), 4u);
}

TEST(Reshape, PadsInnermostDim)
{
    Graph g;
    auto toks = encodeNested(list({vec({1, 2, 3, 4, 5})}), 2);
    auto& src = g.add<SourceOp>("src", toks,
                                StreamShape({Dim::fixed(1), Dim::ragged()}),
                                scalarTile());
    auto& rs = g.add<ReshapeOp>("rs", src.out(), 0, 2,
                                std::optional<Value>(val(0)));
    auto& sink = g.add<SinkOp>("sink", rs.out(), true);
    auto& psink = g.add<SinkOp>("psink", rs.padOut(), true);
    (void)g.run();
    Nested out = decodeNested(sink.tokens(), 3);
    // [1, ceil(5/2)=3, 2] with one padded element.
    ASSERT_EQ(out.children().size(), 1u);
    EXPECT_EQ(out.children()[0].children().size(), 3u);
    EXPECT_EQ(test::leavesOf(out),
              (std::vector<float>{1, 2, 3, 4, 5, 0}));
    Nested pads = decodeNested(psink.tokens(), 3);
    EXPECT_EQ(test::leavesOf(pads),
              (std::vector<float>{0, 0, 0, 0, 0, 1}));
}

TEST(Reshape, ExactMultipleNoPadding)
{
    Graph g;
    auto toks = encodeNested(list({vec({1, 2, 3, 4})}), 2);
    auto& src = g.add<SourceOp>("src", toks,
                                StreamShape({Dim::fixed(1), Dim::ragged()}),
                                scalarTile());
    auto& rs = g.add<ReshapeOp>("rs", src.out(), 0, 2,
                                std::optional<Value>(val(0)));
    auto& sink = g.add<SinkOp>("sink", rs.out(), true);
    g.add<SinkOp>("psink", rs.padOut(), false);
    (void)g.run();
    Nested out = decodeNested(sink.tokens(), 3);
    EXPECT_EQ(out.children()[0].children().size(), 2u);
    EXPECT_EQ(test::leavesOf(out), (std::vector<float>{1, 2, 3, 4}));
}

TEST(Reshape, SplitsHigherStaticDim)
{
    Graph g;
    // [4, 1] split at rank 1 by chunk 2 -> [2, 2, 1].
    Nested n = list({vec({1}), vec({2}), vec({3}), vec({4})});
    auto& src = g.add<SourceOp>("src", encodeNested(n, 2),
                                StreamShape::fixed({4, 1}), scalarTile());
    auto& rs = g.add<ReshapeOp>("rs", src.out(), 1, 2);
    auto& sink = g.add<SinkOp>("sink", rs.out(), true);
    (void)g.run();
    Nested out = decodeNested(sink.tokens(), 3);
    ASSERT_EQ(out.children().size(), 2u);
    EXPECT_EQ(out.children()[0].children().size(), 2u);
    EXPECT_EQ(test::leavesOf(out), (std::vector<float>{1, 2, 3, 4}));
}

TEST(Promote, AddsUnitOuterDim)
{
    Graph g;
    auto toks = encodeNested(vec({1, 2}), 1);
    auto& src = g.add<SourceOp>("src", toks, StreamShape::fixed({2}),
                                scalarTile());
    auto& pr = g.add<PromoteOp>("pr", src.out());
    auto& sink = g.add<SinkOp>("sink", pr.out(), true);
    (void)g.run();
    EXPECT_EQ(tokensToString(sink.tokens()),
              "Tile[1x1]{1}, Tile[1x1]{2}, S1, D");
    Nested out = decodeNested(sink.tokens(), 2);
    ASSERT_EQ(out.children().size(), 1u);
    EXPECT_EQ(out.children()[0].children().size(), 2u);
}

TEST(Promote, EmptyStreamStaysEmpty)
{
    Graph g;
    auto& src = g.add<SourceOp>("src",
                                std::vector<Token>{Token::done()},
                                StreamShape({Dim::ragged()}),
                                scalarTile());
    auto& pr = g.add<PromoteOp>("pr", src.out());
    auto& sink = g.add<SinkOp>("sink", pr.out(), true);
    (void)g.run();
    EXPECT_EQ(tokensToString(sink.tokens()), "D");
}

TEST(ExpandStatic, WidensInnermost)
{
    Graph g;
    auto toks = encodeNested(list({vec({1}), vec({2})}), 2);
    auto& src = g.add<SourceOp>("src", toks, StreamShape::fixed({2, 1}),
                                scalarTile());
    auto& ex = g.add<ExpandStaticOp>("ex", src.out(), 3);
    auto& sink = g.add<SinkOp>("sink", ex.out(), true);
    (void)g.run();
    Nested out = decodeNested(sink.tokens(), 2);
    EXPECT_EQ(test::leavesOf(out),
              (std::vector<float>{1, 1, 1, 2, 2, 2}));
}

TEST(Expand, FollowsReferenceStructure)
{
    Graph g;
    // Figure 5: input [2,1,1], ref [2,R,2] -> value repeated per ref.
    Nested in = list({list({vec({7})}), list({vec({9})})});
    Nested ref = list({list({vec({0, 0}), vec({0, 0})}),
                       list({vec({0, 0})})});
    auto& si = g.add<SourceOp>("in", encodeNested(in, 3),
                               StreamShape::fixed({2, 1, 1}),
                               scalarTile());
    auto& sr = g.add<SourceOp>(
        "ref", encodeNested(ref, 3),
        StreamShape({Dim::fixed(2), Dim::ragged(), Dim::fixed(2)}),
        scalarTile());
    auto& ex = g.add<ExpandOp>("ex", si.out(), sr.out(), 2);
    auto& sink = g.add<SinkOp>("sink", ex.out(), true);
    (void)g.run();
    Nested out = decodeNested(sink.tokens(), 3);
    EXPECT_EQ(test::leavesOf(out),
              (std::vector<float>{7, 7, 7, 7, 9, 9}));
}

TEST(Repeat, AddsInnerDim)
{
    Graph g;
    auto toks = encodeNested(vec({1, 2}), 1);
    auto& src = g.add<SourceOp>("src", toks, StreamShape::fixed({2}),
                                scalarTile());
    auto& rp = g.add<RepeatOp>("rp", src.out(), 2);
    EXPECT_EQ(rp.out().rank(), 2u);
    auto& sink = g.add<SinkOp>("sink", rp.out(), true);
    (void)g.run();
    Nested out = decodeNested(sink.tokens(), 2);
    ASSERT_EQ(out.children().size(), 2u);
    EXPECT_EQ(out.children()[0].children().size(), 2u);
    EXPECT_EQ(test::leavesOf(out), (std::vector<float>{1, 1, 2, 2}));
}

TEST(Zip, PairsAlignedStreams)
{
    Graph g;
    auto ta = encodeNested(list({vec({1, 2})}), 2);
    auto tb = encodeNested(list({vec({10, 20})}), 2);
    auto& a = g.add<SourceOp>("a", ta, StreamShape::fixed({1, 2}),
                              scalarTile());
    auto& b = g.add<SourceOp>("b", tb, StreamShape::fixed({1, 2}),
                              scalarTile());
    auto& z = g.add<ZipOp>("z", std::vector<StreamPort>{a.out(), b.out()});
    auto& sink = g.add<SinkOp>("sink", z.out(), true);
    (void)g.run();
    ASSERT_EQ(sink.dataCount(), 2u);
    const auto& tup = sink.tokens()[0].value().tupleElems();
    EXPECT_FLOAT_EQ(tup[0].tile().at(0, 0), 1.0f);
    EXPECT_FLOAT_EQ(tup[1].tile().at(0, 0), 10.0f);
}

TEST(Filter, DropsMaskedElements)
{
    Graph g;
    auto td = encodeNested(list({vec({1, 2, 3, 4})}), 2);
    auto tm = encodeNested(list({vec({0, 1, 0, 1})}), 2);
    auto& d = g.add<SourceOp>("d", td, StreamShape::fixed({1, 4}),
                              scalarTile());
    auto& m = g.add<SourceOp>("m", tm, StreamShape::fixed({1, 4}),
                              scalarTile());
    auto& f = g.add<FilterOp>("f", d.out(), m.out());
    auto& sink = g.add<SinkOp>("sink", f.out(), true);
    (void)g.run();
    Nested out = decodeNested(sink.tokens(), 2);
    EXPECT_EQ(test::leavesOf(out), (std::vector<float>{1, 3}));
}

TEST(MapTiming, RooflineDominatedByCompute)
{
    Graph g; // compute_bw 8 flops/cycle, 64 flops per element
    auto toks = encodeNested(vec({1, 2, 3, 4}), 1);
    auto& src = g.add<SourceOp>("src", toks, StreamShape::fixed({4}),
                                scalarTile());
    MapFn heavy = [](const std::vector<Value>& a, int64_t& fl) -> Value {
        fl += 64;
        return a[0];
    };
    auto& m = g.add<MapOp>("m", std::vector<StreamPort>{src.out()}, heavy,
                           8, scalarTile());
    auto& sink = g.add<SinkOp>("sink", m.out(), true);
    auto res = g.run();
    // 4 elements x 64/8 = 32 busy cycles on the map.
    EXPECT_GE(m.busyCycles(), 32u);
    EXPECT_GE(res.cycles, 32u);
    EXPECT_EQ(res.totalFlops, 256);
    EXPECT_EQ(res.allocatedComputeBw, 8);
    EXPECT_EQ(sink.dataCount(), 4u);
}

} // namespace
} // namespace step
