/**
 * @file
 * Fault-tier tests: deterministic plan generation and parsing, the
 * engine's crash/recovery/slowdown semantics (no request lost, KV and
 * cache accounting intact on every abort path), retry/backoff and
 * deadline-aware shedding policies, cluster failover with availability
 * accounting, summary merging of the fault counters (NaN-free with
 * zero-fault and fully-failed replicas), thread-count invariance of
 * faulty runs, and the structured StallError diagnostic that replaced
 * the engine's fatal idle assert.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "runtime/cluster.hh"
#include "support/error.hh"
#include "support/rng.hh"

using namespace step;
using namespace step::runtime;

namespace {

Request
mkReq(int64_t id, dam::Cycle arrival, int64_t prompt, int64_t output)
{
    Request r;
    r.id = id;
    r.arrival = arrival;
    r.promptLen = prompt;
    r.outputLen = output;
    return r;
}

TraceConfig
burstyTrace(int64_t n)
{
    TraceConfig tc;
    tc.numRequests = n;
    tc.arrivalsPerKcycle = 0.0012;
    tc.burstPeriod = 16'000'000;
    tc.burstDuty = 0.3;
    tc.burstFactor = 4.0;
    return tc;
}

/** Every request reached exactly one terminal state; none was lost. */
void
expectAllAccounted(const std::vector<Request>& reqs,
                   const ServingSummary& s)
{
    int64_t finished = 0, failed = 0, shed = 0;
    for (const Request& r : reqs) {
        EXPECT_TRUE(r.terminal()) << "request " << r.id << " not terminal";
        switch (r.state) {
          case ReqState::Finished:
            ++finished;
            break;
          case ReqState::Failed:
            ++failed;
            break;
          case ReqState::Shed:
            ++shed;
            break;
          default:
            break;
        }
    }
    EXPECT_EQ(finished + failed + shed,
              static_cast<int64_t>(reqs.size()));
    EXPECT_EQ(s.completed, finished);
    // Note: cluster summaries reclassify retried failures, so only the
    // completed count is compared against raw request states here.
}

} // namespace

// ---- plan generation & parsing ----------------------------------------

TEST(FaultPlan, GenerationIsDeterministicAndBounded)
{
    FaultPlanConfig fc;
    fc.mtbfCycles = 10'000'000;
    fc.mttrCycles = 2'000'000;
    fc.slowdownMtbfCycles = 8'000'000;
    fc.horizonCycles = 60'000'000;

    FaultPlan a = generateFaultPlan(fc, 4, 99);
    FaultPlan b = generateFaultPlan(fc, 4, 99);
    FaultPlan c = generateFaultPlan(fc, 4, 100);

    ASSERT_EQ(a.crashes.size(), b.crashes.size());
    for (size_t i = 0; i < a.crashes.size(); ++i) {
        EXPECT_EQ(a.crashes[i].replica, b.crashes[i].replica);
        EXPECT_EQ(a.crashes[i].failAt, b.crashes[i].failAt);
        EXPECT_EQ(a.crashes[i].recoverAt, b.crashes[i].recoverAt);
        EXPECT_LT(a.crashes[i].failAt, fc.horizonCycles);
    }
    ASSERT_EQ(a.slowdowns.size(), b.slowdowns.size());
    EXPECT_FALSE(a.empty());
    // A different seed draws a different plan.
    bool differs = a.crashes.size() != c.crashes.size();
    for (size_t i = 0; !differs && i < a.crashes.size(); ++i)
        differs = a.crashes[i].failAt != c.crashes[i].failAt;
    EXPECT_TRUE(differs);
    // Zero horizon = no plan at all.
    EXPECT_TRUE(generateFaultPlan(fc, 4, 99).empty() ==
                (fc.horizonCycles == 0));
    fc.horizonCycles = 0;
    EXPECT_TRUE(generateFaultPlan(fc, 4, 99).empty());
}

TEST(FaultPlan, ParseSpecAndRejectMalformed)
{
    FaultPlan p;
    std::string err;
    ASSERT_TRUE(
        parseFaultPlan("1@8000000:12000000, 2@5000000", &p, &err));
    ASSERT_EQ(p.crashes.size(), 2u);
    EXPECT_EQ(p.crashes[0].replica, 1);
    EXPECT_EQ(p.crashes[0].failAt, 8'000'000u);
    EXPECT_EQ(p.crashes[0].recoverAt, 12'000'000u);
    EXPECT_EQ(p.crashes[1].replica, 2);
    EXPECT_EQ(p.crashes[1].recoverAt, 0u);
    EXPECT_FALSE(p.aliveAt(1, 9'000'000));
    EXPECT_TRUE(p.aliveAt(1, 12'000'000)); // half-open window
    EXPECT_TRUE(p.aliveAt(0, 9'000'000));

    for (const char* bad :
         {"nonsense", "1@", "@5", "1@10:5", "-2@100", "1@x:y"}) {
        FaultPlan q;
        EXPECT_FALSE(parseFaultPlan(bad, &q, &err)) << bad;
        EXPECT_FALSE(err.empty());
    }
}

TEST(FaultPlan, TimelineWindowsAndEdges)
{
    FaultPlan p;
    p.crashes.push_back({0, 100, 200});
    p.crashes.push_back({0, 500, 0});
    p.slowdowns.push_back({0, 300, 400, 0.5});
    ReplicaFaultTimeline t = p.forReplica(0);
    EXPECT_FALSE(t.downAt(99));
    EXPECT_TRUE(t.downAt(100));
    EXPECT_TRUE(t.downAt(199));
    EXPECT_FALSE(t.downAt(200));
    EXPECT_TRUE(t.downAt(500));
    EXPECT_TRUE(t.downAt(1'000'000'000)); // permanent
    EXPECT_DOUBLE_EQ(t.bwFactorAt(299), 1.0);
    EXPECT_DOUBLE_EQ(t.bwFactorAt(300), 0.5);
    EXPECT_DOUBLE_EQ(t.bwFactorAt(400), 1.0);
    EXPECT_EQ(t.nextEventAfter(0), 100u);
    EXPECT_EQ(t.nextEventAfter(100), 200u);
    EXPECT_EQ(t.nextEventAfter(250), 300u);
    EXPECT_EQ(t.nextEventAfter(500), ReplicaFaultTimeline::kNoEvent);
    // Another replica's events are invisible.
    EXPECT_TRUE(p.forReplica(1).empty());
}

TEST(FaultPlan, MttrZeroMakesEveryCrashPermanentAndTruncates)
{
    // MTTR 0 means crashes never repair: generation must emit at most
    // one crash per replica (everything after a permanent crash is
    // unreachable) and each must carry recoverAt == 0.
    FaultPlanConfig fc;
    fc.mtbfCycles = 10'000'000;
    fc.mttrCycles = 0;
    fc.horizonCycles = 200'000'000;
    FaultPlan p = generateFaultPlan(fc, 4, 7);
    ASSERT_FALSE(p.crashes.empty());
    int64_t per_replica[4] = {0, 0, 0, 0};
    for (const FaultEvent& e : p.crashes) {
        EXPECT_EQ(e.recoverAt, 0u);
        ASSERT_GE(e.replica, 0);
        ASSERT_LT(e.replica, 4);
        ++per_replica[e.replica];
    }
    for (int64_t n : per_replica)
        EXPECT_LE(n, 1);
    // The permanent timeline normalizes and stays down forever.
    ReplicaFaultTimeline t = p.forReplica(p.crashes[0].replica);
    EXPECT_TRUE(t.downAt(p.crashes[0].failAt));
    EXPECT_TRUE(t.downAt(ReplicaFaultTimeline::kNoEvent - 1));
}

TEST(FaultPlan, HorizonShorterThanFirstFailureYieldsEmptyPlan)
{
    // Draws are >= 1 cycle, so a 1-cycle horizon precedes every
    // possible failure — the plan must come back empty for any seed.
    FaultPlanConfig fc;
    fc.mtbfCycles = 5'000'000;
    fc.mttrCycles = 1'000'000;
    fc.slowdownMtbfCycles = 4'000'000;
    fc.horizonCycles = 1;
    for (uint64_t seed : {1u, 42u, 999u})
        EXPECT_TRUE(generateFaultPlan(fc, 8, seed).empty()) << seed;
}

TEST(FaultPlan, NormalizeRejectsOverlapsAndMalformedWindows)
{
    // Overlapping crash windows.
    {
        ReplicaFaultTimeline t;
        t.downs.push_back({100, 300});
        t.downs.push_back({200, 400});
        EXPECT_THROW(t.normalize(), FatalError);
    }
    // A permanent crash followed by a later event.
    {
        ReplicaFaultTimeline t;
        t.downs.push_back({100, 0});
        t.downs.push_back({200, 300});
        EXPECT_THROW(t.normalize(), FatalError);
    }
    // Recovery not after its crash.
    {
        ReplicaFaultTimeline t;
        t.downs.push_back({100, 100});
        EXPECT_THROW(t.normalize(), FatalError);
    }
    // Overlapping slowdown windows.
    {
        ReplicaFaultTimeline t;
        t.slowdowns.push_back({100, 300, 0.5});
        t.slowdowns.push_back({200, 400, 0.5});
        EXPECT_THROW(t.normalize(), FatalError);
    }
    // Empty slowdown window and out-of-range factor.
    {
        ReplicaFaultTimeline t;
        t.slowdowns.push_back({100, 100, 0.5});
        EXPECT_THROW(t.normalize(), FatalError);
    }
    {
        ReplicaFaultTimeline t;
        t.slowdowns.push_back({100, 200, 1.5});
        EXPECT_THROW(t.normalize(), FatalError);
    }
    // Back-to-back (touching) windows are legal: [100,200) + [200,300).
    {
        ReplicaFaultTimeline t;
        t.downs.push_back({100, 200});
        t.downs.push_back({200, 300});
        t.slowdowns.push_back({300, 400, 0.5});
        t.slowdowns.push_back({400, 500, 0.5});
        EXPECT_NO_THROW(t.normalize());
    }
}

TEST(FaultPlan, NextEventAfterAlwaysAdvancesToNoEvent)
{
    // Walking nextEventAfter from 0 must strictly increase and reach
    // kNoEvent within the timeline's edge count — the loop-termination
    // property the engine's delivery loop depends on.
    auto walk = [](ReplicaFaultTimeline t, size_t max_edges) {
        t.normalize();
        dam::Cycle c = 0;
        size_t steps = 0;
        while (true) {
            const dam::Cycle n = t.nextEventAfter(c);
            if (n == ReplicaFaultTimeline::kNoEvent)
                break;
            EXPECT_GT(n, c) << "nextEventAfter did not advance";
            c = n;
            ++steps;
            if (steps > max_edges) {
                ADD_FAILURE() << "nextEventAfter loops";
                break;
            }
        }
        return steps;
    };
    ReplicaFaultTimeline mixed;
    mixed.downs.push_back({100, 200});
    mixed.downs.push_back({500, 700});
    mixed.slowdowns.push_back({300, 400, 0.5});
    EXPECT_EQ(walk(mixed, 6), 6u); // every edge visited exactly once
    ReplicaFaultTimeline permanent;
    permanent.downs.push_back({100, 0});
    EXPECT_EQ(walk(permanent, 1), 1u); // failAt only; no recovery edge
    EXPECT_EQ(walk({}, 0), 0u);        // empty timeline: no events
    // Probing at or past the last edge returns kNoEvent immediately.
    mixed.normalize();
    EXPECT_EQ(mixed.nextEventAfter(700), ReplicaFaultTimeline::kNoEvent);
    EXPECT_EQ(mixed.nextEventAfter(ReplicaFaultTimeline::kNoEvent - 1),
              ReplicaFaultTimeline::kNoEvent);
}

// ---- retry policy ------------------------------------------------------

TEST(Retry, ExponentialBackoffBoundsAttemptsAndRespectsDeadline)
{
    ExponentialBackoffRetry rp;
    rp.maxRetries = 2;
    rp.backoffBaseCycles = 1000;
    rp.backoffMult = 2.0;
    Request r = mkReq(0, 0, 10, 5);

    auto a1 = rp.reschedule(r, 1, 5000);
    auto a2 = rp.reschedule(r, 2, 5000);
    ASSERT_TRUE(a1.has_value());
    ASSERT_TRUE(a2.has_value());
    EXPECT_EQ(*a1, 6000u);
    EXPECT_EQ(*a2, 7000u); // backoff doubles
    EXPECT_FALSE(rp.reschedule(r, 3, 5000).has_value()); // > maxRetries

    r.deadlineAt = 5500; // re-arrival 6000 would already be too late
    EXPECT_FALSE(rp.reschedule(r, 1, 5000).has_value());
    r.deadlineAt = 6000;
    EXPECT_TRUE(rp.reschedule(r, 1, 5000).has_value());

    EXPECT_FALSE(NoRetryPolicy{}.reschedule(r, 1, 0).has_value());
}

// ---- engine fault semantics -------------------------------------------

TEST(EngineFaults, EmptyPlanMatchesFaultFreeRun)
{
    TraceConfig tc = burstyTrace(30);
    QueueDepthPolicy policy;
    auto run_with = [&](ReplicaFaultTimeline faults) {
        auto reqs = generateTrace(tc, 5);
        EngineConfig ec;
        ec.faults = std::move(faults);
        ServingEngine engine(ec, policy);
        return engine.run(reqs);
    };
    EngineResult base = run_with({});
    // A timeline whose only event lies far beyond the makespan must not
    // perturb a single cycle of the run.
    ReplicaFaultTimeline far;
    far.slowdowns.push_back({base.summary.makespan * 10,
                             base.summary.makespan * 11, 0.5});
    EngineResult same = run_with(far);
    EXPECT_EQ(base.iterations, same.iterations);
    EXPECT_EQ(base.summary.makespan, same.summary.makespan);
    EXPECT_EQ(base.summary.completed, same.summary.completed);
    EXPECT_EQ(base.summary.ttftP99, same.summary.ttftP99);
    EXPECT_EQ(base.summary.failedRequests, 0);
    EXPECT_DOUBLE_EQ(base.summary.availability, 1.0);
}

TEST(EngineFaults, PermanentCrashFailsEverythingAfterIt)
{
    TraceConfig tc = burstyTrace(30);
    QueueDepthPolicy policy;
    auto probe_reqs = generateTrace(tc, 5);
    EngineConfig ec;
    ServingEngine probe(ec, policy);
    const dam::Cycle makespan =
        probe.run(probe_reqs).summary.makespan;

    auto reqs = generateTrace(tc, 5);
    ec.faults.downs.push_back({makespan / 2, 0});
    ServingEngine engine(ec, policy);
    EngineResult r = engine.run(reqs);

    expectAllAccounted(reqs, r.summary);
    EXPECT_GT(r.summary.failedRequests, 0);
    EXPECT_GT(r.summary.completed, 0);
    EXPECT_LT(r.summary.availability, 1.0);
    EXPECT_GT(r.summary.availability, 0.0);
    for (const Request& q : reqs) {
        if (q.state != ReqState::Failed)
            continue;
        // Nothing finishes after the crash, and failures are stamped at
        // the crash (in-flight) or at their own arrival (refused).
        EXPECT_GE(q.finishedAt, makespan / 2);
    }
}

TEST(EngineFaults, RecoveryServesArrivalsAfterRepair)
{
    TraceConfig tc = burstyTrace(30);
    QueueDepthPolicy policy;
    auto probe_reqs = generateTrace(tc, 5);
    EngineConfig ec;
    ServingEngine probe(ec, policy);
    const dam::Cycle makespan =
        probe.run(probe_reqs).summary.makespan;

    auto reqs = generateTrace(tc, 5);
    const dam::Cycle fail_at = makespan / 4;
    const dam::Cycle recover_at = makespan / 2;
    ec.faults.downs.push_back({fail_at, recover_at});
    ServingEngine engine(ec, policy);
    EngineResult r = engine.run(reqs);

    expectAllAccounted(reqs, r.summary);
    EXPECT_GT(r.summary.failedRequests, 0);
    bool completed_after_recovery = false;
    for (const Request& q : reqs) {
        if (q.state == ReqState::Failed) {
            // Casualties fall inside [fail_at, recover_at): in-flight at
            // the crash or refused during downtime.
            EXPECT_GE(q.finishedAt, fail_at);
            EXPECT_LT(q.finishedAt, recover_at);
        }
        if (q.state == ReqState::Finished && q.arrival >= recover_at)
            completed_after_recovery = true;
    }
    EXPECT_TRUE(completed_after_recovery)
        << "recovered replica served no post-repair arrival";
}

TEST(EngineFaults, SlowdownWindowStretchesTheRun)
{
    TraceConfig tc = burstyTrace(20);
    QueueDepthPolicy policy;
    auto run_with = [&](double factor) {
        auto reqs = generateTrace(tc, 5);
        EngineConfig ec;
        if (factor < 1.0)
            ec.faults.slowdowns.push_back(
                {0, ReplicaFaultTimeline::kNoEvent, factor});
        ServingEngine engine(ec, policy);
        EngineResult r = engine.run(reqs);
        EXPECT_EQ(r.summary.completed, 20);
        return r.summary.makespan;
    };
    const dam::Cycle fast = run_with(1.0);
    const dam::Cycle slow = run_with(0.25);
    EXPECT_GT(slow, fast);
}

TEST(EngineFaults, CrashAccountingHoldsWithPrefixCache)
{
    // The crash teardown must return every KV reservation and cache pin
    // (the engine asserts both at the crash and at end of run — this
    // test fails via PanicError if the abort path leaks).
    TraceConfig tc = burstyTrace(30);
    tc.numSessions = 6;
    tc.turnsPerSession = 3;
    QueueDepthPolicy policy;
    auto probe_reqs = generateTrace(tc, 5);
    EngineConfig ec;
    ec.prefixCache.capacityTokens = 1 << 16;
    ServingEngine probe(ec, policy);
    const dam::Cycle makespan =
        probe.run(probe_reqs).summary.makespan;

    auto reqs = generateTrace(tc, 5);
    ec.faults.downs.push_back({makespan / 3, makespan / 2});
    ServingEngine engine(ec, policy);
    EngineResult r = engine.run(reqs);
    expectAllAccounted(reqs, r.summary);
    // The cache restarted cold after the crash, so stats still flow.
    EXPECT_GT(r.summary.prefixLookups, 0);
}

TEST(EngineFaults, DeadlinesCountMissesWithoutShedding)
{
    TraceConfig tc = burstyTrace(20);
    tc.deadlineCycles = 1; // everyone misses
    QueueDepthPolicy policy;
    auto reqs = generateTrace(tc, 5);
    EngineConfig ec;
    ServingEngine engine(ec, policy);
    EngineResult r = engine.run(reqs);
    EXPECT_EQ(r.summary.completed, 20);
    EXPECT_EQ(r.summary.deadlineMisses, 20);
    EXPECT_EQ(r.summary.shedRequests, 0);
    EXPECT_DOUBLE_EQ(r.summary.availability, 1.0); // misses still served
}

TEST(EngineFaults, DeadlineShedPolicyDropsSureLosers)
{
    TraceConfig tc = burstyTrace(20);
    tc.deadlineCycles = 1; // provably unmeetable for everyone
    QueueDepthPolicy policy;
    auto reqs = generateTrace(tc, 5);
    EngineConfig ec;
    DeadlineAwareShedPolicy shed;
    ec.admission = &shed;
    ServingEngine engine(ec, policy);
    EngineResult r = engine.run(reqs);
    expectAllAccounted(reqs, r.summary);
    EXPECT_EQ(r.summary.shedRequests, 20);
    EXPECT_EQ(r.summary.completed, 0);
    EXPECT_EQ(r.summary.deadlineMisses, 0);
    EXPECT_DOUBLE_EQ(r.summary.availability, 0.0);
    for (const Request& q : reqs) {
        EXPECT_EQ(q.state, ReqState::Shed);
        EXPECT_EQ(q.generated, 0); // shed requests emit no token
    }
}

// ---- stall diagnostics -------------------------------------------------

TEST(Stall, OversizedHeadThrowsStructuredStallError)
{
    EngineConfig ec;
    ec.batcher.kvBudgetBytes = 10 * 256;
    ec.batcher.kvBytesPerToken = 256;
    QueueDepthPolicy policy;
    std::vector<Request> reqs{mkReq(0, 0, 100, 100)};
    ServingEngine engine(ec, policy);
    try {
        engine.run(reqs);
        FAIL() << "expected StallError";
    } catch (const StallError& e) {
        const StallDiagnostic& d = e.diagnostic;
        EXPECT_FALSE(d.reason.empty());
        ASSERT_EQ(d.blocked.size(), 1u);
        EXPECT_EQ(d.blocked[0].id, 0);
        EXPECT_GT(d.blocked[0].needKvBytes, d.kvBudgetBytes);
        EXPECT_EQ(d.runningRequests, 0);
        EXPECT_EQ(d.kvReservedBytes, 0);
        // what() carries the human rendering of the same dump.
        EXPECT_NE(std::string(e.what()).find("head-of-line"),
                  std::string::npos);
    }
    // StallError remains catchable as the PanicError it subclasses.
    std::vector<Request> again{mkReq(0, 0, 100, 100)};
    ServingEngine engine2(ec, policy);
    EXPECT_THROW(engine2.run(again), PanicError);
}

// ---- cluster failover --------------------------------------------------

namespace {

TraceConfig
clusterTrace(int64_t n)
{
    TraceConfig tc = burstyTrace(n);
    tc.arrivalsPerKcycle = 0.0048; // 4 replicas absorb ~4x the stream
    return tc;
}

} // namespace

TEST(ClusterFaults, KillOneOfFourNoRetryDegradesAvailability)
{
    TraceConfig tc = clusterTrace(120);
    QueueDepthPolicy policy;
    ClusterConfig cc;
    cc.replicas = 4;
    cc.routing = RouteKind::LeastQueued;

    auto probe_reqs = generateTrace(tc, deriveSeed(2));
    ServingCluster probe(cc, policy);
    const dam::Cycle makespan =
        probe.run(probe_reqs).aggregate.makespan;

    NoRetryPolicy no_retry;
    cc.retry = &no_retry;
    cc.faults.crashes.push_back({1, makespan * 2 / 5, 0});
    auto reqs = generateTrace(tc, deriveSeed(2));
    ServingCluster cluster(cc, policy);
    ClusterResult r = cluster.run(reqs);

    expectAllAccounted(reqs, r.aggregate);
    EXPECT_GT(r.aggregate.failedRequests, 0);
    EXPECT_EQ(r.aggregate.retriedRequests, 0);
    EXPECT_EQ(r.retriesIssued, 0);
    EXPECT_LT(r.aggregate.availability, 1.0);
    EXPECT_GT(r.aggregate.availability, 0.5); // 3 of 4 kept serving
    EXPECT_EQ(r.aggregate.completed + r.aggregate.failedRequests +
                  r.aggregate.shedRequests,
              120);
    // Only the dead replica reports failures; survivors stay clean.
    for (const ReplicaResult& rr : r.replicas) {
        if (rr.replica == 1)
            EXPECT_GT(rr.result.summary.failedRequests, 0);
        else
            EXPECT_EQ(rr.result.summary.failedRequests, 0);
    }
}

TEST(ClusterFaults, FailoverRetriesRecoverTheCasualties)
{
    TraceConfig tc = clusterTrace(120);
    QueueDepthPolicy policy;
    ClusterConfig cc;
    cc.replicas = 4;
    cc.routing = RouteKind::LeastQueued;

    auto probe_reqs = generateTrace(tc, deriveSeed(2));
    ServingCluster probe(cc, policy);
    const dam::Cycle makespan =
        probe.run(probe_reqs).aggregate.makespan;

    cc.faults.crashes.push_back({1, makespan * 2 / 5, 0});
    auto reqs = generateTrace(tc, deriveSeed(2));
    ServingCluster cluster(cc, policy);
    ClusterResult r = cluster.run(reqs);

    expectAllAccounted(reqs, r.aggregate);
    EXPECT_GT(r.retriesIssued, 0);
    EXPECT_EQ(r.aggregate.retriedRequests, r.retriesIssued);
    // Default backoff failover re-serves every casualty: availability
    // returns to 1 and no request reports failed.
    EXPECT_EQ(r.aggregate.failedRequests, 0);
    EXPECT_DOUBLE_EQ(r.aggregate.availability, 1.0);
    EXPECT_EQ(r.aggregate.completed, 120);
    bool saw_retry_attempt = false;
    for (const Request& q : reqs)
        if (q.attempt > 0) {
            saw_retry_attempt = true;
            EXPECT_EQ(q.state, ReqState::Finished);
        }
    EXPECT_TRUE(saw_retry_attempt);
}

TEST(ClusterFaults, FaultyRunIsThreadCountInvariant)
{
    TraceConfig tc = clusterTrace(120);
    QueueDepthPolicy policy;

    auto run_with = [&](int64_t threads) {
        ClusterConfig cc;
        cc.replicas = 4;
        cc.threads = threads;
        cc.routing = RouteKind::LeastQueued;
        cc.faults.crashes.push_back({1, 20'000'000, 35'000'000});
        cc.faults.crashes.push_back({2, 50'000'000, 0});
        cc.faults.slowdowns.push_back({0, 10'000'000, 30'000'000, 0.5});
        auto reqs = generateTrace(tc, deriveSeed(2));
        ClusterResult r = ServingCluster(cc, policy).run(reqs);
        return std::make_pair(std::move(r), std::move(reqs));
    };
    auto [r1, q1] = run_with(1);
    auto [r4, q4] = run_with(4);

    EXPECT_EQ(r1.aggregate.completed, r4.aggregate.completed);
    EXPECT_EQ(r1.aggregate.failedRequests, r4.aggregate.failedRequests);
    EXPECT_EQ(r1.aggregate.retriedRequests, r4.aggregate.retriedRequests);
    EXPECT_EQ(r1.aggregate.shedRequests, r4.aggregate.shedRequests);
    EXPECT_EQ(r1.aggregate.makespan, r4.aggregate.makespan);
    EXPECT_EQ(r1.retriesIssued, r4.retriesIssued);
    EXPECT_EQ(r1.aggregate.ttftP99, r4.aggregate.ttftP99);
    EXPECT_EQ(r1.aggregate.availability, r4.aggregate.availability);
    ASSERT_EQ(q1.size(), q4.size());
    for (size_t i = 0; i < q1.size(); ++i) {
        EXPECT_EQ(q1[i].state, q4[i].state);
        EXPECT_EQ(q1[i].finishedAt, q4[i].finishedAt);
        EXPECT_EQ(q1[i].attempt, q4[i].attempt);
    }
}

TEST(ClusterFaults, RouterAvoidsRepicasDownAtArrival)
{
    TraceConfig tc = clusterTrace(60);
    QueueDepthPolicy policy;
    ClusterConfig cc;
    cc.replicas = 4;
    cc.routing = RouteKind::RoundRobin;
    // Replica 0 is down for the whole trace.
    cc.faults.crashes.push_back({0, 0, 0});
    auto reqs = generateTrace(tc, deriveSeed(2));
    ServingCluster cluster(cc, policy);
    const std::vector<int64_t> route = cluster.routeTrace(reqs);
    for (int64_t r : route)
        EXPECT_NE(r, 0);
    ClusterResult res = cluster.run(reqs);
    EXPECT_EQ(res.aggregate.completed, 60);
    EXPECT_EQ(res.aggregate.failedRequests, 0);
}

// ---- summary merging ---------------------------------------------------

TEST(Metrics, MergeFaultCountersAcrossHealthyAndDeadReplicas)
{
    // Replica A: zero faults. Replica B: fully failed (crashed at cycle
    // 0, nothing completed). The merge must sum counters and derive a
    // NaN-free availability.
    std::vector<Request> healthy;
    for (int i = 0; i < 4; ++i) {
        Request r = mkReq(i, 0, 10, 4);
        r.state = ReqState::Finished;
        r.firstTokenAt = 100 + i;
        r.finishedAt = 500 + i;
        r.generated = 4;
        healthy.push_back(r);
    }
    std::vector<Request> dead;
    for (int i = 4; i < 10; ++i) {
        Request r = mkReq(i, 0, 10, 4);
        r.state = ReqState::Failed;
        r.finishedAt = 50;
        dead.push_back(r);
    }
    SloConfig slo;
    ServingSummary a = summarize(healthy, 1000, slo);
    ServingSummary b = summarize(dead, 1000, slo);
    EXPECT_DOUBLE_EQ(a.availability, 1.0);
    EXPECT_DOUBLE_EQ(b.availability, 0.0);
    EXPECT_EQ(b.completed, 0);
    EXPECT_EQ(b.failedRequests, 6);

    // Reclassify two of the dead replica's failures as retried (what
    // the cluster does when failover re-served them elsewhere).
    b.failedRequests -= 2;
    b.retriedRequests += 2;
    refreshAvailability(b);
    EXPECT_DOUBLE_EQ(b.availability, 0.0); // still nothing completed

    ServingSummary m = mergeSummaries({a, b});
    EXPECT_EQ(m.completed, 4);
    EXPECT_EQ(m.failedRequests, 4);
    EXPECT_EQ(m.retriedRequests, 2);
    EXPECT_EQ(m.shedRequests, 0);
    EXPECT_DOUBLE_EQ(m.availability, 0.5); // 4 / (4 + 4)
    EXPECT_FALSE(std::isnan(m.ttftP99));
    EXPECT_FALSE(std::isnan(m.tpotP99));

    // Merging nothing but failures stays NaN-free too.
    ServingSummary all_dead = mergeSummaries({b, b});
    EXPECT_DOUBLE_EQ(all_dead.availability, 0.0);
    EXPECT_FALSE(std::isnan(all_dead.throughputTokensPerKcycle));

    // Shed requests join the denominator.
    ServingSummary c;
    c.completed = 3;
    c.shedRequests = 1;
    refreshAvailability(c);
    EXPECT_DOUBLE_EQ(c.availability, 0.75);
    // And an empty summary defines availability as 1 (not NaN).
    ServingSummary empty;
    refreshAvailability(empty);
    EXPECT_DOUBLE_EQ(empty.availability, 1.0);
}

TEST(ClusterFaults, SeededMtbfPlanConvergesSupersededIncarnations)
{
    // Regression for the wave-convergence abort cluster_sim hit at
    // `--mtbf 32000000` (default seed 42): when a crashed replica's
    // failover retry landed while the original replica's wave later
    // converged, the plain (non-resilience) accounting path asserted
    // that the superseded incarnation stayed Failed — which does not
    // hold once final-timeline recompute reconciles fates. The exact
    // cluster_sim trace and seeded fault plan reproduce that schedule.
    TraceConfig tc;
    tc.numRequests = 480;
    tc.arrivalsPerKcycle = 0.0048;
    tc.burstPeriod = 16'000'000;
    tc.burstDuty = 0.3;
    tc.burstFactor = 4.0;
    tc.promptSigma = 1.1;
    tc.outputSigma = 0.9;

    const auto probe = generateTrace(tc, deriveSeed(2));
    FaultPlanConfig fc;
    fc.mtbfCycles = 32'000'000;
    fc.mttrCycles = 8'000'000;
    fc.horizonCycles = probe.empty() ? 0 : probe.back().arrival * 2;

    QueueDepthPolicy policy;
    ClusterConfig cc;
    cc.replicas = 4;
    cc.faults = generateFaultPlan(fc, cc.replicas, deriveSeed(3));
    ASSERT_FALSE(cc.faults.empty()) << "plan must deliver faults";

    for (RouteKind routing : {RouteKind::RoundRobin,
                              RouteKind::LeastQueued,
                              RouteKind::HashAffinity}) {
        SCOPED_TRACE(routeKindName(routing));
        cc.routing = routing;
        auto reqs = generateTrace(tc, deriveSeed(2));
        ServingCluster cluster(cc, policy);
        ClusterResult r = cluster.run(reqs);
        expectAllAccounted(reqs, r.aggregate);
        EXPECT_EQ(r.aggregate.completed + r.aggregate.failedRequests +
                      r.aggregate.shedRequests,
                  480);
    }
}
