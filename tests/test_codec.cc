/**
 * @file
 * Tests of the stop-token protocol: encode/decode round trips, the
 * paper's example streams, stop coalescing, empty groups, and
 * well-formedness checking.
 */
#include <gtest/gtest.h>

#include "support/rng.hh"

#include "helpers.hh"

namespace step {
namespace {

using test::leaf;
using test::list;
using test::vec;

TEST(Codec, PaperExampleOne)
{
    // Example (1): 1,2,S1,3,S2,4,S1,5,6,7,S2,D with shape [2,2,D0].
    Nested n = list({list({vec({1, 2}), vec({3})}),
                     list({vec({4}), vec({5, 6, 7})})});
    auto toks = encodeNested(n, 3);
    EXPECT_EQ(tokensToString(toks),
              "Tile[1x1]{1}, Tile[1x1]{2}, S1, Tile[1x1]{3}, S2, "
              "Tile[1x1]{4}, S1, Tile[1x1]{5}, Tile[1x1]{6}, "
              "Tile[1x1]{7}, S2, D");
}

TEST(Codec, Rank1StreamHasNoStops)
{
    auto toks = encodeNested(vec({1, 2, 3}), 1);
    EXPECT_EQ(toks.size(), 4u);
    EXPECT_TRUE(toks[3].isDone());
    for (int i = 0; i < 3; ++i)
        EXPECT_TRUE(toks[static_cast<size_t>(i)].isData());
}

TEST(Codec, Rank2EndsWithS1Done)
{
    auto toks = encodeNested(list({vec({1, 2}), vec({3, 4})}), 2);
    ASSERT_EQ(toks.size(), 7u);
    EXPECT_TRUE(toks[2].isStop());
    EXPECT_EQ(toks[2].level(), 1u);
    EXPECT_TRUE(toks[5].isStop());
    EXPECT_EQ(toks[5].level(), 1u);
    EXPECT_TRUE(toks[6].isDone());
}

TEST(Codec, EmptyStreamIsJustDone)
{
    auto toks = encodeNested(Nested::list({}), 3);
    ASSERT_EQ(toks.size(), 1u);
    EXPECT_TRUE(toks[0].isDone());
}

TEST(Codec, EmptyMiddleGroupEncodesAdjacentStops)
{
    // [2 elements][empty][1 element] at rank 2.
    Nested n = list({vec({1, 2}), vec({}), vec({3})});
    auto toks = encodeNested(n, 2);
    EXPECT_EQ(tokensToString(toks),
              "Tile[1x1]{1}, Tile[1x1]{2}, S1, S1, Tile[1x1]{3}, S1, D");
    Nested back = decodeNested(toks, 2);
    ASSERT_EQ(back.children().size(), 3u);
    EXPECT_EQ(back.children()[1].children().size(), 0u);
}

TEST(Codec, TrailingEmptyGroupSurvivesRoundTrip)
{
    Nested n = list({list({vec({1, 2}), vec({})})});
    auto toks = encodeNested(n, 3);
    // The empty trailing vector's S1 upgrades to S2 (highest-stop rule);
    // decode still reconstructs the empty vector.
    EXPECT_EQ(tokensToString(toks),
              "Tile[1x1]{1}, Tile[1x1]{2}, S1, S2, D");
    Nested back = decodeNested(toks, 3);
    ASSERT_EQ(back.children().size(), 1u);
    ASSERT_EQ(back.children()[0].children().size(), 2u);
    EXPECT_EQ(back.children()[0].children()[1].children().size(), 0u);
}

TEST(Codec, RaggedRoundTrip)
{
    Nested n = list({vec({1}), vec({2, 3, 4}), vec({}), vec({5, 6})});
    auto toks = encodeNested(n, 2);
    Nested back = decodeNested(toks, 2);
    ASSERT_EQ(back.children().size(), 4u);
    EXPECT_EQ(test::leavesOf(back),
              (std::vector<float>{1, 2, 3, 4, 5, 6}));
    EXPECT_EQ(back.children()[2].children().size(), 0u);
}

TEST(Codec, CoalescerUpgradesNestedEnds)
{
    StopCoalescer c;
    std::vector<Token> out;
    auto push = [&](auto&& ts) {
        for (auto& t : ts)
            out.push_back(std::move(t));
    };
    push(c.onData(test::val(1)));
    push(c.onStop(1));
    push(c.onStop(2)); // upgrades the pending S1
    push(c.onDone());
    EXPECT_EQ(tokensToString(out), "Tile[1x1]{1}, S2, D");
}

TEST(Codec, CoalescerKeepsEmptyGroups)
{
    StopCoalescer c;
    std::vector<Token> out;
    auto push = [&](auto&& ts) {
        for (auto& t : ts)
            out.push_back(std::move(t));
    };
    push(c.onStop(1));
    push(c.onStop(1)); // same level: flushes the first (empty group)
    push(c.onData(test::val(1)));
    push(c.onDone());
    EXPECT_EQ(tokensToString(out), "S1, S1, Tile[1x1]{1}, D");
}

TEST(Codec, WellFormedAcceptsValid)
{
    auto toks = encodeNested(list({vec({1}), vec({2, 3})}), 2);
    EXPECT_FALSE(checkWellFormed(toks, 2).has_value());
}

TEST(Codec, WellFormedRejectsBadLevels)
{
    std::vector<Token> toks{Token::data(test::val(1)), Token::stop(3),
                            Token::done()};
    EXPECT_TRUE(checkWellFormed(toks, 2).has_value());
}

TEST(Codec, WellFormedRejectsMissingDone)
{
    std::vector<Token> toks{Token::data(test::val(1))};
    EXPECT_TRUE(checkWellFormed(toks, 1).has_value());
}

TEST(Codec, WellFormedRejectsUnclosedDims)
{
    // rank 3 stream whose data is never closed by S2.
    std::vector<Token> toks{Token::data(test::val(1)), Token::stop(1),
                            Token::done()};
    EXPECT_TRUE(checkWellFormed(toks, 3).has_value());
}

TEST(Codec, WellFormedRejectsTokenAfterDone)
{
    std::vector<Token> toks{Token::done(), Token::data(test::val(1))};
    EXPECT_TRUE(checkWellFormed(toks, 1).has_value());
}

/** Round-trip property over pseudo-random ragged trees. */
class CodecRoundTrip : public ::testing::TestWithParam<uint64_t> {};

namespace {

Nested
randomTree(Rng& rng, size_t depth, float& counter)
{
    if (depth == 0)
        return leaf(counter++);
    size_t n = rng.uniformInt(4); // 0..3 children
    std::vector<Nested> kids;
    for (size_t i = 0; i < n; ++i)
        kids.push_back(randomTree(rng, depth - 1, counter));
    return Nested::list(std::move(kids));
}

} // namespace

TEST_P(CodecRoundTrip, EncodeDecodeIdentity)
{
    Rng rng(GetParam());
    for (size_t rank = 1; rank <= 4; ++rank) {
        float counter = 1.0f;
        Nested n = randomTree(rng, rank, counter);
        auto toks = encodeNested(n, rank);
        ASSERT_FALSE(checkWellFormed(toks, rank).has_value())
            << tokensToString(toks);
        Nested back = decodeNested(toks, rank);
        EXPECT_EQ(test::leavesOf(back), test::leavesOf(n));
        // Group counts at the top level must survive unless trailing
        // groups were entirely empty (those are preserved too).
        EXPECT_EQ(back.children().size(), n.children().size())
            << "rank " << rank << ": " << tokensToString(toks);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecRoundTrip,
                         ::testing::Range<uint64_t>(1, 26));

} // namespace
} // namespace step
