/**
 * @file
 * Resilience-tier tests: breaker timelines derived from fault plans
 * (detection lag, cooldown, permanent crashes), the brown-out admission
 * ladder's pressure rungs, the autoscaler's step timeline, health-scored
 * placement (affinity preference, half-open penalty, parking waivers),
 * prefix-cache idle-TTL eviction, the engine's slowdown-drain migration,
 * and the cluster acceptance criteria: under a crash+slowdown plan the
 * tier beats plain failover on tail latency without losing availability,
 * stays thread-count invariant, and — disabled — leaves the plain fault
 * tier's behavior untouched.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "runtime/cluster.hh"
#include "support/rng.hh"

using namespace step;
using namespace step::runtime;

namespace {

TraceConfig
burstyTrace(int64_t n)
{
    TraceConfig tc;
    tc.numRequests = n;
    tc.arrivalsPerKcycle = 0.0012;
    tc.burstPeriod = 16'000'000;
    tc.burstDuty = 0.3;
    tc.burstFactor = 4.0;
    return tc;
}

/** Skewed multi-turn cluster workload: sessions with nested prefixes
 *  and heavy-tailed lengths, 4 replicas' worth of arrivals. */
TraceConfig
sessionClusterTrace(int64_t sessions, int64_t turns)
{
    TraceConfig tc = burstyTrace(0);
    tc.arrivalsPerKcycle = 0.0048;
    tc.numSessions = sessions;
    tc.turnsPerSession = turns;
    tc.promptSigma = 1.1;
    tc.outputSigma = 0.9;
    return tc;
}

void
expectAccountingCloses(const ServingSummary& s, int64_t submitted)
{
    EXPECT_EQ(s.completed + s.failedRequests + s.shedRequests, submitted)
        << "availability accounting does not close";
}

} // namespace

// ---- circuit breakers --------------------------------------------------

TEST(Breaker, CrashOpensImmediatelyAndRecoveryHalfOpens)
{
    ReplicaFaultTimeline t;
    t.downs.push_back({1'000'000, 3'000'000});
    BreakerConfig bc; // cooldown 2'000'000
    BreakerTimeline b = computeBreakerTimeline(t, bc);

    EXPECT_EQ(b.stateAt(999'999), BreakerState::Closed);
    EXPECT_EQ(b.stateAt(1'000'000), BreakerState::Open);
    EXPECT_EQ(b.stateAt(2'999'999), BreakerState::Open);
    EXPECT_EQ(b.stateAt(3'000'000), BreakerState::HalfOpen);
    EXPECT_EQ(b.stateAt(4'999'999), BreakerState::HalfOpen);
    EXPECT_EQ(b.stateAt(5'000'000), BreakerState::Closed);
    EXPECT_TRUE(b.openAt(2'000'000));
    EXPECT_FALSE(b.openAt(3'000'000));
}

TEST(Breaker, OnlySustainedDeepSlowdownsTripAfterTheDetectionLag)
{
    BreakerConfig bc; // detect 500k, openBelow 0.75, cooldown 2M
    // Deep and long: trips, but only detectCycles after onset.
    ReplicaFaultTimeline deep;
    deep.slowdowns.push_back({1'000'000, 4'000'000, 0.5});
    BreakerTimeline b = computeBreakerTimeline(deep, bc);
    EXPECT_EQ(b.stateAt(1'000'000), BreakerState::Closed); // lag
    EXPECT_EQ(b.stateAt(1'500'000), BreakerState::Open);
    EXPECT_EQ(b.stateAt(4'000'000), BreakerState::HalfOpen);
    EXPECT_EQ(b.stateAt(6'000'000), BreakerState::Closed);

    // Deep but shorter than the detection lag: never trips.
    ReplicaFaultTimeline blip;
    blip.slowdowns.push_back({1'000'000, 1'400'000, 0.5});
    BreakerTimeline bb = computeBreakerTimeline(blip, bc);
    EXPECT_TRUE(bb.open.empty());
    EXPECT_TRUE(bb.halfOpen.empty());

    // Long but shallow (above openBelowFactor): never trips.
    ReplicaFaultTimeline shallow;
    shallow.slowdowns.push_back({1'000'000, 9'000'000, 0.9});
    BreakerTimeline bs = computeBreakerTimeline(shallow, bc);
    EXPECT_TRUE(bs.open.empty());
}

TEST(Breaker, PermanentCrashOpensForeverWithNoProbation)
{
    ReplicaFaultTimeline t;
    t.downs.push_back({500, 0});
    BreakerTimeline b = computeBreakerTimeline(t, BreakerConfig{});
    EXPECT_EQ(b.stateAt(499), BreakerState::Closed);
    EXPECT_EQ(b.stateAt(500), BreakerState::Open);
    EXPECT_EQ(b.stateAt(ReplicaFaultTimeline::kNoEvent - 1),
              BreakerState::Open);
    EXPECT_TRUE(b.halfOpen.empty());
}

// ---- brown-out admission ladder ----------------------------------------

namespace {

AdmissionContext
ctxWithQueue(int64_t waiting)
{
    AdmissionContext ctx;
    ctx.waitingRequests = waiting;
    ctx.kvBudgetBytes = 1'000;
    ctx.kvReservedBytes = 0;
    ctx.totalComputeBw = 8192;
    ctx.nominalComputeBw = 8192;
    return ctx;
}

Request
reqWithPriority(ReqPriority p)
{
    Request r;
    r.promptLen = 64;
    r.outputLen = 16;
    r.priority = p;
    return r;
}

} // namespace

TEST(Brownout, PressureIsTheWorstOfQueueKvAndBandwidthSignals)
{
    BrownoutConfig bc; // queueFullDepth 64
    AdmissionContext ctx = ctxWithQueue(32);
    EXPECT_DOUBLE_EQ(BrownoutPolicy::pressure(ctx, bc), 0.5);
    ctx.kvReservedBytes = 800; // KV signal 0.8 dominates
    EXPECT_DOUBLE_EQ(BrownoutPolicy::pressure(ctx, bc), 0.8);
    ctx.totalComputeBw = 819; // 90% degraded dominates everything
    EXPECT_NEAR(BrownoutPolicy::pressure(ctx, bc), 0.9, 1e-3);
    // An engine that predates the nominal-bandwidth signal reports 0
    // for it; degradation then reads as "not degraded", never negative.
    ctx.nominalComputeBw = 0;
    ctx.kvReservedBytes = 0;
    ctx.waitingRequests = 0;
    EXPECT_DOUBLE_EQ(BrownoutPolicy::pressure(ctx, bc), 0.0);
}

TEST(Brownout, LadderRungsEngageInPriorityOrder)
{
    BrownoutPolicy pol; // shedLowAt .5, capAt .75, refuseAt .95
    const Request low = reqWithPriority(ReqPriority::Low);
    const Request normal = reqWithPriority(ReqPriority::Normal);
    const Request high = reqWithPriority(ReqPriority::High);

    // Below every rung: nobody shed, nobody capped.
    AdmissionContext calm = ctxWithQueue(16); // pressure 0.25
    EXPECT_FALSE(pol.shouldShed(low, calm));
    EXPECT_EQ(pol.outputCap(normal, calm), 0);

    // Rung 1: low-priority sheds, normal and high ride on, no caps.
    AdmissionContext busy = ctxWithQueue(36); // pressure ~0.56
    EXPECT_TRUE(pol.shouldShed(low, busy));
    EXPECT_FALSE(pol.shouldShed(normal, busy));
    EXPECT_FALSE(pol.shouldShed(high, busy));
    EXPECT_EQ(pol.outputCap(normal, busy), 0);

    // Rung 2: output caps engage for everyone below High.
    AdmissionContext hot = ctxWithQueue(52); // pressure ~0.81
    EXPECT_FALSE(pol.shouldShed(normal, hot));
    EXPECT_EQ(pol.outputCap(normal, hot), pol.cfg.outputCapTokens);
    EXPECT_EQ(pol.outputCap(low, hot), pol.cfg.outputCapTokens);
    EXPECT_EQ(pol.outputCap(high, hot), 0);

    // Rung 3: everything but High refused.
    AdmissionContext melt = ctxWithQueue(64); // pressure 1.0
    EXPECT_TRUE(pol.shouldShed(low, melt));
    EXPECT_TRUE(pol.shouldShed(normal, melt));
    EXPECT_FALSE(pol.shouldShed(high, melt));
}

TEST(Brownout, ComposesWithAFallbackPolicy)
{
    // The fallback (deadline shedding) is consulted when no rung fires.
    DeadlineAwareShedPolicy ddl;
    BrownoutPolicy pol;
    pol.fallback = &ddl;
    AdmissionContext calm = ctxWithQueue(0);
    calm.prefillFlopsPerToken = 100.0;
    calm.totalComputeBw = 1; // prefill would take promptLen*100 cycles
    calm.nominalComputeBw = 1;
    Request r = reqWithPriority(ReqPriority::Normal);
    r.deadlineAt = 10; // provably unmeetable
    EXPECT_TRUE(pol.shouldShed(r, calm));
    r.deadlineAt = 0;
    EXPECT_FALSE(pol.shouldShed(r, calm));
}

// ---- autoscaler --------------------------------------------------------

TEST(Autoscale, ParksIdleReplicasAndReactivatesUnderLoad)
{
    AutoscaleConfig ac;
    ac.enabled = true;
    ac.evalIntervalCycles = 1'000'000;
    ac.minReplicas = 1;

    // A long quiet stretch, then a heavy burst: the scaler should park
    // replicas early and win them back when the burst lands.
    std::vector<Request> reqs;
    for (int i = 0; i < 40; ++i) {
        Request r;
        r.id = i;
        // 2 light early arrivals, then 38 heavy ones late.
        r.arrival = i < 2 ? i * 500'000 : 20'000'000 + i * 10'000;
        r.promptLen = i < 2 ? 16 : 1024;
        r.outputLen = i < 2 ? 4 : 128;
        reqs.push_back(r);
    }
    // flopsPerToken sized so the burst saturates one active replica
    // (38 reqs x ~1152 tok x 200k flops vs 8192 flops/cyc x 1M cyc)
    // but not the full fleet — exercising both scaler directions.
    const auto steps = computeAutoscaleTimeline(ac, reqs, {}, 4,
                                                /*flopsPerToken=*/200'000,
                                                /*perReplicaBw=*/8192);
    ASSERT_FALSE(steps.empty());
    int64_t min_active = 4, max_after_park = 0;
    bool parked_then_grew = false;
    int64_t prev = 4;
    for (const AutoscaleStep& s : steps) {
        EXPECT_GE(s.active, 1);
        EXPECT_LE(s.active, 4);
        // Steps move one replica at a time (the hysteresis contract).
        EXPECT_EQ(std::abs(s.active - prev), 1);
        if (s.active > prev && prev < 4)
            parked_then_grew = true;
        prev = s.active;
        min_active = std::min(min_active, s.active);
        max_after_park = std::max(max_after_park, s.active);
    }
    EXPECT_LT(min_active, 4) << "idle stretch never parked a replica";
    EXPECT_TRUE(parked_then_grew) << "burst never reactivated capacity";

    // The lookup helper agrees with the steps and defaults to the full
    // fleet before the first one.
    EXPECT_EQ(autoscaleActiveAt(steps, 0, 4), 4);
    EXPECT_EQ(autoscaleActiveAt(steps, steps.back().at, 4),
              steps.back().active);

    // Disabled or empty input: no timeline at all.
    EXPECT_TRUE(computeAutoscaleTimeline({}, reqs, {}, 4, 5'000, 8192)
                    .empty());
    EXPECT_TRUE(computeAutoscaleTimeline(ac, {}, {}, 4, 5'000, 8192)
                    .empty());
}

// ---- health-scored placement ------------------------------------------

TEST(Placement, PicksLeastLoadedAliveWithTiesToLowestIndex)
{
    const std::vector<int64_t> load{50, 20, 20, 90};
    EXPECT_EQ(pickResilientTarget(load, {}, {}, {}, 0, -1, 1.5, 2.0), 1);

    FaultPlan plan;
    plan.crashes.push_back({1, 0, 0}); // best candidate is dead
    EXPECT_EQ(pickResilientTarget(load, plan, {}, {}, 0, -1, 1.5, 2.0),
              2);

    // Everyone dead: no target.
    FaultPlan all_dead;
    for (int64_t r = 0; r < 4; ++r)
        all_dead.crashes.push_back({r, 0, 0});
    EXPECT_EQ(
        pickResilientTarget(load, all_dead, {}, {}, 0, -1, 1.5, 2.0), -1);
}

TEST(Placement, OpenBreakerExcludesUnlessNoAlternative)
{
    const std::vector<int64_t> load{10, 80};
    ReplicaFaultTimeline slow;
    slow.slowdowns.push_back({0, 10'000'000, 0.5});
    BreakerConfig bc;
    std::vector<BreakerTimeline> breakers{
        computeBreakerTimeline(slow, bc), BreakerTimeline{}};
    // Replica 0 is cheap but breaker-open: traffic shifts to 1.
    const dam::Cycle at = 1'000'000;
    ASSERT_TRUE(breakers[0].openAt(at));
    EXPECT_EQ(pickResilientTarget(load, {}, breakers, {}, at, -1, 1.5,
                                  2.0),
              1);
    // With replica 1 dead, the open breaker is waived — an open breaker
    // beats a dead cluster.
    FaultPlan plan;
    plan.crashes.push_back({1, 0, 0});
    EXPECT_EQ(pickResilientTarget(load, plan, breakers, {}, at, -1, 1.5,
                                  2.0),
              0);
}

TEST(Placement, HalfOpenPenaltyAndSlowdownScaleTheScore)
{
    // Replica 0: load 10, half-open (score 10 * 2 = 20).
    // Replica 1: load 15, closed (score 15). 1 wins despite more load.
    ReplicaFaultTimeline recovered;
    recovered.downs.push_back({0, 1'000});
    BreakerConfig bc;
    std::vector<BreakerTimeline> breakers{
        computeBreakerTimeline(recovered, bc), BreakerTimeline{}};
    const dam::Cycle at = 2'000; // inside the cooldown
    ASSERT_EQ(breakers[0].stateAt(at), BreakerState::HalfOpen);
    EXPECT_EQ(pickResilientTarget({10, 15}, {}, breakers, {}, at, -1,
                                  1.5, 2.0),
              1);
    // A shallow slowdown (not breaker-worthy) still inflates the score:
    // replica 0 at factor 0.8 scores 10 / 0.8 = 12.5 > 11.
    FaultPlan plan;
    plan.slowdowns.push_back({0, 0, 10'000, 0.8});
    EXPECT_EQ(
        pickResilientTarget({10, 11}, plan, {}, {}, 0, -1, 1.5, 2.0), 1);
}

TEST(Placement, AffinityOwnerWinsWithinItsLoadFactor)
{
    // Owner (replica 2) carries 30 against a minimum of 25: within the
    // 1.5x allowance, the warm cache wins.
    EXPECT_EQ(pickResilientTarget({40, 25, 30}, {}, {}, {}, 0, 2, 1.5,
                                  2.0),
              2);
    // At 60 it is past the allowance: least-loaded wins instead.
    EXPECT_EQ(pickResilientTarget({40, 25, 60}, {}, {}, {}, 0, 2, 1.5,
                                  2.0),
              1);
    // A dead owner never wins, whatever its load.
    FaultPlan plan;
    plan.crashes.push_back({2, 0, 0});
    EXPECT_EQ(pickResilientTarget({40, 25, 0}, plan, {}, {}, 0, 2, 1.5,
                                  2.0),
              1);
}

TEST(Placement, AutoscaleParkingRestrictsAndIsWaivedWhenEmpty)
{
    std::vector<AutoscaleStep> steps{{0, 2}};
    // Replicas 2 and 3 are parked: the cheap parked replica is skipped.
    EXPECT_EQ(pickResilientTarget({50, 40, 5, 5}, {}, {}, steps, 100, -1,
                                  1.5, 2.0),
              1);
    // Both active replicas dead: parking is waived rather than failing.
    FaultPlan plan;
    plan.crashes.push_back({0, 0, 0});
    plan.crashes.push_back({1, 0, 0});
    EXPECT_EQ(pickResilientTarget({50, 40, 5, 5}, plan, {}, steps, 100,
                                  -1, 1.5, 2.0),
              2);
}

// ---- prefix-cache idle TTL ---------------------------------------------

namespace {

/** Chained block hashes for a synthetic n-block stream. */
std::vector<uint64_t>
chainedHashes(uint64_t salt, int64_t nblocks)
{
    std::vector<uint64_t> h;
    uint64_t acc = salt;
    for (int64_t i = 0; i < nblocks; ++i) {
        acc = prefixHashMix(acc, uint64_t(i) + 1);
        h.push_back(acc);
    }
    return h;
}

} // namespace

TEST(PrefixCacheTtl, IdleSweepEvictsColdEntriesButNeverPinnedOnes)
{
    PrefixCacheConfig pc;
    pc.capacityTokens = 1 << 16;
    pc.idleTtlCycles = 1'000'000;
    PrefixCache cache(pc);

    // Session A: inserted at t=0 then never touched again.
    const auto cold = chainedHashes(1, 4);
    cache.setClock(0);
    cache.insert(cold, 4);
    // Session B: inserted at t=0 and pinned by an admitted request.
    Request hot;
    hot.id = 7;
    hot.blockHashes = chainedHashes(2, 4);
    hot.promptBlocks = 4;
    hot.promptLen = 4 * kPrefixBlockTokens;
    cache.insert(hot.blockHashes, 4);
    ASSERT_EQ(cache.matchTokens(hot), hot.promptLen - 1);
    cache.acquire(hot);

    // Sweep before the TTL elapses: nothing moves.
    cache.setClock(999'999);
    EXPECT_EQ(cache.evictIdle(), 0);

    // Past the TTL: the cold path is swept, the pinned path survives.
    cache.setClock(2'000'000);
    const int64_t swept = cache.evictIdle();
    EXPECT_EQ(swept, 4);
    EXPECT_EQ(cache.stats().ttlEvictedBlocks, 4);
    Request probe_cold;
    probe_cold.blockHashes = cold;
    probe_cold.promptBlocks = 4;
    probe_cold.promptLen = 4 * kPrefixBlockTokens;
    EXPECT_EQ(cache.matchTokens(probe_cold), 0);
    EXPECT_EQ(cache.matchTokens(hot), hot.promptLen - 1);

    // Released (session over), the next sweep reclaims it too.
    cache.release(hot);
    cache.setClock(4'000'000);
    EXPECT_GT(cache.evictIdle(), 0);
    EXPECT_EQ(cache.matchTokens(hot), 0);
    EXPECT_EQ(cache.pinnedRequests(), 0);
    EXPECT_EQ(cache.occupancyTokens(), 0);

    // TTL 0 (the default) never sweeps, whatever the clock says.
    PrefixCache no_ttl(PrefixCacheConfig{1 << 16, 0});
    no_ttl.insert(cold, 4);
    no_ttl.setClock(ReplicaFaultTimeline::kNoEvent - 1);
    EXPECT_EQ(no_ttl.evictIdle(), 0);
    EXPECT_EQ(no_ttl.stats().ttlEvictedBlocks, 0);
}

// ---- engine slowdown drain ---------------------------------------------

TEST(EngineDrain, DeepSlowdownMigratesQueuedAndPrefillingWork)
{
    // Overload a single engine (a cluster's worth of arrivals into a
    // tight KV budget) so the queue stays deep — the drain edge must
    // catch work still waiting or prefilling, not just decoding.
    TraceConfig tc = burstyTrace(30);
    tc.arrivalsPerKcycle = 0.0048;
    QueueDepthPolicy policy;
    auto probe_reqs = generateTrace(tc, 5);
    EngineConfig ec;
    ec.batcher.kvBudgetBytes = 2000 * 256;
    ec.batcher.kvBytesPerToken = 256;
    ServingEngine probe(ec, policy);
    const dam::Cycle makespan = probe.run(probe_reqs).summary.makespan;

    // A deep slowdown covering the back half of the run, with the drain
    // armed at the breaker's detection parameters.
    const dam::Cycle start = makespan / 3;
    ec.faults.slowdowns.push_back({start, makespan * 2, 0.5});
    ec.drain.enabled = true;
    auto reqs = generateTrace(tc, 5);
    ServingEngine engine(ec, policy);
    EngineResult r = engine.run(reqs);

    EXPECT_GT(r.summary.migratedRequests, 0);
    const dam::Cycle edge = start + ec.drain.detectCycles;
    int64_t migrated = 0;
    for (const Request& q : reqs) {
        EXPECT_TRUE(q.terminal());
        if (q.state != ReqState::Migrated)
            continue;
        ++migrated;
        // Drained at the detection edge or refused on a later arrival —
        // never before the window plus the lag.
        EXPECT_GE(q.finishedAt, edge);
        // A drained request never produced a token here (decoding
        // requests stay and finish locally).
        EXPECT_EQ(q.generated, 0);
    }
    EXPECT_EQ(migrated, r.summary.migratedRequests);
    EXPECT_GT(r.summary.completed, 0) << "pre-window work should finish";

    // Drain disabled (the default): the same plan migrates nothing.
    EngineConfig plain = ec;
    plain.drain.enabled = false;
    auto reqs2 = generateTrace(tc, 5);
    ServingEngine engine2(plain, policy);
    EXPECT_EQ(engine2.run(reqs2).summary.migratedRequests, 0);
}

// ---- cluster acceptance ------------------------------------------------

namespace {

/** Crash + slowdown plan scaled to the trace's makespan: one mid-run
 *  replica outage, one deep sustained slowdown, one late blip. */
FaultPlan
acceptancePlan(dam::Cycle makespan)
{
    FaultPlan plan;
    plan.crashes.push_back({1, makespan / 4, makespan * 5 / 12});
    plan.crashes.push_back({3, makespan * 7 / 10, makespan * 4 / 5});
    plan.slowdowns.push_back(
        {2, makespan / 3, makespan * 2 / 3, 0.4});
    plan.slowdowns.push_back(
        {0, makespan * 3 / 5, makespan * 7 / 10, 0.5});
    return plan;
}

} // namespace

TEST(Resilience, BeatsPlainFailoverOnTailLatencyWithoutLosingAvailability)
{
    TraceConfig tc = sessionClusterTrace(40, 4); // 160 requests
    QueueDepthPolicy policy;
    ClusterConfig cc;
    cc.replicas = 4;
    cc.routing = RouteKind::LeastQueued;
    cc.engine.prefixCache.capacityTokens = 1 << 18;

    auto probe_reqs = generateTrace(tc, deriveSeed(2));
    ServingCluster probe(cc, policy);
    const dam::Cycle makespan = probe.run(probe_reqs).aggregate.makespan;
    const int64_t submitted = int64_t(probe_reqs.size());

    cc.faults = acceptancePlan(makespan);

    // PR 7 baseline: plain failover through the default retry policy.
    auto plain_reqs = generateTrace(tc, deriveSeed(2));
    ClusterResult plain = ServingCluster(cc, policy).run(plain_reqs);
    expectAccountingCloses(plain.aggregate, submitted);

    // The resilience tier: migration, health-scored routing, breakers,
    // cross-replica prefix reuse (no brown-out/autoscale — this test
    // isolates the latency/availability claim from capacity shaping).
    cc.resilience.enabled = true;
    cc.resilience.remotePrefix.enabled = true;
    auto res_reqs = generateTrace(tc, deriveSeed(2));
    ClusterResult res = ServingCluster(cc, policy).run(res_reqs);
    expectAccountingCloses(res.aggregate, submitted);

    // The acceptance criteria: better tail latency, no availability
    // regression, and the migration machinery actually exercised.
    EXPECT_LT(res.aggregate.ttftP99, plain.aggregate.ttftP99)
        << "resilience tier does not beat plain failover on p99 TTFT";
    EXPECT_GE(res.aggregate.availability, plain.aggregate.availability);
    EXPECT_GT(res.migrationsIssued, 0)
        << "slowdown drain never migrated a request";
    EXPECT_EQ(plain.migrationsIssued, 0);

    // Migrated incarnations are transit, not outcomes: every request
    // still ends Finished, Failed, or Shed.
    for (const Request& q : res_reqs)
        EXPECT_TRUE(q.state == ReqState::Finished ||
                    q.state == ReqState::Failed ||
                    q.state == ReqState::Shed)
            << "request " << q.id << " left in transit";
}

TEST(Resilience, DisabledTierLeavesThePlainFaultTierUntouched)
{
    TraceConfig tc = sessionClusterTrace(24, 3);
    QueueDepthPolicy policy;
    ClusterConfig cc;
    cc.replicas = 4;
    cc.routing = RouteKind::LeastQueued;
    cc.engine.prefixCache.capacityTokens = 1 << 18;

    auto base_reqs = generateTrace(tc, deriveSeed(2));
    ClusterResult base = ServingCluster(cc, policy).run(base_reqs);

    // enabled == false gates everything: sub-config tweaks must be
    // inert, matching the plain run request for request.
    cc.resilience.enabled = false;
    cc.resilience.remotePrefix.enabled = true;
    cc.resilience.autoscale.enabled = true;
    cc.resilience.migration.maxMigrations = 99;
    auto off_reqs = generateTrace(tc, deriveSeed(2));
    ClusterResult off = ServingCluster(cc, policy).run(off_reqs);

    EXPECT_EQ(base.aggregate.makespan, off.aggregate.makespan);
    EXPECT_EQ(base.aggregate.completed, off.aggregate.completed);
    EXPECT_EQ(base.aggregate.ttftP99, off.aggregate.ttftP99);
    EXPECT_EQ(base.aggregate.migratedRequests, 0);
    EXPECT_EQ(off.aggregate.migratedRequests, 0);
    EXPECT_EQ(off.migrationsIssued, 0);
    EXPECT_TRUE(off.autoscale.empty());
    ASSERT_EQ(base_reqs.size(), off_reqs.size());
    for (size_t i = 0; i < base_reqs.size(); ++i) {
        EXPECT_EQ(base_reqs[i].state, off_reqs[i].state);
        EXPECT_EQ(base_reqs[i].finishedAt, off_reqs[i].finishedAt);
        EXPECT_EQ(base_reqs[i].firstTokenAt, off_reqs[i].firstTokenAt);
    }
}

TEST(Resilience, FaultyResilientRunIsThreadCountInvariantAndReplays)
{
    TraceConfig tc = sessionClusterTrace(24, 3);
    tc.lowPriorityFrac = 0.2;
    tc.highPriorityFrac = 0.1;
    QueueDepthPolicy policy;

    auto run_with = [&](int64_t threads) {
        ClusterConfig cc;
        cc.replicas = 4;
        cc.threads = threads;
        cc.routing = RouteKind::LeastQueued;
        cc.engine.prefixCache.capacityTokens = 1 << 18;
        cc.faults.crashes.push_back({1, 20'000'000, 45'000'000});
        cc.faults.slowdowns.push_back({2, 30'000'000, 80'000'000, 0.5});
        cc.resilience.enabled = true;
        cc.resilience.remotePrefix.enabled = true;
        cc.resilience.autoscale.enabled = true;
        auto reqs = generateTrace(tc, deriveSeed(2));
        ClusterResult r = ServingCluster(cc, policy).run(reqs);
        return std::make_pair(std::move(r), std::move(reqs));
    };
    auto [r1, q1] = run_with(1);
    auto [r4, q4] = run_with(4);
    auto [r1b, q1b] = run_with(1); // same seed replays bit-identically

    EXPECT_EQ(r1.aggregate.completed, r4.aggregate.completed);
    EXPECT_EQ(r1.aggregate.failedRequests, r4.aggregate.failedRequests);
    EXPECT_EQ(r1.aggregate.shedRequests, r4.aggregate.shedRequests);
    EXPECT_EQ(r1.aggregate.migratedRequests,
              r4.aggregate.migratedRequests);
    EXPECT_EQ(r1.aggregate.makespan, r4.aggregate.makespan);
    EXPECT_EQ(r1.aggregate.ttftP99, r4.aggregate.ttftP99);
    EXPECT_EQ(r1.retriesIssued, r4.retriesIssued);
    EXPECT_EQ(r1.migrationsIssued, r4.migrationsIssued);
    EXPECT_EQ(r1.migrationsIssued, r1b.migrationsIssued);
    EXPECT_EQ(r1.aggregate.makespan, r1b.aggregate.makespan);
    ASSERT_EQ(q1.size(), q4.size());
    for (size_t i = 0; i < q1.size(); ++i) {
        EXPECT_EQ(q1[i].state, q4[i].state);
        EXPECT_EQ(q1[i].finishedAt, q4[i].finishedAt);
        EXPECT_EQ(q1[i].attempt, q4[i].attempt);
        EXPECT_EQ(q1[i].state, q1b[i].state);
        EXPECT_EQ(q1[i].finishedAt, q1b[i].finishedAt);
    }
    expectAccountingCloses(r1.aggregate, int64_t(q1.size()));
}

// ---- telemetry-inferred breakers ---------------------------------------

TEST(HealthMonitor, ErrorWindowOpensAtItsCloseEdgeAndHealthyStreakCloses)
{
    HealthMonitorConfig hc;
    hc.windowCycles = 1'000;
    hc.openOnErrors = 1;
    hc.closeAfterHealthy = 2;
    hc.cooldownCycles = 5'000;
    HealthMonitor hm(hc);
    hm.observeWindow(0, 10, 100); // w0 healthy
    hm.observeWindow(3, 2, 100);  // w1 errors -> open at close (2000)
    hm.observeWindow(0, 8, 100);  // w2 healthy (streak 1)
    hm.observeWindow(0, 9, 100);  // w3 healthy (streak 2) -> close @4000
    BreakerTimeline tl = hm.finish();

    ASSERT_EQ(tl.open.size(), 1u);
    EXPECT_EQ(tl.open[0].start, 2'000u);
    EXPECT_EQ(tl.open[0].end, 4'000u);
    ASSERT_EQ(tl.halfOpen.size(), 1u);
    EXPECT_EQ(tl.halfOpen[0].start, 4'000u);
    EXPECT_EQ(tl.halfOpen[0].end, 9'000u);
    EXPECT_EQ(tl.stateAt(2'500), BreakerState::Open);
    EXPECT_EQ(tl.stateAt(4'500), BreakerState::HalfOpen);
    EXPECT_EQ(tl.stateAt(9'000), BreakerState::Closed);
}

TEST(HealthMonitor, DegradedStreakOpensAfterConsecutiveWindowsOnly)
{
    HealthMonitorConfig hc;
    hc.windowCycles = 1'000;
    hc.degradedTtftCycles = 500.0;
    hc.openAfterDegraded = 2;
    HealthMonitor hm(hc);
    hm.observeWindow(0, 5, 900); // w0 degraded (streak 1)
    hm.observeWindow(0, 5, 100); // w1 healthy resets the streak
    hm.observeWindow(0, 5, 900); // w2 degraded (streak 1)
    hm.observeWindow(0, 5, 900); // w3 degraded (streak 2) -> open @4000
    BreakerTimeline tl = hm.finish();

    // Never recovered: finish() seals the breaker open forever.
    ASSERT_EQ(tl.open.size(), 1u);
    EXPECT_EQ(tl.open[0].start, 4'000u);
    EXPECT_EQ(tl.open[0].end, 0u);
    EXPECT_TRUE(tl.halfOpen.empty());
    EXPECT_TRUE(tl.openAt(1'000'000'000));
}

TEST(HealthMonitor, QuietWindowsAreNeutralInBothDirections)
{
    HealthMonitorConfig hc;
    hc.windowCycles = 1'000;
    hc.degradedTtftCycles = 500.0;
    hc.openAfterDegraded = 2;
    hc.closeAfterHealthy = 2;
    hc.cooldownCycles = 2'000;
    HealthMonitor hm(hc);
    hm.observeWindow(0, 5, 900); // w0 degraded (streak 1)
    hm.observeWindow(0, 0, 0);   // w1 quiet: streak neither grows nor resets
    hm.observeWindow(0, 5, 900); // w2 degraded (streak 2) -> open @3000
    hm.observeWindow(0, 5, 100); // w3 healthy (streak 1)
    hm.observeWindow(0, 0, 0);   // w4 quiet: healthy streak survives
    hm.observeWindow(0, 5, 100); // w5 healthy (streak 2) -> close @6000
    BreakerTimeline tl = hm.finish();

    ASSERT_EQ(tl.open.size(), 1u);
    EXPECT_EQ(tl.open[0].start, 3'000u);
    EXPECT_EQ(tl.open[0].end, 6'000u);
    ASSERT_EQ(tl.halfOpen.size(), 1u);
    EXPECT_EQ(tl.halfOpen[0].start, 6'000u);
    EXPECT_EQ(tl.halfOpen[0].end, 8'000u);
}

TEST(HealthMonitor, InferredTimelineDivergesFromPlanUnderShallowSlowdown)
{
    // A shallow slowdown (factor above BreakerConfig::openBelowFactor)
    // never trips the plan-derived breaker...
    ReplicaFaultTimeline ft;
    ft.slowdowns.push_back({2'000, 5'000, 0.85});
    BreakerConfig bc; // openBelowFactor 0.75
    EXPECT_TRUE(computeBreakerTimeline(ft, bc).open.empty());

    // ...but the telemetry monitor only sees the latency it causes:
    // enough consecutive windows over the TTFT threshold open the
    // inferred breaker the plan never scripted.
    obs::MetricsConfig mc;
    mc.enabled = true;
    mc.windowCycles = 1'000;
    obs::MetricsRegistry m(mc);
    const auto ttft = m.histogram("ttft_cycles");
    (void)m.series("requests_failed");
    for (uint64_t w : {0u, 1u}) // healthy lead-in
        for (int i = 0; i < 8; ++i)
            m.record(ttft, w * 1'000 + 100 + uint64_t(i), 100);
    for (uint64_t w : {2u, 3u, 4u}) // slowdown inflates windowed p95
        for (int i = 0; i < 8; ++i)
            m.record(ttft, w * 1'000 + 100 + uint64_t(i), 900);
    for (uint64_t w : {5u, 6u}) // back to healthy
        for (int i = 0; i < 8; ++i)
            m.record(ttft, w * 1'000 + 100 + uint64_t(i), 100);

    HealthMonitorConfig hc;
    hc.windowCycles = 1'000;
    hc.degradedTtftCycles = 500.0;
    hc.openAfterDegraded = 2;
    hc.closeAfterHealthy = 2;
    hc.cooldownCycles = 2'000;
    BreakerTimeline tl = inferBreakerTimeline(m, hc);

    ASSERT_EQ(tl.open.size(), 1u);
    EXPECT_EQ(tl.open[0].start, 4'000u); // close of the 2nd degraded window
    EXPECT_EQ(tl.open[0].end, 7'000u);   // close of the 2nd healthy window
    ASSERT_EQ(tl.halfOpen.size(), 1u);
    EXPECT_EQ(tl.halfOpen[0].start, 7'000u);
    EXPECT_EQ(tl.halfOpen[0].end, 9'000u);
}

TEST(TelemetryBreaker, InferredCrashEdgesTrackThePlanWithinDetectionLag)
{
    TraceConfig tc = sessionClusterTrace(40, 4); // 160 requests
    QueueDepthPolicy policy;
    ClusterConfig cc;
    cc.replicas = 4;
    cc.routing = RouteKind::LeastQueued;
    cc.engine.prefixCache.capacityTokens = 1 << 18;

    // Scale the outage to the arrival horizon, not the makespan: the
    // replica must see post-recovery traffic for the monitor to gather
    // the healthy windows that close the breaker.
    auto probe_reqs = generateTrace(tc, deriveSeed(2));
    dam::Cycle last_arrival = 0;
    for (const Request& q : probe_reqs)
        last_arrival = std::max(last_arrival, q.arrival);
    const dam::Cycle fail_at = last_arrival / 4;
    const dam::Cycle recover_at = last_arrival / 2;

    cc.faults.crashes.push_back({1, fail_at, recover_at});
    cc.resilience.enabled = true;
    cc.resilience.breakerSource = BreakerSource::Telemetry;
    // Isolate the crash signal: latency-triggered opens off, so the
    // inferred timeline is error-driven exactly where the plan's is.
    cc.resilience.health.degradedTtftCycles = 1e18;

    auto reqs = generateTrace(tc, deriveSeed(2));
    ClusterResult r = ServingCluster(cc, policy).run(reqs);
    expectAccountingCloses(r.aggregate, int64_t(reqs.size()));
    ASSERT_EQ(r.breakers.size(), 4u);

    const dam::Cycle W = cc.resilience.health.windowCycles;
    const BreakerTimeline plan =
        computeBreakerTimeline(cc.faults.forReplica(1),
                               cc.resilience.breaker);
    ASSERT_EQ(plan.open.size(), 1u); // ground truth: [fail_at, recover_at)

    const BreakerTimeline& inf = r.breakers[1];
    ASSERT_EQ(inf.open.size(), 1u)
        << "telemetry should infer exactly one outage";
    // Open edge: the crash is visible the moment its window closes —
    // at most two window-widths after the plan's instantaneous open.
    EXPECT_GT(inf.open[0].start, plan.open[0].start);
    EXPECT_LE(inf.open[0].start, plan.open[0].start + 2 * W);
    // Close edge: never before the actual recovery, and within a
    // bounded number of windows after it (healthy evidence must
    // accumulate across bursty traffic, so the bound is loose).
    ASSERT_NE(inf.open[0].end, 0u)
        << "breaker never closed after recovery";
    EXPECT_GE(inf.open[0].end, plan.open[0].end);
    EXPECT_LE(inf.open[0].end, plan.open[0].end + 16 * W);
    // Probation follows the inferred close, plan-style.
    ASSERT_EQ(inf.halfOpen.size(), 1u);
    EXPECT_EQ(inf.halfOpen[0].start, inf.open[0].end);
    EXPECT_EQ(inf.halfOpen[0].end,
              inf.open[0].end + cc.resilience.health.cooldownCycles);
    // The healthy replicas never error, so error-only telemetry keeps
    // their breakers closed for the whole run.
    EXPECT_TRUE(r.breakers[0].open.empty());
    EXPECT_TRUE(r.breakers[2].open.empty());
    EXPECT_TRUE(r.breakers[3].open.empty());
}

TEST(TelemetryBreaker, AvailabilityMatchesPlainFailoverOnAcceptancePlan)
{
    TraceConfig tc = sessionClusterTrace(40, 4); // 160 requests
    QueueDepthPolicy policy;
    ClusterConfig cc;
    cc.replicas = 4;
    cc.routing = RouteKind::LeastQueued;
    cc.engine.prefixCache.capacityTokens = 1 << 18;

    auto probe_reqs = generateTrace(tc, deriveSeed(2));
    ServingCluster probe(cc, policy);
    const dam::Cycle makespan = probe.run(probe_reqs).aggregate.makespan;
    const int64_t submitted = int64_t(probe_reqs.size());

    cc.faults = acceptancePlan(makespan);

    auto plain_reqs = generateTrace(tc, deriveSeed(2));
    ClusterResult plain = ServingCluster(cc, policy).run(plain_reqs);
    expectAccountingCloses(plain.aggregate, submitted);

    cc.resilience.enabled = true;
    cc.resilience.remotePrefix.enabled = true;
    cc.resilience.breakerSource = BreakerSource::Telemetry;
    auto res_reqs = generateTrace(tc, deriveSeed(2));
    ClusterResult res = ServingCluster(cc, policy).run(res_reqs);
    expectAccountingCloses(res.aggregate, submitted);

    // The acceptance bar for inferred breakers: routing on what a
    // monitor can observe — rather than the plan's ground truth — must
    // not give back the availability the tier bought.
    EXPECT_GE(res.aggregate.availability, plain.aggregate.availability);
    EXPECT_GT(res.migrationsIssued, 0)
        << "telemetry-sourced tier never exercised migration";
}

TEST(TelemetryBreaker, TelemetryRunIsThreadCountInvariantAndReplays)
{
    TraceConfig tc = sessionClusterTrace(24, 3);
    QueueDepthPolicy policy;

    auto run_with = [&](int64_t threads) {
        ClusterConfig cc;
        cc.replicas = 4;
        cc.threads = threads;
        cc.routing = RouteKind::LeastQueued;
        cc.engine.prefixCache.capacityTokens = 1 << 18;
        cc.faults.crashes.push_back({1, 20'000'000, 45'000'000});
        cc.faults.slowdowns.push_back({2, 30'000'000, 80'000'000, 0.5});
        cc.resilience.enabled = true;
        cc.resilience.breakerSource = BreakerSource::Telemetry;
        auto reqs = generateTrace(tc, deriveSeed(2));
        ClusterResult r = ServingCluster(cc, policy).run(reqs);
        return std::make_pair(std::move(r), std::move(reqs));
    };
    auto [r1, q1] = run_with(1);
    auto [r4, q4] = run_with(4);
    auto [r1b, q1b] = run_with(1); // same seed replays bit-identically

    // The observation pass and the inferred timelines are coordinator
    // pre-passes: identical breaker windows whatever the thread count.
    ASSERT_EQ(r1.breakers.size(), r4.breakers.size());
    for (size_t i = 0; i < r1.breakers.size(); ++i) {
        ASSERT_EQ(r1.breakers[i].open.size(),
                  r4.breakers[i].open.size());
        for (size_t w = 0; w < r1.breakers[i].open.size(); ++w) {
            EXPECT_EQ(r1.breakers[i].open[w].start,
                      r4.breakers[i].open[w].start);
            EXPECT_EQ(r1.breakers[i].open[w].end,
                      r4.breakers[i].open[w].end);
            EXPECT_EQ(r1.breakers[i].open[w].start,
                      r1b.breakers[i].open[w].start);
        }
    }
    EXPECT_EQ(r1.aggregate.completed, r4.aggregate.completed);
    EXPECT_EQ(r1.aggregate.failedRequests, r4.aggregate.failedRequests);
    EXPECT_EQ(r1.aggregate.makespan, r4.aggregate.makespan);
    EXPECT_EQ(r1.aggregate.ttftP99, r4.aggregate.ttftP99);
    EXPECT_EQ(r1.migrationsIssued, r4.migrationsIssued);
    EXPECT_EQ(r1.aggregate.makespan, r1b.aggregate.makespan);
    EXPECT_EQ(r1.migrationsIssued, r1b.migrationsIssued);
    ASSERT_EQ(q1.size(), q4.size());
    for (size_t i = 0; i < q1.size(); ++i) {
        EXPECT_EQ(q1[i].state, q4[i].state);
        EXPECT_EQ(q1[i].finishedAt, q4[i].finishedAt);
        EXPECT_EQ(q1[i].state, q1b[i].state);
        EXPECT_EQ(q1[i].finishedAt, q1b[i].finishedAt);
    }
    expectAccountingCloses(r1.aggregate, int64_t(q1.size()));
}
