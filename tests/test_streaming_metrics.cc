/**
 * @file
 * Streaming-metrics tier tests: the deterministic LogHistogram core
 * (exactness below the sub-bucket range, bounded relative error above
 * it, order-invariant and associative merges), the fixed-window
 * TimeSeries (alignment, non-monotone stamps, windowwise merge), the
 * MetricsRegistry fold, the batch percentile helper the summary path
 * uses (one sort for all quantiles), engine-sampled instrument
 * conservation against the summary, windowed SLO attainment, and the
 * artifact byte-identity contract across worker-thread counts and
 * seeded replays.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "obs/histogram.hh"
#include "obs/metrics.hh"
#include "obs/timeseries.hh"
#include "runtime/cluster.hh"
#include "support/error.hh"
#include "support/rng.hh"
#include "support/stats.hh"

using namespace step;
using namespace step::obs;
using namespace step::runtime;

namespace {

/** Nearest-rank percentile over raw values — the reference the
 *  histogram's bucketed answer is judged against. */
uint64_t
nearestRank(std::vector<uint64_t> xs, double p)
{
    std::sort(xs.begin(), xs.end());
    auto rank = uint64_t(std::ceil(p / 100.0 * double(xs.size())));
    rank = std::min(std::max<uint64_t>(rank, 1), uint64_t(xs.size()));
    return xs[size_t(rank - 1)];
}

} // namespace

TEST(Histogram, ExactBelowSubBucketRange)
{
    LogHistogram h;
    for (uint64_t v = 0; v < LogHistogram::kSubBuckets; ++v) {
        EXPECT_EQ(LogHistogram::bucketIndex(v), size_t(v));
        EXPECT_EQ(LogHistogram::bucketLower(size_t(v)), v);
        EXPECT_EQ(LogHistogram::bucketUpper(size_t(v)), v + 1);
        EXPECT_EQ(LogHistogram::bucketRepresentative(size_t(v)), v);
        h.record(v);
    }
    // With one sample per exact bucket, every quantile is exact.
    EXPECT_EQ(h.percentile(50.0), nearestRank({[&] {
                  std::vector<uint64_t> xs;
                  for (uint64_t v = 0; v < 64; ++v)
                      xs.push_back(v);
                  return xs;
              }()},
                                              50.0));
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 63u);
    EXPECT_EQ(h.count(), 64u);
}

TEST(Histogram, BucketBoundsPartitionTheValueLine)
{
    // Every bucket's [lower, upper) must map back to that bucket, and
    // consecutive buckets must tile without gaps — across several
    // powers of two.
    for (uint64_t v :
         {uint64_t{1},       uint64_t{63},      uint64_t{64},
          uint64_t{65},      uint64_t{127},     uint64_t{128},
          uint64_t{1000},    uint64_t{4095},    uint64_t{4096},
          uint64_t{1} << 20, (uint64_t{1} << 33) + 12345,
          uint64_t{1} << 52}) {
        const size_t idx = LogHistogram::bucketIndex(v);
        EXPECT_GE(v, LogHistogram::bucketLower(idx)) << v;
        EXPECT_LT(v, LogHistogram::bucketUpper(idx)) << v;
        EXPECT_EQ(LogHistogram::bucketUpper(idx),
                  LogHistogram::bucketLower(idx + 1))
            << v;
    }
}

TEST(Histogram, QuantileRelativeErrorBoundedAcrossMagnitudes)
{
    // Deterministic samples spanning 1e2..1e9: the bucketed nearest-rank
    // answer must stay within the sub-bucket resolution (width/lower <=
    // 1/32; midpoint representative halves that) of the exact one.
    Rng rng(0xfeedULL);
    std::vector<uint64_t> xs;
    for (int mag = 2; mag <= 9; ++mag) {
        uint64_t base = 1;
        for (int i = 0; i < mag; ++i)
            base *= 10;
        for (int k = 0; k < 200; ++k)
            xs.push_back(base + rng.uniformInt(base * 9));
    }
    LogHistogram h;
    for (uint64_t v : xs)
        h.record(v);
    for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0,
                     99.9, 100.0}) {
        const uint64_t exact = nearestRank(xs, p);
        const uint64_t approx = h.percentile(p);
        const double rel =
            std::abs(double(approx) - double(exact)) / double(exact);
        EXPECT_LE(rel, 1.0 / 32.0) << "p" << p << ": " << approx
                                   << " vs exact " << exact;
    }
    // Extremes are exact (clamped to the recorded min/max).
    EXPECT_EQ(h.percentile(0.0), *std::min_element(xs.begin(), xs.end()));
    EXPECT_EQ(h.percentile(100.0),
              *std::max_element(xs.begin(), xs.end()));
}

TEST(Histogram, MergeIsAssociativeCommutativeAndOrderInvariant)
{
    Rng rng(7);
    std::vector<uint64_t> xs;
    for (int i = 0; i < 600; ++i)
        xs.push_back(rng.uniformInt(1u << 24) + 1);

    // Same multiset, three groupings and two insertion orders.
    LogHistogram whole;
    for (uint64_t v : xs)
        whole.record(v);
    LogHistogram rev;
    for (auto it = xs.rbegin(); it != xs.rend(); ++it)
        rev.record(*it);
    LogHistogram a, b, c;
    for (size_t i = 0; i < xs.size(); ++i)
        (i % 3 == 0 ? a : i % 3 == 1 ? b : c).record(xs[i]);

    LogHistogram ab = a;
    ab.merge(b);
    LogHistogram ab_c = ab;
    ab_c.merge(c);
    LogHistogram bc = b;
    bc.merge(c);
    LogHistogram a_bc = a;
    a_bc.merge(bc);
    LogHistogram cba = c;
    cba.merge(b);
    cba.merge(a);

    for (const LogHistogram* h : {&rev, &ab_c, &a_bc, &cba}) {
        EXPECT_EQ(h->count(), whole.count());
        EXPECT_EQ(h->sum(), whole.sum());
        EXPECT_EQ(h->min(), whole.min());
        EXPECT_EQ(h->max(), whole.max());
        for (double p : {50.0, 95.0, 99.0})
            EXPECT_EQ(h->percentile(p), whole.percentile(p));
    }
    // Dense counts agree bucket-for-bucket (trailing zeros aside).
    const auto& wb = whole.buckets();
    const auto& mb = ab_c.buckets();
    for (size_t i = 0; i < std::max(wb.size(), mb.size()); ++i)
        EXPECT_EQ(i < wb.size() ? wb[i] : 0, i < mb.size() ? mb[i] : 0);
}

TEST(Histogram, EmptyAndSingleSampleEdges)
{
    LogHistogram h;
    EXPECT_TRUE(h.empty());
    EXPECT_EQ(h.percentile(50.0), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);

    h.record(123456);
    for (double p : {0.0, 1.0, 50.0, 99.0, 100.0})
        EXPECT_EQ(h.percentile(p), 123456u);
    EXPECT_EQ(h.min(), 123456u);
    EXPECT_EQ(h.max(), 123456u);
    EXPECT_EQ(h.sum(), 123456u);

    // Merging an empty histogram is a no-op in both directions.
    LogHistogram e;
    h.merge(e);
    EXPECT_EQ(h.count(), 1u);
    e.merge(h);
    EXPECT_EQ(e.count(), 1u);
    EXPECT_EQ(e.percentile(50.0), 123456u);
}

TEST(TimeSeries, WindowAlignmentIsFloorOfCycleOverWidth)
{
    TimeSeries ts(100, /*with_histograms=*/false);
    ts.record(0, 5);
    ts.record(99, 7);   // still window 0
    ts.record(100, 11); // first cycle of window 1
    ts.record(250, 13);
    EXPECT_EQ(ts.windowSlots(), size_t(3));
    EXPECT_EQ(ts.window(0).count, 2u);
    EXPECT_EQ(ts.window(0).sum, 12u);
    EXPECT_EQ(ts.window(0).min, 5u);
    EXPECT_EQ(ts.window(0).max, 7u);
    EXPECT_EQ(ts.window(1).count, 1u);
    EXPECT_EQ(ts.window(2).sum, 13u);
    // Past-the-end lookups answer the empty aggregate, not UB.
    EXPECT_EQ(ts.window(99).count, 0u);
    EXPECT_EQ(ts.total().count, 4u);
    EXPECT_EQ(ts.total().sum, 36u);
}

TEST(TimeSeries, NonMonotoneStampsAndEmptyWindowSkipping)
{
    TimeSeries ts(10, /*with_histograms=*/false);
    // Stamps arrive out of order and leave window 1 empty.
    ts.record(25, 1);
    ts.record(3, 2);
    ts.record(29, 3);
    std::vector<size_t> seen;
    ts.forEachWindow([&](size_t w, const WindowAgg& agg) {
        seen.push_back(w);
        EXPECT_GT(agg.count, 0u);
    });
    EXPECT_EQ(seen, (std::vector<size_t>{0, 2}));
    EXPECT_EQ(ts.window(1).count, 0u);
}

TEST(TimeSeries, MergeIsWindowwiseAndChecksWidth)
{
    TimeSeries a(50, /*with_histograms=*/true);
    TimeSeries b(50, /*with_histograms=*/true);
    a.record(10, 100);
    a.record(120, 300);
    b.record(20, 200);
    b.record(320, 900);
    a.merge(b);
    EXPECT_EQ(a.window(0).count, 2u);
    EXPECT_EQ(a.window(0).min, 100u);
    EXPECT_EQ(a.window(0).max, 200u);
    EXPECT_EQ(a.window(2).count, 1u);
    EXPECT_EQ(a.window(6).sum, 900u);
    EXPECT_EQ(a.total().count, 4u);
    ASSERT_NE(a.windowHistogram(0), nullptr);
    EXPECT_EQ(a.windowHistogram(0)->count(), 2u);
    EXPECT_EQ(a.windowHistogram(1), nullptr); // empty window

    TimeSeries other(60, /*with_histograms=*/true);
    EXPECT_THROW(a.merge(other), FatalError);
    EXPECT_THROW(TimeSeries(0, false), FatalError);
}

TEST(TimeSeries, WindowHistogramsOnlyForHistogramInstruments)
{
    TimeSeries plain(100, /*with_histograms=*/false);
    plain.record(5, 42);
    EXPECT_EQ(plain.windowHistogram(0), nullptr);

    TimeSeries hist(100, /*with_histograms=*/true);
    hist.record(5, 42);
    ASSERT_NE(hist.windowHistogram(0), nullptr);
    EXPECT_EQ(hist.windowHistogram(0)->percentile(50.0), 42u);
}

TEST(Metrics, RegistryFoldsByNameAndRejectsKindFlips)
{
    MetricsRegistry a{MetricsConfig{true, 100}};
    MetricsRegistry b{MetricsConfig{true, 100}};
    const auto ha = a.histogram("ttft");
    const auto sa = a.series("depth");
    a.record(ha, 10, 500);
    a.record(sa, 10, 3);
    const auto hb = b.histogram("ttft");
    b.record(hb, 150, 700);
    b.series("extra");

    a.mergeFrom(b);
    ASSERT_NE(a.find("ttft"), nullptr);
    EXPECT_EQ(a.find("ttft")->total.count(), 2u);
    EXPECT_EQ(a.find("ttft")->series.window(0).count, 1u);
    EXPECT_EQ(a.find("ttft")->series.window(1).count, 1u);
    ASSERT_NE(a.find("extra"), nullptr); // appended in b's order
    EXPECT_EQ(a.size(), size_t(3));

    EXPECT_THROW(a.histogram("depth"), FatalError);
    EXPECT_THROW(a.series("ttft"), FatalError);
}

TEST(Metrics, PercentilesBatchMatchesPerQuantileCalls)
{
    // Regression for the one-sort batch helper the summary path now
    // uses: identical results to the repeated-sort per-quantile calls,
    // on unsorted input with duplicates.
    Rng rng(99);
    std::vector<double> xs;
    for (int i = 0; i < 501; ++i)
        xs.push_back(double(rng.uniformInt(10'000)));
    const std::vector<double> ps = {0.0,  10.0, 50.0, 90.0,
                                    95.0, 99.0, 100.0};
    const std::vector<double> batch = percentiles(xs, ps);
    ASSERT_EQ(batch.size(), ps.size());
    for (size_t i = 0; i < ps.size(); ++i)
        EXPECT_DOUBLE_EQ(batch[i], percentile(xs, ps[i])) << ps[i];
    EXPECT_TRUE(percentiles({}, ps).empty() ||
                percentiles({}, ps) == std::vector<double>(ps.size(), 0.0));
}

TEST(Metrics, ParseCliVariantsAndErrors)
{
    {
        const char* argv[] = {"sim", "--metrics", "out.json",
                              "--metrics-window", "500000"};
        MetricsCli cli = parseMetricsCli(5, const_cast<char**>(argv));
        EXPECT_TRUE(cli.enabled());
        EXPECT_EQ(cli.path, "out.json");
        EXPECT_EQ(cli.config().windowCycles, dam::Cycle(500000));
    }
    {
        const char* argv[] = {"sim", "--metrics=m.json"};
        MetricsCli cli = parseMetricsCli(2, const_cast<char**>(argv));
        EXPECT_TRUE(cli.enabled());
        EXPECT_EQ(cli.path, "m.json");
        // Default window survives when the flag is absent.
        EXPECT_EQ(cli.config().windowCycles, MetricsConfig{}.windowCycles);
    }
    {
        const char* argv[] = {"sim", "--metrics-window", "100"};
        MetricsCli cli = parseMetricsCli(3, const_cast<char**>(argv));
        EXPECT_TRUE(cli.error); // window without a path
    }
    {
        const char* argv[] = {"sim", "--metrics", "m.json",
                              "--metrics-window", "0"};
        MetricsCli cli = parseMetricsCli(5, const_cast<char**>(argv));
        EXPECT_TRUE(cli.error);
    }
    EXPECT_EQ(metricsJsonlPath("out.json"), "out.windows.jsonl");
    EXPECT_EQ(metricsJsonlPath("out"), "out.windows.jsonl");
}

namespace {

TraceConfig
meteredTrace(int64_t n)
{
    TraceConfig tc;
    tc.numRequests = n;
    tc.arrivalsPerKcycle = 0.0045;
    tc.burstPeriod = 16'000'000;
    tc.burstDuty = 0.3;
    tc.burstFactor = 4.0;
    return tc;
}

} // namespace

TEST(Metrics, EngineInstrumentsConserveAgainstSummary)
{
    TraceConfig tc = meteredTrace(60);
    auto reqs = generateTrace(tc, 17);
    QueueDepthPolicy policy;
    EngineConfig ec;
    ec.seed = 5;

    // Metrics-off reference: sampling must never change the simulation.
    auto ref_reqs = reqs;
    ServingEngine ref(ec, policy);
    EngineResult ref_r = ref.run(ref_reqs);

    MetricsRegistry reg{MetricsConfig{true, 2'000'000}};
    ServingEngine eng(ec, policy);
    eng.attachMetrics(&reg);
    EngineResult r = eng.run(reqs);

    EXPECT_EQ(r.summary.completed, ref_r.summary.completed);
    EXPECT_EQ(r.summary.makespan, ref_r.summary.makespan);
    EXPECT_EQ(r.summary.ttftSamples, ref_r.summary.ttftSamples);
    EXPECT_EQ(r.summary.tpotSamples, ref_r.summary.tpotSamples);
    EXPECT_EQ(r.iterations, ref_r.iterations);
    // The only fields a metrics run adds are the windowed-SLO ones.
    EXPECT_EQ(ref_r.summary.sloWindows, 0);
    EXPECT_GT(r.summary.sloWindows, 0);
    EXPECT_LE(r.summary.sloWindowsAttained, r.summary.sloWindows);

    const auto* finished = reg.find("requests_finished");
    ASSERT_NE(finished, nullptr);
    EXPECT_EQ(int64_t(finished->series.total().count),
              r.summary.completed);
    const auto* ttft = reg.find("ttft_cycles");
    ASSERT_NE(ttft, nullptr);
    EXPECT_TRUE(ttft->isHistogram);
    EXPECT_EQ(ttft->series.total().count,
              uint64_t(r.summary.ttftSamples.size()));
    // Histogram bucket counts conserve the sample count.
    uint64_t bucket_sum = 0;
    for (uint64_t c : ttft->total.buckets())
        bucket_sum += c;
    EXPECT_EQ(bucket_sum, ttft->total.count());
    const auto* iters = reg.find("iter_cycles");
    ASSERT_NE(iters, nullptr);
    EXPECT_EQ(int64_t(iters->series.total().count), r.iterations);
    const auto* gen = reg.find("generated_tokens");
    ASSERT_NE(gen, nullptr);
    EXPECT_EQ(int64_t(gen->series.total().sum),
              r.summary.generatedTokens);
}

TEST(Metrics, SloWindowAttainmentFromSyntheticRegistry)
{
    MetricsRegistry reg{MetricsConfig{true, 1000}};
    const auto ttft = reg.histogram("ttft_cycles");
    const auto tpot = reg.histogram("tpot_cycles");
    const auto miss = reg.series("deadline_misses");
    SloConfig slo;
    slo.ttftCycles = 500;
    slo.tpotCycles = 100;

    // Window 0: healthy. Window 1: TTFT blows the target. Window 2:
    // latency fine but a deadline miss lands. Window 4: healthy again
    // (window 3 stays empty and must not count).
    reg.record(ttft, 100, 400);
    reg.record(tpot, 150, 50);
    reg.record(ttft, 1100, 9000);
    reg.record(tpot, 1150, 50);
    reg.record(ttft, 2100, 300);
    reg.record(miss, 2200, 1);
    reg.record(ttft, 4500, 200);

    const SloWindowStats s = computeSloWindows(reg, slo);
    EXPECT_EQ(s.windows, 4);  // empty window 3 is not monitored
    EXPECT_EQ(s.attained, 2); // windows 0 and 4
    EXPECT_GE(s.worstP95Ttft, uint64_t(slo.ttftCycles));

    ServingSummary sum;
    applySloWindows(sum, reg, slo);
    EXPECT_EQ(sum.sloWindows, 4);
    EXPECT_EQ(sum.sloWindowsAttained, 2);
    EXPECT_EQ(sum.sloWorstWindowP95Ttft, s.worstP95Ttft);
}

TEST(Metrics, ClusterArtifactByteIdenticalAcrossThreadsAndReplays)
{
    TraceConfig tc = meteredTrace(90);
    auto base = generateTrace(tc, 23);
    QueueDepthPolicy policy;

    auto artifact = [&](int64_t threads) {
        auto reqs = base;
        ClusterConfig cc;
        cc.replicas = 4;
        cc.threads = threads;
        cc.routing = RouteKind::LeastQueued;
        cc.metrics = MetricsConfig{true, 4'000'000};
        ServingCluster cluster(cc, policy);
        ClusterResult r = cluster.run(reqs);
        std::ostringstream json, jsonl;
        EXPECT_TRUE(writeMetricsJson(json, r.metricsViews(),
                                     r.mergedMetrics.get()));
        EXPECT_TRUE(writeMetricsWindowsJsonl(jsonl, r.metricsViews(),
                                             r.mergedMetrics.get()));
        return std::pair<std::string, std::string>(json.str(),
                                                   jsonl.str());
    };

    const auto serial = artifact(1);
    const auto two = artifact(2);
    const auto four = artifact(4);
    const auto replay = artifact(1);
    EXPECT_EQ(serial.first, two.first);
    EXPECT_EQ(serial.first, four.first);
    EXPECT_EQ(serial.first, replay.first); // seeded replay
    EXPECT_EQ(serial.second, two.second);
    EXPECT_EQ(serial.second, four.second);
    EXPECT_EQ(serial.second, replay.second);
    EXPECT_NE(serial.first.find("\"schema_version\": 2"),
              std::string::npos);
}

TEST(Metrics, ClusterMergedRegistryEqualsIndexOrderFold)
{
    TraceConfig tc = meteredTrace(50);
    auto reqs = generateTrace(tc, 29);
    QueueDepthPolicy policy;
    ClusterConfig cc;
    cc.replicas = 3;
    cc.metrics = MetricsConfig{true, 4'000'000};
    ServingCluster cluster(cc, policy);
    ClusterResult r = cluster.run(reqs);
    ASSERT_EQ(r.metrics.size(), size_t(3));
    ASSERT_NE(r.mergedMetrics, nullptr);

    // Re-fold by hand in index order; the exporter must produce the
    // same bytes from the run's own merge and from a null merge (which
    // folds internally).
    std::ostringstream with_merge, self_fold;
    EXPECT_TRUE(writeMetricsJson(with_merge, r.metricsViews(),
                                 r.mergedMetrics.get()));
    EXPECT_TRUE(writeMetricsJson(self_fold, r.metricsViews(), nullptr));
    EXPECT_EQ(with_merge.str(), self_fold.str());

    // Aggregate SLO windows come from the merged registry.
    const SloWindowStats s =
        computeSloWindows(*r.mergedMetrics, cc.engine.slo);
    EXPECT_EQ(r.aggregate.sloWindows, s.windows);
    EXPECT_EQ(r.aggregate.sloWindowsAttained, s.attained);
    // Merged instrument totals equal the sum of the replicas'.
    const auto* merged_fin = r.mergedMetrics->find("requests_finished");
    ASSERT_NE(merged_fin, nullptr);
    uint64_t sum = 0;
    for (const auto& m : r.metrics) {
        const auto* f = m->find("requests_finished");
        ASSERT_NE(f, nullptr);
        sum += f->series.total().count;
    }
    EXPECT_EQ(merged_fin->series.total().count, sum);
    EXPECT_EQ(int64_t(sum), r.aggregate.completed);
}
