/**
 * @file
 * Shared test helpers: compact constructors for value tokens and a
 * one-operator harness that runs Source -> Op -> Sink and returns the
 * captured output stream.
 */
#pragma once

#include <gtest/gtest.h>

#include <vector>

#include "core/codec.hh"
#include "core/token.hh"
#include "ops/graph.hh"
#include "ops/source_sink.hh"

namespace step::test {

/** 1x1 data tile carrying @p v. */
inline Value
val(float v)
{
    return Tile::withData(1, 1, {v}, 1);
}

inline Nested
leaf(float v)
{
    return Nested(val(v));
}

/** Nested list of scalar leaves. */
inline Nested
vec(std::initializer_list<float> xs)
{
    std::vector<Nested> kids;
    for (float x : xs)
        kids.push_back(leaf(x));
    return Nested::list(std::move(kids));
}

inline Nested
list(std::initializer_list<Nested> xs)
{
    return Nested::list(std::vector<Nested>(xs));
}

/** Flatten a decoded nested tree of 1x1 tiles back to floats (by DFS). */
inline void
collectLeaves(const Nested& n, std::vector<float>& out)
{
    if (n.isLeaf()) {
        out.push_back(n.leaf().tile().at(0, 0));
        return;
    }
    for (const auto& c : n.children())
        collectLeaves(c, out);
}

inline std::vector<float>
leavesOf(const Nested& n)
{
    std::vector<float> out;
    collectLeaves(n, out);
    return out;
}

/** Shape of a stream of 1x1 scalar tiles. */
inline DataType
scalarTile()
{
    return DataType::tile(1, 1, 1);
}

/**
 * Drives a single already-constructed operator whose input sources and
 * output sink were registered on the same graph; convenience wrapper
 * that runs the graph and returns the sink capture.
 */
struct SingleOpResult
{
    std::vector<Token> toks;
    SimResult sim;
};

} // namespace step::test
