/**
 * @file
 * Integration tests for the decode-attention workload: functional
 * equivalence against dense softmax attention for all three
 * parallelization strategies, and timing properties (dynamic beats
 * static under skewed KV lengths; coarse wastes regions at small batch).
 */
#include <gtest/gtest.h>

#include "ops/source_sink.hh"
#include "trace/trace.hh"
#include "workloads/attention.hh"

#include "support/stats.hh"

#include "helpers.hh"

namespace step {
namespace {

struct Payloads
{
    std::vector<std::vector<float>> qs, ks, vs;
};

Payloads
randomPayloads(uint64_t seed, const std::vector<int64_t>& lens, int64_t d)
{
    Rng rng(seed);
    Payloads pl;
    for (int64_t L : lens) {
        std::vector<float> q, k, v;
        for (int64_t i = 0; i < d; ++i)
            q.push_back(static_cast<float>(rng.uniform() - 0.5));
        for (int64_t i = 0; i < L * d; ++i) {
            k.push_back(static_cast<float>(rng.uniform() - 0.5));
            v.push_back(static_cast<float>(rng.uniform() - 0.5));
        }
        pl.qs.push_back(std::move(q));
        pl.ks.push_back(std::move(k));
        pl.vs.push_back(std::move(v));
    }
    return pl;
}

class AttnFunctional : public ::testing::TestWithParam<ParStrategy> {};

TEST_P(AttnFunctional, MatchesDenseReference)
{
    AttnParams p;
    p.cfg = tinyConfig();
    p.batch = 9;
    p.strategy = GetParam();
    p.regions = 3;
    p.kvTileRows = 2;
    p.coarseBlock = 3;
    p.computeBw = 64;
    p.functional = true;

    std::vector<int64_t> lens{4, 2, 8, 2, 6, 2, 4, 2, 2};
    Payloads pl = randomPayloads(11, lens,
                                 p.cfg.numKvHeads * p.cfg.headDim);

    SimConfig sc;
    sc.channelCapacity = static_cast<size_t>(p.batch) + 32;
    Graph g(sc);
    AttnBuild ab = buildAttentionLayer(g, p, lens, &pl.qs, &pl.ks,
                                       &pl.vs);
    auto& sink = g.add<SinkOp>("out", ab.out, true);
    (void)g.run();

    auto ref = referenceAttention(p, lens, pl.qs, pl.ks, pl.vs);
    ASSERT_EQ(sink.dataCount(), lens.size());
    // Outputs return in request order regardless of strategy.
    size_t t = 0;
    for (const auto& tok : sink.tokens()) {
        if (!tok.isData())
            continue;
        const Tile& row = tok.value().tile();
        for (int64_t j = 0; j < row.cols(); ++j) {
            EXPECT_NEAR(row.at(0, j), ref[t][static_cast<size_t>(j)],
                        2e-3f)
                << "strategy " << static_cast<int>(GetParam())
                << " request " << t;
        }
        ++t;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, AttnFunctional,
    ::testing::Values(ParStrategy::StaticCoarse,
                      ParStrategy::StaticInterleaved,
                      ParStrategy::Dynamic),
    [](const auto& info) {
        switch (info.param) {
          case ParStrategy::StaticCoarse: return "coarse";
          case ParStrategy::StaticInterleaved: return "interleaved";
          default: return "dynamic";
        }
    });

dam::Cycle
runTiming(ParStrategy s, const std::vector<int64_t>& lens)
{
    AttnParams p;
    p.cfg = tinyConfig();
    p.cfg.headDim = 16;
    p.batch = static_cast<int64_t>(lens.size());
    p.strategy = s;
    p.regions = 4;
    p.kvTileRows = 4;
    p.coarseBlock = p.batch / p.regions;
    p.computeBw = 256;
    SimConfig sc;
    sc.channelCapacity = static_cast<size_t>(p.batch) + 32;
    Graph g(sc);
    AttnBuild ab = buildAttentionLayer(g, p, lens);
    g.add<SinkOp>("out", ab.out);
    return g.run().cycles;
}

TEST(AttnTiming, DynamicBeatsInterleavedUnderSkew)
{
    // One very long request per round-robin "column" lands repeatedly on
    // region 0 under interleaving; dynamic rebalances.
    std::vector<int64_t> lens;
    for (int i = 0; i < 32; ++i)
        lens.push_back(i % 4 == 0 ? 512 : 16);
    dam::Cycle inter = runTiming(ParStrategy::StaticInterleaved, lens);
    dam::Cycle dyn = runTiming(ParStrategy::Dynamic, lens);
    EXPECT_LT(dyn, inter);
}

TEST(AttnTiming, CoarseWastesRegionsAtSmallBatch)
{
    // Batch 8 with coarseBlock sized for batch 64: requests crowd into
    // the first region while the rest idle.
    std::vector<int64_t> lens(8, 128);
    AttnParams p;
    p.cfg = tinyConfig();
    p.cfg.headDim = 16;
    p.batch = 8;
    p.regions = 4;
    p.kvTileRows = 4;
    p.coarseBlock = 16; // sized for a batch of 64
    p.computeBw = 256;

    auto run_one = [&](ParStrategy s) {
        AttnParams q = p;
        q.strategy = s;
        SimConfig sc;
        sc.channelCapacity = 64;
        Graph g(sc);
        AttnBuild ab = buildAttentionLayer(g, q, lens);
        g.add<SinkOp>("out", ab.out);
        return g.run().cycles;
    };
    dam::Cycle coarse = run_one(ParStrategy::StaticCoarse);
    dam::Cycle dyn = run_one(ParStrategy::Dynamic);
    EXPECT_LT(dyn, coarse);
}

TEST(KvTrace, VarianceClassesAreOrdered)
{
    auto lo = sampleKvBatch(1, 64, KvVarClass::Low);
    auto md = sampleKvBatch(1, 64, KvVarClass::Med);
    auto hi = sampleKvBatch(1, 64, KvVarClass::High);
    auto sd = [](const std::vector<int64_t>& xs) {
        std::vector<double> d(xs.begin(), xs.end());
        return stddev(d);
    };
    EXPECT_LT(sd(lo), sd(md));
    EXPECT_LT(sd(md), sd(hi));
    EXPECT_EQ(lo.size(), 64u);
}

TEST(ExpertTraceGen, TopKDistinctAndCounted)
{
    Rng rng(3);
    ExpertTrace tr = generateExpertTrace(rng, 100, 16, 4);
    EXPECT_EQ(tr.perToken.size(), 100u);
    int64_t total = 0;
    for (const auto& picks : tr.perToken) {
        EXPECT_EQ(picks.size(), 4u);
        for (size_t i = 1; i < picks.size(); ++i)
            EXPECT_NE(picks[i], picks[i - 1]); // sorted + distinct
    }
    for (int64_t c : tr.binCounts())
        total += c;
    EXPECT_EQ(total, 400);
    EXPECT_LE(tr.activeExperts(), 16);
}

TEST(ExpertTraceGen, RepresentativePicksNearAverage)
{
    ExpertTrace tr = representativeExpertTrace(7, 64, 8, 2, 8);
    EXPECT_EQ(tr.perToken.size(), 64u);
    EXPECT_GT(tr.binStddev(), 0.0);
}

} // namespace
} // namespace step
