/**
 * @file
 * Tile algebra tests: matmul, elementwise ops, concatenation, slicing,
 * FLOP accounting, and shape-only (timing mode) propagation.
 */
#include <gtest/gtest.h>

#include "core/tile.hh"
#include "support/error.hh"

namespace step {
namespace {

TEST(Tile, MatmulSmall)
{
    Tile a = Tile::withData(2, 3, {1, 2, 3, 4, 5, 6});
    Tile b = Tile::withData(3, 2, {7, 8, 9, 10, 11, 12});
    int64_t flops = 0;
    Tile c = matmul(a, b, &flops);
    EXPECT_EQ(flops, 2 * 2 * 3 * 2);
    EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
    EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
    EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
    EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(Tile, MatmulShapeOnlyPropagates)
{
    Tile a(4, 8);
    Tile b(8, 16);
    int64_t flops = 0;
    Tile c = matmul(a, b, &flops);
    EXPECT_EQ(c.rows(), 4);
    EXPECT_EQ(c.cols(), 16);
    EXPECT_FALSE(c.hasData());
    EXPECT_EQ(flops, 2 * 4 * 8 * 16);
}

TEST(Tile, MatmulShapeMismatchThrows)
{
    EXPECT_THROW(matmul(Tile(2, 3), Tile(4, 2)), PanicError);
}

TEST(Tile, AddAndMul)
{
    Tile a = Tile::withData(1, 3, {1, 2, 3});
    Tile b = Tile::withData(1, 3, {10, 20, 30});
    Tile s = add(a, b);
    Tile m = elemMul(a, b);
    EXPECT_FLOAT_EQ(s.at(0, 2), 33.0f);
    EXPECT_FLOAT_EQ(m.at(0, 1), 40.0f);
}

TEST(Tile, Silu)
{
    Tile a = Tile::withData(1, 2, {0.0f, 100.0f});
    Tile s = silu(a);
    EXPECT_FLOAT_EQ(s.at(0, 0), 0.0f);
    EXPECT_NEAR(s.at(0, 1), 100.0f, 1e-3);
}

TEST(Tile, RetileRowGrowsDynamically)
{
    Tile acc(0, 4, 2);
    Tile row1 = Tile::withData(1, 4, {1, 2, 3, 4});
    Tile row2 = Tile::withData(2, 4, {5, 6, 7, 8, 9, 10, 11, 12});
    Tile r = retileRow(acc, row1);
    EXPECT_EQ(r.rows(), 1);
    r = retileRow(r, row2);
    EXPECT_EQ(r.rows(), 3);
    EXPECT_EQ(r.cols(), 4);
    EXPECT_FLOAT_EQ(r.at(2, 3), 12.0f);
    EXPECT_EQ(r.bytes(), 3 * 4 * 2);
}

TEST(Tile, RetileColConcats)
{
    Tile a = Tile::withData(2, 1, {1, 2});
    Tile b = Tile::withData(2, 2, {3, 4, 5, 6});
    Tile c = retileCol(a, b);
    EXPECT_EQ(c.rows(), 2);
    EXPECT_EQ(c.cols(), 3);
    EXPECT_FLOAT_EQ(c.at(0, 1), 3.0f);
    EXPECT_FLOAT_EQ(c.at(1, 2), 6.0f);
}

TEST(Tile, SliceRows)
{
    Tile a = Tile::withData(3, 2, {1, 2, 3, 4, 5, 6});
    Tile s = sliceRows(a, 1, 3);
    EXPECT_EQ(s.rows(), 2);
    EXPECT_FLOAT_EQ(s.at(0, 0), 3.0f);
    EXPECT_FLOAT_EQ(s.at(1, 1), 6.0f);
}

TEST(Tile, BytesUseElementSize)
{
    Tile bf16(8, 8, 2);
    Tile fp32(8, 8, 4);
    EXPECT_EQ(bf16.bytes(), 128);
    EXPECT_EQ(fp32.bytes(), 256);
}

TEST(Tile, EqualsRespectsTolerance)
{
    Tile a = Tile::withData(1, 1, {1.0f});
    Tile b = Tile::withData(1, 1, {1.0005f});
    EXPECT_FALSE(a.equals(b));
    EXPECT_TRUE(a.equals(b, 1e-2f));
}

} // namespace
} // namespace step
