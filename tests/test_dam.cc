/**
 * @file
 * Tests of the coroutine simulation kernel: local-clock semantics,
 * channel latency, credit backpressure, deterministic scheduling, select,
 * and deadlock detection.
 */
#include <gtest/gtest.h>

#include "dam/channel.hh"
#include "dam/scheduler.hh"
#include "ops/route.hh"
#include "ops/source_sink.hh"
#include "support/error.hh"

#include "helpers.hh"

namespace step::dam {
namespace {

/** Emits n tokens with the given initiation interval. */
class Producer : public Context
{
  public:
    Producer(Channel& ch, int n, Cycle ii)
        : Context("producer"), ch_(ch), n_(n), ii_(ii)
    {}

    SimTask
    run() override
    {
        for (int i = 0; i < n_; ++i) {
            advance(ii_);
            co_await ch_.write(*this, Token::data(test::val(
                static_cast<float>(i))));
        }
        co_await ch_.write(*this, Token::done());
        co_return;
    }

  private:
    Channel& ch_;
    int n_;
    Cycle ii_;
};

/** Consumes everything with the given per-token delay. */
class Consumer : public Context
{
  public:
    Consumer(Channel& ch, Cycle ii) : Context("consumer"), ch_(ch), ii_(ii)
    {}

    SimTask
    run() override
    {
        while (true) {
            Token t = co_await ch_.read(*this);
            if (t.isDone())
                break;
            got.push_back(t.value().tile().at(0, 0));
            advance(ii_);
        }
        co_return;
    }

    std::vector<float> got;

  private:
    Channel& ch_;
    Cycle ii_;
};

TEST(Dam, PipelineTimingProducerBound)
{
    // Producer II=3, consumer II=1: consumer finishes ~ n*3 + latency.
    Channel ch("c", 8, 1);
    Producer p(ch, 10, 3);
    Consumer c(ch, 1);
    Scheduler s;
    s.add(&p);
    s.add(&c);
    s.run();
    EXPECT_EQ(c.got.size(), 10u);
    // Last data token sent at t=30, visible at 31, consumer advances 1.
    EXPECT_EQ(c.now(), 32u);
}

TEST(Dam, PipelineTimingConsumerBound)
{
    Channel ch("c", 8, 1);
    Producer p(ch, 10, 1);
    Consumer c(ch, 5);
    Scheduler s;
    s.add(&p);
    s.add(&c);
    s.run();
    // First token visible at 2; consumer then serializes at II=5.
    EXPECT_EQ(c.now(), 2u + 10u * 5u);
}

TEST(Dam, BackpressureStallsProducer)
{
    // Capacity 2 and a slow consumer force the producer's clock forward.
    Channel ch("c", 2, 1);
    Producer p(ch, 20, 1);
    Consumer c(ch, 10);
    Scheduler s;
    s.add(&p);
    s.add(&c);
    s.run();
    EXPECT_EQ(c.got.size(), 20u);
    // Producer cannot run 21 cycles ahead; it is credit-bound near the
    // consumer's pace (10/token).
    EXPECT_GT(p.now(), 150u);
}

TEST(Dam, DeterministicAcrossRuns)
{
    auto run_once = [] {
        Channel ch("c", 4, 1);
        Producer p(ch, 50, 2);
        Consumer c(ch, 3);
        Scheduler s;
        s.add(&p);
        s.add(&c);
        s.run();
        return std::pair<Cycle, Cycle>(p.now(), c.now());
    };
    auto a = run_once();
    auto b = run_once();
    EXPECT_EQ(a, b);
}

/** Two contexts that each read before writing: classic deadlock. */
class Deadlocker : public Context
{
  public:
    Deadlocker(std::string name, Channel& in, Channel& out)
        : Context(std::move(name)), in_(in), out_(out)
    {}

    SimTask
    run() override
    {
        Token t = co_await in_.read(*this);
        co_await out_.write(*this, t);
        co_return;
    }

  private:
    Channel& in_;
    Channel& out_;
};

TEST(Dam, DeadlockDetected)
{
    Channel ab("ab", 2, 1);
    Channel ba("ba", 2, 1);
    Deadlocker a("a", ba, ab);
    Deadlocker b("b", ab, ba);
    Scheduler s;
    s.add(&a);
    s.add(&b);
    EXPECT_THROW(s.run(), FatalError);
}

/** Select consumer: merges two producers by availability. */
class SelectConsumer : public Context
{
  public:
    SelectConsumer(Channel& a, Channel& b)
        : Context("sel"), a_(a), b_(b)
    {}

    SimTask
    run() override
    {
        bool da = false, db = false;
        while (!da || !db) {
            Channel* pick = nullptr;
            if (!a_.empty() && !da)
                pick = &a_;
            if (!b_.empty() && !db &&
                (!pick || b_.frontTime() < a_.frontTime()))
                pick = &b_;
            if (!pick) {
                std::vector<Channel*> chans;
                if (!da)
                    chans.push_back(&a_);
                if (!db)
                    chans.push_back(&b_);
                // Named awaiter (GCC 12 temporary-awaiter workaround).
                // chans stays alive in the coroutine frame across the
                // suspension, as WaitAny's span view requires.
                WaitAny any_waiter{chans, *this};
                co_await any_waiter;
                continue;
            }
            Token t = co_await pick->read(*this);
            if (t.isDone()) {
                (pick == &a_ ? da : db) = true;
            } else {
                order.push_back(pick == &a_ ? 'a' : 'b');
            }
        }
        co_return;
    }

    std::string order;

  private:
    Channel& a_;
    Channel& b_;
};

TEST(Dam, SelectMergesByAvailability)
{
    Channel ca("a", 8, 1);
    Channel cb("b", 8, 1);
    Producer pa(ca, 3, 10); // slow
    Producer pb(cb, 3, 1);  // fast
    SelectConsumer sc(ca, cb);
    Scheduler s;
    s.add(&pa);
    s.add(&pb);
    s.add(&sc);
    s.run();
    ASSERT_EQ(sc.order.size(), 6u);
    // The fast producer's tokens all arrive before the slow one's last.
    EXPECT_EQ(std::count(sc.order.begin(), sc.order.begin() + 3, 'b'), 3);
}

TEST(Dam, ChannelLatencyAddsToArrival)
{
    Channel ch("c", 8, 25);
    Producer p(ch, 1, 1);
    Consumer c(ch, 0);
    Scheduler s;
    s.add(&p);
    s.add(&c);
    s.run();
    // Sent at t=1, latency 25 -> consumer clock joins 26.
    EXPECT_EQ(c.now(), 26u);
}

TEST(Dam, ElapsedIsMaxClock)
{
    Channel ch("c", 8, 1);
    Producer p(ch, 5, 7);
    Consumer c(ch, 1);
    Scheduler s;
    s.add(&p);
    s.add(&c);
    s.run();
    EXPECT_EQ(s.elapsed(), std::max(p.now(), c.now()));
}

// ---- scheduler edge cases ---------------------------------------------

/**
 * Both producers become visible before the selector runs again: the
 * first push wakes the select-blocked consumer (Blocked -> Ready), the
 * second push must treat the already-Ready consumer's still-registered
 * waitingReader as a no-op — a single resume, no duplicate heap entry.
 */
TEST(Dam, DoubleWakeFromSelectIsSingleResume)
{
    Channel ca("a", 8, 1);
    Channel cb("b", 8, 1);
    // Producers at the same cadence: both push while the consumer is
    // select-blocked (consumer's clock joins ahead after each pop).
    Producer pa(ca, 4, 2);
    Producer pb(cb, 4, 2);
    SelectConsumer sc(ca, cb);
    Scheduler s;
    s.add(&pa);
    s.add(&pb);
    s.add(&sc);
    s.run();
    EXPECT_EQ(sc.order.size(), 8u);
    EXPECT_EQ(s.elapsed(), std::max({pa.now(), pb.now(), sc.now()}));
}

/**
 * WaitAny wake ordering with multiple simultaneously-ready channels:
 * after the selector resumes, it must consume in front-time order, so
 * the fast producer's tokens all drain before the slow one's last.
 */
TEST(Dam, WaitAnyWakeHonorsAvailabilityOrder)
{
    Channel ca("a", 8, 1);
    Channel cb("b", 8, 1);
    Producer pa(ca, 2, 9);  // tokens visible at t=10, 19
    Producer pb(cb, 2, 2);  // tokens visible at t=3, 5
    SelectConsumer sc(ca, cb);
    Scheduler s;
    s.add(&pa);
    s.add(&pb);
    s.add(&sc);
    s.run();
    ASSERT_EQ(sc.order, "bbaa");
}

/** Yielding context that is sole-ready resumes and terminates. */
class Yielder : public Context
{
  public:
    explicit Yielder(int n) : Context("yielder"), n_(n) {}

    SimTask
    run() override
    {
        for (int i = 0; i < n_; ++i) {
            advance(1);
            co_await Yield{*this};
        }
        co_return;
    }

    int resumed = 0;

  private:
    int n_;
};

TEST(Dam, YieldRequeuesWithoutStaleEntries)
{
    // Two yielding contexts interleave by clock; the index-tracked heap
    // must requeue each yield without duplicating entries.
    Yielder a(50);
    Yielder b(50);
    Scheduler s;
    s.add(&a);
    s.add(&b);
    s.run();
    EXPECT_EQ(a.now(), 50u);
    EXPECT_EQ(b.now(), 50u);
}

/** Reads forever from a channel nobody writes: read-blocked deadlock. */
class StuckReader : public Context
{
  public:
    explicit StuckReader(Channel& ch) : Context("reader"), ch_(ch) {}

    SimTask
    run() override
    {
        co_await ch_.read(*this);
        co_return;
    }

  private:
    Channel& ch_;
};

TEST(Dam, DeadlockReportNamesReadBlockedChannel)
{
    Channel ch("starved", 4, 1);
    StuckReader r(ch);
    Scheduler s;
    s.add(&r);
    try {
        s.run();
        FAIL() << "expected deadlock";
    } catch (const FatalError& e) {
        EXPECT_NE(std::string(e.what()).find("read starved"),
                  std::string::npos)
            << e.what();
    }
}

/** Writes past capacity with no consumer: write-blocked deadlock. */
class StuckWriter : public Context
{
  public:
    explicit StuckWriter(Channel& ch) : Context("writer"), ch_(ch) {}

    SimTask
    run() override
    {
        co_await ch_.write(*this, Token::data(test::val(1)));
        co_await ch_.write(*this, Token::data(test::val(2)));
        co_return;
    }

  private:
    Channel& ch_;
};

TEST(Dam, DeadlockReportNamesWriteBlockedChannel)
{
    Channel ch("clogged", 1, 1);
    StuckWriter w(ch);
    Scheduler s;
    s.add(&w);
    try {
        s.run();
        FAIL() << "expected deadlock";
    } catch (const FatalError& e) {
        EXPECT_NE(std::string(e.what()).find("write clogged (full)"),
                  std::string::npos)
            << e.what();
    }
}

/** Selects over channels nobody writes: select-blocked deadlock. */
class StuckSelector : public Context
{
  public:
    StuckSelector(Channel& a, Channel& b)
        : Context("selector"), a_(a), b_(b)
    {}

    SimTask
    run() override
    {
        std::vector<Channel*> chans{&a_, &b_};
        WaitAny any_waiter{chans, *this};
        co_await any_waiter;
        co_return;
    }

  private:
    Channel& a_;
    Channel& b_;
};

TEST(Dam, DeadlockReportNamesSelectBlockedCount)
{
    Channel ca("sa", 4, 1);
    Channel cb("sb", 4, 1);
    StuckSelector sel(ca, cb);
    Scheduler s;
    s.add(&sel);
    try {
        s.run();
        FAIL() << "expected deadlock";
    } catch (const FatalError& e) {
        EXPECT_NE(std::string(e.what()).find("select over 2 channels"),
                  std::string::npos)
            << e.what();
    }
}

TEST(Dam, ChannelReinitRestoresFreshSemantics)
{
    Channel ch("r", 4, 1);
    {
        Producer p(ch, 6, 2);
        Consumer c(ch, 1);
        Scheduler s;
        s.add(&p);
        s.add(&c);
        s.run();
        EXPECT_EQ(c.got.size(), 6u);
        EXPECT_EQ(ch.totalPushed(), 7u);
    }
    ch.reinit("r2", 4, 1);
    EXPECT_EQ(ch.name(), "r2");
    EXPECT_EQ(ch.totalPushed(), 0u);
    EXPECT_TRUE(ch.empty());
    EXPECT_TRUE(ch.hasCredit());
    {
        Producer p(ch, 6, 2);
        Consumer c(ch, 1);
        Scheduler s;
        s.add(&p);
        s.add(&c);
        s.run();
        // Identical pipeline on the recycled channel: identical timing.
        EXPECT_EQ(c.got.size(), 6u);
        EXPECT_EQ(c.now(), 14u); // last sent t=12, +1 latency, +1 consume
    }
}

/** Pushes one token once its clock reaches @p at. */
class DelayedProducer : public Context
{
  public:
    DelayedProducer(Channel& ch, Cycle at)
        : Context("delayedproducer"), ch_(ch), at_(at)
    {}

    SimTask
    run() override
    {
        advance(at_);
        co_await ch_.write(*this, Token::data(test::val(1.0f)));
        co_await ch_.write(*this, Token::done());
        co_return;
    }

  private:
    Channel& ch_;
    Cycle at_;
};

/** Advances to t=500, yields, then raises a flag when next resumed. */
class FlagAt500 : public Context
{
  public:
    FlagAt500() : Context("flag") {}

    SimTask
    run() override
    {
        advance(500);
        co_await Yield{*this};
        flag = true;
        co_return;
    }

    bool flag = false;
};

/**
 * WaitUntil with a channel list and a far deadline; records whether the
 * flag context (parked at t=500) had already run when the wait ended,
 * which distinguishes an early channel wake from a deadline expiry.
 */
class TimedChannelWaiter : public Context
{
  public:
    TimedChannelWaiter(Channel& ch, const FlagAt500& flagger)
        : Context("timedwaiter"), ch_(ch), flagger_(flagger)
    {}

    SimTask
    run() override
    {
        Channel* chans[1] = {&ch_};
        WaitUntil waiter{chans, *this, 1000};
        co_await waiter;
        sawFlag = flagger_.flag;
        tokenAtWake = !ch_.empty();
        Token t = co_await ch_.read(*this);
        got = t.isData();
        co_await ch_.read(*this); // Done
        co_return;
    }

    bool sawFlag = false;
    bool tokenAtWake = false;
    bool got = false;

  private:
    Channel& ch_;
    const FlagAt500& flagger_;
};

TEST(Dam, WaitUntilWakesEarlyOnChannelPush)
{
    // Producer pushes at t=5 (visible at 6), far before the t=1000
    // deadline: the waiter must be re-keyed to the token's ready time
    // and resume before the t=500 flag context runs.
    Channel ch("ch", 4, 1);
    DelayedProducer prod(ch, 5);
    FlagAt500 flagger;
    TimedChannelWaiter waiter(ch, flagger);
    Scheduler s;
    s.add(&waiter); // registers first, then the producer pushes
    s.add(&prod);
    s.add(&flagger);
    s.run();
    EXPECT_TRUE(waiter.got);
    EXPECT_TRUE(waiter.tokenAtWake);
    EXPECT_FALSE(waiter.sawFlag);
    EXPECT_EQ(waiter.now(), 6u);
}

TEST(Dam, WaitUntilHoldsDeadlineAgainstLaterInput)
{
    // Producer's token becomes visible only at t=2001, after the
    // t=1000 deadline: the channel wake must NOT pull the waiter's key
    // below its deadline (2001 > 1000 keeps 1000), so the waiter
    // resumes at the deadline — after the t=500 flag context — and its
    // read then joins to the token's ready time.
    Channel ch("ch", 4, 1);
    DelayedProducer prod(ch, 2000);
    FlagAt500 flagger;
    TimedChannelWaiter waiter(ch, flagger);
    Scheduler s;
    s.add(&waiter);
    s.add(&prod);
    s.add(&flagger);
    s.run();
    EXPECT_TRUE(waiter.got);
    EXPECT_TRUE(waiter.sawFlag);
    EXPECT_EQ(waiter.now(), 2001u);
}

/**
 * Eight parallel merge regions (the MoE time-multiplexing routing
 * shape): each EagerMerge collects chunks from two sources over deep,
 * visible-latency channels. With tokens available-but-future on every
 * region at once, the legacy merge's patience-yield loops amplify each
 * other — every yield parks one merge at a low clock, which makes the
 * other merges yield in turn — while the WaitUntil rewrite parks each
 * merge once per decision at its candidate's availability.
 */
SimResult
runRoutingGraph(bool timed_wait, uint64_t* events)
{
    SimConfig sc;
    sc.mergeTimedWait = timed_wait;
    sc.channelLatency = 64;
    sc.channelCapacity = 256;
    Graph g(sc);
    const int M = 8;
    const int W = 2;
    const int chunks = 64;
    const int K = 2;
    for (int m = 0; m < M; ++m) {
        std::vector<StreamPort> ways;
        for (int w = 0; w < W; ++w) {
            std::vector<Token> toks;
            for (int b = 0; b < chunks; ++b) {
                for (int k = 0; k < K; ++k)
                    toks.push_back(Token::data(Tile(1, 16)));
                toks.push_back(Token::stop(1));
            }
            toks.push_back(Token::done());
            auto& src = g.add<SourceOp>(
                "src" + std::to_string(m) + "_" + std::to_string(w),
                std::move(toks),
                StreamShape({Dim::fixed(chunks), Dim::fixed(K)}),
                DataType::tile(1, 16), 9 + static_cast<Cycle>(w));
            ways.push_back(src.out());
        }
        auto& merge = g.add<EagerMergeOp>("merge" + std::to_string(m),
                                          ways, 1);
        g.add<SinkOp>("osink" + std::to_string(m), merge.out());
        g.add<SinkOp>("ssink" + std::to_string(m), merge.selOut());
    }
    SimResult r = g.run();
    if (events)
        *events = g.totalChannelTokens();
    return r;
}

TEST(Dam, TimedWaitMergeCutsContextSwitchesThreefold)
{
    uint64_t ev_timed = 0;
    uint64_t ev_legacy = 0;
    SimResult timed = runRoutingGraph(true, &ev_timed);
    SimResult legacy = runRoutingGraph(false, &ev_legacy);

    // Same streamed work and identical simulated timing either way —
    // only the scheduling overhead differs.
    EXPECT_EQ(ev_timed, ev_legacy);
    EXPECT_EQ(timed.cycles, legacy.cycles);
    EXPECT_EQ(timed.totalFlops, legacy.totalFlops);
    EXPECT_EQ(timed.offChipBytes, legacy.offChipBytes);

    // The WaitUntil rewrite replaces the patience-yield poll; on this
    // merge-bound graph that is worth >= 3x fewer coroutine resumes.
    EXPECT_GE(legacy.contextSwitches, 3 * timed.contextSwitches)
        << "timed=" << timed.contextSwitches
        << " legacy=" << legacy.contextSwitches;
}

} // namespace
} // namespace step::dam
