/**
 * @file
 * Tests of the coroutine simulation kernel: local-clock semantics,
 * channel latency, credit backpressure, deterministic scheduling, select,
 * and deadlock detection.
 */
#include <gtest/gtest.h>

#include "dam/channel.hh"
#include "dam/scheduler.hh"
#include "support/error.hh"

#include "helpers.hh"

namespace step::dam {
namespace {

/** Emits n tokens with the given initiation interval. */
class Producer : public Context
{
  public:
    Producer(Channel& ch, int n, Cycle ii)
        : Context("producer"), ch_(ch), n_(n), ii_(ii)
    {}

    SimTask
    run() override
    {
        for (int i = 0; i < n_; ++i) {
            advance(ii_);
            co_await ch_.write(*this, Token::data(test::val(
                static_cast<float>(i))));
        }
        co_await ch_.write(*this, Token::done());
        co_return;
    }

  private:
    Channel& ch_;
    int n_;
    Cycle ii_;
};

/** Consumes everything with the given per-token delay. */
class Consumer : public Context
{
  public:
    Consumer(Channel& ch, Cycle ii) : Context("consumer"), ch_(ch), ii_(ii)
    {}

    SimTask
    run() override
    {
        while (true) {
            Token t = co_await ch_.read(*this);
            if (t.isDone())
                break;
            got.push_back(t.value().tile().at(0, 0));
            advance(ii_);
        }
        co_return;
    }

    std::vector<float> got;

  private:
    Channel& ch_;
    Cycle ii_;
};

TEST(Dam, PipelineTimingProducerBound)
{
    // Producer II=3, consumer II=1: consumer finishes ~ n*3 + latency.
    Channel ch("c", 8, 1);
    Producer p(ch, 10, 3);
    Consumer c(ch, 1);
    Scheduler s;
    s.add(&p);
    s.add(&c);
    s.run();
    EXPECT_EQ(c.got.size(), 10u);
    // Last data token sent at t=30, visible at 31, consumer advances 1.
    EXPECT_EQ(c.now(), 32u);
}

TEST(Dam, PipelineTimingConsumerBound)
{
    Channel ch("c", 8, 1);
    Producer p(ch, 10, 1);
    Consumer c(ch, 5);
    Scheduler s;
    s.add(&p);
    s.add(&c);
    s.run();
    // First token visible at 2; consumer then serializes at II=5.
    EXPECT_EQ(c.now(), 2u + 10u * 5u);
}

TEST(Dam, BackpressureStallsProducer)
{
    // Capacity 2 and a slow consumer force the producer's clock forward.
    Channel ch("c", 2, 1);
    Producer p(ch, 20, 1);
    Consumer c(ch, 10);
    Scheduler s;
    s.add(&p);
    s.add(&c);
    s.run();
    EXPECT_EQ(c.got.size(), 20u);
    // Producer cannot run 21 cycles ahead; it is credit-bound near the
    // consumer's pace (10/token).
    EXPECT_GT(p.now(), 150u);
}

TEST(Dam, DeterministicAcrossRuns)
{
    auto run_once = [] {
        Channel ch("c", 4, 1);
        Producer p(ch, 50, 2);
        Consumer c(ch, 3);
        Scheduler s;
        s.add(&p);
        s.add(&c);
        s.run();
        return std::pair<Cycle, Cycle>(p.now(), c.now());
    };
    auto a = run_once();
    auto b = run_once();
    EXPECT_EQ(a, b);
}

/** Two contexts that each read before writing: classic deadlock. */
class Deadlocker : public Context
{
  public:
    Deadlocker(std::string name, Channel& in, Channel& out)
        : Context(std::move(name)), in_(in), out_(out)
    {}

    SimTask
    run() override
    {
        Token t = co_await in_.read(*this);
        co_await out_.write(*this, t);
        co_return;
    }

  private:
    Channel& in_;
    Channel& out_;
};

TEST(Dam, DeadlockDetected)
{
    Channel ab("ab", 2, 1);
    Channel ba("ba", 2, 1);
    Deadlocker a("a", ba, ab);
    Deadlocker b("b", ab, ba);
    Scheduler s;
    s.add(&a);
    s.add(&b);
    EXPECT_THROW(s.run(), FatalError);
}

/** Select consumer: merges two producers by availability. */
class SelectConsumer : public Context
{
  public:
    SelectConsumer(Channel& a, Channel& b)
        : Context("sel"), a_(a), b_(b)
    {}

    SimTask
    run() override
    {
        bool da = false, db = false;
        while (!da || !db) {
            Channel* pick = nullptr;
            if (!a_.empty() && !da)
                pick = &a_;
            if (!b_.empty() && !db &&
                (!pick || b_.frontTime() < a_.frontTime()))
                pick = &b_;
            if (!pick) {
                std::vector<Channel*> chans;
                if (!da)
                    chans.push_back(&a_);
                if (!db)
                    chans.push_back(&b_);
                // Named awaiter (GCC 12 temporary-awaiter workaround).
                // chans stays alive in the coroutine frame across the
                // suspension, as WaitAny's span view requires.
                WaitAny any_waiter{chans, *this};
                co_await any_waiter;
                continue;
            }
            Token t = co_await pick->read(*this);
            if (t.isDone()) {
                (pick == &a_ ? da : db) = true;
            } else {
                order.push_back(pick == &a_ ? 'a' : 'b');
            }
        }
        co_return;
    }

    std::string order;

  private:
    Channel& a_;
    Channel& b_;
};

TEST(Dam, SelectMergesByAvailability)
{
    Channel ca("a", 8, 1);
    Channel cb("b", 8, 1);
    Producer pa(ca, 3, 10); // slow
    Producer pb(cb, 3, 1);  // fast
    SelectConsumer sc(ca, cb);
    Scheduler s;
    s.add(&pa);
    s.add(&pb);
    s.add(&sc);
    s.run();
    ASSERT_EQ(sc.order.size(), 6u);
    // The fast producer's tokens all arrive before the slow one's last.
    EXPECT_EQ(std::count(sc.order.begin(), sc.order.begin() + 3, 'b'), 3);
}

TEST(Dam, ChannelLatencyAddsToArrival)
{
    Channel ch("c", 8, 25);
    Producer p(ch, 1, 1);
    Consumer c(ch, 0);
    Scheduler s;
    s.add(&p);
    s.add(&c);
    s.run();
    // Sent at t=1, latency 25 -> consumer clock joins 26.
    EXPECT_EQ(c.now(), 26u);
}

TEST(Dam, ElapsedIsMaxClock)
{
    Channel ch("c", 8, 1);
    Producer p(ch, 5, 7);
    Consumer c(ch, 1);
    Scheduler s;
    s.add(&p);
    s.add(&c);
    s.run();
    EXPECT_EQ(s.elapsed(), std::max(p.now(), c.now()));
}

// ---- scheduler edge cases ---------------------------------------------

/**
 * Both producers become visible before the selector runs again: the
 * first push wakes the select-blocked consumer (Blocked -> Ready), the
 * second push must treat the already-Ready consumer's still-registered
 * waitingReader as a no-op — a single resume, no duplicate heap entry.
 */
TEST(Dam, DoubleWakeFromSelectIsSingleResume)
{
    Channel ca("a", 8, 1);
    Channel cb("b", 8, 1);
    // Producers at the same cadence: both push while the consumer is
    // select-blocked (consumer's clock joins ahead after each pop).
    Producer pa(ca, 4, 2);
    Producer pb(cb, 4, 2);
    SelectConsumer sc(ca, cb);
    Scheduler s;
    s.add(&pa);
    s.add(&pb);
    s.add(&sc);
    s.run();
    EXPECT_EQ(sc.order.size(), 8u);
    EXPECT_EQ(s.elapsed(), std::max({pa.now(), pb.now(), sc.now()}));
}

/**
 * WaitAny wake ordering with multiple simultaneously-ready channels:
 * after the selector resumes, it must consume in front-time order, so
 * the fast producer's tokens all drain before the slow one's last.
 */
TEST(Dam, WaitAnyWakeHonorsAvailabilityOrder)
{
    Channel ca("a", 8, 1);
    Channel cb("b", 8, 1);
    Producer pa(ca, 2, 9);  // tokens visible at t=10, 19
    Producer pb(cb, 2, 2);  // tokens visible at t=3, 5
    SelectConsumer sc(ca, cb);
    Scheduler s;
    s.add(&pa);
    s.add(&pb);
    s.add(&sc);
    s.run();
    ASSERT_EQ(sc.order, "bbaa");
}

/** Yielding context that is sole-ready resumes and terminates. */
class Yielder : public Context
{
  public:
    explicit Yielder(int n) : Context("yielder"), n_(n) {}

    SimTask
    run() override
    {
        for (int i = 0; i < n_; ++i) {
            advance(1);
            co_await Yield{*this};
        }
        co_return;
    }

    int resumed = 0;

  private:
    int n_;
};

TEST(Dam, YieldRequeuesWithoutStaleEntries)
{
    // Two yielding contexts interleave by clock; the index-tracked heap
    // must requeue each yield without duplicating entries.
    Yielder a(50);
    Yielder b(50);
    Scheduler s;
    s.add(&a);
    s.add(&b);
    s.run();
    EXPECT_EQ(a.now(), 50u);
    EXPECT_EQ(b.now(), 50u);
}

/** Reads forever from a channel nobody writes: read-blocked deadlock. */
class StuckReader : public Context
{
  public:
    explicit StuckReader(Channel& ch) : Context("reader"), ch_(ch) {}

    SimTask
    run() override
    {
        co_await ch_.read(*this);
        co_return;
    }

  private:
    Channel& ch_;
};

TEST(Dam, DeadlockReportNamesReadBlockedChannel)
{
    Channel ch("starved", 4, 1);
    StuckReader r(ch);
    Scheduler s;
    s.add(&r);
    try {
        s.run();
        FAIL() << "expected deadlock";
    } catch (const FatalError& e) {
        EXPECT_NE(std::string(e.what()).find("read starved"),
                  std::string::npos)
            << e.what();
    }
}

/** Writes past capacity with no consumer: write-blocked deadlock. */
class StuckWriter : public Context
{
  public:
    explicit StuckWriter(Channel& ch) : Context("writer"), ch_(ch) {}

    SimTask
    run() override
    {
        co_await ch_.write(*this, Token::data(test::val(1)));
        co_await ch_.write(*this, Token::data(test::val(2)));
        co_return;
    }

  private:
    Channel& ch_;
};

TEST(Dam, DeadlockReportNamesWriteBlockedChannel)
{
    Channel ch("clogged", 1, 1);
    StuckWriter w(ch);
    Scheduler s;
    s.add(&w);
    try {
        s.run();
        FAIL() << "expected deadlock";
    } catch (const FatalError& e) {
        EXPECT_NE(std::string(e.what()).find("write clogged (full)"),
                  std::string::npos)
            << e.what();
    }
}

/** Selects over channels nobody writes: select-blocked deadlock. */
class StuckSelector : public Context
{
  public:
    StuckSelector(Channel& a, Channel& b)
        : Context("selector"), a_(a), b_(b)
    {}

    SimTask
    run() override
    {
        std::vector<Channel*> chans{&a_, &b_};
        WaitAny any_waiter{chans, *this};
        co_await any_waiter;
        co_return;
    }

  private:
    Channel& a_;
    Channel& b_;
};

TEST(Dam, DeadlockReportNamesSelectBlockedCount)
{
    Channel ca("sa", 4, 1);
    Channel cb("sb", 4, 1);
    StuckSelector sel(ca, cb);
    Scheduler s;
    s.add(&sel);
    try {
        s.run();
        FAIL() << "expected deadlock";
    } catch (const FatalError& e) {
        EXPECT_NE(std::string(e.what()).find("select over 2 channels"),
                  std::string::npos)
            << e.what();
    }
}

TEST(Dam, ChannelReinitRestoresFreshSemantics)
{
    Channel ch("r", 4, 1);
    {
        Producer p(ch, 6, 2);
        Consumer c(ch, 1);
        Scheduler s;
        s.add(&p);
        s.add(&c);
        s.run();
        EXPECT_EQ(c.got.size(), 6u);
        EXPECT_EQ(ch.totalPushed(), 7u);
    }
    ch.reinit("r2", 4, 1);
    EXPECT_EQ(ch.name(), "r2");
    EXPECT_EQ(ch.totalPushed(), 0u);
    EXPECT_TRUE(ch.empty());
    EXPECT_TRUE(ch.hasCredit());
    {
        Producer p(ch, 6, 2);
        Consumer c(ch, 1);
        Scheduler s;
        s.add(&p);
        s.add(&c);
        s.run();
        // Identical pipeline on the recycled channel: identical timing.
        EXPECT_EQ(c.got.size(), 6u);
        EXPECT_EQ(c.now(), 14u); // last sent t=12, +1 latency, +1 consume
    }
}

} // namespace
} // namespace step::dam
