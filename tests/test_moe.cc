/**
 * @file
 * Integration tests for the MoE workload: the full STeP graph (Figure 7
 * structure with SwiGLU experts) is run in functional mode on a tiny
 * configuration and compared against a dense reference, across all four
 * combinations of tiling strategy and expert placement, plus metric
 * sanity checks in timing mode.
 */
#include <gtest/gtest.h>

#include "ops/source_sink.hh"
#include "workloads/moe.hh"

#include "helpers.hh"

namespace step {
namespace {

std::vector<std::vector<float>>
randomTokens(uint64_t seed, int64_t batch, int64_t hidden)
{
    Rng rng(seed);
    std::vector<std::vector<float>> rows;
    for (int64_t t = 0; t < batch; ++t) {
        std::vector<float> r;
        for (int64_t d = 0; d < hidden; ++d)
            r.push_back(static_cast<float>(rng.uniform() - 0.5));
        rows.push_back(std::move(r));
    }
    return rows;
}

struct MoeCase
{
    Tiling tiling;
    int64_t regions; // 0 = dedicated
    const char* label;
};

class MoeFunctional : public ::testing::TestWithParam<MoeCase> {};

TEST_P(MoeFunctional, MatchesDenseReference)
{
    MoeCase mc = GetParam();
    MoeParams p;
    p.cfg = tinyConfig();
    p.batch = 10;
    p.tiling = mc.tiling;
    p.tileRows = 3; // non-divisor: exercises padding
    p.weightTileCols = 4;
    p.computeBwPerMatmul = 64;
    p.parallelRegions = mc.regions;
    p.functional = true;
    p.seed = 7;

    Rng rng(99);
    ExpertTrace trace = generateExpertTrace(rng, p.batch,
                                            p.cfg.numExperts, p.cfg.topK);
    auto tokens = randomTokens(3, p.batch, p.cfg.hidden);

    SimConfig sc;
    sc.channelCapacity = static_cast<size_t>(p.batch) + 32;
    Graph g(sc);
    MoeBuild mb = buildMoeLayer(g, p, trace, &tokens);
    auto& sink = g.add<SinkOp>("out", mb.out, true);
    auto res = g.run();

    auto ref = referenceMoe(p, trace, tokens);
    ASSERT_EQ(sink.dataCount(), static_cast<uint64_t>(p.batch))
        << mc.label;
    size_t t = 0;
    for (const auto& tok : sink.tokens()) {
        if (!tok.isData())
            continue;
        const Tile& row = tok.value().tile();
        ASSERT_EQ(row.cols(), p.cfg.hidden);
        for (int64_t d = 0; d < p.cfg.hidden; ++d) {
            EXPECT_NEAR(row.at(0, d), ref[t][static_cast<size_t>(d)],
                        1e-3f)
                << mc.label << " token " << t << " dim " << d;
        }
        ++t;
    }
    EXPECT_GT(res.offChipBytes, 0);
    EXPECT_GT(res.totalFlops, 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, MoeFunctional,
    ::testing::Values(MoeCase{Tiling::Static, 0, "static_dedicated"},
                      MoeCase{Tiling::Dynamic, 0, "dynamic_dedicated"},
                      MoeCase{Tiling::Static, 2, "static_timemux"},
                      MoeCase{Tiling::Dynamic, 2, "dynamic_timemux"}),
    [](const auto& info) { return std::string(info.param.label); });

TEST(MoeTiming, DynamicTilingCutsTrafficVsSmallStaticTile)
{
    // Timing mode, scaled-down dims: dynamic tiling must reduce weight
    // reloads relative to a small static tile, and FLOPs relative to a
    // padded static tile.
    MoeParams base;
    base.cfg = tinyConfig();
    base.cfg.hidden = 32;
    base.cfg.moeIntermediate = 32;
    base.cfg.numExperts = 8;
    base.cfg.topK = 2;
    base.batch = 32;
    base.weightTileCols = 8;
    base.computeBwPerMatmul = 128;

    Rng rng(5);
    ExpertTrace trace = generateExpertTrace(rng, base.batch,
                                            base.cfg.numExperts,
                                            base.cfg.topK);

    auto run_cfg = [&](Tiling tiling, int64_t tile) {
        MoeParams p = base;
        p.tiling = tiling;
        p.tileRows = tile;
        SimConfig sc;
        sc.channelCapacity = static_cast<size_t>(p.batch) + 32;
        Graph g(sc);
        MoeBuild mb = buildMoeLayer(g, p, trace, nullptr);
        g.add<SinkOp>("out", mb.out);
        return g.run();
    };

    SimResult small_static = run_cfg(Tiling::Static, 2);
    SimResult big_static = run_cfg(Tiling::Static, 16);
    SimResult dynamic = run_cfg(Tiling::Dynamic, 2);

    // Dynamic tiling loads each active expert's weights exactly once:
    // least traffic of the three.
    EXPECT_LT(dynamic.offChipBytes, small_static.offChipBytes);
    EXPECT_LE(dynamic.offChipBytes, big_static.offChipBytes);
    // Padding inflates static FLOPs; dynamic runs only useful FLOPs.
    EXPECT_LT(dynamic.totalFlops, big_static.totalFlops);
    // Large static tiles hold bigger on-chip tiles than small ones.
    EXPECT_GT(big_static.onChipPeakBytes, small_static.onChipPeakBytes);
}

TEST(MoeTiming, TimeMuxSavesAllocatedCompute)
{
    MoeParams base;
    base.cfg = tinyConfig();
    base.cfg.hidden = 32;
    base.cfg.moeIntermediate = 32;
    base.cfg.numExperts = 8;
    base.cfg.topK = 2;
    base.batch = 32;
    base.weightTileCols = 8;
    base.computeBwPerMatmul = 128;
    base.tiling = Tiling::Static;
    base.tileRows = 4;

    Rng rng(5);
    ExpertTrace trace = generateExpertTrace(rng, base.batch,
                                            base.cfg.numExperts,
                                            base.cfg.topK);

    auto run_regions = [&](int64_t regions) {
        MoeParams p = base;
        p.parallelRegions = regions;
        SimConfig sc;
        sc.channelCapacity = static_cast<size_t>(p.batch) + 32;
        Graph g(sc);
        MoeBuild mb = buildMoeLayer(g, p, trace, nullptr);
        g.add<SinkOp>("out", mb.out);
        return g.run();
    };

    SimResult dedicated = run_regions(0);
    SimResult muxed = run_regions(2);
    EXPECT_LT(muxed.allocatedComputeBw, dedicated.allocatedComputeBw);
    EXPECT_GT(muxed.computeUtilization(), dedicated.computeUtilization());
    // Same useful work either way.
    EXPECT_EQ(muxed.totalFlops, dedicated.totalFlops);
}

} // namespace
} // namespace step
