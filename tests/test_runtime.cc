/**
 * @file
 * Serving-runtime tests: KV-budgeted admission, trace generation,
 * policy behavior, metric correctness on a hand-computed trace,
 * deterministic replay, scheduler reuse across iterations, and the
 * headline property — queue-depth-driven bandwidth reallocation beats a
 * static split on goodput under bursty arrivals.
 */
#include <gtest/gtest.h>

#include "runtime/engine.hh"
#include "support/error.hh"

using namespace step;
using namespace step::runtime;

namespace {

Request
mkReq(int64_t id, dam::Cycle arrival, int64_t prompt, int64_t output)
{
    Request r;
    r.id = id;
    r.arrival = arrival;
    r.promptLen = prompt;
    r.outputLen = output;
    return r;
}

TraceConfig
burstyTrace(int64_t n)
{
    TraceConfig tc;
    tc.numRequests = n;
    tc.arrivalsPerKcycle = 0.0012;
    tc.burstPeriod = 16'000'000;
    tc.burstDuty = 0.3;
    tc.burstFactor = 4.0;
    return tc;
}

} // namespace

// ---- batcher ----------------------------------------------------------

TEST(Batcher, AdmitsUnderKvBudgetInFifoOrder)
{
    BatcherConfig bc;
    bc.kvBudgetBytes = 40 * 256; // 40 KV tokens
    bc.kvBytesPerToken = 256;
    bc.maxRunning = 10;
    ContinuousBatcher b(bc);

    // 15 + 15 tokens fit; the 20-token third request would overflow.
    Request r0 = mkReq(0, 0, 10, 5);
    Request r1 = mkReq(1, 0, 10, 5);
    Request r2 = mkReq(2, 0, 15, 5);
    Request r3 = mkReq(3, 0, 1, 1); // would fit, but FIFO blocks it
    for (Request* r : {&r0, &r1, &r2, &r3})
        b.enqueue(r);

    auto admitted = b.admit().admitted;
    ASSERT_EQ(admitted.size(), 2u);
    EXPECT_EQ(admitted[0]->id, 0);
    EXPECT_EQ(admitted[1]->id, 1);
    EXPECT_EQ(b.kvBytesReserved(), 30 * 256);
    EXPECT_EQ(b.waitingCount(), 2);
    EXPECT_EQ(b.waitingPromptTokens(), 16);
    EXPECT_EQ(r0.state, ReqState::Prefilling);
    EXPECT_EQ(r2.state, ReqState::Queued);

    // Nothing more fits until a release frees the budget.
    EXPECT_TRUE(b.admit().admitted.empty());
    b.release(&r0);
    admitted = b.admit().admitted;
    ASSERT_EQ(admitted.size(), 2u);
    EXPECT_EQ(admitted[0]->id, 2);
    EXPECT_EQ(admitted[1]->id, 3);
    EXPECT_EQ(b.kvBytesReserved(), (15 + 20 + 2) * 256);
}

TEST(Batcher, RespectsBatchCap)
{
    BatcherConfig bc;
    bc.kvBudgetBytes = int64_t{1} << 30;
    bc.kvBytesPerToken = 256;
    bc.maxRunning = 2;
    ContinuousBatcher b(bc);
    Request r0 = mkReq(0, 0, 4, 4), r1 = mkReq(1, 0, 4, 4),
            r2 = mkReq(2, 0, 4, 4);
    for (Request* r : {&r0, &r1, &r2})
        b.enqueue(r);
    EXPECT_EQ(b.admit().admitted.size(), 2u);
    EXPECT_EQ(b.waitingCount(), 1);
}

TEST(Batcher, OversizedRequestStallsWithoutPolicyShedsWithOne)
{
    BatcherConfig bc;
    bc.kvBudgetBytes = 10 * 256;
    bc.kvBytesPerToken = 256;
    ContinuousBatcher b(bc);
    Request r = mkReq(0, 0, 100, 100);
    b.enqueue(&r); // accepted: shedding/stalling is decided at admit
    // Without a policy the head blocks forever (the engine turns that
    // into a StallError); with any policy attached the impossible head
    // is shed structurally.
    EXPECT_TRUE(b.admit().admitted.empty());
    EXPECT_EQ(b.waitingCount(), 1);
    DeadlineAwareShedPolicy shed;
    auto out = b.admit(&shed);
    EXPECT_TRUE(out.admitted.empty());
    ASSERT_EQ(out.shed.size(), 1u);
    EXPECT_EQ(out.shed[0]->id, 0);
    EXPECT_EQ(r.state, ReqState::Shed);
    EXPECT_EQ(b.waitingCount(), 0);
    EXPECT_EQ(b.kvBytesReserved(), 0);
}

// ---- trace generation -------------------------------------------------

TEST(Trace, DeterministicSortedAndClamped)
{
    TraceConfig tc = burstyTrace(100);
    auto a = generateTrace(tc, 7);
    auto b = generateTrace(tc, 7);
    auto c = generateTrace(tc, 8);
    ASSERT_EQ(a.size(), 100u);
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].arrival, b[i].arrival);
        EXPECT_EQ(a[i].promptLen, b[i].promptLen);
        EXPECT_EQ(a[i].outputLen, b[i].outputLen);
        EXPECT_GE(a[i].promptLen, tc.promptMin);
        EXPECT_LE(a[i].promptLen, tc.promptMax);
        EXPECT_GE(a[i].outputLen, tc.outputMin);
        EXPECT_LE(a[i].outputLen, tc.outputMax);
        if (i) {
            EXPECT_GE(a[i].arrival, a[i - 1].arrival);
        }
    }
    bool differs = false;
    for (size_t i = 0; i < a.size(); ++i)
        differs |= a[i].arrival != c[i].arrival;
    EXPECT_TRUE(differs);
}

// ---- policies ---------------------------------------------------------

TEST(Policy, StaticSplitIgnoresLoad)
{
    StaticSplitPolicy p(0.3);
    LoadSnapshot idle;
    LoadSnapshot busy;
    busy.waitingPromptTokens = 100000;
    busy.activeDecodes = 64;
    BwSplit a = p.split(idle, 1000);
    BwSplit c = p.split(busy, 1000);
    EXPECT_EQ(a.prefillBw, 300);
    EXPECT_EQ(a.decodeBw, 700);
    EXPECT_EQ(c.prefillBw, a.prefillBw);
    EXPECT_EQ(c.decodeBw, a.decodeBw);
}

TEST(Policy, QueueDepthReallocates)
{
    QueueDepthPolicy p(256.0, 0.75);
    LoadSnapshot idle;
    idle.activeDecodes = 8;
    BwSplit a = p.split(idle, 1000);
    EXPECT_EQ(a.prefillBw, 0); // empty queue: decode gets everything
    EXPECT_EQ(a.decodeBw, 1000);

    LoadSnapshot deep;
    deep.pendingPrefillTokens = 10000;
    deep.activeDecodes = 8;
    BwSplit b = p.split(deep, 1000);
    EXPECT_EQ(b.prefillBw, 750); // capped at the decode-protection limit
    EXPECT_EQ(b.decodeBw, 250);

    // Waiting-but-unadmittable work must not pull bandwidth: nothing in
    // the batch could spend it this iteration.
    LoadSnapshot blocked;
    blocked.waitingPromptTokens = 10000;
    blocked.activeDecodes = 8;
    BwSplit d = p.split(blocked, 1000);
    EXPECT_EQ(d.prefillBw, 0);
    EXPECT_EQ(d.decodeBw, 1000);

    LoadSnapshot shallow;
    shallow.pendingPrefillTokens = 128; // half the ramp
    BwSplit c = p.split(shallow, 1000);
    EXPECT_EQ(c.prefillBw, 375);
}

// ---- metrics: hand-computed 3-request trace ---------------------------

TEST(Metrics, HandComputedThreeRequestTrace)
{
    // r0: TTFT 100, single-token (no TPOT).
    // r1: TTFT 200, TPOT (1050-250)/4 = 200.
    // r2: TTFT 600, TPOT (1100-700)/2 = 200.
    std::vector<Request> reqs(3);
    reqs[0] = mkReq(0, 0, 10, 1);
    reqs[0].firstTokenAt = 100;
    reqs[0].finishedAt = 100;
    reqs[0].generated = 1;
    reqs[1] = mkReq(1, 50, 10, 5);
    reqs[1].firstTokenAt = 250;
    reqs[1].finishedAt = 1050;
    reqs[1].generated = 5;
    reqs[2] = mkReq(2, 100, 10, 3);
    reqs[2].firstTokenAt = 700;
    reqs[2].finishedAt = 1100;
    reqs[2].generated = 3;
    for (auto& r : reqs)
        r.state = ReqState::Finished;

    SloConfig slo;
    slo.ttftCycles = 250;
    slo.tpotCycles = 300;
    ServingSummary s = summarize(reqs, 1100, slo);

    EXPECT_EQ(s.completed, 3);
    EXPECT_EQ(s.generatedTokens, 9);
    EXPECT_DOUBLE_EQ(ttft(reqs[2]), 600.0);
    EXPECT_DOUBLE_EQ(tpot(reqs[1]), 200.0);
    // Nearest-rank percentiles over {100, 200, 600} and {200, 200}.
    EXPECT_DOUBLE_EQ(s.ttftP50, 200.0);
    EXPECT_DOUBLE_EQ(s.ttftP99, 600.0);
    EXPECT_DOUBLE_EQ(s.ttftMean, 300.0);
    EXPECT_DOUBLE_EQ(s.tpotP50, 200.0);
    EXPECT_DOUBLE_EQ(s.tpotP99, 200.0);
    // r2 misses the TTFT SLO; 1 + 5 tokens remain good.
    EXPECT_EQ(s.sloCompliant, 2);
    EXPECT_DOUBLE_EQ(s.throughputTokensPerKcycle, 9.0 / 1.1);
    EXPECT_DOUBLE_EQ(s.goodputTokensPerKcycle, 6.0 / 1.1);
}

// ---- per-iteration graphs & scheduler reuse ---------------------------

TEST(Runtime, SchedulerReuseMatchesFreshScheduler)
{
    DecoderParams p;
    p.cfg = servingSimConfig();
    p.moeRegions = 4;
    p.moeTile = 16;
    p.denseTile = 16;
    IterationSpec spec;
    spec.kvLens = {32, 64, 96, 160};
    Rng rng(3);
    spec.trace = generateExpertTrace(rng, 4, p.cfg.numExperts, p.cfg.topK);

    SimResult fresh1 = runDecoderIteration(p, spec);
    dam::Scheduler sched;
    SimResult reused1 = runDecoderIteration(p, spec, &sched);
    SimResult reused2 = runDecoderIteration(p, spec, &sched);
    EXPECT_EQ(fresh1.cycles, reused1.cycles);
    EXPECT_EQ(reused1.cycles, reused2.cycles);
    EXPECT_EQ(fresh1.totalFlops, reused1.totalFlops);
    EXPECT_EQ(fresh1.offChipBytes, reused2.offChipBytes);
}

TEST(Runtime, RecycledGraphMatchesFreshGraphAcrossBatchChanges)
{
    DecoderParams p;
    p.cfg = servingSimConfig();
    p.moeRegions = 4;
    p.moeTile = 16;
    p.denseTile = 16;
    dam::Scheduler sched;
    GraphArena arena;
    Graph reuse(SimConfig{}, &arena);

    // Vary the batch composition across recycles, as the engine does.
    std::vector<std::vector<int64_t>> batches = {
        {32, 64, 96, 160}, {48, 80}, {32, 64, 96, 160}, {200},
        {16, 16, 16, 16, 16, 16},
    };
    for (size_t i = 0; i < batches.size(); ++i) {
        IterationSpec spec;
        spec.kvLens = batches[i];
        Rng rng(100 + i);
        spec.trace = generateExpertTrace(
            rng, static_cast<int64_t>(spec.kvLens.size()),
            p.cfg.numExperts, p.cfg.topK);
        SimResult fresh = runDecoderIteration(p, spec, &sched);
        SimResult recycled = runDecoderIteration(p, spec, &sched, &reuse);
        EXPECT_EQ(fresh.cycles, recycled.cycles) << "batch " << i;
        EXPECT_EQ(fresh.totalFlops, recycled.totalFlops) << "batch " << i;
        EXPECT_EQ(fresh.offChipBytes, recycled.offChipBytes)
            << "batch " << i;
        EXPECT_EQ(fresh.onChipPeakBytes, recycled.onChipPeakBytes)
            << "batch " << i;
    }
}

// ---- engine -----------------------------------------------------------

TEST(Engine, DeterministicReplayUnderFixedSeed)
{
    TraceConfig tc = burstyTrace(30);
    EngineConfig ec;
    ec.seed = 11;
    QueueDepthPolicy policy;

    auto run_once = [&] {
        auto reqs = generateTrace(tc, 5);
        ServingEngine engine(ec, policy);
        return engine.run(reqs);
    };
    EngineResult a = run_once();
    EngineResult b = run_once();
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.summary.makespan, b.summary.makespan);
    EXPECT_DOUBLE_EQ(a.summary.ttftP99, b.summary.ttftP99);
    EXPECT_DOUBLE_EQ(a.summary.tpotP99, b.summary.tpotP99);
    EXPECT_DOUBLE_EQ(a.summary.goodputTokensPerKcycle,
                     b.summary.goodputTokensPerKcycle);
    EXPECT_DOUBLE_EQ(a.summary.computeUtilization,
                     b.summary.computeUtilization);
}

TEST(Engine, CompletesAllRequestsAndStampsLatencies)
{
    TraceConfig tc = burstyTrace(30);
    EngineConfig ec;
    QueueDepthPolicy policy;
    auto reqs = generateTrace(tc, 5);
    ServingEngine engine(ec, policy);
    EngineResult r = engine.run(reqs);

    EXPECT_EQ(r.summary.completed, 30);
    for (const auto& req : reqs) {
        EXPECT_TRUE(req.done());
        EXPECT_EQ(req.generated, req.outputLen);
        EXPECT_GT(req.firstTokenAt, req.arrival);
        EXPECT_GE(req.finishedAt, req.firstTokenAt);
    }
    EXPECT_GT(r.summary.computeUtilization, 0.0);
    EXPECT_LE(r.summary.computeUtilization, 1.0);
    EXPECT_EQ(r.timeline.span(), r.summary.makespan);
    EXPECT_EQ(static_cast<int64_t>(r.timeline.iterations()),
              r.iterations);
}

TEST(Engine, RecycledGraphsMatchRebuildPathOver100Iterations)
{
    // Acceptance gate for graph recycling: >= 100 batching iterations on
    // one engine instance, with metrics identical to rebuilding the
    // iteration graph from scratch every time.
    TraceConfig tc = burstyTrace(60);
    QueueDepthPolicy policy;

    auto run_once = [&](bool recycle) {
        auto reqs = generateTrace(tc, 5);
        EngineConfig ec;
        ec.recycleGraphs = recycle;
        ServingEngine engine(ec, policy);
        return engine.run(reqs);
    };
    EngineResult rebuild = run_once(false);
    EngineResult recycled = run_once(true);

    EXPECT_GE(recycled.iterations, 100);
    EXPECT_EQ(recycled.iterations, rebuild.iterations);
    EXPECT_EQ(recycled.summary.makespan, rebuild.summary.makespan);
    EXPECT_EQ(recycled.summary.completed, rebuild.summary.completed);
    EXPECT_EQ(recycled.summary.generatedTokens,
              rebuild.summary.generatedTokens);
    EXPECT_DOUBLE_EQ(recycled.summary.ttftP50, rebuild.summary.ttftP50);
    EXPECT_DOUBLE_EQ(recycled.summary.ttftP99, rebuild.summary.ttftP99);
    EXPECT_DOUBLE_EQ(recycled.summary.tpotP99, rebuild.summary.tpotP99);
    EXPECT_DOUBLE_EQ(recycled.summary.goodputTokensPerKcycle,
                     rebuild.summary.goodputTokensPerKcycle);
    EXPECT_DOUBLE_EQ(recycled.summary.computeUtilization,
                     rebuild.summary.computeUtilization);
}

TEST(Engine, DeterministicReplayWithRecycledGraphs)
{
    // Two seeded runs through the recycled-graph engine must produce
    // byte-identical metrics (guards the arena/recycling refactor
    // against nondeterminism, e.g. reused state leaking across
    // iterations).
    TraceConfig tc = burstyTrace(40);
    QueueDepthPolicy policy;
    auto run_once = [&] {
        auto reqs = generateTrace(tc, 9);
        EngineConfig ec;
        ec.seed = 17;
        ec.recycleGraphs = true;
        ServingEngine engine(ec, policy);
        return engine.run(reqs);
    };
    EngineResult a = run_once();
    EngineResult b = run_once();
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.summary.makespan, b.summary.makespan);
    EXPECT_EQ(a.summary.generatedTokens, b.summary.generatedTokens);
    EXPECT_DOUBLE_EQ(a.summary.ttftP50, b.summary.ttftP50);
    EXPECT_DOUBLE_EQ(a.summary.ttftP99, b.summary.ttftP99);
    EXPECT_DOUBLE_EQ(a.summary.tpotP99, b.summary.tpotP99);
    EXPECT_DOUBLE_EQ(a.summary.goodputTokensPerKcycle,
                     b.summary.goodputTokensPerKcycle);
    EXPECT_DOUBLE_EQ(a.summary.computeUtilization,
                     b.summary.computeUtilization);
}

TEST(Engine, QueueDepthPolicyBeatsStaticSplitOnBurstyTrace)
{
    TraceConfig tc = burstyTrace(80);
    EngineConfig ec;

    auto goodput = [&](const Policy& policy) {
        auto reqs = generateTrace(tc, deriveSeed(102));
        ServingEngine engine(ec, policy);
        return engine.run(reqs).summary.goodputTokensPerKcycle;
    };
    StaticSplitPolicy static_policy(0.3);
    QueueDepthPolicy dynamic_policy;
    double static_goodput = goodput(static_policy);
    double dynamic_goodput = goodput(dynamic_policy);

    // The headline serving property: queue-depth-driven reallocation
    // strictly beats the static split on SLO goodput under bursts —
    // deterministically, since everything is seeded.
    EXPECT_GT(dynamic_goodput, static_goodput);
    EXPECT_DOUBLE_EQ(dynamic_goodput, goodput(dynamic_policy));
    EXPECT_DOUBLE_EQ(static_goodput, goodput(static_policy));
}
